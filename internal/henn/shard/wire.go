package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// Wire format: a manifest frame is
//
//	tag 'M' | version | uvarint C,H,W,Gy,Gx,Slots,Halo | crc32(IEEE)
//
// with the checksum (big-endian uint32) computed over everything before
// it. The frame travels base64-encoded inside /v1/info so clients can
// Split/Join without sharing compiler code. Decoding follows the same
// contract as the ckks frame readers (DESIGN.md §6): arbitrary input
// yields ErrFormat or ErrChecksum, never a panic.

const (
	wireTag     = 'M'
	wireVersion = 1
)

// ErrFormat reports a structurally malformed manifest frame.
var ErrFormat = errors.New("shard: malformed manifest frame")

// ErrChecksum reports a manifest frame whose payload does not match its
// checksum.
var ErrChecksum = errors.New("shard: manifest checksum mismatch")

// Encode serializes the manifest to its wire frame.
func (m Manifest) Encode() []byte {
	buf := []byte{wireTag, wireVersion}
	for _, v := range [...]int{m.Shape.C, m.Shape.H, m.Shape.W, m.Grid.Gy, m.Grid.Gx, m.Slots, m.Halo} {
		buf = binary.AppendUvarint(buf, uint64(v))
	}
	return binary.BigEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
}

// DecodeManifest parses and validates a wire frame produced by Encode.
// Every failure is ErrFormat or ErrChecksum.
func DecodeManifest(data []byte) (Manifest, error) {
	if len(data) < 2 {
		return Manifest{}, fmt.Errorf("%w: %d-byte frame", ErrFormat, len(data))
	}
	if data[0] != wireTag {
		return Manifest{}, fmt.Errorf("%w: bad tag 0x%02x", ErrFormat, data[0])
	}
	if data[1] != wireVersion {
		return Manifest{}, fmt.Errorf("%w: unsupported version %d", ErrFormat, data[1])
	}
	rest := data[2:]
	var fields [7]int
	for i := range fields {
		v, n := binary.Uvarint(rest)
		if n <= 0 || v > 1<<31 {
			return Manifest{}, fmt.Errorf("%w: truncated field %d", ErrFormat, i)
		}
		fields[i] = int(v)
		rest = rest[n:]
	}
	if len(rest) != 4 {
		return Manifest{}, fmt.Errorf("%w: %d trailing bytes, want 4-byte checksum", ErrFormat, len(rest))
	}
	payload := data[:len(data)-4]
	if got, want := crc32.ChecksumIEEE(payload), binary.BigEndian.Uint32(rest); got != want {
		return Manifest{}, fmt.Errorf("%w: crc32 %08x, frame says %08x", ErrChecksum, got, want)
	}
	m, err := New(Shape{C: fields[0], H: fields[1], W: fields[2]},
		Grid{Gy: fields[3], Gx: fields[4]}, fields[5])
	if err != nil {
		return Manifest{}, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	m.Halo = fields[6]
	return m, nil
}
