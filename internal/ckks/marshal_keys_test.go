package ckks

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// keyedKit is tiny() plus rotation keys, for exercising the key-material
// wire format functionally.
func keyedKit(t testing.TB, rotations []int) *testKit {
	t.Helper()
	p, err := TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	return newTestKit(t, p, rotations, false)
}

func TestRelinearizationKeyRoundTrip(t *testing.T) {
	k := tiny(t)
	var buf bytes.Buffer
	if err := k.ctx.WriteRelinearizationKey(&buf, k.rlk); err != nil {
		t.Fatal(err)
	}
	rlk2, err := k.ctx.ReadRelinearizationKey(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The deserialized key must actually relinearize: square a ciphertext
	// with an evaluator holding only the round-tripped key.
	ev2 := NewEvaluator(k.ctx, rlk2, nil)
	rng := rand.New(rand.NewSource(5))
	vals := randVec(rng, k.ctx.Params.Slots(), 2)
	ct := k.ept.Encrypt(k.enc.Encode(vals, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale))
	sq := ev2.Rescale(ev2.Mul(ct, ct))
	got := k.enc.Decode(k.dec.DecryptNew(sq))
	for i := range vals {
		if math.Abs(got[i]-vals[i]*vals[i]) > 1e-2 {
			t.Fatalf("square wrong at %d: got %g want %g", i, got[i], vals[i]*vals[i])
		}
	}
}

func TestRotationKeySetRoundTrip(t *testing.T) {
	k := keyedKit(t, []int{1, -3, 7})
	rtk := k.kg.GenRotationKeys(k.sk, []int{1, -3, 7}, false)
	var buf bytes.Buffer
	if err := k.ctx.WriteRotationKeySet(&buf, rtk); err != nil {
		t.Fatal(err)
	}
	rtk2, err := k.ctx.ReadRotationKeySet(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(rtk2.Keys) != len(rtk.Keys) {
		t.Fatalf("key count: got %d want %d", len(rtk2.Keys), len(rtk.Keys))
	}
	ev2 := NewEvaluator(k.ctx, k.rlk, rtk2)
	rng := rand.New(rand.NewSource(6))
	n := k.ctx.Params.Slots()
	vals := randVec(rng, n, 2)
	ct := k.ept.Encrypt(k.enc.Encode(vals, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale))
	got := k.enc.Decode(k.dec.DecryptNew(ev2.Rotate(ct, 7)))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-vals[(i+7)%n]) > 1e-2 {
			t.Fatalf("rotation wrong at slot %d", i)
		}
	}
}

// TestRotationKeySetDeterministicBytes pins the property the content
// fingerprint relies on: serializing the same set twice — and a set with
// identical contents built in a different map insertion order — yields
// identical bytes.
func TestRotationKeySetDeterministicBytes(t *testing.T) {
	k := keyedKit(t, nil)
	rtk := k.kg.GenRotationKeys(k.sk, []int{1, 2, 4, -1}, true)
	var a, b bytes.Buffer
	if err := k.ctx.WriteRotationKeySet(&a, rtk); err != nil {
		t.Fatal(err)
	}
	reordered := &RotationKeySet{Keys: map[uint64]*SwitchingKey{}}
	els := make([]uint64, 0, len(rtk.Keys))
	for g := range rtk.Keys {
		els = append(els, g)
	}
	for i := len(els) - 1; i >= 0; i-- {
		reordered.Keys[els[i]] = rtk.Keys[els[i]]
	}
	if err := k.ctx.WriteRotationKeySet(&b, reordered); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("rotation key set serialization depends on map order")
	}
}

func TestSecretKeyRoundTrip(t *testing.T) {
	k := tiny(t)
	var buf bytes.Buffer
	if err := k.ctx.WriteSecretKey(&buf, k.sk); err != nil {
		t.Fatal(err)
	}
	sk2, err := k.ctx.ReadSecretKey(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	// The rebuilt NTT-domain polynomial must decrypt ciphertexts made
	// under the original key.
	rng := rand.New(rand.NewSource(7))
	vals := randVec(rng, k.ctx.Params.Slots(), 3)
	ct := k.ept.Encrypt(k.enc.Encode(vals, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale))
	got := k.enc.Decode(NewDecryptor(k.ctx, sk2).DecryptNew(ct))
	for i := range vals {
		if math.Abs(got[i]-vals[i]) > 1e-3 {
			t.Fatalf("deserialized sk decrypts wrong at %d", i)
		}
	}
}

func TestSecretKeyRejectsNonTernary(t *testing.T) {
	k := tiny(t)
	var buf bytes.Buffer
	if err := k.ctx.WriteSecretKey(&buf, k.sk); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Overwrite the first coefficient word (offset 2 header + 8 length)
	// with 2 — outside {-1,0,1}.
	raw[10] = 2
	for i := 11; i < 18; i++ {
		raw[i] = 0
	}
	_, err := k.ctx.ReadSecretKey(bytes.NewReader(raw))
	if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrChecksum) {
		t.Fatalf("want ErrFormat or ErrChecksum, got %v", err)
	}
}

func TestKeyBundleRoundTripAndFingerprint(t *testing.T) {
	k := keyedKit(t, []int{1, 5})
	rtk := k.kg.GenRotationKeys(k.sk, []int{1, 5}, false)
	bundle := &KeyBundle{
		ParamsDigest: k.ctx.Params.ParamsDigest(),
		PK:           k.pk,
		RLK:          k.rlk,
		RTK:          rtk,
	}
	var a, b bytes.Buffer
	if err := k.ctx.WriteKeyBundle(&a, bundle); err != nil {
		t.Fatal(err)
	}
	back, err := k.ctx.ReadKeyBundle(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.ParamsDigest != bundle.ParamsDigest {
		t.Fatal("params digest did not round-trip")
	}
	if len(back.RTK.Keys) != 2 {
		t.Fatalf("rotation keys: got %d want 2", len(back.RTK.Keys))
	}
	// Fingerprint stability: re-serializing the deserialized bundle must
	// reproduce the exact bytes, hence the same content fingerprint.
	if err := k.ctx.WriteKeyBundle(&b, back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("bundle bytes not stable across a marshal round trip")
	}
	if BundleFingerprint(a.Bytes()) != BundleFingerprint(b.Bytes()) {
		t.Fatal("bundle fingerprint not stable")
	}
	// And the functional check: keys from the wire evaluate correctly.
	ev2 := NewEvaluator(k.ctx, back.RLK, back.RTK)
	rng := rand.New(rand.NewSource(8))
	n := k.ctx.Params.Slots()
	vals := randVec(rng, n, 2)
	enc2 := NewEncryptor(k.ctx, back.PK, 31)
	ct := enc2.Encrypt(k.enc.Encode(vals, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale))
	got := k.enc.Decode(k.dec.DecryptNew(ev2.Rotate(ct, 5)))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-vals[(i+5)%n]) > 1e-2 {
			t.Fatalf("wire bundle rotate wrong at slot %d", i)
		}
	}
}

func TestKeyBundleWriteRequiresAllKeys(t *testing.T) {
	k := tiny(t)
	var buf bytes.Buffer
	err := k.ctx.WriteKeyBundle(&buf, &KeyBundle{PK: k.pk, RLK: k.rlk})
	if err == nil {
		t.Fatal("bundle without rotation keys should be rejected")
	}
}

func TestKeyFramesRejectCorruption(t *testing.T) {
	k := keyedKit(t, []int{1})
	rtk := k.kg.GenRotationKeys(k.sk, []int{1}, false)
	bundle := &KeyBundle{ParamsDigest: k.ctx.Params.ParamsDigest(), PK: k.pk, RLK: k.rlk, RTK: rtk}

	type frame struct {
		name  string
		bytes []byte
		read  func([]byte) error
	}
	var frames []frame
	{
		var buf bytes.Buffer
		if err := k.ctx.WriteRelinearizationKey(&buf, k.rlk); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame{"relin", buf.Bytes(), func(b []byte) error {
			_, err := k.ctx.ReadRelinearizationKey(bytes.NewReader(b))
			return err
		}})
	}
	{
		var buf bytes.Buffer
		if err := k.ctx.WriteRotationKeySet(&buf, rtk); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame{"rotset", buf.Bytes(), func(b []byte) error {
			_, err := k.ctx.ReadRotationKeySet(bytes.NewReader(b))
			return err
		}})
	}
	{
		var buf bytes.Buffer
		if err := k.ctx.WriteSecretKey(&buf, k.sk); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame{"secret", buf.Bytes(), func(b []byte) error {
			_, err := k.ctx.ReadSecretKey(bytes.NewReader(b))
			return err
		}})
	}
	{
		var buf bytes.Buffer
		if err := k.ctx.WriteKeyBundle(&buf, bundle); err != nil {
			t.Fatal(err)
		}
		frames = append(frames, frame{"bundle", buf.Bytes(), func(b []byte) error {
			_, err := k.ctx.ReadKeyBundle(bytes.NewReader(b))
			return err
		}})
	}

	for _, f := range frames {
		t.Run(f.name, func(t *testing.T) {
			if err := f.read(f.bytes); err != nil {
				t.Fatalf("clean frame rejected: %v", err)
			}
			// Truncation at several depths.
			for _, cut := range []int{1, 3, len(f.bytes) / 2, len(f.bytes) - 1} {
				err := f.read(f.bytes[:cut])
				if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrChecksum) {
					t.Fatalf("truncated at %d: want typed error, got %v", cut, err)
				}
			}
			// Bit flip mid-payload must trip a checksum (inner or outer)
			// or structural validation.
			flipped := append([]byte(nil), f.bytes...)
			flipped[len(flipped)/2] ^= 0x10
			err := f.read(flipped)
			if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrChecksum) {
				t.Fatalf("bit flip: want typed error, got %v", err)
			}
			// Wrong leading tag.
			wrongTag := append([]byte(nil), f.bytes...)
			wrongTag[0] ^= 0xFF
			if err := f.read(wrongTag); !errors.Is(err, ErrFormat) {
				t.Fatalf("wrong tag: want ErrFormat, got %v", err)
			}
		})
	}
}

func TestRotationKeySetMerge(t *testing.T) {
	k := keyedKit(t, nil)
	gen := func(rots ...int) *RotationKeySet {
		return k.kg.GenRotationKeys(k.sk, rots, false)
	}

	t.Run("disjoint", func(t *testing.T) {
		a, b := gen(1, 2), gen(4, 8)
		a.Merge(b)
		if len(a.Keys) != 4 {
			t.Fatalf("got %d keys, want 4", len(a.Keys))
		}
	})
	t.Run("overlapping keeps later", func(t *testing.T) {
		a, b := gen(1, 2), gen(2, 4)
		want := b.Keys[galoisFor(k, 2)]
		a.Merge(b)
		if len(a.Keys) != 3 {
			t.Fatalf("got %d keys, want 3", len(a.Keys))
		}
		if a.Keys[galoisFor(k, 2)] != want {
			t.Fatal("overlap did not take the merged-in key")
		}
	})
	t.Run("nil receiver", func(t *testing.T) {
		var a *RotationKeySet
		a.Merge(gen(1)) // must not panic
	})
	t.Run("nil other", func(t *testing.T) {
		a := gen(1)
		a.Merge(nil)
		if len(a.Keys) != 1 {
			t.Fatal("nil other modified the set")
		}
	})
	t.Run("nil keys map", func(t *testing.T) {
		a := &RotationKeySet{}
		a.Merge(gen(1, 2))
		if len(a.Keys) != 2 {
			t.Fatalf("got %d keys, want 2", len(a.Keys))
		}
	})
}

func galoisFor(k *testKit, rot int) uint64 {
	for g := range k.kg.GenRotationKeys(k.sk, []int{rot}, false).Keys {
		return g
	}
	return 0
}

func TestParamsFingerprint(t *testing.T) {
	p1, err := TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	p2, err := TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	if p1.Fingerprint() != p2.Fingerprint() {
		t.Fatal("identical parameters produced different fingerprints")
	}
	p3 := p2
	p3.Scale *= 2
	if p1.Fingerprint() == p3.Fingerprint() {
		t.Fatal("different scale, same fingerprint")
	}
	if len(p1.Fingerprint()) != 64 {
		t.Fatalf("fingerprint length %d, want 64 hex chars", len(p1.Fingerprint()))
	}
}

// TestWireSizes pins the exact-size helpers against real serializations;
// the serve layer uses them to set request body limits.
func TestWireSizes(t *testing.T) {
	k := keyedKit(t, []int{1, 2, 4})
	rtk := k.kg.GenRotationKeys(k.sk, []int{1, 2, 4}, false)

	var ctBuf bytes.Buffer
	ct := k.ept.Encrypt(k.enc.Encode([]float64{1}, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale))
	if err := k.ctx.WriteCiphertext(&ctBuf, ct); err != nil {
		t.Fatal(err)
	}
	if got, want := ctBuf.Len(), k.ctx.CiphertextWireSize(ct.Level); got != want {
		t.Fatalf("ciphertext wire size: got %d computed %d", got, want)
	}

	var pkBuf bytes.Buffer
	if err := k.ctx.WritePublicKey(&pkBuf, k.pk); err != nil {
		t.Fatal(err)
	}
	if got, want := pkBuf.Len(), k.ctx.PublicKeyWireSize(); got != want {
		t.Fatalf("public key wire size: got %d computed %d", got, want)
	}

	var bBuf bytes.Buffer
	bundle := &KeyBundle{ParamsDigest: k.ctx.Params.ParamsDigest(), PK: k.pk, RLK: k.rlk, RTK: rtk}
	if err := k.ctx.WriteKeyBundle(&bBuf, bundle); err != nil {
		t.Fatal(err)
	}
	if got, want := bBuf.Len(), k.ctx.KeyBundleWireSize(len(rtk.Keys)); got != want {
		t.Fatalf("bundle wire size: got %d computed %d", got, want)
	}
}

// TestSecureKeyGeneratorProducesWorkingKeys exercises the crypto/rand
// path end to end: generate, encrypt under the secure encryptor, decrypt.
func TestSecureKeyGeneratorProducesWorkingKeys(t *testing.T) {
	p, err := TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	kg := NewSecureKeyGenerator(ctx)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	enc := NewEncoder(ctx)
	ept := NewSecureEncryptor(ctx, pk)
	dec := NewDecryptor(ctx, sk)
	ev := NewEvaluator(ctx, rlk, nil)

	rng := rand.New(rand.NewSource(9))
	vals := randVec(rng, p.Slots(), 2)
	ct := ept.Encrypt(enc.Encode(vals, p.MaxLevel(), p.Scale))
	sq := ev.Rescale(ev.Mul(ct, ct))
	got := enc.Decode(dec.DecryptNew(sq))
	for i := range vals {
		if math.Abs(got[i]-vals[i]*vals[i]) > 1e-2 {
			t.Fatalf("secure-key square wrong at %d", i)
		}
	}
	// Two secure generators must not coincide (the seeded ones would).
	sk2 := NewSecureKeyGenerator(ctx).GenSecretKey()
	same := true
	for i := range sk.Vec {
		if sk.Vec[i] != sk2.Vec[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("two secure key generators produced identical secret keys")
	}
}
