package zq

import (
	"math/big"
	"math/rand"
	"testing"
)

// wideTestModuli: primes spanning the wide range (62–122 bits), of the NTT
// form c·2^16+1 where possible (found offline; primality checked in test).
func wideTestPrimes(t *testing.T) []*big.Int {
	t.Helper()
	var out []*big.Int
	for _, bits := range []int{62, 80, 100, 122} {
		p := findNTTPrimeBig(bits, 1<<13)
		if !p.ProbablyPrime(32) {
			t.Fatalf("generated non-prime for %d bits", bits)
		}
		out = append(out, p)
	}
	return out
}

// findNTTPrimeBig returns a prime of the given bit length congruent to
// 1 mod 2n (helper shared with the primes package via duplication to keep
// zq dependency-free).
func findNTTPrimeBig(bitLen int, n uint64) *big.Int {
	two := new(big.Int).SetUint64(2 * n)
	p := new(big.Int).Lsh(big.NewInt(1), uint(bitLen-1))
	// round up to 1 mod 2n
	r := new(big.Int).Mod(p, two)
	p.Sub(p, r)
	p.Add(p, big.NewInt(1))
	for {
		p.Add(p, two)
		if p.ProbablyPrime(20) {
			return new(big.Int).Set(p)
		}
	}
}

func TestWideConversionsRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	max := new(big.Int).Lsh(big.NewInt(1), 128)
	for i := 0; i < 1000; i++ {
		v := new(big.Int).Rand(rng, max)
		w := WideFromBig(v)
		if w.Big().Cmp(v) != 0 {
			t.Fatalf("roundtrip failed for %v", v)
		}
	}
}

func TestWideModulusRange(t *testing.T) {
	for _, bad := range []int64{1, 100, 1 << 20} {
		func() {
			defer func() { recover() }()
			NewWideModulus(big.NewInt(bad))
			t.Errorf("expected panic for %d", bad)
		}()
	}
}

func TestWideAddSubNeg(t *testing.T) {
	for _, q := range wideTestPrimes(t) {
		m := NewWideModulus(q)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 500; i++ {
			xb := new(big.Int).Rand(rng, q)
			yb := new(big.Int).Rand(rng, q)
			x, y := WideFromBig(xb), WideFromBig(yb)
			add := new(big.Int).Add(xb, yb)
			add.Mod(add, q)
			if m.Add(x, y).Big().Cmp(add) != 0 {
				t.Fatalf("add mismatch q=%v", q)
			}
			sub := new(big.Int).Sub(xb, yb)
			sub.Mod(sub, q)
			if m.Sub(x, y).Big().Cmp(sub) != 0 {
				t.Fatalf("sub mismatch q=%v", q)
			}
			neg := new(big.Int).Neg(xb)
			neg.Mod(neg, q)
			if m.Neg(x).Big().Cmp(neg) != 0 {
				t.Fatalf("neg mismatch q=%v", q)
			}
		}
	}
}

func TestWideMul(t *testing.T) {
	for _, q := range wideTestPrimes(t) {
		m := NewWideModulus(q)
		rng := rand.New(rand.NewSource(13))
		for i := 0; i < 500; i++ {
			xb := new(big.Int).Rand(rng, q)
			yb := new(big.Int).Rand(rng, q)
			want := new(big.Int).Mul(xb, yb)
			want.Mod(want, q)
			got := m.Mul(WideFromBig(xb), WideFromBig(yb))
			if got.Big().Cmp(want) != 0 {
				t.Fatalf("mul mismatch q=%v: got %v want %v", q, got.Big(), want)
			}
		}
	}
}

func TestWideShoupMul(t *testing.T) {
	for _, q := range wideTestPrimes(t) {
		m := NewWideModulus(q)
		rng := rand.New(rand.NewSource(17))
		for i := 0; i < 300; i++ {
			xb := new(big.Int).Rand(rng, q)
			wb := new(big.Int).Rand(rng, q)
			x, w := WideFromBig(xb), WideFromBig(wb)
			ws := m.ShoupPrecomp(w)
			want := new(big.Int).Mul(xb, wb)
			want.Mod(want, q)
			if m.ShoupMul(x, w, ws).Big().Cmp(want) != 0 {
				t.Fatalf("shoup mul mismatch q=%v", q)
			}
			lazy := m.ShoupMulLazy(x, w, ws)
			red := new(big.Int).Mod(lazy.Big(), q)
			if red.Cmp(want) != 0 {
				t.Fatalf("shoup lazy wrong residue q=%v", q)
			}
			bound := new(big.Int).Lsh(q, 1)
			if lazy.Big().Cmp(bound) >= 0 {
				t.Fatalf("shoup lazy out of [0,2q) q=%v", q)
			}
		}
	}
}

func TestWidePowInvRoot(t *testing.T) {
	q := findNTTPrimeBig(70, 1<<13)
	m := NewWideModulus(q)
	rng := rand.New(rand.NewSource(19))
	for i := 0; i < 50; i++ {
		xb := new(big.Int).Rand(rng, q)
		if xb.Sign() == 0 {
			continue
		}
		x := WideFromBig(xb)
		inv := m.Inv(x)
		one := m.Mul(x, inv)
		if one.Lo != 1 || one.Hi != 0 {
			t.Fatalf("x·x^-1 != 1")
		}
	}
	n := uint64(1 << 14)
	w := m.PrimitiveNthRoot(n, rng)
	if p := m.Pow(w, n); p.Lo != 1 || p.Hi != 0 {
		t.Fatal("w^n != 1")
	}
	minusOne := WideFromBig(new(big.Int).Sub(q, big.NewInt(1)))
	if p := m.Pow(w, n/2); p != minusOne {
		t.Fatal("w^{n/2} != -1")
	}
}

func TestWideReduce256(t *testing.T) {
	q := findNTTPrimeBig(122, 1<<13)
	m := NewWideModulus(q)
	rng := rand.New(rand.NewSource(23))
	lim := new(big.Int).Mul(q, new(big.Int).Lsh(big.NewInt(1), 128))
	for i := 0; i < 300; i++ {
		v := new(big.Int).Rand(rng, lim)
		var a [4]uint64
		t2 := new(big.Int).Set(v)
		for j := 0; j < 4; j++ {
			a[j] = new(big.Int).And(t2, mask64).Uint64()
			t2.Rsh(t2, 64)
		}
		want := new(big.Int).Mod(v, q)
		if m.Reduce256(a).Big().Cmp(want) != 0 {
			t.Fatalf("reduce256 mismatch for %v", v)
		}
	}
}

func BenchmarkWideMul(b *testing.B) {
	q := findNTTPrimeBig(122, 1<<13)
	m := NewWideModulus(q)
	x := WideFromBig(new(big.Int).Rsh(q, 1))
	y := WideFromBig(new(big.Int).Rsh(q, 2))
	var r Wide
	for i := 0; i < b.N; i++ {
		r = m.Mul(x, y)
		x = r
	}
	_ = r
}
