package telemetry

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceparentRoundTrip(t *testing.T) {
	const hdr = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	tc, err := ParseTraceparent(hdr)
	if err != nil {
		t.Fatalf("ParseTraceparent: %v", err)
	}
	if got := tc.Traceparent(); got != hdr {
		t.Fatalf("round trip = %q, want %q", got, hdr)
	}
	if tc.TraceIDString() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID = %q", tc.TraceIDString())
	}
	if tc.SpanIDString() != "00f067aa0ba902b7" {
		t.Fatalf("span ID = %q", tc.SpanIDString())
	}
	if tc.Flags != 1 {
		t.Fatalf("flags = %d, want 1", tc.Flags)
	}
}

func TestParseTraceparentRejects(t *testing.T) {
	bad := []string{
		"",
		"00-abc-def-01",
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", // missing flags
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // forbidden version
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", // zero span ID
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-extra", // v00 has 4 fields
		"zz-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01",
	}
	for _, s := range bad {
		if _, err := ParseTraceparent(s); err == nil {
			t.Errorf("ParseTraceparent(%q) accepted, want error", s)
		}
	}
}

func TestParseTraceparentFutureVersion(t *testing.T) {
	// Future versions may append fields; they must still parse as v00.
	tc, err := ParseTraceparent("cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01-vendorstuff")
	if err != nil {
		t.Fatalf("future-version traceparent rejected: %v", err)
	}
	if tc.TraceIDString() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Fatalf("trace ID = %q", tc.TraceIDString())
	}
}

func TestNewTraceContextUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		tc := NewTraceContext()
		if !tc.Valid() {
			t.Fatal("NewTraceContext produced invalid context")
		}
		if tc.Flags&1 == 0 {
			t.Fatal("NewTraceContext not sampled")
		}
		key := tc.TraceIDString() + tc.SpanIDString()
		if seen[key] {
			t.Fatalf("duplicate IDs after %d draws", i)
		}
		seen[key] = true
	}
}

func TestChildKeepsTraceID(t *testing.T) {
	parent := NewTraceContext()
	child := parent.Child()
	if child.TraceID != parent.TraceID {
		t.Fatal("Child changed trace ID")
	}
	if child.SpanID == parent.SpanID {
		t.Fatal("Child kept parent span ID")
	}
	if !strings.HasPrefix(child.Traceparent(), "00-"+parent.TraceIDString()) {
		t.Fatalf("child traceparent %q lost trace ID", child.Traceparent())
	}
}

func TestTraceContextPlumbing(t *testing.T) {
	if _, ok := TraceContextFrom(context.Background()); ok {
		t.Fatal("empty context claimed a trace context")
	}
	tc := NewTraceContext()
	ctx := WithTraceContext(context.Background(), tc)
	got, ok := TraceContextFrom(ctx)
	if !ok || got != tc {
		t.Fatalf("TraceContextFrom = %+v, %v; want %+v", got, ok, tc)
	}
	// An invalid (zero) context does not surface.
	ctx = WithTraceContext(context.Background(), TraceContext{})
	if _, ok := TraceContextFrom(ctx); ok {
		t.Fatal("zero trace context surfaced as valid")
	}
}
