package ckks

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"cnnhe/internal/ring"
)

// Wire format: every object is framed as
//
//	[tag:1][version:1][payload][crc32:4]
//
// where the trailing CRC-32 (IEEE) covers tag, version and payload. The
// payload carries its structural metadata explicitly, so a decode
// against mismatched parameters fails loudly instead of corrupting
// data; the checksum catches truncation and bit flips that structural
// validation alone cannot (for example a flipped coefficient word or
// scale bit). Limb coefficient vectors are written as raw little-endian
// uint64 words.

const (
	tagCiphertext byte = 0xC7
	tagPublicKey  byte = 0xB0
	tagSwitchKey  byte = 0x5E

	// formatVersion is bumped on any incompatible wire-format change.
	formatVersion byte = 1
)

// Typed deserialization failures; match with errors.Is.
var (
	// ErrFormat: the blob is structurally invalid — wrong tag, unsupported
	// version, out-of-range metadata, or truncated.
	ErrFormat = errors.New("ckks: malformed serialized object")
	// ErrChecksum: the blob parsed but its CRC-32 does not match (bit
	// corruption in transit or at rest).
	ErrChecksum = errors.New("ckks: checksum mismatch")
)

// badFormat wraps a low-level decode error as ErrFormat.
func badFormat(err error) error {
	if errors.Is(err, ErrFormat) || errors.Is(err, ErrChecksum) {
		return err
	}
	return fmt.Errorf("%w: %v", ErrFormat, err)
}

// crcWriter tees writes into a running CRC-32.
type crcWriter struct {
	w   io.Writer
	crc hash.Hash32
}

func newCRCWriter(w io.Writer) *crcWriter {
	return &crcWriter{w: w, crc: crc32.NewIEEE()}
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	cw.crc.Write(p)
	return cw.w.Write(p)
}

// writeSum appends the frame's checksum (not itself checksummed).
func (cw *crcWriter) writeSum() error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], cw.crc.Sum32())
	_, err := cw.w.Write(buf[:])
	return err
}

// crcReader tees reads into a running CRC-32.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func newCRCReader(r io.Reader) *crcReader {
	return &crcReader{r: r, crc: crc32.NewIEEE()}
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc.Write(p[:n])
	return n, err
}

// verifySum consumes the frame's trailing checksum and compares.
func (cr *crcReader) verifySum() error {
	var buf [4]byte
	if _, err := io.ReadFull(cr.r, buf[:]); err != nil {
		return badFormat(err)
	}
	if got := binary.LittleEndian.Uint32(buf[:]); got != cr.crc.Sum32() {
		return fmt.Errorf("%w: stored %08x, computed %08x", ErrChecksum, got, cr.crc.Sum32())
	}
	return nil
}

// readHeader consumes and validates the [tag][version] prefix. An
// immediate clean EOF is passed through so callers can detect stream
// end; anything else malformed is ErrFormat.
func readHeader(r io.Reader, wantTag byte, what string) error {
	var hdr [2]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if err == io.EOF {
			return err
		}
		return badFormat(err)
	}
	if hdr[0] != wantTag {
		return fmt.Errorf("%w: bad %s tag 0x%02x", ErrFormat, what, hdr[0])
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return badFormat(err)
	}
	if hdr[1] != formatVersion {
		return fmt.Errorf("%w: unsupported %s format version %d (want %d)", ErrFormat, what, hdr[1], formatVersion)
	}
	return nil
}

func writeUint64(w io.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readUint64(r io.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, badFormat(err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

// writePoly writes the given limbs of p.
func writePoly(w io.Writer, rg *ring.Ring, limbs []int, p *ring.Poly) error {
	if err := writeUint64(w, uint64(len(limbs))); err != nil {
		return err
	}
	buf := make([]byte, 8)
	for _, li := range limbs {
		if err := writeUint64(w, uint64(li)); err != nil {
			return err
		}
		coeffs := p.Coeffs[li]
		if err := writeUint64(w, uint64(len(coeffs))); err != nil {
			return err
		}
		for _, c := range coeffs {
			binary.LittleEndian.PutUint64(buf, c)
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

// readPoly reads limbs into a polynomial allocated for maxLevel with
// specials.
func readPoly(r io.Reader, rg *ring.Ring, level int) (*ring.Poly, error) {
	nLimbs, err := readUint64(r)
	if err != nil {
		return nil, err
	}
	p := rg.NewPoly(level)
	for i := uint64(0); i < nLimbs; i++ {
		li, err := readUint64(r)
		if err != nil {
			return nil, err
		}
		if int(li) >= len(p.Coeffs) {
			return nil, fmt.Errorf("%w: limb index %d out of range", ErrFormat, li)
		}
		n, err := readUint64(r)
		if err != nil {
			return nil, err
		}
		if p.Coeffs[li] == nil || uint64(len(p.Coeffs[li])) != n {
			return nil, fmt.Errorf("%w: limb %d length mismatch (%d)", ErrFormat, li, n)
		}
		buf := make([]byte, 8*n)
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, badFormat(err)
		}
		for j := range p.Coeffs[li] {
			p.Coeffs[li][j] = binary.LittleEndian.Uint64(buf[8*j:])
		}
	}
	return p, nil
}

// WriteCiphertext serializes ct.
func (ctx *Context) WriteCiphertext(w io.Writer, ct *Ciphertext) error {
	cw := newCRCWriter(w)
	if _, err := cw.Write([]byte{tagCiphertext, formatVersion}); err != nil {
		return err
	}
	if err := writeUint64(cw, uint64(ct.Level)); err != nil {
		return err
	}
	if err := writeUint64(cw, math.Float64bits(ct.Scale)); err != nil {
		return err
	}
	limbs := ctx.R.Limbs(ct.Level, false)
	if err := writePoly(cw, ctx.R, limbs, ct.C0); err != nil {
		return err
	}
	if err := writePoly(cw, ctx.R, limbs, ct.C1); err != nil {
		return err
	}
	return cw.writeSum()
}

// ReadCiphertext deserializes a ciphertext produced by WriteCiphertext
// under the same parameters. Malformed input yields ErrFormat, bit
// corruption ErrChecksum.
func (ctx *Context) ReadCiphertext(r io.Reader) (*Ciphertext, error) {
	cr := newCRCReader(r)
	if err := readHeader(cr, tagCiphertext, "ciphertext"); err != nil {
		return nil, err
	}
	level64, err := readUint64(cr)
	if err != nil {
		return nil, err
	}
	level := int(level64)
	if level < 0 || level > ctx.Params.MaxLevel() {
		return nil, fmt.Errorf("%w: level %d out of range", ErrFormat, level)
	}
	scaleBits, err := readUint64(cr)
	if err != nil {
		return nil, err
	}
	c0, err := readPoly(cr, ctx.R, level)
	if err != nil {
		return nil, err
	}
	c1, err := readPoly(cr, ctx.R, level)
	if err != nil {
		return nil, err
	}
	if err := cr.verifySum(); err != nil {
		return nil, err
	}
	return &Ciphertext{C0: c0, C1: c1, Level: level, Scale: math.Float64frombits(scaleBits)}, nil
}

// WritePublicKey serializes pk.
func (ctx *Context) WritePublicKey(w io.Writer, pk *PublicKey) error {
	cw := newCRCWriter(w)
	if _, err := cw.Write([]byte{tagPublicKey, formatVersion}); err != nil {
		return err
	}
	limbs := ctx.R.Limbs(ctx.Params.MaxLevel(), true)
	if err := writePoly(cw, ctx.R, limbs, pk.B); err != nil {
		return err
	}
	if err := writePoly(cw, ctx.R, limbs, pk.A); err != nil {
		return err
	}
	return cw.writeSum()
}

// ReadPublicKey deserializes a public key.
func (ctx *Context) ReadPublicKey(r io.Reader) (*PublicKey, error) {
	cr := newCRCReader(r)
	if err := readHeader(cr, tagPublicKey, "public key"); err != nil {
		return nil, err
	}
	b, err := readPoly(cr, ctx.R, ctx.Params.MaxLevel())
	if err != nil {
		return nil, err
	}
	a, err := readPoly(cr, ctx.R, ctx.Params.MaxLevel())
	if err != nil {
		return nil, err
	}
	if err := cr.verifySum(); err != nil {
		return nil, err
	}
	return &PublicKey{B: b, A: a}, nil
}

// WriteSwitchingKey serializes a switching key (relinearization or
// rotation key material).
func (ctx *Context) WriteSwitchingKey(w io.Writer, swk *SwitchingKey) error {
	cw := newCRCWriter(w)
	if _, err := cw.Write([]byte{tagSwitchKey, formatVersion}); err != nil {
		return err
	}
	if err := writeUint64(cw, uint64(len(swk.B))); err != nil {
		return err
	}
	limbs := ctx.R.Limbs(ctx.Params.MaxLevel(), true)
	for i := range swk.B {
		if err := writePoly(cw, ctx.R, limbs, swk.B[i]); err != nil {
			return err
		}
		if err := writePoly(cw, ctx.R, limbs, swk.A[i]); err != nil {
			return err
		}
	}
	return cw.writeSum()
}

// ReadSwitchingKey deserializes a switching key.
func (ctx *Context) ReadSwitchingKey(r io.Reader) (*SwitchingKey, error) {
	cr := newCRCReader(r)
	if err := readHeader(cr, tagSwitchKey, "switching key"); err != nil {
		return nil, err
	}
	n, err := readUint64(cr)
	if err != nil {
		return nil, err
	}
	if n == 0 || n > uint64(ctx.Params.MaxLevel()+1) {
		return nil, fmt.Errorf("%w: switching key digit count %d out of range", ErrFormat, n)
	}
	swk := &SwitchingKey{}
	for i := uint64(0); i < n; i++ {
		b, err := readPoly(cr, ctx.R, ctx.Params.MaxLevel())
		if err != nil {
			return nil, err
		}
		a, err := readPoly(cr, ctx.R, ctx.Params.MaxLevel())
		if err != nil {
			return nil, err
		}
		swk.B = append(swk.B, b)
		swk.A = append(swk.A, a)
	}
	if err := cr.verifySum(); err != nil {
		return nil, err
	}
	return swk, nil
}
