package exec

import (
	"context"
	"sync"
	"time"

	"cnnhe/internal/henn/ir"
	"cnnhe/internal/telemetry"
)

// execMetrics bundles the process-global executor instruments. They are
// registered once, on the first run that finds telemetry enabled, so a
// process that never enables telemetry never touches the registry.
type execMetrics struct {
	runs      *telemetry.Counter
	opsByKind [ir.OpRecombine + 1]*telemetry.Counter
	durByKind [ir.OpRecombine + 1]*telemetry.Histogram
	queueWait *telemetry.Histogram

	hoistGroups    *telemetry.Counter
	hoistRotations *telemetry.Counter
	hoistSaved     *telemetry.Counter
}

var (
	execMetricsOnce sync.Once
	execMetricsVal  *execMetrics
)

func globalExecMetrics() *execMetrics {
	execMetricsOnce.Do(func() {
		r := telemetry.Default()
		m := &execMetrics{
			runs: r.Counter("cnnhe_exec_runs_total",
				"op-graph executor runs started"),
			queueWait: r.Histogram("cnnhe_exec_queue_wait_seconds",
				"time tasks spent runnable before a worker picked them up", nil),
			hoistGroups: r.Counter("cnnhe_exec_hoist_groups_total",
				"hoisted rotation groups executed as one RotateMany"),
			hoistRotations: r.Counter("cnnhe_exec_hoist_rotations_total",
				"rotations served by hoisted RotateMany calls"),
			hoistSaved: r.Counter("cnnhe_exec_hoist_saved_keyswitch_total",
				"key-switch decompositions avoided by hoisting (group size − 1 each)"),
		}
		for k := ir.OpEncrypt; k <= ir.OpRecombine; k++ {
			m.opsByKind[k] = r.Counter("cnnhe_exec_ops_total",
				"executed HE ops by kind", telemetry.L("kind", k.String()))
			m.durByKind[k] = r.Histogram("cnnhe_exec_op_seconds",
				"engine-call latency by op kind", nil, telemetry.L("kind", k.String()))
		}
		execMetricsVal = m
	})
	return execMetricsVal
}

// runTel is the per-run telemetry context. A nil *runTel means telemetry
// is fully off for the run, so every instrumentation site reduces to one
// nil check on the hot path.
type runTel struct {
	rec *telemetry.RunRecorder // nil unless the caller attached one
	m   *execMetrics           // nil unless telemetry.Enabled()

	readyAt []time.Time // per task: when it became runnable (parallel runs)
}

// newRunTel resolves the run's telemetry context from ctx and the global
// enabled flag. Returns nil when both tracing and metrics are off.
func newRunTel(ctx context.Context, tasks int) *runTel {
	rec := telemetry.RecorderFrom(ctx)
	var m *execMetrics
	if telemetry.Enabled() {
		m = globalExecMetrics()
	}
	if rec == nil && m == nil {
		return nil
	}
	return &runTel{rec: rec, m: m, readyAt: make([]time.Time, tasks)}
}

// taskReady stamps the instant a task became runnable. The stamp is
// written before the task index is sent on the ready channel, so the
// receiving worker observes it (channel happens-before).
func (t *runTel) taskReady(task int, now time.Time) {
	if t == nil {
		return
	}
	t.readyAt[task] = now
}

// queuedAt returns the task's runnable instant (zero for sequential runs).
func (t *runTel) queuedAt(task int) time.Time {
	if t == nil || task < 0 {
		return time.Time{}
	}
	return t.readyAt[task]
}

// tracing reports whether span recording is on for this run — the gate
// for observing per-op ciphertext attributes (level/scale/noise), which
// cost engine calls the metrics-only path must not pay.
func (t *runTel) tracing() bool { return t != nil && t.rec != nil }

// heAttr carries the observed output-ciphertext attributes of one op.
// The zero value (Scale 0) means "unobserved".
type heAttr struct {
	Level int
	Scale float64
	Noise float64
}

// opExecuted records one engine call covering n logical ops of the given
// kind: a span on the run recorder, and kind-labelled global metrics.
func (t *runTel) opExecuted(kind ir.Kind, stage string, worker int, queued, start, end time.Time, n, savedKS int, he heAttr) {
	if t == nil {
		return
	}
	if t.rec != nil {
		t.rec.Record(telemetry.OpSpan{
			Kind:           kind.String(),
			Stage:          stage,
			Worker:         worker,
			Queued:         queued,
			Start:          start,
			End:            end,
			Ops:            n,
			SavedKeySwitch: savedKS,
			Level:          he.Level,
			Scale:          he.Scale,
			NoiseBits:      he.Noise,
		})
	}
	if t.m != nil {
		t.m.opsByKind[kind].Add(int64(n))
		t.m.durByKind[kind].Observe(end.Sub(start).Seconds())
		if !queued.IsZero() && start.After(queued) {
			t.m.queueWait.Observe(start.Sub(queued).Seconds())
		}
		if n > 1 {
			t.m.hoistGroups.Inc()
			t.m.hoistRotations.Add(int64(n))
			t.m.hoistSaved.Add(int64(savedKS))
		}
	}
}

// runStarted counts the run and returns t unchanged (for chaining).
func (t *runTel) runStarted() *runTel {
	if t != nil && t.m != nil {
		t.m.runs.Inc()
	}
	return t
}

// phase records one coarse pipeline phase span on the recorder.
func (t *runTel) phase(name string, start, end time.Time) {
	if t == nil {
		return
	}
	t.rec.RecordPhase(name, start, end)
}
