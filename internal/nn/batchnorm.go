package nn

import (
	"math"

	"cnnhe/internal/tensor"
)

// BatchNorm2D normalizes each channel of [C, H, W] tensors over the batch
// and spatial dimensions: the paper's CNN2 places one before each
// activation so that the activation inputs fit the approximated interval.
type BatchNorm2D struct {
	C        int
	Eps      float64
	Momentum float64

	Gamma, Beta *Param
	// Running statistics used at inference time (and folded into the
	// homomorphic diagonal-affine layer).
	RunMean, RunVar []float64

	// training caches
	xs           []*tensor.Tensor
	batchMean    []float64
	batchVar     []float64
	normed       [][]float64 // x̂ per sample
	countPerStat int
}

// NewBatchNorm2D returns a batch-norm layer with γ=1, β=0.
func NewBatchNorm2D(c int) *BatchNorm2D {
	bn := &BatchNorm2D{
		C: c, Eps: 1e-5, Momentum: 0.1,
		Gamma: newParam("bn.gamma", c), Beta: newParam("bn.beta", c),
		RunMean: make([]float64, c), RunVar: make([]float64, c),
	}
	for i := range bn.Gamma.Data {
		bn.Gamma.Data[i] = 1
		bn.RunVar[i] = 1
	}
	return bn
}

// Name implements Layer.
func (bn *BatchNorm2D) Name() string { return "batchnorm2d" }

// Forward implements Layer.
func (bn *BatchNorm2D) Forward(xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	hw := xs[0].Shape[1] * xs[0].Shape[2]
	out := make([]*tensor.Tensor, len(xs))
	if !train {
		for b, x := range xs {
			y := tensor.New(x.Shape...)
			for c := 0; c < bn.C; c++ {
				inv := 1 / math.Sqrt(bn.RunVar[c]+bn.Eps)
				g, be := bn.Gamma.Data[c], bn.Beta.Data[c]
				mu := bn.RunMean[c]
				for i := 0; i < hw; i++ {
					idx := c*hw + i
					y.Data[idx] = g*(x.Data[idx]-mu)*inv + be
				}
			}
			out[b] = y
		}
		return out
	}

	m := float64(len(xs) * hw)
	bn.xs = xs
	bn.batchMean = make([]float64, bn.C)
	bn.batchVar = make([]float64, bn.C)
	bn.countPerStat = len(xs) * hw
	for c := 0; c < bn.C; c++ {
		sum := 0.0
		for _, x := range xs {
			for i := 0; i < hw; i++ {
				sum += x.Data[c*hw+i]
			}
		}
		mu := sum / m
		varSum := 0.0
		for _, x := range xs {
			for i := 0; i < hw; i++ {
				d := x.Data[c*hw+i] - mu
				varSum += d * d
			}
		}
		bn.batchMean[c] = mu
		bn.batchVar[c] = varSum / m
		bn.RunMean[c] = (1-bn.Momentum)*bn.RunMean[c] + bn.Momentum*mu
		bn.RunVar[c] = (1-bn.Momentum)*bn.RunVar[c] + bn.Momentum*bn.batchVar[c]
	}
	bn.normed = make([][]float64, len(xs))
	for b, x := range xs {
		y := tensor.New(x.Shape...)
		bn.normed[b] = make([]float64, x.Len())
		for c := 0; c < bn.C; c++ {
			inv := 1 / math.Sqrt(bn.batchVar[c]+bn.Eps)
			g, be := bn.Gamma.Data[c], bn.Beta.Data[c]
			mu := bn.batchMean[c]
			for i := 0; i < hw; i++ {
				idx := c*hw + i
				xh := (x.Data[idx] - mu) * inv
				bn.normed[b][idx] = xh
				y.Data[idx] = g*xh + be
			}
		}
		out[b] = y
	}
	return out
}

// Backward implements Layer (full batch-norm gradient).
func (bn *BatchNorm2D) Backward(grads []*tensor.Tensor) []*tensor.Tensor {
	hw := grads[0].Shape[1] * grads[0].Shape[2]
	m := float64(bn.countPerStat)
	out := make([]*tensor.Tensor, len(grads))
	for b := range grads {
		out[b] = tensor.New(grads[b].Shape...)
	}
	for c := 0; c < bn.C; c++ {
		inv := 1 / math.Sqrt(bn.batchVar[c]+bn.Eps)
		g := bn.Gamma.Data[c]
		// Accumulate Σ dŷ and Σ dŷ·x̂ over the batch.
		var sumDy, sumDyXh float64
		for b, gr := range grads {
			for i := 0; i < hw; i++ {
				idx := c*hw + i
				dy := gr.Data[idx]
				xh := bn.normed[b][idx]
				sumDy += dy
				sumDyXh += dy * xh
			}
		}
		bn.Beta.Grad[c] += sumDy
		bn.Gamma.Grad[c] += sumDyXh
		// dx = (γ·inv/m)·(m·dy − Σdy − x̂·Σ(dy·x̂))
		f := g * inv / m
		for b, gr := range grads {
			for i := 0; i < hw; i++ {
				idx := c*hw + i
				dy := gr.Data[idx]
				xh := bn.normed[b][idx]
				out[b].Data[idx] = f * (m*dy - sumDy - xh*sumDyXh)
			}
		}
	}
	return out
}

// Params implements Layer.
func (bn *BatchNorm2D) Params() []*Param { return []*Param{bn.Gamma, bn.Beta} }

// InferenceAffine returns the per-channel affine form the layer takes at
// inference time: y = scale[c]·x + shift[c]. The homomorphic pipeline
// evaluates batch norm as this diagonal-affine map.
func (bn *BatchNorm2D) InferenceAffine() (scale, shift []float64) {
	scale = make([]float64, bn.C)
	shift = make([]float64, bn.C)
	for c := 0; c < bn.C; c++ {
		inv := 1 / math.Sqrt(bn.RunVar[c]+bn.Eps)
		scale[c] = bn.Gamma.Data[c] * inv
		shift[c] = bn.Beta.Data[c] - bn.Gamma.Data[c]*bn.RunMean[c]*inv
	}
	return scale, shift
}
