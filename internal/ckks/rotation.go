package ckks

import (
	"fmt"

	"cnnhe/internal/ring"
)

// Rotate returns the ciphertext whose slot vector is ct's rotated left by k
// positions (k may be negative for right rotations). The required rotation
// key must have been generated.
func (ev *Evaluator) Rotate(ct *Ciphertext, k int) *Ciphertext {
	if k == 0 {
		return ct.CopyNew(ev.ctx)
	}
	galEl := ring.GaloisElementForRotation(ev.ctx.Params.LogN, k)
	return ev.automorphism(ct, galEl)
}

// Conjugate returns the ciphertext whose slots are complex-conjugated.
func (ev *Evaluator) Conjugate(ct *Ciphertext) *Ciphertext {
	galEl := ring.GaloisElementConjugate(ev.ctx.Params.LogN)
	return ev.automorphism(ct, galEl)
}

func (ev *Evaluator) automorphism(ct *Ciphertext, galEl uint64) *Ciphertext {
	if ev.rtk == nil {
		panic("ckks: rotation requires rotation keys")
	}
	swk, ok := ev.rtk.Keys[galEl]
	if !ok {
		panic(fmt.Sprintf("ckks: missing rotation key for galois element %d", galEl))
	}
	r := ev.ctx.R
	level := ct.Level
	limbs := r.Limbs(level, false)

	// Move to the coefficient domain and apply the automorphism.
	c0 := r.GetPoly()
	c1 := r.GetPoly()
	r.Copy(limbs, ct.C0, c0)
	r.Copy(limbs, ct.C1, c1)
	r.INTT(limbs, c0)
	r.INTT(limbs, c1)
	a0 := r.NewPolyQ(level)
	a1 := r.GetPoly()
	r.Automorphism(limbs, c0, galEl, a0)
	r.Automorphism(limbs, c1, galEl, a1)
	r.PutPoly(c0)
	r.PutPoly(c1)

	// (φ(c0), φ(c1)) decrypts under φ(s); switch φ(c1)·φ(s) back to s.
	ks0, ks1 := ev.keySwitchCoeff(level, a1, swk)
	r.PutPoly(a1)
	r.NTT(limbs, a0)
	out := &Ciphertext{C0: a0, C1: ks1, Level: level, Scale: ct.Scale}
	r.Add(limbs, out.C0, ks0, out.C0)
	return out
}

// RotateHoisted returns rotations of ct by each k in ks using hoisting:
// the RNS digit decomposition of c1 — the dominant cost of a rotation —
// is computed once and reused for every rotation, with the Galois
// automorphism applied as an NTT-domain permutation of the precomputed
// digits. All rotation keys must be available.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, ks []int) map[int]*Ciphertext {
	out := make(map[int]*Ciphertext, len(ks))
	var rest []int
	for _, k := range ks {
		if k == 0 {
			out[0] = ct.CopyNew(ev.ctx)
		} else {
			rest = append(rest, k)
		}
	}
	if len(rest) == 0 {
		return out
	}
	if ev.rtk == nil {
		panic("ckks: rotation requires rotation keys")
	}
	r := ev.ctx.R
	level := ct.Level
	limbsQ := r.Limbs(level, false)
	limbsQP := r.Limbs(level, true)
	logN := ev.ctx.Params.LogN

	// Hoist: decompose c1 once.
	c1 := r.GetPoly()
	r.Copy(limbsQ, ct.C1, c1)
	r.INTT(limbsQ, c1)
	digits := make([]*ring.Poly, level+1)
	for i := 0; i <= level; i++ {
		d := r.GetPoly()
		r.ExtendLimb(i, limbsQP, c1, d)
		r.NTT(limbsQP, d)
		digits[i] = d
	}
	r.PutPoly(c1)

	pd := r.GetPoly()
	for _, k := range rest {
		galEl := ring.GaloisElementForRotation(logN, k)
		swk, ok := ev.rtk.Keys[galEl]
		if !ok {
			panic(fmt.Sprintf("ckks: missing rotation key for galois element %d", galEl))
		}
		perm := ring.AutomorphismNTTIndex(logN, galEl)
		acc0 := r.NewPoly(level)
		acc1 := r.NewPoly(level)
		for i := 0; i <= level; i++ {
			r.PermuteNTT(limbsQP, digits[i], perm, pd)
			r.MulCoeffsThenAdd(limbsQP, pd, swk.B[i], acc0)
			r.MulCoeffsThenAdd(limbsQP, pd, swk.A[i], acc1)
		}
		r.INTT(limbsQP, acc0)
		r.INTT(limbsQP, acc1)
		ev.modDown(level, acc0)
		ev.modDown(level, acc1)
		r.NTT(limbsQ, acc0)
		r.NTT(limbsQ, acc1)
		// φ(c0) is a direct NTT-domain permutation of c0.
		rc0 := r.NewPolyQ(level)
		r.PermuteNTT(limbsQ, ct.C0, perm, rc0)
		r.Add(limbsQ, rc0, acc0, rc0)
		out[k] = &Ciphertext{C0: rc0, C1: acc1, Level: level, Scale: ct.Scale}
	}
	r.PutPoly(pd)
	for _, d := range digits {
		r.PutPoly(d)
	}
	return out
}
