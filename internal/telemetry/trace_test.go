package telemetry

import (
	"context"
	"encoding/json"
	"os"
	"testing"
	"time"
)

func TestRecorderContextPlumbing(t *testing.T) {
	if RecorderFrom(context.Background()) != nil {
		t.Fatal("empty context returned a recorder")
	}
	rec := NewRunRecorder()
	ctx := WithRecorder(context.Background(), rec)
	if RecorderFrom(ctx) != rec {
		t.Fatal("recorder not round-tripped through context")
	}
	if WithRecorder(context.Background(), nil) != context.Background() {
		t.Fatal("nil recorder should leave the context unchanged")
	}
}

func TestByKindAggregation(t *testing.T) {
	rec := NewRunRecorder()
	t0 := time.Unix(0, 0)
	rec.Record(OpSpan{Kind: "Rotate", Start: t0, End: t0.Add(4 * time.Millisecond), Ops: 3, SavedKeySwitch: 2})
	rec.Record(OpSpan{Kind: "Rotate", Start: t0.Add(time.Millisecond), End: t0.Add(2 * time.Millisecond)})
	rec.Record(OpSpan{Kind: "MulPlain", Start: t0, End: t0.Add(time.Millisecond)})
	if got := rec.OpCount(); got != 5 {
		t.Fatalf("OpCount %d, want 5", got)
	}
	byKind := rec.ByKind()
	rot := byKind["Rotate"]
	if rot.Count != 4 || rot.Calls != 2 || rot.Total != 5*time.Millisecond {
		t.Fatalf("Rotate stat %+v", rot)
	}
	if mp := byKind["MulPlain"]; mp.Count != 1 || mp.Calls != 1 {
		t.Fatalf("MulPlain stat %+v", mp)
	}
}

func TestOpSpanWait(t *testing.T) {
	t0 := time.Unix(100, 0)
	sp := OpSpan{Queued: t0, Start: t0.Add(3 * time.Millisecond)}
	if got := sp.Wait(); got != 3*time.Millisecond {
		t.Fatalf("wait %v, want 3ms", got)
	}
	if got := (OpSpan{Start: t0}).Wait(); got != 0 {
		t.Fatalf("unqueued span wait %v, want 0", got)
	}
}

// TestChromeTraceRoundTrip exports a small recording and re-parses it
// with encoding/json, checking the trace-event invariants that
// chrome://tracing relies on: every event has ph/pid/tid, "X" events
// have non-negative ts and dur, and all recorded ops appear.
func TestChromeTraceRoundTrip(t *testing.T) {
	rec := NewRunRecorder()
	t0 := time.Unix(1000, 0)
	rec.Record(OpSpan{Kind: "Encrypt", Stage: "input", Worker: 0,
		Start: t0, End: t0.Add(2 * time.Millisecond)})
	rec.Record(OpSpan{Kind: "Rotate", Stage: "conv", Worker: 1, Ops: 3, SavedKeySwitch: 2,
		Queued: t0.Add(2 * time.Millisecond),
		Start:  t0.Add(3 * time.Millisecond), End: t0.Add(6 * time.Millisecond)})
	rec.RecordPhase("eval", t0, t0.Add(6*time.Millisecond))

	data, err := rec.ChromeTrace()
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	if parsed.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit %q", parsed.DisplayTimeUnit)
	}
	var sawEncrypt, sawRotate, sawWait, sawPhase bool
	for _, ev := range parsed.TraceEvents {
		if ev.Ph != "X" && ev.Ph != "M" {
			t.Fatalf("unexpected event phase %q", ev.Ph)
		}
		if ev.PID != 1 {
			t.Fatalf("event %q pid %d, want 1", ev.Name, ev.PID)
		}
		if ev.Ph == "X" && (ev.TS < 0 || ev.Dur < 0) {
			t.Fatalf("event %q has negative ts/dur: %v/%v", ev.Name, ev.TS, ev.Dur)
		}
		switch {
		case ev.Name == "Encrypt":
			sawEncrypt = true
			if ev.Cat != "op" || ev.Dur != 2000 {
				t.Fatalf("Encrypt event %+v", ev)
			}
		case ev.Name == "Rotate×3":
			sawRotate = true
			if ev.Args["saved_keyswitch"] != float64(2) || ev.Args["stage"] != "conv" {
				t.Fatalf("Rotate args %+v", ev.Args)
			}
			if ev.TID != 1 {
				t.Fatalf("Rotate tid %d, want worker 1", ev.TID)
			}
		case ev.Name == "queue-wait":
			sawWait = true
			if ev.Dur != 1000 {
				t.Fatalf("queue-wait dur %v, want 1000µs", ev.Dur)
			}
		case ev.Name == "eval" && ev.Cat == "phase":
			sawPhase = true
			if ev.TID != phaseTID {
				t.Fatalf("phase tid %d, want %d", ev.TID, phaseTID)
			}
		}
	}
	if !sawEncrypt || !sawRotate || !sawWait || !sawPhase {
		t.Fatalf("missing events: encrypt=%v rotate=%v wait=%v phase=%v",
			sawEncrypt, sawRotate, sawWait, sawPhase)
	}
}

func TestChromeTraceFile(t *testing.T) {
	rec := NewRunRecorder()
	t0 := time.Unix(5, 0)
	rec.Record(OpSpan{Kind: "Add", Start: t0, End: t0.Add(time.Millisecond)})
	path := t.TempDir() + "/trace.json"
	if err := rec.WriteChromeTraceFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var parsed map[string]any
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("trace file is not valid JSON: %v", err)
	}
}
