// Command hectl is the key-holder's side of the encrypted inference
// protocol: the secret key is generated locally and never leaves this
// process's key directory. Only the evaluation-key bundle (public,
// relinearization and rotation keys) is uploaded; images travel as
// ciphertexts and come back as encrypted logits the server cannot read.
//
// Subcommands:
//
//	hectl info     -server URL
//	               print the server's plan + CKKS parameter manifest
//	hectl keygen   -server URL -keys DIR [-seed N]
//	               generate a key set matched to the server's manifest
//	               and save it under DIR (secret key mode 0600)
//	hectl register -server URL -keys DIR
//	               upload the evaluation-key bundle; prints fingerprint
//	hectl classify -server URL -keys DIR [-image N] [-compare-plain]
//	               encrypt test image N (MNIST, or CIFAR-10 when the
//	               server's input dim says so), classify it over the
//	               encrypted route, decrypt the logits locally; a
//	               sharded server receives one ciphertext per input
//	               shard, split by the advertised manifest
//
// keygen draws from crypto/rand by default; -seed forces deterministic
// keys for reproducible benchmarks and parity tests only.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"cnnhe/internal/client"
	"cnnhe/internal/dataset"
	"cnnhe/internal/ring"
	"cnnhe/internal/telemetry"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: hectl {info|keygen|register|classify} [flags]")
	fmt.Fprintln(os.Stderr, "run 'hectl <subcommand> -h' for flags")
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "info":
		err = runInfo(args)
	case "keygen":
		err = runKeygen(args)
	case "register":
		err = runRegister(args)
	case "classify":
		err = runClassify(args)
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hectl:", err)
		os.Exit(1)
	}
}

// commonFlags returns a FlagSet pre-populated with the flags every
// subcommand shares. The -ring-parallel default is applied at parse time
// via flag.Func so client-side keygen/encrypt contexts pick it up.
func commonFlags(name string) (*flag.FlagSet, *string, *string) {
	fs := flag.NewFlagSet("hectl "+name, flag.ExitOnError)
	server := fs.String("server", "http://localhost:8000", "heserve base URL")
	keysDir := fs.String("keys", "hectl-keys", "key directory (holds the secret key; keep it private)")
	fs.BoolFunc("ring-parallel", "limb/slab-parallel ring kernels for client-side keygen/encrypt (default: on when GOMAXPROCS > 1)",
		func(v string) error {
			on := v == "" || v == "true" || v == "1"
			ring.SetParallelDefault(on)
			return nil
		})
	return fs, server, keysDir
}

func runInfo(args []string) error {
	fs, server, _ := commonFlags("info")
	if err := fs.Parse(args); err != nil {
		return err
	}
	info, err := client.New(*server).Info(context.Background())
	if err != nil {
		return err
	}
	out, err := json.MarshalIndent(info, "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

func runKeygen(args []string) error {
	fs, server, keysDir := commonFlags("keygen")
	seed := fs.Int64("seed", 0, "deterministic key seed (0 = crypto/rand; benchmarks only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	info, err := client.New(*server).Info(context.Background())
	if err != nil {
		return err
	}
	if !info.EncryptedRoute {
		return fmt.Errorf("server %s does not mount the encrypted route (big backend?)", *server)
	}
	var opts []client.GenOption
	if *seed != 0 {
		fmt.Fprintln(os.Stderr, "warning: -seed makes keys deterministic; benchmarks only")
		opts = append(opts, client.WithSeed(*seed))
	}
	t0 := time.Now()
	ks, err := client.GenerateKeys(info, opts...)
	if err != nil {
		return err
	}
	if err := ks.Save(*keysDir); err != nil {
		return err
	}
	fp, err := ks.Fingerprint()
	if err != nil {
		return err
	}
	bundle, _ := ks.Bundle()
	fmt.Printf("generated keys for %s (%s) in %s\n", info.Model, info.Backend,
		time.Since(t0).Round(time.Millisecond))
	fmt.Printf("  rotations:   %d\n", len(info.Rotations))
	fmt.Printf("  bundle:      %.1f MiB\n", float64(len(bundle))/(1<<20))
	fmt.Printf("  fingerprint: %s\n", fp)
	fmt.Printf("  saved under: %s\n", *keysDir)
	return nil
}

func runRegister(args []string) error {
	fs, server, keysDir := commonFlags("register")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ks, err := client.LoadKeySet(*keysDir)
	if err != nil {
		return err
	}
	fp, err := client.New(*server).Register(context.Background(), ks)
	if err != nil {
		return err
	}
	fmt.Printf("registered key bundle %s\n", fp)
	return nil
}

func runClassify(args []string) error {
	fs, server, keysDir := commonFlags("classify")
	imageIdx := fs.Int("image", 0, "MNIST test-set image index")
	encSeed := fs.Int64("enc-seed", 0, "deterministic encryption seed (0 = crypto/rand; parity tests only)")
	comparePlain := fs.Bool("compare-plain", false, "also classify via the plaintext /classify route and compare")
	dataSeed := fs.Int64("data-seed", 1, "synthetic-data seed when no MNIST files are present")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ks, err := client.LoadKeySet(*keysDir)
	if err != nil {
		return err
	}
	cl := client.New(*server)
	info, err := cl.Info(context.Background())
	if err != nil {
		return err
	}
	// The server's input dimension selects the corpus: 3072 is a CIFAR-10
	// image (CNN3), anything else defaults to MNIST.
	var test dataset.Dataset
	var src string
	if info.InputDim == dataset.CIFARChannels*dataset.CIFARRows*dataset.CIFARCols {
		_, test, src = dataset.LoadCIFAR10(1, *imageIdx+1, *dataSeed)
	} else {
		_, test, src = dataset.LoadMNIST(1, *imageIdx+1, *dataSeed)
	}
	img := test.Image(*imageIdx)
	label := test.Labels[*imageIdx]
	if len(img) != info.InputDim {
		return fmt.Errorf("image length %d, server expects %d", len(img), info.InputDim)
	}

	var opts []client.ClassifyOption
	if *encSeed != 0 {
		opts = append(opts, client.WithEncryptionSeed(*encSeed))
	}
	if info.Shards > 1 {
		man, err := info.Manifest()
		if err != nil {
			return err
		}
		opts = append(opts, client.WithShardManifest(man))
	}
	t0 := time.Now()
	res, err := cl.ClassifyEncrypted(context.Background(), ks, img, info.OutputDim, opts...)
	if err != nil {
		return err
	}
	fmt.Printf("data: %s   image: %d   label: %d\n", src, *imageIdx, label)
	if info.Shards > 1 {
		fmt.Printf("sharded: %d ciphertexts per image\n", info.Shards)
	}
	fmt.Printf("encrypted route: class %d in %s (server eval %.0f ms)\n",
		res.Class, time.Since(t0).Round(time.Millisecond), res.EvalMillis)
	fmt.Printf("  logits: %.4f\n", res.Logits)
	if res.TraceID != "" {
		fmt.Printf("  trace: %s  (server: /debug/requests?trace=%s)\n", res.TraceID, res.TraceID)
	}

	if *comparePlain {
		plainClass, plainLogits, err := classifyPlain(*server, img)
		if err != nil {
			return fmt.Errorf("plaintext route: %w", err)
		}
		fmt.Printf("plaintext route: class %d\n", plainClass)
		fmt.Printf("  logits: %.4f\n", plainLogits)
		if plainClass != res.Class {
			return fmt.Errorf("routes disagree: encrypted %d, plaintext %d", res.Class, plainClass)
		}
		fmt.Println("routes agree")
	}
	return nil
}

// classifyPlain hits the micro-batching plaintext route with the same
// image, for a side-by-side check.
func classifyPlain(server string, img []float64) (int, []float64, error) {
	body, err := json.Marshal(map[string]any{"image": img})
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequest(http.MethodPost, server+"/classify", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(client.HeaderTraceparent, telemetry.NewTraceContext().Traceparent())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, nil, fmt.Errorf("status %s", resp.Status)
	}
	var out struct {
		Class  int       `json:"class"`
		Logits []float64 `json:"logits"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return 0, nil, err
	}
	return out.Class, out.Logits, nil
}
