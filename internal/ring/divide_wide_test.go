package ring

import (
	"math/big"
	"math/rand"
	"testing"

	"cnnhe/internal/primes"
)

func TestDivideExactByLimbWide(t *testing.T) {
	chain, err := primes.BuildChain(5, []int{80, 80, 80}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(32, chain.Moduli, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	level := 2
	limbs := r.Limbs(level, false)
	qTop := r.SubRings[level].Modulus()
	rng := rand.New(rand.NewSource(41))
	vec := make([]*big.Int, r.N())
	exact := make([]*big.Int, r.N())
	for i := range vec {
		v := big.NewInt(rng.Int63n(1<<40) - (1 << 39))
		exact[i] = v
		vec[i] = new(big.Int).Mul(v, qTop)
	}
	p := r.NewPoly(level)
	r.SetCoeffsBig(limbs, vec, p)
	out := r.NewPoly(level)
	r.DivideExactByLimb(level, r.Limbs(level-1, false), p, out)
	got := r.CoeffsBigCentered(level-1, out)
	for i := range exact {
		if got[i].Cmp(exact[i]) != 0 {
			t.Fatalf("wide exact division mismatch at %d: got %v want %v", i, got[i], exact[i])
		}
	}
}
