package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

func TestServeEndpoints(t *testing.T) {
	defer SetEnabled(false)
	reg := NewRegistry()
	reg.Counter("cnnhe_test_requests_total", "test counter", L("kind", "Rotate")).Add(7)

	srv, err := Serve("localhost:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !Enabled() {
		t.Fatal("Serve must enable metric collection")
	}
	base := "http://" + srv.Addr

	code, body, ctype := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if !strings.HasPrefix(ctype, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content-type %q", ctype)
	}
	if !strings.Contains(body, `cnnhe_test_requests_total{kind="Rotate"} 7`) {
		t.Fatalf("/metrics missing counter series:\n%s", body)
	}
	if !strings.Contains(body, "# TYPE cnnhe_test_requests_total counter") {
		t.Fatalf("/metrics missing TYPE line:\n%s", body)
	}

	code, body, _ = get(t, base+"/metrics.json")
	if code != http.StatusOK {
		t.Fatalf("/metrics.json status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics.json not a snapshot: %v", err)
	}
	if _, ok := snap.Family("cnnhe_test_requests_total"); !ok {
		t.Fatalf("/metrics.json missing family: %s", body)
	}

	code, body, _ = get(t, base+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("/debug/vars status %d", code)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal([]byte(body), &vars); err != nil {
		t.Fatalf("/debug/vars not JSON: %v", err)
	}
	if _, ok := vars["memstats"]; !ok {
		t.Fatal("/debug/vars missing memstats")
	}
	if _, ok := vars["cnnhe_metrics"]; !ok {
		t.Fatal("/debug/vars missing cnnhe_metrics")
	}

	code, body, _ = get(t, base+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/ status %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles:\n%s", body)
	}

	code, _, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}

	if code, _, _ := get(t, base+"/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", nil); err == nil {
		t.Fatal("Serve on a bogus address must fail")
	}
}

func TestServerCloseNil(t *testing.T) {
	var s *Server
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
