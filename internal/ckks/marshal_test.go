package ckks

import (
	"bytes"
	"errors"
	"math"
	"math/rand"
	"testing"
)

func TestCiphertextRoundTrip(t *testing.T) {
	k := tiny(t)
	rng := rand.New(rand.NewSource(71))
	n := k.ctx.Params.Slots()
	vals := randVec(rng, n, 3)
	ct := k.ept.Encrypt(k.enc.Encode(vals, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale))
	// Serialize at a lower level too.
	ct = k.ev.Rescale(k.ev.MulConst(ct, 1.0, 0))

	var buf bytes.Buffer
	if err := k.ctx.WriteCiphertext(&buf, ct); err != nil {
		t.Fatal(err)
	}
	size := buf.Len()
	back, err := k.ctx.ReadCiphertext(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Level != ct.Level || back.Scale != ct.Scale {
		t.Fatalf("metadata mismatch: %v vs %v", back, ct)
	}
	got := k.enc.Decode(k.dec.DecryptNew(back))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-vals[i]) > 1e-3 {
			t.Fatalf("value mismatch after roundtrip at %d", i)
		}
	}
	if size == 0 {
		t.Fatal("empty serialization")
	}
}

func TestPublicKeyRoundTripEncrypts(t *testing.T) {
	k := tiny(t)
	var buf bytes.Buffer
	pk := k.kg.GenPublicKey(k.sk)
	if err := k.ctx.WritePublicKey(&buf, pk); err != nil {
		t.Fatal(err)
	}
	pk2, err := k.ctx.ReadPublicKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	enc2 := NewEncryptor(k.ctx, pk2, 999)
	vals := []float64{1.25, -2.5}
	ct := enc2.Encrypt(k.enc.Encode(vals, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale))
	got := k.enc.Decode(k.dec.DecryptNew(ct))
	for i, v := range vals {
		if math.Abs(got[i]-v) > 1e-3 {
			t.Fatalf("deserialized pk produced wrong encryption at %d", i)
		}
	}
}

func TestSwitchingKeyRoundTripRelinearizes(t *testing.T) {
	k := tiny(t)
	var buf bytes.Buffer
	if err := k.ctx.WriteSwitchingKey(&buf, &k.rlk.SwitchingKey); err != nil {
		t.Fatal(err)
	}
	swk, err := k.ctx.ReadSwitchingKey(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ev := NewEvaluator(k.ctx, &RelinearizationKey{SwitchingKey: *swk}, nil)
	rng := rand.New(rand.NewSource(73))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	b := randVec(rng, n, 2)
	L := k.ctx.Params.MaxLevel()
	cta := k.ept.Encrypt(k.enc.Encode(a, L, k.ctx.Params.Scale))
	ctb := k.ept.Encrypt(k.enc.Encode(b, L, k.ctx.Params.Scale))
	prod := ev.Rescale(ev.Mul(cta, ctb))
	got := k.enc.Decode(k.dec.DecryptNew(prod))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-a[i]*b[i]) > 1e-2 {
			t.Fatalf("deserialized rlk failed relinearization at %d", i)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	k := tiny(t)
	if _, err := k.ctx.ReadCiphertext(bytes.NewReader([]byte{0x00, 0x01})); err == nil {
		t.Fatal("expected error for bad tag")
	}
	if _, err := k.ctx.ReadPublicKey(bytes.NewReader([]byte{tagCiphertext})); err == nil {
		t.Fatal("expected error for wrong tag")
	}
	if _, err := k.ctx.ReadCiphertext(bytes.NewReader(nil)); err == nil {
		t.Fatal("expected error for empty input")
	}
	// Truncated ciphertext.
	var buf bytes.Buffer
	ct := k.ept.Encrypt(k.enc.Encode([]float64{1}, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale))
	if err := k.ctx.WriteCiphertext(&buf, ct); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := k.ctx.ReadCiphertext(bytes.NewReader(trunc)); err == nil {
		t.Fatal("expected error for truncated ciphertext")
	}
}

// TestMarshalCorruption drives every serialized type through truncation
// and single-bit flips: each corrupted blob must produce a typed error
// (ErrFormat or ErrChecksum) — never a panic, never silent success.
func TestMarshalCorruption(t *testing.T) {
	k := tiny(t)
	ct := k.ept.Encrypt(k.enc.Encode([]float64{1.5, -2.25}, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale))
	pk := k.kg.GenPublicKey(k.sk)

	encode := func(write func(w *bytes.Buffer) error) []byte {
		var buf bytes.Buffer
		if err := write(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	cases := []struct {
		name string
		blob []byte
		read func([]byte) error
	}{
		{
			name: "ciphertext",
			blob: encode(func(w *bytes.Buffer) error { return k.ctx.WriteCiphertext(w, ct) }),
			read: func(b []byte) error { _, err := k.ctx.ReadCiphertext(bytes.NewReader(b)); return err },
		},
		{
			name: "public-key",
			blob: encode(func(w *bytes.Buffer) error { return k.ctx.WritePublicKey(w, pk) }),
			read: func(b []byte) error { _, err := k.ctx.ReadPublicKey(bytes.NewReader(b)); return err },
		},
		{
			name: "switching-key",
			blob: encode(func(w *bytes.Buffer) error { return k.ctx.WriteSwitchingKey(w, &k.rlk.SwitchingKey) }),
			read: func(b []byte) error { _, err := k.ctx.ReadSwitchingKey(bytes.NewReader(b)); return err },
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			safeRead := func(b []byte) (err error) {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("decode panicked: %v", r)
					}
				}()
				return tc.read(b)
			}
			if err := safeRead(tc.blob); err != nil {
				t.Fatalf("pristine blob failed to decode: %v", err)
			}

			// Truncation: dense near the header, sampled through the body,
			// and every cut inside the trailing checksum.
			cuts := map[int]bool{}
			for i := 0; i < len(tc.blob) && i < 40; i++ {
				cuts[i] = true
			}
			for i := 1; i <= 4; i++ {
				cuts[len(tc.blob)-i] = true
			}
			rng := rand.New(rand.NewSource(41))
			for i := 0; i < 32; i++ {
				cuts[rng.Intn(len(tc.blob))] = true
			}
			for cut := range cuts {
				err := safeRead(tc.blob[:cut])
				if err == nil {
					t.Fatalf("truncation at %d/%d decoded successfully", cut, len(tc.blob))
				}
				if cut == 0 {
					continue // bare EOF at the leading tag is passed through
				}
				if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrChecksum) {
					t.Fatalf("truncation at %d: untyped error %v", cut, err)
				}
			}

			// Single-bit flips: the CRC must catch every one the structural
			// checks miss.
			for i := 0; i < 200; i++ {
				pos := rng.Intn(len(tc.blob))
				bit := byte(1) << uint(rng.Intn(8))
				mut := append([]byte(nil), tc.blob...)
				mut[pos] ^= bit
				err := safeRead(mut)
				if err == nil {
					t.Fatalf("bit flip at byte %d mask %02x decoded successfully", pos, bit)
				}
				if !errors.Is(err, ErrFormat) && !errors.Is(err, ErrChecksum) {
					t.Fatalf("bit flip at byte %d: untyped error %v", pos, err)
				}
			}
		})
	}
}
