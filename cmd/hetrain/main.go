// Command hetrain trains the paper's CNN1/CNN2 architectures (Figs. 3-4)
// on MNIST and the sharded-serving CNN3 architecture on CIFAR-10 (real
// data via MNIST_DIR / CIFAR10_DIR or the download cache, synthetic
// otherwise), retrofits SLAF polynomial activations per the CNN-HE-SLAF
// recipe, and saves the HE-ready models.
//
// Usage:
//
//	hetrain -model both -out models -train 6000 -test 1000 -epochs 10
//	hetrain -model cnn3 -out models -train 6000 -test 1000
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"

	"cnnhe/internal/dataset"
	"cnnhe/internal/nn"
	"cnnhe/internal/ring"
)

// archDegree is the default SLAF degree per architecture: degree 3 for
// the MNIST networks (paper setting), degree 4 for CIFAR-10 CNN3, whose
// coarser classes need the extra activation expressiveness the deeper
// serving chain affords.
func archDegree(arch string) int {
	if arch == "cnn3" {
		return 4
	}
	return 3
}

func main() {
	var (
		model    = flag.String("model", "both", "architecture to train: cnn1, cnn2, cnn3, both (cnn1+cnn2) or all")
		outDir   = flag.String("out", "models", "output directory for .gob models")
		trainN   = flag.Int("train", 6000, "training images (paper: 50000)")
		testN    = flag.Int("test", 1000, "test images (paper: 10000)")
		epochs   = flag.Int("epochs", 10, "ReLU training epochs (paper: 30)")
		retrofit = flag.Int("retrofit", 3, "SLAF retrofit epochs")
		degree   = flag.Int("degree", 0, "SLAF polynomial degree (0 = per-architecture default: 3 for cnn1/cnn2, 4 for cnn3)")
		seed     = flag.Int64("seed", 1, "random seed")
		quiet    = flag.Bool("q", false, "suppress progress logs")
		ringPar  = flag.Bool("ring-parallel", ring.ParallelDefault(), "limb/slab-parallel ring kernels for any HE contexts built in-process (default: on when GOMAXPROCS > 1)")
	)
	flag.Parse()

	// hetrain itself trains plaintext models, but the flag is plumbed
	// uniformly across the daemons so scripts can set it everywhere.
	ring.SetParallelDefault(*ringPar)
	if !*quiet {
		fmt.Printf("ring kernels: ring_parallel=%v gomaxprocs=%d\n", *ringPar, runtime.GOMAXPROCS(0))
	}

	var archs []string
	switch *model {
	case "both":
		archs = []string{"cnn1", "cnn2"}
	case "all":
		archs = []string{"cnn1", "cnn2", "cnn3"}
	case "cnn1", "cnn2", "cnn3":
		archs = []string{*model}
	default:
		log.Fatalf("unknown model %q", *model)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	// The two corpora load lazily so an MNIST-only run never touches the
	// CIFAR cache and vice versa.
	type corpus struct {
		train, test nn.Dataset
	}
	loaded := map[string]*corpus{}
	corpusFor := func(arch string) *corpus {
		name := "mnist"
		if arch == "cnn3" {
			name = "cifar10"
		}
		if c, ok := loaded[name]; ok {
			return c
		}
		var train, test dataset.Dataset
		var src string
		if name == "cifar10" {
			train, test, src = dataset.LoadCIFAR10(*trainN, *testN, *seed)
		} else {
			train, test, src = dataset.LoadMNIST(*trainN, *testN, *seed)
		}
		fmt.Printf("dataset %s: %s (%d train / %d test)\n", name, src, train.Len(), test.Len())
		c := &corpus{train: train.ToNN(), test: test.ToNN()}
		loaded[name] = c
		return c
	}

	for _, arch := range archs {
		data := corpusFor(arch)
		rng := rand.New(rand.NewSource(*seed + 100))
		var m *nn.Model
		switch arch {
		case "cnn1":
			m = nn.NewCNN1(rng)
		case "cnn2":
			m = nn.NewCNN2(rng)
		case "cnn3":
			m = nn.NewCNN3(rng)
		}
		fmt.Printf("== training %s: %d epochs, SGD momentum 0.9, 1-cycle LR ==\n", arch, *epochs)
		tc := nn.TrainConfig{
			Epochs: *epochs, BatchSize: 64, MaxLR: 0.08, Momentum: 0.9,
			Seed: *seed + 200, Verbose: !*quiet, LogEvery: 5,
		}
		trainAcc := nn.Train(m, data.train, tc)
		reluAcc := nn.Evaluate(m, data.test)
		fmt.Printf("%s ReLU: train %.3f%% test %.3f%%\n", arch, 100*trainAcc, 100*reluAcc)

		deg := *degree
		if deg == 0 {
			deg = archDegree(arch)
		}
		rc := nn.DefaultRetrofitConfig()
		rc.Degree = deg
		rc.Epochs = *retrofit
		rc.Seed = *seed + 300
		rc.Verbose = !*quiet
		slaf := nn.Retrofit(m, data.train, rc)
		slafAcc := nn.Evaluate(slaf, data.test)
		fmt.Printf("%s SLAF(deg %d): test %.3f%%\n", arch, deg, 100*slafAcc)

		path := filepath.Join(*outDir, arch+".gob")
		if err := slaf.Save(path, arch); err != nil {
			log.Fatalf("saving %s: %v", path, err)
		}
		fmt.Printf("saved %s\n", path)
	}
}
