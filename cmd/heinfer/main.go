// Command heinfer runs a single privacy-preserving classification: it
// plays both parties of Fig. 1 — the client encodes and encrypts an image
// under CKKS-RNS, the "server" side evaluates the compiled CNN plan
// blindly, and the client decrypts the logits.
//
// Inference runs through the guarded runtime (internal/guard): engine
// panics, scale drift, corrupted ciphertexts and an exhausted noise
// budget surface as classified errors instead of garbage logits, and the
// process exit code reports the failure class:
//
//	0  success
//	1  setup or unclassified failure
//	2  corrupted input (corrupt/malformed ciphertext, scale drift, bad image)
//	3  noise budget or level exhausted (parameters too small for the model)
//	4  deadline exceeded or cancelled
//
// Observability: -telemetry-addr serves live /metrics (Prometheus text),
// /debug/vars and /debug/pprof on localhost while the inference runs;
// -trace exports the run as Chrome trace-event JSON loadable in
// chrome://tracing or https://ui.perfetto.dev.
//
// Usage:
//
//	heinfer -model models/cnn1.gob -image 3 -logn 12 [-backend rns|big]
//	        [-rnsparts 3] [-timeout 90s] [-retries 2]
//	        [-telemetry-addr localhost:8080] [-trace trace.json] [-log-level info]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"math/rand"
	"os"
	"runtime"
	"time"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/guard"
	"cnnhe/internal/henn"
	"cnnhe/internal/henn/ir"
	"cnnhe/internal/henn/ir/opt"
	"cnnhe/internal/mnist"
	"cnnhe/internal/nn"
	"cnnhe/internal/primes"
	"cnnhe/internal/ring"
	"cnnhe/internal/telemetry"
	"cnnhe/internal/tensor"
)

// Exit codes for the distinct failure classes.
const (
	exitOK        = 0
	exitSetup     = 1
	exitCorrupt   = 2
	exitExhausted = 3
	exitDeadline  = 4
)

// exitClass names an exit code for structured logs.
func exitClass(code int) string {
	switch code {
	case exitOK:
		return "ok"
	case exitCorrupt:
		return "corrupt"
	case exitExhausted:
		return "exhausted"
	case exitDeadline:
		return "deadline"
	}
	return "setup"
}

// parseLevel maps a -log-level flag value to a slog level.
func parseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	}
	return slog.LevelInfo
}

// retryableClass reports whether a failure class is worth another
// attempt. Corrupted input (exit 2: bad image, malformed ciphertext,
// scale drift) and an exhausted noise budget or modulus chain (exit 3:
// parameters too small for the model) are deterministic — the same
// attempt fails the same way every time — so retrying them only wastes
// full inference latencies. Deadline (4) and unclassified (1) failures
// may be transient (machine load, injected faults) and are retried.
func retryableClass(code int) bool {
	switch code {
	case exitCorrupt, exitExhausted:
		return false
	}
	return true
}

// Backoff schedule for retryable failures: exponential from 100ms,
// capped at 5s, with full jitter in [d/2, d] so concurrent clients
// recovering from a shared stall do not re-stampede in lockstep.
const (
	baseBackoff = 100 * time.Millisecond
	maxBackoff  = 5 * time.Second
)

// retryBackoff returns the sleep before retry number attempt (0-based).
// rand01 supplies the jitter draw in [0, 1).
func retryBackoff(attempt int, rand01 float64) time.Duration {
	d := baseBackoff
	for i := 0; i < attempt && d < maxBackoff; i++ {
		d *= 2
	}
	if d > maxBackoff {
		d = maxBackoff
	}
	half := float64(d) / 2
	return time.Duration(half + rand01*half)
}

// classifyExit maps an inference error to its exit code.
func classifyExit(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return exitDeadline
	case errors.Is(err, guard.ErrNoiseBudgetExhausted), errors.Is(err, guard.ErrLevelExhausted):
		return exitExhausted
	case errors.Is(err, guard.ErrCorruptCiphertext), errors.Is(err, guard.ErrResidueMissing),
		errors.Is(err, guard.ErrScaleDrift), errors.Is(err, guard.ErrInvalidPlaintext),
		errors.Is(err, ckks.ErrFormat), errors.Is(err, ckks.ErrChecksum),
		errors.Is(err, henn.ErrBadInput):
		return exitCorrupt
	default:
		return exitSetup
	}
}

func main() {
	var (
		modelPath = flag.String("model", "models/cnn1.gob", "trained SLAF model (.gob)")
		imageIdx  = flag.Int("image", 0, "test-set image index")
		logN      = flag.Int("logn", 12, "ring degree exponent (14 = paper scale)")
		backend   = flag.String("backend", "rns", "rns (CKKS-RNS) or big (multiprecision CKKS)")
		rnsParts  = flag.Int("rnsparts", 0, "enable the Fig. 5 input-decomposition pipeline with this many parts (0 = off)")
		seed      = flag.Int64("seed", 1, "random seed")
		timeout   = flag.Duration("timeout", 0, "per-attempt inference deadline (0 = none)")
		retries   = flag.Int("retries", 0, "additional attempts after a failed inference")
		verbose   = flag.Bool("report", false, "print the per-stage timing and noise-budget report")
		optFlag   = flag.String("opt", "on", "graph optimizer: on, off, exact, or a comma-separated pass list (cse,fold,replan,rescale,fuse,dce)")
		telAddr   = flag.String("telemetry-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address (e.g. localhost:8080; empty = off)")
		tracePath = flag.String("trace", "", "export the inference as Chrome trace-event JSON to this path")
		logLevel  = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		ringPar   = flag.Bool("ring-parallel", ring.ParallelDefault(), "limb/slab-parallel ring kernels (default: on when GOMAXPROCS > 1)")
	)
	flag.Parse()

	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr,
		&slog.HandlerOptions{Level: parseLevel(*logLevel)})))
	ring.SetParallelDefault(*ringPar)
	slog.Info("ring kernels", "ring_parallel", *ringPar, "gomaxprocs", runtime.GOMAXPROCS(0))
	fatal := func(msg string, args ...any) {
		slog.Error(msg, args...)
		os.Exit(exitSetup)
	}

	if *telAddr != "" {
		srv, err := telemetry.Serve(*telAddr, nil)
		if err != nil {
			fatal("telemetry server failed", "err", err)
		}
		defer srv.Close()
		slog.Info("telemetry listening", "url", "http://"+srv.Addr)
	}

	model, arch, err := nn.LoadModel(*modelPath)
	if err != nil {
		fatal("loading model failed (run hetrain first)", "model", *modelPath, "err", err)
	}
	_, test, src := mnist.Load(16, *imageIdx+1, *seed)
	fmt.Printf("model: %s   data: %s\n", arch, src)
	img := test.Image(*imageIdx)
	label := test.Labels[*imageIdx]

	plan, err := henn.Compile(model, 1<<(*logN-1))
	if err != nil {
		fatal("compiling plan failed", "model", *modelPath, "err", err)
	}
	fmt.Print(plan.Describe())

	optOpts, err := opt.ParseFlag(*optFlag)
	if err != nil {
		fatal("bad -opt flag", "opt", *optFlag, "err", err)
	}
	plan.Opt = optOpts

	k := plan.Depth + 1
	if k < 13 {
		k = 13
	}
	bits := []int{40}
	for i := 0; i < k-2; i++ {
		bits = append(bits, 26)
	}
	bits = append(bits, 40)
	params, err := ckks.NewParameters(*logN, bits, 60, 1, math.Exp2(26))
	if err != nil {
		fatal("building CKKS parameters failed", "logn", *logN, "err", err)
	}
	if err := plan.CheckDepth(params.MaxLevel()); err != nil {
		fatal("plan deeper than the modulus chain", "model", *modelPath, "err", err)
	}

	var engine henn.Engine
	switch *backend {
	case "rns":
		e, err := henn.NewRNSEngine(params, plan.Rotations(), *seed+7)
		if err != nil {
			fatal("creating engine failed", "backend", *backend, "err", err)
		}
		engine = e
	case "big":
		bp, err := ckksbig.FromRNSParameters(params)
		if err != nil {
			fatal("creating engine failed", "backend", *backend, "err", err)
		}
		e, err := henn.NewBigEngine(bp, plan.Rotations(), *seed+7)
		if err != nil {
			fatal("creating engine failed", "backend", *backend, "err", err)
		}
		engine = e
	default:
		fatal("unknown backend", "backend", *backend)
	}
	fmt.Printf("backend: %s, N=2^%d, chain length %d (log q = %d)\n",
		engine.Name(), *logN, k, params.Chain.LogQ())

	var rp *henn.RNSPlan
	if *rnsParts > 0 {
		rp, err = henn.NewRNSPlan(plan, *rnsParts, true)
		if err != nil {
			fatal("building RNS decomposition plan failed", "parts", *rnsParts, "err", err)
		}
		rp.Opt = optOpts
	}

	// Lower and optimize once up front to report the op-graph shape —
	// before and after the pass pipeline; errors here are compile-time
	// problems (depth exhaustion, scale mismatch), not HE failures.
	{
		var g *ir.Graph
		if rp != nil {
			g, err = rp.Lower(engine)
		} else {
			g, err = plan.Lower(engine)
		}
		if err != nil {
			fatal("lowering plan failed", "model", *modelPath, "backend", *backend, "err", err)
		}
		fmt.Printf("lowered graph: %s\n", g.Stats())
		res, err := opt.Optimize(engine, g, optOpts)
		if err != nil {
			fatal("graph optimizer failed", "model", *modelPath, "backend", *backend, "err", err)
		}
		fmt.Println(res.Summary())
		for _, line := range res.PassLines() {
			fmt.Printf("  %s\n", line)
		}
	}

	// Each attempt gets a fresh guard and a fresh deadline: a tripped
	// guard latches its first error and must not be reused. Lowering and
	// ahead-of-time plaintext encoding are paid via Warm before the
	// deadline clock starts — the timeout budgets ciphertext work only.
	attempt := func() (henn.Logits, *henn.Report, *telemetry.RunRecorder, error) {
		g := guard.New(engine, guard.DefaultConfig())
		var warmErr error
		if rp != nil {
			warmErr = rp.Warm(g)
		} else {
			warmErr = plan.Warm(g)
		}
		if warmErr != nil {
			return nil, &henn.Report{FailedStage: "prepare"}, nil, warmErr
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		var rec *telemetry.RunRecorder
		if *tracePath != "" {
			// Stamp a trace ID so the exported Chrome trace carries the
			// same trace_context metadata a served request would.
			tc := telemetry.NewTraceContext()
			rec = telemetry.NewRunRecorder()
			rec.SetTrace(tc.TraceIDString(), tc.TraceIDString()[:16])
			ctx = telemetry.WithTraceContext(telemetry.WithRecorder(ctx, rec), tc)
		}
		var (
			logits henn.Logits
			rep    *henn.Report
			err    error
		)
		if rp != nil {
			logits, rep, err = rp.InferCtx(ctx, g, img)
		} else {
			logits, rep, err = plan.InferCtx(ctx, g, img)
		}
		return logits, rep, rec, err
	}

	var (
		logits henn.Logits
		rep    *henn.Report
		rec    *telemetry.RunRecorder
	)
	rng := rand.New(rand.NewSource(*seed + 101))
	for try := 0; ; try++ {
		logits, rep, rec, err = attempt()
		if err == nil {
			break
		}
		code := classifyExit(err)
		slog.Error("inference attempt failed",
			"attempt", try+1, "of", *retries+1,
			"model", arch, "backend", engine.Name(),
			"stage", rep.FailedStage, "class", exitClass(code), "err", err)
		if try >= *retries {
			os.Exit(code)
		}
		if !retryableClass(code) {
			slog.Error("failure class is deterministic, not retrying", "class", exitClass(code))
			os.Exit(code)
		}
		delay := retryBackoff(try, rng.Float64())
		slog.Info("backing off before retry", "delay", delay)
		time.Sleep(delay)
	}

	if rec != nil {
		if err := rec.WriteChromeTraceFile(*tracePath); err != nil {
			fatal("writing trace failed", "path", *tracePath, "err", err)
		}
		slog.Info("trace written", "path", *tracePath,
			"spans", len(rec.Spans()), "ops", rec.OpCount(),
			"trace_id", rec.TraceID())
	}

	// Plaintext reference.
	x := tensor.New(1, 28, 28)
	for i := range img {
		x.Data[i] = img[i] / 255
	}
	plain := model.Forward(x).Data

	fmt.Printf("\nencrypted classification latency: %v (encrypt %v, decrypt %v)\n",
		rep.Eval, rep.Encrypt, rep.Decrypt)
	if *verbose {
		fmt.Print(rep)
	}
	fmt.Printf("true label: %d\n", label)
	fmt.Printf("%-10s %12s %12s\n", "class", "HE logit", "plain logit")
	for i := range logits {
		fmt.Printf("%-10d %12.4f %12.4f\n", i, logits[i], plain[i])
	}
	fmt.Printf("\nHE prediction:    %d\n", logits.Argmax())
	fmt.Printf("plain prediction: %d\n", henn.Logits(plain).Argmax())
	_ = primes.PaperBitSizes
}
