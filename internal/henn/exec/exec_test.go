package exec

import (
	"context"
	"errors"
	"fmt"
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"

	"cnnhe/internal/henn/ir"
)

// fakeCt/fakePt evaluate the graph over plain float vectors so scheduler
// behaviour (ordering, hoisting, freeing, parallelism) is testable
// without a CKKS backend.
type fakeCt struct {
	v     []float64
	level int
	scale float64
}

type fakePt struct {
	v     []float64
	level int
	scale float64
}

type fakeEngine struct {
	mu      sync.Mutex
	quiet   bool // skip call logging (keeps benchmark memory flat)
	calls   []string
	stages  []string
	panicOn string
}

func (f *fakeEngine) log(op string) {
	if f.quiet {
		return
	}
	f.mu.Lock()
	f.calls = append(f.calls, op)
	panicOn := f.panicOn
	f.mu.Unlock()
	if panicOn == op {
		panic(errors.New("fake: induced failure in " + op))
	}
}

func (f *fakeEngine) BeginStage(name string) {
	f.mu.Lock()
	f.stages = append(f.stages, name)
	f.mu.Unlock()
}

func (f *fakeEngine) Name() string              { return "fake" }
func (f *fakeEngine) Slots() int                { return 4 }
func (f *fakeEngine) MaxLevel() int             { return 3 }
func (f *fakeEngine) Scale() float64            { return 1 }
func (f *fakeEngine) QiFloat(level int) float64 { return 2 }

func (f *fakeEngine) EncryptVec(values []float64) ir.Ct {
	f.log("EncryptVec")
	v := make([]float64, f.Slots())
	copy(v, values)
	return &fakeCt{v: v, level: f.MaxLevel(), scale: f.Scale()}
}

func (f *fakeEngine) DecryptVec(ct ir.Ct) []float64 { return ct.(*fakeCt).v }
func (f *fakeEngine) Level(ct ir.Ct) int            { return ct.(*fakeCt).level }
func (f *fakeEngine) ScaleOf(ct ir.Ct) float64      { return ct.(*fakeCt).scale }

func (f *fakeEngine) lift(ct ir.Ct, op string) *fakeCt {
	f.log(op)
	c := ct.(*fakeCt)
	v := make([]float64, len(c.v))
	copy(v, c.v)
	return &fakeCt{v: v, level: c.level, scale: c.scale}
}

func (f *fakeEngine) Add(a, b ir.Ct) ir.Ct {
	out := f.lift(a, "Add")
	for i, x := range b.(*fakeCt).v {
		out.v[i] += x
	}
	return out
}

func (f *fakeEngine) AddPlainVec(ct ir.Ct, v []float64) ir.Ct {
	out := f.lift(ct, "AddPlainVec")
	for i := range v {
		out.v[i] += v[i]
	}
	return out
}

func (f *fakeEngine) AddPlainVecCached(ct ir.Ct, key string, v []float64) ir.Ct {
	return f.AddPlainVec(ct, v)
}

func (f *fakeEngine) MulPlainVecAtScale(ct ir.Ct, v []float64, scale float64) ir.Ct {
	out := f.lift(ct, "MulPlainVecAtScale")
	for i := range out.v {
		if i < len(v) {
			out.v[i] *= v[i]
		} else {
			out.v[i] = 0
		}
	}
	out.scale *= scale
	return out
}

func (f *fakeEngine) MulPlainVecCached(ct ir.Ct, key string, v []float64, scale float64) ir.Ct {
	return f.MulPlainVecAtScale(ct, v, scale)
}

func (f *fakeEngine) MulRelin(a, b ir.Ct) ir.Ct {
	out := f.lift(a, "MulRelin")
	bc := b.(*fakeCt)
	for i := range out.v {
		out.v[i] *= bc.v[i]
	}
	out.scale *= bc.scale
	return out
}

func (f *fakeEngine) MulInt(ct ir.Ct, n int64) ir.Ct {
	out := f.lift(ct, "MulInt")
	for i := range out.v {
		out.v[i] *= float64(n)
	}
	return out
}

func (f *fakeEngine) Rescale(ct ir.Ct) ir.Ct {
	out := f.lift(ct, "Rescale")
	out.scale /= f.QiFloat(out.level)
	out.level--
	return out
}

func (f *fakeEngine) DropLevel(ct ir.Ct, n int) ir.Ct {
	out := f.lift(ct, "DropLevel")
	out.level -= n
	return out
}

func rotated(v []float64, k int) []float64 {
	n := len(v)
	out := make([]float64, n)
	for i := range v {
		out[i] = v[(i+k%n+n)%n]
	}
	return out
}

func (f *fakeEngine) Rotate(ct ir.Ct, k int) ir.Ct {
	out := f.lift(ct, "Rotate")
	out.v = rotated(out.v, k)
	return out
}

func (f *fakeEngine) RotateMany(ct ir.Ct, ks []int) map[int]ir.Ct {
	f.log("RotateMany")
	c := ct.(*fakeCt)
	out := make(map[int]ir.Ct, len(ks))
	for _, k := range ks {
		out[k] = &fakeCt{v: rotated(c.v, k), level: c.level, scale: c.scale}
	}
	return out
}

func (f *fakeEngine) EncodeVecsAt(specs []ir.PlainSpec) []ir.Pt {
	f.log("EncodeVecsAt")
	out := make([]ir.Pt, len(specs))
	for i, s := range specs {
		out[i] = &fakePt{v: s.Values, level: s.Level, scale: s.Scale}
	}
	return out
}

func (f *fakeEngine) MulPlainPt(ct ir.Ct, pt ir.Pt) ir.Ct {
	p := pt.(*fakePt)
	out := f.lift(ct, "MulPlainPt")
	for i := range out.v {
		if i < len(p.v) {
			out.v[i] *= p.v[i]
		} else {
			out.v[i] = 0
		}
	}
	out.scale *= p.scale
	return out
}

func (f *fakeEngine) AddPlainPt(ct ir.Ct, pt ir.Pt) ir.Ct {
	p := pt.(*fakePt)
	out := f.lift(ct, "AddPlainPt")
	for i := range p.v {
		out.v[i] += p.v[i]
	}
	return out
}

var _ ir.Engine = (*fakeEngine)(nil)

// testGraph builds, by hand, a two-stage graph exercising every executor
// path: a hoist group, standalone ops, a plaintext multiply and add, a
// squaring, a rescale, and a final recombine-free output.
//
//	stage 0: encrypt x                             (not recorded)
//	stage 1: r1 = rot(x,1); r2 = rot(x,2) [hoisted]
//	         s  = r1 + r2
//	         m  = s ⊙ w        (w = [1,2,3,4], scale 2)
//	         a  = m + b        (b = [0.5,...])
//	         y  = rescale(a·a)
func testGraph() *ir.Graph {
	g := &ir.Graph{Slots: 4, Inputs: 1, Output: 7}
	g.Stages = []ir.StageInfo{
		{Name: "encrypt", Out: 0, Record: false},
		{Name: "stage 0 (mix)", Out: 7, Record: true},
	}
	add := func(op ir.Op) int {
		op.ID = len(g.Ops)
		g.Ops = append(g.Ops, op)
		return op.ID
	}
	x := add(ir.Op{Kind: ir.OpEncrypt, Hoist: -1, Stage: 0, Level: 3, Scale: 1})
	r1 := add(ir.Op{Kind: ir.OpRotate, Args: []int{x}, K: 1, Hoist: 0, Stage: 1, Level: 3, Scale: 1})
	r2 := add(ir.Op{Kind: ir.OpRotate, Args: []int{x}, K: 2, Hoist: 0, Stage: 1, Level: 3, Scale: 1})
	s := add(ir.Op{Kind: ir.OpAdd, Args: []int{r1, r2}, Hoist: -1, Stage: 1, Level: 3, Scale: 1})
	m := add(ir.Op{Kind: ir.OpMulPlain, Args: []int{s}, Hoist: -1, Stage: 1,
		Plain: []float64{1, 2, 3, 4}, PlainKey: "w", PtScale: 2, Level: 3, Scale: 2})
	a := add(ir.Op{Kind: ir.OpAddPlain, Args: []int{m}, Hoist: -1, Stage: 1,
		Plain: []float64{0.5, 0.5, 0.5, 0.5}, PlainKey: "b", PtScale: 2, Level: 3, Scale: 2})
	sq := add(ir.Op{Kind: ir.OpMulRelin, Args: []int{a, a}, Hoist: -1, Stage: 1, Level: 3, Scale: 4})
	add(ir.Op{Kind: ir.OpRescale, Args: []int{sq}, Hoist: -1, Stage: 1, Level: 2, Scale: 2})
	g.Hoists = [][]int{{r1, r2}}
	return g
}

// wantOutput mirrors testGraph over plain floats.
func wantOutput(x []float64) []float64 {
	r1, r2 := rotated(x, 1), rotated(x, 2)
	w := []float64{1, 2, 3, 4}
	out := make([]float64, 4)
	for i := range out {
		v := (r1[i]+r2[i])*w[i] + 0.5
		out[i] = v * v
	}
	return out
}

func runGraph(t *testing.T, e *fakeEngine, opts Options) (*Result, []float64) {
	t.Helper()
	g := testGraph()
	p, err := Prepare(e, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(context.Background(), [][]float64{{1, 2, 3, 4}}, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, e.DecryptVec(res.Out)
}

func TestSequentialRun(t *testing.T) {
	e := &fakeEngine{}
	res, got := runGraph(t, e, Options{})
	if want := wantOutput([]float64{1, 2, 3, 4}); !reflect.DeepEqual(got, want) {
		t.Fatalf("output %v, want %v", got, want)
	}
	if len(res.Stages) != 1 {
		t.Fatalf("%d stage rows, want 1 (encrypt is unrecorded)", len(res.Stages))
	}
	row := res.Stages[0]
	if row.Name != "stage 0 (mix)" || row.Level != 2 || row.Scale != 2 || row.Ops != 7 {
		t.Fatalf("stage row %+v", row)
	}
	// One hoisted RotateMany, no standalone Rotate, AOT plain ops only.
	joined := strings.Join(e.calls, ",")
	if strings.Contains(joined, "Rotate,") && !strings.Contains(joined, "RotateMany") {
		t.Fatalf("hoist group not executed via RotateMany: %v", e.calls)
	}
	for _, c := range e.calls {
		if c == "MulPlainVecCached" || c == "AddPlainVecCached" {
			t.Fatalf("lazy cached path used: %v", e.calls)
		}
	}
	wantCalls := []string{"EncodeVecsAt", "EncryptVec", "RotateMany", "Add", "MulPlainPt", "AddPlainPt", "MulRelin", "Rescale"}
	if !reflect.DeepEqual(e.calls, wantCalls) {
		t.Fatalf("calls %v, want %v", e.calls, wantCalls)
	}
	if !reflect.DeepEqual(e.stages, []string{"encrypt", "stage 0 (mix)"}) {
		t.Fatalf("stage announcements %v", e.stages)
	}
}

func TestParallelMatchesSequential(t *testing.T) {
	_, seq := runGraph(t, &fakeEngine{}, Options{})
	_, par := runGraph(t, &fakeEngine{}, Options{Workers: 4})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel %v != sequential %v", par, seq)
	}
}

func TestPlaintextDedup(t *testing.T) {
	g := testGraph()
	// Reference the same keyed constant twice: still one encode spec.
	last := g.Ops[g.Output]
	dup := ir.Op{ID: len(g.Ops), Kind: ir.OpMulPlain, Args: []int{g.Output}, Hoist: -1, Stage: 1,
		Plain: []float64{1, 2, 3, 4}, PlainKey: "w", PtScale: 2, Level: last.Level, Scale: last.Scale * 2}
	g.Ops = append(g.Ops, dup)
	g.Output = dup.ID
	g.Stages[1].Out = dup.ID
	e := &fakeEngine{}
	p, err := Prepare(e, g)
	if err != nil {
		t.Fatal(err)
	}
	// "w" appears twice but at different levels (3 vs 2): two specs. Add a
	// true duplicate at the same (key, level, scale) and re-prepare.
	if p.pts[4] == p.pts[dup.ID] {
		t.Fatal("distinct (level, scale) encodings were merged")
	}
	tri := ir.Op{ID: len(g.Ops), Kind: ir.OpMulPlain, Args: []int{dup.ID}, Hoist: -1, Stage: 1,
		Plain: []float64{1, 2, 3, 4}, PlainKey: "w", PtScale: 2, Level: dup.Level, Scale: dup.Scale * 2}
	g.Ops = append(g.Ops, tri)
	g.Output = tri.ID
	g.Stages[1].Out = tri.ID
	p, err = Prepare(e, g)
	if err != nil {
		t.Fatal(err)
	}
	if p.pts[dup.ID] != p.pts[tri.ID] {
		t.Fatal("same (key, level, scale) encoded twice")
	}
}

func TestRefCountFreesSlots(t *testing.T) {
	g := testGraph()
	p, err := Prepare(&fakeEngine{}, g)
	if err != nil {
		t.Fatal(err)
	}
	rs := p.newRunState()
	cts, _, _, err := p.EncryptInputs(context.Background(), [][]float64{{1, 2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range p.encryptOps {
		rs.slots[id] = cts[i]
	}
	if err := rs.runSequential(context.Background(), &Result{}); err != nil {
		t.Fatal(err)
	}
	for i := range rs.slots {
		if i == g.Output {
			if rs.slots[i] == nil {
				t.Fatal("output was freed")
			}
			continue
		}
		if rs.slots[i] != nil {
			t.Fatalf("intermediate op %d still live after last use", i)
		}
	}
}

func TestRunFailure(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := &fakeEngine{panicOn: "MulRelin"}
		p, err := Prepare(e, testGraph())
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Run(context.Background(), [][]float64{{1, 2, 3, 4}}, Options{Workers: workers})
		if err == nil {
			t.Fatalf("workers=%d: failure not surfaced", workers)
		}
		if !strings.Contains(err.Error(), "induced failure") {
			t.Fatalf("workers=%d: error %v does not carry the cause", workers, err)
		}
		if res.FailedStage != "stage 0 (mix)" {
			t.Fatalf("workers=%d: failed stage %q", workers, res.FailedStage)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p, err := Prepare(&fakeEngine{}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(ctx, [][]float64{{1, 2, 3, 4}}, Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if res.FailedStage == "" {
		t.Fatal("cancellation did not name a stage")
	}
}

func TestBadInputCount(t *testing.T) {
	p, err := Prepare(&fakeEngine{}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := p.EncryptInputs(context.Background(), nil); err == nil {
		t.Fatal("zero inputs accepted for a 1-input graph")
	}
}

func TestStatsNoise(t *testing.T) {
	// fakeEngine is not noiseAware: rows carry NaN, like the legacy path.
	res, _ := runGraph(t, &fakeEngine{}, Options{})
	if !math.IsNaN(res.Stages[0].NoiseBits) {
		t.Fatalf("noise bits %v, want NaN", res.Stages[0].NoiseBits)
	}
	if res.Stages[0].Duration <= 0 {
		t.Fatal("stage duration not measured")
	}
}

func TestPrepareRejectsInvalidGraph(t *testing.T) {
	g := testGraph()
	g.Ops[3].Args = []int{5, 1} // forward reference: not topological
	if _, err := Prepare(&fakeEngine{}, g); err == nil {
		t.Fatal("invalid graph accepted")
	}
}

func init() {
	// Guard against fixture drift: the hand-built graph must stay valid.
	if err := testGraph().Validate(); err != nil {
		panic(fmt.Sprintf("test fixture invalid: %v", err))
	}
}
