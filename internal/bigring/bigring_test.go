package bigring

import (
	"math/big"
	"math/rand"
	"testing"

	"cnnhe/internal/primes"
)

func testRing(t testing.TB, logN int, bitSizes []int) *Ring {
	t.Helper()
	chain, err := primes.BuildChain(logN, bitSizes, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(1<<logN, chain.Moduli, 7)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNTTRoundTrip(t *testing.T) {
	r := testRing(t, 6, []int{30, 31, 40})
	rng := rand.New(rand.NewSource(1))
	a := r.NewPoly()
	r.SampleUniform(rng, a)
	orig := r.Copy(a)
	r.NTT(a)
	r.INTT(a)
	for i := range a.Coeffs {
		if a.Coeffs[i].Cmp(orig.Coeffs[i]) != 0 {
			t.Fatalf("roundtrip mismatch at %d", i)
		}
	}
}

func TestNegacyclicConvolution(t *testing.T) {
	r := testRing(t, 5, []int{30, 31})
	rng := rand.New(rand.NewSource(2))
	a := r.NewPoly()
	b := r.NewPoly()
	r.SampleUniform(rng, a)
	r.SampleUniform(rng, b)

	// Schoolbook reference.
	n := r.N()
	want := make([]*big.Int, n)
	for i := range want {
		want[i] = new(big.Int)
	}
	tmp := new(big.Int)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			tmp.Mul(a.Coeffs[i], b.Coeffs[j])
			k := i + j
			if k < n {
				want[k].Add(want[k], tmp)
			} else {
				want[k-n].Sub(want[k-n], tmp)
			}
		}
	}
	for i := range want {
		want[i].Mod(want[i], r.Q)
	}

	r.NTT(a)
	r.NTT(b)
	out := r.NewPoly()
	r.MulCoeffs(a, b, out)
	r.INTT(out)
	for i := 0; i < n; i++ {
		if out.Coeffs[i].Cmp(want[i]) != 0 {
			t.Fatalf("negacyclic mismatch at %d", i)
		}
	}
}

func TestAddSubNegScalar(t *testing.T) {
	r := testRing(t, 4, []int{35, 36})
	rng := rand.New(rand.NewSource(3))
	a := r.NewPoly()
	b := r.NewPoly()
	r.SampleUniform(rng, a)
	r.SampleUniform(rng, b)
	sum := r.NewPoly()
	r.Add(a, b, sum)
	diff := r.NewPoly()
	r.Sub(sum, b, diff)
	for i := range a.Coeffs {
		if diff.Coeffs[i].Cmp(a.Coeffs[i]) != 0 {
			t.Fatal("(a+b)-b != a")
		}
	}
	neg := r.NewPoly()
	r.Neg(a, neg)
	zero := r.NewPoly()
	r.Add(a, neg, zero)
	for i := range zero.Coeffs {
		if zero.Coeffs[i].Sign() != 0 {
			t.Fatal("a + (-a) != 0")
		}
	}
	s := big.NewInt(12345)
	sc := r.NewPoly()
	r.MulScalar(a, s, sc)
	for i := range a.Coeffs {
		want := new(big.Int).Mul(a.Coeffs[i], s)
		want.Mod(want, r.Q)
		if sc.Coeffs[i].Cmp(want) != 0 {
			t.Fatal("scalar mul mismatch")
		}
	}
}

func TestCenteredRoundTrip(t *testing.T) {
	r := testRing(t, 4, []int{40, 41})
	vec := []int64{0, 1, -1, 123456789, -987654321}
	full := make([]int64, r.N())
	copy(full, vec)
	p := r.NewPoly()
	r.SetCoeffsInt64(full, p)
	got := r.CoeffsCentered(p)
	for i, v := range full {
		if got[i].Int64() != v {
			t.Fatalf("centered mismatch at %d: %v vs %d", i, got[i], v)
		}
	}
}

func TestAutomorphismInverse(t *testing.T) {
	r := testRing(t, 5, []int{30})
	rng := rand.New(rand.NewSource(5))
	a := r.NewPoly()
	r.SampleUniform(rng, a)
	g := uint64(5)
	// inverse of 5 mod 2N
	twoN := uint64(2 * r.N())
	gi := uint64(1)
	for (g*gi)%twoN != 1 {
		gi += 2
	}
	tmp := r.NewPoly()
	back := r.NewPoly()
	r.Automorphism(a, g, tmp)
	r.Automorphism(tmp, gi, back)
	for i := range a.Coeffs {
		if back.Coeffs[i].Cmp(a.Coeffs[i]) != 0 {
			t.Fatal("automorphism composition not identity")
		}
	}
}

func TestNewRingRejectsBadFactors(t *testing.T) {
	if _, err := NewRing(16, []*big.Int{big.NewInt(17)}, 1); err == nil {
		t.Fatal("expected error for non-NTT-friendly factor (17 mod 32 != 1)")
	}
	if _, err := NewRing(12, []*big.Int{big.NewInt(97)}, 1); err == nil {
		t.Fatal("expected error for non-power-of-two degree")
	}
}
