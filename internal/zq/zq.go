// Package zq implements modular arithmetic over word-sized (≤ 61-bit) and
// wide (62–122 bit) prime moduli. It is the lowest-level substrate of the
// library: the polynomial rings in internal/ring build their NTTs and
// coefficient arithmetic on top of the primitives defined here.
//
// Word-sized moduli use Barrett reduction for variable×variable products and
// Shoup multiplication for variable×constant products (NTT twiddle factors,
// scalar multiplication). Wide moduli are represented as two-word
// little-endian pairs and use a 256-bit Barrett reduction.
package zq

import (
	"math/big"
	"math/bits"
	"math/rand"
)

// MaxWordModulusBits is the largest bit size for which a modulus can use the
// single-word fast path. The bound (61) leaves headroom for the lazy
// reductions used inside the NTT butterflies, which keep intermediate values
// in [0, 4q).
const MaxWordModulusBits = 61

// Modulus bundles a word-sized prime q with the precomputed constants used
// by Barrett reduction.
type Modulus struct {
	Q     uint64    // the modulus
	BRC   [2]uint64 // Barrett constant: floor(2^128 / q), (hi, lo) words
	Bits  int       // bit length of q
	TwoQ  uint64    // 2*q, used by lazy reductions
	FourQ uint64    // 4*q
}

// NewModulus precomputes the reduction constants for q. It panics if q is
// zero or wider than MaxWordModulusBits bits.
func NewModulus(q uint64) Modulus {
	if q == 0 {
		panic("zq: zero modulus")
	}
	if bits.Len64(q) > MaxWordModulusBits {
		panic("zq: modulus too wide for word arithmetic")
	}
	b := new(big.Int).Lsh(big.NewInt(1), 128)
	b.Quo(b, new(big.Int).SetUint64(q))
	lo := new(big.Int)
	hi, _ := new(big.Int).DivMod(b, twoTo64, lo)
	return Modulus{
		Q:     q,
		BRC:   [2]uint64{hi.Uint64(), lo.Uint64()},
		Bits:  bits.Len64(q),
		TwoQ:  2 * q,
		FourQ: 4 * q,
	}
}

var twoTo64 = new(big.Int).Lsh(big.NewInt(1), 64)

// Add returns x + y mod q for x, y in [0, q).
func (m Modulus) Add(x, y uint64) uint64 {
	s := x + y
	if s >= m.Q {
		s -= m.Q
	}
	return s
}

// Sub returns x - y mod q for x, y in [0, q).
func (m Modulus) Sub(x, y uint64) uint64 {
	s := x - y
	if s > x { // borrow
		s += m.Q
	}
	return s
}

// Neg returns -x mod q for x in [0, q).
func (m Modulus) Neg(x uint64) uint64 {
	if x == 0 {
		return 0
	}
	return m.Q - x
}

// Mul returns x * y mod q using Barrett reduction. x and y must be in
// [0, 2q); the result is fully reduced.
func (m Modulus) Mul(x, y uint64) uint64 {
	hi, lo := bits.Mul64(x, y)
	return m.reduce128(hi, lo)
}

// reduce128 reduces the 128-bit value (hi, lo) modulo q.
func (m Modulus) reduce128(hi, lo uint64) uint64 {
	// Quotient estimate: floor((hi·2^64 + lo) · BRC / 2^128).
	ahi, _ := bits.Mul64(lo, m.BRC[1])
	bhi, blo := bits.Mul64(lo, m.BRC[0])
	chi, clo := bits.Mul64(hi, m.BRC[1])
	mid, c1 := bits.Add64(blo, clo, 0)
	_, c2 := bits.Add64(mid, ahi, 0)
	qhat := hi*m.BRC[0] + bhi + chi + c1 + c2
	r := lo - qhat*m.Q
	for r >= m.Q {
		r -= m.Q
	}
	return r
}

// Reduce returns x mod q for arbitrary x.
func (m Modulus) Reduce(x uint64) uint64 {
	if x < m.Q {
		return x
	}
	return x % m.Q
}

// Reduce128 returns (hi·2^64 + lo) mod q for arbitrary hi, lo.
func (m Modulus) Reduce128(hi, lo uint64) uint64 {
	if hi == 0 && lo < m.Q {
		return lo
	}
	_, r := bits.Div64(hi%m.Q, lo, m.Q)
	return r
}

// Pow returns x^e mod q by square-and-multiply.
func (m Modulus) Pow(x, e uint64) uint64 {
	r := uint64(1)
	b := m.Reduce(x)
	for e > 0 {
		if e&1 == 1 {
			r = m.Mul(r, b)
		}
		b = m.Mul(b, b)
		e >>= 1
	}
	return r
}

// Inv returns x^{-1} mod q. q must be prime and x nonzero mod q.
func (m Modulus) Inv(x uint64) uint64 {
	x = m.Reduce(x)
	if x == 0 {
		panic("zq: inverse of zero")
	}
	return m.Pow(x, m.Q-2)
}

// PrimitiveNthRoot returns a primitive n-th root of unity modulo q, where n
// is a power of two dividing q-1. The search is randomized but deterministic
// for a given rng.
func (m Modulus) PrimitiveNthRoot(n uint64, rng *rand.Rand) uint64 {
	if n == 0 || n&(n-1) != 0 {
		panic("zq: n must be a power of two")
	}
	if (m.Q-1)%n != 0 {
		panic("zq: n does not divide q-1")
	}
	exp := (m.Q - 1) / n
	for {
		x := rng.Uint64()%(m.Q-2) + 2
		w := m.Pow(x, exp)
		// w is an n-th root; it is primitive iff w^(n/2) == -1.
		if m.Pow(w, n/2) == m.Q-1 {
			return w
		}
	}
}

// ShoupPrecomp returns the Shoup precomputation floor(w·2^64/q) for the
// fixed multiplicand w in [0, q).
func (m Modulus) ShoupPrecomp(w uint64) uint64 {
	hi, _ := bits.Div64(w, 0, m.Q)
	return hi
}

// ShoupMul returns x·w mod q, where wShoup = ShoupPrecomp(w). x must be in
// [0, q); the result is fully reduced.
func (m Modulus) ShoupMul(x, w, wShoup uint64) uint64 {
	qhat, _ := bits.Mul64(x, wShoup)
	r := x*w - qhat*m.Q
	if r >= m.Q {
		r -= m.Q
	}
	return r
}

// ShoupMulLazy returns x·w mod q in [0, 2q) for x in [0, 2q). Used inside
// the lazy NTT butterflies.
func (m Modulus) ShoupMulLazy(x, w, wShoup uint64) uint64 {
	qhat, _ := bits.Mul64(x, wShoup)
	return x*w - qhat*m.Q
}
