// Cloud deployment of Fig. 1 over a real network boundary: a client and an
// untrusted evaluation server run as separate goroutines connected only by
// a TCP socket. Everything that crosses the wire is serialized with the
// library's binary codecs — the server process never holds the secret key.
//
// The server blindly computes a risk score  0.3·x² + 0.5·x + 0.1  over the
// client's sensitive readings.
//
// Run: go run ./examples/cloud
package main

import (
	"fmt"
	"log"
	"math"
	"net"

	"cnnhe/internal/ckks"
)

func main() {
	params, err := ckks.TestParameters()
	if err != nil {
		log.Fatal(err)
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer ln.Close()
	addr := ln.Addr().String()

	serverDone := make(chan error, 1)
	go func() { serverDone <- cloudServer(ln, params) }()

	if err := client(addr, params); err != nil {
		log.Fatal(err)
	}
	if err := <-serverDone; err != nil {
		log.Fatal(err)
	}
}

// cloudServer is the untrusted party: it receives the evaluation keys and a
// ciphertext, computes on the ciphertext, and returns the encrypted result.
func cloudServer(ln net.Listener, params ckks.Parameters) error {
	ctx, err := ckks.NewContext(params)
	if err != nil {
		return err
	}
	conn, err := ln.Accept()
	if err != nil {
		return err
	}
	defer conn.Close()

	swk, err := ctx.ReadSwitchingKey(conn)
	if err != nil {
		return fmt.Errorf("server: reading relin key: %w", err)
	}
	ct, err := ctx.ReadCiphertext(conn)
	if err != nil {
		return fmt.Errorf("server: reading ciphertext: %w", err)
	}
	fmt.Printf("server: received ciphertext (level %d) — contents opaque\n", ct.Level)

	ev := ckks.NewEvaluator(ctx, &ckks.RelinearizationKey{SwitchingKey: *swk}, nil)
	// Horner: (0.3·x + 0.5)·x + 0.1
	t := ev.Rescale(ev.MulConst(ct, 0.3, 0))
	t = ev.AddConst(t, 0.5)
	t = ev.Rescale(ev.Mul(t, ev.DropLevel(ct, 1)))
	t = ev.AddConst(t, 0.1)

	if err := ctx.WriteCiphertext(conn, t); err != nil {
		return fmt.Errorf("server: writing result: %w", err)
	}
	fmt.Println("server: returned encrypted result")
	return nil
}

// client owns the secret key: it ships evaluation keys and encrypted data,
// then decrypts the response.
func client(addr string, params ckks.Parameters) error {
	ctx, err := ckks.NewContext(params)
	if err != nil {
		return err
	}
	kg := ckks.NewKeyGenerator(ctx, 42)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	defer conn.Close()

	if err := ctx.WriteSwitchingKey(conn, &rlk.SwitchingKey); err != nil {
		return err
	}
	readings := []float64{0.8, 1.9, -0.4, 2.5}
	enc := ckks.NewEncoder(ctx)
	ept := ckks.NewEncryptor(ctx, pk, 43)
	ct := ept.Encrypt(enc.Encode(readings, params.MaxLevel(), params.Scale))
	if err := ctx.WriteCiphertext(conn, ct); err != nil {
		return err
	}
	fmt.Println("client: sent encrypted readings", readings)

	res, err := ctx.ReadCiphertext(conn)
	if err != nil {
		return err
	}
	dec := ckks.NewDecryptor(ctx, sk)
	got := enc.Decode(dec.DecryptNew(res))
	fmt.Println("client: decrypted risk scores:")
	for i, x := range readings {
		want := 0.3*x*x + 0.5*x + 0.1
		fmt.Printf("  score(%5.2f) = %8.5f  (exact %8.5f, err %.1e)\n",
			x, got[i], want, math.Abs(got[i]-want))
	}
	return nil
}
