package henn

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"

	"cnnhe/internal/ckks"
	"cnnhe/internal/mnist"
	"cnnhe/internal/nn"
	"cnnhe/internal/tensor"
)

// TestDiagLogits compares encrypted vs plaintext logits stage by stage.
func TestDiagLogits(t *testing.T) {
	if os.Getenv("CNNHE_CALIBRATE") == "" {
		t.Skip("set CNNHE_CALIBRATE=1 to run")
	}
	rng := rand.New(rand.NewSource(2))
	m := nn.NewCNN1(rng)
	train, test, _ := mnist.Load(2000, 20, 1)
	nn.Train(m, train.ToNN(), nn.TrainConfig{Epochs: 5, BatchSize: 64, MaxLR: 0.08, Momentum: 0.9, Seed: 3})
	rc := nn.DefaultRetrofitConfig()
	rc.Epochs = 2
	hm := nn.Retrofit(m, train.ToNN(), rc)
	fmt.Printf("plain slaf acc: %.3f\n", nn.Evaluate(hm, test.ToNN()))

	// print activation ranges
	fmt.Println("ranges:", nn.ActivationRanges(hm, train.ToNN().Images[:256]))

	plan, err := Compile(hm, 1024)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ckks.NewParameters(11, []int{40, 30, 30, 30, 30, 30, 30, 30}, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewRNSEngine(p, plan.Rotations(), 77)
	if err != nil {
		t.Fatal(err)
	}

	for n := 0; n < 3; n++ {
		img := test.Image(n)
		// plaintext per-stage reference via model forward
		x := tensor.New(1, 28, 28)
		for i := range img {
			x.Data[i] = img[i] / 255
		}
		want := hm.Forward(x).Data

		ct := e.EncryptVec(img)
		for si, s := range plan.Stages {
			ct = s.Eval(e, ct)
			_ = si
		}
		got := e.DecryptVec(ct)
		maxe := 0.0
		for i := range want {
			if d := math.Abs(got[i] - want[i]); d > maxe {
				maxe = d
			}
		}
		fmt.Printf("img %d: label %d plainArg %d heArg %d maxLogitErr %.4f logitsWant %.2f..%.2f\n",
			n, test.Labels[n], Logits(want).Argmax(), Logits(got[:10]).Argmax(), maxe,
			minf(want), maxf(want))
	}
}

func minf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x < m {
			m = x
		}
	}
	return m
}
func maxf(v []float64) float64 {
	m := v[0]
	for _, x := range v {
		if x > m {
			m = x
		}
	}
	return m
}
