// Package ckksbig implements the original (non-RNS) leveled CKKS scheme of
// Cheon, Kim, Kim and Song over composite ciphertext moduli
// Q_ℓ = q_0·…·q_ℓ with multiprecision (big.Int) coefficient arithmetic —
// the paper's CNN-HE baseline. Key switching follows the original
// construction: the evaluation key lives modulo Q_L·P with P ≳ Q_L and
// switching divides by P with rounding. Rescaling divides by the top prime
// factor exactly as in the RNS variant, but on multiprecision coefficients.
//
// The package mirrors the internal/ckks API closely so the homomorphic CNN
// layers can run on either backend; the measured latency difference between
// the two *is* the paper's CNN-HE vs CNN-HE-RNS comparison.
package ckksbig

import (
	"fmt"
	"math"
	"math/big"
	"math/rand"
	"sync"
	"sync/atomic"

	"cnnhe/internal/bigring"
	"cnnhe/internal/ckks"
	"cnnhe/internal/embed"
	"cnnhe/internal/primes"
	"cnnhe/internal/ring"
)

// Parameters fixes a non-RNS CKKS instantiation.
type Parameters struct {
	LogN    int
	Scale   float64
	H       int
	Sigma   float64
	Factors []*big.Int // prime factors q_0 … q_L of the ciphertext modulus
	PFactor []*big.Int // prime factors of the key-switching modulus P (log P ≥ log Q_L)
	Seed    int64
}

// FromRNSParameters derives matching baseline parameters from an RNS
// parameter set: the same ciphertext modulus chain (so both schemes offer
// the same precision and depth), with a fresh P of at least the same size.
func FromRNSParameters(p ckks.Parameters) (Parameters, error) {
	qFactors := p.Chain.Moduli[:p.Chain.Len()]
	avoidWord := map[uint64]bool{}
	avoidWide := map[string]bool{}
	for _, f := range qFactors {
		if f.BitLen() <= 61 {
			avoidWord[f.Uint64()] = true
		} else {
			avoidWide[f.String()] = true
		}
	}
	var pFactors []*big.Int
	for _, f := range qFactors {
		b := f.BitLen()
		if b <= 61 {
			ps, err := primes.GenNTTPrimes(b, p.LogN, 1, avoidWord)
			if err != nil {
				return Parameters{}, err
			}
			avoidWord[ps[0]] = true
			pFactors = append(pFactors, new(big.Int).SetUint64(ps[0]))
		} else {
			w, err := primes.GenWideNTTPrime(b, p.LogN, avoidWide)
			if err != nil {
				return Parameters{}, err
			}
			avoidWide[w.String()] = true
			pFactors = append(pFactors, w)
		}
	}
	return Parameters{
		LogN:    p.LogN,
		Scale:   p.Scale,
		H:       p.H,
		Sigma:   p.Sigma,
		Factors: append([]*big.Int(nil), qFactors...),
		PFactor: pFactors,
		Seed:    p.RingSeed,
	}, nil
}

// N returns the ring degree.
func (p Parameters) N() int { return 1 << uint(p.LogN) }

// Slots returns the number of plaintext slots.
func (p Parameters) Slots() int { return p.N() / 2 }

// MaxLevel returns L (index of the top prime factor).
func (p Parameters) MaxLevel() int { return len(p.Factors) - 1 }

// QAt returns Q_ℓ = q_0·…·q_ℓ.
func (p Parameters) QAt(level int) *big.Int {
	q := big.NewInt(1)
	for i := 0; i <= level; i++ {
		q.Mul(q, p.Factors[i])
	}
	return q
}

// QiFloat returns q_level as a float64.
func (p Parameters) QiFloat(level int) float64 {
	f, _ := new(big.Float).SetInt(p.Factors[level]).Float64()
	return f
}

// Context bundles the per-level rings (built lazily) with the embedder.
type Context struct {
	Params Parameters
	P      *big.Int
	halfP  *big.Int
	Emb    *embed.Embedder

	mu     sync.Mutex
	ringQ  map[int]*bigring.Ring // level → ring mod Q_ℓ
	ringQP map[int]*bigring.Ring // level → ring mod Q_ℓ·P
	skNTT  map[skCacheKey]*bigring.Poly
	skVec  []int64
}

type skCacheKey struct {
	level int
	qp    bool
}

// NewContext prepares a context; rings are constructed on first use.
func NewContext(p Parameters) (*Context, error) {
	if len(p.Factors) == 0 || len(p.PFactor) == 0 {
		return nil, fmt.Errorf("ckksbig: missing moduli")
	}
	P := big.NewInt(1)
	for _, f := range p.PFactor {
		P.Mul(P, f)
	}
	return &Context{
		Params: p,
		P:      P,
		halfP:  new(big.Int).Rsh(P, 1),
		Emb:    embed.New(p.N()),
		ringQ:  map[int]*bigring.Ring{},
		ringQP: map[int]*bigring.Ring{},
		skNTT:  map[skCacheKey]*bigring.Poly{},
	}, nil
}

// RingQ returns the ring modulo Q_level.
func (c *Context) RingQ(level int) *bigring.Ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.ringQ[level]; ok {
		return r
	}
	r, err := bigring.NewRing(c.Params.N(), c.Params.Factors[:level+1], c.Params.Seed)
	if err != nil {
		panic(fmt.Sprintf("ckksbig: ring construction failed: %v", err))
	}
	c.ringQ[level] = r
	return r
}

// RingQP returns the ring modulo Q_level·P.
func (c *Context) RingQP(level int) *bigring.Ring {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r, ok := c.ringQP[level]; ok {
		return r
	}
	factors := append(append([]*big.Int(nil), c.Params.Factors[:level+1]...), c.Params.PFactor...)
	r, err := bigring.NewRing(c.Params.N(), factors, c.Params.Seed+1)
	if err != nil {
		panic(fmt.Sprintf("ckksbig: QP ring construction failed: %v", err))
	}
	c.ringQP[level] = r
	return r
}

// skAt returns the NTT form of the secret key in the requested ring,
// cached per level.
func (c *Context) skAt(level int, qp bool) *bigring.Poly {
	var r *bigring.Ring
	if qp {
		r = c.RingQP(level)
	} else {
		r = c.RingQ(level)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := skCacheKey{level, qp}
	if p, ok := c.skNTT[key]; ok {
		return p
	}
	p := r.NewPoly()
	r.SetCoeffsInt64(c.skVec, p)
	r.NTT(p)
	c.skNTT[key] = p
	return p
}

// SecretKey is the ternary HW(h) secret.
type SecretKey struct {
	Vec []int64
	ctx *Context
}

// PublicKey is (b, a) = (−a·s + e, a) mod Q_L, NTT domain.
type PublicKey struct {
	B, A *bigring.Poly
}

// SwitchingKey is a single pair with message P·s'. Components are stored in
// the COEFFICIENT domain modulo Q_L·P so they can be reduced to any level;
// per-level NTT forms are cached.
type SwitchingKey struct {
	B, A *bigring.Poly // coeff domain mod Q_L·P

	mu    sync.Mutex
	cache map[int][2]*bigring.Poly // level → NTT forms mod Q_ℓ·P
}

// atLevel returns the NTT forms of the key components modulo Q_level·P.
func (swk *SwitchingKey) atLevel(ctx *Context, level int) (*bigring.Poly, *bigring.Poly) {
	swk.mu.Lock()
	defer swk.mu.Unlock()
	if swk.cache == nil {
		swk.cache = map[int][2]*bigring.Poly{}
	}
	if v, ok := swk.cache[level]; ok {
		return v[0], v[1]
	}
	r := ctx.RingQP(level)
	b := r.Copy(swk.B)
	a := r.Copy(swk.A)
	r.Mod(b, r.Q)
	r.Mod(a, r.Q)
	r.NTT(b)
	r.NTT(a)
	swk.cache[level] = [2]*bigring.Poly{b, a}
	return b, a
}

// RotationKeySet maps Galois elements to switching keys.
type RotationKeySet struct {
	Keys map[uint64]*SwitchingKey
}

// KeyGenerator produces key material deterministically from its seed.
type KeyGenerator struct {
	ctx *Context
	rng *rand.Rand
}

// NewKeyGenerator returns a generator over ctx.
func NewKeyGenerator(ctx *Context, seed int64) *KeyGenerator {
	return &KeyGenerator{ctx: ctx, rng: rand.New(rand.NewSource(seed))}
}

// GenSecretKey samples s ← HW(h) and installs it in the context caches.
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	vec := ring.SampleTernaryHW(kg.rng, kg.ctx.Params.N(), kg.ctx.Params.H)
	kg.ctx.skVec = vec
	return &SecretKey{Vec: vec, ctx: kg.ctx}
}

// GenPublicKey derives pk = (−a·s + e, a) mod Q_L.
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	L := kg.ctx.Params.MaxLevel()
	r := kg.ctx.RingQ(L)
	s := kg.ctx.skAt(L, false)
	a := r.NewPoly()
	r.SampleUniform(kg.rng, a)
	e := r.NewPoly()
	r.SetCoeffsInt64(ring.SampleGaussian(kg.rng, r.N(), kg.ctx.Params.Sigma), e)
	r.NTT(e)
	b := r.NewPoly()
	r.MulCoeffs(a, s, b)
	r.Neg(b, b)
	r.Add(b, e, b)
	return &PublicKey{B: b, A: a}
}

// genSwitchingKey builds (−a·s + e + P·target, a) mod Q_L·P (stored in
// coefficient domain) for a target key given by centered coefficients.
func (kg *KeyGenerator) genSwitchingKey(sk *SecretKey, targetVec []int64) *SwitchingKey {
	L := kg.ctx.Params.MaxLevel()
	r := kg.ctx.RingQP(L)
	s := kg.ctx.skAt(L, true)
	a := r.NewPoly()
	r.SampleUniform(kg.rng, a)
	e := r.NewPoly()
	r.SetCoeffsInt64(ring.SampleGaussian(kg.rng, r.N(), kg.ctx.Params.Sigma), e)
	r.NTT(e)
	target := r.NewPoly()
	r.SetCoeffsInt64(targetVec, target)
	r.NTT(target)

	b := r.NewPoly()
	r.MulCoeffs(a, s, b)
	r.Neg(b, b)
	r.Add(b, e, b)
	msg := r.NewPoly()
	r.MulScalar(target, kg.ctx.P, msg)
	r.Add(b, msg, b)
	r.INTT(b)
	r.INTT(a)
	return &SwitchingKey{B: b, A: a}
}

// GenRelinearizationKey builds the switching key for s².
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *SwitchingKey {
	// s² as centered coefficients: square the sparse ternary polynomial
	// exactly over its nonzero support (h² term pairs).
	n := kg.ctx.Params.N()
	var nz []int
	for i, v := range sk.Vec {
		if v != 0 {
			nz = append(nz, i)
		}
	}
	s2 := make([]int64, n)
	for _, i := range nz {
		for _, j := range nz {
			k := i + j
			v := sk.Vec[i] * sk.Vec[j]
			if k < n {
				s2[k] += v
			} else {
				s2[k-n] -= v
			}
		}
	}
	return kg.genSwitchingKey(sk, s2)
}

// GenRotationKeys builds switching keys for slot rotations (and
// conjugation when requested).
func (kg *KeyGenerator) GenRotationKeys(sk *SecretKey, rotations []int, conjugate bool) *RotationKeySet {
	set := &RotationKeySet{Keys: map[uint64]*SwitchingKey{}}
	for _, rot := range rotations {
		if rot == 0 {
			continue
		}
		galEl := ring.GaloisElementForRotation(kg.ctx.Params.LogN, rot)
		if _, ok := set.Keys[galEl]; ok {
			continue
		}
		set.Keys[galEl] = kg.genRotationKeyFor(sk, galEl)
	}
	if conjugate {
		galEl := ring.GaloisElementConjugate(kg.ctx.Params.LogN)
		set.Keys[galEl] = kg.genRotationKeyFor(sk, galEl)
	}
	return set
}

func (kg *KeyGenerator) genRotationKeyFor(sk *SecretKey, galEl uint64) *SwitchingKey {
	n := kg.ctx.Params.N()
	vec := make([]int64, n)
	mask := uint64(2*n - 1)
	for i := 0; i < n; i++ {
		j := (uint64(i) * galEl) & mask
		if j < uint64(n) {
			vec[j] = sk.Vec[i]
		} else {
			vec[j-uint64(n)] = -sk.Vec[i]
		}
	}
	return kg.genSwitchingKey(sk, vec)
}

// Merge adds all keys from other into set.
func (set *RotationKeySet) Merge(other *RotationKeySet) {
	for g, k := range other.Keys {
		set.Keys[g] = k
	}
}

// Plaintext is an encoded message mod Q_ℓ (NTT domain) with its scale.
type Plaintext struct {
	Value *bigring.Poly
	Level int
	Scale float64
}

// Ciphertext is (c0, c1) mod Q_ℓ, NTT domain.
type Ciphertext struct {
	C0, C1 *bigring.Poly
	Level  int
	Scale  float64
}

// CopyNew deep-copies ct.
func (ct *Ciphertext) CopyNew(ctx *Context) *Ciphertext {
	r := ctx.RingQ(ct.Level)
	return &Ciphertext{C0: r.Copy(ct.C0), C1: r.Copy(ct.C1), Level: ct.Level, Scale: ct.Scale}
}

// Encoder maps slot vectors to plaintexts.
type Encoder struct{ ctx *Context }

// NewEncoder returns an Encoder.
func NewEncoder(ctx *Context) *Encoder { return &Encoder{ctx: ctx} }

// Encode encodes real slots at the given level and scale.
func (e *Encoder) Encode(values []float64, level int, scale float64) *Plaintext {
	coeffs := e.ctx.Emb.EncodeReal(values)
	r := e.ctx.RingQ(level)
	p := r.NewPoly()
	bv := make([]*big.Int, r.N())
	bf := new(big.Float).SetPrec(256)
	sc := new(big.Float).SetFloat64(scale)
	half := big.NewFloat(0.5)
	for i, c := range coeffs {
		bf.SetFloat64(c)
		bf.Mul(bf, sc)
		if bf.Sign() >= 0 {
			bf.Add(bf, half)
		} else {
			bf.Sub(bf, half)
		}
		bv[i], _ = bf.Int(nil)
	}
	r.SetCoeffsBig(bv, p)
	r.NTT(p)
	return &Plaintext{Value: p, Level: level, Scale: scale}
}

// EncodeSpec describes one vector for EncodeBatch: the slot values and
// the exact (level, scale) to encode at.
type EncodeSpec struct {
	Values []float64
	Level  int
	Scale  float64
}

// EncodeBatch encodes every spec, spreading the work over up to workers
// goroutines (the encoder holds no mutable state and the context's lazy
// ring caches are mutex-protected, so concurrent encoding is safe).
// Results are in spec order and bit-identical to individual Encode calls.
func (e *Encoder) EncodeBatch(specs []EncodeSpec, workers int) []*Plaintext {
	out := make([]*Plaintext, len(specs))
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, s := range specs {
			out[i] = e.Encode(s.Values, s.Level, s.Scale)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				out[i] = e.Encode(specs[i].Values, specs[i].Level, specs[i].Scale)
			}
		}()
	}
	wg.Wait()
	return out
}

// Decode recovers the real slot values.
func (e *Encoder) Decode(pt *Plaintext) []float64 {
	r := e.ctx.RingQ(pt.Level)
	tmp := r.Copy(pt.Value)
	r.INTT(tmp)
	centered := r.CoeffsCentered(tmp)
	coeffs := make([]float64, r.N())
	for i, b := range centered {
		f, _ := new(big.Float).SetInt(b).Float64()
		coeffs[i] = f / pt.Scale
	}
	return e.ctx.Emb.DecodeReal(coeffs)
}

// Encryptor encrypts under pk (at the top level).
type Encryptor struct {
	ctx *Context
	pk  *PublicKey
	rng *rand.Rand
}

// NewEncryptor returns an Encryptor.
func NewEncryptor(ctx *Context, pk *PublicKey, seed int64) *Encryptor {
	return &Encryptor{ctx: ctx, pk: pk, rng: rand.New(rand.NewSource(seed))}
}

// Encrypt encrypts pt, which must be encoded at the top level.
func (en *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	L := en.ctx.Params.MaxLevel()
	if pt.Level != L {
		panic("ckksbig: encryption requires a top-level plaintext")
	}
	r := en.ctx.RingQ(L)
	v := r.NewPoly()
	r.SetCoeffsInt64(ring.SampleTernarySparse(en.rng, r.N(), 0.5), v)
	r.NTT(v)
	e0 := r.NewPoly()
	r.SetCoeffsInt64(ring.SampleGaussian(en.rng, r.N(), en.ctx.Params.Sigma), e0)
	r.NTT(e0)
	e1 := r.NewPoly()
	r.SetCoeffsInt64(ring.SampleGaussian(en.rng, r.N(), en.ctx.Params.Sigma), e1)
	r.NTT(e1)
	ct := &Ciphertext{C0: r.NewPoly(), C1: r.NewPoly(), Level: L, Scale: pt.Scale}
	r.MulCoeffs(v, en.pk.B, ct.C0)
	r.Add(ct.C0, e0, ct.C0)
	r.Add(ct.C0, pt.Value, ct.C0)
	r.MulCoeffs(v, en.pk.A, ct.C1)
	r.Add(ct.C1, e1, ct.C1)
	return ct
}

// Decryptor recovers plaintexts.
type Decryptor struct {
	ctx *Context
	sk  *SecretKey
}

// NewDecryptor returns a Decryptor.
func NewDecryptor(ctx *Context, sk *SecretKey) *Decryptor {
	return &Decryptor{ctx: ctx, sk: sk}
}

// DecryptNew returns m = c0 + c1·s.
func (d *Decryptor) DecryptNew(ct *Ciphertext) *Plaintext {
	r := d.ctx.RingQ(ct.Level)
	s := d.ctx.skAt(ct.Level, false)
	p := r.NewPoly()
	r.MulCoeffs(ct.C1, s, p)
	r.Add(p, ct.C0, p)
	return &Plaintext{Value: p, Level: ct.Level, Scale: ct.Scale}
}

// EncodeConstant mirrors ckks.EncodeConstant.
func EncodeConstant(c float64, scale float64) *big.Int {
	return ckks.EncodeConstant(c, scale)
}

func logScale(s float64) float64 { return math.Log2(s) }
