package ckks

import (
	"cnnhe/internal/ring"
)

// keySwitchCoeff applies the RNS-decomposition key switch to the
// coefficient-domain polynomial c at the given level: it returns NTT-domain
// polynomials (p0, p1) on limbs 0..level such that
//
//	p0 + p1·s ≈ c·s'
//
// where s' is the key the switching key was generated for (s² for
// relinearization, φ(s) for rotations).
//
// Procedure (one digit per ciphertext limb, special primes P):
//  1. raise digit i = [c]_{q_i} to all QP limbs by modular reduction;
//  2. accumulate Σ_i NTT(digit_i) ⊙ (swk.B[i], swk.A[i]) over QP;
//  3. divide by P with rounding (ModDown) back to Q.
func (ev *Evaluator) keySwitchCoeff(level int, c *ring.Poly, swk *SwitchingKey) (*ring.Poly, *ring.Poly) {
	r := ev.ctx.R
	limbsQ := r.Limbs(level, false)
	limbsQP := r.Limbs(level, true)

	acc0 := r.NewPoly(level)
	acc1 := r.NewPoly(level)
	d := r.GetPoly()
	for i := 0; i <= level; i++ {
		r.ExtendLimb(i, limbsQP, c, d)
		r.NTT(limbsQP, d)
		r.MulCoeffsThenAdd(limbsQP, d, swk.B[i], acc0)
		r.MulCoeffsThenAdd(limbsQP, d, swk.A[i], acc1)
	}
	r.PutPoly(d)

	r.INTT(limbsQP, acc0)
	r.INTT(limbsQP, acc1)
	ev.modDown(level, acc0)
	ev.modDown(level, acc1)
	r.NTT(limbsQ, acc0)
	r.NTT(limbsQ, acc1)
	return acc0, acc1
}

// modDown divides the coefficient-domain polynomial p (on limbs
// 0..level + specials) by the full special modulus P with rounding,
// leaving the result on limbs 0..level.
func (ev *Evaluator) modDown(level int, p *ring.Poly) {
	r := ev.ctx.R
	nLimbs := len(r.SubRings)
	special := make([]int, 0, r.Special)
	for i := nLimbs - r.Special; i < nLimbs; i++ {
		special = append(special, i)
	}
	// Divide by one special prime at a time; remaining specials stay live
	// as targets until their own turn.
	for si := len(special) - 1; si >= 0; si-- {
		targets := r.Limbs(level, false)
		targets = append(targets, special[:si]...)
		r.DivideExactByLimb(special[si], targets, p, p)
	}
}
