package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"cnnhe/internal/ckks"
	"cnnhe/internal/guard"
	"cnnhe/internal/henn"
	"cnnhe/internal/nn"
	"cnnhe/internal/telemetry"
)

// tinyModel mirrors the henn test fixture: Conv(1→2, 3×3, s2) → SLAF →
// Flatten → Dense on 8×8 inputs, depth 4.
func tinyModel(seed int64) *nn.Model {
	rng := rand.New(rand.NewSource(seed))
	conv := nn.NewConv2D(rng, 1, 2, 3, 2, 0, 8, 8)
	flat := conv.OutC * conv.OutH() * conv.OutW()
	m := &nn.Model{Layers: []nn.Layer{
		conv,
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewDense(rng, flat, 4),
	}}
	hm := m.ReplaceReLUWithSLAF(3, 1)
	for _, l := range hm.Layers {
		if s, ok := l.(*nn.SLAF); ok {
			s.FitReLU(3)
		}
	}
	return hm
}

func testImage(rng *rand.Rand, n int) []float64 {
	img := make([]float64, n)
	for i := range img {
		img[i] = float64(rng.Intn(256))
	}
	return img
}

// fixture compiles the batched plan and builds a guarded RNS engine for
// it (plus an unbatched reference plan sharing the model).
type fixture struct {
	model *nn.Model
	bp    *henn.BatchPlan
	base  *henn.Plan
	eng   *guard.GuardedEngine

	refOnce sync.Once
	refEng  *henn.RNSEngine
}

func newFixture(t testing.TB, batch int) *fixture {
	t.Helper()
	m := tinyModel(61)
	bp, err := henn.CompileBatched(m, 512, batch)
	if err != nil {
		t.Fatal(err)
	}
	base, err := henn.Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ckks.NewParameters(10, []int{40, 30, 30, 30, 30}, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	e, err := henn.NewRNSEngine(p, bp.Plan.Rotations(), 601)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{model: m, bp: bp, base: base,
		eng: guard.New(e, guard.DefaultConfig())}
}

// refLogits runs the unbatched single-image reference path on a
// separate engine (so PRNG state cannot couple it to the served path),
// built once per fixture.
func (f *fixture) refLogits(t testing.TB, img []float64) henn.Logits {
	t.Helper()
	f.refOnce.Do(func() {
		p, err := ckks.NewParameters(10, []int{40, 30, 30, 30, 30}, 60, 1, math.Exp2(30))
		if err != nil {
			t.Fatal(err)
		}
		f.refEng, err = henn.NewRNSEngine(p, f.base.Rotations(), 602)
		if err != nil {
			t.Fatal(err)
		}
	})
	logits, _, err := f.base.InferCtx(context.Background(), f.refEng, img)
	if err != nil {
		t.Fatal(err)
	}
	return logits
}

func postClassify(t testing.TB, url string, image []float64) *http.Response {
	t.Helper()
	body, err := json.Marshal(ClassifyRequest{Image: image})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestServeConcurrentParity is the end-to-end acceptance test: N
// concurrent HTTP clients against one micro-batching server produce the
// same predictions (logits within CKKS tolerance) as sequential
// single-image InferCtx runs.
func TestServeConcurrentParity(t *testing.T) {
	f := newFixture(t, 4)
	s, err := New(Config{Batch: f.bp, Engine: f.eng, MaxWait: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	rng := rand.New(rand.NewSource(62))
	images := make([][]float64, n)
	for i := range images {
		images[i] = testImage(rng, 64)
	}

	got := make([]henn.Logits, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			resp := postClassify(t, ts.URL, images[i])
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d", i, resp.StatusCode)
				return
			}
			var cr ClassifyResponse
			if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
				t.Errorf("client %d: decoding: %v", i, err)
				return
			}
			if cr.BatchSize < 1 || cr.BatchSize > f.bp.Batch {
				t.Errorf("client %d: batch size %d outside [1, %d]", i, cr.BatchSize, f.bp.Batch)
			}
			got[i] = henn.Logits(cr.Logits)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, img := range images {
		want := f.refLogits(t, img)
		if len(got[i]) != len(want) {
			t.Fatalf("client %d: %d logits, want %d", i, len(got[i]), len(want))
		}
		for j := range want {
			if math.Abs(got[i][j]-want[j]) > 0.05 {
				t.Fatalf("client %d logit %d: served %g reference %g", i, j, got[i][j], want[j])
			}
		}
		if got[i].Argmax() != want.Argmax() {
			t.Fatalf("client %d prediction mismatch", i)
		}
	}
}

// TestServeQueueFullRejects: with the batcher stopped and the queue at
// capacity, a request is rejected with 429 and a Retry-After hint.
func TestServeQueueFullRejects(t *testing.T) {
	f := newFixture(t, 2)
	s, err := newServer(Config{Batch: f.bp, Engine: f.eng, QueueSize: 1,
		RetryAfter: 3 * time.Second}) // batcher intentionally not started
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(63))
	if _, err := s.enqueue(context.Background(), testImage(rng, 64)); err != nil {
		t.Fatalf("first enqueue should fit: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := postClassify(t, ts.URL, testImage(rng, 64))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("want Retry-After 3, got %q", ra)
	}
}

// TestServeShutdownDrains: requests queued before Shutdown are all
// served through final batches; requests after Shutdown are refused.
func TestServeShutdownDrains(t *testing.T) {
	f := newFixture(t, 4)
	// Long MaxWait: the drain must come from Shutdown closing intake,
	// not from the flush timer happening to fire.
	s, err := New(Config{Batch: f.bp, Engine: f.eng, MaxWait: 2 * time.Second, QueueSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(64))
	const n = 3
	reqs := make([]*request, n)
	for i := range reqs {
		r, err := s.enqueue(context.Background(), testImage(rng, 64))
		if err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
		reqs[i] = r
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("drain failed: %v", err)
	}
	for i, r := range reqs {
		select {
		case res := <-r.resp:
			if res.err != nil {
				t.Fatalf("drained request %d failed: %v", i, res.err)
			}
			if len(res.logits) != f.bp.Plan.OutputDim {
				t.Fatalf("drained request %d: %d logits", i, len(res.logits))
			}
		default:
			t.Fatalf("request %d not answered by drain", i)
		}
	}
	// Post-shutdown intake refused, at both layers.
	if _, err := s.enqueue(context.Background(), testImage(rng, 64)); err != ErrShuttingDown {
		t.Fatalf("want ErrShuttingDown, got %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp := postClassify(t, ts.URL, testImage(rng, 64))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("want 503 after shutdown, got %d", resp.StatusCode)
	}
	// Shutdown is idempotent.
	if err := s.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}
}

// TestServeBadRequests: malformed inputs are rejected at the HTTP edge
// before touching the queue.
func TestServeBadRequests(t *testing.T) {
	f := newFixture(t, 2)
	s, err := New(Config{Batch: f.bp, Engine: f.eng})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Wrong length.
	resp := postClassify(t, ts.URL, []float64{1, 2, 3})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("short image: want 400, got %d", resp.StatusCode)
	}
	// Non-finite pixel (would poison the whole packed batch).
	rng := rand.New(rand.NewSource(65))
	bad := testImage(rng, 64)
	bad[10] = math.NaN()
	body, _ := json.Marshal(map[string][]string{})
	_ = body
	raw := []byte(`{"image":[`)
	for i, v := range bad {
		if i > 0 {
			raw = append(raw, ',')
		}
		if math.IsNaN(v) {
			raw = append(raw, `1e999`...) // decodes to +Inf rejection path via JSON error or non-finite
		} else {
			raw = append(raw, []byte(fmt.Sprintf("%g", v))...)
		}
	}
	raw = append(raw, `]}`...)
	r2, err := http.Post(ts.URL+"/classify", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusBadRequest {
		t.Fatalf("non-finite image: want 400, got %d", r2.StatusCode)
	}
	// Invalid JSON.
	r3, err := http.Post(ts.URL+"/classify", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	r3.Body.Close()
	if r3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON: want 400, got %d", r3.StatusCode)
	}
	// Wrong method.
	r4, err := http.Get(ts.URL + "/classify")
	if err != nil {
		t.Fatal(err)
	}
	r4.Body.Close()
	if r4.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: want 405, got %d", r4.StatusCode)
	}
	// Health while accepting, carrying the optimizer setting for load
	// clients to stamp their reports with.
	r5, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status    string `json:"status"`
		Optimizer string `json:"optimizer"`
	}
	err = json.NewDecoder(r5.Body).Decode(&health)
	r5.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if r5.StatusCode != http.StatusOK {
		t.Fatalf("healthz: want 200, got %d", r5.StatusCode)
	}
	if health.Status != "ok" || health.Optimizer == "" {
		t.Fatalf("healthz body: %+v (want ok status and an optimizer setting)", health)
	}
}

// TestServeRequestTimeout: an expired per-request deadline surfaces as
// 504 instead of hanging.
func TestServeRequestTimeout(t *testing.T) {
	f := newFixture(t, 2)
	s, err := New(Config{Batch: f.bp, Engine: f.eng, RequestTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	rng := rand.New(rand.NewSource(66))
	resp := postClassify(t, ts.URL, testImage(rng, 64))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("want 504, got %d", resp.StatusCode)
	}
}

// TestServeGuardResetBetweenBatches: a batch that trips the guard fails
// alone — the next batch on the same engine and prepared graph succeeds
// because the serving loop resets the latched error.
func TestServeGuardResetBetweenBatches(t *testing.T) {
	f := newFixture(t, 2)
	s, err := New(Config{Batch: f.bp, Engine: f.eng, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	rng := rand.New(rand.NewSource(67))

	// Poison the engine directly, as a corrupted batch would.
	func() {
		defer func() { _ = recover() }()
		f.eng.DecryptVec("not a ciphertext")
	}()
	if f.eng.Err() == nil {
		t.Fatal("guard should be tripped")
	}
	// First request fails (latched guard aborts the batch) but the
	// server resets the guard afterwards…
	_, _, err = s.Submit(context.Background(), testImage(rng, 64))
	if err == nil {
		t.Fatal("batch on a tripped guard should fail")
	}
	// …so the next one succeeds.
	logits, info, err := s.Submit(context.Background(), testImage(rng, 64))
	if err != nil {
		t.Fatalf("post-reset batch failed: %v", err)
	}
	if len(logits) != f.bp.Plan.OutputDim || info.Size != 1 {
		t.Fatalf("unexpected post-reset result: %d logits, batch %d", len(logits), info.Size)
	}
}

// TestServeMetricsExposed: the serving instruments land on the shared
// registry and render on /metrics.
func TestServeMetricsExposed(t *testing.T) {
	telemetry.SetEnabled(true)
	f := newFixture(t, 2)
	s, err := New(Config{Batch: f.bp, Engine: f.eng, MaxWait: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	rng := rand.New(rand.NewSource(68))
	if _, _, err := s.Submit(context.Background(), testImage(rng, 64)); err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(telemetry.Handler(telemetry.Default()))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, family := range []string{
		"cnnhe_serve_queue_depth",
		"cnnhe_serve_batch_fill_ratio",
		"cnnhe_serve_batches_total",
		"cnnhe_serve_requests_total",
		"cnnhe_serve_request_seconds",
		"cnnhe_serve_batch_seconds",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("family %s missing from /metrics", family)
		}
	}
	snap := telemetry.Default().Snapshot()
	if fam, ok := snap.Family("cnnhe_serve_batch_fill_ratio"); !ok || len(fam.Series) == 0 {
		t.Fatal("fill-ratio gauge not registered")
	} else if v := fam.Series[0].Value; v <= 0 || v > 1 {
		t.Fatalf("fill ratio %v outside (0, 1]", v)
	}
}
