// Package opt rewrites lowered op graphs (internal/henn/ir) between
// lowering and execution: a pass manager runs an ordered, individually
// toggleable list of passes, each returning a rewritten graph plus a
// machine-readable PassStats.
//
// The pipeline ships six passes, in default order:
//
//	cse      hash-cons ops on (kind, args, rotation, plaintext content,
//	         hoisted-ness) so duplicate producers collapse to one
//	fold     plaintext constant folding: drop all-zero AddPlains and
//	         pre-combine AddPlain/MulPlain chains against one operand
//	replan   rotation replanning: merge hoisted rotations that share a
//	         source ciphertext into one RotateMany fan-out, so a single
//	         key-switch decomposition serves the whole fan-out
//	         (double-hoisting across the per-stage groups lowering emits)
//	rescale  lazy rescale: sink OpRescale/OpDropLevel past adds and
//	         recombines so the sum happens at high scale and one
//	         rescale serves the whole reduction tree
//	fuse     collapse single-use Add/Recombine reduction trees into one
//	         OpRecombine the engine evaluates as a fused linear
//	         combination (ir.Recombiner)
//	dce      drop ops unreachable from the output and the recorded
//	         stage outputs (encrypt ops are pinned: the PRNG call order
//	         of the prologue is part of the bit-parity contract)
//
// Exactness. cse, replan, fuse, dce, and the exact subset of fold and
// rescale are bit-exact: an optimized graph decrypts to bit-identical
// logits (grouped and singleton hoisted rotations produce identical
// ciphertexts — see TestRotateHoistedGroupingBitIdentical — and modular
// addition is associative, so reassociating reduction trees is exact).
// Two rewrites trade bits for speed and are tolerance-gated instead:
// rescale-sinking (rounding once after the sum instead of once per
// addend) and plaintext chain folding (one encoding rounding instead of
// two). Options.Exact restricts every pass to its bit-exact subset;
// that is the configuration the executor-parity oracle asserts
// bit-identical, while the full pipeline is gated on logits tolerance
// plus an unchanged argmax.
//
// Every pass rebuilds the graph through one builder that renumbers ops,
// remaps Stages/Hoists, re-runs the exact level/scale inference, and
// re-validates, so structural invariants cannot silently rot between
// passes.
package opt

import (
	"fmt"
	"math"
	"strings"

	"cnnhe/internal/henn/ir"
)

// Params is the subset of engine parameters the level/scale re-inference
// needs. ir.Engine satisfies it.
type Params interface {
	MaxLevel() int
	Scale() float64
	QiFloat(level int) float64
}

// Options selects and restricts the pass pipeline.
type Options struct {
	// Off disables optimization entirely: Optimize returns the input
	// graph unchanged (the -opt=off escape hatch).
	Off bool
	// Passes is the ordered pass list to run; nil means DefaultPasses.
	// Unknown names are an error.
	Passes []string
	// Exact restricts every pass to its bit-exact rewrites (see the
	// package comment): rescale-sinking and plaintext chain folding are
	// skipped, DropLevel-sinking and zero-AddPlain elision still run.
	Exact bool
}

// Disabled returns the -opt=off options value.
func Disabled() *Options { return &Options{Off: true} }

// DefaultPasses is the standard pipeline order. fold runs after cse so
// collapsed producers expose chains; replan runs before rescale/fuse so
// reduction-tree rewrites see final rotation sources; dce runs last to
// sweep orphans the other passes leave behind.
var DefaultPasses = []string{"cse", "fold", "replan", "rescale", "fuse", "dce"}

// Setting renders the configuration for logs, SLO reports and health
// endpoints ("off", "on (cse,fold,…)", "exact (cse,…)").
func (o *Options) Setting() string {
	if o != nil && o.Off {
		return "off"
	}
	passes := DefaultPasses
	mode := "on"
	if o != nil {
		if o.Passes != nil {
			passes = o.Passes
		}
		if o.Exact {
			mode = "exact"
		}
	}
	return mode + " (" + strings.Join(passes, ",") + ")"
}

// ParseFlag parses a CLI -opt value: "on" or "" (default pipeline),
// "off", "exact", or a comma-separated pass list ("cse,dce").
func ParseFlag(s string) (*Options, error) {
	switch s {
	case "", "on":
		return nil, nil
	case "off":
		return Disabled(), nil
	case "exact":
		return &Options{Exact: true}, nil
	}
	names := strings.Split(s, ",")
	for _, n := range names {
		if _, ok := passRegistry[n]; !ok {
			return nil, fmt.Errorf("opt: unknown pass %q (have %s, or on/off/exact)",
				n, strings.Join(DefaultPasses, ","))
		}
	}
	return &Options{Passes: names}, nil
}

// PassStats is one pass's machine-readable outcome.
type PassStats struct {
	// Pass is the pass name.
	Pass string `json:"pass"`
	// OpsBefore and OpsAfter count graph ops around the pass.
	OpsBefore int `json:"ops_before"`
	OpsAfter  int `json:"ops_after"`
	// Removed maps op-kind name to the net count the pass removed
	// (negative when the pass added ops of the kind, e.g. the trailing
	// rescale the sink rewrite inserts). Only non-zero kinds appear.
	Removed map[string]int `json:"removed,omitempty"`
}

// Result is the outcome of one Optimize run.
type Result struct {
	// Graph is the optimized graph (the input graph when Off).
	Graph *ir.Graph
	// Before and After summarise the graph around the whole pipeline.
	Before, After ir.Stats
	// Passes holds one entry per executed pass, in order.
	Passes []PassStats
	// Setting echoes Options.Setting for attribution.
	Setting string
}

// Summary renders the before/after on one line for CLIs.
func (r *Result) Summary() string {
	if r.Before.Ops == 0 {
		return "optimizer: empty graph"
	}
	pct := func(before, after int) float64 {
		if before == 0 {
			return 0
		}
		return 100 * float64(before-after) / float64(before)
	}
	return fmt.Sprintf("optimizer %s: %d → %d ops (−%.1f%%), %d → %d engine calls (−%.1f%%), rotation calls %d → %d, rescales %d → %d, hoist groups %d → %d",
		r.Setting,
		r.Before.Ops, r.After.Ops, pct(r.Before.Ops, r.After.Ops),
		r.Before.EngineCalls, r.After.EngineCalls, pct(r.Before.EngineCalls, r.After.EngineCalls),
		r.Before.RotateCalls(), r.After.RotateCalls(),
		r.Before.ByKind[ir.OpRescale], r.After.ByKind[ir.OpRescale],
		r.Before.Hoists, r.After.Hoists)
}

// PassLines renders one line per pass that changed the graph.
func (r *Result) PassLines() []string {
	var out []string
	for _, p := range r.Passes {
		if p.OpsBefore == p.OpsAfter && len(p.Removed) == 0 {
			continue
		}
		var kinds []string
		for _, k := range []ir.Kind{ir.OpEncrypt, ir.OpRotate, ir.OpMulPlain, ir.OpAddPlain,
			ir.OpAdd, ir.OpMulRelin, ir.OpRescale, ir.OpDropLevel, ir.OpRecombine} {
			if d := p.Removed[k.String()]; d != 0 {
				kinds = append(kinds, fmt.Sprintf("%s %+d", k, -d))
			}
		}
		out = append(out, fmt.Sprintf("pass %-7s %d → %d ops (%s)",
			p.Pass, p.OpsBefore, p.OpsAfter, strings.Join(kinds, ", ")))
	}
	return out
}

// passFunc rewrites g, honoring the bit-exact restriction when exact.
type passFunc func(g *ir.Graph, par Params, exact bool) (*ir.Graph, error)

var passRegistry = map[string]passFunc{
	"cse":     passCSE,
	"fold":    passFold,
	"replan":  passReplan,
	"rescale": passRescale,
	"fuse":    passFuse,
	"dce":     passDCE,
}

// Optimize runs the configured pass pipeline over a validated graph and
// returns the rewritten graph plus per-pass stats. o may be nil (the
// default pipeline). The input graph is never mutated.
func Optimize(par Params, g *ir.Graph, o *Options) (*Result, error) {
	res := &Result{Graph: g, Before: g.Stats(), Setting: o.Setting()}
	if o != nil && o.Off {
		res.After = res.Before
		return res, nil
	}
	passes := DefaultPasses
	exact := false
	if o != nil {
		if o.Passes != nil {
			passes = o.Passes
		}
		exact = o.Exact
	}
	cur := g
	for _, name := range passes {
		fn, ok := passRegistry[name]
		if !ok {
			return nil, fmt.Errorf("opt: unknown pass %q", name)
		}
		before := cur.Stats()
		next, err := fn(cur, par, exact)
		if err != nil {
			return nil, fmt.Errorf("opt: pass %s: %w", name, err)
		}
		after := next.Stats()
		ps := PassStats{Pass: name, OpsBefore: before.Ops, OpsAfter: after.Ops, Removed: map[string]int{}}
		for k, n := range before.ByKind {
			if d := n - after.ByKind[k]; d != 0 {
				ps.Removed[k.String()] = d
			}
		}
		for k, n := range after.ByKind {
			if before.ByKind[k] == 0 && n != 0 {
				ps.Removed[k.String()] = -n
			}
		}
		if len(ps.Removed) == 0 {
			ps.Removed = nil
		}
		res.Passes = append(res.Passes, ps)
		cur = next
	}
	res.Graph = cur
	res.After = cur.Stats()
	return res, nil
}

// scaleClose mirrors the backends' (and the tracer's) relative 2^-40
// scale tolerance.
func scaleClose(a, b float64) bool {
	return math.Abs(a-b) <= math.Max(a, b)*math.Exp2(-40)
}

// builder accumulates a rewritten op list over a source graph and
// finishes it into a renumbered, re-inferred, re-validated ir.Graph.
// Passes emit ops whose Args are NEW ids (use arg to remap); Hoist
// fields are opaque tags that finish normalizes into compact group ids
// by first appearance.
type builder struct {
	src   *ir.Graph
	ops   []ir.Op
	remap []int // old op id → new op id, -1 while dropped/unprocessed
}

func newBuilder(src *ir.Graph) *builder {
	b := &builder{src: src, remap: make([]int, len(src.Ops))}
	for i := range b.remap {
		b.remap[i] = -1
	}
	return b
}

// arg resolves an old op id to its new id; a dropped producer is a pass
// bug surfaced as a panic (recovered into an error by finish callers
// via Validate failing first in practice, so keep it loud).
func (b *builder) arg(old int) int {
	n := b.remap[old]
	if n < 0 {
		panic(fmt.Errorf("opt: op %d referenced after being dropped", old))
	}
	return n
}

// emit appends op (Args already new ids) and returns its new id.
func (b *builder) emit(op ir.Op) int {
	op.ID = len(b.ops)
	b.ops = append(b.ops, op)
	return op.ID
}

// carry copies old op i with remapped args, preserving its hoist tag.
func (b *builder) carry(i int) int {
	op := b.src.Ops[i]
	if len(op.Args) > 0 {
		args := make([]int, len(op.Args))
		for j, a := range op.Args {
			args[j] = b.arg(a)
		}
		op.Args = args
	}
	id := b.emit(op)
	b.remap[i] = id
	return id
}

// alias maps old op i onto an existing new op (CSE merge, fold elision,
// sunk-rescale replacement): later references, including stage outputs,
// resolve there.
func (b *builder) alias(i, newID int) { b.remap[i] = newID }

// finish renumbers, rebuilds Stages and Hoists, re-runs the exact
// level/scale inference, and validates.
func (b *builder) finish(par Params) (*ir.Graph, error) {
	g := &ir.Graph{
		Slots:  b.src.Slots,
		Inputs: b.src.Inputs,
		Ops:    b.ops,
		Stages: append([]ir.StageInfo(nil), b.src.Stages...),
	}
	for s := range g.Stages {
		if out := g.Stages[s].Out; out >= 0 {
			n := b.remap[out]
			if n < 0 {
				return nil, fmt.Errorf("opt: stage %d (%s) output op %d was dropped", s, g.Stages[s].Name, out)
			}
			g.Stages[s].Out = n
		}
	}
	if out := b.src.Output; out >= 0 {
		n := b.remap[out]
		if n < 0 {
			return nil, fmt.Errorf("opt: graph output op %d was dropped", out)
		}
		g.Output = n
	} else {
		g.Output = -1
	}
	// Normalize hoist tags into compact group ids, first appearance
	// first; rebuild the member lists in op order.
	tagGroup := map[int]int{}
	for i := range g.Ops {
		op := &g.Ops[i]
		if op.Kind != ir.OpRotate || op.Hoist < 0 {
			op.Hoist = -1
			continue
		}
		gid, ok := tagGroup[op.Hoist]
		if !ok {
			gid = len(g.Hoists)
			tagGroup[op.Hoist] = gid
			g.Hoists = append(g.Hoists, nil)
		}
		op.Hoist = gid
		g.Hoists[gid] = append(g.Hoists[gid], i)
	}
	if err := reinfer(par, g); err != nil {
		return nil, err
	}
	return g, g.Validate()
}

// reinfer recomputes every op's (Level, Scale) from scratch with the
// tracer's exact rules, so rewrites that move rescales cannot leave
// stale metadata behind (ahead-of-time plaintext encoding depends on
// it being exact).
func reinfer(par Params, g *ir.Graph) error {
	for i := range g.Ops {
		op := &g.Ops[i]
		a := func(j int) *ir.Op { return &g.Ops[op.Args[j]] }
		switch op.Kind {
		case ir.OpEncrypt:
			op.Level, op.Scale = par.MaxLevel(), par.Scale()
		case ir.OpRotate, ir.OpAddPlain:
			op.Level, op.Scale = a(0).Level, a(0).Scale
			if op.Kind == ir.OpAddPlain {
				op.PtScale = a(0).Scale
			}
		case ir.OpMulPlain:
			op.Level, op.Scale = a(0).Level, a(0).Scale*op.PtScale
		case ir.OpAdd:
			x, y := a(0), a(1)
			if x.Level != y.Level {
				return fmt.Errorf("opt: op %d Add level mismatch %d vs %d", i, x.Level, y.Level)
			}
			if !scaleClose(x.Scale, y.Scale) {
				return fmt.Errorf("opt: op %d Add scale mismatch 2^%.2f vs 2^%.2f",
					i, math.Log2(x.Scale), math.Log2(y.Scale))
			}
			op.Level, op.Scale = x.Level, x.Scale
		case ir.OpMulRelin:
			x, y := a(0), a(1)
			if x.Level != y.Level {
				return fmt.Errorf("opt: op %d MulRelin level mismatch %d vs %d", i, x.Level, y.Level)
			}
			op.Level, op.Scale = x.Level, x.Scale*y.Scale
		case ir.OpRescale:
			x := a(0)
			if x.Level <= 0 {
				return fmt.Errorf("opt: op %d rescales at level 0", i)
			}
			op.Level, op.Scale = x.Level-1, x.Scale/par.QiFloat(x.Level)
		case ir.OpDropLevel:
			x := a(0)
			if op.Drop < 0 || x.Level-op.Drop < 0 {
				return fmt.Errorf("opt: op %d drops %d levels from level %d", i, op.Drop, x.Level)
			}
			op.Level, op.Scale = x.Level-op.Drop, x.Scale
		case ir.OpRecombine:
			x := a(0)
			for j := 1; j < len(op.Args); j++ {
				y := a(j)
				if y.Level != x.Level || !scaleClose(y.Scale, x.Scale) {
					return fmt.Errorf("opt: op %d recombine arg %d at (level %d, scale 2^%.2f), arg 0 at (level %d, scale 2^%.2f)",
						i, j, y.Level, math.Log2(y.Scale), x.Level, math.Log2(x.Scale))
				}
			}
			op.Level, op.Scale = x.Level, x.Scale
		default:
			return fmt.Errorf("opt: op %d has unknown kind %v", i, op.Kind)
		}
	}
	return nil
}

// useCounts returns each op's static consumer count, +1 for the graph
// output (mirroring the executor's reference counting).
func useCounts(g *ir.Graph) []int {
	use := make([]int, len(g.Ops))
	for i := range g.Ops {
		for _, a := range g.Ops[i].Args {
			use[a]++
		}
	}
	if g.Output >= 0 {
		use[g.Output]++
	}
	return use
}

// stageOutSet marks ops that are some stage's reported output.
func stageOutSet(g *ir.Graph) map[int]bool {
	outs := map[int]bool{}
	for _, st := range g.Stages {
		if st.Out >= 0 {
			outs[st.Out] = true
		}
	}
	return outs
}
