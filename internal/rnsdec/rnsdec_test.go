package rnsdec

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBasisRoundTrip(t *testing.T) {
	b, err := NewBasis([]int64{251, 256, 255})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint32) bool {
		x := int64(raw) % b.M
		return b.Compose(b.Decompose(x)) == x
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBasisRejectsNonCoprime(t *testing.T) {
	if _, err := NewBasis([]int64{6, 9}); err == nil {
		t.Fatal("expected error for non-co-prime moduli")
	}
	if _, err := NewBasis([]int64{1, 7}); err == nil {
		t.Fatal("expected error for modulus 1")
	}
	if _, err := NewBasis(nil); err == nil {
		t.Fatal("expected error for empty basis")
	}
}

func TestDefaultBasisProperties(t *testing.T) {
	for k := 1; k <= 6; k++ {
		b, err := DefaultBasis(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(b.Moduli) != k {
			t.Fatalf("k=%d got %d moduli", k, len(b.Moduli))
		}
		if b.M < 256 {
			t.Fatalf("k=%d range %d too small for pixels", k, b.M)
		}
		for i, mi := range b.Moduli {
			for _, mj := range b.Moduli[:i] {
				if gcd(mi, mj) != 1 {
					t.Fatalf("moduli %d,%d not coprime", mi, mj)
				}
			}
		}
	}
}

func TestBasisTensorRoundTrip(t *testing.T) {
	b, err := DefaultBasis(3)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	img := make([]float64, 784)
	for i := range img {
		img[i] = float64(rng.Intn(256))
	}
	parts := b.DecomposeTensor(img)
	if len(parts) != 3 {
		t.Fatal("want 3 residue tensors")
	}
	back := b.ComposeTensor(parts)
	for i := range img {
		if back[i] != img[i] {
			t.Fatalf("tensor roundtrip mismatch at %d", i)
		}
	}
}

func TestBasisOutOfRangePanics(t *testing.T) {
	b, _ := NewBasis([]int64{5, 7})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range value")
		}
	}()
	b.Decompose(35)
}

func TestDigitBasisRoundTrip(t *testing.T) {
	d, err := NewDigitBasis(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	for x := int64(0); x < 256; x++ {
		if got := d.Compose(d.Decompose(x)); got != x {
			t.Fatalf("digit roundtrip %d -> %d", x, got)
		}
	}
}

// TestDigitModeCommutesWithLinearLayer is the core property the encrypted
// Fig 5 pipeline relies on: for any linear map L,
// L(x) = Σ_i Bⁱ·L(d_i(x)).
func TestDigitModeCommutesWithLinearLayer(t *testing.T) {
	d, err := NewDigitBasis(16, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	n, m := 32, 8
	// random linear map
	w := make([][]float64, m)
	for i := range w {
		w[i] = make([]float64, n)
		for j := range w[i] {
			w[i][j] = rng.Float64()*2 - 1
		}
	}
	apply := func(x []float64) []float64 {
		out := make([]float64, m)
		for i := range w {
			for j := range x {
				out[i] += w[i][j] * x[j]
			}
		}
		return out
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = float64(rng.Intn(256))
	}
	direct := apply(x)
	parts := d.DecomposeTensor(x)
	outs := make([][]float64, len(parts))
	for i, p := range parts {
		outs[i] = apply(p)
	}
	recombined := d.ComposeTensor(outs)
	for i := range direct {
		if diff := direct[i] - recombined[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("linearity violated at %d: %g vs %g", i, direct[i], recombined[i])
		}
	}
}

func TestDigitBasisErrors(t *testing.T) {
	if _, err := NewDigitBasis(1, 3); err == nil {
		t.Fatal("expected error for base 1")
	}
	if _, err := NewDigitBasis(10, 0); err == nil {
		t.Fatal("expected error for zero digits")
	}
	if _, err := NewDigitBasis(1<<32, 3); err == nil {
		t.Fatal("expected overflow error")
	}
}

func TestCRTWeightsAreUnitVectors(t *testing.T) {
	b, err := NewBasis([]int64{7, 11, 13})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range b.crtW {
		for j, m := range b.Moduli {
			want := int64(0)
			if i == j {
				want = 1
			}
			if w%m != want {
				t.Fatalf("crtW[%d] mod m[%d] = %d want %d", i, j, w%m, want)
			}
		}
	}
}
