package henn

import (
	"math"
	"math/rand"
	"testing"
)

func TestCompileBatchedValidation(t *testing.T) {
	m := tinyModel(31)
	if _, err := CompileBatched(m, 512, 3); err == nil {
		t.Fatal("batch must divide slots")
	}
	// Block too small for the model's 64-dim input.
	if _, err := CompileBatched(m, 512, 16); err == nil {
		t.Fatal("expected block-size error for batch 16 (block 32 < dim 64)")
	}
	bp, err := CompileBatched(m, 512, 4) // block 128 ≥ 64
	if err != nil {
		t.Fatal(err)
	}
	if bp.BlockSize != 128 || bp.Batch != 4 {
		t.Fatalf("unexpected layout %+v", bp)
	}
	if bp.Plan.Depth != 4 {
		t.Fatalf("batching must not change depth: %d", bp.Plan.Depth)
	}
}

func TestBatchedInferenceMatchesPlaintext(t *testing.T) {
	m := tinyModel(33)
	bp, err := CompileBatched(m, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, bp.Plan, 10, []int{40, 30, 30, 30, 30})
	rng := rand.New(rand.NewSource(34))
	images := [][]float64{
		testImage(rng, 64), testImage(rng, 64), testImage(rng, 64), testImage(rng, 64),
	}
	logits, lat, err := bp.InferBatch(e, images)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("latency not measured")
	}
	for b, img := range images {
		want := plainForward(m, img, 1, 8, 8)
		for i := range want {
			if math.Abs(logits[b][i]-want[i]) > 0.05 {
				t.Fatalf("image %d logit %d: got %g want %g", b, i, logits[b][i], want[i])
			}
		}
	}
}

func TestBatchedPartialBatch(t *testing.T) {
	m := tinyModel(35)
	bp, err := CompileBatched(m, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, bp.Plan, 10, []int{40, 30, 30, 30, 30})
	rng := rand.New(rand.NewSource(36))
	images := [][]float64{testImage(rng, 64), testImage(rng, 64)}
	logits, _, err := bp.InferBatch(e, images)
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != 2 {
		t.Fatalf("want 2 results, got %d", len(logits))
	}
	for b, img := range images {
		want := plainForward(m, img, 1, 8, 8)
		if logits[b].Argmax() != Logits(want).Argmax() {
			t.Fatalf("image %d prediction mismatch", b)
		}
	}
	// Overfull batch rejected.
	six := append(images, images...)
	six = append(six, images...)
	if _, _, err := bp.InferBatch(e, six); err == nil {
		t.Fatal("expected error for overfull batch")
	}
}

func TestBatchOfOneMatchesPlain(t *testing.T) {
	m := tinyModel(37)
	bp, err := CompileBatched(m, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, plan, 10, []int{40, 30, 30, 30, 30})
	rng := rand.New(rand.NewSource(38))
	img := testImage(rng, 64)
	a, _ := plan.Infer(e, img)
	bs, _, err := bp.InferBatch(e, [][]float64{img})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-bs[0][i]) > 0.02 {
			t.Fatalf("batch-of-one differs at logit %d", i)
		}
	}
}
