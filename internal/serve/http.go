package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"cnnhe/internal/henn"
	"cnnhe/internal/telemetry"
)

// classifyBodyLimit bounds a plaintext classification request body,
// sized from the plan instead of a one-size cap: one image of InputDim
// JSON numbers (≤ 25 bytes each incl. separator) plus field/framing
// overhead. The floor keeps tiny test plans from rejecting ordinary
// request framing.
func (s *Server) classifyBodyLimit() int64 {
	limit := int64(s.InputDim())*25 + 4096
	if limit < 1<<16 {
		limit = 1 << 16
	}
	return limit
}

// HeaderRequestDeadline propagates the caller's end-to-end deadline
// into admission and batcher member deadlines. The value is either a Go
// duration relative to arrival ("750ms", "30s") or an absolute RFC 3339
// timestamp. Requests whose deadline the live latency model says cannot
// be met are shed with 503 + Retry-After instead of queued.
const HeaderRequestDeadline = "X-Request-Deadline"

// parseRequestDeadline resolves the header against the arrival time.
func parseRequestDeadline(v string, now time.Time) (time.Time, error) {
	if d, err := time.ParseDuration(v); err == nil {
		if d <= 0 {
			return time.Time{}, fmt.Errorf("deadline %q is not in the future", v)
		}
		return now.Add(d), nil
	}
	t, err := time.Parse(time.RFC3339, v)
	if err != nil {
		return time.Time{}, fmt.Errorf("deadline %q is neither a duration nor RFC 3339", v)
	}
	return t, nil
}

// deadlineContext narrows ctx to the request's propagated deadline, if
// the header carries one. The returned cancel must always be called.
func deadlineContext(ctx context.Context, r *http.Request) (context.Context, context.CancelFunc, error) {
	v := r.Header.Get(HeaderRequestDeadline)
	if v == "" {
		return ctx, func() {}, nil
	}
	d, err := parseRequestDeadline(v, time.Now())
	if err != nil {
		return ctx, func() {}, err
	}
	ctx, cancel := context.WithDeadline(ctx, d)
	return ctx, cancel, nil
}

// ClassifyRequest is the POST /classify body.
type ClassifyRequest struct {
	// Image is the raw pixel vector (values in [0, 255], length must
	// equal the plan's input dimension).
	Image []float64 `json:"image"`
}

// ClassifyResponse is the success body.
type ClassifyResponse struct {
	// Class is the argmax of the decrypted logits.
	Class int `json:"class"`
	// Logits are the decrypted outputs, one per class.
	Logits []float64 `json:"logits"`
	// BatchSize is how many requests shared this encrypted evaluation.
	BatchSize int `json:"batch_size"`
	// EvalMillis is the server-side homomorphic evaluation time of the
	// whole batch (the paper's classification latency), amortized across
	// BatchSize requests.
	EvalMillis float64 `json:"eval_ms"`
	// TraceID and RequestID echo the response headers (traceparent /
	// X-Request-Id) into the body so SDK callers can surface them without
	// header plumbing.
	TraceID   string `json:"trace_id,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// errorBody is the JSON error payload. RequestID joins an overload or
// timeout response to the server's slog lines and /debug/requests entry.
type errorBody struct {
	Error     string `json:"error"`
	TraceID   string `json:"trace_id,omitempty"`
	RequestID string `json:"request_id,omitempty"`
}

// Handler returns the service mux:
//
//	POST /classify  one image in, logits out (micro-batched internally)
//	GET  /healthz   liveness: 200 while accepting, 503 once draining
//
// Mount the telemetry mux alongside for /metrics and /debug (cmd/heserve
// does).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/classify", s.handleClassify)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeJSON(w, http.StatusServiceUnavailable, errorBody{Error: "draining"})
		return
	}
	// The optimizer setting rides along so load clients (hebombard) can
	// stamp their SLO reports with the server's graph configuration.
	writeJSON(w, http.StatusOK, map[string]string{
		"status":    "ok",
		"optimizer": s.cfg.Batch.Plan.Opt.Setting(),
	})
}

func (s *Server) handleClassify(w http.ResponseWriter, r *http.Request) {
	tc, _ := beginTrace(w, r)
	t0 := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	var req ClassifyRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.classifyBodyLimit()))
	if err := dec.Decode(&req); err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeJSON(w, http.StatusRequestEntityTooLarge, errorBody{
				Error:   fmt.Sprintf("body exceeds %d bytes", mbe.Limit),
				TraceID: tc.TraceIDString(), RequestID: tc.SpanIDString()})
			return
		}
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error:   fmt.Sprintf("decoding body: %v", err),
			TraceID: tc.TraceIDString(), RequestID: tc.SpanIDString()})
		return
	}
	if len(req.Image) != s.InputDim() {
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error:   fmt.Sprintf("image length %d, want %d", len(req.Image), s.InputDim()),
			TraceID: tc.TraceIDString(), RequestID: tc.SpanIDString()})
		return
	}
	for i, v := range req.Image {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error:   fmt.Sprintf("non-finite pixel at index %d", i),
				TraceID: tc.TraceIDString(), RequestID: tc.SpanIDString()})
			return
		}
	}
	ctx, cancel, err := deadlineContext(r.Context(), r)
	defer cancel()
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(),
			TraceID: tc.TraceIDString(), RequestID: tc.SpanIDString()})
		return
	}
	if s.cfg.RequestTimeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer tcancel()
	}
	ctx = telemetry.WithTraceContext(ctx, tc)
	logits, info, err := s.Submit(ctx, req.Image)
	if err != nil {
		logRequest("classify", tc, outcomeForError(err), time.Since(t0), err)
		s.writeError(w, err, tc)
		return
	}
	logRequest("classify", tc, "ok", time.Since(t0), nil)
	writeJSON(w, http.StatusOK, ClassifyResponse{
		Class:      logits.Argmax(),
		Logits:     logits,
		BatchSize:  info.Size,
		EvalMillis: float64(info.Eval) / float64(time.Millisecond),
		TraceID:    tc.TraceIDString(),
		RequestID:  tc.SpanIDString(),
	})
}

// outcomeForError names the failure class for the request slog line,
// mirroring the outcome labels of cnnhe_serve_requests_total.
func outcomeForError(err error) string {
	switch {
	case errors.Is(err, ErrQueueFull):
		return "rejected"
	case errors.Is(err, ErrDeadlineUnmeetable):
		return "shed"
	case errors.Is(err, ErrShuttingDown):
		return "shutdown"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "timeout"
	default:
		return "error"
	}
}

// writeError maps a submission failure to its HTTP status. Retry-After
// on overload responses is priced from live queue depth and observed
// batch latency (cfg.RetryAfter is only the cold-start fallback); every
// body carries the request's join IDs so a 429/503/504 can be chased
// through logs and /debug/requests.
func (s *Server) writeError(w http.ResponseWriter, err error, tc telemetry.TraceContext) {
	body := errorBody{Error: err.Error(), TraceID: tc.TraceIDString(), RequestID: tc.SpanIDString()}
	switch {
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.adm.retryAfter(s.cfg.RetryAfter))))
		writeJSON(w, http.StatusTooManyRequests, body)
	case errors.Is(err, ErrDeadlineUnmeetable):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(s.adm.retryAfter(s.cfg.RetryAfter))))
		writeJSON(w, http.StatusServiceUnavailable, body)
	case errors.Is(err, ErrShuttingDown):
		writeJSON(w, http.StatusServiceUnavailable, body)
	case errors.Is(err, henn.ErrBadInput):
		writeJSON(w, http.StatusBadRequest, body)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusGatewayTimeout, body)
	default:
		writeJSON(w, http.StatusInternalServerError, body)
	}
}

// retryAfterSeconds renders a backoff hint as whole seconds, minimum 1
// (Retry-After is integral).
func retryAfterSeconds(d time.Duration) int {
	secs := int(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}
