package henn

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/mnist"
	"cnnhe/internal/nn"
)

// TestTimingCNN1 is a calibration harness, not a correctness test.
// Run explicitly: go test -run TestTimingCNN1 -v -timeout 1200s
func TestTimingCNN1(t *testing.T) {
	if testing.Short() {
		t.Skip()
	}
	if os.Getenv("CNNHE_CALIBRATE") == "" {
		t.Skip("calibration only")
	}
	rng := rand.New(rand.NewSource(2))
	m := nn.NewCNN1(rng)
	train, test, _ := mnist.Load(3000, 50, 1)
	nn.Train(m, train.ToNN(), nn.TrainConfig{Epochs: 6, BatchSize: 64, MaxLR: 0.08, Momentum: 0.9, Seed: 3})
	rc := nn.DefaultRetrofitConfig()
	rc.Epochs = 2
	hm := nn.Retrofit(m, train.ToNN(), rc)
	fmt.Printf("plain slaf acc: %.4f\n", nn.Evaluate(hm, test.ToNN()))

	plan, err := Compile(hm, 1024)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Print(plan.Describe())

	bits := []int{40, 30, 30, 30, 30, 30, 30, 30}
	p, err := ckks.NewParameters(11, bits, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.CheckDepth(p.MaxLevel()); err != nil {
		t.Fatal(err)
	}

	start := time.Now()
	e, err := NewRNSEngine(p, plan.Rotations(), 77)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("rns keygen: %.1fs (%d rotations)\n", time.Since(start).Seconds(), len(plan.Rotations()))

	imgs := make([][]float64, 5)
	labels := make([]int, 5)
	for i := range imgs {
		imgs[i] = test.Image(i)
		labels[i] = test.Labels[i]
	}
	acc, stats, err := plan.EvaluateEncrypted(e, imgs, labels, 5)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("rns: acc %.2f lat %v\n", acc, stats)

	bp, err := ckksbig.FromRNSParameters(p)
	if err != nil {
		t.Fatal(err)
	}
	start = time.Now()
	be, err := NewBigEngine(bp, plan.Rotations(), 78)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("big keygen: %.1fs\n", time.Since(start).Seconds())
	acc2, stats2, err := plan.EvaluateEncrypted(be, imgs, labels, 2)
	if err != nil {
		t.Fatal(err)
	}
	fmt.Printf("big: acc %.2f lat %v\n", acc2, stats2)
}
