GO ?= go

.PHONY: check vet staticcheck build test race race-ring race-serve race-chaos parity opt-parity opt-golden shard-parity bench bench-kernels telemetry-overhead fuzz-smoke e2e-encrypted soak-chaos trend

## check: the full CI gate — vet, staticcheck, build, tests, the race
## detector (including the ring worker-pool hammer), and the
## executor-vs-interpreter parity suite.
check: vet staticcheck build test race race-ring parity

vet:
	$(GO) vet ./...

## staticcheck: honnef.co/go/tools; skipped with a notice when the
## binary is not on PATH (CI installs it, local toolchains may not).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

## race-ring: the ring/zq kernel suites in full under the race detector —
## the worker-pool hammer (concurrent ring ops from many goroutines,
## mirroring heserve's batcher), the limb differential suites and the
## Barrett/Shoup reduction tests. Proves the revived limb-parallel path
## is data-race-free and deterministic.
race-ring:
	$(GO) test -race ./internal/ring/... ./internal/zq/...

## race-serve: the serving layer's concurrency suite (micro-batching,
## backpressure, drain) in full under the race detector.
race-serve:
	$(GO) test -race ./internal/serve/

## race-chaos: the resilience suites in full under the race detector —
## network fault injection, the in-process kill/restart soak (durable
## store + bit-identical recovery), and the key store's concurrent
## register/evict/lookup drills.
race-chaos:
	$(GO) test -race ./internal/chaos/ ./internal/keys/

## soak-chaos: the process-level survival drill — heserve with listener
## fault injection and a durable key store, open-loop hebombard load,
## SIGKILL + restart mid-load, SLO report asserted free of silent drops.
soak-chaos:
	bash scripts/soak_chaos.sh

## parity: the op-graph executor must replay plans bit-identically to
## the legacy interpreter (logits and report rows) at CNN scale. The
## suite covers the optimizer gates too: -opt=off and -opt=exact must
## stay bit-identical, the full pipeline within tolerance with an
## unchanged argmax.
parity:
	$(GO) test -run TestExecutorParity -timeout 20m ./internal/henn/

## opt-parity: just the optimizer oracle — the parity suite plus the
## hoisted-rotation grouping bit-identity fixture the replan pass and
## the canonical singleton lowering rely on.
opt-parity:
	$(GO) test -run 'TestExecutorParity|TestRotateHoistedGrouping' -timeout 20m ./internal/henn/

## opt-golden: the graph-size gate — checked-in post-optimization Stats
## for CNN1/CNN2 on both backends, with the ≥15% engine-call reduction
## floor. Symbolic (no keygen), seconds.
opt-golden:
	$(GO) test -run 'TestOptimizedGraphGolden|TestOptimizeOffPreservesLowering' ./internal/henn/

## shard-parity: the sharding gates — the shard package's unit and
## property suites (manifest split/join, wire round trip), the 1×1-grid
## parity suite proving the sharded path is bit-identical to the
## unsharded pipeline on CNN1/CNN2 (both backends, seq + parallel), and
## the cross-shard rotation/recombine round trip.
shard-parity:
	$(GO) test ./internal/henn/shard/
	$(GO) test -run 'TestShardParityTiny|TestShardParityCNN|TestShardedCrossShardDense|TestShardInputValidation' -timeout 30m ./internal/henn/

## trend: the perf-trend regression gate — load every committed
## BENCH_*.json, print the per-configuration latency trend, and fail
## when the newest run is >15% slower than the best prior run of the
## same (model, backend, logN, chain).
trend:
	$(GO) run ./cmd/hetrend -dir . -out trend-report.md

## bench: executor vs interpreter latency on CNN1 single-image.
bench:
	$(GO) test -run xxx -bench 'InferExecutorCNN1|InferLegacyCNN1' -benchtime 5x -timeout 30m ./internal/henn/

## bench-kernels: ring kernel micro-benchmarks — NTT, pointwise multiply,
## rescale division and cached-scalar multiply per limb count, serial vs
## pool-parallel, with allocation counts. The parallel/serial ratio at a
## given limb count is the limb-level speedup; it scales with GOMAXPROCS.
bench-kernels:
	$(GO) test -run xxx -bench 'BenchmarkKernel' -benchtime 20x -benchmem -timeout 30m ./internal/ring/

## telemetry-overhead: per-op executor cost with telemetry off / metrics
## on / metrics+tracing on. The disabled case must stay within noise of
## the pre-telemetry executor (one nil check per op).
telemetry-overhead:
	$(GO) test -run xxx -bench BenchmarkRunEncrypted -benchtime 2s ./internal/henn/exec/

## fuzz-smoke: short native-fuzzing passes over the wire-format readers
## (ciphertext, key-bundle and shard-manifest frames); they must reject
## corrupt input with typed errors, never panic.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzReadCiphertext -fuzztime 10s ./internal/ckks/
	$(GO) test -run xxx -fuzz FuzzReadKeyBundle -fuzztime 10s ./internal/ckks/
	$(GO) test -run xxx -fuzz FuzzDecodeManifest -fuzztime 10s ./internal/henn/shard/

## e2e-encrypted: the client-held-key protocol end to end — heserve on
## CNN1, hectl keygen/register/classify, encrypted vs plaintext route
## agreement.
e2e-encrypted:
	bash scripts/e2e_encrypted.sh
