package hestd_test

import (
	"fmt"

	"cnnhe/internal/hestd"
)

// ExampleValidate checks the paper's Table II settings against the
// HomomorphicEncryption.org standard.
func ExampleValidate() {
	// N = 2^14, log q = 366 plus a 60-bit special prime.
	err := hestd.Validate(hestd.Security128, 14, 426)
	fmt.Println(err)
	fmt.Println(hestd.SecurityOf(14, 426))
	// Output:
	// <nil>
	// 128
}
