package ring

import (
	"math/big"
	"math/rand"

	"cnnhe/internal/zq"
)

// wordRing is the fast single-word limb backend for primes ≤ 61 bits.
type wordRing struct {
	n    int
	logN int
	mod  zq.Modulus

	// psiRev[m+i] is ψ^{bitrev(i, log m·?)} laid out for the iterative
	// Cooley-Tukey NTT (index m+i at stage with m blocks), ψ a primitive
	// 2N-th root of unity.
	psiRev       []uint64
	psiRevShoup  []uint64
	ipsiRev      []uint64 // inverse-root table for the Gentleman-Sande INTT
	ipsiRevShoup []uint64
	nInv         uint64
	nInvShoup    uint64
	mask         uint64 // rejection mask for uniform sampling
}

func newWordRing(n int, q uint64, rng *rand.Rand) *wordRing {
	mod := zq.NewModulus(q)
	twoN := uint64(2 * n)
	if (q-1)%twoN != 0 {
		panic("ring: modulus not NTT-friendly for this degree")
	}
	logN := log2(n)
	psi := mod.PrimitiveNthRoot(twoN, rng)
	ipsi := mod.Inv(psi)
	r := &wordRing{
		n:            n,
		logN:         logN,
		mod:          mod,
		psiRev:       make([]uint64, n),
		psiRevShoup:  make([]uint64, n),
		ipsiRev:      make([]uint64, n),
		ipsiRevShoup: make([]uint64, n),
		mask:         (uint64(1) << uint(mod.Bits)) - 1,
	}
	// Powers of ψ in bit-reversed order (Longa–Naehrig layout).
	pw, ipw := uint64(1), uint64(1)
	pows := make([]uint64, n)
	ipows := make([]uint64, n)
	for i := 0; i < n; i++ {
		pows[i], ipows[i] = pw, ipw
		pw = mod.Mul(pw, psi)
		ipw = mod.Mul(ipw, ipsi)
	}
	for i := 0; i < n; i++ {
		j := bitrev(i, logN)
		r.psiRev[j] = pows[i]
		r.psiRevShoup[j] = mod.ShoupPrecomp(pows[i])
		r.ipsiRev[j] = ipows[i]
		r.ipsiRevShoup[j] = mod.ShoupPrecomp(ipows[i])
	}
	r.nInv = mod.Inv(uint64(n))
	r.nInvShoup = mod.ShoupPrecomp(r.nInv)
	return r
}

func (r *wordRing) N() int              { return r.n }
func (r *wordRing) Width() int          { return 1 }
func (r *wordRing) Modulus() *big.Int   { return new(big.Int).SetUint64(r.mod.Q) }
func (r *wordRing) BitLen() int         { return r.mod.Bits }
func (r *wordRing) ModulusWord() uint64 { return r.mod.Q }

// NTT: iterative Cooley-Tukey with lazy Harvey butterflies. Input in natural
// order fully reduced; output bit-reversed, fully reduced.
func (r *wordRing) NTT(a []uint64) {
	q, twoQ := r.mod.Q, r.mod.TwoQ
	t := r.n
	for m := 1; m < r.n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w := r.psiRev[m+i]
			ws := r.psiRevShoup[m+i]
			j1 := 2 * i * t
			for j := j1; j < j1+t; j++ {
				u := a[j]
				if u >= twoQ {
					u -= twoQ
				}
				v := r.mod.ShoupMulLazy(a[j+t], w, ws)
				a[j] = u + v
				a[j+t] = u + twoQ - v
			}
		}
	}
	for j := range a {
		if a[j] >= twoQ {
			a[j] -= twoQ
		}
		if a[j] >= q {
			a[j] -= q
		}
	}
}

// INTT: Gentleman-Sande, bit-reversed input → natural order output, fully
// reduced, including the 1/N scaling.
func (r *wordRing) INTT(a []uint64) {
	twoQ := r.mod.TwoQ
	t := 1
	for m := r.n >> 1; m >= 1; m >>= 1 {
		j1 := 0
		for i := 0; i < m; i++ {
			w := r.ipsiRev[m+i]
			ws := r.ipsiRevShoup[m+i]
			for j := j1; j < j1+t; j++ {
				u := a[j]
				v := a[j+t]
				s := u + v
				if s >= twoQ {
					s -= twoQ
				}
				a[j] = s
				a[j+t] = r.mod.ShoupMulLazy(u+twoQ-v, w, ws)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for j := range a {
		a[j] = r.mod.ShoupMul(a[j], r.nInv, r.nInvShoup)
	}
}

func (r *wordRing) Add(a, b, out []uint64) {
	for i := range out {
		out[i] = r.mod.Add(a[i], b[i])
	}
}

func (r *wordRing) Sub(a, b, out []uint64) {
	for i := range out {
		out[i] = r.mod.Sub(a[i], b[i])
	}
}

func (r *wordRing) Neg(a, out []uint64) {
	for i := range out {
		out[i] = r.mod.Neg(a[i])
	}
}

func (r *wordRing) MulCoeffs(a, b, out []uint64) {
	for i := range out {
		out[i] = r.mod.Mul(a[i], b[i])
	}
}

func (r *wordRing) MulCoeffsThenAdd(a, b, out []uint64) {
	for i := range out {
		out[i] = r.mod.Add(out[i], r.mod.Mul(a[i], b[i]))
	}
}

func (r *wordRing) MulScalar(a []uint64, s *big.Int, out []uint64) {
	sv := new(big.Int).Mod(s, r.Modulus()).Uint64()
	ss := r.mod.ShoupPrecomp(sv)
	for i := range out {
		out[i] = r.mod.ShoupMul(a[i], sv, ss)
	}
}

func (r *wordRing) SubScalarThenMulScalar(a []uint64, c, s *big.Int, out []uint64) {
	cv := new(big.Int).Mod(c, r.Modulus()).Uint64()
	sv := new(big.Int).Mod(s, r.Modulus()).Uint64()
	ss := r.mod.ShoupPrecomp(sv)
	for i := range out {
		out[i] = r.mod.ShoupMul(r.mod.Sub(a[i], cv), sv, ss)
	}
}

func (r *wordRing) Automorphism(a []uint64, galEl uint64, out []uint64) {
	n := uint64(r.n)
	twoN := 2 * n
	mask := twoN - 1
	for i := uint64(0); i < n; i++ {
		j := (i * galEl) & mask
		if j < n {
			out[j] = a[i]
		} else {
			out[j-n] = r.mod.Neg(a[i])
		}
	}
}

func (r *wordRing) ReduceFrom(src SubRing, a, out []uint64) {
	switch s := src.(type) {
	case *wordRing:
		if s.mod.Q == r.mod.Q {
			copy(out, a)
			return
		}
		for i := range out {
			out[i] = r.mod.Reduce(a[i])
		}
	case *wideRing:
		for i := range out {
			out[i] = r.mod.Reduce128(a[2*i+1], a[2*i])
		}
	default:
		panic("ring: unknown source subring")
	}
}

func (r *wordRing) SetCoeffBig(a []uint64, j int, v *big.Int) {
	a[j] = v.Uint64()
}

func (r *wordRing) CoeffBig(a []uint64, j int, out *big.Int) {
	out.SetUint64(a[j])
}

func (r *wordRing) SetCoeffInt64(a []uint64, j int, v int64) {
	if v >= 0 {
		a[j] = r.mod.Reduce(uint64(v))
	} else {
		a[j] = r.mod.Neg(r.mod.Reduce(uint64(-v)))
	}
}

func (r *wordRing) SampleUniform(rng *rand.Rand, a []uint64) {
	for i := range a {
		for {
			v := rng.Uint64() & r.mask
			if v < r.mod.Q {
				a[i] = v
				break
			}
		}
	}
}
