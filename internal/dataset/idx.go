package dataset

import (
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// MNIST image dimensions.
const (
	MNISTRows = 28
	MNISTCols = 28
)

// LoadMNISTIDX reads the standard MNIST IDX files (optionally gzipped)
// from dir: train-images-idx3-ubyte[.gz], train-labels-idx1-ubyte[.gz],
// t10k-images-idx3-ubyte[.gz], t10k-labels-idx1-ubyte[.gz].
func LoadMNISTIDX(dir string) (train, test Dataset, err error) {
	train, err = loadIDXPair(dir, "train-images-idx3-ubyte", "train-labels-idx1-ubyte")
	if err != nil {
		return Dataset{}, Dataset{}, err
	}
	test, err = loadIDXPair(dir, "t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte")
	if err != nil {
		return Dataset{}, Dataset{}, err
	}
	return train, test, nil
}

func loadIDXPair(dir, imgName, lblName string) (Dataset, error) {
	imgs, err := readIDXImages(findFile(dir, imgName))
	if err != nil {
		return Dataset{}, err
	}
	lbls, err := readIDXLabels(findFile(dir, lblName))
	if err != nil {
		return Dataset{}, err
	}
	if len(imgs) != len(lbls) {
		return Dataset{}, fmt.Errorf("%w: mnist: %d images but %d labels", ErrCorrupt, len(imgs), len(lbls))
	}
	return Dataset{C: 1, H: MNISTRows, W: MNISTCols, Pixels: imgs, Labels: lbls}, nil
}

func findFile(dir, base string) string {
	for _, name := range []string{base, base + ".gz"} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	return filepath.Join(dir, base)
}

func openMaybeGzip(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if filepath.Ext(path) == ".gz" {
		gz, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		return struct {
			io.Reader
			io.Closer
		}{gz, f}, nil
	}
	return f, nil
}

func readIDXImages(path string) ([][]byte, error) {
	r, err := openMaybeGzip(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: mnist: %s: %v", ErrCorrupt, path, err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != 0x00000803 {
		return nil, fmt.Errorf("%w: mnist: %s: bad magic", ErrCorrupt, path)
	}
	n := int(binary.BigEndian.Uint32(hdr[4:8]))
	rows := int(binary.BigEndian.Uint32(hdr[8:12]))
	cols := int(binary.BigEndian.Uint32(hdr[12:16]))
	if rows != MNISTRows || cols != MNISTCols {
		return nil, fmt.Errorf("%w: mnist: %s: unexpected size %dx%d", ErrCorrupt, path, rows, cols)
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, rows*cols)
		if _, err := io.ReadFull(r, out[i]); err != nil {
			return nil, fmt.Errorf("%w: mnist: %s truncated: %v", ErrCorrupt, path, err)
		}
	}
	return out, nil
}

func readIDXLabels(path string) ([]int, error) {
	r, err := openMaybeGzip(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: mnist: %s: %v", ErrCorrupt, path, err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != 0x00000801 {
		return nil, fmt.Errorf("%w: mnist: %s: bad magic", ErrCorrupt, path)
	}
	n := int(binary.BigEndian.Uint32(hdr[4:8]))
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("%w: mnist: %s truncated: %v", ErrCorrupt, path, err)
	}
	out := make([]int, n)
	for i, b := range buf {
		if b > 9 {
			return nil, fmt.Errorf("%w: mnist: %s: label %d out of range", ErrCorrupt, path, b)
		}
		out[i] = int(b)
	}
	return out, nil
}

// LoadMNIST returns the real MNIST data from the directory named by the
// MNIST_DIR environment variable when set and readable, falling back to
// the deterministic synthetic dataset otherwise. The returned string
// describes the source.
func LoadMNIST(trainN, testN int, seed int64) (train, test Dataset, source string) {
	if dir := os.Getenv("MNIST_DIR"); dir != "" {
		tr, te, err := LoadMNISTIDX(dir)
		if err == nil {
			return tr.Subset(trainN), te.Subset(testN), "mnist-idx:" + dir
		}
	}
	tr := SyntheticMNIST(trainN, seed)
	te := SyntheticMNIST(testN, seed+1)
	return tr, te, "synthetic"
}
