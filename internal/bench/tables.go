package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/henn"
	"cnnhe/internal/hestd"
	"cnnhe/internal/nn"
)

// paperShapeBits returns the paper-shaped chain of length k:
// [40, 26, …, 26, 40] (k ≥ 2; k = 1 yields a single 40-bit prime and is
// only meaningful for parameter plumbing).
func paperShapeBits(k int) []int {
	switch {
	case k <= 1:
		return []int{40}
	case k == 2:
		return []int{40, 40}
	default:
		bits := []int{40}
		for i := 0; i < k-2; i++ {
			bits = append(bits, 26)
		}
		return append(bits, 40)
	}
}

// rnsParams builds CKKS-RNS parameters with a paper-shaped chain of length
// k at the configured ring degree.
func rnsParams(cfg Config, k int) (ckks.Parameters, error) {
	return ckks.NewParameters(cfg.LogN, paperShapeBits(k), 60, 1, math.Exp2(26))
}

// compilePlan compiles a model for the configured ring degree and
// applies the configured optimizer setting.
func compilePlan(cfg Config, m *nn.Model) (*henn.Plan, error) {
	p, err := henn.Compile(m, 1<<(cfg.LogN-1))
	if err != nil {
		return nil, err
	}
	p.Opt = cfg.Opt
	return p, nil
}

// HEResult is one measured table row.
type HEResult struct {
	Model    string
	Backend  string
	Chain    int // moduli chain length
	Lat      henn.LatencyStats
	Acc      float64 // encrypted test accuracy (NaN when not measured)
	TrainAcc float64
}

// TableIII compares CNN1-HE (multiprecision baseline) with CNN1-HE-RNS on
// identical plans and moduli. Returns the two rows.
func TableIII(cfg Config, models *Models, w io.Writer) ([]HEResult, error) {
	return heVsRNS(cfg, models, w, "CNN1", models.CNN1, models.TrainAcc1)
}

// TableV is Table III for CNN2.
func TableV(cfg Config, models *Models, w io.Writer) ([]HEResult, error) {
	return heVsRNS(cfg, models, w, "CNN2", models.CNN2, models.TrainAcc2)
}

func heVsRNS(cfg Config, models *Models, w io.Writer, name string, model *nn.Model, trainAcc float64) ([]HEResult, error) {
	plan, err := compilePlan(cfg, model)
	if err != nil {
		return nil, err
	}
	k := 13 // the paper's Table II chain length
	if plan.Depth+1 > k {
		k = plan.Depth + 1
	}
	params, err := rnsParams(cfg, k)
	if err != nil {
		return nil, err
	}
	if err := plan.CheckDepth(params.MaxLevel()); err != nil {
		return nil, err
	}
	n := cfg.AccImages
	if n < cfg.Runs {
		n = cfg.Runs
	}
	images, labels := models.TestSlice(n)

	fmt.Fprintf(w, "\n## Table %s: %s-HE vs %s-HE-RNS (logN=%d, chain length %d, %d encrypted images)\n\n",
		map[string]string{"CNN1": "III", "CNN2": "V"}[name], name, name, cfg.LogN, k, n)
	fmt.Fprintf(w, "| Model | Training Acc (%%) | Lat min (s) | Lat max (s) | Lat avg (s) | Acc (%%) |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|\n")

	var out []HEResult

	// CNN-HE baseline: original CKKS, multiprecision arithmetic.
	bigParams, err := ckksbig.FromRNSParameters(params)
	if err != nil {
		return nil, err
	}
	be, err := henn.NewBigEngine(bigParams, plan.Rotations(), cfg.Seed+11)
	if err != nil {
		return nil, err
	}
	// The multiprecision backend is far slower; measure over cfg.Runs only.
	// One untimed warm-up populates the pre-encoded weight cache, as a
	// deployed service would at model-load time.
	plan.Infer(be, images[0])
	bImages, bLabels := images[:cfg.Runs], labels[:cfg.Runs]
	accB, statsB, err := plan.EvaluateEncrypted(be, bImages, bLabels, cfg.Runs)
	if err != nil {
		return nil, err
	}
	rowB := HEResult{Model: name + "-HE", Backend: "ckks-big", Chain: k, Lat: statsB, Acc: accB, TrainAcc: trainAcc}
	out = append(out, rowB)
	writeRow(w, rowB)

	// CNN-HE-RNS.
	re, err := henn.NewRNSEngine(params, plan.Rotations(), cfg.Seed+12)
	if err != nil {
		return nil, err
	}
	plan.Infer(re, images[0]) // warm the weight cache untimed
	accR, statsR, err := plan.EvaluateEncrypted(re, images, labels, n)
	if err != nil {
		return nil, err
	}
	rowR := HEResult{Model: name + "-HE-RNS", Backend: "ckks-rns", Chain: k, Lat: statsR, Acc: accR, TrainAcc: trainAcc}
	out = append(out, rowR)
	writeRow(w, rowR)

	speedup := (statsB.Avg.Seconds() - statsR.Avg.Seconds()) / statsB.Avg.Seconds() * 100
	fmt.Fprintf(w, "\nRNS speed-up on average latency: %.2f%%\n", speedup)
	return out, nil
}

func writeRow(w io.Writer, r HEResult) {
	fmt.Fprintf(w, "| %s | %.3f | %.2f | %.2f | %.2f | %.2f |\n",
		r.Model, 100*r.TrainAcc, r.Lat.Min.Seconds(), r.Lat.Max.Seconds(), r.Lat.Avg.Seconds(), 100*r.Acc)
}

// TableIV sweeps the moduli chain length for CNN1-HE-RNS. Chain lengths
// below the plan's depth+1 cannot evaluate the network under CKKS
// rescaling and are reported as infeasible (see EXPERIMENTS.md for the
// discussion of the paper's 3..10 range).
func TableIV(cfg Config, models *Models, w io.Writer) ([]HEResult, error) {
	return moduliSweep(cfg, models, w, "CNN1", models.CNN1, "IV", 3, 13)
}

// TableVI is the CNN2 moduli sweep; the k=1 row is the multiprecision
// baseline (matching the paper, whose k=1 latency equals CNN2-HE).
func TableVI(cfg Config, models *Models, w io.Writer) ([]HEResult, error) {
	return moduliSweep(cfg, models, w, "CNN2", models.CNN2, "VI", 1, 13)
}

func moduliSweep(cfg Config, models *Models, w io.Writer, name string, model *nn.Model, tableNo string, kMin, kMax int) ([]HEResult, error) {
	plan, err := compilePlan(cfg, model)
	if err != nil {
		return nil, err
	}
	images, labels := models.TestSlice(cfg.Runs)
	fmt.Fprintf(w, "\n## Table %s: %s-HE-RNS latency vs moduli chain length (logN=%d, %d runs each)\n\n",
		tableNo, name, cfg.LogN, cfg.Runs)
	fmt.Fprintf(w, "| Moduli chain length | Lat avg (s) | Note |\n|---|---|---|\n")

	var out []HEResult
	for k := kMin; k <= kMax; k++ {
		if k == 1 && tableNo == "VI" {
			// Multiprecision single-modulus baseline row.
			params, err := rnsParams(cfg, plan.Depth+1)
			if err != nil {
				return nil, err
			}
			bigParams, err := ckksbig.FromRNSParameters(params)
			if err != nil {
				return nil, err
			}
			be, err := henn.NewBigEngine(bigParams, plan.Rotations(), cfg.Seed+20)
			if err != nil {
				return nil, err
			}
			plan.Infer(be, images[0]) // warm the weight cache untimed
			_, stats, err := plan.EvaluateEncrypted(be, images, labels, cfg.Runs)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(w, "| 1 | %.2f | multiprecision baseline (%s-HE) |\n", stats.Avg.Seconds(), name)
			out = append(out, HEResult{Model: name, Backend: "ckks-big", Chain: 1, Lat: stats, Acc: math.NaN()})
			continue
		}
		if k > 1 && k < plan.Depth+1 {
			fmt.Fprintf(w, "| %d | — | infeasible: depth %d needs ≥ %d moduli |\n", k, plan.Depth, plan.Depth+1)
			continue
		}
		if k == 1 {
			continue
		}
		params, err := rnsParams(cfg, k)
		if err != nil {
			return nil, err
		}
		re, err := henn.NewRNSEngine(params, plan.Rotations(), cfg.Seed+21+int64(k))
		if err != nil {
			return nil, err
		}
		plan.Infer(re, images[0]) // warm the weight cache untimed
		_, stats, err := plan.EvaluateEncrypted(re, images, labels, cfg.Runs)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(w, "| %d | %.2f | |\n", k, stats.Avg.Seconds())
		out = append(out, HEResult{Model: name, Backend: "ckks-rns", Chain: k, Lat: stats, Acc: math.NaN()})
	}
	return out, nil
}

// LimbWidthAblation isolates the mechanism behind the paper's
// falling-then-rising moduli-length curves at the primitive-operation
// level: a fixed ~366-bit total modulus is split into k limbs; for k ≤ 5
// the limbs exceed the 61-bit word bound and fall back to two-word
// arithmetic. It reports per-operation latency (ct-ct multiply with
// relinearization) per k.
func LimbWidthAblation(cfg Config, w io.Writer) error {
	logN := cfg.LogN - 2
	if logN < 9 {
		logN = 9
	}
	fmt.Fprintf(w, "\n## Limb-width ablation: fixed 366-bit modulus split into k limbs (logN=%d)\n\n", logN)
	fmt.Fprintf(w, "| k | limb bits | backend | mult+relin (ms) |\n|---|---|---|---|\n")
	for k := 3; k <= 10; k++ {
		params, err := ckks.SweepParameters(logN, 366, k, math.Exp2(float64(366/k)))
		if err != nil {
			return err
		}
		ctx, err := ckks.NewContext(params)
		if err != nil {
			return err
		}
		kg := ckks.NewKeyGenerator(ctx, cfg.Seed)
		sk := kg.GenSecretKey()
		pk := kg.GenPublicKey(sk)
		rlk := kg.GenRelinearizationKey(sk)
		enc := ckks.NewEncoder(ctx)
		ept := ckks.NewEncryptor(ctx, pk, cfg.Seed+1)
		ev := ckks.NewEvaluator(ctx, rlk, nil)
		vals := make([]float64, params.Slots())
		for i := range vals {
			vals[i] = 1.0 + float64(i%7)/7
		}
		ct := ept.Encrypt(enc.Encode(vals, params.MaxLevel(), params.Scale))
		// Warm-up + timed runs.
		ev.Mul(ct, ct)
		const reps = 5
		start := time.Now()
		for i := 0; i < reps; i++ {
			ev.Mul(ct, ct)
		}
		avg := time.Since(start).Seconds() / reps * 1000
		limbBits := params.Chain.BitSizes[0]
		backend := "word"
		if limbBits > 61 {
			backend = "wide(2-word)"
		}
		fmt.Fprintf(w, "| %d | %d | %s | %.1f |\n", k, limbBits, backend, avg)
	}
	fmt.Fprintln(w, "\nShape: latency falls while limbs shrink toward one word, then rises as the limb count grows — the paper's Table IV/VI curve at the primitive level.")
	return nil
}

// Fig5 measures the RNS input-decomposition pipeline (Fig. 5) for several
// part counts on CNN1, checking the accuracy invariant.
func Fig5(cfg Config, models *Models, w io.Writer) error {
	plan, err := compilePlan(cfg, models.CNN1)
	if err != nil {
		return err
	}
	k := plan.Depth + 1
	if k < 13 {
		k = 13
	}
	params, err := rnsParams(cfg, k)
	if err != nil {
		return err
	}
	re, err := henn.NewRNSEngine(params, plan.Rotations(), cfg.Seed+30)
	if err != nil {
		return err
	}
	images, labels := models.TestSlice(cfg.Runs)
	fmt.Fprintf(w, "\n## Figure 5: CNN1-RNS input-decomposition pipeline (digit mode, logN=%d)\n\n", cfg.LogN)
	fmt.Fprintf(w, "| parts k | Lat avg (s) | Acc over %d (%%) |\n|---|---|---|\n", cfg.Runs)
	for _, parts := range []int{1, 2, 3, 4} {
		rp, err := henn.NewRNSPlan(plan, parts, true)
		if err != nil {
			return err
		}
		rp.Opt = cfg.Opt
		acc, stats, err := rp.EvaluateEncrypted(re, images, labels, cfg.Runs)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "| %d | %.2f | %.1f |\n", parts, stats.Avg.Seconds(), 100*acc)
	}
	return nil
}

// TableII prints and validates the paper's security settings.
func TableII(w io.Writer) error {
	p, err := ckks.PaperParameters()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n## Table II: CKKS-RNS security settings\n\n")
	fmt.Fprintf(w, "| Parameter | Value |\n|---|---|\n")
	fmt.Fprintf(w, "| λ | 128 |\n")
	fmt.Fprintf(w, "| N | 2^%d |\n", p.LogN)
	fmt.Fprintf(w, "| Δ | 2^26 |\n")
	// The paper's log q counts every prime in SEAL's coeff_modulus,
	// including the trailing key-switching prime.
	fmt.Fprintf(w, "| log q | %d |\n", p.LogQP())
	fmt.Fprintf(w, "| L | %d |\n", len(p.Chain.Moduli))
	fmt.Fprintf(w, "| q | %v |\n", p.Chain.BitSizes)
	fmt.Fprintf(w, "| key-switching prime | last listed (%d-bit) |\n", p.Chain.BitSizes[len(p.Chain.BitSizes)-1])
	if err := hestd.Validate(hestd.Security128, p.LogN, p.LogQP()); err != nil {
		return fmt.Errorf("paper parameters fail the HE standard: %w", err)
	}
	fmt.Fprintf(w, "\nHE-standard check: logQP=%d ≤ %d (λ=128, N=2^%d) ✓\n", p.LogQP(), 438, p.LogN)
	return nil
}

// literatureRow is a static Table I entry from the paper.
type literatureRow struct {
	Year    int
	Model   string
	Dataset string
	Lat     string
	Acc     string
	Ref     string
}

var tableILiterature = []literatureRow{
	{2016, "CryptoNets", "MNIST", "250", "98.95", "[20]"},
	{2017, "Chabanne-NN", "MNIST", "NR", "97.95/99.28", "[23]"},
	{2018, "F-CryptoNets", "MNIST", "39.1", "98.70", "[24]"},
	{2018, "F-CryptoNets", "CIFAR-10", "22372", "76.72", "[24]"},
	{2018, "FHE-DiNN100", "MNIST", "1.65", "96.35", "[26]"},
	{2018, "TAPAS", "MNIST", "133200", "98.60", "[27]"},
	{2019, "SEALion", "MNIST", "60", "98.91", "[28]"},
	{2019, "CryptoDL", "MNIST", "148.97/320", "98.52/99.25", "[29]"},
	{2019, "Lo-La", "MNIST", "0.29/2.20", "96.92/98.95", "[31]"},
	{2019, "Lo-La", "CIFAR-10", "730", "74.10", "[31]"},
	{2019, "nGraph-HE", "MNIST", "16.72", "98.95", "[32]"},
	{2019, "nGraph-HE", "CIFAR-10", "1651", "62.20", "[32]"},
	{2019, "E2DM", "MNIST", "1.69", "98.10", "[33]"},
	{2021, "HCNN", "MNIST", "5.16", "99.00", "[35]"},
	{2021, "HCNN", "CIFAR-10", "304.43", "77.55", "[35]"},
	{2022, "LeNet-HE", "MNIST", "138", "98.18", "[34]"},
	{2022, "RNS-CKKS-NN", "CIFAR-10", "10602", "92.43", "[36]"},
	{2024, "CNN-HE-SLAF", "MNIST", "3.13/39.84", "98.22/99.21", "[11]"},
}

// TableI prints the state-of-the-art comparison with our measured rows
// appended.
func TableI(w io.Writer, measured []HEResult, dataSource string) {
	fmt.Fprintf(w, "\n## Table I: state-of-the-art privacy-preserving NN-HE (literature values) + this reproduction\n\n")
	fmt.Fprintf(w, "| Year | Model | Dataset | Lat (s) | Acc (%%) | Ref |\n|---|---|---|---|---|---|\n")
	for _, r := range tableILiterature {
		fmt.Fprintf(w, "| %d | %s | %s | %s | %s | %s |\n", r.Year, r.Model, r.Dataset, r.Lat, r.Acc, r.Ref)
	}
	for _, r := range measured {
		acc := "—"
		if !math.IsNaN(r.Acc) {
			acc = fmt.Sprintf("%.2f", 100*r.Acc)
		}
		fmt.Fprintf(w, "| 2026 | %s (this repo) | %s | %.2f | %s | — |\n",
			r.Model, dataSource, r.Lat.Avg.Seconds(), acc)
	}
}
