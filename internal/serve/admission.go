package serve

import (
	"math"
	"sync"
	"time"
)

// admission is the adaptive overload controller: an AIMD bound on
// outstanding requests driven by observed batch latency, plus a live
// latency model used to shed requests whose deadlines cannot be met and
// to compute honest Retry-After hints.
//
// The fixed queue bound it replaces had a failure mode the paper-scale
// latencies make acute: a queue sized for fast batches (milliseconds at
// logN 10) holds minutes of work when one evaluation takes seconds at
// logN 14, so every queued request times out after burning an
// evaluation slot. AIMD sizes admission to what the engine is actually
// delivering — each batch faster than the target grows the limit by
// one, each slow or failed batch halves it — and the same latency
// estimate prices the Retry-After header from live queue depth.
type admission struct {
	mu sync.Mutex
	// limit is the current admitted-outstanding bound, moved by AIMD
	// within [minLimit, maxLimit]. maxLimit is the hard queue capacity;
	// minLimit keeps one full batch admissible so throughput cannot
	// collapse to zero.
	limit    float64
	minLimit float64
	maxLimit float64
	// target is the batch-latency SLO driving AIMD.
	target time.Duration
	// outstanding counts requests accepted but not yet answered
	// (queued or inside the running batch).
	outstanding int
	// evalEWMA is the smoothed batch evaluation latency; zero until the
	// first batch completes (no shedding or estimation before evidence).
	evalEWMA time.Duration
	batchCap int
}

// ewmaAlpha weights the newest batch observation; 0.3 tracks load
// shifts within a few batches without jittering on one outlier.
const ewmaAlpha = 0.3

func newAdmission(queueSize, batchCap int, target time.Duration) *admission {
	minL := batchCap
	if minL > queueSize {
		minL = queueSize
	}
	if minL < 1 {
		minL = 1
	}
	return &admission{
		limit:    float64(queueSize),
		minLimit: float64(minL),
		maxLimit: float64(queueSize),
		target:   target,
		batchCap: batchCap,
	}
}

// estimateLocked predicts the end-to-end completion time of a request
// admitted now: the batches already ahead of it, each at the smoothed
// evaluation latency, plus its own batch. Zero until a batch has been
// observed.
func (a *admission) estimateLocked() time.Duration {
	if a.evalEWMA <= 0 {
		return 0
	}
	batchesAhead := a.outstanding / a.batchCap
	return time.Duration(batchesAhead+1) * a.evalEWMA
}

// admit decides one request at arrival time. It returns ErrQueueFull
// when the AIMD limit is reached, ErrDeadlineUnmeetable when the live
// latency model says the request cannot finish before its deadline
// (shed-before-enqueue: rejecting now is cheaper than evaluating a
// result nobody will read), and nil after counting the request as
// outstanding.
func (a *admission) admit(now, deadline time.Time, hasDeadline bool) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	if float64(a.outstanding) >= a.limit {
		return ErrQueueFull
	}
	if hasDeadline {
		if est := a.estimateLocked(); est > 0 && now.Add(est).After(deadline) {
			return ErrDeadlineUnmeetable
		}
	}
	a.outstanding++
	return nil
}

// release returns one admitted request's slot; called exactly once per
// admitted request, when its response (success or classified error) is
// delivered.
func (a *admission) release() {
	a.mu.Lock()
	if a.outstanding > 0 {
		a.outstanding--
	}
	a.mu.Unlock()
}

// observe folds one finished batch into the controller: the EWMA
// absorbs its latency, then AIMD moves the limit — additive increase
// while batches beat the target, multiplicative decrease when one runs
// slow or fails.
func (a *admission) observe(d time.Duration, ok bool) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if ok {
		if a.evalEWMA == 0 {
			a.evalEWMA = d
		} else {
			a.evalEWMA = time.Duration(ewmaAlpha*float64(d) + (1-ewmaAlpha)*float64(a.evalEWMA))
		}
	}
	if !ok || (a.target > 0 && d > a.target) {
		a.limit = math.Max(a.minLimit, a.limit/2)
		return
	}
	a.limit = math.Min(a.maxLimit, a.limit+1)
}

// retryAfter prices the backoff hint from live state: the time for the
// current backlog to drain at the observed batch latency. Before any
// batch has completed there is no evidence, so the configured fallback
// stands in.
func (a *admission) retryAfter(fallback time.Duration) time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.evalEWMA <= 0 {
		return fallback
	}
	batches := a.outstanding/a.batchCap + 1
	return time.Duration(batches) * a.evalEWMA
}

// limitNow reports the current AIMD limit (telemetry, tests).
func (a *admission) limitNow() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.limit
}

// outstandingNow reports the live admitted-but-unanswered count.
func (a *admission) outstandingNow() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.outstanding
}

// ewmaNow reports the smoothed batch latency (telemetry, tests).
func (a *admission) ewmaNow() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.evalEWMA
}
