package ring

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The limb worker pool.
//
// Every limb-wise loop in the ring (NTT, pointwise arithmetic, rescale
// division, key-switch digit raise) is embarrassingly parallel: limbs are
// independent residue channels, and within a limb the element-wise
// operations are independent per coefficient. The original implementation
// spawned one goroutine per limb per operation — tens of thousands of
// short-lived goroutines per inference, each paying scheduler wake-up and
// stack setup on a loop that runs for microseconds.
//
// This file replaces that with a single persistent bounded pool shared by
// every Ring in the process (and by the bigring oracle): GOMAXPROCS-sized,
// started lazily on first parallel call, never torn down. Work is submitted
// as an indexed job; idle workers and the submitting goroutine race through
// the index space via an atomic cursor, so a call never blocks waiting for
// a worker — the caller always makes progress itself (work-conserving, no
// deadlock under nested or concurrent submission from the executor's own
// worker goroutines).
//
// Determinism: each index is claimed by exactly one goroutine and tasks
// write disjoint output ranges, so results are bit-identical to the serial
// path regardless of scheduling order.

// poolWorkers returns the pool size: GOMAXPROCS, but at least 2, so the
// parallel path stays exercisable (and race-detectable) on single-core
// machines when Parallel is forced on. With Parallel off the pool is never
// consulted.
func poolWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	return w
}

// limbJob is one parallel-for: f(i) for i in [0, n).
type limbJob struct {
	f       func(i int)
	n       int64
	cursor  atomic.Int64 // next index to claim
	pending atomic.Int64 // indices not yet completed
	done    chan struct{}
}

// work drains indices until the cursor passes n. Returns after the last
// index this goroutine claimed has completed.
func (j *limbJob) work() {
	for {
		i := j.cursor.Add(1) - 1
		if i >= j.n {
			return
		}
		j.f(int(i))
		if j.pending.Add(-1) == 0 {
			close(j.done)
		}
	}
}

type limbPool struct {
	jobs    chan *limbJob
	workers int
}

var (
	poolOnce   sync.Once
	sharedPool *limbPool
)

// pool returns the process-wide worker pool, starting it on first use.
func pool() *limbPool {
	poolOnce.Do(func() {
		p := &limbPool{workers: poolWorkers()}
		// A deep buffer so submitters never block handing out wake-ups:
		// a worker that drains the channel and finds the job finished
		// simply moves on.
		p.jobs = make(chan *limbJob, 4*p.workers)
		for w := 0; w < p.workers; w++ {
			go func() {
				for j := range p.jobs {
					j.work()
				}
			}()
		}
		sharedPool = p
	})
	return sharedPool
}

// Run executes f(0..n-1) across the pool. The calling goroutine
// participates, so Run makes progress even when every worker is busy.
func (p *limbPool) Run(n int, f func(i int)) {
	if n <= 0 {
		return
	}
	if n == 1 {
		f(0)
		return
	}
	j := &limbJob{f: f, n: int64(n), done: make(chan struct{})}
	j.pending.Store(int64(n))
	// Wake at most n-1 helpers; the caller covers the rest. Non-blocking:
	// a full queue means every worker is already busy, and the caller
	// will chew through the indices itself.
	wake := p.workers - 1
	if wake > n-1 {
		wake = n - 1
	}
	for k := 0; k < wake; k++ {
		select {
		case p.jobs <- j:
		default:
			k = wake // queue full; stop waking
		}
	}
	j.work()
	<-j.done
}

// defaultParallel holds the process-wide default for Ring.Parallel applied
// at construction: 1 = on, 0 = off. Initialized from GOMAXPROCS.
var defaultParallel atomic.Int32

func init() {
	if runtime.GOMAXPROCS(0) > 1 {
		defaultParallel.Store(1)
	}
}

// SetParallelDefault sets the process-wide default for limb parallelism.
// Rings constructed afterwards inherit it; existing rings are unaffected
// (toggle their Parallel field, e.g. via ckks.Context.SetParallel). This is
// the hook the CLI daemons' -ring-parallel flag drives.
func SetParallelDefault(on bool) {
	v := int32(0)
	if on {
		v = 1
	}
	defaultParallel.Store(v)
}

// ParallelDefault reports the current process-wide default for limb
// parallelism (on when GOMAXPROCS > 1 unless overridden).
func ParallelDefault() bool { return defaultParallel.Load() == 1 }

// minSlabWords is the smallest per-task slice (in 64-bit words) worth
// shipping to another worker: below this the atomic cursor and cache
// traffic cost more than the loop. 2048 words = one 16 KiB half-L1 slab.
const minSlabWords = 2048

// ParallelRange splits [0, n) into contiguous chunks of at least
// minSlabWords elements and runs f(lo, hi) for each across the pool
// (serially when parallel is false or the range is too small to split).
func ParallelRange(parallel bool, n int, f func(lo, hi int)) {
	ParallelRangeGrain(parallel, n, minSlabWords, f)
}

// ParallelRangeGrain is ParallelRange with an explicit minimum chunk size,
// for element types heavier than a machine word. It is exported for the
// bigring oracle, whose big.Int coefficient loops chunk the same way but
// amortize the dispatch over far fewer elements.
func ParallelRangeGrain(parallel bool, n, grain int, f func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if !parallel || n < 2*grain {
		f(0, n)
		return
	}
	p := pool()
	chunks := (n + grain - 1) / grain
	if chunks > p.workers {
		chunks = p.workers
	}
	size := (n + chunks - 1) / chunks
	p.Run(chunks, func(c int) {
		lo := c * size
		hi := lo + size
		if hi > n {
			hi = n
		}
		f(lo, hi)
	})
}
