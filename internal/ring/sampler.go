package ring

import (
	"math"
	"math/rand"
)

// DefaultSigma is the standard deviation of the error distribution χ_err
// mandated by the HE standard.
const DefaultSigma = 3.2

// GaussianBound truncates Gaussian samples at ±GaussianBound·σ.
const GaussianBound = 6.0

// SampleUniform fills the given limbs of p with independent uniform
// residues (NTT-domain or coefficient-domain agnostic).
func (r *Ring) SampleUniform(rng *rand.Rand, limbs []int, p *Poly) {
	for _, i := range limbs {
		r.SubRings[i].SampleUniform(rng, p.Coeffs[i])
	}
}

// SampleTernaryHW returns the centered coefficient vector of a uniformly
// random polynomial with exactly h nonzero coefficients in {−1, +1}: the
// χ_key = HW(h) distribution of the CKKS key generator.
func SampleTernaryHW(rng *rand.Rand, n, h int) []int64 {
	if h > n {
		panic("ring: Hamming weight exceeds degree")
	}
	vec := make([]int64, n)
	// Floyd-style sampling of h distinct positions.
	chosen := make(map[int]bool, h)
	for len(chosen) < h {
		j := rng.Intn(n)
		if !chosen[j] {
			chosen[j] = true
			if rng.Intn(2) == 0 {
				vec[j] = 1
			} else {
				vec[j] = -1
			}
		}
	}
	return vec
}

// SampleTernarySparse returns a uniform ternary vector where each
// coefficient is −1, 0 or +1 with P(±1) = density/2 each (χ_enc).
func SampleTernarySparse(rng *rand.Rand, n int, density float64) []int64 {
	vec := make([]int64, n)
	for j := range vec {
		u := rng.Float64()
		switch {
		case u < density/2:
			vec[j] = 1
		case u < density:
			vec[j] = -1
		}
	}
	return vec
}

// SampleGaussian returns centered integer coefficients drawn from a rounded
// Gaussian with standard deviation sigma, truncated at ±GaussianBound·σ
// (χ_err).
func SampleGaussian(rng *rand.Rand, n int, sigma float64) []int64 {
	bound := GaussianBound * sigma
	vec := make([]int64, n)
	for j := range vec {
		for {
			v := rng.NormFloat64() * sigma
			if math.Abs(v) <= bound {
				vec[j] = int64(math.Round(v))
				break
			}
		}
	}
	return vec
}

// SamplePolyTernaryHW samples χ_key directly into the given limbs of p
// (coefficient domain).
func (r *Ring) SamplePolyTernaryHW(rng *rand.Rand, limbs []int, h int, p *Poly) []int64 {
	vec := SampleTernaryHW(rng, r.NVal, h)
	r.SetCoeffsInt64(limbs, vec, p)
	return vec
}

// SamplePolyGaussian samples χ_err directly into the given limbs of p
// (coefficient domain).
func (r *Ring) SamplePolyGaussian(rng *rand.Rand, limbs []int, sigma float64, p *Poly) {
	vec := SampleGaussian(rng, r.NVal, sigma)
	r.SetCoeffsInt64(limbs, vec, p)
}
