package client

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// RetryPolicy governs how the client survives transient failures:
// transport errors and overload statuses (429, 503) are retried with
// jittered exponential backoff, honoring the server's Retry-After hint
// when it is larger than the computed backoff. The policy mirrors
// heinfer's dataset-run retrier so one backoff discipline covers both
// the CLI and SDK paths.
//
// Every other status is terminal: 4xx means the request itself is wrong,
// and a 500 from this server means an evaluation bug that a retry would
// only repeat (the serving loop already classifies and recovers guard
// trips internally).
type RetryPolicy struct {
	// MaxAttempts bounds the total tries per call, including the first
	// (the per-call retry budget). 0 means DefaultRetryAttempts; 1
	// disables retries.
	MaxAttempts int
	// BaseBackoff is the first retry's nominal delay (default 100ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 5s).
	MaxBackoff time.Duration

	// Rand, when set, seeds the jitter (tests); nil uses a private
	// source seeded from the clock.
	Rand *rand.Rand
	// Sleep, when set, replaces the context-aware wait (tests record
	// the requested delays instead of actually sleeping).
	Sleep func(context.Context, time.Duration) error

	mu sync.Mutex // guards Rand (http.Client may run calls concurrently)
}

// Retry policy defaults.
const (
	DefaultRetryAttempts = 4
	defaultBaseBackoff   = 100 * time.Millisecond
	defaultMaxBackoff    = 5 * time.Second
)

// DefaultRetryPolicy is the policy New installs.
func DefaultRetryPolicy() *RetryPolicy {
	return &RetryPolicy{
		MaxAttempts: DefaultRetryAttempts,
		BaseBackoff: defaultBaseBackoff,
		MaxBackoff:  defaultMaxBackoff,
	}
}

// retryableStatus reports whether an HTTP status signals a transient
// condition worth retrying.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// backoff computes the attempt-th delay (1-based): exponential with
// full jitter in [d/2, d], floored by the server's Retry-After hint.
func (p *RetryPolicy) backoff(attempt int, retryAfter time.Duration) time.Duration {
	base := p.BaseBackoff
	if base <= 0 {
		base = defaultBaseBackoff
	}
	maxB := p.MaxBackoff
	if maxB <= 0 {
		maxB = defaultMaxBackoff
	}
	d := base << (attempt - 1)
	if d > maxB || d <= 0 {
		d = maxB
	}
	p.mu.Lock()
	if p.Rand == nil {
		p.Rand = rand.New(rand.NewSource(time.Now().UnixNano()))
	}
	jittered := d/2 + time.Duration(p.Rand.Int63n(int64(d/2)+1))
	p.mu.Unlock()
	if retryAfter > jittered {
		return retryAfter
	}
	return jittered
}

// wait sleeps for d or until ctx is done.
func (p *RetryPolicy) wait(ctx context.Context, d time.Duration) error {
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-timer.C:
		return nil
	}
}

// parseRetryAfter reads the integral-seconds form of Retry-After (the
// only form this server emits). Absent or unparsable hints are zero.
func parseRetryAfter(resp *http.Response) time.Duration {
	if resp == nil {
		return 0
	}
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// doWithRetry runs one exchange under the client's retry policy. mkReq
// must build a fresh request per attempt (request bodies cannot be
// replayed). The final response is returned even when its status is an
// exhausted-retryable one, so callers surface the server's own error
// body; a nil policy means a single attempt.
func (c *Client) doWithRetry(ctx context.Context, mkReq func() (*http.Request, error)) (*http.Response, error) {
	attempts := 1
	if c.Retry != nil {
		attempts = c.Retry.MaxAttempts
		if attempts <= 0 {
			attempts = DefaultRetryAttempts
		}
	}
	var lastErr error
	for attempt := 1; ; attempt++ {
		req, err := mkReq()
		if err != nil {
			return nil, err
		}
		resp, err := c.http().Do(req)
		switch {
		case err == nil && !retryableStatus(resp.StatusCode):
			return resp, nil
		case err != nil:
			lastErr = err
		}
		if attempt >= attempts {
			if err != nil {
				return nil, fmt.Errorf("client: %d attempts exhausted: %w", attempts, lastErr)
			}
			return resp, nil
		}
		var hint time.Duration
		if err == nil {
			hint = parseRetryAfter(resp)
			// Drain so the transport can reuse the connection.
			_ = resp.Body.Close()
		}
		if werr := c.Retry.wait(ctx, c.Retry.backoff(attempt, hint)); werr != nil {
			return nil, werr
		}
	}
}
