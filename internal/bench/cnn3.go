package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"cnnhe/internal/ckksbig"
	"cnnhe/internal/dataset"
	"cnnhe/internal/henn"
	"cnnhe/internal/henn/ir/opt"
	"cnnhe/internal/nn"
)

// This file is the beyond-the-paper CNN3 benchmark: CIFAR-10 through
// the sharded pipeline. The 3×32×32 input (3072 values) exceeds the
// slot count at the default ring degree, so the image splits across a
// shard grid and the measured plan exercises cross-shard recombines —
// the first workload in this repo the paper's single-ciphertext
// packing cannot represent.

// CNN3Models bundles the CIFAR-10 artifacts the CNN3 table consumes,
// mirroring Models for the MNIST pair.
type CNN3Models struct {
	CNN3 *nn.Model // SLAF degree-4 model (HE-ready)
	// Plain accuracies on the CIFAR-10 train/test sets.
	TrainAcc, TestAcc float64
	// Test data in raw pixel form.
	Test dataset.Dataset
	// DataSource describes where the data came from.
	DataSource string
}

// TrainCNN3 trains (or loads cached) CNN3 on CIFAR-10 and retrofits the
// degree-4 SLAF activations the extra depth requires (Ishiyama et al.,
// arXiv 2009.03727).
func TrainCNN3(cfg Config, logw io.Writer) (*CNN3Models, error) {
	train, test, src := dataset.LoadCIFAR10(cfg.TrainN, cfg.TestN, cfg.Seed)
	out := &CNN3Models{Test: test, DataSource: src}
	trainNN := train.ToNN()
	testNN := test.ToNN()

	var cached *nn.Model
	path := ""
	if cfg.ModelDir != "" {
		path = filepath.Join(cfg.ModelDir, fmt.Sprintf("cnn3-slaf-n%d-s%d.gob", cfg.TrainN, cfg.Seed))
		if m, a, err := nn.LoadModel(path); err == nil && a == "cnn3" {
			cached = m
			fmt.Fprintf(logw, "loaded cached cnn3 from %s\n", path)
		}
	}
	if cached != nil {
		out.CNN3 = cached
		out.TrainAcc = nn.Evaluate(cached, trainNN)
	} else {
		rng := rand.New(rand.NewSource(cfg.Seed + 100))
		m := nn.NewCNN3(rng)
		tc := nn.TrainConfig{
			Epochs: cfg.Epochs, BatchSize: 64, MaxLR: 0.08, Momentum: 0.9,
			Seed: cfg.Seed + 200, Verbose: cfg.Verbose, LogEvery: 5,
		}
		fmt.Fprintf(logw, "training cnn3 (%d images, %d epochs, data: %s)...\n", train.Len(), cfg.Epochs, src)
		out.TrainAcc = nn.Train(m, trainNN, tc)
		rc := nn.DefaultRetrofitConfig()
		rc.Degree = 4
		rc.Epochs = cfg.RetrofitEpochs
		rc.Seed = cfg.Seed + 300
		fmt.Fprintf(logw, "retrofitting degree-4 SLAF activations (%d epochs)...\n", rc.Epochs)
		out.CNN3 = nn.Retrofit(m, trainNN, rc)
		if path != "" {
			if err := os.MkdirAll(cfg.ModelDir, 0o755); err == nil {
				if err := out.CNN3.Save(path, "cnn3"); err != nil {
					fmt.Fprintf(logw, "warning: model cache write failed: %v\n", err)
				}
			}
		}
	}
	out.TestAcc = nn.Evaluate(out.CNN3, testNN)
	fmt.Fprintf(logw, "cnn3: train acc %.3f%%, SLAF test acc %.3f%%\n", 100*out.TrainAcc, 100*out.TestAcc)
	return out, nil
}

// TableCNN3 measures the sharded CIFAR-10 CNN3 pipeline on the RNS
// backend. Encrypted inference at this scale runs tens of seconds per
// image, so latency and accuracy are both measured over cfg.Runs images
// (like the multiprecision baseline rows, not the AccImages sweep).
func TableCNN3(cfg Config, models *CNN3Models, w io.Writer) ([]HEResult, error) {
	sp, err := henn.CompileShardedAuto(models.CNN3, 1<<(cfg.LogN-1))
	if err != nil {
		return nil, err
	}
	sp.Opt = cfg.Opt
	k := 13 // the paper's Table II chain length, as in heVsRNS
	if sp.Depth+1 > k {
		k = sp.Depth + 1
	}
	params, err := rnsParams(cfg, k)
	if err != nil {
		return nil, err
	}
	if err := sp.CheckDepth(params.MaxLevel()); err != nil {
		return nil, err
	}
	n := cfg.Runs
	images := make([][]float64, n)
	for i := 0; i < n && i < models.Test.Len(); i++ {
		images[i] = models.Test.Image(i)
	}
	labels := models.Test.Labels[:n]

	fmt.Fprintf(w, "\n## Table CNN3: sharded CIFAR-10 CNN3-HE-RNS (logN=%d, chain length %d, %d shards over %v grid, %d encrypted images)\n\n",
		cfg.LogN, k, sp.NumShards(), sp.Input.Grid, n)
	fmt.Fprintf(w, "| Model | Training Acc (%%) | Lat min (s) | Lat max (s) | Lat avg (s) | Acc (%%) |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|\n")

	re, err := henn.NewRNSEngine(params, sp.Rotations(), cfg.Seed+40)
	if err != nil {
		return nil, err
	}
	sp.Infer(re, images[0]) // warm the weight cache untimed
	acc, stats, err := sp.EvaluateEncrypted(re, images, labels, n)
	if err != nil {
		return nil, err
	}
	row := HEResult{Model: "CNN3-HE-RNS", Backend: "ckks-rns", Chain: k, Lat: stats, Acc: acc, TrainAcc: models.TrainAcc}
	writeRow(w, row)
	fmt.Fprintf(w, "\nPlaintext SLAF test accuracy for reference: %.2f%% (%s)\n", 100*models.TestAcc, models.DataSource)
	return []HEResult{row}, nil
}

// ShardedGraphSizes appends the sharded CNN3 lowering's graph shapes to
// rep (creating it when nil) under "CNN3/<backend>" keys, so hetrend can
// join engine-call counts for the CNN3 series like it does for the
// paper models. Lowering is symbolic; this costs milliseconds.
func ShardedGraphSizes(cfg Config, name string, model *nn.Model, rep *GraphReport) (*GraphReport, error) {
	if rep == nil {
		rep = &GraphReport{
			Optimizer: cfg.Opt.Setting(),
			Before:    map[string]JSONGraph{},
			After:     map[string]JSONGraph{},
		}
	}
	sp, err := henn.CompileShardedAuto(model, 1<<(cfg.LogN-1))
	if err != nil {
		return nil, err
	}
	sp.Opt = cfg.Opt
	k := sp.Depth + 1
	if k < 13 {
		k = 13
	}
	params, err := rnsParams(cfg, k)
	if err != nil {
		return nil, err
	}
	bigParams, err := ckksbig.FromRNSParameters(params)
	if err != nil {
		return nil, err
	}
	engines := []henn.Engine{
		henn.ParamsOnlyEngine("ckks-rns", params.Slots(), params.MaxLevel(), params.Scale, params.QiFloat),
		henn.ParamsOnlyEngine("ckks-big", bigParams.Slots(), bigParams.MaxLevel(), bigParams.Scale, bigParams.QiFloat),
	}
	for _, e := range engines {
		g, err := sp.Lower(e)
		if err != nil {
			return nil, fmt.Errorf("bench: lowering sharded %s on %s: %w", name, e.Name(), err)
		}
		res, err := opt.Optimize(e, g, cfg.Opt)
		if err != nil {
			return nil, fmt.Errorf("bench: optimizing sharded %s on %s: %w", name, e.Name(), err)
		}
		key := name + "/" + e.Name()
		rep.Before[key] = jsonGraph(g.Stats())
		rep.After[key] = jsonGraph(res.After)
	}
	return rep, nil
}
