package keys

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cnnhe/internal/ckks"
)

// On-disk layout of a durable store: one file per registered bundle,
// named by content fingerprint, holding exactly the wire bytes the
// client uploaded (which already carry version + CRC framing and the
// params digest). Writes are atomic-rename snapshots — a crash can lose
// at most the registration in flight, never corrupt an existing file —
// and reload re-runs the full registration validation, so a bundle that
// rotted on disk is quarantined instead of served.
const (
	bundleSuffix     = ".bundle"
	quarantineSuffix = ".quarantine"
	tempPrefix       = ".bundle-"
)

// DefaultCompactInterval is how often the background compactor removes
// bundle files whose entries have been evicted or expired, when
// Config.CompactInterval is zero.
const DefaultCompactInterval = 30 * time.Second

// persist writes data under fp as an atomic-rename snapshot: the bytes
// land in a temp file, are flushed to stable storage, and only then
// take the fingerprint name. Readers (and a post-crash reload) see
// either the complete bundle or nothing.
func (s *Store) persist(fp string, data []byte) error {
	tmp, err := os.CreateTemp(s.cfg.Dir, tempPrefix+"*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return err
	}
	final := filepath.Join(s.cfg.Dir, fp+bundleSuffix)
	if err := os.Rename(tmpName, final); err != nil {
		os.Remove(tmpName)
		return err
	}
	// Make the rename itself durable. Directory fsync is best-effort:
	// filesystems that refuse it still ordered the data write above.
	if d, err := os.Open(s.cfg.Dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	keysTel().persisted(len(data))
	return nil
}

// loadDir replays the on-disk snapshot into the empty store, oldest
// file first so the LRU order after reload matches registration
// recency. Every file is re-verified end to end — name matches the
// recomputed content fingerprint, frame CRCs hold, params digest is the
// server's, rotation coverage suffices — and files that fail are
// renamed aside with a .quarantine suffix rather than deleted, so a
// mis-deployment (e.g. pointing the store at another server's
// directory) loses nothing.
func (s *Store) loadDir() error {
	if err := os.MkdirAll(s.cfg.Dir, 0o700); err != nil {
		return fmt.Errorf("keys: creating store dir: %w", err)
	}
	ents, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return fmt.Errorf("keys: reading store dir: %w", err)
	}
	type candidate struct {
		fp    string
		path  string
		mtime time.Time
	}
	var cands []candidate
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, bundleSuffix) {
			// Stale temp files are leftovers of a crashed write; their
			// rename never happened, so they hold no registered state.
			if strings.HasPrefix(name, tempPrefix) {
				os.Remove(filepath.Join(s.cfg.Dir, name))
			}
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		cands = append(cands, candidate{
			fp:    strings.TrimSuffix(name, bundleSuffix),
			path:  filepath.Join(s.cfg.Dir, name),
			mtime: info.ModTime(),
		})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].mtime.Before(cands[j].mtime) })

	for _, c := range cands {
		data, err := os.ReadFile(c.path)
		if err != nil {
			s.quarantine(c.path)
			continue
		}
		if ckks.BundleFingerprint(data) != c.fp {
			s.quarantine(c.path)
			continue
		}
		bundle, err := s.decodeValidate(data)
		if err != nil {
			s.quarantine(c.path)
			continue
		}
		e := &Entry{
			Fingerprint:  c.fp,
			Bundle:       bundle,
			Size:         len(data),
			RegisteredAt: c.mtime,
		}
		s.mu.Lock()
		s.removeLocked(c.fp) // duplicate filenames cannot happen; be safe
		el := s.lru.PushFront(e)
		s.entries[c.fp] = el
		// Last use restarts at load time: TTL measures idleness of the
		// running server, and punishing clients for the downtime that
		// just ate their worker would defeat crash recovery.
		s.lastUse[c.fp] = s.cfg.Clock()
		for s.lru.Len() > s.cfg.MaxEntries {
			s.evictLocked(s.lru.Back(), "lru")
		}
		n := s.lru.Len()
		s.mu.Unlock()
		keysTel().reloaded(n)
	}
	return nil
}

// quarantine renames a failed bundle file aside so reload never loops
// over it again but a human can still inspect it.
func (s *Store) quarantine(path string) {
	_ = os.Rename(path, path+quarantineSuffix)
	keysTel().reloadRejected()
}

// Compact removes bundle files whose fingerprints are no longer live
// (evicted or expired entries) and returns how many files it deleted.
// The background compactor calls this on a timer; tests and shutdown
// paths may call it directly. Safe against concurrent registrations:
// a file is only deleted while the store lock confirms its fingerprint
// is dead, and Register inserts the entry before persisting the file.
func (s *Store) Compact() int {
	if s.cfg.Dir == "" {
		return 0
	}
	ents, err := os.ReadDir(s.cfg.Dir)
	if err != nil {
		return 0
	}
	removed := 0
	for _, de := range ents {
		name := de.Name()
		if de.IsDir() || !strings.HasSuffix(name, bundleSuffix) {
			continue
		}
		fp := strings.TrimSuffix(name, bundleSuffix)
		s.mu.Lock()
		_, live := s.entries[fp]
		if live && s.expiredLocked(fp) {
			s.evictLocked(s.entries[fp], "ttl")
			live = false
		}
		if !live {
			if os.Remove(filepath.Join(s.cfg.Dir, name)) == nil {
				removed++
			}
		}
		s.mu.Unlock()
	}
	if removed > 0 {
		keysTel().compacted(removed)
	}
	return removed
}

// compactLoop is the background compactor, stopped by Close.
func (s *Store) compactLoop(interval time.Duration) {
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.Compact()
		}
	}
}

// Close stops the background compactor. Registered state stays on disk;
// a store is single-use after Close only in the sense that compaction
// no longer runs. Safe to call more than once, and a no-op for
// memory-only stores.
func (s *Store) Close() {
	s.closeOnce.Do(func() {
		if s.stop != nil {
			close(s.stop)
		}
	})
}
