package hestd

import "testing"

func TestMaxLogQP(t *testing.T) {
	v, err := MaxLogQP(Security128, 14)
	if err != nil {
		t.Fatal(err)
	}
	if v != 438 {
		t.Fatalf("got %d want 438", v)
	}
	if _, err := MaxLogQP(Security128, 20); err == nil {
		t.Fatal("expected error for missing logN entry")
	}
	if _, err := MaxLogQP(SecurityLevel(100), 14); err == nil {
		t.Fatal("expected error for unknown level")
	}
}

func TestValidate(t *testing.T) {
	// The paper's settings: N=2^14, logQ=366 plus a 60-bit special = 426.
	if err := Validate(Security128, 14, 426); err != nil {
		t.Fatalf("paper settings should validate at 128 bits: %v", err)
	}
	if err := Validate(Security128, 14, 439); err == nil {
		t.Fatal("439 bits should fail at N=2^14")
	}
	if err := Validate(Security128, 12, 426); err == nil {
		t.Fatal("test-size ring should fail the standard with the paper modulus")
	}
}

func TestSecurityOf(t *testing.T) {
	if got := SecurityOf(14, 426); got != Security128 {
		t.Fatalf("got λ=%d want 128", got)
	}
	if got := SecurityOf(14, 237); got != Security256 {
		t.Fatalf("got λ=%d want 256", got)
	}
	if got := SecurityOf(12, 426); got != 0 {
		t.Fatalf("got λ=%d want 0 (insecure)", got)
	}
}
