package henn

import (
	"context"
	"fmt"
	"time"

	"cnnhe/internal/henn/exec"
	"cnnhe/internal/nn"
	"cnnhe/internal/telemetry"
)

// Batched inference packs B images into one ciphertext at a fixed block
// stride and lowers every linear layer to the block-diagonal matrix
// blockdiag(M, …, M). The diagonal method evaluates any matrix, so the
// per-ciphertext cost is unchanged while throughput multiplies by B —
// the SIMD amortization that E2DM and Lo-La (paper Table I) exploit.
//
// BatchPlan wraps a model compiled with block replication.
type BatchPlan struct {
	Plan      *Plan
	Batch     int
	BlockSize int
}

// CompileBatched compiles model for `batch` images per ciphertext. The
// block size is slots/batch and must be a power of two at least as large
// as the widest layer dimension.
func CompileBatched(m *nn.Model, slots, batch int) (*BatchPlan, error) {
	if batch < 1 || slots%batch != 0 {
		return nil, fmt.Errorf("henn: batch %d must divide %d slots", batch, slots)
	}
	block := slots / batch
	if block&(block-1) != 0 {
		return nil, fmt.Errorf("henn: block size %d must be a power of two", block)
	}
	// Compile once at the block dimension to discover stage matrices.
	base, err := Compile(m, slots)
	if err != nil {
		return nil, err
	}
	if batch == 1 {
		return &BatchPlan{Plan: base, Batch: 1, BlockSize: block}, nil
	}
	// Rebuild each stage tiled across blocks.
	out := &Plan{Slots: slots, InputDim: base.InputDim, OutputDim: base.OutputDim, Depth: base.Depth}
	for _, st := range base.Stages {
		switch s := st.(type) {
		case *LinearStage:
			tiled, err := tileLinear(s, block, batch, slots)
			if err != nil {
				return nil, err
			}
			out.Stages = append(out.Stages, tiled)
		case *ActStage:
			out.Stages = append(out.Stages, tileAct(s, block, batch, slots))
		default:
			return nil, fmt.Errorf("henn: cannot batch stage %T", st)
		}
	}
	return &BatchPlan{Plan: out, Batch: batch, BlockSize: block}, nil
}

// tileLinear rebuilds a linear stage as blockdiag(M, …, M). The original
// stage was lowered at full slot width, so its diagonals describe M
// embedded at block 0; entries must fit within one block.
func tileLinear(s *LinearStage, block, batch, slots int) (*LinearStage, error) {
	t := &LinearStage{
		Label: s.Label + fmt.Sprintf("×%d", batch),
		Diags: map[int][]float64{},
		Bias:  make([]float64, slots),
		Slots: slots,
		Baby:  s.Baby,
		Giant: s.Giant,
	}
	for k, diag := range s.Diags {
		for i, v := range diag {
			if v == 0 {
				continue
			}
			j := (i + k) % slots
			if i >= block || j >= block {
				return nil, fmt.Errorf("henn: stage %s exceeds block size %d (entry %d→%d)", s.Label, block, j, i)
			}
		}
		// In-block offset d of this diagonal: columns j = i + d with
		// d = k (when k < block) or d = k − slots (negative wrap).
		d := k
		if d >= block {
			d -= slots
		}
		if d <= -block {
			return nil, fmt.Errorf("henn: stage %s diagonal %d outside block", s.Label, k)
		}
		nk := ((d % slots) + slots) % slots
		nd := t.Diags[nk]
		if nd == nil {
			nd = make([]float64, slots)
			t.Diags[nk] = nd
		}
		for i, v := range diag {
			if v == 0 {
				continue
			}
			for b := 0; b < batch; b++ {
				nd[b*block+i] = v
			}
		}
	}
	for b := 0; b < batch; b++ {
		copy(t.Bias[b*block:(b+1)*block], s.Bias[:block])
	}
	return t, nil
}

// tileAct replicates the activation coefficient vectors per block.
func tileAct(s *ActStage, block, batch, slots int) *ActStage {
	t := &ActStage{Label: s.Label + fmt.Sprintf("×%d", batch), Degree: s.Degree, SlotsN: slots}
	for p := 0; p <= s.Degree; p++ {
		t.A[p] = make([]float64, slots)
		for b := 0; b < batch; b++ {
			copy(t.A[p][b*block:(b+1)*block], s.A[p][:block])
		}
	}
	return t
}

// PackBatch lays images out at the block stride.
func (bp *BatchPlan) PackBatch(images [][]float64) ([]float64, error) {
	if len(images) > bp.Batch {
		return nil, badInput("%d images exceed batch %d", len(images), bp.Batch)
	}
	out := make([]float64, bp.Plan.Slots)
	for b, img := range images {
		if len(img) > bp.BlockSize {
			return nil, badInput("image length %d exceeds block %d", len(img), bp.BlockSize)
		}
		copy(out[b*bp.BlockSize:], img)
	}
	return out, nil
}

// InferBatchCtx classifies up to Batch images in one encrypted
// evaluation, with the same contract as Plan.InferCtx: the context is
// checked before every op, engine panics surface as classified errors,
// and a per-stage Report is returned non-nil even on failure
// (FailedStage names the stage that errored). The packed ciphertext runs
// through the plan's lowered op graph with ahead-of-time encoded
// plaintexts, shared across calls.
func (bp *BatchPlan) InferBatchCtx(ctx context.Context, e Engine, images [][]float64) ([]Logits, *Report, error) {
	rep := &Report{Engine: e.Name()}
	if len(images) == 0 {
		rep.FailedStage = "pack"
		return nil, rep, badInput("no images in batch")
	}
	packed, err := bp.PackBatch(images)
	if err != nil {
		rep.FailedStage = "pack"
		return nil, rep, err
	}
	pr, err := bp.Plan.prepare(e)
	if err != nil {
		rep.FailedStage = "prepare"
		return nil, rep, err
	}
	defer telInferStart()()
	res, err := pr.Run(ctx, [][]float64{packed}, exec.Options{})
	fillReport(rep, res)
	if err != nil {
		return nil, rep, err
	}
	// The decrypted vector is sliced per block, so the whole batch shares
	// one decrypt rather than reusing the single-image epilogue.
	sr := newStageRunner(ctx, e, rep)
	var slots []float64
	t := time.Now()
	_, err = sr.step("decrypt", func() Ct { slots = e.DecryptVec(res.Out); return nil })
	rep.Decrypt = time.Since(t)
	telemetry.RecorderFrom(ctx).RecordPhase("decrypt", t, time.Now())
	if err != nil {
		return nil, rep, err
	}
	need := (len(images)-1)*bp.BlockSize + bp.Plan.OutputDim
	if len(slots) < need {
		return nil, rep, badInput("engine decrypted %d slots, batch needs %d", len(slots), need)
	}
	out := make([]Logits, len(images))
	for b := range images {
		off := b * bp.BlockSize
		out[b] = Logits(append([]float64(nil), slots[off:off+bp.Plan.OutputDim]...))
	}
	return out, rep, nil
}

// InferBatch classifies up to Batch images in one encrypted evaluation.
// It is a thin wrapper over InferBatchCtx with a background context,
// kept for callers that only need logits and the evaluation latency.
func (bp *BatchPlan) InferBatch(e Engine, images [][]float64) ([]Logits, time.Duration, error) {
	logits, rep, err := bp.InferBatchCtx(context.Background(), e, images)
	if err != nil {
		return nil, 0, err
	}
	return logits, rep.Eval, nil
}
