// Quickstart: the Fig. 1 two-party flow on raw CKKS-RNS primitives.
//
// The client generates keys and encrypts a vector of sensitive values; the
// (untrusted) server computes a polynomial 0.5·x² + 2·x + 1 on the
// ciphertext without ever seeing the data; the client decrypts the result.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math"

	"cnnhe/internal/ckks"
)

func main() {
	// Test-scale parameters: N=2^12, the paper's chain shape.
	// (Use ckks.PaperParameters() for the full Table II settings.)
	params, err := ckks.TestParameters()
	if err != nil {
		log.Fatal(err)
	}
	ctx, err := ckks.NewContext(params)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CKKS-RNS: N=2^%d, %d slots, %d levels, log q=%d\n",
		params.LogN, params.Slots(), params.MaxLevel(), params.Chain.LogQ())

	// --- client side: keys, encode, encrypt -------------------------------
	kg := ckks.NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)

	encoder := ckks.NewEncoder(ctx)
	encryptor := ckks.NewEncryptor(ctx, pk, 2)

	secret := []float64{1.5, -0.25, 3.0, 0.0, -2.0}
	pt := encoder.Encode(secret, params.MaxLevel(), params.Scale)
	ct := encryptor.Encrypt(pt)
	fmt.Println("client: encrypted", secret)

	// --- server side: blind evaluation of 0.5·x² + 2·x + 1 ----------------
	// Horner form (0.5·x + 2)·x + 1 keeps the scales naturally aligned.
	ev := ckks.NewEvaluator(ctx, rlk, nil)
	t := ev.Rescale(ev.MulConst(ct, 0.5, 0)) // 0.5·x
	t = ev.AddConst(t, 2.0)                  // 0.5·x + 2
	t = ev.Mul(t, ev.DropLevel(ct, 1))       // (0.5·x + 2)·x
	sum := ev.AddConst(ev.Rescale(t), 1.0)
	fmt.Println("server: evaluated 0.5·x² + 2·x + 1 blindly,", sum)

	// --- client side: decrypt ----------------------------------------------
	decryptor := ckks.NewDecryptor(ctx, sk)
	got := encoder.Decode(decryptor.DecryptNew(sum))
	fmt.Println("client: decrypted results")
	for i, x := range secret {
		want := 0.5*x*x + 2*x + 1
		fmt.Printf("  f(%6.2f) = %9.5f   (exact %9.5f, err %.2e)\n",
			x, got[i], want, math.Abs(got[i]-want))
	}
}
