package nn

import (
	"math/rand"

	"cnnhe/internal/tensor"
)

// MeanPool2D is average pooling — the only pooling that is linear and thus
// HE-friendly (CryptoNets and its descendants all use it; max pooling has
// no polynomial form).
type MeanPool2D struct {
	Window, Stride int
	InC, InH, InW  int
}

// NewMeanPool2D returns an average-pooling layer for [inC, inH, inW]
// inputs.
func NewMeanPool2D(window, stride, inC, inH, inW int) *MeanPool2D {
	return &MeanPool2D{Window: window, Stride: stride, InC: inC, InH: inH, InW: inW}
}

// Name implements Layer.
func (p *MeanPool2D) Name() string { return "meanpool2d" }

// OutH returns the output height.
func (p *MeanPool2D) OutH() int { return tensor.ConvShape(p.InH, p.Window, p.Stride, 0) }

// OutW returns the output width.
func (p *MeanPool2D) OutW() int { return tensor.ConvShape(p.InW, p.Window, p.Stride, 0) }

// Forward implements Layer.
func (p *MeanPool2D) Forward(xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(xs))
	for b, x := range xs {
		out[b] = tensor.MeanPool2D(x, p.Window, p.Stride)
	}
	return out
}

// Backward implements Layer: the gradient of a mean is spread uniformly
// over the window.
func (p *MeanPool2D) Backward(grads []*tensor.Tensor) []*tensor.Tensor {
	oh, ow := p.OutH(), p.OutW()
	inv := 1.0 / float64(p.Window*p.Window)
	out := make([]*tensor.Tensor, len(grads))
	for b, g := range grads {
		dx := tensor.New(p.InC, p.InH, p.InW)
		for c := 0; c < p.InC; c++ {
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					gv := g.At3(c, oi, oj) * inv
					for ki := 0; ki < p.Window; ki++ {
						for kj := 0; kj < p.Window; kj++ {
							ii, jj := oi*p.Stride+ki, oj*p.Stride+kj
							dx.Set3(c, ii, jj, dx.At3(c, ii, jj)+gv)
						}
					}
				}
			}
		}
		out[b] = dx
	}
	return out
}

// Params implements Layer.
func (p *MeanPool2D) Params() []*Param { return nil }

// AsMatrix lowers the pooling to the explicit matrix M with
// flatten(pool(x)) = M·flatten(x), used by the homomorphic compiler.
func (p *MeanPool2D) AsMatrix() *tensor.Tensor {
	oh, ow := p.OutH(), p.OutW()
	rows := p.InC * oh * ow
	cols := p.InC * p.InH * p.InW
	m := tensor.New(rows, cols)
	inv := 1.0 / float64(p.Window*p.Window)
	row := 0
	for c := 0; c < p.InC; c++ {
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				for ki := 0; ki < p.Window; ki++ {
					for kj := 0; kj < p.Window; kj++ {
						ii, jj := oi*p.Stride+ki, oj*p.Stride+kj
						m.Data[row*cols+(c*p.InH+ii)*p.InW+jj] = inv
					}
				}
				row++
			}
		}
	}
	return m
}

// NewCryptoNets builds a CryptoNets-style MNIST architecture with mean
// pooling and degree-2 (square-friendly) activations: Conv(1→5, 5×5, s2)
// → act → MeanPool(2×2, s2) → Conv(5→10, 3×3) → Flatten → Dense(→32) →
// act → Dense(→10). With linear-layer collapsing (the Table I "2-arch"
// column) the pool and the second convolution merge into one homomorphic
// stage.
func NewCryptoNets(rng *rand.Rand) *Model {
	conv1 := NewConv2D(rng, 1, 5, 5, 2, 1, 28, 28) // 5×13×13
	pool := NewMeanPool2D(2, 2, conv1.OutC, conv1.OutH(), conv1.OutW())
	conv2 := NewConv2D(rng, 5, 10, 3, 1, 0, pool.OutH(), pool.OutW()) // 10×4×4
	flat := conv2.OutC * conv2.OutH() * conv2.OutW()
	return &Model{Layers: []Layer{
		conv1,
		NewReLU(),
		pool,
		conv2,
		NewFlatten(),
		NewDense(rng, flat, 32),
		NewReLU(),
		NewDense(rng, 32, 10),
	}}
}

// NewCNN3 builds the CIFAR-10 architecture: Conv(3→6, 5×5, s2, p1 →
// 6×15×15) → act → MeanPool(2×2, s2 → 6×7×7) → Conv(6→12, 3×3, p1 →
// 12×7×7) → act → MeanPool(2×2, s2 → 12×3×3) → Flatten → Dense(108→10).
// With linear-layer collapsing each pool merges into the following
// convolution/dense layer, yielding five homomorphic stages; with
// degree-4 SLAF activations (depth 3 each) the plan consumes
// 1+3+1+3+1 = 9 levels. The 3·32·32 = 3072-element input exceeds the
// 2048 slots of the serving ring, which is exactly what the ciphertext
// sharding pipeline is for.
func NewCNN3(rng *rand.Rand) *Model {
	conv1 := NewConv2D(rng, 3, 6, 5, 2, 1, 32, 32) // 6×15×15
	pool1 := NewMeanPool2D(2, 2, conv1.OutC, conv1.OutH(), conv1.OutW())
	conv2 := NewConv2D(rng, 6, 12, 3, 1, 1, pool1.OutH(), pool1.OutW()) // 12×7×7
	pool2 := NewMeanPool2D(2, 2, conv2.OutC, conv2.OutH(), conv2.OutW())
	flat := conv2.OutC * pool2.OutH() * pool2.OutW() // 12·3·3 = 108
	return &Model{Layers: []Layer{
		conv1,
		NewReLU(),
		pool1,
		conv2,
		NewReLU(),
		pool2,
		NewFlatten(),
		NewDense(rng, flat, 10),
	}}
}
