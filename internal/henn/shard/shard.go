// Package shard implements the sharded-tensor packing layer: a
// declarative manifest that splits a large image tensor across N
// ciphertexts when the flattened tensor no longer fits one ciphertext's
// slot capacity (DESIGN.md §15).
//
// A Manifest carries the tensor shape, the shard grid and the slot
// capacity, and defines a bijection between global tensor indices and
// (shard, slot) coordinates. The grid tiles the spatial plane into
// near-equal H×W bands (balanced partition: band sizes differ by at
// most one, every band non-empty); each shard packs its band for every
// channel contiguously in channel-major, row-major order, matching the
// unsharded flattening restricted to the band. The halo/rotation plan —
// which shards feed which outputs, and through which slot rotations —
// is derived from the manifest at compile time by henn.CompileSharded,
// which carves every collapsed layer matrix into inter-shard blocks and
// lowers the non-zero ones plus a Recombine per output shard.
//
// The package is dependency-light (stdlib only) so both the server-side
// compiler and the client SDK can consume manifests: the wire form
// (Encode/DecodeManifest) travels inside /v1/info, and the client uses
// Split/Join to encrypt shard sets and reassemble results.
package shard

import "fmt"

// Shape is a C×H×W tensor shape (C = 1 for flat vectors).
type Shape struct {
	C, H, W int
}

// Flat returns the flattened element count C·H·W.
func (s Shape) Flat() int { return s.C * s.H * s.W }

func (s Shape) valid() bool { return s.C >= 1 && s.H >= 1 && s.W >= 1 }

// Grid is the shard grid: the spatial plane is tiled into Gy×Gx bands
// (Gy over height, Gx over width). Grid{1, 1} is the unsharded layout.
type Grid struct {
	Gy, Gx int
}

// Manifest declares how one tensor is packed across ciphertext shards.
// Manifests are plain values: copy them freely.
type Manifest struct {
	// Shape is the logical tensor shape being sharded.
	Shape Shape
	// Grid tiles Shape's H×W plane into Gy×Gx bands; shard (gy, gx) has
	// index gy·Gx + gx and holds its band for every channel.
	Grid Grid
	// Slots is the per-ciphertext slot capacity the manifest was built
	// for; every shard's length fits it.
	Slots int
	// Halo records the widest cross-band row/column overlap any kernel
	// needs (informative: the compiler derives the exact exchange from
	// the layer matrices; 0 means band-local layers only).
	Halo int
}

// band returns the balanced partition of n elements into parts bands:
// the start offset and length of band i. Bands differ in size by at
// most one and are all non-empty for parts ≤ n.
func band(n, parts, i int) (start, length int) {
	base, rem := n/parts, n%parts
	start = i*base + min(i, rem)
	length = base
	if i < rem {
		length++
	}
	return start, length
}

// New builds and validates a manifest. Every shard (the C channels of
// one H×W band) must fit the slot capacity.
func New(shape Shape, grid Grid, slots int) (Manifest, error) {
	if !shape.valid() {
		return Manifest{}, fmt.Errorf("shard: invalid shape %+v", shape)
	}
	if grid.Gy < 1 || grid.Gx < 1 {
		return Manifest{}, fmt.Errorf("shard: invalid grid %+v", grid)
	}
	if grid.Gy > shape.H || grid.Gx > shape.W {
		return Manifest{}, fmt.Errorf("shard: grid %dx%d exceeds spatial dims %dx%d",
			grid.Gy, grid.Gx, shape.H, shape.W)
	}
	if slots < 1 {
		return Manifest{}, fmt.Errorf("shard: invalid slot capacity %d", slots)
	}
	m := Manifest{Shape: shape, Grid: grid, Slots: slots}
	for s := 0; s < m.NumShards(); s++ {
		if l := m.ShardLen(s); l > slots {
			return Manifest{}, fmt.Errorf("shard: shard %d needs %d slots, capacity %d", s, l, slots)
		}
	}
	return m, nil
}

// ForDim builds a manifest for a flat dim-vector (Shape{1, 1, dim}),
// using the minimum number of W-bands that fit the slot capacity.
// dim ≤ slots yields the single-shard (1×1 grid) layout.
func ForDim(dim, slots int) (Manifest, error) {
	if dim < 1 || slots < 1 {
		return Manifest{}, fmt.Errorf("shard: invalid flat manifest dim=%d slots=%d", dim, slots)
	}
	parts := (dim + slots - 1) / slots
	return New(Shape{C: 1, H: 1, W: dim}, Grid{Gy: 1, Gx: parts}, slots)
}

// NumShards returns the ciphertext count Gy·Gx.
func (m Manifest) NumShards() int { return m.Grid.Gy * m.Grid.Gx }

// bandOf splits shard index s into its (gy, gx) grid coordinates.
func (m Manifest) bandOf(s int) (gy, gx int) { return s / m.Grid.Gx, s % m.Grid.Gx }

// ShardShape returns the C×bh×bw tensor shape shard s holds.
func (m Manifest) ShardShape(s int) Shape {
	gy, gx := m.bandOf(s)
	_, bh := band(m.Shape.H, m.Grid.Gy, gy)
	_, bw := band(m.Shape.W, m.Grid.Gx, gx)
	return Shape{C: m.Shape.C, H: bh, W: bw}
}

// ShardLen returns the occupied slot count of shard s.
func (m Manifest) ShardLen(s int) int { return m.ShardShape(s).Flat() }

// Locate maps a global flat tensor index to its (shard, slot) home.
func (m Manifest) Locate(global int) (shardIdx, slot int) {
	if global < 0 || global >= m.Shape.Flat() {
		panic(fmt.Sprintf("shard: global index %d out of range [0, %d)", global, m.Shape.Flat()))
	}
	hw := m.Shape.H * m.Shape.W
	c := global / hw
	y := (global % hw) / m.Shape.W
	x := global % m.Shape.W
	gy := bandIndex(m.Shape.H, m.Grid.Gy, y)
	gx := bandIndex(m.Shape.W, m.Grid.Gx, x)
	y0, bh := band(m.Shape.H, m.Grid.Gy, gy)
	x0, bw := band(m.Shape.W, m.Grid.Gx, gx)
	return gy*m.Grid.Gx + gx, c*bh*bw + (y-y0)*bw + (x - x0)
}

// GlobalAt inverts Locate: the global flat index stored at (shard,
// slot). It returns -1 for slots beyond the shard's occupied length
// (zero padding up to the ciphertext capacity).
func (m Manifest) GlobalAt(shardIdx, slot int) int {
	if shardIdx < 0 || shardIdx >= m.NumShards() {
		panic(fmt.Sprintf("shard: shard index %d out of range [0, %d)", shardIdx, m.NumShards()))
	}
	gy, gx := m.bandOf(shardIdx)
	y0, bh := band(m.Shape.H, m.Grid.Gy, gy)
	x0, bw := band(m.Shape.W, m.Grid.Gx, gx)
	if slot < 0 || slot >= m.Shape.C*bh*bw {
		return -1
	}
	c := slot / (bh * bw)
	y := y0 + (slot%(bh*bw))/bw
	x := x0 + slot%bw
	return c*m.Shape.H*m.Shape.W + y*m.Shape.W + x
}

// bandIndex finds the band holding coordinate v under the balanced
// partition of n into parts.
func bandIndex(n, parts, v int) int {
	base, rem := n/parts, n%parts
	// The first rem bands have base+1 elements.
	wide := rem * (base + 1)
	if v < wide {
		return v / (base + 1)
	}
	if base == 0 {
		return parts - 1
	}
	return rem + (v-wide)/base
}

// Split scatters a flat tensor (length Shape.Flat()) into per-shard
// slot vectors in shard-index order.
func (m Manifest) Split(vec []float64) ([][]float64, error) {
	if len(vec) != m.Shape.Flat() {
		return nil, fmt.Errorf("shard: split input length %d, manifest wants %d", len(vec), m.Shape.Flat())
	}
	out := make([][]float64, m.NumShards())
	for s := range out {
		out[s] = make([]float64, m.ShardLen(s))
	}
	for g, v := range vec {
		s, slot := m.Locate(g)
		out[s][slot] = v
	}
	return out, nil
}

// Join gathers per-shard slot vectors back into the flat tensor,
// inverting Split. Shards longer than their occupied length (decrypted
// ciphertexts carry capacity slots) have their padding ignored.
func (m Manifest) Join(parts [][]float64) ([]float64, error) {
	if len(parts) != m.NumShards() {
		return nil, fmt.Errorf("shard: join got %d shards, manifest has %d", len(parts), m.NumShards())
	}
	out := make([]float64, m.Shape.Flat())
	for s, p := range parts {
		n := m.ShardLen(s)
		if len(p) < n {
			return nil, fmt.Errorf("shard: shard %d has %d slots, need %d", s, len(p), n)
		}
		for slot := 0; slot < n; slot++ {
			out[m.GlobalAt(s, slot)] = p[slot]
		}
	}
	return out, nil
}

// String renders the manifest for logs.
func (m Manifest) String() string {
	return fmt.Sprintf("%dx%dx%d over %dx%d grid (%d shards, ≤%d slots)",
		m.Shape.C, m.Shape.H, m.Shape.W, m.Grid.Gy, m.Grid.Gx, m.NumShards(), m.Slots)
}
