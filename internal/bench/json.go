package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sort"
	"time"

	"cnnhe/internal/telemetry"
)

// JSONSchemaVersion identifies the report layout. Version 2 added
// schema_version itself and the per-table op_breakdown section;
// version 3 added the optimizer setting and the per-(model, backend)
// graph_before/graph_after sections.
const JSONSchemaVersion = 3

// JSONRow is one machine-readable benchmark measurement. Accuracy
// fields are pointers because JSON has no NaN: absent means "not
// measured", mirroring HEResult's NaN convention.
type JSONRow struct {
	Table       string   `json:"table"`
	Model       string   `json:"model"`
	Backend     string   `json:"backend"`
	Chain       int      `json:"chain"`
	N           int      `json:"n"`
	MeanMS      float64  `json:"mean_ms"`
	P50MS       float64  `json:"p50_ms"`
	P95MS       float64  `json:"p95_ms"`
	MinMS       float64  `json:"min_ms"`
	MaxMS       float64  `json:"max_ms"`
	AccPct      *float64 `json:"accuracy_pct,omitempty"`
	TrainAccPct *float64 `json:"train_accuracy_pct,omitempty"`
}

// JSONOpKind is one op-kind row of a table's executor profile: how many
// logical HE ops of the kind ran while the table was measured, over how
// many engine calls (hoisted rotations share one call), and their summed
// engine-call latency.
type JSONOpKind struct {
	Kind    string  `json:"kind"`
	Count   int64   `json:"count"`
	Calls   int64   `json:"calls"`
	TotalMS float64 `json:"total_ms"`
}

// JSONReport is the envelope hebench writes next to its markdown tables.
type JSONReport struct {
	SchemaVersion int       `json:"schema_version"`
	Timestamp     string    `json:"timestamp"`
	LogN          int       `json:"logn"`
	Runs          int       `json:"runs"`
	AccImages     int       `json:"acc_images"`
	Seed          int64     `json:"seed"`
	GOOS          string    `json:"goos"`
	GOARCH        string    `json:"goarch"`
	NumCPU        int       `json:"num_cpu"`
	Rows          []JSONRow `json:"rows"`
	// OpBreakdown maps a table name to its per-op-kind executor profile,
	// measured by diffing telemetry registry snapshots around the table.
	// Absent when telemetry was disabled.
	OpBreakdown map[string][]JSONOpKind `json:"op_breakdown,omitempty"`
	// Optimizer is the graph-optimizer setting the run used (opt.Setting
	// form: "off", "on (cse,…)", "exact (…)"). GraphBefore/GraphAfter
	// record the lowered graph shape per "MODEL/backend" key around the
	// pass pipeline. Absent when no models were benchmarked.
	Optimizer   string               `json:"optimizer,omitempty"`
	GraphBefore map[string]JSONGraph `json:"graph_before,omitempty"`
	GraphAfter  map[string]JSONGraph `json:"graph_after,omitempty"`
}

func pctPtr(frac float64) *float64 {
	if math.IsNaN(frac) {
		return nil
	}
	v := 100 * frac
	return &v
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// JSONRows converts measured table rows to their JSON form, tagged with
// the table they came from.
func JSONRows(table string, results []HEResult) []JSONRow {
	out := make([]JSONRow, 0, len(results))
	for _, r := range results {
		lat := r.Lat
		out = append(out, JSONRow{
			Table:       table,
			Model:       r.Model,
			Backend:     r.Backend,
			Chain:       r.Chain,
			N:           lat.N,
			MeanMS:      ms(lat.Avg),
			P50MS:       ms(lat.Percentile(50)),
			P95MS:       ms(lat.Percentile(95)),
			MinMS:       ms(lat.Min),
			MaxMS:       ms(lat.Max),
			AccPct:      pctPtr(r.Acc),
			TrainAccPct: pctPtr(r.TrainAcc),
		})
	}
	return out
}

// OpBreakdownFromDiff extracts the per-op-kind executor profile from a
// telemetry snapshot diff (Snapshot.Sub of the registry around a
// measurement), reading the cnnhe_exec_ops_total counters and the
// cnnhe_exec_op_seconds histograms. Returns nil when the diff carries no
// executor activity.
func OpBreakdownFromDiff(diff telemetry.Snapshot) []JSONOpKind {
	byKind := map[string]*JSONOpKind{}
	at := func(kind string) *JSONOpKind {
		if k, ok := byKind[kind]; ok {
			return k
		}
		k := &JSONOpKind{Kind: kind}
		byKind[kind] = k
		return k
	}
	if f, ok := diff.Family("cnnhe_exec_ops_total"); ok {
		for _, s := range f.Series {
			if kind := s.Label("kind"); kind != "" && s.Value > 0 {
				at(kind).Count = int64(s.Value)
			}
		}
	}
	if f, ok := diff.Family("cnnhe_exec_op_seconds"); ok {
		for _, s := range f.Series {
			if kind := s.Label("kind"); kind != "" && s.Count > 0 {
				k := at(kind)
				k.Calls = s.Count
				k.TotalMS = 1000 * s.Value // histogram sum is in seconds
			}
		}
	}
	if len(byKind) == 0 {
		return nil
	}
	out := make([]JSONOpKind, 0, len(byKind))
	for _, k := range byKind {
		out = append(out, *k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// WriteJSON writes the benchmark report to path, creating or truncating
// the file. opBreakdown may be nil (telemetry disabled); graphs may be
// nil (no models benchmarked).
func WriteJSON(path string, cfg Config, ts time.Time, rows []JSONRow, opBreakdown map[string][]JSONOpKind, graphs *GraphReport) error {
	rep := JSONReport{
		SchemaVersion: JSONSchemaVersion,
		Timestamp:     ts.UTC().Format(time.RFC3339),
		LogN:          cfg.LogN,
		Runs:          cfg.Runs,
		AccImages:     cfg.AccImages,
		Seed:          cfg.Seed,
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		Rows:          rows,
		OpBreakdown:   opBreakdown,
	}
	if graphs != nil {
		rep.Optimizer = graphs.Optimizer
		rep.GraphBefore = graphs.Before
		rep.GraphAfter = graphs.After
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal json report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
