package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"cnnhe/internal/ckks"
	"cnnhe/internal/client"
	"cnnhe/internal/guard"
	"cnnhe/internal/henn"
	"cnnhe/internal/henn/exec"
	"cnnhe/internal/henn/ir"
	"cnnhe/internal/keys"
	"cnnhe/internal/telemetry"
)

// KeyedConfig sizes a Keyed handler — the client-held-key side of the
// service, where the server evaluates under keys it never generated.
type KeyedConfig struct {
	// Ctx is the server's CKKS instantiation; registered bundles must
	// match its params digest exactly.
	Ctx *ckks.Context
	// Plan is the single-image inference plan evaluated on the encrypted
	// route. Its rotation set is the registration requirement.
	Plan *henn.Plan
	// Sharded is the multi-ciphertext alternative to Plan: an input image
	// that exceeds the slot count travels as the plan's shard set (one
	// ciphertext frame per shard, back to back in the request body) and
	// /v1/info advertises the input manifest. Exactly one of Plan and
	// Sharded must be set.
	Sharded *henn.ShardedPlan
	// Model and Backend name the loaded architecture and engine for
	// GET /v1/info.
	Model   string
	Backend string
	// MaxClients bounds the key store (0 selects keys.DefaultMaxEntries);
	// KeyTTL expires idle bundles (0 disables).
	MaxClients int
	KeyTTL     time.Duration
	// StoreDir, when non-empty, makes the key store durable: registered
	// bundles are snapshotted to disk and recovered (re-verified) on
	// restart, so a crashed worker keeps its client state.
	StoreDir string
	// RequestTimeout bounds one encrypted evaluation (0 disables).
	RequestTimeout time.Duration
	// Guard configures the per-client guarded engine; zero value selects
	// guard.DefaultConfig.
	Guard guard.Config
}

// Keyed serves the encrypted wire protocol:
//
//	GET  /v1/info                plan + parameter manifest
//	POST /v1/keys                register an evaluation-key bundle
//	POST /v1/classify/encrypted  ciphertext in, encrypted logits out
//
// The encrypted route runs the lowered op-graph on an eval-only engine
// (henn.RNSEvalEngine) built from the client's registered bundle: no
// secret key, encryptor, or decryptor is reachable from it, so the
// handler cannot decrypt what it computes on even in principle.
type Keyed struct {
	cfg   KeyedConfig
	store *keys.Store
	info  client.InfoResponse
	// bundleLimit and ctLimit bound request bodies, computed from the
	// exact wire sizes of the largest legitimate payloads (ctLimit covers
	// all shard frames of one request).
	bundleLimit int64
	ctLimit     int64
	// shards is how many ciphertext frames one classify body carries
	// (1 for an unsharded Plan).
	shards int
}

// keyedEval is the per-client evaluation state cached on a store entry:
// a guarded eval-only engine plus the plan's graph prepared (plaintext
// operands pre-encoded) against it. Guarded by Entry.Mu.
type keyedEval struct {
	g    *guard.GuardedEngine
	prep *exec.Prepared
}

// bundleSlackRotations is the headroom beyond the plan's rotation
// requirement a registered bundle may carry (clients derive their set
// from /v1/info, but a few extra keys — e.g. conjugation — are
// harmless).
const bundleSlackRotations = 4

// NewKeyed builds the keyed handler for one plan on one CKKS context.
func NewKeyed(cfg KeyedConfig) (*Keyed, error) {
	if cfg.Ctx == nil {
		return nil, fmt.Errorf("serve: KeyedConfig.Ctx is required")
	}
	if (cfg.Plan == nil) == (cfg.Sharded == nil) {
		return nil, fmt.Errorf("serve: exactly one of KeyedConfig.Plan and KeyedConfig.Sharded is required")
	}
	if cfg.Guard == (guard.Config{}) {
		cfg.Guard = guard.DefaultConfig()
	}
	inputDim, outputDim := 0, 0
	shards := 1
	var rotations []int
	var manifest string
	if cfg.Plan != nil {
		rotations = cfg.Plan.Rotations()
		inputDim, outputDim = cfg.Plan.InputDim, cfg.Plan.OutputDim
	} else {
		rotations = cfg.Sharded.Rotations()
		inputDim, outputDim = cfg.Sharded.InputDim, cfg.Sharded.OutputDim
		shards = cfg.Sharded.NumShards()
		manifest = client.EncodeManifest(cfg.Sharded.Input)
	}
	store, err := keys.NewStore(keys.Config{
		Ctx:               cfg.Ctx,
		RequiredRotations: rotations,
		MaxEntries:        cfg.MaxClients,
		TTL:               cfg.KeyTTL,
		Dir:               cfg.StoreDir,
	})
	if err != nil {
		return nil, err
	}
	p := cfg.Ctx.Params
	k := &Keyed{
		cfg:   cfg,
		store: store,
		info: client.InfoResponse{
			Model:          cfg.Model,
			Backend:        cfg.Backend,
			InputDim:       inputDim,
			OutputDim:      outputDim,
			Slots:          p.Slots(),
			Levels:         p.MaxLevel(),
			Rotations:      rotations,
			Params:         client.ParamsInfoOf(p),
			EncryptedRoute: true,
			Shards:         shards,
			ShardManifest:  manifest,
		},
		bundleLimit: int64(cfg.Ctx.KeyBundleWireSize(len(rotations)+bundleSlackRotations)) + 1024,
		ctLimit:     int64(shards)*(int64(cfg.Ctx.CiphertextWireSize(p.MaxLevel()))+1024) + 1024,
		shards:      shards,
	}
	return k, nil
}

// Store exposes the bundle store (tests and diagnostics).
func (k *Keyed) Store() *keys.Store { return k.store }

// Close stops the store's background compactor. Registered bundles stay
// on disk for the next process.
func (k *Keyed) Close() { k.store.Close() }

// Routes mounts the /v1 endpoints on mux.
func (k *Keyed) Routes(mux *http.ServeMux) {
	mux.HandleFunc(client.PathInfo, k.handleInfo)
	mux.HandleFunc(client.PathKeys, k.handleKeys)
	mux.HandleFunc(client.PathClassifyEncrypted, k.handleClassifyEncrypted)
}

// Handler returns a mux serving only the /v1 endpoints.
func (k *Keyed) Handler() http.Handler {
	mux := http.NewServeMux()
	k.Routes(mux)
	return mux
}

func (k *Keyed) handleInfo(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "GET only"})
		return
	}
	writeJSON(w, http.StatusOK, k.info)
}

func (k *Keyed) handleKeys(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, k.bundleLimit))
	if err != nil {
		k.writeKeyedError(w, err, "reading key bundle", telemetry.TraceContext{})
		return
	}
	entry, err := k.store.Register(data)
	if err != nil {
		k.writeKeyedError(w, err, "registering key bundle", telemetry.TraceContext{})
		return
	}
	keyedTel().request("keys_ok")
	writeJSON(w, http.StatusOK, client.RegisterResponse{
		Fingerprint: entry.Fingerprint,
		Rotations:   len(entry.Bundle.RTK.Keys),
	})
}

func (k *Keyed) handleClassifyEncrypted(w http.ResponseWriter, r *http.Request) {
	tc, _ := beginTrace(w, r)
	t0 := time.Now()
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorBody{Error: "POST only"})
		return
	}
	fp := r.Header.Get(client.HeaderKeyFingerprint)
	if fp == "" {
		keyedTel().request("bad_request")
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error:   client.HeaderKeyFingerprint + " header is required",
			TraceID: tc.TraceIDString(), RequestID: tc.SpanIDString()})
		return
	}
	entry, err := k.store.Get(fp)
	if err != nil {
		k.writeKeyedError(w, err, "looking up key bundle", tc)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, k.ctLimit))
	if err != nil {
		k.writeKeyedError(w, err, "reading ciphertext", tc)
		return
	}
	// The body carries exactly one self-delimiting ciphertext frame per
	// input shard, back to back.
	body := bytes.NewReader(data)
	cts := make([]*ckks.Ciphertext, k.shards)
	for i := range cts {
		if cts[i], err = k.cfg.Ctx.ReadCiphertext(body); err != nil {
			k.writeKeyedError(w, err, fmt.Sprintf("decoding ciphertext %d/%d", i+1, k.shards), tc)
			return
		}
	}
	if body.Len() != 0 {
		keyedTel().request("bad_request")
		writeJSON(w, http.StatusBadRequest, errorBody{
			Error:   fmt.Sprintf("%d trailing bytes after %d ciphertext frame(s)", body.Len(), k.shards),
			TraceID: tc.TraceIDString(), RequestID: tc.SpanIDString()})
		return
	}

	ctx, cancel, err := deadlineContext(r.Context(), r)
	defer cancel()
	if err != nil {
		keyedTel().request("bad_request")
		writeJSON(w, http.StatusBadRequest, errorBody{Error: err.Error(),
			TraceID: tc.TraceIDString(), RequestID: tc.SpanIDString()})
		return
	}
	if k.cfg.RequestTimeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, k.cfg.RequestTimeout)
		defer tcancel()
	}

	// One evaluation at a time per client: the evaluator and guard state
	// cached on the entry are not safe for concurrent runs. The wait for
	// the per-client lock is this route's queue time.
	lockStart := time.Now()
	entry.Mu.Lock()
	lockWait := time.Since(lockStart)
	defer entry.Mu.Unlock()
	ev, err := k.evalFor(entry)
	if err != nil {
		keyedTel().request("error")
		k.finishEncrypted(tc, "error", t0, lockWait, 0, nil, err)
		writeJSON(w, http.StatusInternalServerError, errorBody{
			Error:   fmt.Sprintf("preparing evaluation under client keys: %v", err),
			TraceID: tc.TraceIDString(), RequestID: tc.SpanIDString()})
		return
	}
	if ev.g.Err() != nil {
		// A previous request under these keys latched the guard; start
		// this one clean.
		_ = ev.g.Reset()
	}
	adopted := make([]ir.Ct, len(cts))
	for i, ct := range cts {
		if adopted[i], err = ev.g.Adopt(ct); err != nil {
			keyedTel().request("bad_ciphertext")
			k.finishEncrypted(tc, "bad_ciphertext", t0, lockWait, 0, nil, err)
			writeJSON(w, http.StatusBadRequest, errorBody{
				Error:   fmt.Sprintf("rejecting ciphertext %d/%d: %v", i+1, len(cts), err),
				TraceID: tc.TraceIDString(), RequestID: tc.SpanIDString()})
			return
		}
	}
	rec := telemetry.NewRunRecorder()
	rec.SetTrace(tc.TraceIDString(), tc.SpanIDString())
	rctx := telemetry.WithRecorder(telemetry.WithTraceContext(ctx, tc), rec)
	// Bind the guard to this request for the duration of the run (sound:
	// entry.Mu serializes runs), so a guard abort logs the trace ID.
	ev.g.SetRunContext(rctx)
	defer ev.g.SetRunContext(nil)
	res, err := ev.prep.RunEncrypted(rctx, adopted, exec.Options{})
	if err != nil {
		_ = ev.g.Reset()
		k.finishEncrypted(tc, evalOutcome(err), t0, lockWait, res.Eval, rec, err)
		k.writeEvalError(w, res, err, tc)
		return
	}
	out, ok := guard.Underlying(res.Out).(*ckks.Ciphertext)
	if !ok {
		err := fmt.Errorf("unexpected output ciphertext type %T", guard.Underlying(res.Out))
		keyedTel().request("error")
		k.finishEncrypted(tc, "error", t0, lockWait, res.Eval, rec, err)
		writeJSON(w, http.StatusInternalServerError, errorBody{Error: err.Error(),
			TraceID: tc.TraceIDString(), RequestID: tc.SpanIDString()})
		return
	}
	keyedTel().request("ok")
	keyedTel().evaluated(res.Eval)
	k.finishEncrypted(tc, "ok", t0, lockWait, res.Eval, rec, nil)
	w.Header().Set("Content-Type", client.ContentTypeCKKS)
	w.Header().Set(client.HeaderEvalMillis,
		strconv.FormatFloat(float64(res.Eval)/float64(time.Millisecond), 'f', 3, 64))
	if err := k.cfg.Ctx.WriteCiphertext(w, out); err != nil {
		// Headers are gone; all we can do is drop the connection.
		return
	}
}

// evalOutcome names an encrypted-evaluation failure for the slog line
// and flight entry, mirroring writeEvalError's status mapping.
func evalOutcome(err error) string {
	var se *guard.StageError
	switch {
	case errors.As(err, &se):
		return "bad_ciphertext"
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return "timeout"
	default:
		return "error"
	}
}

// finishEncrypted emits the keyed route's request slog line and flight
// entry. The per-client lock wait plays the queue role; a non-nil rec
// additionally parks the span recording for ?trace= export.
func (k *Keyed) finishEncrypted(tc telemetry.TraceContext, outcome string, start time.Time,
	lockWait, eval time.Duration, rec *telemetry.RunRecorder, err error) {
	total := time.Since(start)
	logRequest("classify_encrypted", tc, outcome, total, err)
	f := telemetry.Flight()
	sum := telemetry.RequestSummary{
		TraceID:   tc.TraceIDString(),
		RequestID: tc.SpanIDString(),
		Route:     "classify_encrypted",
		Outcome:   outcome,
		Start:     start,
		QueueMS:   float64(lockWait) / float64(time.Millisecond),
		EvalMS:    float64(eval) / float64(time.Millisecond),
		TotalMS:   float64(total) / float64(time.Millisecond),
		TopOps:    telemetry.TopOpsFromRecorder(rec, 3),
	}
	if err != nil {
		sum.Error = err.Error()
	}
	f.Record(sum)
	if rec != nil {
		f.RecordTrace(tc.TraceIDString(), rec)
	}
}

// evalFor returns the entry's cached evaluation state, building it on
// first use: an eval-only engine over the client's relinearization and
// rotation keys, wrapped in a guard, with the plan lowered and its
// plaintext operands pre-encoded against it. Caller holds entry.Mu.
func (k *Keyed) evalFor(entry *keys.Entry) (*keyedEval, error) {
	if ev, ok := entry.Eval.(*keyedEval); ok {
		return ev, nil
	}
	eng := henn.NewRNSEvalEngine(k.cfg.Ctx, entry.Bundle.RLK, entry.Bundle.RTK)
	g := guard.New(eng, k.cfg.Guard)
	var graph *ir.Graph
	var err error
	if k.cfg.Plan != nil {
		graph, err = k.cfg.Plan.Lower(g)
	} else {
		graph, err = k.cfg.Sharded.Lower(g)
	}
	if err != nil {
		return nil, err
	}
	prep, err := exec.Prepare(g, graph)
	if err != nil {
		return nil, err
	}
	ev := &keyedEval{g: g, prep: prep}
	entry.Eval = ev
	return ev, nil
}

// writeKeyedError maps protocol-level failures (body reads, bundle
// registration, fingerprint lookups, ciphertext decodes) to HTTP. A
// valid tc (classify route; handleKeys passes the zero value) stamps
// the body with the request's join IDs.
func (k *Keyed) writeKeyedError(w http.ResponseWriter, err error, doing string, tc telemetry.TraceContext) {
	body := errorBody{}
	if tc.Valid() {
		body.TraceID, body.RequestID = tc.TraceIDString(), tc.SpanIDString()
	}
	var mbe *http.MaxBytesError
	switch {
	case errors.As(err, &mbe):
		keyedTel().request("too_large")
		body.Error = fmt.Sprintf("%s: body exceeds %d bytes", doing, mbe.Limit)
		writeJSON(w, http.StatusRequestEntityTooLarge, body)
	case errors.Is(err, keys.ErrNotFound):
		keyedTel().request("unknown_key")
		body.Error = err.Error()
		writeJSON(w, http.StatusNotFound, body)
	case errors.Is(err, keys.ErrParamsMismatch), errors.Is(err, keys.ErrMissingRotations):
		keyedTel().request("incompatible_key")
		body.Error = err.Error()
		writeJSON(w, http.StatusConflict, body)
	case errors.Is(err, ckks.ErrFormat), errors.Is(err, ckks.ErrChecksum):
		keyedTel().request("bad_request")
		body.Error = fmt.Sprintf("%s: %v", doing, err)
		writeJSON(w, http.StatusBadRequest, body)
	default:
		keyedTel().request("error")
		body.Error = fmt.Sprintf("%s: %v", doing, err)
		writeJSON(w, http.StatusInternalServerError, body)
	}
}

// writeEvalError maps an encrypted-evaluation failure to HTTP. Guard
// stage errors mean the client's ciphertext drove the evaluation out of
// its invariants — the client's fault, 400; timeouts are 504; anything
// else is a server error.
func (k *Keyed) writeEvalError(w http.ResponseWriter, res *exec.Result, err error, tc telemetry.TraceContext) {
	body := errorBody{TraceID: tc.TraceIDString(), RequestID: tc.SpanIDString()}
	var se *guard.StageError
	switch {
	case errors.As(err, &se):
		keyedTel().request("bad_ciphertext")
		body.Error = fmt.Sprintf("evaluation rejected in stage %s: %v", res.FailedStage, err)
		writeJSON(w, http.StatusBadRequest, body)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		keyedTel().request("timeout")
		body.Error = err.Error()
		writeJSON(w, http.StatusGatewayTimeout, body)
	default:
		keyedTel().request("error")
		body.Error = fmt.Sprintf("evaluating in stage %s: %v", res.FailedStage, err)
		writeJSON(w, http.StatusInternalServerError, body)
	}
}

// keyedTelSet instruments the encrypted routes. Nil-safe like telSet.
type keyedTelSet struct {
	outcomes map[string]*telemetry.Counter
	evalLat  *telemetry.Histogram
}

var (
	keyedTelOnce sync.Once
	keyedTelVal  *keyedTelSet
)

var keyedOutcomeNames = []string{
	"ok", "keys_ok", "bad_request", "bad_ciphertext", "unknown_key",
	"incompatible_key", "too_large", "timeout", "error",
}

func keyedTel() *keyedTelSet {
	if !telemetry.Enabled() {
		return nil
	}
	keyedTelOnce.Do(func() {
		r := telemetry.Default()
		t := &keyedTelSet{
			outcomes: map[string]*telemetry.Counter{},
			evalLat: r.Histogram("cnnhe_serve_encrypted_eval_seconds",
				"homomorphic evaluation wall time on the encrypted route", nil),
		}
		for _, o := range keyedOutcomeNames {
			t.outcomes[o] = r.Counter("cnnhe_serve_encrypted_requests_total",
				"encrypted-protocol requests by outcome", telemetry.L("outcome", o))
		}
		keyedTelVal = t
	})
	return keyedTelVal
}

func (t *keyedTelSet) request(outcome string) {
	if t == nil {
		return
	}
	t.outcomes[outcome].Inc()
}

func (t *keyedTelSet) evaluated(d time.Duration) {
	if t == nil {
		return
	}
	t.evalLat.ObserveDuration(d)
}
