package henn

import (
	"sync"

	"cnnhe/internal/henn/ir/opt"
	"cnnhe/internal/telemetry"
)

// inferTelSet bundles the inference-level instruments. Registered once,
// on the first inference that finds telemetry enabled.
type inferTelSet struct {
	inflight    *telemetry.Gauge
	infers      *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
}

var (
	inferTelOnce sync.Once
	inferTelVal  *inferTelSet
)

// inferTel returns the instrument set, or nil when telemetry is
// disabled (the hot-path cost of the off state is this one flag load).
func inferTel() *inferTelSet {
	if !telemetry.Enabled() {
		return nil
	}
	inferTelOnce.Do(func() {
		r := telemetry.Default()
		inferTelVal = &inferTelSet{
			inflight: r.Gauge("cnnhe_infer_inflight",
				"encrypted inferences currently executing"),
			infers: r.Counter("cnnhe_infer_total",
				"encrypted inferences started"),
			cacheHits: r.Counter("cnnhe_prepare_cache_hits_total",
				"plan preparations served from the per-engine prepared-graph cache"),
			cacheMisses: r.Counter("cnnhe_prepare_cache_misses_total",
				"plan preparations that lowered and encoded a fresh graph"),
		}
	})
	return inferTelVal
}

// telInferStart counts one inference and raises the in-flight gauge;
// the returned func lowers it again (always non-nil).
func telInferStart() func() {
	t := inferTel()
	if t == nil {
		return func() {}
	}
	t.infers.Inc()
	t.inflight.Add(1)
	return func() { t.inflight.Add(-1) }
}

// telPrepare counts one prepared-graph cache lookup.
func telPrepare(hit bool) {
	t := inferTel()
	if t == nil {
		return
	}
	if hit {
		t.cacheHits.Inc()
	} else {
		t.cacheMisses.Inc()
	}
}

// optTelSet bundles the graph-optimizer instruments (cnnhe_opt_*).
// Registered once, on the first optimizer run with telemetry enabled.
type optTelSet struct {
	runs *telemetry.Counter
	mu   sync.Mutex
	// per pass-name counters, created lazily (the pass list is dynamic)
	passRemoved map[string]*telemetry.Counter
	opsBefore   *telemetry.Counter
	opsAfter    *telemetry.Counter
	callsBefore *telemetry.Counter
	callsAfter  *telemetry.Counter
}

var (
	optTelOnce sync.Once
	optTelVal  *optTelSet
)

func optTel() *optTelSet {
	if !telemetry.Enabled() {
		return nil
	}
	optTelOnce.Do(func() {
		r := telemetry.Default()
		optTelVal = &optTelSet{
			runs: r.Counter("cnnhe_opt_runs_total",
				"graph optimizer pipeline runs"),
			passRemoved: map[string]*telemetry.Counter{},
			opsBefore: r.Counter("cnnhe_opt_ops_before_total",
				"graph ops entering the optimizer"),
			opsAfter: r.Counter("cnnhe_opt_ops_after_total",
				"graph ops leaving the optimizer"),
			callsBefore: r.Counter("cnnhe_opt_engine_calls_before_total",
				"engine calls per run before optimization"),
			callsAfter: r.Counter("cnnhe_opt_engine_calls_after_total",
				"engine calls per run after optimization"),
		}
	})
	return optTelVal
}

// telOptimize records one optimizer pipeline outcome.
func telOptimize(res *opt.Result) {
	t := optTel()
	if t == nil || res == nil {
		return
	}
	t.runs.Inc()
	t.opsBefore.Add(int64(res.Before.Ops))
	t.opsAfter.Add(int64(res.After.Ops))
	t.callsBefore.Add(int64(res.Before.EngineCalls))
	t.callsAfter.Add(int64(res.After.EngineCalls))
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, p := range res.Passes {
		c, ok := t.passRemoved[p.Pass]
		if !ok {
			c = telemetry.Default().Counter("cnnhe_opt_pass_removed_ops_total",
				"net ops removed by optimizer pass", telemetry.L("pass", p.Pass))
			t.passRemoved[p.Pass] = c
		}
		c.Add(int64(p.OpsBefore - p.OpsAfter))
	}
}
