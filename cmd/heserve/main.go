// Command heserve is the micro-batching encrypted-inference daemon: it
// accepts single-image classification requests over HTTP, aggregates
// them into packed micro-batches (the paper's SIMD amortization, Table
// I), evaluates each batch as one ciphertext through the shared
// prepared op graph under the guard runtime, and fans the per-block
// logits back out to the waiting requests.
//
// Endpoints:
//
//	POST /classify       {"image": [pixels in [0,255], length 784]}
//	                     → {"class", "logits", "batch_size", "eval_ms"}
//	GET  /healthz        liveness (503 once draining)
//	GET  /v1/info        plan + CKKS parameter manifest (rns backend)
//	POST /v1/keys        register a client evaluation-key bundle
//	POST /v1/classify/encrypted
//	                     ciphertext in, encrypted logits out — evaluated
//	                     under the client's keys; the server holds no
//	                     secret key on this path (see hectl)
//	GET  /metrics        Prometheus text (queue depth, batch fill ratio,
//	                     request/batch latency histograms, …)
//	GET  /metrics.json   the same snapshot as JSON
//	GET  /debug/pprof/   live profiling
//
// Overload returns 429 with a Retry-After hint instead of queueing
// without bound; SIGINT/SIGTERM stops intake, drains queued requests
// through final batches, and exits cleanly.
//
// Usage:
//
//	heserve -model models/cnn1.gob -addr localhost:8000 [-batch 4]
//	        [-logn 12] [-levels 0] [-backend rns|big] [-max-wait 10ms]
//	        [-queue 16] [-request-timeout 2m] [-target-latency 0]
//	        [-max-clients 16] [-key-ttl 0] [-key-store dir]
//	        [-chaos spec] [-chaos-seed 1] [-log-level info]
//
// -key-store makes registered client key bundles durable: each bundle is
// snapshotted to the directory and re-verified on restart, so a killed
// worker comes back still knowing its clients. -chaos wraps the listener
// with seeded network-fault injection (see internal/chaos) for soak and
// chaos testing.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"cnnhe/internal/chaos"
	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/guard"
	"cnnhe/internal/henn"
	"cnnhe/internal/henn/ir/opt"
	"cnnhe/internal/nn"
	"cnnhe/internal/ring"
	"cnnhe/internal/serve"
	"cnnhe/internal/telemetry"
)

// parseLevel maps a -log-level flag value to a slog level.
func parseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	}
	return slog.LevelInfo
}

// buildEngine mirrors heinfer's parameter construction: a modulus chain
// sized to the plan's depth at the requested ring degree, wrapped in the
// guard so failures classify instead of decrypting to garbage. levels
// pins the chain's usable depth (0 = automatic: max(plan depth, 12)).
// For the rns backend the inner engine's CKKS context is also returned,
// so the encrypted key-holder routes can share the exact instantiation.
func buildEngine(depth int, rotations []int, backend string, logN, levels int, seed int64) (henn.Engine, *ckks.Context, error) {
	k := depth + 1
	if k < 13 {
		k = 13
	}
	if levels > 0 {
		k = levels + 1
	}
	bits := []int{40}
	for i := 0; i < k-2; i++ {
		bits = append(bits, 26)
	}
	bits = append(bits, 40)
	params, err := ckks.NewParameters(logN, bits, 60, 1, math.Exp2(26))
	if err != nil {
		return nil, nil, fmt.Errorf("building CKKS parameters: %w", err)
	}
	if depth > params.MaxLevel() {
		return nil, nil, fmt.Errorf("plan needs %d levels but the modulus chain provides %d", depth, params.MaxLevel())
	}
	var inner henn.Engine
	var rnsCtx *ckks.Context
	switch backend {
	case "rns":
		e, err := henn.NewRNSEngine(params, rotations, seed+7)
		if err != nil {
			return nil, nil, err
		}
		inner, rnsCtx = e, e.Ctx
	case "big":
		bp, err := ckksbig.FromRNSParameters(params)
		if err != nil {
			return nil, nil, err
		}
		e, err := henn.NewBigEngine(bp, rotations, seed+7)
		if err != nil {
			return nil, nil, err
		}
		inner = e
	default:
		return nil, nil, fmt.Errorf("unknown backend %q", backend)
	}
	return guard.New(inner, guard.DefaultConfig()), rnsCtx, nil
}

// shardedClassifyHandler serves the single-image plaintext JSON route
// for a sharded plan. No micro-batching: an image larger than the slot
// count cannot share a ciphertext with another, so requests evaluate one
// at a time (the mutex also keeps the guarded engine single-threaded).
func shardedClassifyHandler(sp *henn.ShardedPlan, e henn.Engine, timeout time.Duration) http.Handler {
	var mu sync.Mutex
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON := func(status int, v any) {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(status)
			_ = json.NewEncoder(w).Encode(v)
		}
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeJSON(http.StatusMethodNotAllowed, map[string]string{"error": "POST only"})
			return
		}
		var in struct {
			Image []float64 `json:"image"`
		}
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<22)).Decode(&in); err != nil {
			writeJSON(http.StatusBadRequest, map[string]string{"error": "decoding request: " + err.Error()})
			return
		}
		ctx := r.Context()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		mu.Lock()
		logits, rep, err := sp.InferCtx(ctx, e, in.Image)
		mu.Unlock()
		if err != nil {
			status := http.StatusInternalServerError
			if errors.Is(err, henn.ErrBadInput) {
				status = http.StatusBadRequest
			} else if errors.Is(err, context.DeadlineExceeded) {
				status = http.StatusGatewayTimeout
			}
			writeJSON(status, map[string]string{"error": err.Error()})
			return
		}
		writeJSON(http.StatusOK, map[string]any{
			"class":      logits.Argmax(),
			"logits":     []float64(logits),
			"batch_size": 1,
			"eval_ms":    float64(rep.Eval) / float64(time.Millisecond),
		})
	})
}

func main() {
	var (
		modelPath  = flag.String("model", "models/cnn1.gob", "trained SLAF model (.gob)")
		addr       = flag.String("addr", "localhost:8000", "HTTP listen address")
		batch      = flag.Int("batch", 4, "images packed per ciphertext (must divide the slot count)")
		logN       = flag.Int("logn", 12, "ring degree exponent (14 = paper scale)")
		levels     = flag.Int("levels", 0, "usable modulus-chain depth (0 = auto from plan depth)")
		backend    = flag.String("backend", "rns", "rns (CKKS-RNS) or big (multiprecision CKKS)")
		seed       = flag.Int64("seed", 1, "random seed")
		maxWait    = flag.Duration("max-wait", 10*time.Millisecond, "max time the oldest request waits for its batch to fill")
		queueSize  = flag.Int("queue", 0, "request queue capacity (0 = 4×batch); a full queue answers 429")
		reqTimeout = flag.Duration("request-timeout", 2*time.Minute, "per-request deadline, queue wait included (0 = none)")
		drainWait  = flag.Duration("drain-timeout", time.Minute, "shutdown budget for draining queued requests")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		maxClients = flag.Int("max-clients", 0, "registered key bundles kept (0 = default, LRU beyond)")
		keyTTL     = flag.Duration("key-ttl", 0, "idle expiry for registered key bundles (0 = none)")
		keyStore   = flag.String("key-store", "", "directory for durable key-bundle snapshots (empty = in-memory only)")
		targetLat  = flag.Duration("target-latency", 0, "batch-latency SLO driving adaptive admission (0 = request-timeout/2)")
		chaosSpec  = flag.String("chaos", "", "network fault spec, e.g. 'latency:ms=100:p=0.3,reset:p=0.05' (testing only)")
		chaosSeed  = flag.Int64("chaos-seed", 1, "seed for -chaos fault randomness")
		optFlag    = flag.String("opt", "on", "graph optimizer: on, off, exact, or a comma-separated pass list")
		ringPar    = flag.Bool("ring-parallel", ring.ParallelDefault(), "limb/slab-parallel ring kernels (default: on when GOMAXPROCS > 1)")
	)
	flag.Parse()

	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr,
		&slog.HandlerOptions{Level: parseLevel(*logLevel)})))
	ring.SetParallelDefault(*ringPar)
	slog.Info("ring kernels", "ring_parallel", *ringPar, "gomaxprocs", runtime.GOMAXPROCS(0))
	fatal := func(msg string, args ...any) {
		slog.Error(msg, args...)
		os.Exit(1)
	}

	// The serving instruments register on the default registry; enable
	// collection before the server resolves them.
	telemetry.SetEnabled(true)

	model, arch, err := nn.LoadModel(*modelPath)
	if err != nil {
		fatal("loading model failed (run hetrain first)", "model", *modelPath, "err", err)
	}
	slots := 1 << (*logN - 1)
	optOpts, err := opt.ParseFlag(*optFlag)
	if err != nil {
		fatal("bad -opt flag", "opt", *optFlag, "err", err)
	}

	// CompileShardedAuto decides the serving shape: a 1×1 grid keeps the
	// micro-batching path; a model whose input tensor exceeds the slot
	// count (CNN3 on CIFAR-10) serves through the sharded pipeline, where
	// each image travels as NumShards ciphertexts.
	sp, err := henn.CompileShardedAuto(model, slots)
	if err != nil {
		fatal("compiling plan failed", "model", *modelPath, "err", err)
	}

	mux := http.NewServeMux()
	var srv *serve.Server // micro-batching server; nil in sharded mode
	var engine henn.Engine
	batchSize := *batch
	if sp.NumShards() > 1 {
		if *batch != 1 {
			slog.Info("sharded plan serves single-image requests; ignoring -batch", "batch", *batch)
		}
		batchSize = 1
		sp.Opt = optOpts
		slog.Info("compiled sharded plan", "model", arch, "slots", slots,
			"shards", sp.NumShards(), "manifest", sp.Input.String(),
			"depth", sp.Depth, "optimizer", optOpts.Setting())
		var rnsCtx *ckks.Context
		engine, rnsCtx, err = buildEngine(sp.Depth, sp.Rotations(), *backend, *logN, *levels, *seed)
		if err != nil {
			fatal("creating engine failed", "backend", *backend, "err", err)
		}
		t0 := time.Now()
		if err := sp.Warm(engine); err != nil {
			fatal("warming sharded plan failed", "err", err)
		}
		slog.Info("plan warmed", "in", time.Since(t0).Round(time.Millisecond))
		mux.Handle("/classify", shardedClassifyHandler(sp, engine, *reqTimeout))
		mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusOK)
			fmt.Fprintln(w, "ok")
		})
		if rnsCtx != nil {
			keyed, err := serve.NewKeyed(serve.KeyedConfig{
				Ctx:            rnsCtx,
				Sharded:        sp,
				Model:          arch,
				Backend:        engine.Name(),
				MaxClients:     *maxClients,
				KeyTTL:         *keyTTL,
				StoreDir:       *keyStore,
				RequestTimeout: *reqTimeout,
			})
			if err != nil {
				fatal("starting keyed routes failed", "err", err)
			}
			defer keyed.Close()
			keyed.Routes(mux)
			slog.Info("encrypted key-holder routes mounted", "shards", sp.NumShards(),
				"rotations", len(sp.Rotations()), "max_clients", *maxClients,
				"key_store", *keyStore, "resident_bundles", keyed.Store().Len())
		}
	} else {
		bp, err := henn.CompileBatched(model, slots, *batch)
		if err != nil {
			fatal("compiling batched plan failed", "model", *modelPath, "batch", *batch, "err", err)
		}
		bp.Plan.Opt = optOpts
		slog.Info("compiled batched plan", "model", arch, "slots", slots,
			"batch", bp.Batch, "block", bp.BlockSize, "depth", bp.Plan.Depth,
			"optimizer", optOpts.Setting())

		var rnsCtx *ckks.Context
		engine, rnsCtx, err = buildEngine(bp.Plan.Depth, bp.Plan.Rotations(), *backend, *logN, *levels, *seed)
		if err != nil {
			fatal("creating engine failed", "backend", *backend, "err", err)
		}

		// New warms the plan (lowering + ahead-of-time plaintext encoding),
		// so startup pays the one-time cost, not the first request.
		t0 := time.Now()
		srv, err = serve.New(serve.Config{
			Batch:          bp,
			Engine:         engine,
			MaxWait:        *maxWait,
			QueueSize:      *queueSize,
			RequestTimeout: *reqTimeout,
			TargetLatency:  *targetLat,
		})
		if err != nil {
			fatal("starting batch server failed", "err", err)
		}
		slog.Info("plan warmed", "in", time.Since(t0).Round(time.Millisecond))
		batchSize = bp.Batch

		mux.Handle("/classify", srv.Handler())
		mux.Handle("/healthz", srv.Handler())

		// The client-held-key protocol: /v1/info, /v1/keys and
		// /v1/classify/encrypted. rns backend only — the encrypted route
		// evaluates on an eval-only RNS engine built from each client's
		// registered bundle, so the server never holds a key that could
		// decrypt what it computes on.
		if rnsCtx != nil {
			base, err := henn.Compile(model, slots)
			if err != nil {
				fatal("compiling single-image plan failed", "model", *modelPath, "err", err)
			}
			base.Opt = optOpts
			keyed, err := serve.NewKeyed(serve.KeyedConfig{
				Ctx:            rnsCtx,
				Plan:           base,
				Model:          arch,
				Backend:        engine.Name(),
				MaxClients:     *maxClients,
				KeyTTL:         *keyTTL,
				StoreDir:       *keyStore,
				RequestTimeout: *reqTimeout,
			})
			if err != nil {
				fatal("starting keyed routes failed", "err", err)
			}
			defer keyed.Close()
			keyed.Routes(mux)
			slog.Info("encrypted key-holder routes mounted",
				"rotations", len(base.Rotations()), "max_clients", *maxClients,
				"key_store", *keyStore, "resident_bundles", keyed.Store().Len())
		}
	}

	tmux := telemetry.Handler(telemetry.Default())
	mux.Handle("/metrics", tmux)
	mux.Handle("/metrics.json", tmux)
	mux.Handle("/debug/", tmux)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal("listening failed", "addr", *addr, "err", err)
	}
	if *chaosSpec != "" {
		inj, cerr := chaos.Parse(*chaosSpec, *chaosSeed)
		if cerr != nil {
			fatal("parsing -chaos spec failed", "spec", *chaosSpec, "err", cerr)
		}
		ln = inj.WrapListener(ln)
		slog.Warn("chaos fault injection armed on the listener",
			"spec", *chaosSpec, "seed", *chaosSeed)
	}
	httpSrv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()
	slog.Info("heserve listening", "url", "http://"+*addr,
		"batch", batchSize, "max_wait", *maxWait, "backend", engine.Name())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errCh:
		fatal("http server failed", "err", err)
	case <-ctx.Done():
	}

	// Graceful stop: close the HTTP listener first (in-flight handlers
	// keep waiting on their batches), then drain the micro-batch queue.
	// The drain budget is a bound, not a promise: when it expires the
	// daemon force-closes the remaining connections and exits anyway —
	// a hung batch must not wedge shutdown.
	slog.Info("shutting down: draining in-flight batches", "budget", *drainWait)
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		slog.Warn("http shutdown incomplete", "err", err)
	}
	if srv == nil {
		slog.Info("drained, exiting")
		return
	}
	if err := srv.Shutdown(dctx); err != nil {
		slog.Warn("drain budget exceeded; force-closing remaining connections",
			"budget", *drainWait, "err", err)
		_ = httpSrv.Close()
	} else {
		slog.Info("drained, exiting")
	}
}
