package bench

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"cnnhe/internal/henn"
)

func TestPaperShapeBits(t *testing.T) {
	cases := []struct {
		k    int
		want []int
	}{
		{1, []int{40}},
		{2, []int{40, 40}},
		{3, []int{40, 26, 40}},
		{13, append(append([]int{40}, repeat26(11)...), 40)},
	}
	for _, c := range cases {
		got := paperShapeBits(c.k)
		if len(got) != len(c.want) {
			t.Fatalf("k=%d: %v", c.k, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("k=%d: %v want %v", c.k, got, c.want)
			}
		}
	}
	// Table II: the k=13 chain must total 366 bits.
	sum := 0
	for _, b := range paperShapeBits(13) {
		sum += b
	}
	if sum != 366 {
		t.Fatalf("13-chain sums to %d, want 366", sum)
	}
}

func repeat26(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 26
	}
	return out
}

func TestConfigs(t *testing.T) {
	d := DefaultConfig()
	if d.LogN != 12 || d.Runs <= 0 || d.TrainN <= 0 {
		t.Fatalf("bad default config %+v", d)
	}
	p := PaperConfig()
	if p.LogN != 14 || p.TrainN != 50000 || p.Epochs != 30 {
		t.Fatalf("bad paper config %+v", p)
	}
}

func TestTableII(t *testing.T) {
	var buf bytes.Buffer
	if err := TableII(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"N | 2^14", "log q | 366", "λ | 128", "HE-standard check"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Table II output missing %q:\n%s", want, out)
		}
	}
}

func TestTableIFormatting(t *testing.T) {
	var buf bytes.Buffer
	measured := []HEResult{
		{Model: "CNN1-HE-RNS", Lat: henn.LatencyStats{Avg: 2270 * time.Millisecond, N: 3}, Acc: 0.9822},
		{Model: "CNN1-HE", Lat: henn.LatencyStats{Avg: 3560 * time.Millisecond, N: 3}, Acc: math.NaN()},
	}
	TableI(&buf, measured, "synthetic")
	out := buf.String()
	if !strings.Contains(out, "CryptoNets") || !strings.Contains(out, "CNN-HE-SLAF") {
		t.Fatal("literature rows missing")
	}
	if !strings.Contains(out, "CNN1-HE-RNS (this repo)") || !strings.Contains(out, "2.27") {
		t.Fatalf("measured row missing:\n%s", out)
	}
	if !strings.Contains(out, "98.22") {
		t.Fatal("accuracy column missing")
	}
	// NaN accuracy renders as a dash.
	if !strings.Contains(out, "| — |") {
		t.Fatal("NaN accuracy should render as a dash")
	}
}

func TestModelsTestSlice(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrainN, cfg.TestN = 64, 16
	cfg.Epochs, cfg.RetrofitEpochs = 0, 0
	cfg.ModelDir = ""
	ms, err := TrainModels(cfg, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	imgs, labels := ms.TestSlice(5)
	if len(imgs) != 5 || len(labels) != 5 {
		t.Fatal("slice sizes wrong")
	}
	if len(imgs[0]) != 28*28 {
		t.Fatal("image length wrong")
	}
	// Clamp beyond the test set.
	imgs, _ = ms.TestSlice(1000)
	if len(imgs) != 16 {
		t.Fatalf("clamp failed: %d", len(imgs))
	}
}

func TestModelCaching(t *testing.T) {
	dir := t.TempDir()
	cfg := DefaultConfig()
	cfg.TrainN, cfg.TestN = 64, 16
	cfg.Epochs, cfg.RetrofitEpochs = 1, 0
	cfg.ModelDir = dir
	var log1 bytes.Buffer
	if _, err := TrainModels(cfg, &log1); err != nil {
		t.Fatal(err)
	}
	var log2 bytes.Buffer
	if _, err := TrainModels(cfg, &log2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(log2.String(), "loaded cached cnn1") {
		t.Fatalf("second run should hit the cache:\n%s", log2.String())
	}
}
