// Command hebombard is an open-loop load generator for heserve with a
// machine-readable SLO report. Open loop means arrivals are scheduled by
// a fixed-rate clock, not by completions — a slow server faces a growing
// backlog exactly as it would in production, so overload behavior
// (429/503 shedding, Retry-After pricing, deadline sheds) is measured
// honestly rather than hidden by a self-throttling client.
//
// Every scheduled request is accounted to exactly one terminal class:
// ok, an HTTP error family, a transport error, or a local in-flight
// overrun. sent − accounted is reported as silently_dropped — the number
// the soak suite (and the CI smoke job) asserts to be zero, because a
// request that vanished without a response is the one failure mode a
// robust server may never exhibit.
//
// Usage:
//
//	hebombard -url http://localhost:8000 -rate 20 -duration 30s
//	          [-deadline 0] [-chaos spec] [-chaos-seed 1]
//	          [-max-inflight 512] [-wait-ready 0] [-out -]
//
// The report is JSON on stdout (or -out): arrival/throughput rates,
// latency percentiles (p50/p95/p99), the error-class histogram, and any
// client-side chaos faults that fired. Exit status: 0 on a clean run,
// 1 if any request was silently dropped, 2 if nothing succeeded at all.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cnnhe/internal/chaos"
	"cnnhe/internal/client"
	"cnnhe/internal/serve"
	"cnnhe/internal/telemetry"
)

// Report is the machine-readable SLO summary.
type Report struct {
	URL        string    `json:"url"`
	RatePerSec float64   `json:"rate_per_sec"`
	Duration   string    `json:"duration"`
	Started    time.Time `json:"started"`
	Ended      time.Time `json:"ended"`

	// Sent counts scheduled arrivals; every one lands in exactly one
	// class below or is a silent drop.
	Sent            int64            `json:"sent"`
	OK              int64            `json:"ok"`
	Errors          map[string]int64 `json:"errors,omitempty"`
	SilentlyDropped int64            `json:"silently_dropped"`

	// ImagesPerSec is successful classifications over wall time (the
	// paper's amortized throughput, measured end to end).
	ImagesPerSec float64 `json:"images_per_sec"`
	LatencyMs    Latency `json:"latency_ms"`

	// ChaosFired reports client-side injected faults, when -chaos is set.
	ChaosFired map[string]int64 `json:"chaos_fired,omitempty"`

	// ServerOptimizer is the graph-optimizer setting the target server
	// reported on /healthz at startup ("off", "on (cse,…)"); an SLO
	// number is not comparable across optimizer settings. Empty when
	// the probe failed (e.g. an older server).
	ServerOptimizer string `json:"server_optimizer,omitempty"`

	// SlowestRequests are the worst successful round trips with their
	// trace IDs — paste one into the server's
	// /debug/requests?trace=<id> to see exactly where its time went.
	SlowestRequests []SlowRequest `json:"slowest_requests,omitempty"`
}

// SlowRequest joins one slow client-side latency to the server's trace.
type SlowRequest struct {
	TraceID   string  `json:"trace_id"`
	RequestID string  `json:"request_id,omitempty"`
	LatencyMs float64 `json:"latency_ms"`
}

// fetchServerOptimizer asks /healthz for the server's optimizer
// setting. Best-effort: any failure returns "".
func fetchServerOptimizer(c *http.Client, url string) string {
	resp, err := c.Get(url + "/healthz")
	if err != nil {
		return ""
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ""
	}
	var body struct {
		Optimizer string `json:"optimizer"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return ""
	}
	return body.Optimizer
}

// Latency summarizes successful-request latency in milliseconds.
type Latency struct {
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

// bombardier runs the open loop and accounts every arrival.
type bombardier struct {
	url      string
	dim      int
	deadline time.Duration
	client   *http.Client
	rng      *rand.Rand // arrival-goroutine image seeds only

	inflight    atomic.Int64
	maxInflight int64
	sent        atomic.Int64
	accounted   atomic.Int64
	ok          atomic.Int64

	mu        sync.Mutex
	errors    map[string]int64
	latencies []time.Duration
	oks       []SlowRequest // successful round trips with trace join keys
}

// account records one terminal outcome for an arrival.
func (b *bombardier) account(class string, d time.Duration) {
	b.accountTraced(class, d, SlowRequest{})
}

// accountTraced is account plus the request's trace join keys (kept for
// the slowest-requests report section on successes).
func (b *bombardier) accountTraced(class string, d time.Duration, sr SlowRequest) {
	b.accounted.Add(1)
	if class == "ok" {
		b.ok.Add(1)
		sr.LatencyMs = float64(d) / float64(time.Millisecond)
		b.mu.Lock()
		b.latencies = append(b.latencies, d)
		if sr.TraceID != "" {
			b.oks = append(b.oks, sr)
		}
		b.mu.Unlock()
		return
	}
	b.mu.Lock()
	b.errors[class]++
	b.mu.Unlock()
}

// classify is one request: build a deterministic random image, POST it,
// classify the outcome.
func (b *bombardier) classify(seed int64) {
	defer b.inflight.Add(-1)
	rng := rand.New(rand.NewSource(seed))
	img := make([]float64, b.dim)
	for i := range img {
		img[i] = float64(rng.Intn(256))
	}
	body, err := json.Marshal(serve.ClassifyRequest{Image: img})
	if err != nil {
		b.account("encode", 0)
		return
	}
	req, err := http.NewRequest(http.MethodPost, b.url+"/classify", bytes.NewReader(body))
	if err != nil {
		b.account("encode", 0)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	tc := telemetry.NewTraceContext()
	req.Header.Set(client.HeaderTraceparent, tc.Traceparent())
	if b.deadline > 0 {
		req.Header.Set(serve.HeaderRequestDeadline, b.deadline.String())
	}
	start := time.Now()
	resp, err := b.client.Do(req)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			b.account("timeout", 0)
		} else {
			b.account("transport", 0)
		}
		return
	}
	defer resp.Body.Close()
	if _, err := io.Copy(io.Discard, resp.Body); err != nil {
		// Status arrived but the body tore off mid-read (truncation,
		// reset): the exchange failed, whatever the status line said.
		b.account("truncated_body", 0)
		return
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		b.accountTraced("ok", time.Since(start), SlowRequest{
			TraceID:   tc.TraceIDString(),
			RequestID: resp.Header.Get(client.HeaderRequestID),
		})
	case resp.StatusCode == http.StatusTooManyRequests:
		b.account("http_429", 0)
	case resp.StatusCode == http.StatusServiceUnavailable:
		b.account("http_503", 0)
	case resp.StatusCode == http.StatusGatewayTimeout:
		b.account("http_504", 0)
	case resp.StatusCode >= 500:
		b.account("http_5xx", 0)
	default:
		b.account(fmt.Sprintf("http_%d", resp.StatusCode), 0)
	}
}

// slowest returns the n worst successful round trips, slowest first.
func slowest(oks []SlowRequest, n int) []SlowRequest {
	sort.Slice(oks, func(i, j int) bool { return oks[i].LatencyMs > oks[j].LatencyMs })
	if len(oks) > n {
		oks = oks[:n]
	}
	return oks
}

// percentile reads the q-th quantile from sorted latencies.
func percentile(sorted []time.Duration, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q * float64(len(sorted)-1))
	return float64(sorted[idx]) / float64(time.Millisecond)
}

func main() {
	var (
		url         = flag.String("url", "http://localhost:8000", "heserve base URL")
		rate        = flag.Float64("rate", 20, "open-loop arrival rate, requests/second")
		duration    = flag.Duration("duration", 30*time.Second, "load duration")
		dim         = flag.Int("dim", 0, "image dimension (0 = fetch from /v1/info)")
		deadline    = flag.Duration("deadline", 0, "X-Request-Deadline to attach (0 = none)")
		reqTimeout  = flag.Duration("request-timeout", 2*time.Minute, "client-side per-request timeout")
		maxInflight = flag.Int64("max-inflight", 512, "cap on concurrent requests; overruns count as local_overrun")
		waitReady   = flag.Duration("wait-ready", 0, "poll /healthz this long before starting (0 = start immediately)")
		chaosSpec   = flag.String("chaos", "", "client-side network fault spec (see internal/chaos)")
		chaosSeed   = flag.Int64("chaos-seed", 1, "seed for -chaos fault randomness")
		seed        = flag.Int64("seed", 1, "image-content seed")
		out         = flag.String("out", "-", "report destination ('-' = stdout)")
	)
	flag.Parse()
	fatal := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, "hebombard: "+format+"\n", args...)
		os.Exit(2)
	}
	if *rate <= 0 {
		fatal("-rate must be positive")
	}

	var inj *chaos.Injector
	transport := http.DefaultTransport
	if *chaosSpec != "" {
		var err error
		if inj, err = chaos.Parse(*chaosSpec, *chaosSeed); err != nil {
			fatal("parsing -chaos: %v", err)
		}
		transport = inj.Transport(transport)
	}
	httpClient := &http.Client{Timeout: *reqTimeout, Transport: transport}

	if *waitReady > 0 {
		readyDeadline := time.Now().Add(*waitReady)
		for {
			resp, err := http.Get(*url + "/healthz")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(readyDeadline) {
				fatal("server not ready after %v", *waitReady)
			}
			time.Sleep(100 * time.Millisecond)
		}
	}
	if *dim <= 0 {
		cl := client.New(*url)
		cl.HTTP = &http.Client{Timeout: 10 * time.Second}
		info, err := cl.Info(context.Background())
		if err != nil {
			fatal("fetching /v1/info for the image dimension (pass -dim to skip): %v", err)
		}
		*dim = info.InputDim
	}

	// Probe with a clean client: the chaos transport must not be able to
	// fault the metadata fetch.
	serverOptimizer := fetchServerOptimizer(&http.Client{Timeout: 10 * time.Second}, *url)

	b := &bombardier{
		url:         *url,
		dim:         *dim,
		deadline:    *deadline,
		client:      httpClient,
		rng:         rand.New(rand.NewSource(*seed)),
		maxInflight: *maxInflight,
		errors:      map[string]int64{},
	}

	started := time.Now()
	interval := time.Duration(float64(time.Second) / *rate)
	ticker := time.NewTicker(interval)
	stop := time.After(*duration)
	var wg sync.WaitGroup
loop:
	for {
		select {
		case <-stop:
			ticker.Stop()
			break loop
		case <-ticker.C:
			b.sent.Add(1)
			if b.inflight.Load() >= b.maxInflight {
				// Arrival admitted to accounting but not launched: the
				// client itself is saturated. Not a silent drop.
				b.account("local_overrun", 0)
				continue
			}
			b.inflight.Add(1)
			wg.Add(1)
			imgSeed := b.rng.Int63()
			go func() {
				defer wg.Done()
				b.classify(imgSeed)
			}()
		}
	}
	wg.Wait()
	ended := time.Now()

	sort.Slice(b.latencies, func(i, j int) bool { return b.latencies[i] < b.latencies[j] })
	var sum time.Duration
	for _, d := range b.latencies {
		sum += d
	}
	lat := Latency{
		P50: percentile(b.latencies, 0.50),
		P95: percentile(b.latencies, 0.95),
		P99: percentile(b.latencies, 0.99),
	}
	if n := len(b.latencies); n > 0 {
		lat.Max = float64(b.latencies[n-1]) / float64(time.Millisecond)
		lat.Mean = float64(sum) / float64(n) / float64(time.Millisecond)
	}
	rep := Report{
		URL:             *url,
		RatePerSec:      *rate,
		Duration:        duration.String(),
		Started:         started,
		Ended:           ended,
		Sent:            b.sent.Load(),
		OK:              b.ok.Load(),
		Errors:          b.errors,
		SilentlyDropped: b.sent.Load() - b.accounted.Load(),
		ImagesPerSec:    float64(b.ok.Load()) / ended.Sub(started).Seconds(),
		LatencyMs:       lat,
		ChaosFired:      inj.Fired(),
		ServerOptimizer: serverOptimizer,
		SlowestRequests: slowest(b.oks, 5),
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			fatal("creating report file: %v", err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal("writing report: %v", err)
	}

	switch {
	case rep.SilentlyDropped > 0:
		fmt.Fprintf(os.Stderr, "hebombard: FAIL: %d requests silently dropped\n", rep.SilentlyDropped)
		os.Exit(1)
	case rep.OK == 0:
		fmt.Fprintln(os.Stderr, "hebombard: FAIL: no request succeeded")
		os.Exit(2)
	}
}
