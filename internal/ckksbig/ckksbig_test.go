package ckksbig

import (
	"math"
	"math/rand"
	"testing"

	"cnnhe/internal/ckks"
)

type kit struct {
	ctx *Context
	enc *Encoder
	sk  *SecretKey
	ept *Encryptor
	dec *Decryptor
	ev  *Evaluator
	L   int
}

func newKit(t testing.TB, rotations []int, conjugate bool) *kit {
	t.Helper()
	rp, err := ckks.TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromRNSParameters(rp)
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, 11)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	var rtk *RotationKeySet
	if len(rotations) > 0 || conjugate {
		rtk = kg.GenRotationKeys(sk, rotations, conjugate)
	}
	return &kit{
		ctx: ctx,
		enc: NewEncoder(ctx),
		sk:  sk,
		ept: NewEncryptor(ctx, pk, 22),
		dec: NewDecryptor(ctx, sk),
		ev:  NewEvaluator(ctx, rlk, rtk),
		L:   p.MaxLevel(),
	}
}

func randVec(rng *rand.Rand, n int, amp float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = (rng.Float64()*2 - 1) * amp
	}
	return out
}

func TestBaselineModulusMatchesRNS(t *testing.T) {
	rp, err := ckks.TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	p, err := FromRNSParameters(rp)
	if err != nil {
		t.Fatal(err)
	}
	if p.QAt(p.MaxLevel()).Cmp(rp.Chain.Q()) != 0 {
		t.Fatal("baseline Q must equal the RNS chain Q")
	}
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	if ctx.P.BitLen() < p.QAt(p.MaxLevel()).BitLen() {
		t.Fatalf("log P (%d) must be at least log Q (%d)", ctx.P.BitLen(), p.QAt(p.MaxLevel()).BitLen())
	}
}

func TestBigEncryptDecrypt(t *testing.T) {
	k := newKit(t, nil, false)
	rng := rand.New(rand.NewSource(1))
	n := k.ctx.Params.Slots()
	vals := randVec(rng, n, 4)
	ct := k.ept.Encrypt(k.enc.Encode(vals, k.L, k.ctx.Params.Scale))
	got := k.enc.Decode(k.dec.DecryptNew(ct))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-vals[i]) > 1e-4 {
			t.Fatalf("encrypt/decrypt error at %d: %g vs %g", i, got[i], vals[i])
		}
	}
}

func TestBigAddSubPlain(t *testing.T) {
	k := newKit(t, nil, false)
	rng := rand.New(rand.NewSource(2))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	b := randVec(rng, n, 2)
	scale := k.ctx.Params.Scale
	cta := k.ept.Encrypt(k.enc.Encode(a, k.L, scale))
	ctb := k.ept.Encrypt(k.enc.Encode(b, k.L, scale))
	sum := k.enc.Decode(k.dec.DecryptNew(k.ev.Add(cta, ctb)))
	diff := k.enc.Decode(k.dec.DecryptNew(k.ev.Sub(cta, ctb)))
	ap := k.enc.Decode(k.dec.DecryptNew(k.ev.AddPlain(cta, k.enc.Encode(b, k.L, scale))))
	for i := 0; i < n; i++ {
		if math.Abs(sum[i]-(a[i]+b[i])) > 1e-4 ||
			math.Abs(diff[i]-(a[i]-b[i])) > 1e-4 ||
			math.Abs(ap[i]-(a[i]+b[i])) > 1e-4 {
			t.Fatalf("add/sub/addplain error at %d", i)
		}
	}
}

func TestBigMulPlainRescale(t *testing.T) {
	k := newKit(t, nil, false)
	rng := rand.New(rand.NewSource(3))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	b := randVec(rng, n, 2)
	scale := k.ctx.Params.Scale
	ct := k.ept.Encrypt(k.enc.Encode(a, k.L, scale))
	prod := k.ev.Rescale(k.ev.MulPlain(ct, k.enc.Encode(b, k.L, scale)))
	if prod.Level != k.L-1 {
		t.Fatal("rescale did not drop a level")
	}
	got := k.enc.Decode(k.dec.DecryptNew(prod))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-a[i]*b[i]) > 1e-3 {
			t.Fatalf("mulplain+rescale error at %d", i)
		}
	}
}

func TestBigMulRelinRescale(t *testing.T) {
	k := newKit(t, nil, false)
	rng := rand.New(rand.NewSource(4))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	b := randVec(rng, n, 2)
	scale := k.ctx.Params.Scale
	cta := k.ept.Encrypt(k.enc.Encode(a, k.L, scale))
	ctb := k.ept.Encrypt(k.enc.Encode(b, k.L, scale))
	prod := k.ev.Rescale(k.ev.Mul(cta, ctb))
	got := k.enc.Decode(k.dec.DecryptNew(prod))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-a[i]*b[i]) > 1e-3 {
			t.Fatalf("mul error at %d: %g vs %g", i, got[i], a[i]*b[i])
		}
	}
}

func TestBigDepthChain(t *testing.T) {
	k := newKit(t, nil, false)
	n := k.ctx.Params.Slots()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1.1
	}
	ct := k.ept.Encrypt(k.enc.Encode(vals, k.L, k.ctx.Params.Scale))
	want := 1.1
	for d := 0; d < k.L; d++ {
		ct = k.ev.Rescale(k.ev.Square(ct))
		want *= want
	}
	got := k.enc.Decode(k.dec.DecryptNew(ct))
	if math.Abs(got[0]-want)/want > 1e-2 {
		t.Fatalf("depth-%d chain: got %g want %g", k.L, got[0], want)
	}
	if ct.Level != 0 {
		t.Fatalf("expected level 0, got %d", ct.Level)
	}
}

func TestBigRotateConjugate(t *testing.T) {
	k := newKit(t, []int{1, -2}, true)
	rng := rand.New(rand.NewSource(5))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	ct := k.ept.Encrypt(k.enc.Encode(a, k.L, k.ctx.Params.Scale))
	for _, rot := range []int{1, -2} {
		got := k.enc.Decode(k.dec.DecryptNew(k.ev.Rotate(ct, rot)))
		for i := 0; i < n; i++ {
			want := a[((i+rot)%n+n)%n]
			if math.Abs(got[i]-want) > 1e-3 {
				t.Fatalf("rotate %d error at %d", rot, i)
			}
		}
	}
	got := k.enc.Decode(k.dec.DecryptNew(k.ev.Conjugate(ct)))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-a[i]) > 1e-3 {
			t.Fatalf("conjugate error at %d", i)
		}
	}
}

func TestBigRotateHoisted(t *testing.T) {
	k := newKit(t, []int{1, 4, -2}, false)
	rng := rand.New(rand.NewSource(15))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	ct := k.ept.Encrypt(k.enc.Encode(a, k.L, k.ctx.Params.Scale))
	outs := k.ev.RotateHoisted(ct, []int{0, 1, 4, -2})
	for _, rot := range []int{0, 1, 4, -2} {
		got := k.enc.Decode(k.dec.DecryptNew(outs[rot]))
		for i := 0; i < n; i++ {
			want := a[((i+rot)%n+n)%n]
			if math.Abs(got[i]-want) > 1e-3 {
				t.Fatalf("hoisted rotate %d error at slot %d", rot, i)
			}
		}
	}
}

func TestBigRotateAtLowerLevel(t *testing.T) {
	// Rotation keys are stored at the top level and must reduce correctly
	// to any level.
	k := newKit(t, []int{3}, false)
	rng := rand.New(rand.NewSource(6))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	ct := k.ept.Encrypt(k.enc.Encode(a, k.L, k.ctx.Params.Scale))
	ct = k.ev.DropLevel(ct, 2)
	got := k.enc.Decode(k.dec.DecryptNew(k.ev.Rotate(ct, 3)))
	for i := 0; i < n; i++ {
		want := a[(i+3)%n]
		if math.Abs(got[i]-want) > 1e-3 {
			t.Fatalf("low-level rotate error at %d", i)
		}
	}
}

func TestBigMulAddConstMulInt(t *testing.T) {
	k := newKit(t, nil, false)
	rng := rand.New(rand.NewSource(7))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	ct := k.ept.Encrypt(k.enc.Encode(a, k.L, k.ctx.Params.Scale))
	sc := k.ev.Rescale(k.ev.MulConst(ct, 1.5, 0))
	got := k.enc.Decode(k.dec.DecryptNew(sc))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-1.5*a[i]) > 1e-3 {
			t.Fatalf("mulconst error at %d", i)
		}
	}
	sh := k.ev.AddConst(ct, -0.75)
	got = k.enc.Decode(k.dec.DecryptNew(sh))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-(a[i]-0.75)) > 1e-3 {
			t.Fatalf("addconst error at %d", i)
		}
	}
	mi := k.ev.MulInt(ct, -3)
	got = k.enc.Decode(k.dec.DecryptNew(mi))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-(-3*a[i])) > 1e-3 {
			t.Fatalf("mulint error at %d", i)
		}
	}
}

func TestBigDropLevel(t *testing.T) {
	k := newKit(t, nil, false)
	rng := rand.New(rand.NewSource(8))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	ct := k.ept.Encrypt(k.enc.Encode(a, k.L, k.ctx.Params.Scale))
	d := k.ev.DropLevel(ct, 2)
	if d.Level != k.L-2 {
		t.Fatal("wrong level after drop")
	}
	got := k.enc.Decode(k.dec.DecryptNew(d))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-a[i]) > 1e-4 {
			t.Fatalf("droplevel changed values at %d", i)
		}
	}
}

func TestBigScaleMismatchPanics(t *testing.T) {
	k := newKit(t, nil, false)
	a := k.ept.Encrypt(k.enc.Encode([]float64{1}, k.L, k.ctx.Params.Scale))
	b := k.ept.Encrypt(k.enc.Encode([]float64{1}, k.L, k.ctx.Params.Scale*2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on scale mismatch")
		}
	}()
	k.ev.Add(a, b)
}
