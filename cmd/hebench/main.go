// Command hebench regenerates the paper's evaluation tables and figures
// (see DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	hebench -table all                # Tables I–VI + Fig 5 + ablation
//	hebench -table 3 -runs 5          # just Table III
//	hebench -table cnn3               # sharded CIFAR-10 CNN3 (not in "all"; slow)
//	hebench -paper                    # paper-scale settings (N=2^14, slow)
//	hebench -out EXPERIMENTS.generated.md
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"
	"runtime"
	"strings"
	"time"

	"cnnhe/internal/bench"
	"cnnhe/internal/henn/ir/opt"
	"cnnhe/internal/ring"
	"cnnhe/internal/telemetry"
)

// parseLevel maps a -log-level flag value to a slog level.
func parseLevel(s string) slog.Level {
	switch s {
	case "debug":
		return slog.LevelDebug
	case "warn":
		return slog.LevelWarn
	case "error":
		return slog.LevelError
	}
	return slog.LevelInfo
}

func main() {
	var (
		table    = flag.String("table", "all", "which experiment: 1,2,3,4,5,6,fig5,ablation,cnn3 or all (cnn3 is opt-in: beyond-paper scale)")
		logN     = flag.Int("logn", 0, "override ring degree exponent")
		runs     = flag.Int("runs", 0, "override latency runs per row")
		accImgs  = flag.Int("images", 0, "override encrypted-accuracy image count")
		trainN   = flag.Int("train", 0, "override training set size")
		epochs   = flag.Int("epochs", 0, "override training epochs")
		paper    = flag.Bool("paper", false, "paper-scale settings (N=2^14, 30 epochs; hours)")
		outPath  = flag.String("out", "", "also write the report to this file")
		jsonOut  = flag.String("json", "", "machine-readable report path (default BENCH_<timestamp>.json; \"none\" disables)")
		models   = flag.String("models", "models", "model cache directory")
		seed     = flag.Int64("seed", 1, "random seed")
		optFlag  = flag.String("opt", "on", "graph optimizer: on, off, exact, or a comma-separated pass list")
		telAddr  = flag.String("telemetry-addr", "", "serve /metrics, /debug/vars and /debug/pprof on this address while benchmarking (empty = off)")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		ringPar  = flag.Bool("ring-parallel", ring.ParallelDefault(), "limb/slab-parallel ring kernels (default: on when GOMAXPROCS > 1)")
	)
	flag.Parse()

	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr,
		&slog.HandlerOptions{Level: parseLevel(*logLevel)})))
	ring.SetParallelDefault(*ringPar)
	slog.Info("ring kernels", "ring_parallel", *ringPar, "gomaxprocs", runtime.GOMAXPROCS(0))
	fatal := func(msg string, args ...any) {
		slog.Error(msg, args...)
		os.Exit(1)
	}

	// Metric collection is always on in hebench: the per-op counters feed
	// the JSON report's op_breakdown section (atomic increments, noise-
	// level next to the NTTs being measured).
	telemetry.SetEnabled(true)
	if *telAddr != "" {
		srv, err := telemetry.Serve(*telAddr, nil)
		if err != nil {
			fatal("telemetry server failed", "err", err)
		}
		defer srv.Close()
		slog.Info("telemetry listening", "url", "http://"+srv.Addr)
	}

	cfg := bench.DefaultConfig()
	if *paper {
		cfg = bench.PaperConfig()
	}
	cfg.Seed = *seed
	cfg.ModelDir = *models
	cfg.Verbose = true
	optOpts, err := opt.ParseFlag(*optFlag)
	if err != nil {
		fatal("bad -opt flag", "opt", *optFlag, "err", err)
	}
	cfg.Opt = optOpts
	if *logN > 0 {
		cfg.LogN = *logN
	}
	if *runs > 0 {
		cfg.Runs = *runs
	}
	if *accImgs > 0 {
		cfg.AccImages = *accImgs
	}
	if *trainN > 0 {
		cfg.TrainN = *trainN
	}
	if *epochs > 0 {
		cfg.Epochs = *epochs
	}

	var w io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal("creating report file failed", "path", *outPath, "err", err)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	want := map[string]bool{}
	for _, t := range strings.Split(*table, ",") {
		want[strings.TrimSpace(t)] = true
	}
	all := want["all"]
	needModels := all || want["1"] || want["3"] || want["4"] || want["5"] || want["6"] || want["fig5"]

	var ms *bench.Models
	if needModels {
		var err error
		ms, err = bench.TrainModels(cfg, os.Stderr)
		if err != nil {
			fatal("training models failed", "err", err)
		}
	}
	// The sharded CIFAR-10 workload is opt-in ("-table cnn3"): its
	// encrypted runs are far slower than the paper tables and it is not
	// part of the paper's evaluation section.
	var m3 *bench.CNN3Models
	if want["cnn3"] {
		var err error
		m3, err = bench.TrainCNN3(cfg, os.Stderr)
		if err != nil {
			fatal("training cnn3 failed", "err", err)
		}
	}

	var measured []bench.HEResult
	var jsonRows []bench.JSONRow
	opBreakdown := map[string][]bench.JSONOpKind{}
	// run executes one table, diffing the telemetry registry around it so
	// the JSON report carries a per-op-kind executor profile per table
	// (key matches JSONRow.Table).
	run := func(key, name string, f func() error) {
		fmt.Fprintf(os.Stderr, "--- running %s ---\n", name)
		before := telemetry.Default().Snapshot()
		if err := f(); err != nil {
			fatal("experiment failed", "table", name, "err", err)
		}
		diff := telemetry.Default().Snapshot().Sub(before)
		if ops := bench.OpBreakdownFromDiff(diff); ops != nil {
			opBreakdown[key] = ops
		}
	}

	if all || want["2"] {
		run("II", "Table II", func() error { return bench.TableII(w) })
	}
	if all || want["3"] {
		run("III", "Table III", func() error {
			rows, err := bench.TableIII(cfg, ms, w)
			measured = append(measured, rows...)
			jsonRows = append(jsonRows, bench.JSONRows("III", cfg.LogN, rows)...)
			return err
		})
	}
	if all || want["4"] {
		run("IV", "Table IV", func() error {
			rows, err := bench.TableIV(cfg, ms, w)
			jsonRows = append(jsonRows, bench.JSONRows("IV", cfg.LogN, rows)...)
			return err
		})
	}
	if all || want["5"] {
		run("V", "Table V", func() error {
			rows, err := bench.TableV(cfg, ms, w)
			measured = append(measured, rows...)
			jsonRows = append(jsonRows, bench.JSONRows("V", cfg.LogN, rows)...)
			return err
		})
	}
	if all || want["6"] {
		run("VI", "Table VI", func() error {
			rows, err := bench.TableVI(cfg, ms, w)
			jsonRows = append(jsonRows, bench.JSONRows("VI", cfg.LogN, rows)...)
			return err
		})
	}
	if all || want["fig5"] {
		run("fig5", "Figure 5", func() error { return bench.Fig5(cfg, ms, w) })
	}
	if all || want["ablation"] {
		run("ablation", "limb-width ablation", func() error { return bench.LimbWidthAblation(cfg, w) })
	}
	if want["cnn3"] {
		run("CNN3", "Table CNN3 (sharded CIFAR-10)", func() error {
			rows, err := bench.TableCNN3(cfg, m3, w)
			jsonRows = append(jsonRows, bench.JSONRows("CNN3", cfg.LogN, rows)...)
			return err
		})
	}
	if all || want["1"] {
		bench.TableI(w, measured, ms.DataSource)
	}

	if *jsonOut != "none" && len(jsonRows) > 0 {
		now := time.Now()
		path := *jsonOut
		if path == "" {
			path = "BENCH_" + now.Format("20060102T150405") + ".json"
		}
		var graphs *bench.GraphReport
		if ms != nil {
			graphs, err = bench.GraphSizes(cfg, ms)
			if err != nil {
				fatal("collecting graph sizes failed", "err", err)
			}
		}
		if m3 != nil {
			graphs, err = bench.ShardedGraphSizes(cfg, "CNN3", m3.CNN3, graphs)
			if err != nil {
				fatal("collecting sharded graph sizes failed", "err", err)
			}
		}
		if err := bench.WriteJSON(path, cfg, now, jsonRows, opBreakdown, graphs); err != nil {
			fatal("writing json report failed", "path", path, "err", err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d rows)\n", path, len(jsonRows))
	}
}
