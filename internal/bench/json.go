package bench

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strings"
	"time"

	"cnnhe/internal/ring"
	"cnnhe/internal/telemetry"
)

// JSONSchemaVersion identifies the report layout. Version 2 added
// schema_version itself and the per-table op_breakdown section;
// version 3 added the optimizer setting and the per-(model, backend)
// graph_before/graph_after sections; version 4 added gomaxprocs and
// git_commit to the envelope and logn / acc_correct / acc_total to
// each row so accuracy percentages can be read against their sample
// size and runs compared across ring degrees; version 5 added
// ring_parallel so trend series distinguish serial from limb-parallel
// kernel runs.
const JSONSchemaVersion = 5

// JSONRow is one machine-readable benchmark measurement. Accuracy
// fields are pointers because JSON has no NaN: absent means "not
// measured", mirroring HEResult's NaN convention.
type JSONRow struct {
	Table   string `json:"table"`
	Model   string `json:"model"`
	Backend string `json:"backend"`
	Chain   int    `json:"chain"`
	// LogN echoes the run's ring-degree exponent per row so rows stay
	// self-describing when reports are concatenated or rows compared
	// across runs (hetrend keys on model/backend/logn).
	LogN   int     `json:"logn,omitempty"`
	N      int     `json:"n"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	MinMS  float64 `json:"min_ms"`
	MaxMS  float64 `json:"max_ms"`
	AccPct *float64 `json:"accuracy_pct,omitempty"`
	// AccCorrect/AccTotal are the raw counts behind AccPct ("1/2", not
	// just "50%"), so small-sample accuracy can't masquerade as a real
	// measurement. Absent together with AccPct.
	AccCorrect  *int     `json:"acc_correct,omitempty"`
	AccTotal    *int     `json:"acc_total,omitempty"`
	TrainAccPct *float64 `json:"train_accuracy_pct,omitempty"`
}

// JSONOpKind is one op-kind row of a table's executor profile: how many
// logical HE ops of the kind ran while the table was measured, over how
// many engine calls (hoisted rotations share one call), and their summed
// engine-call latency.
type JSONOpKind struct {
	Kind    string  `json:"kind"`
	Count   int64   `json:"count"`
	Calls   int64   `json:"calls"`
	TotalMS float64 `json:"total_ms"`
}

// JSONReport is the envelope hebench writes next to its markdown tables.
type JSONReport struct {
	SchemaVersion int       `json:"schema_version"`
	Timestamp     string    `json:"timestamp"`
	LogN          int       `json:"logn"`
	Runs          int       `json:"runs"`
	AccImages     int       `json:"acc_images"`
	Seed          int64     `json:"seed"`
	GOOS          string    `json:"goos"`
	GOARCH        string    `json:"goarch"`
	NumCPU        int       `json:"num_cpu"`
	// GOMAXPROCS is the scheduler's effective parallelism during the
	// run — on cgroup-limited hosts it differs from NumCPU, and latency
	// numbers are not comparable across different values.
	GOMAXPROCS int `json:"gomaxprocs,omitempty"`
	// RingParallel records whether the limb/slab-parallel ring kernels
	// were enabled for the run (the -ring-parallel flag). Serial and
	// parallel timings are different series; hetrend readers should not
	// mix them blindly.
	RingParallel bool `json:"ring_parallel"`
	// GitCommit is the repository HEAD the benchmark binary was run
	// from (best effort; absent outside a git checkout).
	GitCommit string    `json:"git_commit,omitempty"`
	Rows      []JSONRow `json:"rows"`
	// OpBreakdown maps a table name to its per-op-kind executor profile,
	// measured by diffing telemetry registry snapshots around the table.
	// Absent when telemetry was disabled.
	OpBreakdown map[string][]JSONOpKind `json:"op_breakdown,omitempty"`
	// Optimizer is the graph-optimizer setting the run used (opt.Setting
	// form: "off", "on (cse,…)", "exact (…)"). GraphBefore/GraphAfter
	// record the lowered graph shape per "MODEL/backend" key around the
	// pass pipeline. Absent when no models were benchmarked.
	Optimizer   string               `json:"optimizer,omitempty"`
	GraphBefore map[string]JSONGraph `json:"graph_before,omitempty"`
	GraphAfter  map[string]JSONGraph `json:"graph_after,omitempty"`
}

func pctPtr(frac float64) *float64 {
	if math.IsNaN(frac) {
		return nil
	}
	v := 100 * frac
	return &v
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// AccWarnThreshold is the sample size below which an encrypted-accuracy
// percentage is statistically meaningless (a 2-image 50% is a coin
// flip); JSONRows logs a warning for such rows.
const AccWarnThreshold = 20

// JSONRows converts measured table rows to their JSON form, tagged with
// the table they came from and the ring degree they ran under. Rows
// with a measured accuracy also carry the raw correct/total counts,
// and rows whose accuracy rests on fewer than AccWarnThreshold images
// are flagged in the log.
func JSONRows(table string, logN int, results []HEResult) []JSONRow {
	out := make([]JSONRow, 0, len(results))
	for _, r := range results {
		lat := r.Lat
		row := JSONRow{
			Table:       table,
			Model:       r.Model,
			Backend:     r.Backend,
			Chain:       r.Chain,
			LogN:        logN,
			N:           lat.N,
			MeanMS:      ms(lat.Avg),
			P50MS:       ms(lat.Percentile(50)),
			P95MS:       ms(lat.Percentile(95)),
			MinMS:       ms(lat.Min),
			MaxMS:       ms(lat.Max),
			AccPct:      pctPtr(r.Acc),
			TrainAccPct: pctPtr(r.TrainAcc),
		}
		if row.AccPct != nil {
			// Accuracy was measured over the same images latency was
			// (EvaluateEncrypted classifies each timed image once), so
			// Lat.N is the denominator.
			total := lat.N
			correct := int(math.Round(r.Acc * float64(total)))
			row.AccCorrect, row.AccTotal = &correct, &total
			if total < AccWarnThreshold {
				slog.Warn("encrypted accuracy measured over too few images to be meaningful",
					"table", table, "model", r.Model, "backend", r.Backend,
					"correct", correct, "total", total,
					"suggest", fmt.Sprintf("-images %d or more", AccWarnThreshold))
			}
		}
		out = append(out, row)
	}
	return out
}

// gitCommit resolves the checkout's HEAD hash, empty when the working
// directory is not a git repository (installed binary, extracted
// tarball) or git is unavailable.
func gitCommit() string {
	out, err := exec.Command("git", "rev-parse", "HEAD").Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// OpBreakdownFromDiff extracts the per-op-kind executor profile from a
// telemetry snapshot diff (Snapshot.Sub of the registry around a
// measurement), reading the cnnhe_exec_ops_total counters and the
// cnnhe_exec_op_seconds histograms. Returns nil when the diff carries no
// executor activity.
func OpBreakdownFromDiff(diff telemetry.Snapshot) []JSONOpKind {
	byKind := map[string]*JSONOpKind{}
	at := func(kind string) *JSONOpKind {
		if k, ok := byKind[kind]; ok {
			return k
		}
		k := &JSONOpKind{Kind: kind}
		byKind[kind] = k
		return k
	}
	if f, ok := diff.Family("cnnhe_exec_ops_total"); ok {
		for _, s := range f.Series {
			if kind := s.Label("kind"); kind != "" && s.Value > 0 {
				at(kind).Count = int64(s.Value)
			}
		}
	}
	if f, ok := diff.Family("cnnhe_exec_op_seconds"); ok {
		for _, s := range f.Series {
			if kind := s.Label("kind"); kind != "" && s.Count > 0 {
				k := at(kind)
				k.Calls = s.Count
				k.TotalMS = 1000 * s.Value // histogram sum is in seconds
			}
		}
	}
	if len(byKind) == 0 {
		return nil
	}
	out := make([]JSONOpKind, 0, len(byKind))
	for _, k := range byKind {
		out = append(out, *k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Kind < out[j].Kind })
	return out
}

// WriteJSON writes the benchmark report to path, creating or truncating
// the file. opBreakdown may be nil (telemetry disabled); graphs may be
// nil (no models benchmarked).
func WriteJSON(path string, cfg Config, ts time.Time, rows []JSONRow, opBreakdown map[string][]JSONOpKind, graphs *GraphReport) error {
	rep := JSONReport{
		SchemaVersion: JSONSchemaVersion,
		Timestamp:     ts.UTC().Format(time.RFC3339),
		LogN:          cfg.LogN,
		Runs:          cfg.Runs,
		AccImages:     cfg.AccImages,
		Seed:          cfg.Seed,
		GOOS:          runtime.GOOS,
		GOARCH:        runtime.GOARCH,
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		RingParallel:  ring.ParallelDefault(),
		GitCommit:     gitCommit(),
		Rows:          rows,
		OpBreakdown:   opBreakdown,
	}
	if graphs != nil {
		rep.Optimizer = graphs.Optimizer
		rep.GraphBefore = graphs.Before
		rep.GraphAfter = graphs.After
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return fmt.Errorf("bench: marshal json report: %w", err)
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
