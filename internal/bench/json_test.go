package bench

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cnnhe/internal/henn"
	"cnnhe/internal/telemetry"
)

func TestJSONRowsNaNAccuracy(t *testing.T) {
	rows := JSONRows("IV", 12, []HEResult{
		{Model: "CNN1", Backend: "CKKS-RNS", Chain: 5, Acc: math.NaN(), TrainAcc: math.NaN()},
		{Model: "CNN1", Backend: "CKKS-RNS", Chain: 13, Lat: henn.LatencyStats{N: 20}, Acc: 0.95, TrainAcc: 0.99},
	})
	if rows[0].AccPct != nil || rows[0].TrainAccPct != nil {
		t.Fatalf("NaN accuracy must map to nil, got %v / %v", rows[0].AccPct, rows[0].TrainAccPct)
	}
	if rows[0].AccCorrect != nil || rows[0].AccTotal != nil {
		t.Fatalf("NaN accuracy must omit raw counts, got %v / %v", rows[0].AccCorrect, rows[0].AccTotal)
	}
	if rows[1].AccPct == nil || *rows[1].AccPct != 95 {
		t.Fatalf("accuracy 0.95 should become 95%%, got %v", rows[1].AccPct)
	}
	if rows[1].AccCorrect == nil || *rows[1].AccCorrect != 19 || rows[1].AccTotal == nil || *rows[1].AccTotal != 20 {
		t.Fatalf("accuracy counts should be 19/20, got %v / %v", rows[1].AccCorrect, rows[1].AccTotal)
	}
	if rows[0].Table != "IV" || rows[0].Chain != 5 || rows[0].LogN != 12 {
		t.Fatalf("row metadata lost: %+v", rows[0])
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	lat := henn.LatencyStats{Min: 10 * time.Millisecond, Max: 30 * time.Millisecond, Avg: 20 * time.Millisecond, N: 3}
	rows := JSONRows("III", 11, []HEResult{
		{Model: "CNN2", Backend: "CKKS (big)", Chain: 13, Lat: lat, Acc: 0.9, TrainAcc: math.NaN()},
	})
	path := filepath.Join(t.TempDir(), "bench.json")
	cfg := DefaultConfig()
	ts := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	breakdown := map[string][]JSONOpKind{
		"III": {{Kind: "Rotate", Count: 12, Calls: 4, TotalMS: 8.5}},
	}
	graphs := &GraphReport{
		Optimizer: "on (cse,fold,replan,rescale,fuse,dce)",
		Before:    map[string]JSONGraph{"CNN2/ckks-big": {Ops: 100, EngineCalls: 100, RotateCalls: 10, Hoists: 8, MinLevel: 1}},
		After:     map[string]JSONGraph{"CNN2/ckks-big": {Ops: 60, EngineCalls: 55, RotateCalls: 5, Hoists: 1, MinLevel: 1}},
	}
	if err := WriteJSON(path, cfg, ts, rows, breakdown, graphs); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("written report is not valid JSON: %v", err)
	}
	if rep.Timestamp != "2026-08-05T12:00:00Z" {
		t.Fatalf("timestamp %q", rep.Timestamp)
	}
	if rep.LogN != cfg.LogN || rep.Seed != cfg.Seed {
		t.Fatalf("config fields lost: %+v", rep)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(rep.Rows))
	}
	r := rep.Rows[0]
	if r.MeanMS != 20 || r.MinMS != 10 || r.MaxMS != 30 || r.N != 3 {
		t.Fatalf("latency fields wrong: %+v", r)
	}
	if r.AccPct == nil || *r.AccPct != 90 {
		t.Fatalf("accuracy lost: %+v", r)
	}
	if r.TrainAccPct != nil {
		t.Fatalf("NaN train accuracy should be omitted, got %v", *r.TrainAccPct)
	}
	if rep.SchemaVersion != JSONSchemaVersion {
		t.Fatalf("schema_version %d, want %d", rep.SchemaVersion, JSONSchemaVersion)
	}
	if rep.GOMAXPROCS < 1 {
		t.Fatalf("gomaxprocs %d, want >= 1", rep.GOMAXPROCS)
	}
	if r.LogN != 11 {
		t.Fatalf("row logn %d, want 11", r.LogN)
	}
	if r.AccCorrect == nil || *r.AccCorrect != 3 || r.AccTotal == nil || *r.AccTotal != 3 {
		t.Fatalf("accuracy counts lost across round trip: %v / %v", r.AccCorrect, r.AccTotal)
	}
	ops := rep.OpBreakdown["III"]
	if len(ops) != 1 || ops[0].Kind != "Rotate" || ops[0].Count != 12 || ops[0].Calls != 4 || ops[0].TotalMS != 8.5 {
		t.Fatalf("op breakdown lost: %+v", rep.OpBreakdown)
	}
	if rep.Optimizer != graphs.Optimizer {
		t.Fatalf("optimizer setting lost: %q", rep.Optimizer)
	}
	if g := rep.GraphAfter["CNN2/ckks-big"]; g.EngineCalls != 55 || g.RotateCalls != 5 {
		t.Fatalf("graph_after lost: %+v", rep.GraphAfter)
	}
	if g := rep.GraphBefore["CNN2/ckks-big"]; g.Ops != 100 {
		t.Fatalf("graph_before lost: %+v", rep.GraphBefore)
	}
}

// TestOpBreakdownFromDiff feeds a registry through one simulated run and
// checks the extracted per-kind profile.
func TestOpBreakdownFromDiff(t *testing.T) {
	r := telemetry.NewRegistry()
	before := r.Snapshot()
	r.Counter("cnnhe_exec_ops_total", "", telemetry.L("kind", "Rotate")).Add(6)
	r.Counter("cnnhe_exec_ops_total", "", telemetry.L("kind", "MulPlain")).Add(2)
	h := r.Histogram("cnnhe_exec_op_seconds", "", nil, telemetry.L("kind", "Rotate"))
	h.Observe(0.010)
	h.Observe(0.014)
	r.Histogram("cnnhe_exec_op_seconds", "", nil, telemetry.L("kind", "MulPlain")).Observe(0.002)

	got := OpBreakdownFromDiff(r.Snapshot().Sub(before))
	if len(got) != 2 {
		t.Fatalf("breakdown rows %d, want 2 (%+v)", len(got), got)
	}
	// Sorted by kind: MulPlain, Rotate.
	if got[0].Kind != "MulPlain" || got[0].Count != 2 || got[0].Calls != 1 {
		t.Fatalf("MulPlain row %+v", got[0])
	}
	if got[1].Kind != "Rotate" || got[1].Count != 6 || got[1].Calls != 2 {
		t.Fatalf("Rotate row %+v", got[1])
	}
	if math.Abs(got[1].TotalMS-24) > 1e-9 {
		t.Fatalf("Rotate total %v ms, want 24", got[1].TotalMS)
	}
	if OpBreakdownFromDiff(r.Snapshot().Sub(r.Snapshot())) != nil {
		t.Fatal("empty diff must yield nil breakdown")
	}
}
