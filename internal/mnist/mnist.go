// Package mnist is a thin compatibility shim over internal/dataset,
// which now hosts the shared loader substrate for both evaluation
// corpora (MNIST and CIFAR-10). Existing callers keep the mnist.Load /
// mnist.Synthetic surface; new code should use internal/dataset
// directly.
package mnist

import "cnnhe/internal/dataset"

// Rows and Cols are the MNIST image dimensions.
const (
	Rows = dataset.MNISTRows
	Cols = dataset.MNISTCols
)

// Dataset is the shared raw-image dataset representation.
type Dataset = dataset.Dataset

// LoadIDX reads the standard MNIST IDX files (optionally gzipped) from
// dir.
func LoadIDX(dir string) (train, test Dataset, err error) {
	return dataset.LoadMNISTIDX(dir)
}

// Synthetic generates n deterministic synthetic handwritten-digit
// images.
func Synthetic(n int, seed int64) Dataset {
	return dataset.SyntheticMNIST(n, seed)
}

// Load returns MNIST data from MNIST_DIR when available, falling back
// to the synthetic dataset. The returned string describes the source.
func Load(trainN, testN int, seed int64) (train, test Dataset, source string) {
	return dataset.LoadMNIST(trainN, testN, seed)
}
