package dataset

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cnnhe/internal/nn"
)

// writeCIFARBatch writes n valid records to path.
func writeCIFARBatch(t *testing.T, path string, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	var buf bytes.Buffer
	for i := 0; i < n; i++ {
		buf.WriteByte(byte(i % 10))
		img := make([]byte, cifarPixels)
		rng.Read(img)
		buf.Write(img)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func writeCIFARDir(t *testing.T, dir string, perBatch int) {
	t.Helper()
	for i, name := range cifarTrainBatches {
		writeCIFARBatch(t, filepath.Join(dir, name), perBatch, int64(i))
	}
	writeCIFARBatch(t, filepath.Join(dir, cifarTestBatch), perBatch, 99)
}

func TestLoadCIFAR10Dir(t *testing.T) {
	dir := t.TempDir()
	writeCIFARDir(t, dir, 4)
	train, test, err := LoadCIFAR10Dir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() != 20 || test.Len() != 4 {
		t.Fatalf("sizes %d/%d, want 20/4", train.Len(), test.Len())
	}
	if train.C != 3 || train.H != 32 || train.W != 32 || train.Dim() != 3072 {
		t.Fatalf("shape %dx%dx%d", train.C, train.H, train.W)
	}
	if train.Labels[0] != 0 || train.Labels[3] != 3 {
		t.Fatalf("labels %v", train.Labels[:4])
	}
	// The nested cifar-10-batches-bin layout must also resolve.
	root := t.TempDir()
	nested := filepath.Join(root, "cifar-10-batches-bin")
	if err := os.MkdirAll(nested, 0o755); err != nil {
		t.Fatal(err)
	}
	writeCIFARDir(t, nested, 2)
	if _, _, err := LoadCIFAR10Dir(root); err != nil {
		t.Fatalf("nested layout: %v", err)
	}
}

func TestLoadCIFAR10DirTypedErrors(t *testing.T) {
	if _, _, err := LoadCIFAR10Dir(t.TempDir()); !errors.Is(err, ErrMissingData) {
		t.Fatalf("empty dir: %v, want ErrMissingData", err)
	}
	dir := t.TempDir()
	writeCIFARDir(t, dir, 2)
	// Truncate one batch mid-record.
	path := filepath.Join(dir, cifarTrainBatches[2])
	data, _ := os.ReadFile(path)
	os.WriteFile(path, data[:len(data)-10], 0o644)
	if _, _, err := LoadCIFAR10Dir(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncated batch: %v, want ErrCorrupt", err)
	}
	// Out-of-range label.
	writeCIFARDir(t, dir, 2)
	data, _ = os.ReadFile(path)
	data[0] = 11
	os.WriteFile(path, data, 0o644)
	if _, _, err := LoadCIFAR10Dir(dir); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad label: %v, want ErrCorrupt", err)
	}
}

func TestLoadCIFAR10EnvAndFallback(t *testing.T) {
	dir := t.TempDir()
	writeCIFARDir(t, dir, 3)
	t.Setenv("CIFAR10_DIR", dir)
	t.Setenv("CIFAR10_CACHE", t.TempDir())
	t.Setenv("CIFAR10_DOWNLOAD", "")
	train, test, source := LoadCIFAR10(10, 2, 1)
	if source != "cifar10:"+dir {
		t.Fatalf("source %q", source)
	}
	if train.Len() != 10 || test.Len() != 2 {
		t.Fatalf("sizes %d/%d", train.Len(), test.Len())
	}
	t.Setenv("CIFAR10_DIR", "")
	train, test, source = LoadCIFAR10(12, 5, 1)
	if source != "synthetic" {
		t.Fatalf("source %q, want synthetic fallback", source)
	}
	if train.Len() != 12 || test.Len() != 5 || train.Dim() != 3072 {
		t.Fatalf("synthetic sizes %d/%d dim %d", train.Len(), test.Len(), train.Dim())
	}
}

// tarball packs the files in dir into a cifar-style tar.gz with a
// leading directory component.
func tarball(t *testing.T, dir, out string) {
	t.Helper()
	var buf bytes.Buffer
	gz := gzip.NewWriter(&buf)
	tw := tar.NewWriter(gz)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		hdr := &tar.Header{Name: "cifar-10-batches-bin/" + e.Name(), Mode: 0o644, Size: int64(len(data))}
		if err := tw.WriteHeader(hdr); err != nil {
			t.Fatal(err)
		}
		tw.Write(data)
	}
	tw.Close()
	gz.Close()
	if err := os.WriteFile(out, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestEnsureCIFAR10CacheLifecycle(t *testing.T) {
	src := t.TempDir()
	writeCIFARDir(t, src, 2)
	cache := t.TempDir()
	t.Setenv("CIFAR10_CACHE", cache)
	t.Setenv("CIFAR10_DOWNLOAD", "")
	t.Setenv("CIFAR10_SHA256", "")

	// Empty cache, download disabled → typed missing-data error.
	if _, err := EnsureCIFAR10(); !errors.Is(err, ErrMissingData) {
		t.Fatalf("empty cache: %v, want ErrMissingData", err)
	}

	// A pre-seeded archive extracts and records a trust-on-first-use
	// digest sidecar.
	archive := filepath.Join(cache, "cifar-10-binary.tar.gz")
	tarball(t, src, archive)
	dir, err := EnsureCIFAR10()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadCIFAR10Dir(dir); err != nil {
		t.Fatalf("extracted batches unreadable: %v", err)
	}
	if _, err := os.Stat(archive + ".sha256"); err != nil {
		t.Fatalf("no checksum sidecar: %v", err)
	}

	// Tampering with the archive after the digest was recorded must
	// surface ErrCorrupt on the next cold extraction.
	if err := os.RemoveAll(filepath.Join(cache, "cifar-10-batches-bin")); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(archive)
	data[len(data)/2] ^= 0x01
	os.WriteFile(archive, data, 0o644)
	if _, err := EnsureCIFAR10(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered archive: %v, want ErrCorrupt", err)
	}

	// An explicit CIFAR10_SHA256 pin overrides the sidecar.
	t.Setenv("CIFAR10_SHA256", "deadbeef")
	if _, err := EnsureCIFAR10(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("pin mismatch: %v, want ErrCorrupt", err)
	}
}

func TestSyntheticCIFARDeterministicAndDistinct(t *testing.T) {
	a := SyntheticCIFAR10(40, 42)
	b := SyntheticCIFAR10(40, 42)
	for i := range a.Pixels {
		if a.Labels[i] != b.Labels[i] || !bytes.Equal(a.Pixels[i], b.Pixels[i]) {
			t.Fatal("synthetic CIFAR generation is not deterministic")
		}
	}
	c := SyntheticCIFAR10(40, 43)
	same := true
	for i := range a.Pixels {
		if !bytes.Equal(a.Pixels[i], c.Pixels[i]) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical datasets")
	}
	counts := make([]int, 10)
	for _, l := range SyntheticCIFAR10(500, 1).Labels {
		counts[l]++
	}
	for class, n := range counts {
		if n == 0 {
			t.Fatalf("class %d never generated", class)
		}
	}
}

func TestSyntheticCIFARIsLearnable(t *testing.T) {
	// A small dense model must separate the synthetic classes well above
	// chance — the property that makes the offline substitution
	// meaningful for CNN3 end-to-end runs.
	if testing.Short() {
		t.Skip("training test skipped in -short mode")
	}
	train := SyntheticCIFAR10(1500, 11).ToNN()
	test := SyntheticCIFAR10(300, 12).ToNN()
	rng := rand.New(rand.NewSource(5))
	m := &nn.Model{Layers: []nn.Layer{
		nn.NewFlatten(),
		nn.NewDense(rng, cifarPixels, 64),
		nn.NewReLU(),
		nn.NewDense(rng, 64, 10),
	}}
	nn.Train(m, train, nn.TrainConfig{Epochs: 8, BatchSize: 32, MaxLR: 0.05, Momentum: 0.9, Seed: 1})
	acc := nn.Evaluate(m, test)
	if acc < 0.6 {
		t.Fatalf("synthetic CIFAR should be learnable: accuracy %.3f", acc)
	}
}
