// Package guard hardens homomorphic inference against silent corruption.
//
// Approximate HE fails quietly: a level-exhausted, scale-skewed, or
// bit-flipped ciphertext decrypts to plausible-looking garbage logits
// rather than an error. GuardedEngine wraps any henn.Engine and turns
// those silent failures into typed, classified errors:
//
//   - engine panics (level/scale assertion failures, injected bugs)
//     become StageError values wrapping ErrEnginePanic;
//   - per-op invariants are validated: residue/limb structure
//     (ErrResidueMissing), coefficient ranges (ErrCorruptCiphertext),
//     scale bookkeeping against an independently tracked mirror
//     (ErrScaleDrift), level underflow (ErrLevelExhausted), and NaN/Inf
//     or over-long plaintext operands (ErrInvalidPlaintext);
//   - a live per-ciphertext noise budget is tracked with the
//     internal/noise canonical-embedding bounds, so inference fails fast
//     with ErrNoiseBudgetExhausted instead of returning drowned logits;
//   - an optional context is checked on every engine op, so a stalled
//     stage surfaces context.DeadlineExceeded at the next op boundary.
//
// Errors are raised by panicking with a *StageError; henn.Plan.InferCtx
// (and RNSPlan.InferCtx) recover the panic and return it as the error, so
// the composition
//
//	g := guard.New(engine, guard.Config{Ctx: ctx})
//	logits, report, err := plan.InferCtx(ctx, g, image)
//
// yields typed errors end to end. A clean run through the guard computes
// bit-identical logits to the unguarded engine: the guard never alters
// ciphertexts, only observes them.
package guard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/big"
	"sync"
	"sync/atomic"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/henn"
	"cnnhe/internal/noise"
	"cnnhe/internal/ring"
)

// Typed failure classes. Every guard abort is a *StageError whose Cause
// wraps exactly one of these sentinels; match with errors.Is.
var (
	// ErrNoiseBudgetExhausted: the tracked worst-case noise bound leaves
	// fewer than Config.MinNoiseBits bits of precision — the message is
	// (conservatively) drowned and decryption would return garbage.
	ErrNoiseBudgetExhausted = errors.New("guard: noise budget exhausted")
	// ErrLevelExhausted: an op needs a level that is not there (rescaling
	// at level 0, dropping below level 0).
	ErrLevelExhausted = errors.New("guard: ciphertext level exhausted")
	// ErrScaleDrift: the engine's ciphertext scale disagrees with the
	// guard's independently tracked scale beyond Config.ScaleTol.
	ErrScaleDrift = errors.New("guard: ciphertext scale drift")
	// ErrResidueMissing: an RNS limb (or multiprecision coefficient)
	// required at the ciphertext's level is absent or mis-sized.
	ErrResidueMissing = errors.New("guard: ciphertext residue missing")
	// ErrCorruptCiphertext: a coefficient is outside [0, q), or decryption
	// produced NaN/Inf slots.
	ErrCorruptCiphertext = errors.New("guard: corrupt ciphertext")
	// ErrInvalidPlaintext: a plaintext operand contains NaN/Inf, exceeds
	// the slot count, or carries a non-positive scale.
	ErrInvalidPlaintext = errors.New("guard: invalid plaintext operand")
	// ErrEnginePanic: the wrapped engine panicked inside an op.
	ErrEnginePanic = errors.New("guard: engine panic")
	// ErrForeignCiphertext: a ciphertext handle that was not produced by
	// this guarded engine was passed to one of its ops.
	ErrForeignCiphertext = errors.New("guard: foreign ciphertext")
)

// StageError locates a failure: the pipeline stage being evaluated (as
// announced via BeginStage), the engine op that detected it, and the
// underlying cause (wrapping one of the sentinel errors above).
type StageError struct {
	Stage string
	Op    string
	Cause error
}

// Error implements error.
func (e *StageError) Error() string {
	stage := e.Stage
	if stage == "" {
		stage = "?"
	}
	return fmt.Sprintf("guard: stage %s, op %s: %v", stage, e.Op, e.Cause)
}

// Unwrap exposes the cause for errors.Is/errors.As.
func (e *StageError) Unwrap() error { return e.Cause }

// Config tunes the guard's invariants.
type Config struct {
	// MinNoiseBits aborts when the tracked log2(scale/noiseBound) falls
	// below it. The bound is the conservative high-probability
	// canonical-embedding estimate, which over-states real noise by tens
	// of bits on deep circuits, so the enforcement threshold is negative:
	// DefaultMinNoiseBits trips only when the message is provably drowned.
	// Set to math.Inf(-1) to disable enforcement (tracking continues).
	MinNoiseBits float64
	// ScaleTol is the relative tolerance for scale-drift detection.
	ScaleTol float64
	// ValueBound is the assumed slot-magnitude of messages entering
	// ciphertext-ciphertext multiplications (cf. Plan.EstimatePrecision).
	ValueBound float64
	// DeepChecks validates every coefficient of every operand against its
	// modulus on each op (always done at decryption). Costs one linear
	// scan per op — negligible next to the NTTs — and catches corrupted
	// residues at the op that first touches them.
	DeepChecks bool
	// Ctx, when non-nil, is checked before every engine op so deadline
	// and cancellation fire mid-stage instead of at stage boundaries.
	Ctx context.Context
}

// DefaultMinNoiseBits is calibrated against the paper's CNN pipelines at
// production parameters (Δ = 2^26, depth ≤ 12): the conservative
// canonical-embedding bound over-states real noise by tens of bits on
// those circuits (the shipped CNN1 bottoms out near −65 "bits" while
// decrypting perfectly, and the sharded CIFAR-10 CNN3 — whose final
// dense stage sums ~600 BSGS diagonal products after two degree-4
// activations — near −131 while still decrypting to ~15 real bits), so
// enforcement sits at −192 — comfortably below any healthy run, while a
// genuinely exhausted budget (scale too small, runaway multiplication,
// corrupted state) collapses by hundreds of bits and still trips
// immediately.
const DefaultMinNoiseBits = -192

// DefaultConfig returns the production defaults described on Config.
func DefaultConfig() Config {
	return Config{
		MinNoiseBits: DefaultMinNoiseBits,
		ScaleTol:     1e-6,
		ValueBound:   32,
		DeepChecks:   true,
	}
}

// trackedCt is the guard's ciphertext handle: the engine's ciphertext
// plus the independently tracked scale mirror and noise bound.
type trackedCt struct {
	ct    henn.Ct
	noise float64
	scale float64
}

// unwrapper is implemented by engine middleware (e.g. faults.Injector)
// so the guard can find the base backend for parameter discovery.
type unwrapper interface {
	Unwrap() henn.Engine
}

// specialModulus is implemented by backends that expose their
// key-switching modulus P.
type specialModulus interface {
	SpecialPFloat() float64
}

// GuardedEngine wraps a henn.Engine with invariant checking, noise-budget
// tracking, panic conversion, and cancellation. It implements henn.Engine
// plus the optional henn.StageAware and henn.NoiseAware interfaces. Safe
// for the same concurrency the wrapped engine supports (the guard's own
// state is mutex-protected).
type GuardedEngine struct {
	inner henn.Engine
	cfg   Config
	model noise.Model
	ks    float64 // per-key-switch noise bound

	// Base-backend contexts for structural/range validation (either may
	// be nil when the base engine is not recognised).
	rnsCtx *ckks.Context
	bigCtx *ckksbig.Context

	mu     sync.Mutex
	stage  string
	err    error
	runCtx context.Context  // per-run request context (SetRunContext)
	qAt    map[int]*big.Int // ckksbig: level → Q_ℓ cache

	// Telemetry: per-stage gauges resolved at stage transitions
	// (telemetry.go). curTel is nil whenever telemetry is disabled, so
	// the per-op publish is one atomic load.
	telMu     sync.Mutex
	stageTels map[string]*stageTel
	curTel    atomic.Pointer[stageTel]
}

// New wraps inner. Pass DefaultConfig() (or a zero Config, which is
// normalised to the defaults field-by-field) and set Config.Ctx to bind
// the guard to a request context.
func New(inner henn.Engine, cfg Config) *GuardedEngine {
	if cfg.MinNoiseBits == 0 {
		cfg.MinNoiseBits = DefaultMinNoiseBits
	}
	if cfg.ScaleTol == 0 {
		cfg.ScaleTol = 1e-6
	}
	if cfg.ValueBound == 0 {
		cfg.ValueBound = 32
	}
	g := &GuardedEngine{inner: inner, cfg: cfg, qAt: map[int]*big.Int{}}

	// Walk middleware to the base backend for noise-model parameters and
	// structural validation handles.
	base := inner
	for {
		u, ok := base.(unwrapper)
		if !ok {
			break
		}
		base = u.Unwrap()
	}
	switch b := base.(type) {
	case *henn.RNSEngine:
		g.rnsCtx = b.Ctx
		g.model = noise.Model{N: b.Ctx.Params.N(), Sigma: b.Ctx.Params.Sigma, H: b.Ctx.Params.H}
	case *henn.RNSEvalEngine:
		g.rnsCtx = b.Ctx
		g.model = noise.Model{N: b.Ctx.Params.N(), Sigma: b.Ctx.Params.Sigma, H: b.Ctx.Params.H}
	case *henn.BigEngine:
		g.bigCtx = b.Ctx
		g.model = noise.Model{N: b.Ctx.Params.N(), Sigma: b.Ctx.Params.Sigma, H: b.Ctx.Params.H}
	default:
		g.model = noise.Model{N: 2 * inner.Slots(), Sigma: ring.DefaultSigma, H: 64}
	}

	// Key-switch noise bound: digits · maxQi / P, cf. noise.Model.KeySwitch.
	maxQi := 0.0
	for l := 0; l <= inner.MaxLevel(); l++ {
		if q := inner.QiFloat(l); q > maxQi {
			maxQi = q
		}
	}
	p := maxQi * math.Exp2(20) // fallback: assume a comfortably large P
	if sm, ok := base.(specialModulus); ok {
		p = sm.SpecialPFloat()
	}
	g.ks = g.model.KeySwitch(inner.MaxLevel()+1, maxQi, p)
	g.telConfigured()
	return g
}

// Err returns the first failure the guard detected (nil while healthy).
// Once set, every subsequent op aborts with the same error.
func (g *GuardedEngine) Err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.err
}

// Reset clears a latched failure and returns it (nil when the guard was
// healthy), so a long-lived guard can be reused for the next independent
// inference — a serving loop keeps one guard per engine because the
// prepared-graph cache is keyed by engine identity, and re-wrapping
// would re-lower and re-encode the whole graph on every failed batch.
//
// Reset is only sound at an inference boundary: ciphertext handles from
// the failed run carry tracked state the failure may have left
// inconsistent and must be discarded, never fed to post-Reset ops. The
// noise/scale mirrors live on the handles themselves, so a fresh
// encrypt-to-decrypt run observes no state from before the Reset.
func (g *GuardedEngine) Reset() error {
	g.mu.Lock()
	err := g.err
	g.err = nil
	g.stage = ""
	g.mu.Unlock()
	return err
}

// SetRunContext binds the guard to the current request's context for
// failure attribution: a trace context attached to it (via
// telemetry.WithTraceContext) is echoed on the guard's failure log
// line, joining a guard abort to the request that caused it. Callers
// that serialize runs (the keyed route evaluates under the client
// entry lock) set it per request and clear it with nil afterwards.
func (g *GuardedEngine) SetRunContext(ctx context.Context) {
	g.mu.Lock()
	g.runCtx = ctx
	g.mu.Unlock()
}

// BeginStage implements henn.StageAware: subsequent failures are labelled
// with name.
func (g *GuardedEngine) BeginStage(name string) {
	g.mu.Lock()
	g.stage = name
	g.mu.Unlock()
	g.telBeginStage(name)
}

// NoiseBits implements henn.NoiseAware.
func (g *GuardedEngine) NoiseBits(ct henn.Ct) float64 {
	if t, ok := ct.(*trackedCt); ok {
		return math.Log2(t.scale / t.noise)
	}
	return math.NaN()
}

// fail records the first error and aborts the current stage by panicking
// with a *StageError; henn's InferCtx recovers it into a returned error.
func (g *GuardedEngine) fail(op string, cause error) {
	g.mu.Lock()
	se := &StageError{Stage: g.stage, Op: op, Cause: cause}
	first := g.err == nil
	if first {
		g.err = se
	}
	g.mu.Unlock()
	if first {
		g.telFailure(cause)
	}
	panic(se)
}

// pre runs the shared op preamble: context and sticky-error checks.
func (g *GuardedEngine) pre(op string) {
	if g.cfg.Ctx != nil {
		if err := g.cfg.Ctx.Err(); err != nil {
			g.fail(op, err)
		}
	}
	g.mu.Lock()
	err := g.err
	g.mu.Unlock()
	if err != nil {
		// Already poisoned: abort immediately rather than computing on
		// state that a previous failure may have left inconsistent.
		panic(err)
	}
}

// call invokes f, converting panics from the wrapped engine into
// ErrEnginePanic. Guard-originated aborts propagate unchanged.
func (g *GuardedEngine) call(op string, f func() henn.Ct) henn.Ct {
	ct, perr := func() (ct henn.Ct, perr error) {
		defer func() {
			if r := recover(); r != nil {
				if se, ok := r.(*StageError); ok {
					panic(se)
				}
				perr = fmt.Errorf("%v", r)
			}
		}()
		return f(), nil
	}()
	if perr != nil {
		g.fail(op, fmt.Errorf("%w: %v", ErrEnginePanic, perr))
	}
	return ct
}

// in validates an operand ciphertext and unwraps it.
func (g *GuardedEngine) in(op string, ct henn.Ct) *trackedCt {
	t, ok := ct.(*trackedCt)
	if !ok {
		g.fail(op, fmt.Errorf("%w: %T", ErrForeignCiphertext, ct))
	}
	g.validate(op, t.ct, g.cfg.DeepChecks)
	got := g.scaleOf(op, t.ct)
	if !scaleClose(got, t.scale, g.cfg.ScaleTol) {
		g.fail(op, fmt.Errorf("%w: engine reports scale 2^%.4f, guard tracked 2^%.4f",
			ErrScaleDrift, math.Log2(got), math.Log2(t.scale)))
	}
	return t
}

// out validates an op result against the expected scale and noise budget
// and wraps it.
func (g *GuardedEngine) out(op string, ct henn.Ct, noiseBound, wantScale float64) henn.Ct {
	g.validate(op, ct, g.cfg.DeepChecks)
	got := g.scaleOf(op, ct)
	if !scaleClose(got, wantScale, g.cfg.ScaleTol) {
		g.fail(op, fmt.Errorf("%w: op produced scale 2^%.4f, expected 2^%.4f",
			ErrScaleDrift, math.Log2(got), math.Log2(wantScale)))
	}
	bits := math.Log2(got / noiseBound)
	if bits < g.cfg.MinNoiseBits || math.IsNaN(bits) {
		g.fail(op, fmt.Errorf("%w: %.1f bits of precision remain (< %.1f)",
			ErrNoiseBudgetExhausted, bits, g.cfg.MinNoiseBits))
	}
	g.telOut(ct, bits, got)
	return &trackedCt{ct: ct, noise: noiseBound, scale: got}
}

// scaleOf reads the engine's scale without validation (must not recurse).
func (g *GuardedEngine) scaleOf(op string, ct henn.Ct) float64 {
	var s float64
	g.call(op, func() henn.Ct { s = g.inner.ScaleOf(ct); return nil })
	if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		g.fail(op, fmt.Errorf("%w: non-finite ciphertext scale %v", ErrScaleDrift, s))
	}
	return s
}

func scaleClose(a, b, tol float64) bool {
	return math.Abs(a-b) <= math.Max(math.Abs(a), math.Abs(b))*tol
}

// checkVec rejects plaintext operand vectors with NaN/Inf entries or more
// entries than slots.
func (g *GuardedEngine) checkVec(op string, v []float64) {
	if len(v) > g.inner.Slots() {
		g.fail(op, fmt.Errorf("%w: %d values exceed %d slots", ErrInvalidPlaintext, len(v), g.inner.Slots()))
	}
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			g.fail(op, fmt.Errorf("%w: non-finite value %v at slot %d", ErrInvalidPlaintext, x, i))
		}
	}
}

// maxAbs returns the plaintext canonical-norm proxy used by the noise
// bounds (the maximum slot magnitude, floored at 1 so a contractive
// plaintext never shrinks the tracked bound below additive terms).
func maxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	if m < 1 {
		return 1
	}
	return m
}

// ----- henn.Engine implementation -----

// Name implements henn.Engine (the wrapped backend's name, so reports and
// tables are unchanged by guarding).
func (g *GuardedEngine) Name() string { return g.inner.Name() }

// Slots implements henn.Engine.
func (g *GuardedEngine) Slots() int { return g.inner.Slots() }

// MaxLevel implements henn.Engine.
func (g *GuardedEngine) MaxLevel() int { return g.inner.MaxLevel() }

// Scale implements henn.Engine.
func (g *GuardedEngine) Scale() float64 { return g.inner.Scale() }

// QiFloat implements henn.Engine.
func (g *GuardedEngine) QiFloat(level int) float64 { return g.inner.QiFloat(level) }

// peek unwraps without validation (metadata accessors).
func peek(ct henn.Ct) henn.Ct {
	if t, ok := ct.(*trackedCt); ok {
		return t.ct
	}
	return ct
}

// Level implements henn.Engine.
func (g *GuardedEngine) Level(ct henn.Ct) int { return g.inner.Level(peek(ct)) }

// ScaleOf implements henn.Engine.
func (g *GuardedEngine) ScaleOf(ct henn.Ct) float64 { return g.inner.ScaleOf(peek(ct)) }

// EncryptVec implements henn.Engine.
func (g *GuardedEngine) EncryptVec(values []float64) henn.Ct {
	const op = "EncryptVec"
	g.pre(op)
	g.checkVec(op, values)
	ct := g.call(op, func() henn.Ct { return g.inner.EncryptVec(values) })
	return g.out(op, ct, g.model.Fresh(), g.inner.Scale())
}

// DecryptVec implements henn.Engine. The full coefficient range check
// always runs here (regardless of DeepChecks), and the decrypted slots
// are scanned for NaN/Inf.
func (g *GuardedEngine) DecryptVec(ct henn.Ct) []float64 {
	const op = "DecryptVec"
	g.pre(op)
	t, ok := ct.(*trackedCt)
	if !ok {
		g.fail(op, fmt.Errorf("%w: %T", ErrForeignCiphertext, ct))
	}
	g.validate(op, t.ct, true)
	var out []float64
	g.call(op, func() henn.Ct { out = g.inner.DecryptVec(t.ct); return nil })
	for i, x := range out {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			g.fail(op, fmt.Errorf("%w: decryption produced %v at slot %d", ErrCorruptCiphertext, x, i))
		}
	}
	return out
}

// Add implements henn.Engine.
func (g *GuardedEngine) Add(a, b henn.Ct) henn.Ct {
	const op = "Add"
	g.pre(op)
	ta, tb := g.in(op, a), g.in(op, b)
	if !scaleClose(ta.scale, tb.scale, g.cfg.ScaleTol) {
		g.fail(op, fmt.Errorf("%w: operand scales 2^%.4f vs 2^%.4f",
			ErrScaleDrift, math.Log2(ta.scale), math.Log2(tb.scale)))
	}
	ct := g.call(op, func() henn.Ct { return g.inner.Add(ta.ct, tb.ct) })
	return g.out(op, ct, ta.noise+tb.noise, ta.scale)
}

// AddPlainVec implements henn.Engine.
func (g *GuardedEngine) AddPlainVec(ct henn.Ct, v []float64) henn.Ct {
	const op = "AddPlainVec"
	g.pre(op)
	t := g.in(op, ct)
	g.checkVec(op, v)
	out := g.call(op, func() henn.Ct { return g.inner.AddPlainVec(t.ct, v) })
	return g.out(op, out, t.noise, t.scale)
}

// AddPlainVecCached implements henn.Engine.
func (g *GuardedEngine) AddPlainVecCached(ct henn.Ct, key string, v []float64) henn.Ct {
	const op = "AddPlainVecCached"
	g.pre(op)
	t := g.in(op, ct)
	g.checkVec(op, v)
	out := g.call(op, func() henn.Ct { return g.inner.AddPlainVecCached(t.ct, key, v) })
	return g.out(op, out, t.noise, t.scale)
}

// checkPtScale validates an explicit plaintext scale.
func (g *GuardedEngine) checkPtScale(op string, scale float64) {
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 0) {
		g.fail(op, fmt.Errorf("%w: plaintext scale %v", ErrInvalidPlaintext, scale))
	}
}

// MulPlainVecAtScale implements henn.Engine.
func (g *GuardedEngine) MulPlainVecAtScale(ct henn.Ct, v []float64, scale float64) henn.Ct {
	const op = "MulPlainVecAtScale"
	g.pre(op)
	t := g.in(op, ct)
	g.checkVec(op, v)
	g.checkPtScale(op, scale)
	out := g.call(op, func() henn.Ct { return g.inner.MulPlainVecAtScale(t.ct, v, scale) })
	return g.out(op, out, g.model.MulPlain(t.noise, maxAbs(v)*scale), t.scale*scale)
}

// MulPlainVecCached implements henn.Engine.
func (g *GuardedEngine) MulPlainVecCached(ct henn.Ct, key string, v []float64, scale float64) henn.Ct {
	const op = "MulPlainVecCached"
	g.pre(op)
	t := g.in(op, ct)
	g.checkVec(op, v)
	g.checkPtScale(op, scale)
	out := g.call(op, func() henn.Ct { return g.inner.MulPlainVecCached(t.ct, key, v, scale) })
	return g.out(op, out, g.model.MulPlain(t.noise, maxAbs(v)*scale), t.scale*scale)
}

// MulRelin implements henn.Engine.
func (g *GuardedEngine) MulRelin(a, b henn.Ct) henn.Ct {
	const op = "MulRelin"
	g.pre(op)
	ta, tb := g.in(op, a), g.in(op, b)
	ct := g.call(op, func() henn.Ct { return g.inner.MulRelin(ta.ct, tb.ct) })
	nu := g.cfg.ValueBound
	n := g.model.Mul(nu*ta.scale, ta.noise, nu*tb.scale, tb.noise) + g.ks
	return g.out(op, ct, n, ta.scale*tb.scale)
}

// MulInt implements henn.Engine.
func (g *GuardedEngine) MulInt(ct henn.Ct, n int64) henn.Ct {
	const op = "MulInt"
	g.pre(op)
	t := g.in(op, ct)
	out := g.call(op, func() henn.Ct { return g.inner.MulInt(t.ct, n) })
	f := math.Abs(float64(n))
	if f < 1 {
		f = 1
	}
	return g.out(op, out, t.noise*f, t.scale)
}

// Rescale implements henn.Engine.
// Recombine implements ir.Recombiner so a guarded engine keeps the
// executor's fused-recombine fast path. It delegates to the inner
// engine's fused implementation when present (falling back to the
// equivalent MulInt/Add chain otherwise) and tracks the accumulated
// noise bound Σᵢ max(|wᵢ|,1)·noiseᵢ exactly like the chain would.
func (g *GuardedEngine) Recombine(args []henn.Ct, weights []int64) henn.Ct {
	const op = "Recombine"
	g.pre(op)
	ts := make([]*trackedCt, len(args))
	noise := 0.0
	for i, a := range args {
		ts[i] = g.in(op, a)
		if !scaleClose(ts[i].scale, ts[0].scale, g.cfg.ScaleTol) {
			g.fail(op, fmt.Errorf("%w: operand %d scale 2^%.4f vs 2^%.4f",
				ErrScaleDrift, i, math.Log2(ts[i].scale), math.Log2(ts[0].scale)))
		}
		f := math.Abs(float64(weights[i]))
		if f < 1 {
			f = 1
		}
		noise += ts[i].noise * f
	}
	ct := g.call(op, func() henn.Ct {
		if rc, ok := g.inner.(interface {
			Recombine(args []henn.Ct, weights []int64) henn.Ct
		}); ok {
			inner := make([]henn.Ct, len(ts))
			for i, t := range ts {
				inner[i] = t.ct
			}
			return rc.Recombine(inner, weights)
		}
		acc := ts[0].ct // weights[0] = 1
		for i := 1; i < len(ts); i++ {
			c := ts[i].ct
			if weights[i] != 1 {
				c = g.inner.MulInt(c, weights[i])
			}
			acc = g.inner.Add(acc, c)
		}
		return acc
	})
	return g.out(op, ct, noise, ts[0].scale)
}

func (g *GuardedEngine) Rescale(ct henn.Ct) henn.Ct {
	const op = "Rescale"
	g.pre(op)
	t := g.in(op, ct)
	level := g.inner.Level(t.ct)
	if level <= 0 {
		g.fail(op, fmt.Errorf("%w: rescale at level %d", ErrLevelExhausted, level))
	}
	q := g.inner.QiFloat(level)
	out := g.call(op, func() henn.Ct { return g.inner.Rescale(t.ct) })
	return g.out(op, out, t.noise/q+g.model.Rescale(), t.scale/q)
}

// DropLevel implements henn.Engine.
func (g *GuardedEngine) DropLevel(ct henn.Ct, n int) henn.Ct {
	const op = "DropLevel"
	g.pre(op)
	t := g.in(op, ct)
	if n < 0 || g.inner.Level(t.ct)-n < 0 {
		g.fail(op, fmt.Errorf("%w: drop %d levels from level %d", ErrLevelExhausted, n, g.inner.Level(t.ct)))
	}
	out := g.call(op, func() henn.Ct { return g.inner.DropLevel(t.ct, n) })
	return g.out(op, out, t.noise, t.scale)
}

// Rotate implements henn.Engine.
func (g *GuardedEngine) Rotate(ct henn.Ct, k int) henn.Ct {
	const op = "Rotate"
	g.pre(op)
	t := g.in(op, ct)
	if k == 0 {
		return t
	}
	out := g.call(op, func() henn.Ct { return g.inner.Rotate(t.ct, k) })
	return g.out(op, out, t.noise+g.ks, t.scale)
}

// RotateMany implements henn.Engine.
func (g *GuardedEngine) RotateMany(ct henn.Ct, ks []int) map[int]henn.Ct {
	const op = "RotateMany"
	g.pre(op)
	t := g.in(op, ct)
	var outs map[int]henn.Ct
	g.call(op, func() henn.Ct { outs = g.inner.RotateMany(t.ct, ks); return nil })
	m := make(map[int]henn.Ct, len(outs))
	for k, o := range outs {
		if k == 0 {
			m[0] = t
			continue
		}
		m[k] = g.out(op, o, t.noise+g.ks, t.scale)
	}
	return m
}

// trackedPt is the guard's pre-encoded plaintext handle: the engine's
// plaintext plus the metadata the noise and scale mirrors need (an opaque
// Pt handle carries neither the operand magnitude nor its encode scale).
type trackedPt struct {
	pt    henn.Pt
	level int
	scale float64
	// maxScaled is maxAbs(values)·scale: the plaintext canonical-norm
	// proxy the noise model's MulPlain bound takes.
	maxScaled float64
}

// EncodeVecsAt implements henn.Engine: every operand is validated like
// the per-op plaintext paths, then wrapped so MulPlainPt/AddPlainPt can
// track noise and scale without re-reading the values.
func (g *GuardedEngine) EncodeVecsAt(specs []henn.PlainSpec) []henn.Pt {
	const op = "EncodeVecsAt"
	g.pre(op)
	for _, s := range specs {
		g.checkVec(op, s.Values)
		g.checkPtScale(op, s.Scale)
		if s.Level < 0 || s.Level > g.inner.MaxLevel() {
			g.fail(op, fmt.Errorf("%w: encode level %d outside [0, %d]", ErrInvalidPlaintext, s.Level, g.inner.MaxLevel()))
		}
	}
	var inner []henn.Pt
	g.call(op, func() henn.Ct { inner = g.inner.EncodeVecsAt(specs); return nil })
	if len(inner) != len(specs) {
		g.fail(op, fmt.Errorf("%w: engine encoded %d of %d specs", ErrInvalidPlaintext, len(inner), len(specs)))
	}
	out := make([]henn.Pt, len(inner))
	for i, pt := range inner {
		out[i] = &trackedPt{pt: pt, level: specs[i].Level, scale: specs[i].Scale,
			maxScaled: maxAbs(specs[i].Values) * specs[i].Scale}
	}
	return out
}

// inPt validates a pre-encoded plaintext operand against the ciphertext
// it is applied to and unwraps it.
func (g *GuardedEngine) inPt(op string, t *trackedCt, pt henn.Pt) *trackedPt {
	tp, ok := pt.(*trackedPt)
	if !ok {
		g.fail(op, fmt.Errorf("%w: foreign plaintext handle %T", ErrInvalidPlaintext, pt))
	}
	if lvl := g.inner.Level(t.ct); lvl != tp.level {
		g.fail(op, fmt.Errorf("%w: plaintext encoded at level %d applied at level %d",
			ErrInvalidPlaintext, tp.level, lvl))
	}
	return tp
}

// MulPlainPt implements henn.Engine.
func (g *GuardedEngine) MulPlainPt(ct henn.Ct, pt henn.Pt) henn.Ct {
	const op = "MulPlainPt"
	g.pre(op)
	t := g.in(op, ct)
	tp := g.inPt(op, t, pt)
	out := g.call(op, func() henn.Ct { return g.inner.MulPlainPt(t.ct, tp.pt) })
	return g.out(op, out, g.model.MulPlain(t.noise, tp.maxScaled), t.scale*tp.scale)
}

// AddPlainPt implements henn.Engine.
func (g *GuardedEngine) AddPlainPt(ct henn.Ct, pt henn.Pt) henn.Ct {
	const op = "AddPlainPt"
	g.pre(op)
	t := g.in(op, ct)
	tp := g.inPt(op, t, pt)
	if !scaleClose(t.scale, tp.scale, g.cfg.ScaleTol) {
		g.fail(op, fmt.Errorf("%w: plaintext scale 2^%.4f vs ciphertext 2^%.4f",
			ErrScaleDrift, math.Log2(tp.scale), math.Log2(t.scale)))
	}
	out := g.call(op, func() henn.Ct { return g.inner.AddPlainPt(t.ct, tp.pt) })
	return g.out(op, out, t.noise, t.scale)
}

var (
	_ henn.Engine     = (*GuardedEngine)(nil)
	_ henn.StageAware = (*GuardedEngine)(nil)
	_ henn.NoiseAware = (*GuardedEngine)(nil)
)
