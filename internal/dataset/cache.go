package dataset

import (
	"archive/tar"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
)

// The download cache keeps one verified copy of the CIFAR-10 binary
// tarball per machine. Trust model: the archive digest is pinned by the
// CIFAR10_SHA256 environment variable when set; otherwise the digest
// observed on first download is recorded in a sidecar file and every
// later load must match it (trust-on-first-use). A mismatch surfaces as
// ErrCorrupt and the cached archive is left in place for inspection —
// it is never silently re-downloaded.

const cifarURL = "https://www.cs.toronto.edu/~kriz/cifar-10-binary.tar.gz"

// cacheDir resolves the dataset cache root: CIFAR10_CACHE when set, else
// the user cache directory under cnnhe/.
func cacheDir() (string, error) {
	if dir := os.Getenv("CIFAR10_CACHE"); dir != "" {
		return dir, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("%w: cifar10: no cache directory: %v", ErrMissingData, err)
	}
	return filepath.Join(base, "cnnhe"), nil
}

// sha256File returns the hex digest of the file at path.
func sha256File(path string) (string, error) {
	f, err := os.Open(path)
	if err != nil {
		return "", err
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// verifyArchive checks the tarball digest against the pin: the
// CIFAR10_SHA256 environment variable when set, else the
// trust-on-first-use sidecar (written on first sight).
func verifyArchive(archive string) error {
	got, err := sha256File(archive)
	if err != nil {
		return err
	}
	if pin := os.Getenv("CIFAR10_SHA256"); pin != "" {
		if !strings.EqualFold(got, pin) {
			return fmt.Errorf("%w: cifar10: archive sha256 %s does not match CIFAR10_SHA256 %s", ErrCorrupt, got, pin)
		}
		return nil
	}
	sidecar := archive + ".sha256"
	if data, err := os.ReadFile(sidecar); err == nil {
		want := strings.TrimSpace(string(data))
		if !strings.EqualFold(got, want) {
			return fmt.Errorf("%w: cifar10: archive sha256 %s does not match recorded %s", ErrCorrupt, got, want)
		}
		return nil
	}
	return os.WriteFile(sidecar, []byte(got+"\n"), 0o644)
}

// download fetches url to path via a temp file (no partial archives on
// interrupt).
func download(url, path string) error {
	resp, err := http.Get(url)
	if err != nil {
		return fmt.Errorf("%w: cifar10: download: %v", ErrMissingData, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%w: cifar10: download: %s", ErrMissingData, resp.Status)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".cifar10-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := io.Copy(tmp, resp.Body); err != nil {
		tmp.Close()
		return fmt.Errorf("%w: cifar10: download interrupted: %v", ErrMissingData, err)
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// extractTarGz unpacks the batch files (*.bin) from the archive into
// destination dir, flattening any leading path components and refusing
// anything else — the archive contents are untrusted until verified.
func extractTarGz(archive, dir string) error {
	f, err := os.Open(archive)
	if err != nil {
		return err
	}
	defer f.Close()
	gz, err := gzip.NewReader(f)
	if err != nil {
		return fmt.Errorf("%w: cifar10: %s: %v", ErrCorrupt, archive, err)
	}
	defer gz.Close()
	tr := tar.NewReader(gz)
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("%w: cifar10: %s: %v", ErrCorrupt, archive, err)
		}
		if hdr.Typeflag != tar.TypeReg {
			continue
		}
		name := filepath.Base(hdr.Name)
		if filepath.Ext(name) != ".bin" && name != "batches.meta.txt" {
			continue
		}
		out, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, tr); err != nil {
			out.Close()
			return fmt.Errorf("%w: cifar10: %s: %v", ErrCorrupt, archive, err)
		}
		if err := out.Close(); err != nil {
			return err
		}
	}
}

// EnsureCIFAR10 returns a directory containing the extracted CIFAR-10
// binary batches, materializing the download cache as needed:
//
//  1. cached batch directory present → return it,
//  2. cached archive present → verify checksum, extract, return,
//  3. otherwise, when CIFAR10_DOWNLOAD is set to a non-empty value,
//     download the canonical tarball, verify, extract, return,
//  4. else ErrMissingData (callers fall back to synthetic data).
func EnsureCIFAR10() (string, error) {
	root, err := cacheDir()
	if err != nil {
		return "", err
	}
	batches := filepath.Join(root, "cifar-10-batches-bin")
	if _, err := os.Stat(filepath.Join(batches, cifarTestBatch)); err == nil {
		return batches, nil
	}
	archive := filepath.Join(root, filepath.Base(cifarURL))
	if _, err := os.Stat(archive); err != nil {
		if os.Getenv("CIFAR10_DOWNLOAD") == "" {
			return "", fmt.Errorf("%w: cifar10: no cached data under %s (set CIFAR10_DIR, or CIFAR10_DOWNLOAD=1 to fetch)", ErrMissingData, root)
		}
		if err := os.MkdirAll(root, 0o755); err != nil {
			return "", err
		}
		if err := download(cifarURL, archive); err != nil {
			return "", err
		}
	}
	if err := verifyArchive(archive); err != nil {
		return "", err
	}
	if err := os.MkdirAll(batches, 0o755); err != nil {
		return "", err
	}
	if err := extractTarGz(archive, batches); err != nil {
		return "", err
	}
	return batches, nil
}
