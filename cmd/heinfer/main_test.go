package main

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cnnhe/internal/guard"
	"cnnhe/internal/henn"
)

func TestClassifyExit(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want int
	}{
		{"nil", nil, exitOK},
		{"deadline", context.DeadlineExceeded, exitDeadline},
		{"cancelled", fmt.Errorf("stage: %w", context.Canceled), exitDeadline},
		{"noise", guard.ErrNoiseBudgetExhausted, exitExhausted},
		{"level", fmt.Errorf("op: %w", guard.ErrLevelExhausted), exitExhausted},
		{"corrupt ct", guard.ErrCorruptCiphertext, exitCorrupt},
		{"scale drift", guard.ErrScaleDrift, exitCorrupt},
		{"bad input", henn.ErrBadInput, exitCorrupt},
		{"unclassified", errors.New("boom"), exitSetup},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := classifyExit(tc.err); got != tc.want {
				t.Fatalf("classifyExit(%v) = %d, want %d", tc.err, got, tc.want)
			}
		})
	}
}

func TestRetryableClass(t *testing.T) {
	// Deterministic failures must not be retried: the same attempt fails
	// the same way every time.
	for _, code := range []int{exitCorrupt, exitExhausted} {
		if retryableClass(code) {
			t.Errorf("class %s (exit %d) must not be retryable", exitClass(code), code)
		}
	}
	// Transient classes are retried.
	for _, code := range []int{exitSetup, exitDeadline} {
		if !retryableClass(code) {
			t.Errorf("class %s (exit %d) must be retryable", exitClass(code), code)
		}
	}
}

func TestRetryBackoff(t *testing.T) {
	// The deterministic (jitter = 0) floor doubles per attempt until the
	// cap: d/2 with d = base<<attempt.
	for attempt, wantFloor := range []time.Duration{
		baseBackoff / 2, baseBackoff, 2 * baseBackoff, 4 * baseBackoff,
	} {
		if got := retryBackoff(attempt, 0); got != wantFloor {
			t.Errorf("retryBackoff(%d, 0) = %v, want %v", attempt, got, wantFloor)
		}
	}
	// Jitter stays within [d/2, d] and the cap holds for large attempts.
	for attempt := 0; attempt < 40; attempt++ {
		for _, j := range []float64{0, 0.25, 0.5, 0.999} {
			got := retryBackoff(attempt, j)
			if got < baseBackoff/2 || got > maxBackoff {
				t.Fatalf("retryBackoff(%d, %v) = %v outside [%v, %v]",
					attempt, j, got, baseBackoff/2, maxBackoff)
			}
		}
	}
	if got := retryBackoff(63, 0.999); got > maxBackoff {
		t.Fatalf("backoff cap exceeded: %v", got)
	}
}
