package henn

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cnnhe/internal/henn/exec"
	"cnnhe/internal/henn/ir/opt"
	"cnnhe/internal/rnsdec"
	"cnnhe/internal/telemetry"
)

// ErrBadInput tags input-validation failures: mis-sized images, label/image
// length mismatches, and other caller errors detected before any
// homomorphic work is done. Match with errors.Is.
var ErrBadInput = errors.New("henn: bad input")

func badInput(format string, args ...interface{}) error {
	return fmt.Errorf("%w: %s", ErrBadInput, fmt.Sprintf(format, args...))
}

// Logits is the decrypted output of an encrypted classification.
type Logits []float64

// Argmax returns the predicted class: the lowest index holding the
// maximum logit. NaN entries are skipped — every `x > NaN` comparison is
// false, so a naive scan seeded at index 0 would report class 0 whenever
// l[0] is NaN regardless of the remaining logits. When every entry is
// NaN (or l is empty) it returns 0, deterministically.
func (l Logits) Argmax() int {
	best := -1
	for i, v := range l {
		if math.IsNaN(v) {
			continue
		}
		if best < 0 || v > l[best] {
			best = i
		}
	}
	if best < 0 {
		return 0
	}
	return best
}

// StageAware is optionally implemented by engines (notably
// guard.GuardedEngine) that label their errors with the pipeline stage
// currently being evaluated. InferCtx announces each stage before
// evaluating it.
type StageAware interface {
	BeginStage(name string)
}

// NoiseAware is optionally implemented by engines that track a
// per-ciphertext noise-budget estimate. NoiseBits returns
// log2(scale/noiseBound) — the significant fractional bits remaining.
type NoiseAware interface {
	NoiseBits(ct Ct) float64
}

// StageReport records one pipeline step of an InferCtx run.
type StageReport struct {
	Stage    string
	Duration time.Duration
	// Level and Scale are the ciphertext metadata after the stage.
	Level int
	Scale float64
	// NoiseBits is the engine's remaining precision estimate after the
	// stage (NaN when the engine does not track noise).
	NoiseBits float64
}

// Report is the per-stage account of one inference: timings for the
// client-side encrypt/decrypt halves, the server-side evaluation total
// (the paper's classification latency), and one row per stage.
type Report struct {
	Engine  string
	Encrypt time.Duration
	Eval    time.Duration
	Decrypt time.Duration
	Stages  []StageReport
	// FailedStage names the stage that errored ("" on success).
	FailedStage string
}

// String renders the report as a small table.
func (r *Report) String() string {
	s := fmt.Sprintf("engine %s: encrypt %v, eval %v, decrypt %v\n", r.Engine, r.Encrypt, r.Eval, r.Decrypt)
	for _, st := range r.Stages {
		s += fmt.Sprintf("  %-56s %10v  level %d", st.Stage, st.Duration.Round(time.Microsecond), st.Level)
		if !math.IsNaN(st.NoiseBits) {
			s += fmt.Sprintf("  noise budget %.1f bits", st.NoiseBits)
		}
		s += "\n"
	}
	if r.FailedStage != "" {
		s += fmt.Sprintf("  FAILED at %s\n", r.FailedStage)
	}
	return s
}

// evalGuarded runs f, converting panics — engine misuse assertions and
// guard-engine aborts — into errors. A recovered value that already is an
// error (e.g. *guard.StageError) is returned as-is so callers can classify
// it with errors.Is/errors.As.
func evalGuarded(stage string, f func() Ct) (ct Ct, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
			} else {
				err = fmt.Errorf("henn: panic in %s: %v", stage, r)
			}
		}
	}()
	return f(), nil
}

// stageRunner factors the per-stage bookkeeping shared by the plain and
// RNS inference paths: context checks before every stage, stage
// announcement to StageAware engines, and panic-to-error conversion.
type stageRunner struct {
	ctx context.Context
	e   Engine
	sa  StageAware
	na  NoiseAware
	rep *Report
}

func newStageRunner(ctx context.Context, e Engine, rep *Report) *stageRunner {
	sr := &stageRunner{ctx: ctx, e: e, rep: rep}
	sr.sa, _ = e.(StageAware)
	sr.na, _ = e.(NoiseAware)
	return sr
}

// step evaluates one named stage. On failure the report's FailedStage is
// set and a classified error is returned.
func (sr *stageRunner) step(name string, f func() Ct) (Ct, error) {
	if err := sr.ctx.Err(); err != nil {
		sr.rep.FailedStage = name
		return nil, fmt.Errorf("henn: %s: %w", name, err)
	}
	if sr.sa != nil {
		sr.sa.BeginStage(name)
	}
	ct, err := evalGuarded(name, f)
	if err != nil {
		sr.rep.FailedStage = name
	}
	return ct, err
}

// record appends a stage row for ct to the report.
func (sr *stageRunner) record(name string, d time.Duration, ct Ct) {
	row := StageReport{Stage: name, Duration: d, Level: sr.e.Level(ct), Scale: sr.e.ScaleOf(ct), NoiseBits: math.NaN()}
	if sr.na != nil {
		row.NoiseBits = sr.na.NoiseBits(ct)
	}
	sr.rep.Stages = append(sr.rep.Stages, row)
}

// fillReport copies an executor result into the legacy Report shape.
func fillReport(rep *Report, res *exec.Result) {
	rep.Encrypt = res.Encrypt
	rep.Eval = res.Eval
	if res.FailedStage != "" {
		rep.FailedStage = res.FailedStage
	}
	for _, st := range res.Stages {
		rep.Stages = append(rep.Stages, StageReport{
			Stage: st.Name, Duration: st.Duration,
			Level: st.Level, Scale: st.Scale, NoiseBits: st.NoiseBits,
		})
	}
}

// decryptLogits runs the shared decrypt epilogue of both pipelines.
func decryptLogits(ctx context.Context, e Engine, ct Ct, outputDim int, rep *Report) (Logits, *Report, error) {
	sr := newStageRunner(ctx, e, rep)
	var out []float64
	t := time.Now()
	_, err := sr.step("decrypt", func() Ct { out = e.DecryptVec(ct); return nil })
	rep.Decrypt = time.Since(t)
	telemetry.RecorderFrom(ctx).RecordPhase("decrypt", t, time.Now())
	if err != nil {
		return nil, rep, err
	}
	if len(out) < outputDim {
		return nil, rep, badInput("engine decrypted %d slots, plan outputs %d", len(out), outputDim)
	}
	return Logits(out[:outputDim]), rep, nil
}

// InferCtx classifies one raw image (pixels in [0, 255], length InputDim)
// with full error reporting: the input is validated, the context deadline
// is checked before every op, engine panics are converted to errors, and
// a per-stage timing/noise Report is returned alongside the logits. The
// report is non-nil even on failure (FailedStage names the stage that
// errored). Pair with guard.New to also get per-op invariant checking and
// noise-budget enforcement.
//
// The evaluation runs on the lowered op graph (Lower) with ahead-of-time
// encoded plaintexts, prepared once per engine and shared by every
// subsequent inference. The sequential executor replays the graph in the
// legacy interpreter's exact engine-call order, so logits are
// bit-identical to InferCtxLegacy.
func (p *Plan) InferCtx(ctx context.Context, e Engine, image []float64) (Logits, *Report, error) {
	rep := &Report{Engine: e.Name()}
	if len(image) != p.InputDim {
		return nil, rep, badInput("image length %d does not match plan input dim %d", len(image), p.InputDim)
	}
	pr, err := p.prepare(e)
	if err != nil {
		rep.FailedStage = "prepare"
		return nil, rep, err
	}
	defer telInferStart()()
	res, err := pr.Run(ctx, [][]float64{image}, exec.Options{})
	fillReport(rep, res)
	if err != nil {
		return nil, rep, err
	}
	return decryptLogits(ctx, e, res.Out, p.OutputDim, rep)
}

// InferCtxLegacy is the original eager stage interpreter, retained as the
// reference oracle the executor is tested bit-identical against.
func (p *Plan) InferCtxLegacy(ctx context.Context, e Engine, image []float64) (Logits, *Report, error) {
	rep := &Report{Engine: e.Name()}
	if len(image) != p.InputDim {
		return nil, rep, badInput("image length %d does not match plan input dim %d", len(image), p.InputDim)
	}
	sr := newStageRunner(ctx, e, rep)

	t0 := time.Now()
	ct, err := sr.step("encrypt", func() Ct { return e.EncryptVec(image) })
	rep.Encrypt = time.Since(t0)
	if err != nil {
		return nil, rep, err
	}
	for i, s := range p.Stages {
		name := fmt.Sprintf("stage %d (%s)", i, s.Describe())
		s := s
		t1 := time.Now()
		ct, err = sr.step(name, func() Ct { return s.Eval(e, ct) })
		d := time.Since(t1)
		rep.Eval += d
		if err != nil {
			return nil, rep, err
		}
		sr.record(name, d, ct)
	}
	var out []float64
	t2 := time.Now()
	_, err = sr.step("decrypt", func() Ct { out = e.DecryptVec(ct); return nil })
	rep.Decrypt = time.Since(t2)
	if err != nil {
		return nil, rep, err
	}
	if len(out) < p.OutputDim {
		return nil, rep, badInput("engine decrypted %d slots, plan outputs %d", len(out), p.OutputDim)
	}
	return Logits(out[:p.OutputDim]), rep, nil
}

// Infer classifies one raw image: encrypt → evaluate every stage →
// decrypt. It returns the logits and the server-side evaluation latency
// (excluding client encrypt/decrypt, as the paper measures classification
// latency of the homomorphic pipeline). It is a thin wrapper over
// InferCtx that panics on error, preserving the historical fail-loud
// behaviour of the engines; callers that want typed errors use InferCtx.
func (p *Plan) Infer(e Engine, image []float64) (Logits, time.Duration) {
	logits, rep, err := p.InferCtx(context.Background(), e, image)
	if err != nil {
		panic(err)
	}
	return logits, rep.Eval
}

// InferBatch classifies images concurrently on up to workers goroutines,
// all sharing one prepared graph (and thus one ahead-of-time encoded
// plaintext set). Encryption is serialized — the engines' encryptors
// draw from a non-thread-safe PRNG — while evaluation and decryption,
// which are stateless, overlap freely. The engine must be one whose
// evaluator is safe for concurrent use (both backends are; a guarded
// engine serializes internally). Results are in image order; the first
// error aborts the batch.
func (p *Plan) InferBatch(ctx context.Context, e Engine, images [][]float64, workers int) ([]Logits, error) {
	for i, img := range images {
		if len(img) != p.InputDim {
			return nil, badInput("image %d length %d does not match plan input dim %d", i, len(img), p.InputDim)
		}
	}
	pr, err := p.prepare(e)
	if err != nil {
		return nil, err
	}
	encs := make([][]Ct, len(images))
	for i, img := range images {
		cts, _, _, err := pr.EncryptInputs(ctx, [][]float64{img})
		if err != nil {
			return nil, fmt.Errorf("image %d: %w", i, err)
		}
		encs[i] = cts
	}
	if workers < 1 {
		workers = 1
	}
	if workers > len(images) {
		workers = len(images)
	}
	out := make([]Logits, len(images))
	errs := make([]error, len(images))
	var next int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(images) {
					return
				}
				done := telInferStart()
				res, err := pr.RunEncrypted(ctx, encs[i], exec.Options{})
				if err != nil {
					errs[i] = err
					done()
					continue
				}
				logits, _, err := decryptLogits(ctx, e, res.Out, p.OutputDim, &Report{Engine: e.Name()})
				out[i], errs[i] = logits, err
				done()
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("image %d: %w", i, err)
		}
	}
	return out, nil
}

// Warm lowers the plan for e and pre-encodes its plaintext operands, so
// a later InferCtx pays no one-time preparation cost inside its
// deadline. Safe to call concurrently; repeated calls are no-ops.
func (p *Plan) Warm(e Engine) error {
	_, err := p.prepare(e)
	return err
}

// LatencyStats aggregates per-inference latencies.
type LatencyStats struct {
	Min, Max, Avg time.Duration
	N             int

	// samples holds every recorded latency, sorted by finish, so
	// percentiles can be read after aggregation.
	samples []time.Duration
}

func newLatencyStats() LatencyStats {
	return LatencyStats{Min: time.Duration(1<<63 - 1)}
}

func (s *LatencyStats) add(d time.Duration) {
	if d < s.Min {
		s.Min = d
	}
	if d > s.Max {
		s.Max = d
	}
	s.Avg += d
	s.N++
	s.samples = append(s.samples, d)
}

func (s *LatencyStats) finish() {
	if s.N == 0 {
		// No samples: render as zeros rather than leaving the Min sentinel
		// (and a meaningless Max/Avg) visible.
		*s = LatencyStats{}
		return
	}
	s.Avg /= time.Duration(s.N)
	sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
}

// Percentile returns the nearest-rank p-th percentile (p in [0, 100]) of
// the recorded latencies, or 0 when no samples were recorded.
func (s *LatencyStats) Percentile(p float64) time.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	if p <= 0 {
		return s.samples[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(s.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(s.samples) {
		rank = len(s.samples)
	}
	return s.samples[rank-1]
}

// String renders the stats like the paper's tables (seconds).
func (s LatencyStats) String() string {
	if s.N == 0 {
		return "min 0.00s max 0.00s avg 0.00s (n=0)"
	}
	return fmt.Sprintf("min %.2fs max %.2fs avg %.2fs (n=%d)",
		s.Min.Seconds(), s.Max.Seconds(), s.Avg.Seconds(), s.N)
}

// checkEvalArgs validates an EvaluateEncrypted batch and resolves n.
func checkEvalArgs(images [][]float64, labels []int, n, inputDim int) (int, error) {
	if n <= 0 || n > len(images) {
		n = len(images)
	}
	if n == 0 {
		return 0, badInput("no images to evaluate")
	}
	if len(labels) < n {
		return 0, badInput("%d labels for %d images", len(labels), n)
	}
	for i := 0; i < n; i++ {
		if len(images[i]) != inputDim {
			return 0, badInput("image %d length %d does not match plan input dim %d", i, len(images[i]), inputDim)
		}
	}
	return n, nil
}

// inferFunc is the shape shared by Plan.InferCtx and RNSPlan.InferCtx.
type inferFunc func(ctx context.Context, e Engine, image []float64) (Logits, *Report, error)

// evaluateEncrypted classifies images[0:n] via infer and returns the
// accuracy against labels plus latency statistics — the shared body of
// both pipelines' EvaluateEncrypted.
func evaluateEncrypted(infer inferFunc, e Engine, images [][]float64, labels []int, n, inputDim int) (float64, LatencyStats, error) {
	n, err := checkEvalArgs(images, labels, n, inputDim)
	if err != nil {
		return 0, LatencyStats{}, err
	}
	stats := newLatencyStats()
	correct := 0
	for i := 0; i < n; i++ {
		logits, rep, err := infer(context.Background(), e, images[i])
		if err != nil {
			stats.finish()
			return 0, stats, fmt.Errorf("image %d: %w", i, err)
		}
		stats.add(rep.Eval)
		if logits.Argmax() == labels[i] {
			correct++
		}
	}
	stats.finish()
	return float64(correct) / float64(n), stats, nil
}

// EvaluateEncrypted classifies images[0:n] homomorphically and returns the
// accuracy against labels plus latency statistics. Mis-sized inputs and
// label/image mismatches yield a typed error (errors.Is ErrBadInput)
// before any ciphertext work starts.
func (p *Plan) EvaluateEncrypted(e Engine, images [][]float64, labels []int, n int) (float64, LatencyStats, error) {
	return evaluateEncrypted(p.InferCtx, e, images, labels, n, p.InputDim)
}

// RNSPlan is the Fig. 5 CNN-RNS pipeline: the input image is decomposed
// into K digit tensors (rnsdec digit mode — the exact, fully homomorphic
// variant of the paper's residue decomposition, see DESIGN.md S4), the
// first convolutional stage is evaluated on every part independently (in
// parallel when Parallel is set), the parts are recombined linearly inside
// the ciphertext, and the remaining stages run once.
type RNSPlan struct {
	Base   *Plan
	Digits rnsdec.DigitBasis
	// Parallel evaluates independent graph ops (notably the per-part
	// convolutions) on a bounded worker pool.
	Parallel bool
	// Opt configures the graph optimizer, like Plan.Opt (nil = default
	// pipeline; the RNS graph is where the lazy-rescale sink fires, on
	// the recompose reduction).
	Opt *opt.Options

	// prepared caches one lowered, optimized, pre-encoded graph per engine
	// (the RNS graph differs from Base's: k inputs, replicated first
	// stage).
	mu         sync.Mutex
	prepared   map[Engine]*exec.Prepared
	optResults map[Engine]*opt.Result
}

// prepare lowers the decomposed pipeline for e, once per engine.
func (p *RNSPlan) prepare(e Engine) (*exec.Prepared, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pr, ok := p.prepared[e]; ok {
		telPrepare(true)
		return pr, nil
	}
	telPrepare(false)
	g, err := p.Lower(e)
	if err != nil {
		return nil, err
	}
	res, err := optimizeLowered(e, g, p.Opt)
	if err != nil {
		return nil, err
	}
	pr, err := exec.Prepare(e, res.Graph)
	if err != nil {
		return nil, err
	}
	if p.prepared == nil {
		p.prepared = map[Engine]*exec.Prepared{}
		p.optResults = map[Engine]*opt.Result{}
	}
	p.prepared[e] = pr
	p.optResults[e] = res
	return pr, nil
}

// OptResult returns the optimizer outcome for e, preparing the RNS plan
// if needed.
func (p *RNSPlan) OptResult(e Engine) (*opt.Result, error) {
	if _, err := p.prepare(e); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.optResults[e], nil
}

// NewRNSPlan wraps a compiled plan with a k-part digit decomposition
// covering 8-bit pixels.
func NewRNSPlan(base *Plan, k int, parallel bool) (*RNSPlan, error) {
	if len(base.Stages) == 0 {
		return nil, fmt.Errorf("henn: empty base plan")
	}
	if _, ok := base.Stages[0].(*LinearStage); !ok {
		return nil, fmt.Errorf("henn: RNS pipeline requires a linear first stage")
	}
	if k < 1 {
		return nil, fmt.Errorf("henn: need at least one part")
	}
	// Smallest base with base^k ≥ 256.
	base256 := int64(2)
	for pow(base256, k) < 256 {
		base256++
	}
	db, err := rnsdec.NewDigitBasis(base256, k)
	if err != nil {
		return nil, err
	}
	return &RNSPlan{Base: base, Digits: db, Parallel: parallel}, nil
}

// pow computes bᵏ, saturating at MaxInt64. The overflow guard runs
// before every multiply: the earlier version returned mid-computation
// once the product crossed 2³², silently capping bᵏ at whatever partial
// power it had reached — harmless for the base-search caller (any value
// ≥ 256 behaves the same) but wrong as soon as any caller needs the
// true power.
func pow(b int64, k int) int64 {
	if b <= 0 {
		return 0
	}
	r := int64(1)
	for i := 0; i < k; i++ {
		if r > math.MaxInt64/b {
			return math.MaxInt64
		}
		r *= b
	}
	return r
}

// InferCtx classifies one raw image through the decomposed pipeline with
// the same validation, cancellation, and reporting contract as
// Plan.InferCtx. In Parallel mode independent ops — in particular the
// per-part convolutions — are scheduled over a worker pool; since every
// op's operands are fixed by the graph, the logits do not depend on the
// schedule.
func (p *RNSPlan) InferCtx(ctx context.Context, e Engine, image []float64) (Logits, *Report, error) {
	rep := &Report{Engine: e.Name()}
	if len(image) != p.Base.InputDim {
		return nil, rep, badInput("image length %d does not match plan input dim %d", len(image), p.Base.InputDim)
	}
	pr, err := p.prepare(e)
	if err != nil {
		rep.FailedStage = "prepare"
		return nil, rep, err
	}
	parts := p.Digits.DecomposeTensor(image)
	workers := 1
	if p.Parallel {
		workers = len(parts)
	}
	res, err := pr.Run(ctx, parts, exec.Options{Workers: workers})
	fillReport(rep, res)
	if err != nil {
		return nil, rep, err
	}
	return decryptLogits(ctx, e, res.Out, p.Base.OutputDim, rep)
}

// InferCtxLegacy is the original eager interpreter for the decomposed
// pipeline, retained as the executor's reference oracle. In Parallel mode
// the per-part convolutions each recover their own panics; the first
// error wins.
func (p *RNSPlan) InferCtxLegacy(ctx context.Context, e Engine, image []float64) (Logits, *Report, error) {
	rep := &Report{Engine: e.Name()}
	if len(image) != p.Base.InputDim {
		return nil, rep, badInput("image length %d does not match plan input dim %d", len(image), p.Base.InputDim)
	}
	sr := newStageRunner(ctx, e, rep)

	parts := p.Digits.DecomposeTensor(image)
	cts := make([]Ct, len(parts))
	t0 := time.Now()
	for i, part := range parts {
		i, part := i, part
		ct, err := sr.step(fmt.Sprintf("encrypt part %d", i), func() Ct { return e.EncryptVec(part) })
		if err != nil {
			rep.Encrypt = time.Since(t0)
			return nil, rep, err
		}
		cts[i] = ct
	}
	rep.Encrypt = time.Since(t0)
	first := p.Base.Stages[0].(*LinearStage)
	weights := p.Digits.Weights()

	start := time.Now()
	outs := make([]Ct, len(parts))
	errs := make([]error, len(parts))
	evalOne := func(i int) {
		name := fmt.Sprintf("rns part %d (%s)", i, first.Label)
		outs[i], errs[i] = evalGuarded(name, func() Ct { return p.evalPart(e, first, cts[i], i) })
	}
	if err := ctx.Err(); err != nil {
		rep.FailedStage = "rns parts"
		return nil, rep, fmt.Errorf("henn: rns parts: %w", err)
	}
	if sr.sa != nil {
		sr.sa.BeginStage("rns parts")
	}
	if p.Parallel && len(parts) > 1 {
		var wg sync.WaitGroup
		wg.Add(len(parts))
		for i := range parts {
			go func(i int) {
				defer wg.Done()
				evalOne(i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range parts {
			evalOne(i)
		}
	}
	for i, err := range errs {
		if err != nil {
			rep.FailedStage = fmt.Sprintf("rns part %d", i)
			rep.Eval = time.Since(start)
			return nil, rep, err
		}
	}
	sr.record("rns parts", time.Since(start), outs[0])

	// Linear recomposition: y = Σ Bⁱ·L(dᵢ) (exact; weights are integers).
	t1 := time.Now()
	acc, err := sr.step("rns recompose", func() Ct {
		acc := outs[0] // weight B⁰ = 1; carries the bias
		for i := 1; i < len(outs); i++ {
			acc = e.Add(acc, e.MulInt(outs[i], int64(weights[i])))
		}
		return acc
	})
	if err != nil {
		rep.Eval = time.Since(start)
		return nil, rep, err
	}
	sr.record("rns recompose", time.Since(t1), acc)

	for i, s := range p.Base.Stages[1:] {
		name := fmt.Sprintf("stage %d (%s)", i+1, s.Describe())
		s := s
		t2 := time.Now()
		acc, err = sr.step(name, func() Ct { return s.Eval(e, acc) })
		if err != nil {
			rep.Eval = time.Since(start)
			return nil, rep, err
		}
		sr.record(name, time.Since(t2), acc)
	}
	rep.Eval = time.Since(start)

	var out []float64
	t3 := time.Now()
	_, err = sr.step("decrypt", func() Ct { out = e.DecryptVec(acc); return nil })
	rep.Decrypt = time.Since(t3)
	if err != nil {
		return nil, rep, err
	}
	if len(out) < p.Base.OutputDim {
		return nil, rep, badInput("engine decrypted %d slots, plan outputs %d", len(out), p.Base.OutputDim)
	}
	return Logits(out[:p.Base.OutputDim]), rep, nil
}

// Warm mirrors Plan.Warm for the decomposed pipeline.
func (p *RNSPlan) Warm(e Engine) error {
	_, err := p.prepare(e)
	return err
}

// Infer classifies one raw image through the decomposed pipeline. Like
// Plan.Infer it panics on error; use InferCtx for typed errors.
func (p *RNSPlan) Infer(e Engine, image []float64) (Logits, time.Duration) {
	logits, rep, err := p.InferCtx(context.Background(), e, image)
	if err != nil {
		panic(err)
	}
	return logits, rep.Eval
}

func (p *RNSPlan) evalPart(e Engine, first *LinearStage, ct Ct, idx int) Ct {
	if idx == 0 {
		return first.Eval(e, ct)
	}
	return first.EvalNoBias(e, ct)
}

// EvaluateEncrypted mirrors Plan.EvaluateEncrypted for the RNS pipeline.
func (p *RNSPlan) EvaluateEncrypted(e Engine, images [][]float64, labels []int, n int) (float64, LatencyStats, error) {
	return evaluateEncrypted(p.InferCtx, e, images, labels, n, p.Base.InputDim)
}
