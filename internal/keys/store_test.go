package keys

import (
	"bytes"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"cnnhe/internal/ckks"
)

// bundleFixture builds a serialized bundle over TinyParameters covering
// the given rotations, under a fresh key set per seed.
func bundleFixture(t *testing.T, ctx *ckks.Context, seed int64, rotations []int) []byte {
	t.Helper()
	kg := ckks.NewKeyGenerator(ctx, seed)
	sk := kg.GenSecretKey()
	b := &ckks.KeyBundle{
		ParamsDigest: ctx.Params.ParamsDigest(),
		PK:           kg.GenPublicKey(sk),
		RLK:          kg.GenRelinearizationKey(sk),
		RTK:          kg.GenRotationKeys(sk, rotations, false),
	}
	var buf bytes.Buffer
	if err := ctx.WriteKeyBundle(&buf, b); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func testCtx(t *testing.T) *ckks.Context {
	t.Helper()
	p, err := ckks.TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := ckks.NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestRegisterAndGet(t *testing.T) {
	ctx := testCtx(t)
	s, err := NewStore(Config{Ctx: ctx, RequiredRotations: []int{1, 2, 0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	data := bundleFixture(t, ctx, 10, []int{1, 2})
	e, err := s.Register(data)
	if err != nil {
		t.Fatal(err)
	}
	if e.Fingerprint != ckks.BundleFingerprint(data) {
		t.Fatal("entry fingerprint is not the content address")
	}
	if e.Size != len(data) {
		t.Fatalf("size %d, want %d", e.Size, len(data))
	}
	got, err := s.Get(e.Fingerprint)
	if err != nil {
		t.Fatal(err)
	}
	if got != e {
		t.Fatal("Get returned a different entry")
	}
	// Idempotent re-registration returns the same entry.
	again, err := s.Register(data)
	if err != nil {
		t.Fatal(err)
	}
	if again != e {
		t.Fatal("re-registration created a new entry")
	}
	if s.Len() != 1 {
		t.Fatalf("store has %d entries, want 1", s.Len())
	}
}

func TestGetUnknown(t *testing.T) {
	ctx := testCtx(t)
	s, err := NewStore(Config{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("deadbeef"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestRegisterRejectsMalformed(t *testing.T) {
	ctx := testCtx(t)
	s, err := NewStore(Config{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	data := bundleFixture(t, ctx, 11, []int{1})
	truncated := data[:len(data)/2]
	if _, err := s.Register(truncated); !errors.Is(err, ckks.ErrFormat) && !errors.Is(err, ckks.ErrChecksum) {
		t.Fatalf("want typed decode error, got %v", err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/3] ^= 0x40
	if _, err := s.Register(flipped); !errors.Is(err, ckks.ErrFormat) && !errors.Is(err, ckks.ErrChecksum) {
		t.Fatalf("want typed decode error, got %v", err)
	}
	if s.Len() != 0 {
		t.Fatal("rejected bundles were stored")
	}
}

func TestRegisterRejectsParamsMismatch(t *testing.T) {
	ctx := testCtx(t)
	s, err := NewStore(Config{Ctx: ctx})
	if err != nil {
		t.Fatal(err)
	}
	// Same ring, different advertised digest: flip a digest byte in a
	// freshly built bundle.
	kg := ckks.NewKeyGenerator(ctx, 12)
	sk := kg.GenSecretKey()
	digest := ctx.Params.ParamsDigest()
	digest[0] ^= 0xFF
	var buf bytes.Buffer
	if err := ctx.WriteKeyBundle(&buf, &ckks.KeyBundle{
		ParamsDigest: digest,
		PK:           kg.GenPublicKey(sk),
		RLK:          kg.GenRelinearizationKey(sk),
		RTK:          kg.GenRotationKeys(sk, []int{1}, false),
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Register(buf.Bytes()); !errors.Is(err, ErrParamsMismatch) {
		t.Fatalf("want ErrParamsMismatch, got %v", err)
	}
}

func TestRegisterRejectsMissingRotations(t *testing.T) {
	ctx := testCtx(t)
	s, err := NewStore(Config{Ctx: ctx, RequiredRotations: []int{1, 4}})
	if err != nil {
		t.Fatal(err)
	}
	data := bundleFixture(t, ctx, 13, []int{1}) // missing rotation 4
	if _, err := s.Register(data); !errors.Is(err, ErrMissingRotations) {
		t.Fatalf("want ErrMissingRotations, got %v", err)
	}
	// A superset of the requirement is fine.
	if _, err := s.Register(bundleFixture(t, ctx, 13, []int{1, 4, 8})); err != nil {
		t.Fatal(err)
	}
}

func TestLRUEviction(t *testing.T) {
	ctx := testCtx(t)
	s, err := NewStore(Config{Ctx: ctx, MaxEntries: 2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Register(bundleFixture(t, ctx, 20, nil))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Register(bundleFixture(t, ctx, 21, nil))
	if err != nil {
		t.Fatal(err)
	}
	// Touch a so b is the LRU victim.
	if _, err := s.Get(a.Fingerprint); err != nil {
		t.Fatal(err)
	}
	c, err := s.Register(bundleFixture(t, ctx, 22, nil))
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 {
		t.Fatalf("store has %d entries, want 2", s.Len())
	}
	if _, err := s.Get(b.Fingerprint); !errors.Is(err, ErrNotFound) {
		t.Fatalf("LRU victim still present: %v", err)
	}
	for _, e := range []*Entry{a, c} {
		if _, err := s.Get(e.Fingerprint); err != nil {
			t.Fatalf("survivor %s evicted: %v", e.Fingerprint[:8], err)
		}
	}
}

func TestTTLExpiry(t *testing.T) {
	ctx := testCtx(t)
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	s, err := NewStore(Config{Ctx: ctx, TTL: time.Minute, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	e, err := s.Register(bundleFixture(t, ctx, 30, nil))
	if err != nil {
		t.Fatal(err)
	}
	now = now.Add(30 * time.Second)
	if _, err := s.Get(e.Fingerprint); err != nil {
		t.Fatalf("entry expired early: %v", err)
	}
	// The Get refreshed last-use; expire from there.
	now = now.Add(61 * time.Second)
	if _, err := s.Get(e.Fingerprint); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound after TTL, got %v", err)
	}
	// Re-registration of the same bytes revives the fingerprint.
	if _, err := s.Register(bundleFixture(t, ctx, 30, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(e.Fingerprint); err != nil {
		t.Fatalf("revived entry not found: %v", err)
	}
}

// TestStoreConcurrentRegisterEvictLookup hammers the store from many
// goroutines under -race: concurrent registrations of a small bundle
// population over a tight capacity bound (constant LRU churn), lookups
// that borrow the per-entry eval slot under Entry.Mu, and a TTL so
// short that expiry races the borrows. The store must stay within its
// bound and every borrowed entry must keep a coherent eval slot even
// after the store has forgotten it.
func TestStoreConcurrentRegisterEvictLookup(t *testing.T) {
	ctx := testCtx(t)
	const variants = 5
	bundles := make([][]byte, variants)
	fps := make([]string, variants)
	for i := range bundles {
		bundles[i] = bundleFixture(t, ctx, 100+int64(i), []int{1})
		fps[i] = ckks.BundleFingerprint(bundles[i])
	}
	s, err := NewStore(Config{
		Ctx:               ctx,
		RequiredRotations: []int{1},
		MaxEntries:        2,
		TTL:               2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 200
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				k := rng.Intn(variants)
				switch rng.Intn(3) {
				case 0:
					if _, err := s.Register(bundles[k]); err != nil {
						t.Errorf("register %d: %v", k, err)
						return
					}
				case 1:
					e, err := s.Get(fps[k])
					if err != nil {
						if !errors.Is(err, ErrNotFound) {
							t.Errorf("get %d: %v", k, err)
							return
						}
						continue
					}
					// Borrow the cached-engine slot the way serve.Keyed
					// does: build on first use, reuse after, all under
					// Entry.Mu — racing TTL expiry of the same entry.
					e.Mu.Lock()
					if e.Eval == nil {
						e.Eval = fps[k]
					} else if e.Eval.(string) != fps[k] {
						t.Errorf("entry %d borrowed a foreign eval slot", k)
					}
					e.Mu.Unlock()
					if i%16 == 0 {
						time.Sleep(3 * time.Millisecond) // let TTL cross a borrow window
					}
				default:
					s.Len()
				}
			}
		}(w)
	}
	wg.Wait()
	if n := s.Len(); n > 2 {
		t.Fatalf("store exceeded its bound: %d entries", n)
	}
}

func TestRequiredGaloisElements(t *testing.T) {
	ctx := testCtx(t)
	s, err := NewStore(Config{Ctx: ctx, RequiredRotations: []int{3, 1, 1, 0, -1}})
	if err != nil {
		t.Fatal(err)
	}
	els := s.RequiredGaloisElements()
	if len(els) != 3 {
		t.Fatalf("got %d galois elements, want 3 (dedup, no zero)", len(els))
	}
	for i := 1; i < len(els); i++ {
		if els[i-1] >= els[i] {
			t.Fatal("galois elements not sorted")
		}
	}
}
