package tensor

import (
	"math"
	"math/rand"
	"testing"
)

func randTensor(rng *rand.Rand, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.Float64()*2 - 1
	}
	return t
}

func TestConvShape(t *testing.T) {
	cases := []struct{ in, k, s, p, want int }{
		{28, 5, 2, 1, 13}, // CNN1/CNN2 first conv
		{13, 5, 2, 1, 6},  // CNN2 second conv
		{28, 5, 1, 0, 24},
		{4, 2, 2, 0, 2},
	}
	for _, c := range cases {
		if got := ConvShape(c.in, c.k, c.s, c.p); got != c.want {
			t.Errorf("ConvShape(%d,%d,%d,%d) = %d want %d", c.in, c.k, c.s, c.p, got, c.want)
		}
	}
}

func TestConv2DMatchesNaiveDefinition(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	input := randTensor(rng, 2, 7, 7)
	weights := randTensor(rng, 3, 2, 3, 3)
	bias := []float64{0.1, -0.2, 0.3}
	out := Conv2D(input, weights, bias, 2, 1)
	if out.Shape[0] != 3 || out.Shape[1] != 4 || out.Shape[2] != 4 {
		t.Fatalf("unexpected output shape %v", out.Shape)
	}
	// Check one arbitrary position against the definition.
	o, oi, oj := 1, 2, 3
	acc := bias[o]
	for ci := 0; ci < 2; ci++ {
		for ki := 0; ki < 3; ki++ {
			for kj := 0; kj < 3; kj++ {
				ii := oi*2 + ki - 1
				jj := oj*2 + kj - 1
				if ii < 0 || ii >= 7 || jj < 0 || jj >= 7 {
					continue
				}
				acc += input.At3(ci, ii, jj) * weights.Data[((o*2+ci)*3+ki)*3+kj]
			}
		}
	}
	if math.Abs(out.At3(o, oi, oj)-acc) > 1e-12 {
		t.Fatalf("conv mismatch: %g vs %g", out.At3(o, oi, oj), acc)
	}
}

func TestIm2ColEquivalentToConv(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	input := randTensor(rng, 3, 9, 9)
	weights := randTensor(rng, 4, 3, 3, 3)
	stride, pad := 2, 1
	direct := Conv2D(input, weights, nil, stride, pad)

	cols := Im2Col(input, 3, 3, stride, pad)
	// kernel reshaped to [OC, C·KH·KW]
	k := FromSlice(weights.Data, 4, 27)
	// out[r, o] = cols[r, :]·k[o, :]
	oh, ow := direct.Shape[1], direct.Shape[2]
	for o := 0; o < 4; o++ {
		for r := 0; r < oh*ow; r++ {
			acc := 0.0
			for j := 0; j < 27; j++ {
				acc += cols.Data[r*27+j] * k.Data[o*27+j]
			}
			if math.Abs(acc-direct.Data[o*oh*ow+r]) > 1e-10 {
				t.Fatalf("im2col mismatch at o=%d r=%d", o, r)
			}
		}
	}
}

func TestConvAsMatrixEquivalentToConv(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	input := randTensor(rng, 2, 8, 8)
	weights := randTensor(rng, 3, 2, 5, 5)
	bias := []float64{0.5, -0.5, 0.25}
	stride, pad := 2, 1
	direct := Conv2D(input, weights, bias, stride, pad)

	m, b := ConvAsMatrix(weights, bias, 2, 8, 8, stride, pad)
	flat := MatVec(m, input.Data)
	for i := range flat {
		flat[i] += b[i]
	}
	for i := range direct.Data {
		if math.Abs(flat[i]-direct.Data[i]) > 1e-10 {
			t.Fatalf("conv-as-matrix mismatch at %d: %g vs %g", i, flat[i], direct.Data[i])
		}
	}
}

func TestMatMulMatVec(t *testing.T) {
	a := FromSlice([]float64{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float64{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float64{58, 64, 139, 154}
	for i := range want {
		if c.Data[i] != want[i] {
			t.Fatalf("matmul mismatch: %v", c.Data)
		}
	}
	v := MatVec(a, []float64{1, 0, -1})
	if v[0] != -2 || v[1] != -2 {
		t.Fatalf("matvec mismatch: %v", v)
	}
}

func TestMeanPool2D(t *testing.T) {
	input := FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out := MeanPool2D(input, 2, 2)
	want := []float64{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("meanpool mismatch: %v", out.Data)
		}
	}
}

func TestCloneIndependent(t *testing.T) {
	a := New(2, 2)
	a.Data[0] = 1
	b := a.Clone()
	b.Data[0] = 2
	if a.Data[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestMaxAbs(t *testing.T) {
	a := FromSlice([]float64{0.5, -3, 2}, 3)
	if a.MaxAbs() != 3 {
		t.Fatal("maxabs wrong")
	}
}

func TestFromSlicePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	FromSlice([]float64{1, 2, 3}, 2, 2)
}
