package henn

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/henn/shard"
	"cnnhe/internal/nn"
)

// The shard parity suite pins the sharding tentpole guarantee from two
// sides:
//
//   - A 1×1 shard grid is a degenerate sharding: every stage has one
//     block, the recombine collapses to a pass-through, and the lowered
//     graph — stage names, cache keys, op sequence — is IDENTICAL to the
//     unsharded Plan's. With identically-seeded engines the logits are
//     bit-identical, on both backends, sequential and parallel.
//   - A genuinely cross-shard grid must still agree with the plaintext
//     model and with the unsharded encrypted pipeline within the noise
//     tolerance, because block sums at the shared pre-rescale scale are
//     exact ring additions.

// rotsUnion merges rotation sets so both sides of a parity comparison
// run against engines with identical key material (key generation
// consumes PRNG state, so differing rotation sets would desynchronize
// the encryption randomness even with equal seeds).
func rotsUnion(a, b []int) []int {
	set := map[int]bool{}
	for _, r := range a {
		set[r] = true
	}
	for _, r := range b {
		set[r] = true
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	return out
}

func rnsMakerRots(t *testing.T, rots []int, depth, logN int, bits []int, seed int64) engineMaker {
	params, err := ckks.NewParameters(logN, bits, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	if depth > params.MaxLevel() {
		t.Fatalf("depth %d exceeds max level %d", depth, params.MaxLevel())
	}
	return func(t *testing.T) Engine {
		e, err := NewRNSEngine(params, rots, seed)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
}

func bigMakerRots(t *testing.T, rots []int, logN int, bits []int, seed int64) engineMaker {
	params, err := ckks.NewParameters(logN, bits, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	bp, err := ckksbig.FromRNSParameters(params)
	if err != nil {
		t.Fatal(err)
	}
	return func(t *testing.T) Engine {
		e, err := NewBigEngine(bp, rots, seed)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
}

// checkShardGridParity runs the unsharded plan and the 1×1-grid sharded
// plan on identically-seeded engines and demands bit-identical logits
// and reports in the bit-exact optimizer modes, tolerance in opt=on —
// exactly the executor-parity contract — for both sequential and
// parallel sharded scheduling.
func checkShardGridParity(t *testing.T, plan *Plan, sp *ShardedPlan, mk engineMaker, image []float64) {
	t.Helper()
	if sp.NumShards() != 1 {
		t.Fatalf("1×1 grid plan has %d shards", sp.NumShards())
	}
	if sp.Depth != plan.Depth {
		t.Fatalf("sharded depth %d, unsharded %d", sp.Depth, plan.Depth)
	}
	ctx := context.Background()
	defer func() { plan.Opt = nil; sp.Opt = nil }()
	for _, mode := range parityModes() {
		plan.Opt = mode.opts
		lgP, repP, err := plan.InferCtx(ctx, mk(t), image)
		if err != nil {
			t.Fatalf("plan/%s: %v", mode.name, err)
		}
		for _, parallel := range []bool{false, true} {
			sp.Opt = mode.opts
			sp.Parallel = parallel
			// Optimizer and prepared-graph caches key on the engine; a
			// fresh engine per leg keeps Parallel toggling honest.
			lgS, repS, err := sp.InferCtx(ctx, mk(t), image)
			label := "sharded-seq/" + mode.name
			if parallel {
				label = "sharded-par/" + mode.name
			}
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if mode.bitExact {
				assertSameRun(t, label, lgP, lgS, repP, repS)
			} else {
				assertCloseRun(t, label, lgP, lgS, repP, repS)
			}
		}
	}
}

// assertLogitsClose compares logits within tolerance and demands an
// unchanged argmax, without comparing reports (for cross-shard runs,
// whose stage structure legitimately differs from the unsharded plan's).
func assertLogitsClose(t *testing.T, label string, want, got []float64, tol float64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d logits", label, len(want), len(got))
	}
	amW, amG := 0, 0
	for i := range want {
		if d := math.Abs(want[i] - got[i]); d > tol {
			t.Fatalf("%s: logit %d differs: %.17g vs %.17g (Δ=%g > %g)",
				label, i, want[i], got[i], want[i]-got[i], tol)
		}
		if want[i] > want[amW] {
			amW = i
		}
		if got[i] > got[amG] {
			amG = i
		}
	}
	if amW != amG {
		t.Fatalf("%s: argmax changed: %d vs %d", label, amW, amG)
	}
}

// TestShardParityTiny covers both backends on the tiny fixture: the 1×1
// grid bit-identity, and a genuinely cross-shard 2×1 grid against both
// the plaintext forward pass and the unsharded encrypted logits.
func TestShardParityTiny(t *testing.T) {
	plan, err := Compile(tinyModel(1), 512)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := CompileSharded(tinyModel(1), 512, shard.Grid{Gy: 1, Gx: 1})
	if err != nil {
		t.Fatal(err)
	}
	sp2, err := CompileSharded(tinyModel(1), 512, shard.Grid{Gy: 2, Gx: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sp2.NumShards() != 2 {
		t.Fatalf("2×1 grid: %d shards", sp2.NumShards())
	}
	// The 3×3 stride-2 convolution reads across the band boundary, so
	// the first stage must have recorded cross-shard fan-in.
	if sp2.Input.Halo < 1 {
		t.Fatalf("cross-shard conv recorded halo %d, want ≥1", sp2.Input.Halo)
	}
	rng := rand.New(rand.NewSource(20))
	img := testImage(rng, plan.InputDim)
	plain := plainForward(tinyModel(1), img, 1, 8, 8)
	bits := []int{40, 30, 30, 30, 30}
	rots := rotsUnion(rotsUnion(plan.Rotations(), sp.Rotations()), sp2.Rotations())
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		mk   engineMaker
	}{
		{"rns", rnsMakerRots(t, rots, plan.Depth, 10, bits, 701)},
		{"big", bigMakerRots(t, rots, 10, bits, 702)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			checkShardGridParity(t, plan, sp, tc.mk, img)

			lgP, _, err := plan.InferCtx(ctx, tc.mk(t), img)
			if err != nil {
				t.Fatal(err)
			}
			for _, parallel := range []bool{false, true} {
				sp2.Parallel = parallel
				lgS, rep, err := sp2.InferCtx(ctx, tc.mk(t), img)
				if err != nil {
					t.Fatal(err)
				}
				assertLogitsClose(t, "cross-shard vs plan", lgP, lgS, 1e-3)
				assertLogitsClose(t, "cross-shard vs plain", plain, lgS, 0.05)
				if len(rep.Stages) == 0 {
					t.Fatal("cross-shard run produced no stage report")
				}
			}
		})
	}
}

// TestShardInputValidation pins the typed-error contract shared with
// Plan.InferCtx.
func TestShardInputValidation(t *testing.T) {
	sp, err := CompileSharded(tinyModel(1), 512, shard.Grid{Gy: 1, Gx: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(tinyModel(1), 512)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, plan, 10, []int{40, 30, 30, 30, 30})
	_, _, err = sp.InferCtx(context.Background(), e, make([]float64, sp.InputDim+1))
	if !errors.Is(err, ErrBadInput) {
		t.Fatalf("oversized image: %v, want ErrBadInput", err)
	}
}

// TestShardedCrossShardDense is the cross-shard rotation/recombine
// round-trip property test: random dense maps whose flat inputs are
// forced across 2–4 shards (every output row draws from every input
// shard) evaluated encrypted and compared to the plaintext product.
func TestShardedCrossShardDense(t *testing.T) {
	ctx := context.Background()
	// The manifest's slot count must match the engine's (diagonal
	// extraction wraps modulo slots), so multi-shard flat inputs need
	// dimensions beyond the 512 slots of a logN=10 engine.
	for _, tc := range []struct {
		seed  int64
		in    int
		out   int
		slots int
		gx    int
	}{
		{31, 1200, 7, 512, 3},
		{32, 1001, 10, 512, 2}, // uneven bands: 501/500
		{33, 1600, 16, 512, 4},
	} {
		rng := rand.New(rand.NewSource(tc.seed))
		m := &nn.Model{Layers: []nn.Layer{nn.NewDense(rng, tc.in, tc.out)}}
		sp, err := CompileSharded(m, tc.slots, shard.Grid{Gy: 1, Gx: tc.gx})
		if err != nil {
			t.Fatal(err)
		}
		if sp.NumShards() != tc.gx {
			t.Fatalf("seed %d: %d shards, want %d", tc.seed, sp.NumShards(), tc.gx)
		}
		img := testImage(rng, tc.in)
		want := plainForward(m, img, 1, 1, tc.in)
		bits := []int{40, 30, 30}
		params, err := ckks.NewParameters(10, bits, 60, 1, math.Exp2(30))
		if err != nil {
			t.Fatal(err)
		}
		for _, parallel := range []bool{false, true} {
			sp.Parallel = parallel
			e, err := NewRNSEngine(params, sp.Rotations(), tc.seed+100)
			if err != nil {
				t.Fatal(err)
			}
			lg, _, err := sp.InferCtx(ctx, e, img)
			if err != nil {
				t.Fatalf("seed %d parallel=%v: %v", tc.seed, parallel, err)
			}
			assertLogitsClose(t, "cross-shard dense", want, lg, 0.02)
		}
	}
}

// paperShardModel builds the paper architectures as models (shared with
// paperModel, which compiles them).
func paperShardModel(arch string) *nn.Model {
	rng := rand.New(rand.NewSource(7))
	var m *nn.Model
	deg := 3
	switch arch {
	case "cnn1":
		m = nn.NewCNN1(rng)
	case "cnn2":
		m = nn.NewCNN2(rng)
	case "cnn3":
		m = nn.NewCNN3(rng)
		deg = 4
	}
	hm := m.ReplaceReLUWithSLAF(deg, 1)
	for _, l := range hm.Layers {
		if s, ok := l.(*nn.SLAF); ok {
			s.FitReLU(3)
		}
	}
	return hm
}

// TestShardParityCNN covers the paper shapes at full MNIST dimensions on
// the RNS backend (big-backend CNN-scale runs belong to make
// shard-parity / the benchmark suite, matching the executor-parity
// convention).
func TestShardParityCNN(t *testing.T) {
	if testing.Short() {
		t.Skip("CNN-scale shard parity skipped in short mode")
	}
	for _, tc := range []struct {
		arch  string
		slots int
		logN  int
	}{
		{"cnn1", 1024, 11},
		{"cnn2", 2048, 12},
	} {
		t.Run(tc.arch, func(t *testing.T) {
			plan, err := Compile(paperShardModel(tc.arch), tc.slots)
			if err != nil {
				t.Fatal(err)
			}
			sp, err := CompileSharded(paperShardModel(tc.arch), tc.slots, shard.Grid{Gy: 1, Gx: 1})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(21))
			img := testImage(rng, plan.InputDim)
			bits := make([]int, plan.Depth+2)
			bits[0] = 40
			for i := 1; i < len(bits); i++ {
				bits[i] = 30
			}
			rots := rotsUnion(plan.Rotations(), sp.Rotations())
			mk := rnsMakerRots(t, rots, plan.Depth, tc.logN, bits, 703)
			checkShardGridParity(t, plan, sp, mk, img)
		})
	}
}
