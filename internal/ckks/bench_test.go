package ckks

import (
	"fmt"
	"math/rand"
	"testing"
)

// Primitive-operation benchmarks at the test ring size (N=2^12, the
// paper-shaped 13-prime chain). Run the full suite with:
//
//	go test -bench=. -benchmem ./internal/ckks/
func benchKit(b *testing.B) *testKit {
	b.Helper()
	p, err := TestParameters()
	if err != nil {
		b.Fatal(err)
	}
	return newTestKit(b, p, []int{1}, false)
}

func benchCt(b *testing.B, k *testKit) *Ciphertext {
	rng := rand.New(rand.NewSource(1))
	vals := randVec(rng, k.ctx.Params.Slots(), 1)
	return k.ept.Encrypt(k.enc.Encode(vals, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale))
}

func BenchmarkEncode(b *testing.B) {
	k := benchKit(b)
	rng := rand.New(rand.NewSource(2))
	vals := randVec(rng, k.ctx.Params.Slots(), 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.enc.Encode(vals, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale)
	}
}

func BenchmarkEncrypt(b *testing.B) {
	k := benchKit(b)
	rng := rand.New(rand.NewSource(3))
	pt := k.enc.Encode(randVec(rng, 16, 1), k.ctx.Params.MaxLevel(), k.ctx.Params.Scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ept.Encrypt(pt)
	}
}

func BenchmarkDecryptDecode(b *testing.B) {
	k := benchKit(b)
	ct := benchCt(b, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.enc.Decode(k.dec.DecryptNew(ct))
	}
}

func BenchmarkAdd(b *testing.B) {
	k := benchKit(b)
	ct := benchCt(b, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ev.Add(ct, ct)
	}
}

func BenchmarkMulPlain(b *testing.B) {
	k := benchKit(b)
	ct := benchCt(b, k)
	rng := rand.New(rand.NewSource(4))
	pt := k.enc.Encode(randVec(rng, k.ctx.Params.Slots(), 1), ct.Level, k.ctx.Params.Scale)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ev.MulPlain(ct, pt)
	}
}

func BenchmarkMulRelin(b *testing.B) {
	k := benchKit(b)
	ct := benchCt(b, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ev.Mul(ct, ct)
	}
}

func BenchmarkRescale(b *testing.B) {
	k := benchKit(b)
	ct := benchCt(b, k)
	prod := k.ev.Mul(ct, ct)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ev.Rescale(prod)
	}
}

func BenchmarkRotate(b *testing.B) {
	k := benchKit(b)
	ct := benchCt(b, k)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.ev.Rotate(ct, 1)
	}
}

// BenchmarkMulRelinByLevel shows keyswitch cost scaling with the level
// (digit count).
func BenchmarkMulRelinByLevel(b *testing.B) {
	k := benchKit(b)
	ct := benchCt(b, k)
	for _, drop := range []int{0, 4, 8} {
		level := ct.Level - drop
		b.Run(fmt.Sprintf("level=%d", level), func(b *testing.B) {
			low := k.ev.DropLevel(ct, drop)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				k.ev.Mul(low, low)
			}
		})
	}
}
