// RNS decomposition demo (paper Figs. 2 and 5).
//
// Part 1 shows the residue number system of Fig. 2: a large value is
// decomposed into small residues, arithmetic happens component-wise, and
// the Chinese Remainder Theorem recomposes the result.
//
// Part 2 shows the property the encrypted Fig. 5 pipeline relies on: with
// the positional digit decomposition, a convolution commutes with
// decomposition/recomposition exactly.
//
// Run: go run ./examples/rnsdemo
package main

import (
	"fmt"
	"log"
	"math/rand"

	"cnnhe/internal/rnsdec"
	"cnnhe/internal/tensor"
)

func main() {
	// --- Fig. 2: residue arithmetic ---------------------------------------
	basis, err := rnsdec.NewBasis([]int64{251, 256, 255})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RNS basis %v, dynamic range M = %d\n\n", basis.Moduli, basis.M)

	x, y := int64(123456), int64(7890)
	rx, ry := basis.Decompose(x), basis.Decompose(y)
	fmt.Printf("x = %d → %v\n", x, rx)
	fmt.Printf("y = %d → %v\n", y, ry)

	// Component-wise multiplication — each limb independent, parallelizable.
	rz := make([]int64, len(rx))
	for i := range rx {
		rz[i] = (rx[i] * ry[i]) % basis.Moduli[i]
	}
	z := basis.Compose(rz)
	fmt.Printf("x·y mod M: component-wise %v → CRT %d (exact: %d)\n\n", rz, z, x*y%basis.M)

	// --- Fig. 5: decomposition commutes with convolution -------------------
	digits, err := rnsdec.NewDigitBasis(16, 2) // 16² = 256 covers pixels
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	img := tensor.New(1, 8, 8)
	for i := range img.Data {
		img.Data[i] = float64(rng.Intn(256))
	}
	kernel := tensor.New(1, 1, 3, 3)
	for i := range kernel.Data {
		kernel.Data[i] = rng.Float64()*2 - 1
	}

	direct := tensor.Conv2D(img, kernel, nil, 1, 0)

	parts := digits.DecomposeTensor(img.Data)
	outs := make([][]float64, len(parts))
	for i, p := range parts {
		pt := tensor.FromSlice(p, 1, 8, 8)
		outs[i] = tensor.Conv2D(pt, kernel, nil, 1, 0).Data
	}
	recombined := digits.ComposeTensor(outs)

	maxErr := 0.0
	for i := range direct.Data {
		if d := direct.Data[i] - recombined[i]; d > maxErr {
			maxErr = d
		} else if -d > maxErr {
			maxErr = -d
		}
	}
	fmt.Printf("digit decomposition (base %d, %d parts):\n", digits.Base, digits.Digits)
	fmt.Printf("  conv(x) vs Σ Bⁱ·conv(dᵢ): max |err| = %.2e  (exactly linear)\n", maxErr)
	fmt.Println("\nThis is the Fig. 5 pipeline: each part propagates through the")
	fmt.Println("convolutional layer independently (and in parallel); the linear")
	fmt.Println("recomposition happens inside the ciphertext before the activation.")
}
