package guard_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/guard"
	"cnnhe/internal/henn"
	"cnnhe/internal/nn"
)

// tinyModel mirrors the henn test fixture: Conv(1→2, 3×3, s2) → SLAF →
// Flatten → Dense on 8×8 inputs, depth 4.
func tinyModel(seed int64) *nn.Model {
	rng := rand.New(rand.NewSource(seed))
	conv := nn.NewConv2D(rng, 1, 2, 3, 2, 0, 8, 8)
	flat := conv.OutC * conv.OutH() * conv.OutW()
	m := &nn.Model{Layers: []nn.Layer{
		conv,
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewDense(rng, flat, 4),
	}}
	hm := m.ReplaceReLUWithSLAF(3, 1)
	for _, l := range hm.Layers {
		if s, ok := l.(*nn.SLAF); ok {
			s.FitReLU(3)
		}
	}
	return hm
}

func tinyPlan(t *testing.T) *henn.Plan {
	t.Helper()
	plan, err := henn.Compile(tinyModel(15), 512)
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func testImage(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	img := make([]float64, n)
	for i := range img {
		img[i] = float64(rng.Intn(256))
	}
	return img
}

func rnsEngine(t testing.TB, plan *henn.Plan, seed int64) *henn.RNSEngine {
	t.Helper()
	p, err := ckks.NewParameters(10, []int{40, 30, 30, 30, 30}, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.CheckDepth(p.MaxLevel()); err != nil {
		t.Fatal(err)
	}
	e, err := henn.NewRNSEngine(p, plan.Rotations(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func bigEngine(t testing.TB, plan *henn.Plan, seed int64) *henn.BigEngine {
	t.Helper()
	p, err := ckks.NewParameters(10, []int{40, 30, 30, 30, 30}, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	bp, err := ckksbig.FromRNSParameters(p)
	if err != nil {
		t.Fatal(err)
	}
	e, err := henn.NewBigEngine(bp, plan.Rotations(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// catchGuard runs f and returns the error the guard aborted with.
func catchGuard(t *testing.T, f func()) error {
	t.Helper()
	var err error
	func() {
		defer func() {
			r := recover()
			if r == nil {
				return
			}
			e, ok := r.(error)
			if !ok {
				t.Fatalf("guard panicked with non-error %v", r)
			}
			err = e
		}()
		f()
	}()
	if err == nil {
		t.Fatal("expected a guard abort, got none")
	}
	return err
}

// TestCleanRunIdentity: the guard observes but never alters ciphertexts,
// so a guarded inference on a same-seeded engine must produce logits
// bit-identical to the raw path — on both backends.
func TestCleanRunIdentity(t *testing.T) {
	plan := tinyPlan(t)
	img := testImage(3, plan.InputDim)
	engines := map[string]func(seed int64) henn.Engine{
		"rns": func(seed int64) henn.Engine { return rnsEngine(t, plan, seed) },
		"big": func(seed int64) henn.Engine { return bigEngine(t, plan, seed) },
	}
	for name, mk := range engines {
		t.Run(name, func(t *testing.T) {
			raw, _ := plan.Infer(mk(501), img)
			g := guard.New(mk(501), guard.DefaultConfig())
			got, rep, err := plan.InferCtx(context.Background(), g, img)
			if err != nil {
				t.Fatalf("guarded clean run failed: %v\n%s", err, rep)
			}
			if len(got) != len(raw) {
				t.Fatalf("logit count %d vs %d", len(got), len(raw))
			}
			for i := range got {
				if got[i] != raw[i] {
					t.Fatalf("logit %d differs: guarded %v raw %v", i, got[i], raw[i])
				}
			}
			if len(rep.Stages) == 0 {
				t.Fatal("report has no stages")
			}
			for _, st := range rep.Stages {
				if math.IsNaN(st.NoiseBits) || st.NoiseBits < guard.DefaultMinNoiseBits {
					t.Fatalf("stage %q noise bits %v out of range", st.Stage, st.NoiseBits)
				}
			}
			// Noise only accumulates: the final stage has the least margin.
			if first, last := rep.Stages[0], rep.Stages[len(rep.Stages)-1]; last.NoiseBits > first.NoiseBits {
				t.Fatalf("noise bits grew from %v to %v", first.NoiseBits, last.NoiseBits)
			}
		})
	}
}

// TestCleanRunIdentityShippedModel replays the acceptance scenario on the
// committed CNN1 model: guarded and raw logits must match exactly and
// the default budget must not trip.
func TestCleanRunIdentityShippedModel(t *testing.T) {
	if testing.Short() {
		t.Skip("shipped-model inference is slow")
	}
	model, arch, err := nn.LoadModel("../../models/cnn1-slaf-n6000-s1.gob")
	if err != nil {
		t.Fatal(err)
	}
	if arch != "cnn1" {
		t.Fatalf("unexpected arch %q", arch)
	}
	plan, err := henn.Compile(model, 1<<10)
	if err != nil {
		t.Fatal(err)
	}
	k := plan.Depth + 1
	if k < 13 {
		k = 13
	}
	bits := []int{40}
	for i := 0; i < k-2; i++ {
		bits = append(bits, 26)
	}
	bits = append(bits, 40)
	params, err := ckks.NewParameters(11, bits, 60, 1, math.Exp2(26))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.CheckDepth(params.MaxLevel()); err != nil {
		t.Fatal(err)
	}
	img := testImage(7, plan.InputDim)

	e1, err := henn.NewRNSEngine(params, plan.Rotations(), 8)
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := plan.Infer(e1, img)

	e2, err := henn.NewRNSEngine(params, plan.Rotations(), 8)
	if err != nil {
		t.Fatal(err)
	}
	g := guard.New(e2, guard.DefaultConfig())
	got, rep, err := plan.InferCtx(context.Background(), g, img)
	if err != nil {
		t.Fatalf("guarded clean run failed: %v\n%s", err, rep)
	}
	for i := range got {
		if got[i] != raw[i] {
			t.Fatalf("logit %d differs: guarded %v raw %v", i, got[i], raw[i])
		}
	}
}

// TestNoiseBudgetExhausted: integer multiplications grow the tracked
// noise without touching the scale, so the budget must trip with the
// dedicated sentinel before the message is fully drowned.
func TestNoiseBudgetExhausted(t *testing.T) {
	plan := tinyPlan(t)
	g := guard.New(rnsEngine(t, plan, 77), guard.DefaultConfig())
	err := catchGuard(t, func() {
		ct := g.EncryptVec([]float64{1, 2, 3})
		for i := 0; i < 100; i++ {
			ct = g.MulInt(ct, 1<<30)
		}
	})
	if !errors.Is(err, guard.ErrNoiseBudgetExhausted) {
		t.Fatalf("want ErrNoiseBudgetExhausted, got %v", err)
	}
	var se *guard.StageError
	if !errors.As(err, &se) || se.Op != "MulInt" {
		t.Fatalf("want StageError at MulInt, got %#v", err)
	}
	if g.Err() == nil {
		t.Fatal("guard did not latch the failure")
	}
}

// TestLevelExhausted: rescaling past level 0 is caught by the guard
// before the backend panics.
func TestLevelExhausted(t *testing.T) {
	plan := tinyPlan(t)
	cfg := guard.DefaultConfig()
	cfg.MinNoiseBits = math.Inf(-1) // isolate the level check from the budget
	g := guard.New(rnsEngine(t, plan, 78), cfg)
	err := catchGuard(t, func() {
		ct := g.EncryptVec([]float64{1})
		for i := 0; i < 10; i++ {
			ct = g.Rescale(ct)
		}
	})
	if !errors.Is(err, guard.ErrLevelExhausted) {
		t.Fatalf("want ErrLevelExhausted, got %v", err)
	}
}

// TestInvalidPlaintext: NaN/Inf and over-long plaintext operands are
// rejected before they reach the encoder.
func TestInvalidPlaintext(t *testing.T) {
	plan := tinyPlan(t)
	g := guard.New(rnsEngine(t, plan, 79), guard.DefaultConfig())
	err := catchGuard(t, func() { g.EncryptVec([]float64{1, math.NaN()}) })
	if !errors.Is(err, guard.ErrInvalidPlaintext) {
		t.Fatalf("want ErrInvalidPlaintext for NaN, got %v", err)
	}

	g2 := guard.New(rnsEngine(t, plan, 80), guard.DefaultConfig())
	err = catchGuard(t, func() {
		ct := g2.EncryptVec([]float64{1})
		g2.MulPlainVecAtScale(ct, make([]float64, g2.Slots()+1), g2.Scale())
	})
	if !errors.Is(err, guard.ErrInvalidPlaintext) {
		t.Fatalf("want ErrInvalidPlaintext for oversized vector, got %v", err)
	}
}

// TestForeignCiphertext: handles that did not come from this guard are
// rejected instead of silently bypassing the tracked invariants.
func TestForeignCiphertext(t *testing.T) {
	plan := tinyPlan(t)
	e := rnsEngine(t, plan, 81)
	g := guard.New(rnsEngine(t, plan, 81), guard.DefaultConfig())
	raw := e.EncryptVec([]float64{1})
	err := catchGuard(t, func() { g.DecryptVec(raw) })
	if !errors.Is(err, guard.ErrForeignCiphertext) {
		t.Fatalf("want ErrForeignCiphertext, got %v", err)
	}
}

// TestReset: a tripped guard latches its error (every further op
// aborts), Reset returns and clears it, and the same guard then runs a
// full clean inference — the reuse pattern the serving loop depends on
// (a fresh guard would invalidate the engine-keyed prepared-graph
// cache).
func TestReset(t *testing.T) {
	plan := tinyPlan(t)
	e := rnsEngine(t, plan, 91)
	g := guard.New(rnsEngine(t, plan, 91), guard.DefaultConfig())

	// Trip it with a foreign ciphertext.
	raw := e.EncryptVec([]float64{1})
	first := catchGuard(t, func() { g.DecryptVec(raw) })
	if !errors.Is(first, guard.ErrForeignCiphertext) {
		t.Fatalf("want ErrForeignCiphertext, got %v", first)
	}
	if g.Err() == nil {
		t.Fatal("tripped guard must latch its error")
	}
	// Latched: even a healthy op aborts with the same error.
	latched := catchGuard(t, func() { g.EncryptVec([]float64{1}) })
	if !errors.Is(latched, guard.ErrForeignCiphertext) {
		t.Fatalf("latched guard returned a different error: %v", latched)
	}

	if err := g.Reset(); !errors.Is(err, guard.ErrForeignCiphertext) {
		t.Fatalf("Reset should return the cleared error, got %v", err)
	}
	if g.Err() != nil {
		t.Fatalf("Reset must clear the latched error, still %v", g.Err())
	}
	if err := g.Reset(); err != nil {
		t.Fatalf("Reset on a healthy guard must return nil, got %v", err)
	}

	// The same guard now completes a clean inference end to end.
	logits, _, err := plan.InferCtx(context.Background(), g, testImage(7, plan.InputDim))
	if err != nil {
		t.Fatalf("post-Reset inference failed: %v", err)
	}
	if len(logits) != plan.OutputDim {
		t.Fatalf("post-Reset inference returned %d logits", len(logits))
	}
}

// TestCancellation: a cancelled context aborts inference at the next op
// boundary with the context's error.
func TestCancellation(t *testing.T) {
	plan := tinyPlan(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := guard.DefaultConfig()
	cfg.Ctx = ctx
	g := guard.New(rnsEngine(t, plan, 82), cfg)
	_, rep, err := plan.InferCtx(ctx, g, testImage(4, plan.InputDim))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep == nil || rep.FailedStage == "" {
		t.Fatalf("report should name the failed stage, got %+v", rep)
	}
}
