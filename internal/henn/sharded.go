package henn

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"cnnhe/internal/henn/exec"
	"cnnhe/internal/henn/ir"
	"cnnhe/internal/henn/ir/opt"
	"cnnhe/internal/henn/shard"
	"cnnhe/internal/nn"
	"cnnhe/internal/tensor"
)

// This file threads the shard manifests of internal/henn/shard through
// the compile→lower→execute pipeline (DESIGN.md §15). A ShardedPlan is
// the multi-ciphertext analogue of Plan: the input tensor arrives as
// NumShards ciphertexts laid out by a shard.Manifest, every stage maps a
// shard set to a shard set, and the pipeline must converge to a single
// ciphertext before the logits are decrypted.
//
// Linear stages are carved into inter-shard blocks: for output shard j
// and input shard i, block (j, i) is the sub-matrix connecting shard i's
// slots to shard j's slots, lowered through the existing LinearStage
// BSGS machinery. The halo exchange of a convolution — output pixels
// near a band boundary reading input pixels from the neighbouring
// shard — appears as those off-diagonal blocks being non-zero; all-zero
// blocks are skipped outright. Each output shard sums its block
// accumulators at the shared pre-rescale scale with one fused
// ir.OpRecombine (all weights 1, bit-identical to an Add chain by the
// Recombiner contract) and then pays a single rescale, so a one-block
// row lowers to exactly the unsharded op sequence. Activations apply
// per-shard with coefficient vectors sliced through the manifest's
// slot→global bijection.
//
// Because sharded stages lower through the same symbolic tracer into the
// same IR, the optimizer passes and the bounded-worker parallel
// scheduler apply unchanged, shards execute concurrently, and a guarded
// engine tracks noise per shard ciphertext like any other ciphertext.

// ShardStage is one sharded pipeline step: a map from the stage's input
// shard set to its output shard set.
type ShardStage interface {
	// EvalShards applies the stage to one ciphertext per input shard.
	EvalShards(e Engine, in []Ct) []Ct
	// Rotations lists the slot rotations the stage needs.
	Rotations() []int
	// Depth is the number of rescales the stage consumes.
	Depth() int
	// Describe returns a human-readable summary.
	Describe() string
	// InShards and OutShards are the stage's shard arities.
	InShards() int
	OutShards() int
}

// ShardedLinear evaluates y = M·x + b over sharded input and output
// layouts, as a grid of inter-shard block matrix-vector products.
type ShardedLinear struct {
	Label   string
	In, Out shard.Manifest
	// Blocks[j][i] is the (output shard j, input shard i) sub-matrix
	// stage; nil where the block is all-zero. Each block's Bias holds
	// output shard j's bias slice, added only by the row's first
	// non-nil block (the carrier).
	Blocks [][]*LinearStage
}

// newShardedLinear carves a full rows×cols matrix (+bias) into manifest
// blocks. With single-shard manifests on both sides the only block is
// byte-identical to the unsharded NewLinearStage lowering, label
// included.
func newShardedLinear(label string, mat *tensor.Tensor, bias []float64, in, out shard.Manifest, slots int) (*ShardedLinear, error) {
	rows, cols := mat.Shape[0], mat.Shape[1]
	if rows != out.Shape.Flat() || cols != in.Shape.Flat() {
		return nil, fmt.Errorf("henn: stage %s matrix is %dx%d, manifests say %dx%d",
			label, rows, cols, out.Shape.Flat(), in.Shape.Flat())
	}
	st := &ShardedLinear{Label: label, In: in, Out: out, Blocks: make([][]*LinearStage, out.NumShards())}
	single := in.NumShards() == 1 && out.NumShards() == 1
	for j := range st.Blocks {
		st.Blocks[j] = make([]*LinearStage, in.NumShards())
		br := out.ShardLen(j)
		rowBias := make([]float64, br)
		for r := range rowBias {
			rowBias[r] = bias[out.GlobalAt(j, r)]
		}
		any := false
		for i := range st.Blocks[j] {
			bc := in.ShardLen(i)
			sub := tensor.New(br, bc)
			nonzero := false
			for r := 0; r < br; r++ {
				gr := out.GlobalAt(j, r) * cols
				for c := 0; c < bc; c++ {
					if v := mat.Data[gr+in.GlobalAt(i, c)]; v != 0 {
						sub.Data[r*bc+c] = v
						nonzero = true
					}
				}
			}
			if !nonzero {
				continue
			}
			lbl := label
			if !single {
				lbl = fmt.Sprintf("%s/s%d_%d", label, j, i)
			}
			blk, err := NewLinearStage(lbl, sub, rowBias, slots)
			if err != nil {
				return nil, err
			}
			st.Blocks[j][i] = blk
			any = true
		}
		if !any {
			return nil, fmt.Errorf("henn: stage %s output shard %d receives no input (zero block row)", label, j)
		}
	}
	return st, nil
}

// recombineAll sums block accumulators with the engine's fused
// Recombine (all weights 1) when available, falling back to the
// bit-identical Add chain. A single accumulator passes through
// untouched, which is what keeps one-block rows — and therefore whole
// 1×1-grid plans — identical to the unsharded lowering.
func recombineAll(e Engine, cts []Ct) Ct {
	if len(cts) == 1 {
		return cts[0]
	}
	if rc, ok := e.(ir.Recombiner); ok {
		w := make([]int64, len(cts))
		for i := range w {
			w[i] = 1
		}
		return rc.Recombine(cts, w)
	}
	acc := cts[0]
	for _, ct := range cts[1:] {
		acc = e.Add(acc, ct)
	}
	return acc
}

// EvalShards implements ShardStage: per output shard, evaluate every
// non-zero block to its pre-rescale accumulator (the row's first block
// carries the bias), fuse them with one Recombine, then rescale once.
func (s *ShardedLinear) EvalShards(e Engine, in []Ct) []Ct {
	out := make([]Ct, len(s.Blocks))
	for j, row := range s.Blocks {
		var parts []Ct
		for i, blk := range row {
			if blk == nil {
				continue
			}
			parts = append(parts, blk.evalRaw(e, in[i], len(parts) == 0))
		}
		out[j] = e.Rescale(recombineAll(e, parts))
	}
	return out
}

// Rotations implements ShardStage: the union over all blocks.
func (s *ShardedLinear) Rotations() []int {
	set := map[int]bool{}
	for _, row := range s.Blocks {
		for _, blk := range row {
			if blk == nil {
				continue
			}
			for _, r := range blk.Rotations() {
				set[r] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// Depth implements ShardStage.
func (s *ShardedLinear) Depth() int { return 1 }

// InShards implements ShardStage.
func (s *ShardedLinear) InShards() int { return s.In.NumShards() }

// OutShards implements ShardStage.
func (s *ShardedLinear) OutShards() int { return s.Out.NumShards() }

// Describe implements ShardStage.
func (s *ShardedLinear) Describe() string {
	if s.InShards() == 1 && s.OutShards() == 1 {
		return s.Blocks[0][0].Describe()
	}
	nz := 0
	for _, row := range s.Blocks {
		for _, blk := range row {
			if blk != nil {
				nz++
			}
		}
	}
	return fmt.Sprintf("linear %s: %d->%d shards, %d/%d blocks",
		s.Label, s.InShards(), s.OutShards(), nz, s.InShards()*s.OutShards())
}

// ShardedAct applies a polynomial activation shard-wise, with the
// coefficient vectors sliced to each shard's slot layout.
type ShardedAct struct {
	Man  shard.Manifest
	Acts []*ActStage
}

// newShardedAct slices the per-unit coefficients through the manifest's
// slot→global bijection: shard s's slot i activates with the
// coefficients of global element Man.GlobalAt(s, i). A single-shard
// manifest reproduces the unsharded ActStage exactly.
func newShardedAct(label string, l *nn.SLAF, unitOf func(i int) int, man shard.Manifest, slots int) (*ShardedAct, error) {
	st := &ShardedAct{Man: man, Acts: make([]*ActStage, man.NumShards())}
	for s := range st.Acts {
		lbl := label
		if man.NumShards() > 1 {
			lbl = fmt.Sprintf("%s/s%d", label, s)
		}
		s := s
		shardUnit := func(i int) int { return unitOf(man.GlobalAt(s, i)) }
		act, err := NewActStage(lbl, l, man.ShardLen(s), shardUnit, slots)
		if err != nil {
			return nil, err
		}
		st.Acts[s] = act
	}
	return st, nil
}

// EvalShards implements ShardStage: shards activate independently.
func (s *ShardedAct) EvalShards(e Engine, in []Ct) []Ct {
	out := make([]Ct, len(s.Acts))
	for i, act := range s.Acts {
		out[i] = act.Eval(e, in[i])
	}
	return out
}

// Rotations implements ShardStage.
func (s *ShardedAct) Rotations() []int { return nil }

// Depth implements ShardStage.
func (s *ShardedAct) Depth() int { return s.Acts[0].Depth() }

// InShards implements ShardStage.
func (s *ShardedAct) InShards() int { return s.Man.NumShards() }

// OutShards implements ShardStage.
func (s *ShardedAct) OutShards() int { return s.Man.NumShards() }

// Describe implements ShardStage.
func (s *ShardedAct) Describe() string {
	if len(s.Acts) == 1 {
		return s.Acts[0].Describe()
	}
	return fmt.Sprintf("%s x%d shards", s.Acts[0].Describe(), len(s.Acts))
}

// shardShapeOf converts a walk shape to the manifest form (flat vectors
// become 1×1×flat).
func shardShapeOf(t tshape) shard.Shape {
	if t.c > 0 {
		return shard.Shape{C: t.c, H: t.h, W: t.w}
	}
	return shard.Shape{C: 1, H: 1, W: t.flat}
}

// manifestFor picks the stage-boundary manifest for an intermediate
// tensor: single-shard whenever it fits (so downstream stages stay on
// the unsharded fast path), else the smallest horizontal band grid that
// does.
func manifestFor(t tshape, slots int) (shard.Manifest, error) {
	shape := shardShapeOf(t)
	// Image tensors band across rows; flat vectors (H = 1) band across
	// their single spatial axis instead.
	for g := 1; g <= shape.H*shape.W; g++ {
		grid := shard.Grid{Gy: g, Gx: 1}
		if shape.H == 1 {
			if g > shape.W {
				break
			}
			grid = shard.Grid{Gy: 1, Gx: g}
		} else if g > shape.H {
			break
		}
		if m, err := shard.New(shape, grid, slots); err == nil {
			return m, nil
		}
	}
	return shard.Manifest{}, fmt.Errorf("henn: %dx%dx%d tensor does not fit %d slots even one band per shard",
		shape.C, shape.H, shape.W, slots)
}

// ShardedPlan is a compiled multi-ciphertext pipeline: the input splits
// across Input.NumShards() ciphertexts, stages run shard-wise with
// planned cross-shard recombination, and the final stage converges to a
// single ciphertext holding the logits.
type ShardedPlan struct {
	Slots     int
	InputDim  int
	OutputDim int
	// Input is the manifest clients split images by; its wire form is
	// advertised in /v1/info.
	Input shard.Manifest
	// Output is the logits manifest (always a single shard).
	Output shard.Manifest
	Stages []ShardStage
	// Depth is the number of levels the plan consumes.
	Depth int
	// Opt configures the graph optimizer like Plan.Opt.
	Opt *opt.Options
	// Parallel schedules independent ops — notably per-shard block
	// products — on the executor's bounded worker pool.
	Parallel bool

	mu         sync.Mutex
	prepared   map[Engine]*exec.Prepared
	optResults map[Engine]*opt.Result
}

// CompileSharded lowers a trained SLAF model to a sharded plan: the
// input tensor is split by grid, intermediate manifests are chosen per
// stage boundary (single-shard as soon as the tensor fits), and every
// linear stage is carved into inter-shard blocks. CompileSharded with a
// 1×1 grid on a model whose tensors all fit one ciphertext produces a
// plan whose lowering is identical to Compile's.
func CompileSharded(m *nn.Model, slots int, grid shard.Grid) (*ShardedPlan, error) {
	abs, input, outputDim, err := buildAbstract(m, Options{Collapse: true})
	if err != nil {
		return nil, err
	}
	inMan, err := shard.New(shardShapeOf(input), grid, slots)
	if err != nil {
		return nil, err
	}
	plan := &ShardedPlan{Slots: slots, InputDim: input.flat, OutputDim: outputDim, Input: inMan}
	cur := inMan
	for _, a := range abs {
		if a.mat != nil {
			outMan, err := manifestFor(a.out, slots)
			if err != nil {
				return nil, fmt.Errorf("henn: stage %s: %w", a.label, err)
			}
			st, err := newShardedLinear(a.label, a.mat, a.bias, cur, outMan, slots)
			if err != nil {
				return nil, err
			}
			plan.Stages = append(plan.Stages, st)
			cur = outMan
		} else {
			st, err := newShardedAct(a.label, a.slaf, a.unitOf, cur, slots)
			if err != nil {
				return nil, err
			}
			plan.Stages = append(plan.Stages, st)
		}
	}
	if cur.NumShards() != 1 {
		return nil, fmt.Errorf("henn: pipeline ends on %d shards; the final stage must converge to one ciphertext", cur.NumShards())
	}
	plan.Output = cur
	for _, s := range plan.Stages {
		plan.Depth += s.Depth()
	}
	// Record the cross-shard fan-in on the advertised manifest: the most
	// extra input shards any output shard draws from (0 = band-local).
	fanIn := 0
	for _, s := range plan.Stages {
		if sl, ok := s.(*ShardedLinear); ok {
			for _, row := range sl.Blocks {
				n := 0
				for _, blk := range row {
					if blk != nil {
						n++
					}
				}
				if n-1 > fanIn {
					fanIn = n - 1
				}
			}
		}
	}
	plan.Input.Halo = fanIn
	return plan, nil
}

// CompileShardedAuto compiles with the smallest horizontal-band input
// grid whose shards fit the slot count — a 1×1 grid (and therefore a
// lowering identical to Compile's) whenever the input already fits one
// ciphertext.
func CompileShardedAuto(m *nn.Model, slots int) (*ShardedPlan, error) {
	_, input, _, err := buildAbstract(m, Options{Collapse: true})
	if err != nil {
		return nil, err
	}
	man, err := manifestFor(input, slots)
	if err != nil {
		return nil, err
	}
	return CompileSharded(m, slots, man.Grid)
}

// NumShards returns the input ciphertext count.
func (p *ShardedPlan) NumShards() int { return p.Input.NumShards() }

// Rotations returns the union of rotation amounts needed by all stages.
func (p *ShardedPlan) Rotations() []int {
	set := map[int]bool{}
	for _, s := range p.Stages {
		for _, r := range s.Rotations() {
			if r != 0 {
				set[r] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// CheckDepth verifies the plan fits the engine's level budget.
func (p *ShardedPlan) CheckDepth(maxLevel int) error {
	if p.Depth > maxLevel {
		return fmt.Errorf("henn: plan needs %d levels but parameters provide %d", p.Depth, maxLevel)
	}
	return nil
}

// Describe returns a multi-line plan summary.
func (p *ShardedPlan) Describe() string {
	out := fmt.Sprintf("sharded plan: %s input, %d stages, depth %d, %d rotations\n",
		p.Input, len(p.Stages), p.Depth, len(p.Rotations()))
	for _, s := range p.Stages {
		out += "  " + s.Describe() + "\n"
	}
	return out
}

// Lower compiles the sharded plan into an ir.Graph with one input per
// shard. Stage evaluation runs against the symbolic tracer, so the
// cross-shard block products and fused recombines land in the same IR
// the optimizer passes and both executors already handle.
func (p *ShardedPlan) Lower(e Engine) (g *ir.Graph, err error) {
	defer recoverLowerErr(&err)
	if len(p.Stages) == 0 {
		return nil, fmt.Errorf("henn: lower: sharded plan has no stages")
	}
	k := p.Input.NumShards()
	t := newTracer(e, k)
	cur := make([]Ct, k)
	for i := 0; i < k; i++ {
		name := "encrypt"
		if k > 1 {
			name = fmt.Sprintf("encrypt shard %d", i)
		}
		t.beginStage(name, false)
		ct := t.encrypt(i)
		t.setStageOut(ct.id)
		cur[i] = ct
	}
	for si, s := range p.Stages {
		if len(cur) != s.InShards() {
			return nil, fmt.Errorf("henn: lower: stage %d (%s) expects %d shards, has %d",
				si, s.Describe(), s.InShards(), len(cur))
		}
		t.beginStage(fmt.Sprintf("stage %d (%s)", si, s.Describe()), true)
		cur = s.EvalShards(t, cur)
		t.setStageOut(t.in("stage output", cur[0]).id)
	}
	if len(cur) != 1 {
		return nil, fmt.Errorf("henn: lower: pipeline ended on %d shards", len(cur))
	}
	t.g.Output = t.in("graph output", cur[0]).id
	if err := t.g.Validate(); err != nil {
		return nil, err
	}
	return t.g, nil
}

// prepare lowers the sharded plan for e (once per engine), optimizes the
// graph, and pre-encodes every plaintext operand.
func (p *ShardedPlan) prepare(e Engine) (*exec.Prepared, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if pr, ok := p.prepared[e]; ok {
		telPrepare(true)
		return pr, nil
	}
	telPrepare(false)
	g, err := p.Lower(e)
	if err != nil {
		return nil, err
	}
	res, err := optimizeLowered(e, g, p.Opt)
	if err != nil {
		return nil, err
	}
	pr, err := exec.Prepare(e, res.Graph)
	if err != nil {
		return nil, err
	}
	if p.prepared == nil {
		p.prepared = map[Engine]*exec.Prepared{}
		p.optResults = map[Engine]*opt.Result{}
	}
	p.prepared[e] = pr
	p.optResults[e] = res
	return pr, nil
}

// OptResult returns the optimizer outcome for e, preparing the plan if
// needed.
func (p *ShardedPlan) OptResult(e Engine) (*opt.Result, error) {
	if _, err := p.prepare(e); err != nil {
		return nil, err
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.optResults[e], nil
}

// Warm mirrors Plan.Warm for the sharded pipeline.
func (p *ShardedPlan) Warm(e Engine) error {
	_, err := p.prepare(e)
	return err
}

// InferCtx classifies one raw image through the sharded pipeline with
// the same validation, cancellation, and reporting contract as
// Plan.InferCtx. The image splits by the input manifest, each shard
// encrypts into its own ciphertext, and in Parallel mode the per-shard
// subgraphs run concurrently on the executor's worker pool.
func (p *ShardedPlan) InferCtx(ctx context.Context, e Engine, image []float64) (Logits, *Report, error) {
	rep := &Report{Engine: e.Name()}
	if len(image) != p.InputDim {
		return nil, rep, badInput("image length %d does not match plan input dim %d", len(image), p.InputDim)
	}
	pr, err := p.prepare(e)
	if err != nil {
		rep.FailedStage = "prepare"
		return nil, rep, err
	}
	parts, err := p.Input.Split(image)
	if err != nil {
		rep.FailedStage = "split"
		return nil, rep, badInput("%v", err)
	}
	workers := 1
	if p.Parallel {
		workers = p.Input.NumShards()
	}
	defer telInferStart()()
	res, err := pr.Run(ctx, parts, exec.Options{Workers: workers})
	fillReport(rep, res)
	if err != nil {
		return nil, rep, err
	}
	return decryptLogits(ctx, e, res.Out, p.OutputDim, rep)
}

// Infer classifies one raw image, panicking on error like Plan.Infer.
func (p *ShardedPlan) Infer(e Engine, image []float64) (Logits, time.Duration) {
	logits, rep, err := p.InferCtx(context.Background(), e, image)
	if err != nil {
		panic(err)
	}
	return logits, rep.Eval
}

// EvaluateEncrypted mirrors Plan.EvaluateEncrypted for the sharded
// pipeline.
func (p *ShardedPlan) EvaluateEncrypted(e Engine, images [][]float64, labels []int, n int) (float64, LatencyStats, error) {
	return evaluateEncrypted(p.InferCtx, e, images, labels, n, p.InputDim)
}
