module cnnhe

go 1.22
