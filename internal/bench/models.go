// Package bench regenerates every table and figure of the paper's
// evaluation section: model training/caching, engine construction, and one
// runner per experiment (see DESIGN.md §4 for the experiment index).
package bench

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"cnnhe/internal/henn/ir/opt"
	"cnnhe/internal/mnist"
	"cnnhe/internal/nn"
)

// Config collects the experiment knobs. The zero value is not useful; use
// DefaultConfig.
type Config struct {
	// LogN selects the ring degree (12 = default test scale, 14 = paper).
	LogN int
	// Runs is the number of encrypted classifications per latency row.
	Runs int
	// AccImages is the number of encrypted classifications used for the
	// accuracy columns (kept small: encrypted inference is expensive).
	AccImages int
	// TrainN / TestN are dataset sizes.
	TrainN, TestN int
	// Epochs / RetrofitEpochs control training length.
	Epochs, RetrofitEpochs int
	// Seed drives all deterministic randomness.
	Seed int64
	// ModelDir caches trained models between runs ("" = no caching).
	ModelDir string
	// Verbose enables training progress logs.
	Verbose bool
	// Opt configures the graph optimizer for every measured plan
	// (nil = default pipeline; see henn/ir/opt).
	Opt *opt.Options
}

// DefaultConfig returns laptop-scale settings (minutes, not hours).
func DefaultConfig() Config {
	return Config{
		LogN: 12, Runs: 3, AccImages: 20,
		TrainN: 6000, TestN: 1000,
		Epochs: 10, RetrofitEpochs: 3,
		Seed: 1, ModelDir: "models",
	}
}

// PaperConfig returns the paper-scale settings (N=2^14, 30 epochs,
// paper-sized datasets). Expect hours of wall time and ~10 GB of memory.
func PaperConfig() Config {
	return Config{
		LogN: 14, Runs: 5, AccImages: 100,
		TrainN: 50000, TestN: 10000,
		Epochs: 30, RetrofitEpochs: 5,
		Seed: 1, ModelDir: "models",
	}
}

// Models bundles the trained artifacts both benchmark families consume.
type Models struct {
	CNN1, CNN2 *nn.Model // SLAF models (HE-ready)
	// Plain accuracies on the test set (the tables' Acc columns).
	TrainAcc1, TestAcc1 float64
	TrainAcc2, TestAcc2 float64
	// Test data in raw pixel form.
	Test mnist.Dataset
	// DataSource describes where the data came from.
	DataSource string
}

// TrainModels trains (or loads cached) CNN1 and CNN2, retrofits SLAFs per
// the paper's recipe, and reports plaintext accuracies.
func TrainModels(cfg Config, logw io.Writer) (*Models, error) {
	train, test, src := mnist.Load(cfg.TrainN, cfg.TestN, cfg.Seed)
	out := &Models{Test: test, DataSource: src}
	trainNN := train.ToNN()
	testNN := test.ToNN()

	for _, arch := range []string{"cnn1", "cnn2"} {
		var cached *nn.Model
		path := ""
		if cfg.ModelDir != "" {
			path = filepath.Join(cfg.ModelDir, fmt.Sprintf("%s-slaf-n%d-s%d.gob", arch, cfg.TrainN, cfg.Seed))
			if m, a, err := nn.LoadModel(path); err == nil && a == arch {
				cached = m
				fmt.Fprintf(logw, "loaded cached %s from %s\n", arch, path)
			}
		}
		var slaf *nn.Model
		var trainAcc float64
		if cached != nil {
			slaf = cached
			trainAcc = nn.Evaluate(slaf, trainNN)
		} else {
			rng := rand.New(rand.NewSource(cfg.Seed + 100))
			var m *nn.Model
			if arch == "cnn1" {
				m = nn.NewCNN1(rng)
			} else {
				m = nn.NewCNN2(rng)
			}
			tc := nn.TrainConfig{
				Epochs: cfg.Epochs, BatchSize: 64, MaxLR: 0.08, Momentum: 0.9,
				Seed: cfg.Seed + 200, Verbose: cfg.Verbose, LogEvery: 5,
			}
			fmt.Fprintf(logw, "training %s (%d images, %d epochs, data: %s)...\n", arch, train.Len(), cfg.Epochs, src)
			trainAcc = nn.Train(m, trainNN, tc)
			rc := nn.DefaultRetrofitConfig()
			rc.Epochs = cfg.RetrofitEpochs
			rc.Seed = cfg.Seed + 300
			fmt.Fprintf(logw, "retrofitting SLAF activations (%d epochs)...\n", rc.Epochs)
			slaf = nn.Retrofit(m, trainNN, rc)
			if path != "" {
				if err := os.MkdirAll(cfg.ModelDir, 0o755); err == nil {
					if err := slaf.Save(path, arch); err != nil {
						fmt.Fprintf(logw, "warning: model cache write failed: %v\n", err)
					}
				}
			}
		}
		testAcc := nn.Evaluate(slaf, testNN)
		fmt.Fprintf(logw, "%s: train acc %.3f%%, SLAF test acc %.3f%%\n", arch, 100*trainAcc, 100*testAcc)
		if arch == "cnn1" {
			out.CNN1, out.TrainAcc1, out.TestAcc1 = slaf, trainAcc, testAcc
		} else {
			out.CNN2, out.TrainAcc2, out.TestAcc2 = slaf, trainAcc, testAcc
		}
	}
	return out, nil
}

// TestSlice extracts the first n raw test images and labels.
func (m *Models) TestSlice(n int) ([][]float64, []int) {
	if n > m.Test.Len() {
		n = m.Test.Len()
	}
	images := make([][]float64, n)
	for i := 0; i < n; i++ {
		images[i] = m.Test.Image(i)
	}
	return images, m.Test.Labels[:n]
}
