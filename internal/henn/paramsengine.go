package henn

// ParamsOnlyEngine returns an Engine that implements only the five
// parameter accessors (Name, Slots, MaxLevel, Scale, QiFloat). That is
// everything Plan.Lower, RNSPlan.Lower and the graph optimizer touch —
// lowering is symbolic — so callers that only need graph shapes (the
// hebench JSON report, the golden graph-size gate) can skip key
// generation entirely. Any evaluation method panics via the embedded
// nil Engine, which doubles as an assertion that lowering stayed
// symbolic.
func ParamsOnlyEngine(name string, slots, maxLevel int, scale float64, qi func(level int) float64) Engine {
	return &paramsOnlyEngine{name: name, slots: slots, maxLevel: maxLevel, scale: scale, qi: qi}
}

type paramsOnlyEngine struct {
	Engine   // nil: evaluation calls panic
	name     string
	slots    int
	maxLevel int
	scale    float64
	qi       func(int) float64
}

func (p *paramsOnlyEngine) Name() string              { return p.name }
func (p *paramsOnlyEngine) Slots() int                { return p.slots }
func (p *paramsOnlyEngine) MaxLevel() int             { return p.maxLevel }
func (p *paramsOnlyEngine) Scale() float64            { return p.scale }
func (p *paramsOnlyEngine) QiFloat(level int) float64 { return p.qi(level) }
