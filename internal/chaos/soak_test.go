package chaos_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"cnnhe/internal/chaos"
	"cnnhe/internal/ckks"
	"cnnhe/internal/client"
	"cnnhe/internal/guard"
	"cnnhe/internal/henn"
	"cnnhe/internal/nn"
	"cnnhe/internal/serve"
)

// soakModel mirrors the serve test fixture: Conv(1→2, 3×3, s2) → SLAF →
// Flatten → Dense on 8×8 inputs.
func soakModel(seed int64) *nn.Model {
	rng := rand.New(rand.NewSource(seed))
	conv := nn.NewConv2D(rng, 1, 2, 3, 2, 0, 8, 8)
	flat := conv.OutC * conv.OutH() * conv.OutW()
	m := &nn.Model{Layers: []nn.Layer{
		conv,
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewDense(rng, flat, 4),
	}}
	hm := m.ReplaceReLUWithSLAF(3, 1)
	for _, l := range hm.Layers {
		if s, ok := l.(*nn.SLAF); ok {
			s.FitReLU(3)
		}
	}
	return hm
}

// daemon is one in-process incarnation of the keyed server: an abrupt
// Close (the test's stand-in for SIGKILL — no drain, connections torn
// down mid-exchange) plus a channel carrying Serve's exit, so the soak
// can assert the server only ever stopped because we stopped it.
type daemon struct {
	keyed *serve.Keyed
	http  *http.Server
	done  chan error
}

// startDaemon boots a keyed server over the durable store at dir,
// listening on addr ("127.0.0.1:0" for the first incarnation, the
// recorded address for restarts), with inj's faults on the listener.
func startDaemon(t *testing.T, addr, dir string, inj *chaos.Injector) (*daemon, string) {
	t.Helper()
	m := soakModel(61)
	plan, err := henn.Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ckks.NewParameters(10, []int{40, 30, 30, 30, 30}, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := ckks.NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	keyed, err := serve.NewKeyed(serve.KeyedConfig{
		Ctx:      ctx,
		Plan:     plan,
		Model:    "tiny",
		Backend:  "ckks-rns",
		StoreDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ln net.Listener
	// An abruptly killed predecessor may need a beat to release the port.
	for i := 0; ; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		if i == 50 {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	mux := http.NewServeMux()
	keyed.Routes(mux)
	d := &daemon{
		keyed: keyed,
		http:  &http.Server{Handler: mux},
		done:  make(chan error, 1),
	}
	go func() { d.done <- d.http.Serve(inj.WrapListener(ln)) }()
	return d, ln.Addr().String()
}

// kill tears the daemon down the way SIGKILL would reach its sockets:
// listener and every live connection closed immediately, no drain.
func (d *daemon) kill(t *testing.T) {
	t.Helper()
	_ = d.http.Close()
	d.keyed.Close()
	select {
	case err := <-d.done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			t.Fatalf("server exited with an unexpected error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not exit after Close")
	}
}

// soakClient is a retrying SDK client tuned for the test's timescale.
func soakClient(url string) *client.Client {
	cl := client.New(url)
	cl.HTTP = &http.Client{
		Timeout: 30 * time.Second,
		// One connection per request, so listener-level faults (decided
		// at accept) hit a fresh roll on every attempt.
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	cl.Retry = &client.RetryPolicy{
		MaxAttempts: 8,
		BaseBackoff: 50 * time.Millisecond,
		MaxBackoff:  500 * time.Millisecond,
		Rand:        rand.New(rand.NewSource(99)),
	}
	return cl
}

// TestSoakChaosKillRestart is the survival drill the robustness work
// exists for, end to end:
//
//  1. a client registers its key bundle with a durable-store daemon and
//     records a seeded encrypted classification;
//  2. concurrent encrypted load runs against a listener injecting
//     latency, connection resets, and truncated bodies — and mid-load
//     the daemon is killed abruptly and restarted over the same store
//     directory and address;
//  3. after the restart: the bundle is resident server-side before any
//     client request (durability, not client self-heal), the same
//     seeded classification decrypts bit-identically (no re-keygen, no
//     state drift), further load succeeds, and every request issued
//     during the whole ordeal terminated with a definite outcome.
func TestSoakChaosKillRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short mode")
	}
	dir := t.TempDir()
	loadFaults := []chaos.Rule{
		{Kind: chaos.Latency, P: 0.2, Latency: 20 * time.Millisecond},
		{Kind: chaos.Reset, P: 0.05},
		{Kind: chaos.Truncate, P: 0.05, Bytes: 400},
	}
	inj1 := chaos.New(1, loadFaults)
	d1, addr := startDaemon(t, "127.0.0.1:0", dir, inj1)
	url := "http://" + addr

	// Phase 1: key ceremony + reference classification through chaos.
	cl := soakClient(url)
	info, err := cl.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ks, err := client.GenerateKeys(info, client.WithSeed(91))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Register(context.Background(), ks); err != nil {
		t.Fatal(err)
	}
	fp, err := ks.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	img := make([]float64, info.InputDim)
	irng := rand.New(rand.NewSource(13))
	for i := range img {
		img[i] = float64(irng.Intn(256))
	}
	const encSeed = 777
	var ref *client.ClassifyResult
	for attempt := 0; ; attempt++ {
		// Chaos can tear the 200 response body (not a retryable status),
		// so the reference round trip gets its own persistence.
		if ref, err = cl.ClassifyEncrypted(context.Background(), ks, img, info.OutputDim,
			client.WithEncryptionSeed(encSeed)); err == nil {
			break
		}
		if attempt == 10 {
			t.Fatalf("reference classification never survived chaos: %v", err)
		}
	}

	// Phase 2: concurrent load; kill + restart mid-flight.
	const workers, rounds = 4, 6
	var (
		mu       sync.Mutex
		outcomes = map[string]int{}
	)
	account := func(class string) {
		mu.Lock()
		outcomes[class]++
		mu.Unlock()
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			wcl := soakClient(url)
			wcl.Retry.Rand = rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				_, err := wcl.ClassifyEncrypted(context.Background(), ks, img, info.OutputDim)
				switch {
				case err == nil:
					account("ok")
				default:
					account("error")
				}
			}
		}(w)
	}

	time.Sleep(300 * time.Millisecond) // let load hit the first daemon
	d1.kill(t)
	// Restart over the same store and address; latency-only chaos keeps
	// the network imperfect without corrupting the verification phase.
	inj2 := chaos.New(2, []chaos.Rule{{Kind: chaos.Latency, P: 0.3, Latency: 10 * time.Millisecond}})
	d2, _ := startDaemon(t, addr, dir, inj2)
	defer d2.kill(t)
	wg.Wait()

	mu.Lock()
	total := 0
	for _, n := range outcomes {
		total += n
	}
	mu.Unlock()
	if total != workers*rounds {
		t.Fatalf("accounted %d outcomes for %d requests — silent drop", total, workers*rounds)
	}

	// Phase 3: durability + bit-identical round trip, asserted
	// server-side BEFORE any client call could self-heal via
	// re-registration.
	if _, err := d2.keyed.Store().Get(fp); err != nil {
		t.Fatalf("bundle not resident after restart (durable reload failed): %v", err)
	}
	again, err := cl.ClassifyEncrypted(context.Background(), ks, img, info.OutputDim,
		client.WithEncryptionSeed(encSeed))
	if err != nil {
		t.Fatalf("post-restart classification: %v", err)
	}
	if len(again.Logits) != len(ref.Logits) {
		t.Fatalf("logit count drifted: %d != %d", len(again.Logits), len(ref.Logits))
	}
	for i := range ref.Logits {
		if again.Logits[i] != ref.Logits[i] {
			t.Fatalf("logit %d not bit-identical across kill/restart: %v != %v",
				i, again.Logits[i], ref.Logits[i])
		}
	}

	// Post-restart load must also succeed (fresh client, no prior state).
	post, err := soakClient(url).ClassifyEncrypted(context.Background(), ks, img, info.OutputDim)
	if err != nil {
		t.Fatalf("fresh-client post-restart classification: %v", err)
	}
	if post.Class != ref.Class {
		t.Fatalf("class drifted after restart: %d != %d", post.Class, ref.Class)
	}

	// The chaos actually bit: at least one fault fired during the load
	// phase (individual kinds are pinned deterministically in the unit
	// tests; here we prove the soak did not run on a clean network).
	if len(inj1.Fired()) == 0 {
		t.Fatal("no chaos fault fired during the load phase")
	}
	t.Logf("soak outcomes: %v; chaos fired: %v then %v", outcomes, inj1.Fired(), inj2.Fired())
}

// TestSoakPlainNoSilentDrops hammers the micro-batching plaintext server
// with concurrent mixed-deadline load under the race detector and proves
// the no-silent-drop invariant structurally: every Submit returns exactly
// one classified outcome, the admission gate sheds rather than wedges,
// and the server still serves cleanly afterwards.
func TestSoakPlainNoSilentDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("soak: skipped in -short mode")
	}
	m := soakModel(61)
	bp, err := henn.CompileBatched(m, 512, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ckks.NewParameters(10, []int{40, 30, 30, 30, 30}, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	e, err := henn.NewRNSEngine(p, bp.Plan.Rotations(), 601)
	if err != nil {
		t.Fatal(err)
	}
	s, err := serve.New(serve.Config{
		Batch:         bp,
		Engine:        guard.New(e, guard.DefaultConfig()),
		MaxWait:       time.Millisecond,
		QueueSize:     8,
		TargetLatency: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()

	const workers, rounds = 8, 12
	var (
		mu       sync.Mutex
		outcomes = map[string]int{}
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for r := 0; r < rounds; r++ {
				img := make([]float64, bp.Plan.InputDim)
				for i := range img {
					img[i] = float64(rng.Intn(256))
				}
				ctx := context.Background()
				if r%3 == 1 {
					// A third of the load carries tight deadlines some of
					// which the shed path must refuse.
					var cancel context.CancelFunc
					ctx, cancel = context.WithTimeout(ctx, time.Duration(1+rng.Intn(200))*time.Millisecond)
					defer cancel()
				}
				_, _, err := s.Submit(ctx, img)
				class := "ok"
				switch {
				case errors.Is(err, serve.ErrQueueFull):
					class = "rejected"
				case errors.Is(err, serve.ErrDeadlineUnmeetable):
					class = "shed"
				case errors.Is(err, context.DeadlineExceeded):
					class = "deadline"
				case err != nil:
					class = "error:" + err.Error()
				}
				mu.Lock()
				outcomes[class]++
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()

	total, unexpected := 0, []string{}
	for class, n := range outcomes {
		total += n
		if strings.HasPrefix(class, "error:") {
			unexpected = append(unexpected, class)
		}
	}
	if total != workers*rounds {
		t.Fatalf("accounted %d outcomes for %d requests — silent drop", total, workers*rounds)
	}
	if len(unexpected) > 0 {
		t.Fatalf("unclassified errors under load: %v (outcomes %v)", unexpected, outcomes)
	}
	if outcomes["ok"] == 0 {
		t.Fatalf("overload soak starved every request: %v", outcomes)
	}

	// The server is still healthy: an unhurried request round-trips.
	img := make([]float64, bp.Plan.InputDim)
	if _, _, err := s.Submit(context.Background(), img); err != nil {
		t.Fatalf("post-soak request failed: %v", err)
	}
	t.Logf("plain soak outcomes: %v", outcomes)
}
