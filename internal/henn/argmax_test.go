package henn

import (
	"math"
	"testing"
)

func TestArgmaxNaNSafe(t *testing.T) {
	nan := math.NaN()
	cases := []struct {
		name string
		l    Logits
		want int
	}{
		{"empty", Logits{}, 0},
		{"single", Logits{3.2}, 0},
		{"plain max", Logits{0.1, 2.5, 1.9}, 1},
		{"all negative", Logits{-5, -1, -3}, 1},
		{"tie keeps first", Logits{1, 7, 7, 2}, 1},
		{"nan first", Logits{nan, 0.5, 2.5, 1.0}, 2},
		{"nan middle", Logits{0.5, nan, 2.5, 1.0}, 2},
		{"nan last", Logits{0.5, 2.5, nan}, 1},
		{"several nans", Logits{nan, nan, -1, nan, -2}, 2},
		{"all nan", Logits{nan, nan, nan}, 0},
		{"inf beats finite", Logits{1, math.Inf(1), 2}, 1},
		{"neg inf skippedless", Logits{math.Inf(-1), -3, -4}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.l.Argmax(); got != tc.want {
				t.Fatalf("Argmax(%v) = %d, want %d", tc.l, got, tc.want)
			}
			// Deterministic: repeated calls agree.
			if again := tc.l.Argmax(); again != tc.l.Argmax() {
				t.Fatalf("Argmax(%v) not deterministic: %d vs %d", tc.l, again, tc.l.Argmax())
			}
		})
	}
}
