package noise

import (
	"math"
	"math/rand"
	"testing"

	"cnnhe/internal/ckks"
)

func model(p ckks.Parameters) Model {
	return Model{N: p.N(), Sigma: p.Sigma, H: p.H}
}

// maxSlotErr measures canonical-embedding noise empirically: encrypt a
// vector, operate, decrypt, compare. Errors are converted to coefficient
// units by multiplying with the scale.
func maxSlotErr(got, want []float64, scale float64) float64 {
	m := 0.0
	for i := range want {
		if e := math.Abs(got[i] - want[i]); e > m {
			m = e
		}
	}
	return m * scale
}

func TestFreshNoiseBoundHolds(t *testing.T) {
	p, err := ckks.TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := ckks.NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 1)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := ckks.NewEncoder(ctx)
	ept := ckks.NewEncryptor(ctx, pk, 2)
	dec := ckks.NewDecryptor(ctx, sk)

	rng := rand.New(rand.NewSource(3))
	n := p.Slots()
	bound := model(p).Fresh()
	for trial := 0; trial < 5; trial++ {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64()*2 - 1
		}
		ct := ept.Encrypt(enc.Encode(vals, p.MaxLevel(), p.Scale))
		got := enc.Decode(dec.DecryptNew(ct))
		measured := maxSlotErr(got[:n], vals, p.Scale)
		if measured > bound {
			t.Fatalf("fresh noise %.1f exceeds bound %.1f", measured, bound)
		}
		if measured > bound/3 {
			t.Logf("note: measured %.1f close to bound %.1f", measured, bound)
		}
	}
}

func TestBoundsMonotonic(t *testing.T) {
	small := Model{N: 1 << 10, Sigma: 3.2, H: 64}
	big := Model{N: 1 << 14, Sigma: 3.2, H: 64}
	if small.Fresh() >= big.Fresh() {
		t.Fatal("fresh bound must grow with N")
	}
	if small.Rescale() >= big.Rescale() {
		t.Fatal("rescale bound must grow with N")
	}
	if small.KeySwitch(4, math.Exp2(30), math.Exp2(50)) <=
		small.KeySwitch(4, math.Exp2(30), math.Exp2(60)) {
		t.Fatal("larger P must reduce key-switch noise")
	}
}

func TestBudgetPipeline(t *testing.T) {
	p, err := ckks.TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	m := model(p)
	q := p.QiFloat(p.MaxLevel())
	b := NewBudget(m, p.Scale)
	start := b.BitsOfPrecision()
	if start < 10 {
		t.Fatalf("fresh precision too low: %.1f bits", start)
	}
	// One plaintext multiplication by unit-norm weights.
	b.AfterMulPlain(q, 1.0, q)
	if err := b.Check(5); err != nil {
		t.Fatalf("precision after mulplain should be fine: %v", err)
	}
	// A ciphertext multiplication with a same-noise operand.
	ks := m.KeySwitch(p.MaxLevel()+1, q, math.Exp2(50))
	b.AfterMul(m.Fresh(), 1, 1, ks, p.QiFloat(p.MaxLevel()-1))
	b.AfterRotation(ks)
	if b.BitsOfPrecision() >= start {
		t.Fatal("precision must decrease through the pipeline")
	}
	if len(b.Steps) != 4 {
		t.Fatalf("steps not recorded: %v", b.Steps)
	}
	// Drowning the message must be detected.
	b.Noise = b.Scale * 2
	if err := b.Check(1); err == nil {
		t.Fatal("expected precision failure")
	}
}

// TestDepthChainNoiseStaysBounded runs the Tiny depth chain empirically
// and confirms the final error is far below the message.
func TestDepthChainNoiseStaysBounded(t *testing.T) {
	p, err := ckks.TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	ctx, err := ckks.NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 7)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	enc := ckks.NewEncoder(ctx)
	ept := ckks.NewEncryptor(ctx, pk, 8)
	dec := ckks.NewDecryptor(ctx, sk)
	ev := ckks.NewEvaluator(ctx, rlk, nil)

	n := p.Slots()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 0.9
	}
	ct := ept.Encrypt(enc.Encode(vals, p.MaxLevel(), p.Scale))
	want := 0.9
	for l := p.MaxLevel(); l > 0; l-- {
		ct = ev.Rescale(ev.Square(ct))
		want *= want
	}
	got := enc.Decode(dec.DecryptNew(ct))
	if rel := math.Abs(got[0]-want) / want; rel > 1e-3 {
		t.Fatalf("relative error %.2e too large after full depth", rel)
	}
}
