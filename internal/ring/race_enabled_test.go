//go:build race

package ring

// raceEnabled reports whether the race detector is active: its allocation
// instrumentation inflates AllocsPerRun counts, so the exact-allocation
// assertions are skipped under -race (the race run's job is the data-race
// and determinism checks, not allocation accounting).
const raceEnabled = true
