// Package embed implements the CKKS canonical embedding
// τ : R[X]/(X^N+1) → C^{N/2} and its inverse, the map between slot vectors
// of complex numbers and real polynomial coefficients.
//
// A real polynomial p of degree < N is determined by its values at the
// primitive 2N-th roots of unity ζ^{2k+1}; conjugate pairs of evaluation
// points carry conjugate values, so the N/2 values at the orbit
// {ζ^{5^j} : j = 0..N/2−1} (one representative per conjugate pair) suffice.
// Evaluation at all odd powers reduces to a standard size-N DFT of the
// ζ^j-twisted coefficients:
//
//	p(ζ^{2k+1}) = Σ_j a_j ζ^{j(2k+1)} = Σ_j (a_j ζ^j) ω^{jk},  ω = e^{2πi/N},
//
// so both directions run in O(N log N) using an ordinary radix-2 FFT.
package embed

import (
	"math"
	"math/cmplx"
)

// Embedder precomputes the twiddle factors, twists and slot-orbit indexing
// for a fixed ring degree N.
type Embedder struct {
	n       int
	logN    int
	slots   int
	twist   []complex128 // ζ^j, j < N
	untwist []complex128 // ζ^{-j}
	slotIdx []int        // slotIdx[j] = (5^j mod 2N − 1)/2
	conjIdx []int        // conjIdx[j] = (2N − 5^j − 1)/2
	wFwd    []complex128 // ω^k for the forward FFT
	wInv    []complex128 // ω^{-k}
}

// New builds an Embedder for ring degree n (a power of two ≥ 4).
func New(n int) *Embedder {
	if n < 4 || n&(n-1) != 0 {
		panic("embed: degree must be a power of two ≥ 4")
	}
	logN := 0
	for 1<<logN < n {
		logN++
	}
	e := &Embedder{
		n:       n,
		logN:    logN,
		slots:   n / 2,
		twist:   make([]complex128, n),
		untwist: make([]complex128, n),
		slotIdx: make([]int, n/2),
		conjIdx: make([]int, n/2),
		wFwd:    make([]complex128, n/2),
		wInv:    make([]complex128, n/2),
	}
	twoN := 2 * n
	for j := 0; j < n; j++ {
		theta := math.Pi * float64(j) / float64(n) // ζ^j = e^{iπj/N}
		e.twist[j] = cmplx.Exp(complex(0, theta))
		e.untwist[j] = cmplx.Exp(complex(0, -theta))
	}
	pow := 1
	for j := 0; j < n/2; j++ {
		e.slotIdx[j] = (pow - 1) / 2
		e.conjIdx[j] = (twoN - pow - 1) / 2
		pow = (pow * 5) % twoN
	}
	for k := 0; k < n/2; k++ {
		theta := 2 * math.Pi * float64(k) / float64(n)
		e.wFwd[k] = cmplx.Exp(complex(0, theta))
		e.wInv[k] = cmplx.Exp(complex(0, -theta))
	}
	return e
}

// Slots returns the number of plaintext slots (N/2).
func (e *Embedder) Slots() int { return e.slots }

// N returns the ring degree.
func (e *Embedder) N() int { return e.n }

// fft performs an in-place iterative radix-2 DIT FFT of length n using the
// given twiddle table (ω^k for forward, ω^{-k} for inverse; the inverse is
// unnormalized).
func (e *Embedder) fft(a []complex128, w []complex128) {
	n := e.n
	// bit-reversal permutation
	for i, j := 0, 0; i < n; i++ {
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
		m := n >> 1
		for ; j&m != 0; m >>= 1 {
			j &^= m
		}
		j |= m
	}
	for s := 1; s <= e.logN; s++ {
		m := 1 << s
		half := m >> 1
		stride := n / m
		for k := 0; k < n; k += m {
			for j := 0; j < half; j++ {
				t := a[k+j+half] * w[j*stride]
				a[k+j+half] = a[k+j] - t
				a[k+j] = a[k+j] + t
			}
		}
	}
}

// Decode maps real polynomial coefficients to the slot vector
// τ(p) = (p(ζ^{5^j}))_j.
func (e *Embedder) Decode(coeffs []float64) []complex128 {
	if len(coeffs) != e.n {
		panic("embed: coefficient length mismatch")
	}
	buf := make([]complex128, e.n)
	for j := 0; j < e.n; j++ {
		buf[j] = complex(coeffs[j], 0) * e.twist[j]
	}
	e.fft(buf, e.wFwd)
	out := make([]complex128, e.slots)
	for j := 0; j < e.slots; j++ {
		out[j] = buf[e.slotIdx[j]]
	}
	return out
}

// Encode maps a slot vector (length ≤ N/2; shorter vectors are zero-padded)
// to the unique real coefficient vector p with τ(p) = values.
func (e *Embedder) Encode(values []complex128) []float64 {
	if len(values) > e.slots {
		panic("embed: too many values")
	}
	buf := make([]complex128, e.n)
	for j := 0; j < e.slots; j++ {
		var v complex128
		if j < len(values) {
			v = values[j]
		}
		buf[e.slotIdx[j]] = v
		buf[e.conjIdx[j]] = cmplx.Conj(v)
	}
	e.fft(buf, e.wInv)
	scale := 1 / float64(e.n)
	out := make([]float64, e.n)
	for j := 0; j < e.n; j++ {
		out[j] = real(buf[j]*e.untwist[j]) * scale
	}
	return out
}

// EncodeReal is Encode for real-valued slots.
func (e *Embedder) EncodeReal(values []float64) []float64 {
	cv := make([]complex128, len(values))
	for i, v := range values {
		cv[i] = complex(v, 0)
	}
	return e.Encode(cv)
}

// DecodeReal is Decode returning only the real parts of the slots.
func (e *Embedder) DecodeReal(coeffs []float64) []float64 {
	cv := e.Decode(coeffs)
	out := make([]float64, len(cv))
	for i, v := range cv {
		out[i] = real(v)
	}
	return out
}
