package keys

import (
	"sync"

	"cnnhe/internal/telemetry"
)

// kTelSet bundles the key-store instruments, registered once on first
// use. All methods are nil-safe: with telemetry off, keysTel returns nil
// and every publish is a no-op.
type kTelSet struct {
	entries        *telemetry.Gauge
	registrations  *telemetry.Counter
	bytes          *telemetry.Counter
	hits           *telemetry.Counter
	misses         *telemetry.Counter
	persists       *telemetry.Counter
	persistedBytes *telemetry.Counter
	reloads        *telemetry.Counter
	reloadRejects  *telemetry.Counter
	compactions    *telemetry.Counter
	evictions      map[string]*telemetry.Counter
	rejections     map[string]*telemetry.Counter
}

var (
	keysTelOnce sync.Once
	keysTelVal  *kTelSet
)

var (
	evictionReasons  = []string{"lru", "ttl"}
	rejectionReasons = []string{"format", "params", "rotations"}
)

func keysTel() *kTelSet {
	if !telemetry.Enabled() {
		return nil
	}
	keysTelOnce.Do(func() {
		r := telemetry.Default()
		t := &kTelSet{
			entries: r.Gauge("cnnhe_keys_entries",
				"evaluation-key bundles currently registered"),
			registrations: r.Counter("cnnhe_keys_registered_total",
				"bundle registrations accepted"),
			bytes: r.Counter("cnnhe_keys_registered_bytes_total",
				"serialized bytes of accepted bundle registrations"),
			hits: r.Counter("cnnhe_keys_lookups_total",
				"bundle lookups by result", telemetry.L("result", "hit")),
			misses: r.Counter("cnnhe_keys_lookups_total",
				"bundle lookups by result", telemetry.L("result", "miss")),
			persists: r.Counter("cnnhe_keys_persisted_total",
				"bundle snapshots written to the durable store"),
			persistedBytes: r.Counter("cnnhe_keys_persisted_bytes_total",
				"serialized bytes written to the durable store"),
			reloads: r.Counter("cnnhe_keys_reloaded_total",
				"bundles recovered from disk on startup"),
			reloadRejects: r.Counter("cnnhe_keys_reload_rejected_total",
				"on-disk bundles quarantined during reload verification"),
			compactions: r.Counter("cnnhe_keys_compacted_total",
				"evicted bundle files removed by compaction"),
			evictions:  map[string]*telemetry.Counter{},
			rejections: map[string]*telemetry.Counter{},
		}
		for _, reason := range evictionReasons {
			t.evictions[reason] = r.Counter("cnnhe_keys_evicted_total",
				"bundles evicted by reason", telemetry.L("reason", reason))
		}
		for _, reason := range rejectionReasons {
			t.rejections[reason] = r.Counter("cnnhe_keys_rejected_total",
				"bundle registrations rejected by reason", telemetry.L("reason", reason))
		}
		keysTelVal = t
	})
	return keysTelVal
}

func (t *kTelSet) registered(size, entries int) {
	if t == nil {
		return
	}
	t.registrations.Inc()
	t.bytes.Add(int64(size))
	t.entries.Set(float64(entries))
}

func (t *kTelSet) rejected(reason string) {
	if t == nil {
		return
	}
	t.rejections[reason].Inc()
}

func (t *kTelSet) evicted(reason string, entries int) {
	if t == nil {
		return
	}
	t.evictions[reason].Inc()
	t.entries.Set(float64(entries))
}

func (t *kTelSet) hit() {
	if t == nil {
		return
	}
	t.hits.Inc()
}

func (t *kTelSet) miss(entries int) {
	if t == nil {
		return
	}
	t.misses.Inc()
	t.entries.Set(float64(entries))
}

func (t *kTelSet) persisted(size int) {
	if t == nil {
		return
	}
	t.persists.Inc()
	t.persistedBytes.Add(int64(size))
}

func (t *kTelSet) reloaded(entries int) {
	if t == nil {
		return
	}
	t.reloads.Inc()
	t.entries.Set(float64(entries))
}

func (t *kTelSet) reloadRejected() {
	if t == nil {
		return
	}
	t.reloadRejects.Inc()
}

func (t *kTelSet) compacted(n int) {
	if t == nil {
		return
	}
	t.compactions.Add(int64(n))
}
