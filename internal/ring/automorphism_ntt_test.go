package ring

import (
	"math/big"
	"math/rand"
	"testing"

	"cnnhe/internal/primes"
)

// TestNTTOutputOrdering verifies the indexing assumption behind the
// NTT-domain automorphism: â[brv(i)] = a(ψ^{2i+1}).
func TestNTTOutputOrdering(t *testing.T) {
	chain, err := primes.BuildChain(4, []int{30}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(16, chain.Moduli, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	sr := r.SubRings[0].(*wordRing)
	rng := rand.New(rand.NewSource(1))
	n := r.N()
	a := make([]uint64, n)
	sr.SampleUniform(rng, a)
	orig := append([]uint64(nil), a...)
	sr.NTT(a)

	// Recover ψ from the table: psiRev[brv(1)] = ψ.
	psi := sr.psiRev[bitrev(1, r.LogN)]
	q := sr.mod
	for i := 0; i < n; i++ {
		// Evaluate a at ψ^{2i+1} naively.
		x := q.Pow(psi, uint64(2*i+1))
		acc := uint64(0)
		pw := uint64(1)
		for j := 0; j < n; j++ {
			acc = q.Add(acc, q.Mul(orig[j], pw))
			pw = q.Mul(pw, x)
		}
		if a[bitrev(i, r.LogN)] != acc {
			t.Fatalf("ordering assumption fails at i=%d", i)
		}
	}
}

// TestPermuteNTTMatchesCoefficientAutomorphism checks that the NTT-domain
// permutation equals INTT → coefficient automorphism → NTT, on word and
// wide limbs.
func TestPermuteNTTMatchesCoefficientAutomorphism(t *testing.T) {
	chain, err := primes.BuildChain(6, []int{30, 70}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRing(64, chain.Moduli, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	limbs := r.Limbs(1, false)
	p := r.NewPoly(1)
	r.SampleUniform(rng, limbs, p)

	for _, rot := range []int{1, 5, -3} {
		galEl := GaloisElementForRotation(r.LogN, rot)
		perm := AutomorphismNTTIndex(r.LogN, galEl)

		// Reference: coefficient-domain automorphism.
		ref := r.NewPoly(1)
		tmp := r.NewPoly(1)
		r.Copy(limbs, p, tmp)
		r.INTT(limbs, tmp)
		r.Automorphism(limbs, tmp, galEl, ref)
		r.NTT(limbs, ref)

		got := r.NewPoly(1)
		r.PermuteNTT(limbs, p, perm, got)
		if !r.Equal(limbs, got, ref) {
			t.Fatalf("NTT permutation mismatch for rotation %d", rot)
		}
	}
	// Conjugation too.
	galEl := GaloisElementConjugate(r.LogN)
	perm := AutomorphismNTTIndex(r.LogN, galEl)
	ref := r.NewPoly(1)
	tmp := r.NewPoly(1)
	r.Copy(limbs, p, tmp)
	r.INTT(limbs, tmp)
	r.Automorphism(limbs, tmp, galEl, ref)
	r.NTT(limbs, ref)
	got := r.NewPoly(1)
	r.PermuteNTT(limbs, p, perm, got)
	if !r.Equal(limbs, got, ref) {
		t.Fatal("NTT permutation mismatch for conjugation")
	}
	_ = big.NewInt
}
