// Package keys is the server side of the client-held-key protocol: a
// bounded store of per-client evaluation-key bundles (public key,
// relinearization key, rotation keys) addressed by content fingerprint.
//
// The store never sees a secret key — bundles are validated against the
// wire format's structural checks, bound to the server's exact CKKS
// instantiation through the params digest, and checked for coverage of
// the loaded plan's rotation set before they are accepted. Entries are
// evicted least-recently-used beyond a capacity bound and lazily expired
// after a TTL, since each bundle pins megabytes of switching-key
// material.
//
// With Config.Dir set the store is durable: accepted registrations are
// snapshotted to disk via atomic renames, a restart replays and
// re-verifies the directory (so a worker crash loses no client state),
// and a background compactor removes the files of evicted entries.
package keys

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ring"
)

// Typed registration/lookup failures; match with errors.Is. Decode
// failures surface as the ckks typed errors (ErrFormat/ErrChecksum).
var (
	// ErrNotFound: no bundle under that fingerprint (never registered,
	// evicted, or expired).
	ErrNotFound = errors.New("keys: unknown key fingerprint")
	// ErrParamsMismatch: the bundle was generated under a different CKKS
	// instantiation than this server runs.
	ErrParamsMismatch = errors.New("keys: parameter mismatch")
	// ErrMissingRotations: the bundle's rotation-key set does not cover
	// the loaded plan's required rotations.
	ErrMissingRotations = errors.New("keys: rotation keys missing for plan")
)

// Config sizes and binds a Store.
type Config struct {
	// Ctx is the server's CKKS context; registered bundles must carry its
	// exact params digest.
	Ctx *ckks.Context
	// RequiredRotations is the loaded plan's rotation set (slot shifts;
	// zero entries ignored). Every registered bundle must hold a
	// switching key for each.
	RequiredRotations []int
	// MaxEntries bounds the store; the least-recently-used entry is
	// evicted beyond it. 0 selects DefaultMaxEntries.
	MaxEntries int
	// TTL expires entries that long after their last use. 0 disables
	// expiry.
	TTL time.Duration
	// Dir, when non-empty, makes the store durable: every accepted
	// registration is snapshotted to <Dir>/<fingerprint>.bundle via an
	// atomic rename, and NewStore replays (and re-verifies) the
	// directory so a worker restart recovers all client state.
	Dir string
	// CompactInterval is the background compactor's sweep period for
	// bundle files whose entries were evicted or expired. 0 selects
	// DefaultCompactInterval; negative disables the background loop
	// (Compact can still be called directly). Ignored when Dir is empty.
	CompactInterval time.Duration
	// Clock overrides time.Now for tests.
	Clock func() time.Time
}

// DefaultMaxEntries bounds the store when Config.MaxEntries is zero:
// switching-key bundles run to megabytes each, so the default is
// deliberately small.
const DefaultMaxEntries = 16

// Entry is one registered client's evaluation-key material plus the
// consumer's cached evaluation state.
type Entry struct {
	// Fingerprint is the content address: hex(SHA-256(bundle bytes)).
	Fingerprint string
	// Bundle is the decoded key material.
	Bundle *ckks.KeyBundle
	// Size is the serialized bundle's byte count.
	Size int
	// RegisteredAt is when the bundle was first registered.
	RegisteredAt time.Time

	// Mu serializes evaluation under this client's keys (the evaluator
	// and any guard state attached below are not safe for concurrent
	// runs).
	Mu sync.Mutex
	// Eval is consumer-attached evaluation state (engine + prepared
	// graph), built lazily on first use and dropped with the entry.
	Eval any
}

// Store is a bounded, fingerprint-addressed bundle store. Safe for
// concurrent use.
type Store struct {
	cfg     Config
	galEls  []uint64 // required Galois elements, sorted
	mu      sync.Mutex
	entries map[string]*list.Element // fingerprint → lru element holding *Entry
	lru     *list.List               // front = most recently used
	lastUse map[string]time.Time

	stop      chan struct{} // closes the background compactor (durable stores)
	closeOnce sync.Once
}

// NewStore builds a store bound to the server's context and plan.
func NewStore(cfg Config) (*Store, error) {
	if cfg.Ctx == nil {
		return nil, fmt.Errorf("keys: Config.Ctx is required")
	}
	if cfg.MaxEntries == 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MaxEntries < 0 {
		return nil, fmt.Errorf("keys: MaxEntries %d must be positive", cfg.MaxEntries)
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	logN := cfg.Ctx.Params.LogN
	seen := map[uint64]bool{}
	var els []uint64
	for _, rot := range cfg.RequiredRotations {
		if rot == 0 {
			continue
		}
		g := ring.GaloisElementForRotation(logN, rot)
		if !seen[g] {
			seen[g] = true
			els = append(els, g)
		}
	}
	sort.Slice(els, func(i, j int) bool { return els[i] < els[j] })
	s := &Store{
		cfg:     cfg,
		galEls:  els,
		entries: map[string]*list.Element{},
		lru:     list.New(),
		lastUse: map[string]time.Time{},
	}
	if cfg.Dir != "" {
		if err := s.loadDir(); err != nil {
			return nil, err
		}
		if cfg.CompactInterval >= 0 {
			interval := cfg.CompactInterval
			if interval == 0 {
				interval = DefaultCompactInterval
			}
			s.stop = make(chan struct{})
			go s.compactLoop(interval)
		}
	}
	return s, nil
}

// RequiredGaloisElements returns the plan's rotation requirement as
// sorted Galois elements (what /v1/info advertises alongside the raw
// rotation list).
func (s *Store) RequiredGaloisElements() []uint64 {
	out := make([]uint64, len(s.galEls))
	copy(out, s.galEls)
	return out
}

// Register decodes, validates, and stores a serialized bundle, returning
// its entry. Registration is idempotent: re-registering the same bytes
// returns the existing entry (and refreshes its recency). Decode errors
// are ckks.ErrFormat/ErrChecksum; compatibility errors are
// ErrParamsMismatch/ErrMissingRotations.
func (s *Store) Register(data []byte) (*Entry, error) {
	fp := ckks.BundleFingerprint(data)

	s.mu.Lock()
	if el, ok := s.entries[fp]; ok && !s.expiredLocked(fp) {
		s.touchLocked(fp, el)
		e := el.Value.(*Entry)
		s.mu.Unlock()
		keysTel().hit()
		return e, nil
	}
	s.mu.Unlock()

	bundle, err := s.decodeValidate(data)
	if err != nil {
		return nil, err
	}

	e := &Entry{
		Fingerprint:  fp,
		Bundle:       bundle,
		Size:         len(data),
		RegisteredAt: s.cfg.Clock(),
	}
	s.mu.Lock()
	// Lost a race with a concurrent identical registration: keep theirs.
	if el, ok := s.entries[fp]; ok && !s.expiredLocked(fp) {
		s.touchLocked(fp, el)
		prior := el.Value.(*Entry)
		s.mu.Unlock()
		return prior, nil
	}
	s.removeLocked(fp) // drop an expired shell if one remains
	el := s.lru.PushFront(e)
	s.entries[fp] = el
	s.lastUse[fp] = s.cfg.Clock()
	for s.lru.Len() > s.cfg.MaxEntries {
		s.evictLocked(s.lru.Back(), "lru")
	}
	n := s.lru.Len()
	s.mu.Unlock()
	// Snapshot to disk before acking: a client told "registered" must
	// survive a crash. The entry is already in the map, so the compactor
	// cannot race the file away; on write failure the entry is rolled
	// back and the client retries.
	if s.cfg.Dir != "" {
		if perr := s.persist(fp, data); perr != nil {
			s.mu.Lock()
			s.removeLocked(fp)
			s.mu.Unlock()
			return nil, fmt.Errorf("keys: persisting bundle: %w", perr)
		}
	}
	keysTel().registered(len(data), n)
	return e, nil
}

// decodeValidate runs the full acceptance check on serialized bundle
// bytes: frame decode (version + CRC), params-digest binding, and
// rotation coverage for the loaded plan. Shared by Register and the
// durable reload so a restart re-verifies exactly what registration
// verified.
func (s *Store) decodeValidate(data []byte) (*ckks.KeyBundle, error) {
	bundle, err := s.cfg.Ctx.ReadKeyBundle(bytes.NewReader(data))
	if err != nil {
		keysTel().rejected("format")
		return nil, err
	}
	if bundle.ParamsDigest != s.cfg.Ctx.Params.ParamsDigest() {
		keysTel().rejected("params")
		return nil, fmt.Errorf("%w: bundle params digest %x, server %s",
			ErrParamsMismatch, bundle.ParamsDigest[:8], s.cfg.Ctx.Params.Fingerprint()[:16])
	}
	for _, g := range s.galEls {
		if bundle.RTK == nil || bundle.RTK.Keys[g] == nil {
			keysTel().rejected("rotations")
			return nil, fmt.Errorf("%w: no switching key for Galois element %d (plan needs %d rotations)",
				ErrMissingRotations, g, len(s.galEls))
		}
	}
	return bundle, nil
}

// Get returns the entry under fp, refreshing its recency. ErrNotFound
// covers never-registered, evicted, and TTL-expired fingerprints alike.
func (s *Store) Get(fp string) (*Entry, error) {
	s.mu.Lock()
	el, ok := s.entries[fp]
	if ok && s.expiredLocked(fp) {
		s.evictLocked(el, "ttl")
		ok = false
	}
	if !ok {
		n := s.lru.Len()
		s.mu.Unlock()
		keysTel().miss(n)
		return nil, fmt.Errorf("%w: %s", ErrNotFound, fp)
	}
	s.touchLocked(fp, el)
	e := el.Value.(*Entry)
	s.mu.Unlock()
	keysTel().hit()
	return e, nil
}

// Len reports the live entry count (expired entries that have not been
// touched still count until lazily collected).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lru.Len()
}

func (s *Store) expiredLocked(fp string) bool {
	if s.cfg.TTL <= 0 {
		return false
	}
	last, ok := s.lastUse[fp]
	return ok && s.cfg.Clock().Sub(last) > s.cfg.TTL
}

func (s *Store) touchLocked(fp string, el *list.Element) {
	s.lru.MoveToFront(el)
	s.lastUse[fp] = s.cfg.Clock()
}

func (s *Store) removeLocked(fp string) {
	if el, ok := s.entries[fp]; ok {
		s.lru.Remove(el)
		delete(s.entries, fp)
		delete(s.lastUse, fp)
	}
}

func (s *Store) evictLocked(el *list.Element, reason string) {
	e := el.Value.(*Entry)
	s.lru.Remove(el)
	delete(s.entries, e.Fingerprint)
	delete(s.lastUse, e.Fingerprint)
	keysTel().evicted(reason, s.lru.Len())
}
