package henn

import (
	"math/big"
	"runtime"
	"sync"

	"cnnhe/internal/ckks"
)

// RNSEvalEngine is the CKKS-RNS backend restricted to evaluation-key
// material: it can run a lowered op graph over ciphertexts that arrive
// already encrypted, and nothing else. The struct deliberately has no
// secret-key, decryptor, or encryptor field — the server-side engine for
// client-held-key inference is private by construction, not by
// discipline. EncryptVec and DecryptVec exist only to satisfy the Engine
// interface and panic if reached; the executor's RunEncrypted path never
// calls them.
type RNSEvalEngine struct {
	Ctx *ckks.Context
	Enc *ckks.Encoder
	Ev  *ckks.Evaluator

	mu      sync.Mutex
	ptCache map[ptCacheKey]*ckks.Plaintext
}

// NewRNSEvalEngine builds an evaluation-only engine from a client's
// registered key material. rtk may be nil when the plan needs no
// rotations.
func NewRNSEvalEngine(ctx *ckks.Context, rlk *ckks.RelinearizationKey, rtk *ckks.RotationKeySet) *RNSEvalEngine {
	return &RNSEvalEngine{
		Ctx:     ctx,
		Enc:     ckks.NewEncoder(ctx),
		Ev:      ckks.NewEvaluator(ctx, rlk, rtk),
		ptCache: map[ptCacheKey]*ckks.Plaintext{},
	}
}

// NewRNSEngineFromKeys builds a full engine from explicit key material
// instead of generating its own — the client-side reference engine: the
// e2e parity tests run the plaintext-path inference on exactly the keys
// the client registered with the server. encSeed seeds the encryptor's
// randomness so a wire round trip can be replayed bit-for-bit.
func NewRNSEngineFromKeys(ctx *ckks.Context, sk *ckks.SecretKey, pk *ckks.PublicKey,
	rlk *ckks.RelinearizationKey, rtk *ckks.RotationKeySet, encSeed int64) *RNSEngine {
	return &RNSEngine{
		Ctx:     ctx,
		Enc:     ckks.NewEncoder(ctx),
		Ept:     ckks.NewEncryptor(ctx, pk, encSeed),
		Dec:     ckks.NewDecryptor(ctx, sk),
		Ev:      ckks.NewEvaluator(ctx, rlk, rtk),
		SK:      sk,
		ptCache: map[ptCacheKey]*ckks.Plaintext{},
	}
}

func (e *RNSEvalEngine) cachedPlaintext(key string, level int, scale float64, v []float64) *ckks.Plaintext {
	k := ptCacheKey{key, level, scale}
	e.mu.Lock()
	pt, ok := e.ptCache[k]
	e.mu.Unlock()
	if ok {
		return pt
	}
	pt = e.Enc.Encode(v, level, scale)
	e.mu.Lock()
	e.ptCache[k] = pt
	e.mu.Unlock()
	return pt
}

// MulPlainVecCached implements Engine.
func (e *RNSEvalEngine) MulPlainVecCached(ct Ct, key string, v []float64, scale float64) Ct {
	c := ct.(*ckks.Ciphertext)
	return e.Ev.MulPlain(c, e.cachedPlaintext(key, c.Level, scale, v))
}

// AddPlainVecCached implements Engine.
func (e *RNSEvalEngine) AddPlainVecCached(ct Ct, key string, v []float64) Ct {
	c := ct.(*ckks.Ciphertext)
	return e.Ev.AddPlain(c, e.cachedPlaintext(key, c.Level, c.Scale, v))
}

// Name implements Engine.
func (e *RNSEvalEngine) Name() string { return "ckks-rns-eval" }

// Slots implements Engine.
func (e *RNSEvalEngine) Slots() int { return e.Ctx.Params.Slots() }

// MaxLevel implements Engine.
func (e *RNSEvalEngine) MaxLevel() int { return e.Ctx.Params.MaxLevel() }

// Scale implements Engine.
func (e *RNSEvalEngine) Scale() float64 { return e.Ctx.Params.Scale }

// QiFloat implements Engine.
func (e *RNSEvalEngine) QiFloat(level int) float64 { return e.Ctx.Params.QiFloat(level) }

// SpecialPFloat returns the key-switching modulus P as a float64 (used by
// the guard's key-switch noise bound).
func (e *RNSEvalEngine) SpecialPFloat() float64 {
	f, _ := new(big.Float).SetInt(e.Ctx.Params.Chain.P()).Float64()
	return f
}

// EncryptVec implements Engine by panicking: an evaluation-only engine
// holds no encryption key path on purpose. Inputs must arrive as
// ciphertexts (exec.Prepared.RunEncrypted).
func (e *RNSEvalEngine) EncryptVec([]float64) Ct {
	panic("henn: RNSEvalEngine cannot encrypt: evaluation-only engine")
}

// DecryptVec implements Engine by panicking: there is no secret key
// here. Results must be returned as ciphertexts for the key holder to
// decrypt.
func (e *RNSEvalEngine) DecryptVec(Ct) []float64 {
	panic("henn: RNSEvalEngine cannot decrypt: no secret key")
}

// Level implements Engine.
func (e *RNSEvalEngine) Level(ct Ct) int { return ct.(*ckks.Ciphertext).Level }

// ScaleOf implements Engine.
func (e *RNSEvalEngine) ScaleOf(ct Ct) float64 { return ct.(*ckks.Ciphertext).Scale }

// Add implements Engine.
func (e *RNSEvalEngine) Add(a, b Ct) Ct {
	return e.Ev.Add(a.(*ckks.Ciphertext), b.(*ckks.Ciphertext))
}

// AddPlainVec implements Engine.
func (e *RNSEvalEngine) AddPlainVec(ct Ct, v []float64) Ct {
	c := ct.(*ckks.Ciphertext)
	pt := e.Enc.Encode(v, c.Level, c.Scale)
	return e.Ev.AddPlain(c, pt)
}

// MulPlainVecAtScale implements Engine.
func (e *RNSEvalEngine) MulPlainVecAtScale(ct Ct, v []float64, scale float64) Ct {
	c := ct.(*ckks.Ciphertext)
	pt := e.Enc.Encode(v, c.Level, scale)
	return e.Ev.MulPlain(c, pt)
}

// MulRelin implements Engine.
func (e *RNSEvalEngine) MulRelin(a, b Ct) Ct {
	return e.Ev.Mul(a.(*ckks.Ciphertext), b.(*ckks.Ciphertext))
}

// MulInt implements Engine.
func (e *RNSEvalEngine) MulInt(ct Ct, n int64) Ct {
	return e.Ev.MulInt(ct.(*ckks.Ciphertext), n)
}

// Rescale implements Engine.
func (e *RNSEvalEngine) Rescale(ct Ct) Ct { return e.Ev.Rescale(ct.(*ckks.Ciphertext)) }

// DropLevel implements Engine.
func (e *RNSEvalEngine) DropLevel(ct Ct, n int) Ct {
	return e.Ev.DropLevel(ct.(*ckks.Ciphertext), n)
}

// Rotate implements Engine.
func (e *RNSEvalEngine) Rotate(ct Ct, k int) Ct {
	if k == 0 {
		return ct
	}
	return e.Ev.Rotate(ct.(*ckks.Ciphertext), k)
}

// RotateMany implements Engine using hoisted rotations.
func (e *RNSEvalEngine) RotateMany(ct Ct, ks []int) map[int]Ct {
	c := ct.(*ckks.Ciphertext)
	outs := e.Ev.RotateHoisted(c, nonZero(ks))
	m := make(map[int]Ct, len(ks))
	for _, k := range ks {
		if k == 0 {
			m[0] = ct
			continue
		}
		m[k] = outs[k]
	}
	return m
}

// EncodeVecsAt implements Engine: the ahead-of-time encoding pass.
func (e *RNSEvalEngine) EncodeVecsAt(specs []PlainSpec) []Pt {
	es := make([]ckks.EncodeSpec, len(specs))
	for i, s := range specs {
		es[i] = ckks.EncodeSpec{Values: s.Values, Level: s.Level, Scale: s.Scale}
	}
	pts := e.Enc.EncodeBatch(es, runtime.NumCPU())
	out := make([]Pt, len(pts))
	for i, pt := range pts {
		out[i] = pt
	}
	return out
}

// MulPlainPt implements Engine.
func (e *RNSEvalEngine) MulPlainPt(ct Ct, pt Pt) Ct {
	return e.Ev.MulPlain(ct.(*ckks.Ciphertext), pt.(*ckks.Plaintext))
}

// AddPlainPt implements Engine.
func (e *RNSEvalEngine) AddPlainPt(ct Ct, pt Pt) Ct {
	return e.Ev.AddPlain(ct.(*ckks.Ciphertext), pt.(*ckks.Plaintext))
}

var _ Engine = (*RNSEvalEngine)(nil)
