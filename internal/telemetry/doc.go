// Package telemetry is the repository's zero-dependency observability
// subsystem: a metrics registry (counters, gauges, fixed-bucket latency
// histograms) renderable in Prometheus text format, span-based run
// tracing exportable as Chrome trace-event JSON, and a localhost HTTP
// server exposing /metrics, /debug/vars (expvar) and /debug/pprof.
//
// Two independent switches control cost:
//
//   - Registry metrics update only while Enabled() reports true
//     (Serve flips it on; SetEnabled does so explicitly). Instrumented
//     hot paths check the flag once per run and skip all metric work
//     when it is off, so a disabled build pays one predictable branch.
//   - Span tracing is per-run opt-in: attach a *RunRecorder to the
//     context with WithRecorder and the executor records one span per
//     executed op (queue wait separated from execution, per worker).
//     Without a recorder in the context, tracing costs a nil check.
//
// Everything is safe for concurrent use, and every exported method is
// nil-receiver-safe so instrumentation sites never need nil guards.
package telemetry
