package client

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"cnnhe/internal/ckks"
	"cnnhe/internal/henn/shard"
)

// KeySet is a client's complete key material: the secret key (which
// never leaves the client) plus the evaluation-key bundle registered
// with the server.
type KeySet struct {
	Params ckks.Parameters
	SK     *ckks.SecretKey
	PK     *ckks.PublicKey
	RLK    *ckks.RelinearizationKey
	RTK    *ckks.RotationKeySet

	ctx         *ckks.Context
	bundleBytes []byte
	fingerprint string
}

// genConfig tunes key generation.
type genConfig struct {
	seed   int64
	seeded bool
}

// GenOption configures GenerateKeys.
type GenOption func(*genConfig)

// WithSeed makes key generation deterministic — for reproducible
// benchmarks and parity tests ONLY. Production keys must use the
// default crypto/rand path.
func WithSeed(seed int64) GenOption {
	return func(c *genConfig) { c.seed, c.seeded = seed, true }
}

// GenerateKeys builds a fresh key set for the server described by info:
// parameters reconstructed (and fingerprint-verified) from the manifest,
// rotation keys covering exactly the plan's advertised rotation set.
// Randomness comes from crypto/rand unless WithSeed overrides it.
func GenerateKeys(info *InfoResponse, opts ...GenOption) (*KeySet, error) {
	var cfg genConfig
	for _, o := range opts {
		o(&cfg)
	}
	p, err := ParamsFromInfo(info.Params)
	if err != nil {
		return nil, err
	}
	ctx, err := ckks.NewContext(p)
	if err != nil {
		return nil, fmt.Errorf("client: building CKKS context: %w", err)
	}
	var kg *ckks.KeyGenerator
	if cfg.seeded {
		kg = ckks.NewKeyGenerator(ctx, cfg.seed)
	} else {
		kg = ckks.NewSecureKeyGenerator(ctx)
	}
	sk := kg.GenSecretKey()
	ks := &KeySet{
		Params: p,
		SK:     sk,
		PK:     kg.GenPublicKey(sk),
		RLK:    kg.GenRelinearizationKey(sk),
		RTK:    kg.GenRotationKeys(sk, info.Rotations, false),
		ctx:    ctx,
	}
	return ks, nil
}

// Context returns the key set's CKKS context.
func (ks *KeySet) Context() *ckks.Context { return ks.ctx }

// Bundle returns the serialized evaluation-key bundle (public,
// relinearization and rotation keys — no secret material). The bytes are
// computed once and cached; the fingerprint is their content address.
func (ks *KeySet) Bundle() ([]byte, error) {
	if ks.bundleBytes != nil {
		return ks.bundleBytes, nil
	}
	var buf bytes.Buffer
	err := ks.ctx.WriteKeyBundle(&buf, &ckks.KeyBundle{
		ParamsDigest: ks.Params.ParamsDigest(),
		PK:           ks.PK,
		RLK:          ks.RLK,
		RTK:          ks.RTK,
	})
	if err != nil {
		return nil, err
	}
	ks.bundleBytes = buf.Bytes()
	ks.fingerprint = ckks.BundleFingerprint(ks.bundleBytes)
	return ks.bundleBytes, nil
}

// Fingerprint returns the bundle's content address.
func (ks *KeySet) Fingerprint() (string, error) {
	if _, err := ks.Bundle(); err != nil {
		return "", err
	}
	return ks.fingerprint, nil
}

// EncryptImage encodes and public-key-encrypts an image exactly like the
// server's plaintext path does (encode at max level and default scale),
// so an encrypted round trip is comparable — bit-for-bit under seeded
// randomness — with a local plaintext-path inference. encSeed nil draws
// encryption randomness from crypto/rand; non-nil seeds it (parity tests).
func (ks *KeySet) EncryptImage(image []float64, encSeed *int64) (*ckks.Ciphertext, error) {
	if len(image) > ks.Params.Slots() {
		return nil, fmt.Errorf("client: image length %d exceeds %d slots", len(image), ks.Params.Slots())
	}
	var ept *ckks.Encryptor
	if encSeed != nil {
		ept = ckks.NewEncryptor(ks.ctx, ks.PK, *encSeed)
	} else {
		ept = ckks.NewSecureEncryptor(ks.ctx, ks.PK)
	}
	enc := ckks.NewEncoder(ks.ctx)
	pt := enc.Encode(image, ks.Params.MaxLevel(), ks.Params.Scale)
	return ept.Encrypt(pt), nil
}

// EncryptImageShards splits an image by the server's advertised shard
// manifest and encrypts each shard part in order. One encryptor instance
// produces all shards, so a seeded run is reproducible end to end.
func (ks *KeySet) EncryptImageShards(man shard.Manifest, image []float64, encSeed *int64) ([]*ckks.Ciphertext, error) {
	if man.Slots != ks.Params.Slots() {
		return nil, fmt.Errorf("client: manifest slots %d != key slots %d", man.Slots, ks.Params.Slots())
	}
	parts, err := man.Split(image)
	if err != nil {
		return nil, fmt.Errorf("client: splitting image: %w", err)
	}
	var ept *ckks.Encryptor
	if encSeed != nil {
		ept = ckks.NewEncryptor(ks.ctx, ks.PK, *encSeed)
	} else {
		ept = ckks.NewSecureEncryptor(ks.ctx, ks.PK)
	}
	enc := ckks.NewEncoder(ks.ctx)
	cts := make([]*ckks.Ciphertext, len(parts))
	for i, part := range parts {
		pt := enc.Encode(part, ks.Params.MaxLevel(), ks.Params.Scale)
		cts[i] = ept.Encrypt(pt)
	}
	return cts, nil
}

// DecryptLogits decrypts an encrypted-logits ciphertext and returns the
// first n slots.
func (ks *KeySet) DecryptLogits(ct *ckks.Ciphertext, n int) ([]float64, error) {
	if n < 0 || n > ks.Params.Slots() {
		return nil, fmt.Errorf("client: logit count %d out of range", n)
	}
	dec := ckks.NewDecryptor(ks.ctx, ks.SK)
	vals := ckks.NewEncoder(ks.ctx).Decode(dec.DecryptNew(ct))
	return vals[:n], nil
}

// On-disk layout of a saved key set. The secret key file is written
// 0600; the directory is the unit of key management.
const (
	paramsFile = "params.json"
	secretFile = "secret.key"
	bundleFile = "bundle.bin"
)

// Save writes the key set under dir: the params descriptor, the secret
// key (mode 0600), and the evaluation bundle as registered.
func (ks *KeySet) Save(dir string) error {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return err
	}
	pj, err := json.MarshalIndent(ParamsInfoOf(ks.Params), "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, paramsFile), pj, 0o644); err != nil {
		return err
	}
	var skBuf bytes.Buffer
	if err := ks.ctx.WriteSecretKey(&skBuf, ks.SK); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, secretFile), skBuf.Bytes(), 0o600); err != nil {
		return err
	}
	bundle, err := ks.Bundle()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, bundleFile), bundle, 0o644)
}

// LoadKeySet reads a key set saved by Save.
func LoadKeySet(dir string) (*KeySet, error) {
	pj, err := os.ReadFile(filepath.Join(dir, paramsFile))
	if err != nil {
		return nil, err
	}
	var pi ParamsInfo
	if err := json.Unmarshal(pj, &pi); err != nil {
		return nil, fmt.Errorf("client: %s: %w", paramsFile, err)
	}
	p, err := ParamsFromInfo(pi)
	if err != nil {
		return nil, err
	}
	ctx, err := ckks.NewContext(p)
	if err != nil {
		return nil, err
	}
	skRaw, err := os.ReadFile(filepath.Join(dir, secretFile))
	if err != nil {
		return nil, err
	}
	sk, err := ctx.ReadSecretKey(bytes.NewReader(skRaw))
	if err != nil {
		return nil, fmt.Errorf("client: %s: %w", secretFile, err)
	}
	bundleRaw, err := os.ReadFile(filepath.Join(dir, bundleFile))
	if err != nil {
		return nil, err
	}
	bundle, err := ctx.ReadKeyBundle(bytes.NewReader(bundleRaw))
	if err != nil {
		return nil, fmt.Errorf("client: %s: %w", bundleFile, err)
	}
	return &KeySet{
		Params:      p,
		SK:          sk,
		PK:          bundle.PK,
		RLK:         bundle.RLK,
		RTK:         bundle.RTK,
		ctx:         ctx,
		bundleBytes: bundleRaw,
		fingerprint: ckks.BundleFingerprint(bundleRaw),
	}, nil
}
