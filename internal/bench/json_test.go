package bench

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"cnnhe/internal/henn"
)

func TestJSONRowsNaNAccuracy(t *testing.T) {
	rows := JSONRows("IV", []HEResult{
		{Model: "CNN1", Backend: "CKKS-RNS", Chain: 5, Acc: math.NaN(), TrainAcc: math.NaN()},
		{Model: "CNN1", Backend: "CKKS-RNS", Chain: 13, Acc: 0.95, TrainAcc: 0.99},
	})
	if rows[0].AccPct != nil || rows[0].TrainAccPct != nil {
		t.Fatalf("NaN accuracy must map to nil, got %v / %v", rows[0].AccPct, rows[0].TrainAccPct)
	}
	if rows[1].AccPct == nil || *rows[1].AccPct != 95 {
		t.Fatalf("accuracy 0.95 should become 95%%, got %v", rows[1].AccPct)
	}
	if rows[0].Table != "IV" || rows[0].Chain != 5 {
		t.Fatalf("row metadata lost: %+v", rows[0])
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	lat := henn.LatencyStats{Min: 10 * time.Millisecond, Max: 30 * time.Millisecond, Avg: 20 * time.Millisecond, N: 3}
	rows := JSONRows("III", []HEResult{
		{Model: "CNN2", Backend: "CKKS (big)", Chain: 13, Lat: lat, Acc: 0.9, TrainAcc: math.NaN()},
	})
	path := filepath.Join(t.TempDir(), "bench.json")
	cfg := DefaultConfig()
	ts := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	if err := WriteJSON(path, cfg, ts, rows); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep JSONReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("written report is not valid JSON: %v", err)
	}
	if rep.Timestamp != "2026-08-05T12:00:00Z" {
		t.Fatalf("timestamp %q", rep.Timestamp)
	}
	if rep.LogN != cfg.LogN || rep.Seed != cfg.Seed {
		t.Fatalf("config fields lost: %+v", rep)
	}
	if len(rep.Rows) != 1 {
		t.Fatalf("want 1 row, got %d", len(rep.Rows))
	}
	r := rep.Rows[0]
	if r.MeanMS != 20 || r.MinMS != 10 || r.MaxMS != 30 || r.N != 3 {
		t.Fatalf("latency fields wrong: %+v", r)
	}
	if r.AccPct == nil || *r.AccPct != 90 {
		t.Fatalf("accuracy lost: %+v", r)
	}
	if r.TrainAccPct != nil {
		t.Fatalf("NaN train accuracy should be omitted, got %v", *r.TrainAccPct)
	}
}
