package henn

import (
	"math"
	"strings"
	"testing"
	"time"
)

// TestReportString pins the human-readable report layout: one header
// line, one row per stage, noise budget shown only when tracked, and a
// FAILED marker naming the aborted stage.
func TestReportString(t *testing.T) {
	r := &Report{
		Engine:  "CKKS-RNS",
		Encrypt: 12 * time.Millisecond,
		Eval:    340 * time.Millisecond,
		Decrypt: 3 * time.Millisecond,
		Stages: []StageReport{
			{Stage: "conv1", Duration: 120 * time.Millisecond, Level: 11, Scale: math.Exp2(26), NoiseBits: 19.25},
			{Stage: "act1 (SLAF)", Duration: 80 * time.Millisecond, Level: 9, Scale: math.Exp2(26), NoiseBits: math.NaN()},
		},
	}
	s := r.String()

	if !strings.Contains(s, "engine CKKS-RNS: encrypt 12ms, eval 340ms, decrypt 3ms") {
		t.Errorf("header line missing or malformed:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header + 2 stage rows, got %d lines:\n%s", len(lines), s)
	}
	if !strings.Contains(lines[1], "conv1") || !strings.Contains(lines[1], "level 11") {
		t.Errorf("conv1 row malformed: %q", lines[1])
	}
	if !strings.Contains(lines[1], "noise budget 19.2 bits") {
		t.Errorf("tracked noise missing from conv1 row: %q", lines[1])
	}
	if strings.Contains(lines[2], "noise budget") {
		t.Errorf("NaN noise must be omitted, got: %q", lines[2])
	}
	if strings.Contains(s, "FAILED") {
		t.Errorf("successful report must not carry a FAILED marker:\n%s", s)
	}
}

// TestReportStringFailed checks the failure marker names the stage.
func TestReportStringFailed(t *testing.T) {
	r := &Report{
		Engine:      "CKKS-RNS",
		Stages:      []StageReport{{Stage: "conv1", NoiseBits: math.NaN()}},
		FailedStage: "act1 (SLAF)",
	}
	s := r.String()
	if !strings.Contains(s, "FAILED at act1 (SLAF)") {
		t.Errorf("failure marker missing:\n%s", s)
	}
	if !strings.HasSuffix(s, "\n") {
		t.Errorf("report must end with a newline:\n%q", s)
	}
}

// TestReportStringEmpty: a zero-value report still renders a header and
// nothing else — no panic on nil Stages.
func TestReportStringEmpty(t *testing.T) {
	s := (&Report{Engine: "x"}).String()
	if got := strings.Count(s, "\n"); got != 1 {
		t.Errorf("empty report should be a single line, got %d:\n%q", got, s)
	}
}
