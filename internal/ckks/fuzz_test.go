package ckks

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
)

// Fuzz targets for every wire-format reader: arbitrary input must yield
// a typed error (ErrFormat/ErrChecksum) or a clean EOF pass-through —
// never a panic, and never an unclassified error.

var fuzzCtxOnce = sync.OnceValues(func() (*Context, error) {
	p, err := TinyParameters()
	if err != nil {
		return nil, err
	}
	return NewContext(p)
})

func fuzzCtx(f *testing.F) *Context {
	f.Helper()
	ctx, err := fuzzCtxOnce()
	if err != nil {
		f.Fatal(err)
	}
	return ctx
}

// checkDecodeErr asserts the reader's error contract on arbitrary input.
func checkDecodeErr(t *testing.T, err error) {
	t.Helper()
	if err == nil {
		return
	}
	if errors.Is(err, ErrFormat) || errors.Is(err, ErrChecksum) || err == io.EOF {
		return
	}
	t.Fatalf("untyped decode error: %v", err)
}

// fuzzSeeds builds one golden frame per reader from a deterministic key
// set, plus a few structurally hostile prefixes.
func fuzzSeeds(f *testing.F, write func(ctx *Context, w io.Writer) error) {
	f.Helper()
	ctx := fuzzCtx(f)
	var buf bytes.Buffer
	if err := write(ctx, &buf); err != nil {
		f.Fatal(err)
	}
	golden := buf.Bytes()
	f.Add(golden)
	f.Add(golden[:len(golden)-1]) // truncated checksum
	f.Add(golden[:len(golden)/2]) // truncated payload
	f.Add([]byte{})
	f.Add([]byte{golden[0]})                    // tag only
	f.Add([]byte{golden[0], formatVersion + 1}) // bad version
	flipped := append([]byte(nil), golden...)
	flipped[len(flipped)/2] ^= 0x01
	f.Add(flipped)
}

func FuzzReadCiphertext(f *testing.F) {
	fuzzSeeds(f, func(ctx *Context, w io.Writer) error {
		kg := NewKeyGenerator(ctx, 1)
		sk := kg.GenSecretKey()
		pk := kg.GenPublicKey(sk)
		enc := NewEncoder(ctx)
		ept := NewEncryptor(ctx, pk, 2)
		ct := ept.Encrypt(enc.Encode([]float64{1, -2, 3}, ctx.Params.MaxLevel(), ctx.Params.Scale))
		return ctx.WriteCiphertext(w, ct)
	})
	ctx := fuzzCtx(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, err := ctx.ReadCiphertext(bytes.NewReader(data))
		checkDecodeErr(t, err)
	})
}

func FuzzReadPublicKey(f *testing.F) {
	fuzzSeeds(f, func(ctx *Context, w io.Writer) error {
		kg := NewKeyGenerator(ctx, 1)
		return ctx.WritePublicKey(w, kg.GenPublicKey(kg.GenSecretKey()))
	})
	ctx := fuzzCtx(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, err := ctx.ReadPublicKey(bytes.NewReader(data))
		checkDecodeErr(t, err)
	})
}

func FuzzReadRelinearizationKey(f *testing.F) {
	fuzzSeeds(f, func(ctx *Context, w io.Writer) error {
		kg := NewKeyGenerator(ctx, 1)
		return ctx.WriteRelinearizationKey(w, kg.GenRelinearizationKey(kg.GenSecretKey()))
	})
	ctx := fuzzCtx(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, err := ctx.ReadRelinearizationKey(bytes.NewReader(data))
		checkDecodeErr(t, err)
	})
}

func FuzzReadRotationKeySet(f *testing.F) {
	fuzzSeeds(f, func(ctx *Context, w io.Writer) error {
		kg := NewKeyGenerator(ctx, 1)
		sk := kg.GenSecretKey()
		return ctx.WriteRotationKeySet(w, kg.GenRotationKeys(sk, []int{1, -2}, true))
	})
	ctx := fuzzCtx(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, err := ctx.ReadRotationKeySet(bytes.NewReader(data))
		checkDecodeErr(t, err)
	})
}

func FuzzReadSecretKey(f *testing.F) {
	fuzzSeeds(f, func(ctx *Context, w io.Writer) error {
		kg := NewKeyGenerator(ctx, 1)
		return ctx.WriteSecretKey(w, kg.GenSecretKey())
	})
	ctx := fuzzCtx(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, err := ctx.ReadSecretKey(bytes.NewReader(data))
		checkDecodeErr(t, err)
	})
}

func FuzzReadKeyBundle(f *testing.F) {
	fuzzSeeds(f, func(ctx *Context, w io.Writer) error {
		kg := NewKeyGenerator(ctx, 1)
		sk := kg.GenSecretKey()
		return ctx.WriteKeyBundle(w, &KeyBundle{
			ParamsDigest: ctx.Params.ParamsDigest(),
			PK:           kg.GenPublicKey(sk),
			RLK:          kg.GenRelinearizationKey(sk),
			RTK:          kg.GenRotationKeys(sk, []int{1}, false),
		})
	})
	ctx := fuzzCtx(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		_, err := ctx.ReadKeyBundle(bytes.NewReader(data))
		checkDecodeErr(t, err)
	})
}
