// Command hetrain trains the paper's CNN1/CNN2 architectures (Figs. 3-4)
// on MNIST (real IDX data via MNIST_DIR, synthetic otherwise), retrofits
// SLAF polynomial activations per the CNN-HE-SLAF recipe, and saves the
// HE-ready models.
//
// Usage:
//
//	hetrain -model both -out models -train 6000 -test 1000 -epochs 10
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"

	"cnnhe/internal/mnist"
	"cnnhe/internal/nn"
	"cnnhe/internal/ring"
)

func main() {
	var (
		model    = flag.String("model", "both", "architecture to train: cnn1, cnn2 or both")
		outDir   = flag.String("out", "models", "output directory for .gob models")
		trainN   = flag.Int("train", 6000, "training images (paper: 50000)")
		testN    = flag.Int("test", 1000, "test images (paper: 10000)")
		epochs   = flag.Int("epochs", 10, "ReLU training epochs (paper: 30)")
		retrofit = flag.Int("retrofit", 3, "SLAF retrofit epochs")
		degree   = flag.Int("degree", 3, "SLAF polynomial degree")
		seed     = flag.Int64("seed", 1, "random seed")
		quiet    = flag.Bool("q", false, "suppress progress logs")
		ringPar  = flag.Bool("ring-parallel", ring.ParallelDefault(), "limb/slab-parallel ring kernels for any HE contexts built in-process (default: on when GOMAXPROCS > 1)")
	)
	flag.Parse()

	// hetrain itself trains plaintext models, but the flag is plumbed
	// uniformly across the daemons so scripts can set it everywhere.
	ring.SetParallelDefault(*ringPar)
	if !*quiet {
		fmt.Printf("ring kernels: ring_parallel=%v gomaxprocs=%d\n", *ringPar, runtime.GOMAXPROCS(0))
	}

	train, test, src := mnist.Load(*trainN, *testN, *seed)
	fmt.Printf("dataset: %s (%d train / %d test)\n", src, train.Len(), test.Len())
	trainNN := train.ToNN()
	testNN := test.ToNN()

	var archs []string
	switch *model {
	case "both":
		archs = []string{"cnn1", "cnn2"}
	case "cnn1", "cnn2":
		archs = []string{*model}
	default:
		log.Fatalf("unknown model %q", *model)
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}

	for _, arch := range archs {
		rng := rand.New(rand.NewSource(*seed + 100))
		var m *nn.Model
		if arch == "cnn1" {
			m = nn.NewCNN1(rng)
		} else {
			m = nn.NewCNN2(rng)
		}
		fmt.Printf("== training %s: %d epochs, SGD momentum 0.9, 1-cycle LR ==\n", arch, *epochs)
		tc := nn.TrainConfig{
			Epochs: *epochs, BatchSize: 64, MaxLR: 0.08, Momentum: 0.9,
			Seed: *seed + 200, Verbose: !*quiet, LogEvery: 5,
		}
		trainAcc := nn.Train(m, trainNN, tc)
		reluAcc := nn.Evaluate(m, testNN)
		fmt.Printf("%s ReLU: train %.3f%% test %.3f%%\n", arch, 100*trainAcc, 100*reluAcc)

		rc := nn.DefaultRetrofitConfig()
		rc.Degree = *degree
		rc.Epochs = *retrofit
		rc.Seed = *seed + 300
		rc.Verbose = !*quiet
		slaf := nn.Retrofit(m, trainNN, rc)
		slafAcc := nn.Evaluate(slaf, testNN)
		fmt.Printf("%s SLAF(deg %d): test %.3f%%\n", arch, *degree, 100*slafAcc)

		path := filepath.Join(*outDir, arch+".gob")
		if err := slaf.Save(path, arch); err != nil {
			log.Fatalf("saving %s: %v", path, err)
		}
		fmt.Printf("saved %s\n", path)
	}
}
