// Package mnist provides the image-classification dataset substrate: a
// loader for the standard MNIST IDX files when they are available, and a
// deterministic synthetic handwritten-digit generator used as an offline
// substitution (DESIGN.md §3, S1). Both produce 28×28 grayscale images
// with pixel values in [0, 255], the format the paper's evaluation uses.
package mnist

import (
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"cnnhe/internal/nn"
	"cnnhe/internal/tensor"
)

// Rows and Cols are the image dimensions.
const (
	Rows = 28
	Cols = 28
)

// Dataset holds raw 8-bit images and labels.
type Dataset struct {
	Pixels [][]byte // each image is Rows·Cols bytes, row-major
	Labels []int
}

// Len returns the number of images.
func (d Dataset) Len() int { return len(d.Pixels) }

// Image returns image i as raw float64 pixels in [0, 255].
func (d Dataset) Image(i int) []float64 {
	out := make([]float64, Rows*Cols)
	for j, b := range d.Pixels[i] {
		out[j] = float64(b)
	}
	return out
}

// ToNN converts to the training representation: [1, 28, 28] tensors with
// pixels scaled to [0, 1].
func (d Dataset) ToNN() nn.Dataset {
	out := nn.Dataset{
		Images: make([]*tensor.Tensor, d.Len()),
		Labels: append([]int(nil), d.Labels...),
	}
	for i := range d.Pixels {
		img := tensor.New(1, Rows, Cols)
		for j, b := range d.Pixels[i] {
			img.Data[j] = float64(b) / 255
		}
		out.Images[i] = img
	}
	return out
}

// Subset returns the first n samples (or all when n ≤ 0 or past the end).
func (d Dataset) Subset(n int) Dataset {
	if n <= 0 || n > d.Len() {
		n = d.Len()
	}
	return Dataset{Pixels: d.Pixels[:n], Labels: d.Labels[:n]}
}

// LoadIDX reads the standard MNIST IDX files (optionally gzipped) from
// dir: train-images-idx3-ubyte[.gz], train-labels-idx1-ubyte[.gz],
// t10k-images-idx3-ubyte[.gz], t10k-labels-idx1-ubyte[.gz].
func LoadIDX(dir string) (train, test Dataset, err error) {
	train, err = loadPair(dir, "train-images-idx3-ubyte", "train-labels-idx1-ubyte")
	if err != nil {
		return Dataset{}, Dataset{}, err
	}
	test, err = loadPair(dir, "t10k-images-idx3-ubyte", "t10k-labels-idx1-ubyte")
	if err != nil {
		return Dataset{}, Dataset{}, err
	}
	return train, test, nil
}

func loadPair(dir, imgName, lblName string) (Dataset, error) {
	imgs, err := readIDXImages(findFile(dir, imgName))
	if err != nil {
		return Dataset{}, err
	}
	lbls, err := readIDXLabels(findFile(dir, lblName))
	if err != nil {
		return Dataset{}, err
	}
	if len(imgs) != len(lbls) {
		return Dataset{}, fmt.Errorf("mnist: %d images but %d labels", len(imgs), len(lbls))
	}
	return Dataset{Pixels: imgs, Labels: lbls}, nil
}

func findFile(dir, base string) string {
	for _, name := range []string{base, base + ".gz"} {
		p := filepath.Join(dir, name)
		if _, err := os.Stat(p); err == nil {
			return p
		}
	}
	return filepath.Join(dir, base)
}

func openMaybeGzip(path string) (io.ReadCloser, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	if filepath.Ext(path) == ".gz" {
		gz, err := gzip.NewReader(f)
		if err != nil {
			f.Close()
			return nil, err
		}
		return struct {
			io.Reader
			io.Closer
		}{gz, f}, nil
	}
	return f, nil
}

func readIDXImages(path string) ([][]byte, error) {
	r, err := openMaybeGzip(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var hdr [16]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("mnist: %s: %w", path, err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != 0x00000803 {
		return nil, fmt.Errorf("mnist: %s: bad magic", path)
	}
	n := int(binary.BigEndian.Uint32(hdr[4:8]))
	rows := int(binary.BigEndian.Uint32(hdr[8:12]))
	cols := int(binary.BigEndian.Uint32(hdr[12:16]))
	if rows != Rows || cols != Cols {
		return nil, fmt.Errorf("mnist: %s: unexpected size %dx%d", path, rows, cols)
	}
	out := make([][]byte, n)
	for i := range out {
		out[i] = make([]byte, rows*cols)
		if _, err := io.ReadFull(r, out[i]); err != nil {
			return nil, fmt.Errorf("mnist: %s truncated: %w", path, err)
		}
	}
	return out, nil
}

func readIDXLabels(path string) ([]int, error) {
	r, err := openMaybeGzip(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("mnist: %s: %w", path, err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != 0x00000801 {
		return nil, fmt.Errorf("mnist: %s: bad magic", path)
	}
	n := int(binary.BigEndian.Uint32(hdr[4:8]))
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("mnist: %s truncated: %w", path, err)
	}
	out := make([]int, n)
	for i, b := range buf {
		if b > 9 {
			return nil, fmt.Errorf("mnist: %s: label %d out of range", path, b)
		}
		out[i] = int(b)
	}
	return out, nil
}

// Load returns the real MNIST data from the directory named by the
// MNIST_DIR environment variable when set and readable, falling back to
// the deterministic synthetic dataset otherwise. The returned string
// describes the source.
func Load(trainN, testN int, seed int64) (train, test Dataset, source string) {
	if dir := os.Getenv("MNIST_DIR"); dir != "" {
		tr, te, err := LoadIDX(dir)
		if err == nil {
			return tr.Subset(trainN), te.Subset(testN), "mnist-idx:" + dir
		}
	}
	tr := Synthetic(trainN, seed)
	te := Synthetic(testN, seed+1)
	return tr, te, "synthetic"
}
