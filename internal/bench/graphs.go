package bench

import (
	"fmt"

	"cnnhe/internal/ckksbig"
	"cnnhe/internal/henn"
	"cnnhe/internal/henn/ir"
	"cnnhe/internal/henn/ir/opt"
	"cnnhe/internal/nn"
)

// JSONGraph is the machine-readable shape of a lowered op graph, the
// unit of the report's graph_before/graph_after sections.
type JSONGraph struct {
	Ops         int `json:"ops"`
	EngineCalls int `json:"engine_calls"`
	RotateCalls int `json:"rotate_calls"`
	Rescales    int `json:"rescales"`
	Hoists      int `json:"hoists"`
	MinLevel    int `json:"min_level"`
}

func jsonGraph(s ir.Stats) JSONGraph {
	return JSONGraph{
		Ops:         s.Ops,
		EngineCalls: s.EngineCalls,
		RotateCalls: s.RotateCalls(),
		Rescales:    s.ByKind[ir.OpRescale],
		Hoists:      s.Hoists,
		MinLevel:    s.MinLevel,
	}
}

// GraphReport carries the optimizer evidence for the JSON envelope:
// per (model, backend) graph sizes before and after the pass pipeline,
// keyed "CNN1/ckks-rns" style, plus the optimizer setting they were
// produced under.
type GraphReport struct {
	Optimizer string
	Before    map[string]JSONGraph
	After     map[string]JSONGraph
}

// GraphSizes lowers and optimizes each benchmarked model on both
// backends and records the graph shapes. Lowering is symbolic — it
// only reads engine parameters — so this uses params-only engine stubs
// and costs milliseconds, no key generation.
func GraphSizes(cfg Config, models *Models) (*GraphReport, error) {
	rep := &GraphReport{
		Optimizer: cfg.Opt.Setting(),
		Before:    map[string]JSONGraph{},
		After:     map[string]JSONGraph{},
	}
	for _, mc := range []struct {
		name  string
		model *nn.Model
	}{{"CNN1", models.CNN1}, {"CNN2", models.CNN2}} {
		plan, err := compilePlan(cfg, mc.model)
		if err != nil {
			return nil, err
		}
		k := plan.Depth + 1
		if k < 13 {
			k = 13 // the paper's Table II chain length, as in heVsRNS
		}
		params, err := rnsParams(cfg, k)
		if err != nil {
			return nil, err
		}
		bigParams, err := ckksbig.FromRNSParameters(params)
		if err != nil {
			return nil, err
		}
		engines := []henn.Engine{
			henn.ParamsOnlyEngine("ckks-rns", params.Slots(), params.MaxLevel(), params.Scale, params.QiFloat),
			henn.ParamsOnlyEngine("ckks-big", bigParams.Slots(), bigParams.MaxLevel(), bigParams.Scale, bigParams.QiFloat),
		}
		for _, e := range engines {
			g, err := plan.Lower(e)
			if err != nil {
				return nil, fmt.Errorf("bench: lowering %s on %s: %w", mc.name, e.Name(), err)
			}
			res, err := opt.Optimize(e, g, cfg.Opt)
			if err != nil {
				return nil, fmt.Errorf("bench: optimizing %s on %s: %w", mc.name, e.Name(), err)
			}
			key := mc.name + "/" + e.Name()
			rep.Before[key] = jsonGraph(g.Stats())
			rep.After[key] = jsonGraph(res.After)
		}
	}
	return rep, nil
}
