package henn

import (
	"math/rand"
	"testing"
	"testing/quick"

	"cnnhe/internal/tensor"
)

// TestDiagonalsReconstructMatrix: the generalized diagonals stored by
// NewLinearStage must reconstruct the (padded) matrix exactly.
func TestDiagonalsReconstructMatrix(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		slots := 64
		rows := 1 + rng.Intn(slots)
		cols := 1 + rng.Intn(slots)
		m := tensor.New(rows, cols)
		for i := range m.Data {
			if rng.Float64() < 0.3 {
				m.Data[i] = rng.NormFloat64()
			}
		}
		st, err := NewLinearStage("p", m, make([]float64, rows), slots)
		if err != nil {
			// all-zero matrices are rejected; that's fine
			return isZero(m.Data)
		}
		// Rebuild: M'[i][j] from diag_k with k = (j - i) mod slots.
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				k := ((j-i)%slots + slots) % slots
				var v float64
				if d, ok := st.Diags[k]; ok {
					v = d[i]
				}
				if v != m.Data[i*cols+j] {
					return false
				}
			}
		}
		// No spurious entries: every stored value maps back into the matrix.
		for k, d := range st.Diags {
			for i, v := range d {
				if v == 0 {
					continue
				}
				j := (i + k) % slots
				if i >= rows || j >= cols || m.Data[i*cols+j] != v {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func isZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// TestRotationsAreCoveredByBSGS: every stored diagonal must be reachable
// from the declared baby and giant rotations.
func TestRotationsAreCoveredByBSGS(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m := tensor.New(50, 60)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	st, err := NewLinearStage("r", m, make([]float64, 50), 128)
	if err != nil {
		t.Fatal(err)
	}
	rot := map[int]bool{0: true}
	for _, r := range st.Rotations() {
		rot[r] = true
	}
	for k := range st.Diags {
		i, j := k/st.Baby, k%st.Baby
		if !rot[j] && j != 0 {
			t.Fatalf("baby step %d not declared", j)
		}
		if i != 0 && !rot[i*st.Baby] {
			t.Fatalf("giant step %d not declared", i*st.Baby)
		}
	}
	if st.Baby*st.Giant != st.Slots {
		t.Fatalf("BSGS split %d×%d != %d", st.Baby, st.Giant, st.Slots)
	}
}

// TestPlanDepthAccounting: plan depth is the sum of stage depths and
// CheckDepth enforces the level budget.
func TestPlanDepthAccounting(t *testing.T) {
	m := tinyModel(41)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for _, s := range plan.Stages {
		want += s.Depth()
	}
	if plan.Depth != want {
		t.Fatalf("depth %d, stages sum %d", plan.Depth, want)
	}
	if err := plan.CheckDepth(plan.Depth); err != nil {
		t.Fatal("exact budget must pass:", err)
	}
	if err := plan.CheckDepth(plan.Depth - 1); err == nil {
		t.Fatal("insufficient budget must fail")
	}
	if plan.Describe() == "" {
		t.Fatal("empty describe")
	}
}

// TestRotateVec sanity.
func TestRotateVec(t *testing.T) {
	v := []float64{1, 2, 3, 4}
	got := rotateVec(v, 1)
	want := []float64{2, 3, 4, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotateVec +1: %v", got)
		}
	}
	got = rotateVec(v, -1)
	want = []float64{4, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rotateVec -1: %v", got)
		}
	}
	if &rotateVec(v, 0)[0] != &v[0] {
		t.Fatal("rotateVec 0 should return the input")
	}
}
