package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Fatalf("counter value %d, want 42", got)
	}
	if again := r.Counter("test_total", "a counter"); again != c {
		t.Fatal("re-registration returned a different counter")
	}
	g := r.Gauge("test_gauge", "a gauge")
	g.Set(3.5)
	g.Add(-1.25)
	if got := g.Value(); got != 2.25 {
		t.Fatalf("gauge value %v, want 2.25", got)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var rec *RunRecorder
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	rec.Record(OpSpan{})
	rec.RecordPhase("x", time.Now(), time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Sum() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments returned non-zero values")
	}
	if rec.Spans() != nil || rec.OpCount() != 0 {
		t.Fatal("nil recorder returned spans")
	}
}

// TestConcurrentIncrements hammers one counter, one gauge and one
// histogram from many goroutines; run under -race this also proves the
// instruments are data-race-free.
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conc_total", "")
	g := r.Gauge("conc_inflight", "")
	h := r.Histogram("conc_seconds", "", []float64{0.25, 0.5, 1})
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(0.75)
				// Concurrent idempotent re-registration must be safe too.
				r.Counter("conc_total", "")
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter %d, want %d", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge %v, want 0", got)
	}
	if got := h.Count(); got != workers*per {
		t.Fatalf("histogram count %d, want %d", got, workers*per)
	}
	if got, want := h.Sum(), 0.75*workers*per; math.Abs(got-want) > 1e-6 {
		t.Fatalf("histogram sum %v, want %v", got, want)
	}
}

// TestHistogramBucketBoundaries pins the ≤ boundary semantics: a sample
// exactly on a bound lands in that bound's bucket.
func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.10001, 1, 5, 10, 11, math.Inf(1)} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped
	snap := r.Snapshot()
	f, ok := snap.Family("lat_seconds")
	if !ok || len(f.Series) != 1 {
		t.Fatalf("snapshot families %+v", snap)
	}
	got := f.Series[0].Buckets
	// Cumulative counts: ≤0.1 → {0.05, 0.1}; ≤1 adds {0.10001, 1};
	// ≤10 adds {5, 10}; +Inf adds {11, Inf}.
	want := []int64{2, 4, 6, 8}
	if len(got) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Count != want[i] {
			t.Fatalf("bucket %d (le %v) count %d, want %d", i, got[i].UpperBound, got[i].Count, want[i])
		}
	}
	if f.Series[0].Count != 8 {
		t.Fatalf("count %d, want 8 (NaN must be dropped)", f.Series[0].Count)
	}
	if !math.IsInf(got[3].UpperBound, 1) {
		t.Fatalf("last bucket bound %v, want +Inf", got[3].UpperBound)
	}
}

func TestLabelledSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("ops_total", "ops", L("kind", "Rotate"))
	b := r.Counter("ops_total", "ops", L("kind", "MulPlain"))
	if a == b {
		t.Fatal("distinct label values shared one counter")
	}
	// Label order must not matter.
	x := r.Gauge("noise", "", L("stage", "s0"), L("backend", "rns"))
	y := r.Gauge("noise", "", L("backend", "rns"), L("stage", "s0"))
	if x != y {
		t.Fatal("label order produced distinct series")
	}
}

func TestTypeClashPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("clash", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("clash", "")
}

// TestPrometheusGolden pins the exact rendered text format, including
// HELP/TYPE lines, label escaping, histogram buckets and sorting.
func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("cnnhe_ops_total", "executed ops", L("kind", "Rotate")).Add(3)
	r.Counter("cnnhe_ops_total", "executed ops", L("kind", "MulPlain")).Add(2)
	r.Gauge("cnnhe_noise_bits", "remaining bits", L("stage", `conv "a"\b`)).Set(12.5)
	h := r.Histogram("cnnhe_op_seconds", "op latency", []float64{0.5, 1})
	h.Observe(0.25)
	h.Observe(0.75)
	h.Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP cnnhe_noise_bits remaining bits
# TYPE cnnhe_noise_bits gauge
cnnhe_noise_bits{stage="conv \"a\"\\b"} 12.5
# HELP cnnhe_op_seconds op latency
# TYPE cnnhe_op_seconds histogram
cnnhe_op_seconds_bucket{le="0.5"} 1
cnnhe_op_seconds_bucket{le="1"} 2
cnnhe_op_seconds_bucket{le="+Inf"} 3
cnnhe_op_seconds_sum 3
cnnhe_op_seconds_count 3
# HELP cnnhe_ops_total executed ops
# TYPE cnnhe_ops_total counter
cnnhe_ops_total{kind="MulPlain"} 2
cnnhe_ops_total{kind="Rotate"} 3
`
	if got := b.String(); got != want {
		t.Fatalf("prometheus text mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestSnapshotSub(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("delta_total", "", L("kind", "Add"))
	h := r.Histogram("delta_seconds", "", []float64{1})
	c.Add(5)
	h.Observe(0.5)
	before := r.Snapshot()
	c.Add(7)
	h.Observe(0.25)
	h.Observe(3)
	diff := r.Snapshot().Sub(before)
	f, _ := diff.Family("delta_total")
	if f.Series[0].Value != 7 {
		t.Fatalf("counter delta %v, want 7", f.Series[0].Value)
	}
	fh, _ := diff.Family("delta_seconds")
	if fh.Series[0].Count != 2 {
		t.Fatalf("histogram count delta %d, want 2", fh.Series[0].Count)
	}
	if got := fh.Series[0].Value; math.Abs(got-3.25) > 1e-9 {
		t.Fatalf("histogram sum delta %v, want 3.25", got)
	}
	if fh.Series[0].Buckets[0].Count != 1 {
		t.Fatalf("bucket delta %d, want 1", fh.Series[0].Buckets[0].Count)
	}
}

func TestEnabledFlag(t *testing.T) {
	if Enabled() {
		t.Fatal("telemetry enabled by default")
	}
	SetEnabled(true)
	if !Enabled() {
		t.Fatal("SetEnabled(true) not observed")
	}
	SetEnabled(false)
}
