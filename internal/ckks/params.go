// Package ckks implements the full-RNS variant of the CKKS approximate
// homomorphic encryption scheme (Cheon, Han, Kim, Kim, Song — "A Full RNS
// Variant of Approximate Homomorphic Encryption"), the paper's CKKS-RNS
// cryptosystem.
//
// Plaintexts are vectors of up to N/2 real (complex) numbers; ciphertexts
// are pairs of RNS polynomials kept in the NTT (evaluation) domain. The
// scheme supports addition, plaintext and ciphertext multiplication with
// relinearization, rescaling, slot rotation and conjugation. Key switching
// uses per-limb RNS digit decomposition with one or more special primes.
package ckks

import (
	"fmt"
	"math"
	"math/big"

	"cnnhe/internal/embed"
	"cnnhe/internal/primes"
	"cnnhe/internal/ring"
)

// Parameters fixes a CKKS-RNS instantiation: ring degree, moduli chain,
// plaintext scale and sampling parameters.
type Parameters struct {
	// LogN is log2 of the ring degree N.
	LogN int
	// Scale is the default plaintext scale Δ.
	Scale float64
	// H is the Hamming weight of the ternary secret key (χ_key = HW(h)).
	H int
	// Sigma is the standard deviation of the error distribution χ_err.
	Sigma float64
	// Chain holds the ciphertext and special prime moduli.
	Chain primes.Chain
	// RingSeed seeds the deterministic primitive-root searches.
	RingSeed int64
}

// NewParameters builds Parameters with a freshly generated moduli chain:
// bitSizes ciphertext primes followed by specialCount special primes of
// specialBits bits each.
func NewParameters(logN int, bitSizes []int, specialBits, specialCount int, scale float64) (Parameters, error) {
	if logN < 3 || logN > 17 {
		return Parameters{}, fmt.Errorf("ckks: logN %d out of range [3,17]", logN)
	}
	chain, err := primes.BuildChain(logN, bitSizes, specialBits, specialCount)
	if err != nil {
		return Parameters{}, err
	}
	p := Parameters{
		LogN:     logN,
		Scale:    scale,
		H:        64,
		Sigma:    ring.DefaultSigma,
		Chain:    chain,
		RingSeed: 1,
	}
	if p.H >= p.N() {
		p.H = p.N() / 2
	}
	return p, nil
}

// PaperParameters returns the paper's Table II security settings:
// N = 2^14, Δ = 2^26, q = [40, 26×11, 40] with log q·P = 366 (λ = 128 per
// the HE standard). Following SEAL's convention — the library the paper
// builds on — the trailing 40-bit prime is the key-switching prime, so
// the ciphertext chain is [40, 26×11] with 11 usable levels. (A 40-bit
// special prime leaves ≈2^-6 relative key-switch noise per rotation at
// Δ = 2^26; the benchmark harness uses a 60-bit special for cleaner
// precision at the cost of 20 extra logQP bits, still within the λ=128
// bound.)
func PaperParameters() (Parameters, error) {
	return NewParameters(14, primes.PaperBitSizes(), 40, 1, math.Exp2(26))
}

// TestParameters returns a reduced-size parameter set (N = 2^12) with the
// same chain shape and depth as the paper settings plus a 60-bit special
// prime. It is NOT 128-bit secure — pure-Go NTTs at N = 2^14 make
// full-size test suites too slow — and is intended for correctness tests
// and default benchmarks only.
func TestParameters() (Parameters, error) {
	return NewParameters(12, primes.PaperBitSizes(), 60, 1, math.Exp2(26))
}

// TinyParameters returns a minimal parameter set (N = 2^10, 4 levels) for
// fast unit tests.
func TinyParameters() (Parameters, error) {
	return NewParameters(10, []int{40, 30, 30, 30, 30}, 50, 1, math.Exp2(30))
}

// SweepParameters returns parameters whose ciphertext modulus totals
// totalBits split into k equal primes — the Table IV/VI moduli-chain-length
// interpretation. Special primes are sized to dominate the largest
// ciphertext prime (two wide specials when the split exceeds the word
// bound) so key-switching noise stays negligible.
func SweepParameters(logN int, totalBits, k int, scale float64) (Parameters, error) {
	sizes := primes.EqualSplit(totalBits, k)
	maxBits := sizes[0]
	specialBits, specialCount := maxBits+16, 1
	if specialBits > 60 && maxBits <= 60 {
		specialBits = 60
	}
	if maxBits > 60 {
		// Wide limbs: use two wide specials so log P ≥ maxBits + 16.
		specialBits = maxBits
		specialCount = 2
	}
	return NewParameters(logN, sizes, specialBits, specialCount, scale)
}

// N returns the ring degree.
func (p Parameters) N() int { return 1 << uint(p.LogN) }

// Slots returns the number of plaintext slots (N/2).
func (p Parameters) Slots() int { return p.N() / 2 }

// MaxLevel returns the highest ciphertext level L (index of the top
// ciphertext prime).
func (p Parameters) MaxLevel() int { return p.Chain.Len() - 1 }

// LogQP returns the total bit length of Q·P (all moduli), the quantity the
// HE security standard bounds.
func (p Parameters) LogQP() int {
	q := new(big.Int).Mul(p.Chain.Q(), p.Chain.P())
	return q.BitLen()
}

// QiFloat returns q_level as a float64 (used by scale management).
func (p Parameters) QiFloat(level int) float64 {
	f, _ := new(big.Float).SetInt(p.Chain.Moduli[level]).Float64()
	return f
}

// Context bundles Parameters with the constructed RNS ring and the
// canonical-embedding engine. All scheme components share one Context.
type Context struct {
	Params Parameters
	R      *ring.Ring
	Emb    *embed.Embedder
}

// NewContext constructs the ring (deterministically, from
// Parameters.RingSeed) and the embedder.
func NewContext(p Parameters) (*Context, error) {
	r, err := ring.NewRing(p.N(), p.Chain.Moduli, p.Chain.SpecialCount, p.RingSeed)
	if err != nil {
		return nil, err
	}
	return &Context{Params: p, R: r, Emb: embed.New(p.N())}, nil
}

// SetParallel toggles limb-level parallelism on the underlying ring.
func (c *Context) SetParallel(on bool) { c.R.Parallel = on }
