package nn

import (
	"math"
	"math/rand"
	"testing"

	"cnnhe/internal/tensor"
)

func TestMeanPoolForwardValues(t *testing.T) {
	p := NewMeanPool2D(2, 2, 1, 4, 4)
	x := tensor.FromSlice([]float64{
		1, 2, 3, 4,
		5, 6, 7, 8,
		9, 10, 11, 12,
		13, 14, 15, 16,
	}, 1, 4, 4)
	out := p.Forward([]*tensor.Tensor{x}, false)[0]
	want := []float64{3.5, 5.5, 11.5, 13.5}
	for i := range want {
		if out.Data[i] != want[i] {
			t.Fatalf("pool forward %v", out.Data)
		}
	}
}

func TestMeanPoolGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	p := NewMeanPool2D(2, 2, 2, 6, 6)
	numericalGradCheck(t, p, randInput(rng, 2, 6, 6), 1e-5)
}

func TestMeanPoolAsMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	p := NewMeanPool2D(2, 2, 3, 8, 8)
	x := randInput(rng, 3, 8, 8)
	direct := p.Forward([]*tensor.Tensor{x}, false)[0]
	m := p.AsMatrix()
	flat := tensor.MatVec(m, x.Data)
	for i := range direct.Data {
		if math.Abs(flat[i]-direct.Data[i]) > 1e-12 {
			t.Fatalf("pool-as-matrix mismatch at %d", i)
		}
	}
}

func TestCryptoNetsArchitectureShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	m := NewCryptoNets(rng)
	out := m.Forward(randInput(rng, 1, 28, 28))
	if out.Len() != 10 {
		t.Fatalf("cryptonets outputs %d classes", out.Len())
	}
	pool := m.Layers[2].(*MeanPool2D)
	if pool.OutH() != 6 || pool.OutW() != 6 {
		t.Fatalf("pool output %dx%d want 6x6", pool.OutH(), pool.OutW())
	}
	conv2 := m.Layers[3].(*Conv2D)
	if conv2.OutH() != 4 || conv2.OutW() != 4 {
		t.Fatalf("conv2 output %dx%d want 4x4", conv2.OutH(), conv2.OutW())
	}
}

func TestCNN3ArchitectureShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	m := NewCNN3(rng)
	out := m.Forward(randInput(rng, 3, 32, 32))
	if out.Len() != 10 {
		t.Fatalf("cnn3 outputs %d classes", out.Len())
	}
	conv1 := m.Layers[0].(*Conv2D)
	if conv1.OutH() != 15 || conv1.OutW() != 15 {
		t.Fatalf("conv1 output %dx%d want 15x15", conv1.OutH(), conv1.OutW())
	}
	pool1 := m.Layers[2].(*MeanPool2D)
	if pool1.OutH() != 7 || pool1.OutW() != 7 {
		t.Fatalf("pool1 output %dx%d want 7x7", pool1.OutH(), pool1.OutW())
	}
	conv2 := m.Layers[3].(*Conv2D)
	if conv2.OutH() != 7 || conv2.OutW() != 7 {
		t.Fatalf("conv2 output %dx%d want 7x7", conv2.OutH(), conv2.OutW())
	}
	pool2 := m.Layers[5].(*MeanPool2D)
	if pool2.OutH() != 3 || pool2.OutW() != 3 {
		t.Fatalf("pool2 output %dx%d want 3x3", pool2.OutH(), pool2.OutW())
	}
}

func TestCNN3Trains(t *testing.T) {
	// A couple of steps must run without shape errors end to end.
	rng := rand.New(rand.NewSource(84))
	m := NewCNN3(rng)
	ds := Dataset{}
	for i := 0; i < 32; i++ {
		ds.Images = append(ds.Images, randInput(rng, 3, 32, 32))
		ds.Labels = append(ds.Labels, i%10)
	}
	Train(m, ds, TrainConfig{Epochs: 1, BatchSize: 8, MaxLR: 0.01, Momentum: 0.9, Seed: 1})
}
