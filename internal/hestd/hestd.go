// Package hestd encodes the HomomorphicEncryption.org security standard
// tables (Albrecht et al., 2018): the maximum total modulus bit length
// log(Q·P) permitted for each ring degree N at a given classical security
// level, for ternary secret distributions.
package hestd

import "fmt"

// SecurityLevel is a classical bit-security target from the HE standard.
type SecurityLevel int

// Standard security levels.
const (
	Security128 SecurityLevel = 128
	Security192 SecurityLevel = 192
	Security256 SecurityLevel = 256
)

// maxLogQP[λ][logN] per the HE standard tables for ternary secrets.
var maxLogQP = map[SecurityLevel]map[int]int{
	Security128: {10: 27, 11: 54, 12: 109, 13: 218, 14: 438, 15: 881},
	Security192: {10: 19, 11: 37, 12: 75, 13: 152, 14: 305, 15: 611},
	Security256: {10: 14, 11: 29, 12: 58, 13: 118, 14: 237, 15: 476},
}

// MaxLogQP returns the largest admissible log(Q·P) for the given level and
// log ring degree, or an error when the standard has no entry.
func MaxLogQP(level SecurityLevel, logN int) (int, error) {
	table, ok := maxLogQP[level]
	if !ok {
		return 0, fmt.Errorf("hestd: unknown security level %d", level)
	}
	v, ok := table[logN]
	if !ok {
		return 0, fmt.Errorf("hestd: no table entry for logN=%d", logN)
	}
	return v, nil
}

// Validate reports whether parameters with the given logN and logQP meet
// the security level. A nil error means the parameters conform.
func Validate(level SecurityLevel, logN, logQP int) error {
	max, err := MaxLogQP(level, logN)
	if err != nil {
		return err
	}
	if logQP > max {
		return fmt.Errorf("hestd: logQP=%d exceeds the λ=%d bound %d for N=2^%d",
			logQP, level, max, logN)
	}
	return nil
}

// SecurityOf returns the highest standard level the parameters satisfy, or
// 0 when they satisfy none.
func SecurityOf(logN, logQP int) SecurityLevel {
	for _, l := range []SecurityLevel{Security256, Security192, Security128} {
		if err := Validate(l, logN, logQP); err == nil {
			return l
		}
	}
	return 0
}
