package client

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"

	"cnnhe/internal/ckks"
)

func tinyInfo(t *testing.T) *InfoResponse {
	t.Helper()
	p, err := ckks.TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	return &InfoResponse{
		Model:          "tiny",
		Backend:        "ckks-rns",
		InputDim:       64,
		OutputDim:      4,
		Slots:          p.Slots(),
		Levels:         p.MaxLevel(),
		Rotations:      []int{1, 2, 4},
		Params:         ParamsInfoOf(p),
		EncryptedRoute: true,
	}
}

func TestParamsInfoRoundTrip(t *testing.T) {
	p, err := ckks.TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	pi := ParamsInfoOf(p)
	got, err := ParamsFromInfo(pi)
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != p.Fingerprint() {
		t.Fatalf("round-tripped fingerprint %s != %s", got.Fingerprint(), p.Fingerprint())
	}
}

func TestParamsFromInfoRejectsTamperedFingerprint(t *testing.T) {
	p, err := ckks.TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	pi := ParamsInfoOf(p)
	pi.Scale *= 2 // client and server would disagree on every encoding
	if _, err := ParamsFromInfo(pi); err == nil {
		t.Fatal("tampered params accepted")
	}
}

func TestKeySetSaveLoad(t *testing.T) {
	info := tinyInfo(t)
	ks, err := GenerateKeys(info, WithSeed(17))
	if err != nil {
		t.Fatal(err)
	}
	fp, err := ks.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	dir := filepath.Join(t.TempDir(), "keys")
	if err := ks.Save(dir); err != nil {
		t.Fatal(err)
	}
	if runtime.GOOS != "windows" {
		st, err := os.Stat(filepath.Join(dir, secretFile))
		if err != nil {
			t.Fatal(err)
		}
		if st.Mode().Perm() != 0o600 {
			t.Fatalf("secret key mode %v, want 0600", st.Mode().Perm())
		}
	}
	loaded, err := LoadKeySet(dir)
	if err != nil {
		t.Fatal(err)
	}
	lfp, err := loaded.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if lfp != fp {
		t.Fatalf("loaded fingerprint %s != saved %s", lfp, fp)
	}
	// The reloaded secret key must decrypt what the original encrypts.
	img := make([]float64, 8)
	for i := range img {
		img[i] = float64(i + 1)
	}
	seed := int64(5)
	ct, err := ks.EncryptImage(img, &seed)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := loaded.DecryptLogits(ct, len(img))
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vals {
		if diff := v - img[i]; diff > 1e-3 || diff < -1e-3 {
			t.Fatalf("slot %d: decrypted %v, want %v", i, v, img[i])
		}
	}
}

func TestGenerateKeysCoversAdvertisedRotations(t *testing.T) {
	info := tinyInfo(t)
	ks, err := GenerateKeys(info, WithSeed(18))
	if err != nil {
		t.Fatal(err)
	}
	if len(ks.RTK.Keys) != len(info.Rotations) {
		t.Fatalf("generated %d rotation keys for %d advertised rotations",
			len(ks.RTK.Keys), len(info.Rotations))
	}
	// Secure (crypto/rand) generation yields distinct keys per call.
	other, err := GenerateKeys(info)
	if err != nil {
		t.Fatal(err)
	}
	ofp, err := other.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := ks.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if ofp == fp {
		t.Fatal("secure keygen reproduced the seeded bundle")
	}
}
