package nn

import (
	"math"
	"math/rand"

	"cnnhe/internal/tensor"
)

// ActivationRanges runs samples through the model in inference mode and
// returns, for each activation layer (ReLU or SLAF) in order, the maximum
// absolute pre-activation value observed. These ranges calibrate the
// least-squares interval of the SLAF warm start: a polynomial fitted on
// [−r, r] is only trustworthy where it was fitted.
func ActivationRanges(m *Model, samples []*tensor.Tensor) []float64 {
	var ranges []float64
	xs := samples
	for _, l := range m.Layers {
		switch l.(type) {
		case *ReLU, *SLAF:
			r := 0.0
			for _, x := range xs {
				if v := x.MaxAbs(); v > r {
					r = v
				}
			}
			ranges = append(ranges, r)
		}
		xs = l.Forward(xs, false)
	}
	return ranges
}

// RetrofitConfig controls the SLAF substitution step.
type RetrofitConfig struct {
	Degree       int // polynomial degree (paper: 3)
	Epochs       int // short re-training (paper: "shortly re-trained")
	BatchSize    int
	MaxLR        float64 // small: only coefficients move
	Momentum     float64
	ClipGrad     float64 // max-abs gradient clip for stability (0 = off)
	CalibSamples int     // forward passes used for range calibration
	Seed         int64
	Verbose      bool
}

// DefaultRetrofitConfig returns stable retrofit settings.
func DefaultRetrofitConfig() RetrofitConfig {
	return RetrofitConfig{
		Degree: 3, Epochs: 5, BatchSize: 64, MaxLR: 2e-4, Momentum: 0.9,
		ClipGrad: 1.0, CalibSamples: 512, Seed: 1,
	}
}

// Retrofit implements the paper's CNN-HE-SLAF recipe: starting from a
// ReLU-trained model, freeze the weights, substitute every ReLU with a
// polynomial SLAF warm-started from a least-squares ReLU fit over the
// calibrated activation range, and briefly re-train so the coefficients
// adapt. It returns the SLAF model (sharing frozen weights with m).
func Retrofit(m *Model, ds Dataset, cfg RetrofitConfig) *Model {
	nCalib := cfg.CalibSamples
	if nCalib <= 0 || nCalib > ds.Len() {
		nCalib = ds.Len()
	}
	ranges := ActivationRanges(m, ds.Images[:nCalib])

	hm := m.ReplaceReLUWithSLAF(cfg.Degree, 1)
	idx := 0
	for _, l := range hm.Layers {
		if s, ok := l.(*SLAF); ok {
			r := ranges[idx] * 1.05 // small safety margin
			if r < 1 {
				r = 1
			}
			s.FitReLU(r)
			idx++
		}
	}
	hm.Freeze(true)
	if cfg.Epochs > 0 {
		trainClipped(hm, ds, cfg)
	}
	return hm
}

// trainClipped is Train with per-parameter gradient clipping, used only
// for the retrofit step (cubic activations make early gradients violent).
func trainClipped(m *Model, ds Dataset, cfg RetrofitConfig) {
	tc := TrainConfig{
		Epochs: cfg.Epochs, BatchSize: cfg.BatchSize, MaxLR: cfg.MaxLR,
		Momentum: cfg.Momentum, Seed: cfg.Seed, Verbose: cfg.Verbose, LogEvery: 1,
	}
	trainWithClip(m, ds, tc, cfg.ClipGrad)
}

// trainWithClip mirrors Train but clips gradients before each step and
// skips batches whose loss is non-finite (protecting the frozen model from
// divergent coefficient excursions).
func trainWithClip(m *Model, ds Dataset, cfg TrainConfig, clip float64) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := ds.Len()
	stepsPerEpoch := (n + cfg.BatchSize - 1) / cfg.BatchSize
	sched := NewOneCycle(cfg.MaxLR, cfg.Epochs*stepsPerEpoch)
	opt := &SGD{Momentum: cfg.Momentum}
	params := m.Params()
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for s := 0; s < n; s += cfg.BatchSize {
			e := s + cfg.BatchSize
			if e > n {
				e = n
			}
			batch := make([]*tensor.Tensor, 0, e-s)
			labels := make([]int, 0, e-s)
			for _, id := range idx[s:e] {
				batch = append(batch, ds.Images[id])
				labels = append(labels, ds.Labels[id])
			}
			outs := m.ForwardBatch(batch, true)
			grads := make([]*tensor.Tensor, len(outs))
			finite := true
			for b, out := range outs {
				loss, g := SoftmaxCrossEntropy(out.Data, labels[b])
				if math.IsNaN(loss) || math.IsInf(loss, 0) {
					finite = false
				}
				grads[b] = tensor.FromSlice(g, len(g))
			}
			if !finite {
				// Skip the divergent batch entirely.
				for _, p := range params {
					p.ZeroGrad()
				}
				step++
				continue
			}
			m.BackwardBatch(grads)
			if clip > 0 {
				for _, p := range params {
					for i := range p.Grad {
						if p.Grad[i] > clip {
							p.Grad[i] = clip
						} else if p.Grad[i] < -clip {
							p.Grad[i] = -clip
						}
					}
				}
			}
			opt.LR = sched.LR(step)
			opt.Step(params, len(batch))
			step++
		}
	}
}
