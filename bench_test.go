package cnnhe

// Benchmarks regenerating the paper's tables and figures (one benchmark
// per experiment; see DESIGN.md §4). These run at reduced, laptop-scale
// parameters; cmd/hebench produces the full formatted tables and the
// -paper flag selects the N=2^14 Table II settings.
//
//	go test -bench=. -benchmem            # everything
//	go test -bench=TableIII -benchtime=3x

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/debug"
	"sync"
	"testing"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/henn"
	"cnnhe/internal/mnist"
	"cnnhe/internal/nn"
)

// fixtures are built once and shared by every benchmark. Engines (keys +
// pre-encoded weight caches) are cached per configuration so each
// benchmark measures steady-state inference, not setup.
type benchFixtures struct {
	cnn1, cnn2   *nn.Model
	images       [][]float64
	labels       []int
	plan1, plan2 *henn.Plan // logN=11 (CNN1), logN=12 (CNN2)

	mu      sync.Mutex
	engines map[string]henn.Engine
}

var (
	fxOnce sync.Once
	fx     benchFixtures
)

func fixtures(b *testing.B) *benchFixtures {
	b.Helper()
	fxOnce.Do(func() {
		train, test, src := mnist.Load(2000, 64, 1)
		fmt.Fprintf(os.Stderr, "[bench setup] training CNN1+CNN2 (data: %s)...\n", src)
		trainNN := train.ToNN()
		rc := nn.DefaultRetrofitConfig()
		rc.Epochs = 2

		rng := rand.New(rand.NewSource(2))
		m1 := nn.NewCNN1(rng)
		nn.Train(m1, trainNN, nn.TrainConfig{Epochs: 4, BatchSize: 64, MaxLR: 0.08, Momentum: 0.9, Seed: 3})
		fx.cnn1 = nn.Retrofit(m1, trainNN, rc)

		m2 := nn.NewCNN2(rng)
		nn.Train(m2, trainNN, nn.TrainConfig{Epochs: 4, BatchSize: 64, MaxLR: 0.08, Momentum: 0.9, Seed: 4})
		fx.cnn2 = nn.Retrofit(m2, trainNN, rc)

		for i := 0; i < test.Len(); i++ {
			fx.images = append(fx.images, test.Image(i))
		}
		fx.labels = test.Labels

		var err error
		if fx.plan1, err = henn.Compile(fx.cnn1, 1<<10); err != nil {
			panic(err)
		}
		if fx.plan2, err = henn.Compile(fx.cnn2, 1<<11); err != nil {
			panic(err)
		}
		fx.engines = map[string]henn.Engine{}
	})
	return &fx
}

// chainBits returns the paper-shaped [40, 26…26, 40] chain of length k.
func chainBits(k int) []int {
	bits := []int{40}
	for i := 0; i < k-2; i++ {
		bits = append(bits, 26)
	}
	return append(bits, 40)
}

// rnsEngine caches only the two default-chain engines that several
// benchmarks share; sweep configurations are transient so the process
// footprint stays bounded on 16 GB machines.
func rnsEngine(b *testing.B, logN, k int, plan *henn.Plan) henn.Engine {
	b.Helper()
	f := fixtures(b)
	key := fmt.Sprintf("rns/%d/%d", logN, k)
	cacheable := k == 13
	if cacheable {
		f.mu.Lock()
		if e, ok := f.engines[key]; ok {
			f.mu.Unlock()
			return e
		}
		f.mu.Unlock()
	}
	runtime.GC()
	p, err := ckks.NewParameters(logN, chainBits(k), 60, 1, math.Exp2(26))
	if err != nil {
		b.Fatal(err)
	}
	if err := plan.CheckDepth(p.MaxLevel()); err != nil {
		b.Fatal(err)
	}
	e, err := henn.NewRNSEngine(p, plan.Rotations(), 7)
	if err != nil {
		b.Fatal(err)
	}
	if cacheable {
		f.mu.Lock()
		f.engines[key] = e
		f.mu.Unlock()
	}
	return e
}

// bigEngine is never cached: the multiprecision backend's per-level ring
// and plaintext caches are several GB each.
func bigEngine(b *testing.B, logN, k int, plan *henn.Plan) henn.Engine {
	b.Helper()
	runtime.GC()
	debug.FreeOSMemory()
	p, err := ckks.NewParameters(logN, chainBits(k), 60, 1, math.Exp2(26))
	if err != nil {
		b.Fatal(err)
	}
	bp, err := ckksbig.FromRNSParameters(p)
	if err != nil {
		b.Fatal(err)
	}
	e, err := henn.NewBigEngine(bp, plan.Rotations(), 7)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

func benchInfer(b *testing.B, plan *henn.Plan, e henn.Engine, images [][]float64) {
	b.Helper()
	plan.Infer(e, images[0]) // warm the pre-encoded weight cache untimed
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits, _ := plan.Infer(e, images[i%len(images)])
		_ = logits.Argmax()
	}
}

// BenchmarkTableIII_CNN1HERNS: one encrypted CNN1 classification under
// CKKS-RNS (Table III, CNN1-HE-RNS row).
func BenchmarkTableIII_CNN1HERNS(b *testing.B) {
	f := fixtures(b)
	e := rnsEngine(b, 11, 13, f.plan1)
	benchInfer(b, f.plan1, e, f.images)
}

// BenchmarkTableIII_CNN1HE: the multiprecision CKKS baseline
// (Table III, CNN1-HE row).
func BenchmarkTableIII_CNN1HE(b *testing.B) {
	f := fixtures(b)
	e := bigEngine(b, 11, 13, f.plan1)
	benchInfer(b, f.plan1, e, f.images)
}

// BenchmarkTableIV_ModuliSweep: CNN1-HE-RNS latency across feasible moduli
// chain lengths (Table IV).
func BenchmarkTableIV_ModuliSweep(b *testing.B) {
	f := fixtures(b)
	// Representative chain lengths; cmd/hebench sweeps the full range.
	for _, k := range []int{f.plan1.Depth + 1, 10, 13} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			e := rnsEngine(b, 11, k, f.plan1)
			benchInfer(b, f.plan1, e, f.images)
		})
	}
}

// BenchmarkTableV_CNN2HERNS: encrypted CNN2 classification under CKKS-RNS
// (Table V, CNN2-HE-RNS row).
func BenchmarkTableV_CNN2HERNS(b *testing.B) {
	f := fixtures(b)
	e := rnsEngine(b, 12, 13, f.plan2)
	benchInfer(b, f.plan2, e, f.images)
}

// BenchmarkTableV_CNN2HE: the CNN2 multiprecision baseline (Table V).
func BenchmarkTableV_CNN2HE(b *testing.B) {
	f := fixtures(b)
	e := bigEngine(b, 12, 13, f.plan2)
	benchInfer(b, f.plan2, e, f.images)
}

// BenchmarkTableVI_ModuliSweep: CNN2-HE-RNS latency across feasible moduli
// chain lengths (Table VI; the k=1 multiprecision row is
// BenchmarkTableV_CNN2HE).
func BenchmarkTableVI_ModuliSweep(b *testing.B) {
	f := fixtures(b)
	// Representative chain lengths; cmd/hebench sweeps the full range.
	for _, k := range []int{f.plan2.Depth + 1, 13} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			e := rnsEngine(b, 12, k, f.plan2)
			benchInfer(b, f.plan2, e, f.images)
		})
	}
}

// BenchmarkFig5_RNSPipeline: the Fig. 5 input-decomposition pipeline on
// CNN1 for several part counts.
func BenchmarkFig5_RNSPipeline(b *testing.B) {
	f := fixtures(b)
	e := rnsEngine(b, 11, 13, f.plan1)
	for _, parts := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("parts=%d", parts), func(b *testing.B) {
			rp, err := henn.NewRNSPlan(f.plan1, parts, true)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				logits, _ := rp.Infer(e, f.images[i%len(f.images)])
				_ = logits.Argmax()
			}
		})
	}
}

// BenchmarkLimbWidthAblation: ct-ct multiply+relinearize with a fixed
// ~366-bit modulus split into k limbs (the Table IV/VI mechanism at the
// primitive level: k ≤ 5 limbs exceed the word bound and use two-word
// arithmetic).
func BenchmarkLimbWidthAblation(b *testing.B) {
	for k := 3; k <= 10; k++ {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			params, err := ckks.SweepParameters(10, 366, k, math.Exp2(float64(366/k)))
			if err != nil {
				b.Fatal(err)
			}
			ctx, err := ckks.NewContext(params)
			if err != nil {
				b.Fatal(err)
			}
			kg := ckks.NewKeyGenerator(ctx, 1)
			sk := kg.GenSecretKey()
			pk := kg.GenPublicKey(sk)
			rlk := kg.GenRelinearizationKey(sk)
			enc := ckks.NewEncoder(ctx)
			ept := ckks.NewEncryptor(ctx, pk, 2)
			ev := ckks.NewEvaluator(ctx, rlk, nil)
			vals := make([]float64, params.Slots())
			for i := range vals {
				vals[i] = 1.0 + float64(i%5)/5
			}
			ct := ept.Encrypt(enc.Encode(vals, params.MaxLevel(), params.Scale))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = ev.Mul(ct, ct)
			}
		})
	}
}

// BenchmarkBatchedThroughput: SIMD batch amortization (the mechanism
// behind Table I's E2DM/Lo-La throughput rows): two CNN1 images packed in
// one ciphertext cost one evaluation. The reported ns/op covers the whole
// batch; per-image latency is ns/op ÷ batch.
func BenchmarkBatchedThroughput(b *testing.B) {
	f := fixtures(b)
	for _, batch := range []int{1, 2} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			bp, err := henn.CompileBatched(f.cnn1, 1<<11, batch)
			if err != nil {
				b.Fatal(err)
			}
			// Dedicated engine: the tiled plan's rotation set differs from
			// the cached CNN2 engine's.
			p, err := ckks.NewParameters(12, chainBits(13), 60, 1, math.Exp2(26))
			if err != nil {
				b.Fatal(err)
			}
			e, err := henn.NewRNSEngine(p, bp.Plan.Rotations(), 7)
			if err != nil {
				b.Fatal(err)
			}
			images := make([][]float64, batch)
			for i := range images {
				images[i] = f.images[i]
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := bp.InferBatch(e, images); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCNN3CryptoNets: the CryptoNets-style architecture (mean pooling
// + degree-2 activations) with and without the Table I "2-arch" collapsing
// of adjacent linear layers (pool + conv merge into one homomorphic stage,
// saving a level and a full BSGS matrix-vector product).
func BenchmarkCNN3CryptoNets(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	m := nn.NewCryptoNets(rng).ReplaceReLUWithSLAF(2, 1)
	for _, l := range m.Layers {
		if s, ok := l.(*nn.SLAF); ok {
			s.FitReLU(3)
		}
	}
	f := fixtures(b)
	for _, collapse := range []bool{true, false} {
		name := "2arch"
		if !collapse {
			name = "expanded"
		}
		b.Run(name, func(b *testing.B) {
			plan, err := henn.CompileWithOptions(m, 1<<10, henn.Options{Collapse: collapse})
			if err != nil {
				b.Fatal(err)
			}
			p, err := ckks.NewParameters(11, chainBits(plan.Depth+1), 60, 1, math.Exp2(26))
			if err != nil {
				b.Fatal(err)
			}
			e, err := henn.NewRNSEngine(p, plan.Rotations(), 7)
			if err != nil {
				b.Fatal(err)
			}
			plan.Infer(e, f.images[0])
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				logits, _ := plan.Infer(e, f.images[i%len(f.images)])
				_ = logits.Argmax()
			}
		})
	}
}

// BenchmarkTableI_OurRows: the single-inference latencies appended to
// Table I (CNN1-HE-RNS and CNN2-HE-RNS at their default settings).
func BenchmarkTableI_OurRows(b *testing.B) {
	f := fixtures(b)
	b.Run("CNN1-HE-RNS", func(b *testing.B) {
		e := rnsEngine(b, 11, 13, f.plan1)
		benchInfer(b, f.plan1, e, f.images)
	})
	b.Run("CNN2-HE-RNS", func(b *testing.B) {
		e := rnsEngine(b, 12, 13, f.plan2)
		benchInfer(b, f.plan2, e, f.images)
	})
}
