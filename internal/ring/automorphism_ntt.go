package ring

import "sync"

// The NTT used here evaluates a polynomial at the odd powers of the
// primitive 2N-th root ψ, with outputs stored in bit-reversed order:
// â[brv(i)] = a(ψ^{2i+1}). The Galois automorphism X → X^g therefore acts
// on the NTT representation as a pure index permutation:
//
//	φ_g(a)(ψ^{2i+1}) = a(ψ^{g·(2i+1)}) = â[brv(j)],  2j+1 ≡ g(2i+1) (mod 2N).
//
// The permutation depends only on N and g — not on the limb modulus — so a
// single table serves every limb, which is what makes hoisted rotations
// (decompose once, rotate many) cheap.

var nttPermCache sync.Map // key {logN, galEl} → []int

type nttPermKey struct {
	logN  int
	galEl uint64
}

// AutomorphismNTTIndex returns the permutation perm with
// out[i] = in[perm[i]] realizing φ_galEl in the NTT domain.
func AutomorphismNTTIndex(logN int, galEl uint64) []int {
	key := nttPermKey{logN, galEl}
	if v, ok := nttPermCache.Load(key); ok {
		return v.([]int)
	}
	n := 1 << uint(logN)
	mask := uint64(2*n - 1)
	perm := make([]int, n)
	for i := 0; i < n; i++ {
		// exponent at output slot brv(i) is 2i+1; source exponent g·(2i+1).
		src := (galEl * uint64(2*i+1)) & mask
		j := int((src - 1) / 2)
		perm[bitrev(i, logN)] = bitrev(j, logN)
	}
	nttPermCache.Store(key, perm)
	return perm
}

// PermuteNTT applies out[i] = a[perm[i]] on the given limbs of p (NTT
// domain). a and out must not alias.
func (r *Ring) PermuteNTT(limbs []int, a *Poly, perm []int, out *Poly) {
	r.forLimbs(limbs, func(li int) {
		w := r.SubRings[li].Width()
		src := a.Coeffs[li]
		dst := out.Coeffs[li]
		if w == 1 {
			for i, pi := range perm {
				dst[i] = src[pi]
			}
			return
		}
		for i, pi := range perm {
			dst[2*i] = src[2*pi]
			dst[2*i+1] = src[2*pi+1]
		}
	})
}
