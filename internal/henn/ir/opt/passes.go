package opt

import (
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"cnnhe/internal/henn/ir"
)

// ---------------------------------------------------------------- cse --

// passCSE hash-conses ops: two ops with the same kind, the same
// (already-deduplicated) producers, the same rotation/drop/weight
// attributes and bit-identical plaintext content compute the same
// ciphertext, so later ones collapse onto the first. Exact for every
// kind except OpEncrypt, which is never merged: each encrypt is a
// fresh-randomness PRNG call and the prologue's call order is part of
// the bit-parity contract with the legacy interpreter.
//
// Hoisted and standalone rotations are kept apart (the hoisted-ness
// flag is in the key): RotateHoisted and Rotate use different
// key-switch algorithms with different rounding, so merging across
// would change the consumer's bits.
func passCSE(g *ir.Graph, par Params, exact bool) (*ir.Graph, error) {
	b := newBuilder(g)
	seen := map[string][]int{} // key → candidate new op ids (hash buckets)
	for i := range g.Ops {
		op := g.Ops[i]
		if op.Kind == ir.OpEncrypt {
			b.carry(i)
			continue
		}
		key := cseKey(b, op)
		merged := false
		for _, cand := range seen[key] {
			if plainEqual(b.ops[cand].Plain, op.Plain) {
				b.alias(i, cand)
				merged = true
				break
			}
		}
		if merged {
			continue
		}
		seen[key] = append(seen[key], b.carry(i))
	}
	return b.finish(par)
}

func cseKey(b *builder, op ir.Op) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d|", op.Kind)
	for _, a := range op.Args {
		fmt.Fprintf(&sb, "%d,", b.arg(a))
	}
	hoisted := op.Kind == ir.OpRotate && op.Hoist >= 0
	fmt.Fprintf(&sb, "|k=%d h=%v d=%d s=%x w=%v", op.K, hoisted, op.Drop,
		math.Float64bits(op.PtScale), op.Weights)
	if op.Plain != nil {
		fmt.Fprintf(&sb, " p=%d/%x", len(op.Plain), plainHash(op.Plain))
	}
	return sb.String()
}

func plainHash(v []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range v {
		bits := math.Float64bits(x)
		for i := range buf {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// plainEqual guards hash-bucket collisions with a full bit compare.
func plainEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// --------------------------------------------------------------- fold --

// passFold folds plaintext constants. The exact subset drops AddPlain
// ops whose operand is all zeros (the encoding of an exact zero is the
// zero polynomial, so the add is a bit-identity). In full mode it also
// pre-combines single-use AddPlain∘AddPlain chains into one add of
// v1+v2 and MulPlain∘MulPlain chains into one product by v1⊙v2 at
// scale s1·s2 — same value, but one encoding rounding instead of two,
// so it is tolerance-class and skipped under Options.Exact. Runs to a
// fixpoint so longer chains collapse over iterations.
func passFold(g *ir.Graph, par Params, exact bool) (*ir.Graph, error) {
	for iter := 0; iter < 8; iter++ {
		next, changed, err := foldOnce(g, par, exact)
		if err != nil {
			return nil, err
		}
		g = next
		if !changed {
			return g, nil
		}
	}
	return g, nil
}

func foldOnce(g *ir.Graph, par Params, exact bool) (*ir.Graph, bool, error) {
	use := useCounts(g)
	outs := stageOutSet(g)
	elide := map[int]bool{}    // all-zero AddPlain → alias to its arg
	absorbed := map[int]bool{} // inner chain op folded into its consumer
	for i := range g.Ops {
		op := &g.Ops[i]
		if op.Kind == ir.OpAddPlain && allZero(op.Plain) {
			elide[i] = true
			continue
		}
		if exact || (op.Kind != ir.OpAddPlain && op.Kind != ir.OpMulPlain) {
			continue
		}
		a := op.Args[0]
		inner := &g.Ops[a]
		// One link per iteration: a chain A→B→C merges A into B now and
		// the result into C on the next fixpoint round. The inner op must
		// not itself be absorbing something this round (!absorbed of ITS
		// arg — an absorber needs to stay emitted to receive the merge)
		// and must not be a recorded stage output (absorbed ops get no
		// remap entry, so a stage row pointing at one would dangle).
		if inner.Kind == op.Kind && use[a] == 1 &&
			!elide[a] && !absorbed[a] && !outs[a] &&
			!absorbed[inner.Args[0]] &&
			len(inner.Plain) == len(op.Plain) {
			absorbed[a] = true
		}
	}
	if len(elide) == 0 && len(absorbed) == 0 {
		return g, false, nil
	}
	b := newBuilder(g)
	for i := range g.Ops {
		op := g.Ops[i]
		if elide[i] {
			b.alias(i, b.arg(op.Args[0]))
			continue
		}
		if absorbed[i] {
			continue // merged into its unique consumer below
		}
		if (op.Kind == ir.OpAddPlain || op.Kind == ir.OpMulPlain) && absorbed[op.Args[0]] {
			inner := g.Ops[op.Args[0]]
			merged := make([]float64, len(op.Plain))
			if op.Kind == ir.OpAddPlain {
				for j := range merged {
					merged[j] = inner.Plain[j] + op.Plain[j]
				}
			} else {
				for j := range merged {
					merged[j] = inner.Plain[j] * op.Plain[j]
				}
				op.PtScale = inner.PtScale * op.PtScale
			}
			op.Plain = merged
			op.PlainKey = "" // derived content: dedup by digest, not name
			op.Args = []int{b.arg(inner.Args[0])}
			b.remap[i] = b.emit(op)
			continue
		}
		b.carry(i)
	}
	next, err := b.finish(par)
	return next, true, err
}

func allZero(v []float64) bool {
	for _, x := range v {
		if x != 0 {
			return false
		}
	}
	return true
}

// ------------------------------------------------------------- replan --

// passReplan merges hoisted rotations that share a source ciphertext
// into one fan-out group, regardless of which stage's RotateMany they
// came from: one key-switch decomposition of the source then serves
// every rotation of it in the graph (double-hoisting). Bit-exact:
// grouped and singleton hoisted rotations produce identical
// ciphertexts per k (the decomposition depends only on the source),
// verified empirically on both backends by
// TestRotateHoistedGroupingBitIdentical. Standalone rotations
// (Hoist = -1) are left alone — absorbing them would switch them to
// the hoisted key-switch algorithm and change their bits.
func passReplan(g *ir.Graph, par Params, exact bool) (*ir.Graph, error) {
	b := newBuilder(g)
	for i := range g.Ops {
		op := g.Ops[i]
		if op.Kind == ir.OpRotate && op.Hoist >= 0 {
			src := b.arg(op.Args[0])
			op.Args = []int{src}
			op.Hoist = src // tag by source: finish merges same-source groups
			b.remap[i] = b.emit(op)
			continue
		}
		b.carry(i)
	}
	return b.finish(par)
}

// ------------------------------------------------------------ rescale --

// passRescale sinks level maintenance past sums (lazy rescale): an
// Add/Recombine whose ciphertext args are all single-use OpRescale
// (resp. OpDropLevel with one shared Drop) over same-level inputs is
// rewritten to sum the unrescaled inputs and apply one trailing
// Rescale/DropLevel to the whole reduction tree. DropLevel-sinking is
// bit-exact (modulus truncation commutes with componentwise addition)
// and runs in every mode; Rescale-sinking rounds once after the sum
// instead of once per addend, so it is tolerance-class and skipped
// under Options.Exact. When a sunk op was a recorded stage output, the
// stage row is re-pointed at the trailing op (same level, matching
// scale) — the executor supports several stages sharing one output op.
// Runs to a fixpoint so cascaded reduction trees keep sinking.
func passRescale(g *ir.Graph, par Params, exact bool) (*ir.Graph, error) {
	for iter := 0; iter < 8; iter++ {
		next, changed, err := rescaleOnce(g, par, exact)
		if err != nil {
			return nil, err
		}
		g = next
		if !changed {
			return g, nil
		}
	}
	return g, nil
}

func rescaleOnce(g *ir.Graph, par Params, exact bool) (*ir.Graph, bool, error) {
	use := useCounts(g)
	type sink struct {
		kind ir.Kind // trailing op kind (OpRescale or OpDropLevel)
		drop int
	}
	plans := map[int]sink{} // sum op id → trailing descriptor
	sunk := map[int]bool{}  // arg op ids consumed by a planned sum
	for i := range g.Ops {
		op := &g.Ops[i]
		if op.Kind != ir.OpAdd && op.Kind != ir.OpRecombine {
			continue
		}
		kind, drop := ir.Kind(-1), 0
		lvl, scale := 0, 0.0
		ok := true
		for j, a := range op.Args {
			ao := &g.Ops[a]
			if use[a] != 1 || sunk[a] {
				ok = false
				break
			}
			switch ao.Kind {
			case ir.OpRescale:
				if exact {
					ok = false // one rounding instead of many: tolerance-class
				}
			case ir.OpDropLevel:
			default:
				ok = false
			}
			if !ok {
				break
			}
			in := &g.Ops[ao.Args[0]]
			if j == 0 {
				kind, drop = ao.Kind, ao.Drop
				lvl, scale = in.Level, in.Scale
			} else if ao.Kind != kind || ao.Drop != drop ||
				in.Level != lvl || !scaleClose(in.Scale, scale) {
				ok = false
			}
			if !ok {
				break
			}
		}
		if !ok || kind == ir.Kind(-1) {
			continue
		}
		plans[i] = sink{kind: kind, drop: drop}
		for _, a := range op.Args {
			sunk[a] = true
		}
	}
	if len(plans) == 0 {
		return g, false, nil
	}
	b := newBuilder(g)
	for i := range g.Ops {
		if sunk[i] {
			continue // re-emitted as the trailing op of its sum
		}
		pl, planned := plans[i]
		if !planned {
			b.carry(i)
			continue
		}
		op := g.Ops[i]
		args := make([]int, len(op.Args))
		for j, a := range op.Args {
			args[j] = b.arg(g.Ops[a].Args[0])
		}
		sum := b.emit(ir.Op{Kind: op.Kind, Args: args, Weights: op.Weights, Stage: op.Stage})
		trail := b.emit(ir.Op{Kind: pl.kind, Args: []int{sum}, Drop: pl.drop, Stage: op.Stage})
		b.alias(i, trail)
		for _, a := range op.Args {
			b.alias(a, trail) // stage rows on a sunk op follow the trailing op
		}
	}
	next, err := b.finish(par)
	return next, true, err
}

// --------------------------------------------------------------- fuse --

// passFuse collapses reduction trees into fused linear combinations: a
// tree of single-use, non-stage-output Add/Recombine ops becomes one
// OpRecombine over the tree's leaves with the accumulated integer
// weights, which the executor hands to the engine as a single
// ir.Recombiner call. Bit-exact: ciphertext addition is componentwise
// modular addition (associative) and MulInt distributes over it
// exactly, so any re-association computes identical residues. Roots
// with fewer than 3 leaves, a non-1 leading weight, or weight overflow
// are left alone.
func passFuse(g *ir.Graph, par Params, exact bool) (*ir.Graph, error) {
	use := useCounts(g)
	outs := stageOutSet(g)
	isSum := func(i int) bool {
		k := g.Ops[i].Kind
		return k == ir.OpAdd || k == ir.OpRecombine
	}
	// expandable: folded into the enclosing tree when reached from a
	// sum parent (its unique consumer, by use==1).
	expandable := func(i int) bool { return isSum(i) && use[i] == 1 && !outs[i] }

	// Roots are sums that no parent will absorb.
	consumer := make([]int, len(g.Ops))
	for i := range consumer {
		consumer[i] = -1
	}
	for i := range g.Ops {
		for _, a := range g.Ops[i].Args {
			if use[a] == 1 {
				consumer[a] = i
			}
		}
	}
	type plan struct {
		leaves  []int
		weights []int64
	}
	plans := map[int]plan{}
	absorbed := map[int]bool{}
	for i := range g.Ops {
		if !isSum(i) {
			continue
		}
		if expandable(i) && consumer[i] >= 0 && isSum(consumer[i]) {
			continue // interior node of some root's tree
		}
		var pl plan
		interior := []int{}
		ok := true
		var collect func(n int, w int64)
		collect = func(n int, w int64) {
			if !ok {
				return
			}
			if n != i && expandable(n) {
				interior = append(interior, n)
			} else if n != i {
				pl.leaves = append(pl.leaves, n)
				pl.weights = append(pl.weights, w)
				return
			}
			op := &g.Ops[n]
			for j, a := range op.Args {
				wj := w
				if op.Kind == ir.OpRecombine {
					wj = mulInt64(w, op.Weights[j], &ok)
				}
				collect(a, wj)
			}
		}
		collect(i, 1)
		if !ok || len(pl.leaves) < 3 || pl.weights[0] != 1 {
			continue
		}
		plans[i] = pl
		for _, n := range interior {
			absorbed[n] = true
		}
	}
	if len(plans) == 0 {
		return g, nil
	}
	b := newBuilder(g)
	for i := range g.Ops {
		if absorbed[i] {
			continue
		}
		if pl, fused := plans[i]; fused {
			args := make([]int, len(pl.leaves))
			for j, l := range pl.leaves {
				args[j] = b.arg(l)
			}
			b.alias(i, b.emit(ir.Op{
				Kind: ir.OpRecombine, Args: args, Weights: pl.weights,
				Stage: g.Ops[i].Stage,
			}))
			continue
		}
		b.carry(i)
	}
	return b.finish(par)
}

// mulInt64 multiplies with overflow detection (clears *ok on overflow).
func mulInt64(a, b int64, ok *bool) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	c := a * b
	if c/b != a {
		*ok = false
	}
	return c
}

// ---------------------------------------------------------------- dce --

// passDCE drops ops unreachable from the graph output and the recorded
// stage outputs. Encrypt ops are always kept: the prologue's
// fresh-randomness call order is part of the bit-parity contract, and
// every op downstream of an encrypt is deterministic, so removing
// unreachable non-encrypt ops cannot change any surviving bit.
func passDCE(g *ir.Graph, par Params, exact bool) (*ir.Graph, error) {
	keep := make([]bool, len(g.Ops))
	var mark func(int)
	mark = func(i int) {
		if keep[i] {
			return
		}
		keep[i] = true
		for _, a := range g.Ops[i].Args {
			mark(a)
		}
	}
	if g.Output >= 0 {
		mark(g.Output)
	}
	for _, st := range g.Stages {
		if st.Out >= 0 {
			mark(st.Out)
		}
	}
	for i := range g.Ops {
		if g.Ops[i].Kind == ir.OpEncrypt {
			keep[i] = true
		}
	}
	b := newBuilder(g)
	for i := range g.Ops {
		if keep[i] {
			b.carry(i)
		}
	}
	return b.finish(par)
}
