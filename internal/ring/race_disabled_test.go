//go:build !race

package ring

// raceEnabled mirrors race_enabled_test.go for non-race builds.
const raceEnabled = false
