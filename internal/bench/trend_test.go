package bench

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeBenchFixture drops a minimal BENCH_*.json into dir. rows is a
// list of (model, backend, chain, mean_ms); version 0 omits the
// schema_version field entirely, like the earliest committed reports.
func writeBenchFixture(t *testing.T, dir, stamp string, version, logN int, rows string) string {
	t.Helper()
	var head string
	if version > 0 {
		head = fmt.Sprintf("\"schema_version\": %d,", version)
	}
	body := fmt.Sprintf(`{
  %s
  "timestamp": %q,
  "logn": %d,
  "rows": [%s]
}`, head, stamp, logN, rows)
	path := filepath.Join(dir, "BENCH_"+strings.ReplaceAll(strings.ReplaceAll(stamp, ":", ""), "-", "")+".json")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func row(model, backend string, chain int, meanMS float64) string {
	return fmt.Sprintf(`{"table":"III","model":%q,"backend":%q,"chain":%d,"n":2,"mean_ms":%g,"p50_ms":%g,"p95_ms":%g,"min_ms":%g,"max_ms":%g}`,
		model, backend, chain, meanMS, meanMS, meanMS, meanMS, meanMS)
}

func TestTrendGatePassesOnImprovingSeries(t *testing.T) {
	dir := t.TempDir()
	// Oldest report predates schema_version (read as v1).
	writeBenchFixture(t, dir, "2026-08-01T00:00:00Z", 0, 11,
		row("CNN1-HE-RNS", "ckks-rns", 13, 12000))
	writeBenchFixture(t, dir, "2026-08-02T00:00:00Z", 3, 11,
		row("CNN1-HE-RNS", "ckks-rns", 13, 11000))
	writeBenchFixture(t, dir, "2026-08-03T00:00:00Z", 4, 11,
		row("CNN1-HE-RNS", "ckks-rns", 13, 10500))

	trend, err := LoadTrend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if trend.Files != 3 {
		t.Fatalf("loaded %d files, want 3", trend.Files)
	}
	pts := trend.Series[TrendKey{Model: "CNN1-HE-RNS", Backend: "ckks-rns", LogN: 11, Chain: 13}]
	if len(pts) != 3 {
		t.Fatalf("series has %d points, want 3 (%+v)", len(pts), trend.Series)
	}
	if pts[0].SchemaVersion != 1 || pts[0].MeanMS != 12000 {
		t.Fatalf("oldest point wrong: %+v", pts[0])
	}
	if regs := trend.Regressions(DefaultRegressionThreshold); len(regs) != 0 {
		t.Fatalf("improving series must pass the gate, got %+v", regs)
	}
}

func TestTrendGateFailsOnRegressedRun(t *testing.T) {
	dir := t.TempDir()
	writeBenchFixture(t, dir, "2026-08-01T00:00:00Z", 3, 11,
		row("CNN1-HE-RNS", "ckks-rns", 13, 10000))
	writeBenchFixture(t, dir, "2026-08-02T00:00:00Z", 3, 11,
		row("CNN1-HE-RNS", "ckks-rns", 13, 10400))
	// Newest run: +30% over the best prior run — well past the 15% gate.
	writeBenchFixture(t, dir, "2026-08-03T00:00:00Z", 4, 11,
		row("CNN1-HE-RNS", "ckks-rns", 13, 13000))

	trend, err := LoadTrend(dir)
	if err != nil {
		t.Fatal(err)
	}
	regs := trend.Regressions(DefaultRegressionThreshold)
	if len(regs) != 1 {
		t.Fatalf("want 1 regression, got %+v", regs)
	}
	r := regs[0]
	if r.BestPrev.MeanMS != 10000 || r.Newest.MeanMS != 13000 {
		t.Fatalf("regression compared wrong points: %+v", r)
	}
	if r.Delta < 0.29 || r.Delta > 0.31 {
		t.Fatalf("delta %.3f, want ~0.30", r.Delta)
	}
	// The +4% middle run against the series is NOT gated: only the
	// newest report is under test.
	if regs := trend.Regressions(0.5); len(regs) != 0 {
		t.Fatalf("+30%% must pass a 50%% threshold, got %+v", regs)
	}
}

func TestTrendDifferentRingDegreesAreSeparateSeries(t *testing.T) {
	dir := t.TempDir()
	// A logn bump makes everything slower; that is a config change, not
	// a regression — mirrors the committed BENCH trajectory.
	writeBenchFixture(t, dir, "2026-08-01T00:00:00Z", 0, 11,
		row("CNN1-HE-RNS", "ckks-rns", 13, 10000))
	writeBenchFixture(t, dir, "2026-08-02T00:00:00Z", 3, 12,
		row("CNN1-HE-RNS", "ckks-rns", 13, 40000))

	trend, err := LoadTrend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(trend.Series) != 2 {
		t.Fatalf("want 2 separate series, got %+v", trend.Series)
	}
	if regs := trend.Regressions(DefaultRegressionThreshold); len(regs) != 0 {
		t.Fatalf("cross-logn comparison must not gate, got %+v", regs)
	}
}

func TestTrendRingParallelRunsAreSeparateSeries(t *testing.T) {
	dir := t.TempDir()
	// A schema-v5 limb-parallel run is faster than the serial history;
	// the next serial run must compare against serial runs only, not
	// read as a false >15% regression against the parallel one.
	writeBenchFixture(t, dir, "2026-08-01T00:00:00Z", 4, 11,
		row("CNN1-HE-RNS", "ckks-rns", 13, 10000))
	parallel := fmt.Sprintf(`{
  "schema_version": 5,
  "timestamp": "2026-08-02T00:00:00Z",
  "logn": 11,
  "ring_parallel": true,
  "rows": [%s]
}`, row("CNN1-HE-RNS", "ckks-rns", 13, 4000))
	if err := os.WriteFile(filepath.Join(dir, "BENCH_par.json"), []byte(parallel), 0o644); err != nil {
		t.Fatal(err)
	}
	writeBenchFixture(t, dir, "2026-08-03T00:00:00Z", 5, 11,
		row("CNN1-HE-RNS", "ckks-rns", 13, 10200))

	trend, err := LoadTrend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(trend.Series) != 2 {
		t.Fatalf("want serial and ring-parallel series, got %+v", trend.Series)
	}
	serial := TrendKey{Model: "CNN1-HE-RNS", Backend: "ckks-rns", LogN: 11, Chain: 13}
	par := serial
	par.RingParallel = true
	if got := len(trend.Series[serial]); got != 2 {
		t.Fatalf("serial series has %d points, want 2", got)
	}
	if got := len(trend.Series[par]); got != 1 {
		t.Fatalf("parallel series has %d points, want 1", got)
	}
	// Newest serial run is +2% over the serial best and +155% over the
	// parallel run — only the in-series comparison may gate.
	if regs := trend.Regressions(DefaultRegressionThreshold); len(regs) != 0 {
		t.Fatalf("cross-ring-mode comparison must not gate, got %+v", regs)
	}
	var sb strings.Builder
	if err := trend.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "| parallel |") || !strings.Contains(sb.String(), "| serial |") {
		t.Fatalf("trend table missing ring column:\n%s", sb.String())
	}
	if got := par.String(); !strings.Contains(got, "ring=parallel") {
		t.Fatalf("parallel key string %q lacks ring marker", got)
	}
}

func TestTrendChainSweepRowsAreSeparateSeries(t *testing.T) {
	dir := t.TempDir()
	// Table IV measures the same model/backend at several chain lengths
	// in ONE report; these must not collapse into a single series.
	rows := row("CNN1-HE-RNS", "ckks-rns", 13, 10000) + "," + row("CNN1-HE-RNS", "ckks-rns", 15, 14000)
	writeBenchFixture(t, dir, "2026-08-01T00:00:00Z", 3, 11, rows)
	writeBenchFixture(t, dir, "2026-08-02T00:00:00Z", 3, 11, rows)

	trend, err := LoadTrend(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(trend.Series) != 2 {
		t.Fatalf("want chain 13 and chain 15 series, got %+v", trend.Series)
	}
	if regs := trend.Regressions(DefaultRegressionThreshold); len(regs) != 0 {
		t.Fatalf("flat series must pass, got %+v", regs)
	}
}

func TestTrendCommittedReportsLoadAndPass(t *testing.T) {
	// The repository's own BENCH trajectory must parse (including the
	// oldest report, which predates schema_version) and pass the gate.
	trend, err := LoadTrend("../..")
	if err != nil {
		t.Fatal(err)
	}
	if trend.Files < 2 {
		t.Skipf("only %d committed BENCH reports", trend.Files)
	}
	if regs := trend.Regressions(DefaultRegressionThreshold); len(regs) != 0 {
		t.Fatalf("committed reports fail the gate: %+v", regs)
	}
	var sb strings.Builder
	if err := trend.Write(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "CNN1-HE-RNS") {
		t.Fatalf("trend table missing committed rows:\n%s", sb.String())
	}
}

func TestTrendEngineCallsJoined(t *testing.T) {
	dir := t.TempDir()
	body := fmt.Sprintf(`{
  "schema_version": 3,
  "timestamp": "2026-08-01T00:00:00Z",
  "logn": 12,
  "rows": [%s],
  "graph_after": {"CNN1/ckks-rns": {"ops": 50, "engine_calls": 40}}
}`, row("CNN1-HE-RNS", "ckks-rns", 13, 8000))
	if err := os.WriteFile(filepath.Join(dir, "BENCH_x.json"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	trend, err := LoadTrend(dir)
	if err != nil {
		t.Fatal(err)
	}
	pts := trend.Series[TrendKey{Model: "CNN1-HE-RNS", Backend: "ckks-rns", LogN: 12, Chain: 13}]
	if len(pts) != 1 || pts[0].EngineCalls != 40 {
		t.Fatalf("engine calls not joined from graph_after: %+v", pts)
	}
	if got := pts[0].MSPerCall(); got != 200 {
		t.Fatalf("ms/call %v, want 200", got)
	}
}

func TestGraphKeyFor(t *testing.T) {
	cases := map[[2]string]string{
		{"CNN1-HE-RNS", "ckks-rns"}: "CNN1/ckks-rns",
		{"CNN1-HE", "ckks-big"}:     "CNN1/ckks-big",
		{"CNN2-HE", "ckks-big"}:     "CNN2/ckks-big",
		{"CNN2", "ckks-rns"}:        "CNN2/ckks-rns",
	}
	for in, want := range cases {
		if got := graphKeyFor(in[0], in[1]); got != want {
			t.Errorf("graphKeyFor(%q, %q) = %q, want %q", in[0], in[1], got, want)
		}
	}
}
