// Package ir defines the explicit homomorphic op-graph the henn compiler
// lowers its stages to, and the engine contract the graph executes
// against.
//
// A Graph is a flat, topologically ordered list of typed ops
// (Encrypt/Rotate/MulPlain/AddPlain/Add/MulRelin/Rescale/DropLevel/
// Recombine) with data-dependency edges expressed as producer op IDs.
// Because CKKS level and scale propagation are deterministic functions of
// the op sequence, every op carries its statically inferred result
// (level, scale) — computed once at lowering time with the same float64
// arithmetic the engines use at runtime, so the inference is exact, not
// an approximation. That is what makes ahead-of-time plaintext encoding
// possible: a MulPlain/AddPlain operand can be encoded at its exact
// (level, scale) before any ciphertext exists.
//
// The package deliberately has no dependency on the engine
// implementations: Ct and Pt are opaque handles (aliases of any), and
// Engine is the structural interface both backends, the guard middleware,
// and the fault injector satisfy.
package ir

import (
	"fmt"
	"math"
)

// Ct is an opaque ciphertext handle owned by an Engine.
type Ct = any

// Pt is an opaque pre-encoded plaintext handle owned by an Engine (see
// Engine.EncodeVecsAt).
type Pt = any

// PlainSpec describes one plaintext vector to pre-encode: the slot values
// and the exact (level, scale) the encoding must target.
type PlainSpec struct {
	Values []float64
	Level  int
	Scale  float64
}

// Engine abstracts the CKKS backends behind the operations compiled plans
// and lowered graphs need. The first block mirrors the historical eager
// interface (still used by the legacy Stage.Eval oracle); the final three
// methods are the ahead-of-time encoding contract the executor's hot path
// uses instead of the lazy per-op cache.
type Engine interface {
	// Name identifies the backend ("ckks-rns" or "ckks-big").
	Name() string
	// Slots returns the SIMD width N/2.
	Slots() int
	// MaxLevel returns the top ciphertext level L.
	MaxLevel() int
	// Scale returns the default plaintext scale Δ.
	Scale() float64
	// QiFloat returns the level's prime as a float64.
	QiFloat(level int) float64

	// EncryptVec encrypts values (length ≤ Slots) at the top level and
	// default scale.
	EncryptVec(values []float64) Ct
	// DecryptVec decrypts to real slot values.
	DecryptVec(ct Ct) []float64

	// Level returns the ciphertext level.
	Level(ct Ct) int
	// ScaleOf returns the ciphertext scale.
	ScaleOf(ct Ct) float64

	// Add returns a + b (same level and scale).
	Add(a, b Ct) Ct
	// AddPlainVec adds the plaintext vector encoded at the ciphertext's
	// exact level and scale.
	AddPlainVec(ct Ct, v []float64) Ct
	// MulPlainVecAtScale multiplies by the plaintext vector encoded at the
	// given scale.
	MulPlainVecAtScale(ct Ct, v []float64, scale float64) Ct
	// MulPlainVecCached is MulPlainVecAtScale for vectors that are constant
	// across inferences (model weights): the encoded plaintext is cached
	// under (key, level, scale). Safe for concurrent use.
	MulPlainVecCached(ct Ct, key string, v []float64, scale float64) Ct
	// AddPlainVecCached is AddPlainVec with the same caching contract.
	AddPlainVecCached(ct Ct, key string, v []float64) Ct
	// MulRelin returns a·b relinearized.
	MulRelin(a, b Ct) Ct
	// MulInt multiplies by an exact integer, scale unchanged.
	MulInt(ct Ct, n int64) Ct
	// Rescale divides by the current level's prime.
	Rescale(ct Ct) Ct
	// DropLevel discards n levels.
	DropLevel(ct Ct, n int) Ct
	// Rotate rotates slots left by k (k = 0 returns the input unchanged).
	Rotate(ct Ct, k int) Ct
	// RotateMany returns rotations by every k in ks, using hoisting
	// (decompose/lift once, rotate many) where the backend supports it.
	RotateMany(ct Ct, ks []int) map[int]Ct

	// EncodeVecsAt encodes every spec at its exact (level, scale) and
	// returns opaque plaintext handles in spec order. Called once per
	// prepared graph, ahead of any inference.
	EncodeVecsAt(specs []PlainSpec) []Pt
	// MulPlainPt multiplies by a pre-encoded plaintext whose level matches
	// the ciphertext's; the scales multiply.
	MulPlainPt(ct Ct, pt Pt) Ct
	// AddPlainPt adds a pre-encoded plaintext at the ciphertext's exact
	// level and scale.
	AddPlainPt(ct Ct, pt Pt) Ct
}

// Recombiner is an optional Engine extension: a fused integer linear
// combination Σᵢ Weights[i]·args[i] (Weights[0] = 1) evaluated in one
// engine call instead of a MulInt/Add chain. Implementations must be
// bit-identical to the chain acc = args[0]; acc = Add(acc,
// MulInt(args[i], w)) with the MulInt elided for w = 1 — modular
// addition is exact, so any implementation that accumulates the same
// residues qualifies. The executor uses it for OpRecombine when the
// engine provides it.
type Recombiner interface {
	Recombine(args []Ct, weights []int64) Ct
}

// Kind enumerates the op taxonomy of a lowered graph.
type Kind int

const (
	// OpEncrypt encrypts input vector InputIdx at the top level.
	OpEncrypt Kind = iota
	// OpRotate rotates Args[0] left by K (optionally inside a hoist group).
	OpRotate
	// OpMulPlain multiplies Args[0] by Plain encoded at (level, PtScale).
	OpMulPlain
	// OpAddPlain adds Plain encoded at Args[0]'s exact level and scale.
	OpAddPlain
	// OpAdd adds Args[0] and Args[1] (same level and scale).
	OpAdd
	// OpMulRelin multiplies Args[0] by Args[1] and relinearizes.
	OpMulRelin
	// OpRescale divides Args[0] by its level's prime.
	OpRescale
	// OpDropLevel discards Drop levels of Args[0].
	OpDropLevel
	// OpRecombine computes Σᵢ Weights[i]·Args[i] left-to-right with exact
	// integer weights (Weights[0] must be 1): the Fig. 5 residue/digit
	// recomposition.
	OpRecombine
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case OpEncrypt:
		return "Encrypt"
	case OpRotate:
		return "Rotate"
	case OpMulPlain:
		return "MulPlain"
	case OpAddPlain:
		return "AddPlain"
	case OpAdd:
		return "Add"
	case OpMulRelin:
		return "MulRelin"
	case OpRescale:
		return "Rescale"
	case OpDropLevel:
		return "DropLevel"
	case OpRecombine:
		return "Recombine"
	}
	return fmt.Sprintf("ir.Kind(%d)", int(k))
}

// Op is one node of the lowered graph. Args are producer op IDs (always
// smaller than ID: the op list is topologically ordered by construction).
type Op struct {
	ID   int
	Kind Kind
	Args []int

	// InputIdx selects the run's input vector (OpEncrypt only).
	InputIdx int
	// K is the rotation amount (OpRotate).
	K int
	// Hoist groups OpRotate nodes sharing one key-switch decomposition of
	// the same input; -1 for a standalone rotation. Index into Graph.Hoists.
	Hoist int
	// Plain is the plaintext operand vector (OpMulPlain/OpAddPlain).
	Plain []float64
	// PlainKey identifies a model-constant plaintext for encode dedup
	// ("" when the vector is not a reusable constant).
	PlainKey string
	// PtScale is the encode scale of the OpMulPlain operand (OpAddPlain
	// operands always encode at the ciphertext's scale).
	PtScale float64
	// Drop is the level count (OpDropLevel).
	Drop int
	// Weights are the per-arg integer weights (OpRecombine).
	Weights []int64

	// Stage indexes Graph.Stages.
	Stage int

	// Level and Scale are the statically inferred result metadata.
	Level int
	Scale float64
}

// StageInfo names one pipeline stage of the graph, mirroring the legacy
// interpreter's reporting contract.
type StageInfo struct {
	// Name is the stage label announced to StageAware engines and used in
	// Report rows ("encrypt", "stage 0 (…)", "rns parts", …).
	Name string
	// Out is the op whose result is the stage's reported ciphertext
	// (-1 when the stage has no reportable output).
	Out int
	// Record marks stages that get a Report row (encrypt stages do not,
	// matching the legacy interpreter).
	Record bool
}

// Graph is a lowered plan: a topologically ordered op list plus the
// stage/hoist structure the executor needs.
type Graph struct {
	// Slots is the SIMD width the graph was lowered for.
	Slots int
	// Inputs is the number of input vectors (OpEncrypt.InputIdx range).
	Inputs int
	// Ops in topological (and legacy-interpreter call) order.
	Ops []Op
	// Output is the op producing the final ciphertext.
	Output int
	// Stages in evaluation order.
	Stages []StageInfo
	// Hoists maps hoist group ID to member op IDs (all OpRotate over the
	// same argument).
	Hoists [][]int
}

// Validate checks structural invariants: topological order, argument
// arity, stage/hoist/input index ranges, and sane inferred metadata.
func (g *Graph) Validate() error {
	if g.Inputs <= 0 {
		return fmt.Errorf("ir: graph has %d inputs", g.Inputs)
	}
	if g.Output < 0 || g.Output >= len(g.Ops) {
		return fmt.Errorf("ir: output op %d out of range", g.Output)
	}
	arity := func(k Kind) (min, max int) {
		switch k {
		case OpEncrypt:
			return 0, 0
		case OpAdd, OpMulRelin:
			return 2, 2
		case OpRecombine:
			return 1, 1 << 30
		default:
			return 1, 1
		}
	}
	for i, op := range g.Ops {
		if op.ID != i {
			return fmt.Errorf("ir: op %d has ID %d", i, op.ID)
		}
		lo, hi := arity(op.Kind)
		if len(op.Args) < lo || len(op.Args) > hi {
			return fmt.Errorf("ir: op %d (%s) has %d args", i, op.Kind, len(op.Args))
		}
		for _, a := range op.Args {
			if a < 0 || a >= i {
				return fmt.Errorf("ir: op %d (%s) uses arg %d out of topological order", i, op.Kind, a)
			}
		}
		if op.Stage < 0 || op.Stage >= len(g.Stages) {
			return fmt.Errorf("ir: op %d stage %d out of range", i, op.Stage)
		}
		if op.Level < 0 {
			return fmt.Errorf("ir: op %d (%s) at negative level %d", i, op.Kind, op.Level)
		}
		if op.Scale <= 0 || math.IsNaN(op.Scale) || math.IsInf(op.Scale, 0) {
			return fmt.Errorf("ir: op %d (%s) has non-finite scale %v", i, op.Kind, op.Scale)
		}
		switch op.Kind {
		case OpEncrypt:
			if op.InputIdx < 0 || op.InputIdx >= g.Inputs {
				return fmt.Errorf("ir: op %d encrypts input %d of %d", i, op.InputIdx, g.Inputs)
			}
		case OpRotate:
			if op.K == 0 {
				return fmt.Errorf("ir: op %d rotates by 0 (should be elided)", i)
			}
			if op.Hoist != -1 && (op.Hoist < 0 || op.Hoist >= len(g.Hoists)) {
				return fmt.Errorf("ir: op %d hoist group %d out of range", i, op.Hoist)
			}
		case OpMulPlain:
			if op.PtScale <= 0 {
				return fmt.Errorf("ir: op %d MulPlain with scale %v", i, op.PtScale)
			}
			if op.Plain == nil {
				return fmt.Errorf("ir: op %d MulPlain without operand", i)
			}
		case OpAddPlain:
			if op.Plain == nil {
				return fmt.Errorf("ir: op %d AddPlain without operand", i)
			}
		case OpRecombine:
			if len(op.Weights) != len(op.Args) {
				return fmt.Errorf("ir: op %d recombines %d args with %d weights", i, len(op.Args), len(op.Weights))
			}
			if op.Weights[0] != 1 {
				return fmt.Errorf("ir: op %d recombine weight[0] = %d, want 1", i, op.Weights[0])
			}
		}
	}
	for h, members := range g.Hoists {
		if len(members) == 0 {
			return fmt.Errorf("ir: empty hoist group %d", h)
		}
		arg := -1
		for _, m := range members {
			if m < 0 || m >= len(g.Ops) {
				return fmt.Errorf("ir: hoist group %d member %d out of range", h, m)
			}
			op := g.Ops[m]
			if op.Kind != OpRotate || op.Hoist != h {
				return fmt.Errorf("ir: hoist group %d member %d is not its rotation", h, m)
			}
			if arg == -1 {
				arg = op.Args[0]
			} else if op.Args[0] != arg {
				return fmt.Errorf("ir: hoist group %d rotates different inputs", h)
			}
		}
	}
	for s, st := range g.Stages {
		if st.Out != -1 && (st.Out < 0 || st.Out >= len(g.Ops)) {
			return fmt.Errorf("ir: stage %d output op %d out of range", s, st.Out)
		}
	}
	return nil
}

// Stats summarises a graph for logs and CLIs.
type Stats struct {
	Ops      int
	ByKind   map[Kind]int
	Hoists   int
	Plains   int // plaintext operands to pre-encode
	MinLevel int // lowest level any op result reaches
	// EngineCalls counts the engine interface calls a full-featured
	// backend pays per run: every op is one call, except that a hoist
	// group executes as a single RotateMany and an OpRecombine as a
	// single fused Recombine (see Recombiner).
	EngineCalls int
}

// Stats computes summary counts.
func (g *Graph) Stats() Stats {
	s := Stats{Ops: len(g.Ops), ByKind: map[Kind]int{}, Hoists: len(g.Hoists), MinLevel: 1 << 30}
	grouped := map[int]bool{}
	for _, op := range g.Ops {
		s.ByKind[op.Kind]++
		if op.Plain != nil {
			s.Plains++
		}
		if op.Level < s.MinLevel {
			s.MinLevel = op.Level
		}
		if op.Kind == OpRotate && op.Hoist >= 0 {
			if !grouped[op.Hoist] {
				grouped[op.Hoist] = true
				s.EngineCalls++
			}
			continue
		}
		s.EngineCalls++
	}
	if s.Ops == 0 {
		s.MinLevel = 0
	}
	return s
}

// RotateCalls is the number of rotation engine calls the graph pays:
// one per hoist group (a shared key-switch decomposition) plus one per
// standalone rotation.
func (s Stats) RotateCalls() int {
	// Every non-rotate op is exactly one engine call, so the rotation
	// share is what remains of EngineCalls after subtracting them.
	return s.EngineCalls - (s.Ops - s.ByKind[OpRotate])
}

// String renders the stats on one line.
func (s Stats) String() string {
	return fmt.Sprintf("%d ops / %d engine calls (%d encrypt, %d rotate, %d mulplain, %d addplain, %d add, %d mulrelin, %d rescale, %d drop, %d recombine), %d hoist groups, %d plaintexts, min level %d",
		s.Ops, s.EngineCalls, s.ByKind[OpEncrypt], s.ByKind[OpRotate], s.ByKind[OpMulPlain], s.ByKind[OpAddPlain],
		s.ByKind[OpAdd], s.ByKind[OpMulRelin], s.ByKind[OpRescale], s.ByKind[OpDropLevel],
		s.ByKind[OpRecombine], s.Hoists, s.Plains, s.MinLevel)
}
