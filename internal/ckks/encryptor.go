package ckks

import (
	"math/rand"

	"cnnhe/internal/ring"
)

// Encryptor encrypts plaintexts under a public key (or, for testing and
// key-owner workflows, directly under the secret key).
type Encryptor struct {
	ctx *Context
	pk  *PublicKey
	sk  *SecretKey
	rng *rand.Rand
}

// NewEncryptor returns a public-key encryptor.
func NewEncryptor(ctx *Context, pk *PublicKey, seed int64) *Encryptor {
	return &Encryptor{ctx: ctx, pk: pk, rng: rand.New(rand.NewSource(seed))}
}

// NewSecretKeyEncryptor returns a secret-key encryptor (smaller noise).
func NewSecretKeyEncryptor(ctx *Context, sk *SecretKey, seed int64) *Encryptor {
	return &Encryptor{ctx: ctx, sk: sk, rng: rand.New(rand.NewSource(seed))}
}

// Encrypt encrypts pt (which must be in NTT form).
func (en *Encryptor) Encrypt(pt *Plaintext) *Ciphertext {
	if !pt.IsNTT {
		panic("ckks: plaintext must be in NTT form for encryption")
	}
	r := en.ctx.R
	level := pt.Level
	limbs := r.Limbs(level, false)
	ct := &Ciphertext{
		C0:    r.NewPolyQ(level),
		C1:    r.NewPolyQ(level),
		Level: level,
		Scale: pt.Scale,
	}
	if en.pk != nil {
		// (c0, c1) = v·(pk.B, pk.A) + (m + e0, e1)
		v := r.NewPolyQ(level)
		vec := ring.SampleTernarySparse(en.rng, r.N(), 0.5)
		r.SetCoeffsInt64(limbs, vec, v)
		r.NTT(limbs, v)

		e0 := r.NewPolyQ(level)
		r.SamplePolyGaussian(en.rng, limbs, en.ctx.Params.Sigma, e0)
		r.NTT(limbs, e0)
		e1 := r.NewPolyQ(level)
		r.SamplePolyGaussian(en.rng, limbs, en.ctx.Params.Sigma, e1)
		r.NTT(limbs, e1)

		r.MulCoeffs(limbs, v, en.pk.B, ct.C0)
		r.Add(limbs, ct.C0, e0, ct.C0)
		r.Add(limbs, ct.C0, pt.Value, ct.C0)
		r.MulCoeffs(limbs, v, en.pk.A, ct.C1)
		r.Add(limbs, ct.C1, e1, ct.C1)
		return ct
	}
	// Secret-key encryption: c1 uniform, c0 = −c1·s + m + e.
	r.SampleUniform(en.rng, limbs, ct.C1)
	e := r.NewPolyQ(level)
	r.SamplePolyGaussian(en.rng, limbs, en.ctx.Params.Sigma, e)
	r.NTT(limbs, e)
	r.MulCoeffs(limbs, ct.C1, en.sk.S, ct.C0)
	r.Neg(limbs, ct.C0, ct.C0)
	r.Add(limbs, ct.C0, e, ct.C0)
	r.Add(limbs, ct.C0, pt.Value, ct.C0)
	return ct
}

// Decryptor recovers plaintexts with the secret key.
type Decryptor struct {
	ctx *Context
	sk  *SecretKey
}

// NewDecryptor returns a Decryptor.
func NewDecryptor(ctx *Context, sk *SecretKey) *Decryptor {
	return &Decryptor{ctx: ctx, sk: sk}
}

// DecryptNew returns the plaintext m = c0 + c1·s (NTT form).
func (d *Decryptor) DecryptNew(ct *Ciphertext) *Plaintext {
	r := d.ctx.R
	limbs := r.Limbs(ct.Level, false)
	p := r.NewPolyQ(ct.Level)
	r.MulCoeffs(limbs, ct.C1, d.sk.S, p)
	r.Add(limbs, p, ct.C0, p)
	return &Plaintext{Value: p, Level: ct.Level, Scale: ct.Scale, IsNTT: true}
}
