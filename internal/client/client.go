package client

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"cnnhe/internal/henn/shard"
	"cnnhe/internal/telemetry"
)

// Client talks to a heserve instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:8000".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
	// Retry governs transient-failure handling (see RetryPolicy). Nil
	// means single-attempt calls; New installs DefaultRetryPolicy.
	Retry *RetryPolicy
}

// New returns a client for the server at baseURL with the default retry
// policy installed.
func New(baseURL string) *Client {
	return &Client{
		BaseURL: baseURL,
		HTTP:    &http.Client{Timeout: 5 * time.Minute},
		Retry:   DefaultRetryPolicy(),
	}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// apiError decodes the server's JSON error body into a readable error,
// quoting the server's request ID when present so the failure can be
// chased through the server's logs and /debug/requests.
func apiError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var eb struct {
		Error     string `json:"error"`
		RequestID string `json:"request_id"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		if eb.RequestID != "" {
			return fmt.Errorf("client: server returned %s: %s (request_id %s)", resp.Status, eb.Error, eb.RequestID)
		}
		return fmt.Errorf("client: server returned %s: %s", resp.Status, eb.Error)
	}
	return fmt.Errorf("client: server returned %s", resp.Status)
}

// Info fetches the server's plan/parameter manifest.
func (c *Client) Info(ctx context.Context) (*InfoResponse, error) {
	resp, err := c.doWithRetry(ctx, func() (*http.Request, error) {
		return http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+PathInfo, nil)
	})
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	var info InfoResponse
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return nil, fmt.Errorf("client: decoding info: %w", err)
	}
	return &info, nil
}

// Register uploads the key set's evaluation bundle and returns the
// fingerprint the server stored it under, verifying it matches the
// locally computed content address.
func (c *Client) Register(ctx context.Context, ks *KeySet) (string, error) {
	bundle, err := ks.Bundle()
	if err != nil {
		return "", err
	}
	resp, err := c.doWithRetry(ctx, func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+PathKeys, bytes.NewReader(bundle))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", ContentTypeCKKS)
		return req, nil
	})
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		return "", apiError(resp)
	}
	var rr RegisterResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return "", fmt.Errorf("client: decoding register response: %w", err)
	}
	local, err := ks.Fingerprint()
	if err != nil {
		return "", err
	}
	if rr.Fingerprint != local {
		return "", fmt.Errorf("client: server fingerprint %s != local %s", rr.Fingerprint, local)
	}
	return rr.Fingerprint, nil
}

// ClassifyResult is one encrypted classification round trip, decrypted.
type ClassifyResult struct {
	// Logits are the decrypted outputs, one per class.
	Logits []float64
	// Class is the argmax.
	Class int
	// EvalMillis is the server-reported homomorphic evaluation time.
	EvalMillis float64
	// TraceID is the distributed-trace ID this request ran under
	// (client-generated, echoed by the server); RequestID is the
	// server-side request handle — quote either when chasing the
	// request through server logs or /debug/requests.
	TraceID   string
	RequestID string
}

// classifyConfig tunes ClassifyEncrypted.
type classifyConfig struct {
	encSeed *int64
	man     *shard.Manifest
}

// ClassifyOption configures ClassifyEncrypted.
type ClassifyOption func(*classifyConfig)

// WithEncryptionSeed seeds the encryption randomness — parity tests
// only; production encryptions draw from crypto/rand.
func WithEncryptionSeed(seed int64) ClassifyOption {
	return func(c *classifyConfig) { s := seed; c.encSeed = &s }
}

// WithShardManifest splits the image by the server's advertised shard
// layout (Info().Manifest()) and ships one ciphertext frame per shard,
// back to back, in the request body. Required when Info().Shards > 1.
func WithShardManifest(man shard.Manifest) ClassifyOption {
	return func(c *classifyConfig) { m := man; c.man = &m }
}

// ClassifyEncrypted runs the full encrypted round trip: encrypt the
// image under the client's public key, ship the ciphertext(s) with the
// bundle fingerprint, decrypt the returned encrypted logits locally.
// outputDim comes from Info().OutputDim.
func (c *Client) ClassifyEncrypted(ctx context.Context, ks *KeySet, image []float64, outputDim int, opts ...ClassifyOption) (*ClassifyResult, error) {
	var cfg classifyConfig
	for _, o := range opts {
		o(&cfg)
	}
	fp, err := ks.Fingerprint()
	if err != nil {
		return nil, err
	}
	var body bytes.Buffer
	if cfg.man != nil {
		cts, err := ks.EncryptImageShards(*cfg.man, image, cfg.encSeed)
		if err != nil {
			return nil, err
		}
		for _, ct := range cts {
			if err := ks.Context().WriteCiphertext(&body, ct); err != nil {
				return nil, err
			}
		}
	} else {
		ct, err := ks.EncryptImage(image, cfg.encSeed)
		if err != nil {
			return nil, err
		}
		if err := ks.Context().WriteCiphertext(&body, ct); err != nil {
			return nil, err
		}
	}
	payload := body.Bytes()
	// One trace covers the whole round trip, including a 404 re-register
	// replay — either attempt's server-side spans join to the same ID.
	tc := telemetry.NewTraceContext()
	mkReq := func() (*http.Request, error) {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+PathClassifyEncrypted, bytes.NewReader(payload))
		if err != nil {
			return nil, err
		}
		req.Header.Set("Content-Type", ContentTypeCKKS)
		req.Header.Set(HeaderKeyFingerprint, fp)
		req.Header.Set(HeaderTraceparent, tc.Traceparent())
		return req, nil
	}
	resp, err := c.doWithRetry(ctx, mkReq)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode == http.StatusNotFound {
		// Self-heal: the server no longer knows our bundle (evicted, or
		// restarted without its durable store). Re-register once and
		// replay — the keys never left this process, so no re-keygen.
		resp.Body.Close()
		if _, rerr := c.Register(ctx, ks); rerr != nil {
			return nil, fmt.Errorf("client: re-registering evicted bundle: %w", rerr)
		}
		if resp, err = c.doWithRetry(ctx, mkReq); err != nil {
			return nil, err
		}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	out, err := ks.Context().ReadCiphertext(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("client: decoding result ciphertext: %w", err)
	}
	logits, err := ks.DecryptLogits(out, outputDim)
	if err != nil {
		return nil, err
	}
	res := &ClassifyResult{
		Logits:    logits,
		Class:     argmax(logits),
		TraceID:   tc.TraceIDString(),
		RequestID: resp.Header.Get(HeaderRequestID),
	}
	if ms := resp.Header.Get(HeaderEvalMillis); ms != "" {
		if v, perr := strconv.ParseFloat(ms, 64); perr == nil {
			res.EvalMillis = v
		}
	}
	return res, nil
}

// argmax returns the index of the largest logit (0 on empty).
func argmax(v []float64) int {
	if len(v) == 0 {
		return 0
	}
	best, bestV := 0, v[0]
	for i, x := range v {
		if x > bestV {
			best, bestV = i, x
		}
	}
	return best
}
