package nn

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"cnnhe/internal/tensor"
)

// numericalGradCheck verifies analytic parameter and input gradients of a
// layer against central finite differences, using a random quadratic loss
// L = Σ w_i·y_i so that ∂L/∂y is constant.
func numericalGradCheck(t *testing.T, layer Layer, input *tensor.Tensor, tol float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	forward := func() float64 {
		out := layer.Forward([]*tensor.Tensor{input.Clone()}, true)[0]
		// Weighted sum loss with fixed weights.
		wRng := rand.New(rand.NewSource(7))
		l := 0.0
		for _, v := range out.Data {
			l += v * (wRng.Float64()*2 - 1)
		}
		return l
	}

	// Analytic gradients.
	out := layer.Forward([]*tensor.Tensor{input.Clone()}, true)[0]
	wRng := rand.New(rand.NewSource(7))
	g := tensor.New(out.Shape...)
	for i := range g.Data {
		g.Data[i] = wRng.Float64()*2 - 1
	}
	for _, p := range layer.Params() {
		p.ZeroGrad()
	}
	dx := layer.Backward([]*tensor.Tensor{g})[0]

	const h = 1e-5
	// Parameter gradients.
	for _, p := range layer.Params() {
		for trial := 0; trial < 8; trial++ {
			i := rng.Intn(len(p.Data))
			orig := p.Data[i]
			p.Data[i] = orig + h
			lp := forward()
			p.Data[i] = orig - h
			lm := forward()
			p.Data[i] = orig
			want := (lp - lm) / (2 * h)
			if math.Abs(want-p.Grad[i]) > tol*(1+math.Abs(want)) {
				t.Fatalf("%s param %s[%d]: analytic %g numeric %g", layer.Name(), p.Name, i, p.Grad[i], want)
			}
		}
	}
	// Input gradients.
	for trial := 0; trial < 8; trial++ {
		i := rng.Intn(input.Len())
		orig := input.Data[i]
		input.Data[i] = orig + h
		lp := forward()
		input.Data[i] = orig - h
		lm := forward()
		input.Data[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(want-dx.Data[i]) > tol*(1+math.Abs(want)) {
			t.Fatalf("%s input[%d]: analytic %g numeric %g", layer.Name(), i, dx.Data[i], want)
		}
	}
}

func randInput(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func TestConv2DGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	layer := NewConv2D(rng, 2, 3, 3, 2, 1, 7, 7)
	numericalGradCheck(t, layer, randInput(rng, 2, 7, 7), 1e-4)
}

func TestDenseGradients(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	layer := NewDense(rng, 12, 5)
	numericalGradCheck(t, layer, randInput(rng, 12), 1e-4)
}

func TestSLAFGradientsShared(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	layer := NewSLAF(3, 1)
	layer.FitReLU(3)
	numericalGradCheck(t, layer, randInput(rng, 10), 1e-4)
}

func TestSLAFGradientsPerChannel(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	layer := NewSLAF(3, 2)
	layer.FitReLU(3)
	numericalGradCheck(t, layer, randInput(rng, 2, 4, 4), 1e-4)
}

func TestReLUForwardBackward(t *testing.T) {
	layer := NewReLU()
	x := tensor.FromSlice([]float64{-1, 0, 2, -3}, 4)
	y := layer.Forward([]*tensor.Tensor{x}, true)[0]
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Fatalf("relu forward %v", y.Data)
		}
	}
	g := tensor.FromSlice([]float64{1, 1, 1, 1}, 4)
	dx := layer.Backward([]*tensor.Tensor{g})[0]
	wantG := []float64{0, 0, 1, 0}
	for i := range wantG {
		if dx.Data[i] != wantG[i] {
			t.Fatalf("relu backward %v", dx.Data)
		}
	}
}

func TestBatchNormTrainStatistics(t *testing.T) {
	bn := NewBatchNorm2D(1)
	rng := rand.New(rand.NewSource(5))
	batch := make([]*tensor.Tensor, 8)
	for b := range batch {
		batch[b] = randInput(rng, 1, 4, 4)
		for i := range batch[b].Data {
			batch[b].Data[i] = batch[b].Data[i]*3 + 2 // mean 2, std 3
		}
	}
	out := bn.Forward(batch, true)
	// Normalized outputs must have ~zero mean and unit variance.
	var sum, sq float64
	n := 0
	for _, o := range out {
		for _, v := range o.Data {
			sum += v
			sq += v * v
			n++
		}
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("bn output mean %g", mean)
	}
	if math.Abs(variance-1) > 1e-4 {
		t.Fatalf("bn output variance %g", variance)
	}
}

func TestBatchNormGradients(t *testing.T) {
	// Finite-difference check with a 2-sample batch (batch statistics make
	// per-sample checks insufficient, so check the batch loss).
	bn := NewBatchNorm2D(2)
	rng := rand.New(rand.NewSource(6))
	x1 := randInput(rng, 2, 3, 3)
	x2 := randInput(rng, 2, 3, 3)
	wRng := rand.New(rand.NewSource(17))
	w1 := randInputWith(wRng, 2, 3, 3)
	w2 := randInputWith(wRng, 2, 3, 3)
	loss := func() float64 {
		outs := bn.Forward([]*tensor.Tensor{x1.Clone(), x2.Clone()}, true)
		l := 0.0
		for i, v := range outs[0].Data {
			l += v * w1.Data[i]
		}
		for i, v := range outs[1].Data {
			l += v * w2.Data[i]
		}
		return l
	}
	bn.Forward([]*tensor.Tensor{x1.Clone(), x2.Clone()}, true)
	bn.Gamma.ZeroGrad()
	bn.Beta.ZeroGrad()
	dxs := bn.Backward([]*tensor.Tensor{w1.Clone(), w2.Clone()})

	const h = 1e-5
	for trial := 0; trial < 6; trial++ {
		i := rng.Intn(x1.Len())
		orig := x1.Data[i]
		x1.Data[i] = orig + h
		lp := loss()
		x1.Data[i] = orig - h
		lm := loss()
		x1.Data[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(want-dxs[0].Data[i]) > 1e-3*(1+math.Abs(want)) {
			t.Fatalf("bn input grad mismatch: analytic %g numeric %g", dxs[0].Data[i], want)
		}
	}
	for _, p := range []*Param{bn.Gamma, bn.Beta} {
		for trial := 0; trial < 4; trial++ {
			i := rng.Intn(len(p.Data))
			orig := p.Data[i]
			p.Data[i] = orig + h
			lp := loss()
			p.Data[i] = orig - h
			lm := loss()
			p.Data[i] = orig
			want := (lp - lm) / (2 * h)
			if math.Abs(want-p.Grad[i]) > 1e-3*(1+math.Abs(want)) {
				t.Fatalf("bn %s grad mismatch: analytic %g numeric %g", p.Name, p.Grad[i], want)
			}
		}
	}
}

func randInputWith(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	for i := range x.Data {
		x.Data[i] = rng.Float64()*2 - 1
	}
	return x
}

func TestBatchNormInferenceAffine(t *testing.T) {
	bn := NewBatchNorm2D(2)
	bn.RunMean = []float64{1, -2}
	bn.RunVar = []float64{4, 9}
	bn.Gamma.Data = []float64{2, 0.5}
	bn.Beta.Data = []float64{-1, 3}
	scale, shift := bn.InferenceAffine()
	x := tensor.FromSlice([]float64{5, -8}, 2, 1, 1)
	out := bn.Forward([]*tensor.Tensor{x}, false)[0]
	for c := 0; c < 2; c++ {
		want := scale[c]*x.Data[c] + shift[c]
		if math.Abs(out.Data[c]-want) > 1e-9 {
			t.Fatalf("affine form mismatch: %g vs %g", out.Data[c], want)
		}
	}
}

func TestSoftmaxCrossEntropy(t *testing.T) {
	loss, grad := SoftmaxCrossEntropy([]float64{2, 1, 0.1}, 0)
	if loss < 0 {
		t.Fatal("loss must be non-negative")
	}
	sum := 0.0
	for _, g := range grad {
		sum += g
	}
	if math.Abs(sum) > 1e-12 {
		t.Fatalf("softmax gradient must sum to 0, got %g", sum)
	}
	if grad[0] >= 0 {
		t.Fatal("gradient at the true label must be negative")
	}
	// Perfect prediction → tiny loss.
	l2, _ := SoftmaxCrossEntropy([]float64{100, 0, 0}, 0)
	if l2 > 1e-6 {
		t.Fatalf("confident correct prediction should have ~0 loss, got %g", l2)
	}
}

func TestOneCycleSchedule(t *testing.T) {
	o := NewOneCycle(0.1, 100)
	if o.LR(0) >= o.MaxLR/2 {
		t.Fatal("start LR should be far below max")
	}
	peak := 0.0
	peakStep := 0
	for s := 0; s < 100; s++ {
		if lr := o.LR(s); lr > peak {
			peak, peakStep = lr, s
		}
	}
	if math.Abs(peak-0.1) > 1e-6 {
		t.Fatalf("peak %g want 0.1", peak)
	}
	if peakStep < 20 || peakStep > 40 {
		t.Fatalf("peak at step %d, want ≈30 (PctStart=0.3)", peakStep)
	}
	if o.LR(99) > 0.01 {
		t.Fatal("final LR should anneal far below max")
	}
}

func TestPolyFitReLU(t *testing.T) {
	coeffs := PolyFitReLU(3, 3)
	if len(coeffs) != 4 {
		t.Fatalf("want 4 coefficients")
	}
	// The fit should approximate ReLU reasonably within the interval.
	maxErr := 0.0
	for x := -3.0; x <= 3; x += 0.1 {
		y := coeffs[0] + coeffs[1]*x + coeffs[2]*x*x + coeffs[3]*x*x*x
		relu := math.Max(x, 0)
		if e := math.Abs(y - relu); e > maxErr {
			maxErr = e
		}
	}
	if maxErr > 0.5 {
		t.Fatalf("ReLU fit error %g too large", maxErr)
	}
}

func TestSGDMomentumAndFreeze(t *testing.T) {
	p := newParam("w", 1)
	p.Data[0] = 1
	p.Grad[0] = 2
	opt := &SGD{LR: 0.1, Momentum: 0.9}
	opt.Step([]*Param{p}, 1)
	if math.Abs(p.Data[0]-0.8) > 1e-12 {
		t.Fatalf("sgd step wrong: %g", p.Data[0])
	}
	if p.Grad[0] != 0 {
		t.Fatal("gradient not cleared")
	}
	p.Grad[0] = 2
	opt.Step([]*Param{p}, 1) // velocity: 0.9·2+2 = 3.8 → 0.8−0.38
	if math.Abs(p.Data[0]-0.42) > 1e-12 {
		t.Fatalf("momentum step wrong: %g", p.Data[0])
	}
	frozen := newParam("f", 1)
	frozen.Frozen = true
	frozen.Data[0] = 5
	frozen.Grad[0] = 100
	opt.Step([]*Param{frozen}, 1)
	if frozen.Data[0] != 5 {
		t.Fatal("frozen parameter moved")
	}
}

func TestModelArchitectures(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cnn1 := NewCNN1(rng)
	x := randInput(rng, 1, 28, 28)
	out := cnn1.Forward(x)
	if out.Len() != 10 {
		t.Fatalf("cnn1 outputs %d classes", out.Len())
	}
	cnn2 := NewCNN2(rng)
	out = cnn2.Forward(x)
	if out.Len() != 10 {
		t.Fatalf("cnn2 outputs %d classes", out.Len())
	}
	// Fig 3 shapes: conv output 5×13×13 = 845.
	conv := cnn1.Layers[0].(*Conv2D)
	if conv.OutH() != 13 || conv.OutW() != 13 || conv.OutC != 5 {
		t.Fatalf("cnn1 conv shape %dx%dx%d", conv.OutC, conv.OutH(), conv.OutW())
	}
}

func TestReplaceReLUWithSLAF(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m := NewCNN2(rng)
	hm := m.ReplaceReLUWithSLAF(3, 3)
	slafs := 0
	for _, l := range hm.Layers {
		if _, ok := l.(*ReLU); ok {
			t.Fatal("ReLU remains after replacement")
		}
		if s, ok := l.(*SLAF); ok {
			slafs++
			if s.Degree != 3 {
				t.Fatal("wrong SLAF degree")
			}
		}
	}
	if slafs != 3 {
		t.Fatalf("want 3 SLAF layers, got %d", slafs)
	}
	// Per-channel units after convs: 8 and 16; shared after dense.
	if hm.Layers[2].(*SLAF).Units != 8 || hm.Layers[5].(*SLAF).Units != 16 {
		t.Fatal("conv SLAFs should be per-channel")
	}
	if hm.Layers[8].(*SLAF).Units != 1 {
		t.Fatal("dense SLAF should be shared")
	}
	// Weights are shared with the original model (paper: weights fixed).
	if hm.Layers[0].(*Conv2D) != m.Layers[0].(*Conv2D) {
		t.Fatal("conv layers should be shared")
	}
	// Freeze everything but SLAF coefficients.
	hm.Freeze(true)
	for _, l := range hm.Layers {
		_, isSLAF := l.(*SLAF)
		for _, p := range l.Params() {
			if p.Frozen == isSLAF {
				t.Fatalf("freeze flags wrong for %s", p.Name)
			}
		}
	}
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(9))
	m := NewCNN2(rng).ReplaceReLUWithSLAF(3, 3)
	path := filepath.Join(dir, "model.gob")
	if err := m.Save(path, "cnn2"); err != nil {
		t.Fatal(err)
	}
	loaded, arch, err := LoadModel(path)
	if err != nil {
		t.Fatal(err)
	}
	if arch != "cnn2" {
		t.Fatalf("arch %q", arch)
	}
	x := randInput(rng, 1, 28, 28)
	a := m.Forward(x.Clone())
	b := loaded.Forward(x.Clone())
	for i := range a.Data {
		if math.Abs(a.Data[i]-b.Data[i]) > 1e-12 {
			t.Fatalf("loaded model differs at output %d", i)
		}
	}
	if err := m.Save(filepath.Join(dir, "x.gob"), "cnn1"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := LoadModel(filepath.Join(dir, "x.gob")); err == nil {
		t.Fatal("expected shape mismatch error for wrong arch tag")
	}
	os.Remove(path)
}

func TestTrainLearnsToyProblem(t *testing.T) {
	// A linearly separable 2-class toy problem: Train must reach high
	// accuracy quickly, validating the full training loop end to end.
	rng := rand.New(rand.NewSource(10))
	n := 256
	ds := Dataset{}
	for i := 0; i < n; i++ {
		x := tensor.New(4)
		label := rng.Intn(2)
		for j := range x.Data {
			x.Data[j] = rng.NormFloat64()*0.3 + float64(label)*2 - 1
		}
		ds.Images = append(ds.Images, x)
		ds.Labels = append(ds.Labels, label)
	}
	m := &Model{Layers: []Layer{NewDense(rng, 4, 8), NewReLU(), NewDense(rng, 8, 2)}}
	acc := Train(m, ds, TrainConfig{Epochs: 20, BatchSize: 32, MaxLR: 0.1, Momentum: 0.9, Seed: 1})
	if acc < 0.95 {
		t.Fatalf("toy training accuracy %.3f too low", acc)
	}
}
