package faults_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/faults"
	"cnnhe/internal/guard"
	"cnnhe/internal/henn"
	"cnnhe/internal/nn"
)

// tinyModel mirrors the henn test fixture: Conv(1→2, 3×3, s2) → SLAF →
// Flatten → Dense on 8×8 inputs, depth 4.
func tinyModel(seed int64) *nn.Model {
	rng := rand.New(rand.NewSource(seed))
	conv := nn.NewConv2D(rng, 1, 2, 3, 2, 0, 8, 8)
	flat := conv.OutC * conv.OutH() * conv.OutW()
	m := &nn.Model{Layers: []nn.Layer{
		conv,
		nn.NewReLU(),
		nn.NewFlatten(),
		nn.NewDense(rng, flat, 4),
	}}
	hm := m.ReplaceReLUWithSLAF(3, 1)
	for _, l := range hm.Layers {
		if s, ok := l.(*nn.SLAF); ok {
			s.FitReLU(3)
		}
	}
	return hm
}

func testImage(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	img := make([]float64, n)
	for i := range img {
		img[i] = float64(rng.Intn(256))
	}
	return img
}

// TestFaultsDetectedAndClassified drives every injector kind through a
// guarded inference on both backends and asserts the fault is (a)
// detected — inference errors instead of returning logits — and (b)
// classified — the error wraps the kind's dedicated sentinel and carries
// stage/op attribution.
func TestFaultsDetectedAndClassified(t *testing.T) {
	plan, err := henn.Compile(tinyModel(15), 512)
	if err != nil {
		t.Fatal(err)
	}
	img := testImage(3, plan.InputDim)
	params, err := ckks.NewParameters(10, []int{40, 30, 30, 30, 30}, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.CheckDepth(params.MaxLevel()); err != nil {
		t.Fatal(err)
	}
	bigParams, err := ckksbig.FromRNSParameters(params)
	if err != nil {
		t.Fatal(err)
	}

	engines := map[string]func() henn.Engine{
		"rns": func() henn.Engine {
			e, err := henn.NewRNSEngine(params, plan.Rotations(), 501)
			if err != nil {
				t.Fatal(err)
			}
			return e
		},
		"big": func() henn.Engine {
			e, err := henn.NewBigEngine(bigParams, plan.Rotations(), 501)
			if err != nil {
				t.Fatal(err)
			}
			return e
		},
	}

	cases := []struct {
		name   string
		inj    faults.Injection
		target error
		// wantOp is the op the guard should attribute the failure to
		// ("" to skip the check, e.g. for deadline faults that surface at
		// whichever op follows the stall).
		wantOp string
	}{
		{
			name:   "corrupt-limb",
			inj:    faults.Injection{Kind: faults.CorruptLimb, Op: "MulRelin", Seed: 11},
			target: guard.ErrCorruptCiphertext,
			wantOp: "MulRelin",
		},
		{
			name:   "drop-residue",
			inj:    faults.Injection{Kind: faults.DropResidue, Op: "Rescale", Seed: 12},
			target: guard.ErrResidueMissing,
			wantOp: "Rescale",
		},
		{
			name:   "skew-scale",
			inj:    faults.Injection{Kind: faults.SkewScale, Op: "MulPlainPt", SkewFactor: 1.01},
			target: guard.ErrScaleDrift,
			wantOp: "MulPlainPt",
		},
		{
			name:   "panic-op",
			inj:    faults.Injection{Kind: faults.PanicOp, Op: "MulRelin"},
			target: guard.ErrEnginePanic,
			wantOp: "MulRelin",
		},
		{
			name:   "delay-op",
			inj:    faults.Injection{Kind: faults.DelayOp, Delay: 300 * time.Millisecond},
			target: context.DeadlineExceeded,
		},
	}

	for engName, mkEngine := range engines {
		engName, mkEngine := engName, mkEngine
		t.Run(engName, func(t *testing.T) {
			base := mkEngine()
			for _, tc := range cases {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					ctx := context.Background()
					cfg := guard.DefaultConfig()
					cfg.Ctx = ctx
					inj := faults.Wrap(base, tc.inj)
					g := guard.New(inj, cfg)
					if tc.inj.Kind == faults.DelayOp {
						// Pay the one-time lowering/encoding cost before the
						// clock starts: the stall must hit a ciphertext op,
						// not graph preparation.
						if err := plan.Warm(g); err != nil {
							t.Fatal(err)
						}
						var cancel context.CancelFunc
						ctx, cancel = context.WithTimeout(ctx, 50*time.Millisecond)
						defer cancel()
					}

					logits, rep, err := plan.InferCtx(ctx, g, img)
					if err == nil {
						t.Fatalf("fault %v was silently absorbed: logits %v", tc.inj.Kind, logits)
					}
					if !inj.Fired() {
						t.Fatalf("injector never fired (error was %v)", err)
					}
					if !errors.Is(err, tc.target) {
						t.Fatalf("fault %v misclassified: want %v in chain, got %v", tc.inj.Kind, tc.target, err)
					}
					// Every fault class maps to its own sentinel and no other.
					for _, other := range cases {
						if other.target != tc.target && errors.Is(err, other.target) {
							t.Fatalf("error %v also matches %v — classes are not distinct", err, other.target)
						}
					}
					// Guard-detected faults carry op/stage attribution via
					// StageError; deadline faults may instead be caught at
					// the henn stage boundary, where rep.FailedStage is the
					// attribution.
					if tc.wantOp != "" {
						var se *guard.StageError
						if !errors.As(err, &se) {
							t.Fatalf("error %v does not carry a StageError", err)
						}
						if se.Stage == "" {
							t.Fatalf("StageError has no stage attribution: %v", se)
						}
						if se.Op != tc.wantOp {
							t.Fatalf("fault attributed to op %q, want %q", se.Op, tc.wantOp)
						}
					}
					if rep == nil || rep.FailedStage == "" {
						t.Fatalf("report should name the failed stage, got %+v", rep)
					}
				})
			}
		})
	}
}

// TestInjectorDeterminism: the same seed corrupts the same position, so
// two runs of the same injection fail at the same stage and op.
func TestInjectorDeterminism(t *testing.T) {
	plan, err := henn.Compile(tinyModel(15), 512)
	if err != nil {
		t.Fatal(err)
	}
	img := testImage(3, plan.InputDim)
	params, err := ckks.NewParameters(10, []int{40, 30, 30, 30, 30}, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	run := func() *guard.StageError {
		e, err := henn.NewRNSEngine(params, plan.Rotations(), 501)
		if err != nil {
			t.Fatal(err)
		}
		g := guard.New(faults.Wrap(e, faults.Injection{Kind: faults.CorruptLimb, Op: "Rescale", Nth: 2, Seed: 99}), guard.DefaultConfig())
		_, _, ierr := plan.InferCtx(context.Background(), g, img)
		var se *guard.StageError
		if !errors.As(ierr, &se) {
			t.Fatalf("expected StageError, got %v", ierr)
		}
		return se
	}
	a, b := run(), run()
	if a.Stage != b.Stage || a.Op != b.Op || a.Error() != b.Error() {
		t.Fatalf("injection not deterministic: %v vs %v", a, b)
	}
}

// TestInjectorFiresOnce: after delivering its fault the injector becomes
// a transparent passthrough.
func TestInjectorFiresOnce(t *testing.T) {
	plan, err := henn.Compile(tinyModel(15), 512)
	if err != nil {
		t.Fatal(err)
	}
	params, err := ckks.NewParameters(10, []int{40, 30, 30, 30, 30}, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	e, err := henn.NewRNSEngine(params, plan.Rotations(), 501)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.Wrap(e, faults.Injection{Kind: faults.SkewScale, Op: "EncryptVec"})
	ct := inj.EncryptVec([]float64{1})
	if !inj.Fired() {
		t.Fatal("injector did not fire on the matching op")
	}
	skewed := inj.ScaleOf(ct)
	ct2 := inj.EncryptVec([]float64{1})
	if got := inj.ScaleOf(ct2); got != e.Scale() {
		t.Fatalf("second call still corrupted: scale %v, want %v", got, e.Scale())
	}
	if skewed == e.Scale() {
		t.Fatal("first call was not corrupted")
	}
}
