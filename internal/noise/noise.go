// Package noise implements the CKKS noise-growth heuristics of the
// original paper (Cheon-Kim-Kim-Song, §"Noise estimation"), used to reason
// about the accuracy loss the paper's Section III.C discusses: given
// parameters and a pipeline description, it predicts error bounds and
// checks that a scale Δ leaves enough precision headroom.
//
// Bounds are the standard high-probability canonical-embedding estimates
// (erfc-style tail cut at 6σ): they are deliberately conservative; the
// empirical tests in this package confirm measured noise stays below them.
package noise

import (
	"fmt"
	"math"
)

// Model carries the distribution parameters the bounds depend on.
type Model struct {
	N     int     // ring degree
	Sigma float64 // χ_err standard deviation
	H     int     // secret Hamming weight
}

// Fresh returns the high-probability bound B_clean on the canonical-
// embedding noise of a fresh public-key encryption:
// 8√2·σ·N + 6σ√N + 16σ√(hN).
func (m Model) Fresh() float64 {
	n := float64(m.N)
	return 8*math.Sqrt2*m.Sigma*n + 6*m.Sigma*math.Sqrt(n) + 16*m.Sigma*math.Sqrt(float64(m.H)*n)
}

// Rescale returns the bound B_scale added by one rescaling:
// √(N/3)·(3 + 8√h).
func (m Model) Rescale() float64 {
	return math.Sqrt(float64(m.N)/3) * (3 + 8*math.Sqrt(float64(m.H)))
}

// KeySwitch returns the bound on the noise added by an RNS-decomposition
// key switch with `digits` digits of size ≤ maxQi, divided by the special
// modulus P: 8·σ·N·digits·maxQi/(√3·P) plus the mod-down rounding B_scale.
func (m Model) KeySwitch(digits int, maxQi, p float64) float64 {
	return 8*m.Sigma*float64(m.N)*float64(digits)*maxQi/(math.Sqrt(3)*p) + m.Rescale()
}

// MulPlain returns the multiplicative noise factor for a plaintext
// multiplication: an input with noise e and a plaintext of canonical norm
// ≤ ptNorm yields noise ≤ ptNorm·e.
func (m Model) MulPlain(e, ptNorm float64) float64 { return ptNorm * e }

// Mul returns the noise bound after a ciphertext-ciphertext multiplication
// of operands with message norms ν1, ν2 and noises e1, e2 (before key
// switching): ν1·e2 + ν2·e1 + e1·e2.
func (m Model) Mul(nu1, e1, nu2, e2 float64) float64 {
	return nu1*e2 + nu2*e1 + e1*e2
}

// Budget tracks message scale versus accumulated noise through a pipeline.
type Budget struct {
	Model Model
	// Scale is the current plaintext scale Δ of the tracked ciphertext.
	Scale float64
	// Noise is the current canonical-embedding noise bound.
	Noise float64
	// Steps records the pipeline for diagnostics.
	Steps []string
}

// NewBudget starts from a fresh encryption at the given scale.
func NewBudget(m Model, scale float64) *Budget {
	return &Budget{Model: m, Scale: scale, Noise: m.Fresh(), Steps: []string{"fresh"}}
}

// BitsOfPrecision returns log2(scale/noise) — the significant fractional
// bits remaining. Negative means the message is drowned.
func (b *Budget) BitsOfPrecision() float64 {
	return math.Log2(b.Scale / b.Noise)
}

// AfterMulPlain applies a plaintext multiplication at ptScale with
// plaintext canonical norm ptNorm, followed by a rescale by q.
func (b *Budget) AfterMulPlain(ptScale, ptNorm, q float64) {
	b.Noise = b.Model.MulPlain(b.Noise, ptNorm*ptScale)
	b.Scale *= ptScale
	b.rescale(q)
	b.Steps = append(b.Steps, "mulplain+rescale")
}

// AfterMul applies a ciphertext-ciphertext multiplication with a second
// operand at the same scale carrying noise otherNoise; nu1 and nu2 are the
// slot-domain message magnitudes of the two operands. The relinearization
// key-switch noise ksNoise is added and the result is rescaled by q
// (Δ → Δ²/q).
func (b *Budget) AfterMul(otherNoise, nu1, nu2, ksNoise, q float64) {
	b.Noise = b.Model.Mul(nu1*b.Scale, b.Noise, nu2*b.Scale, otherNoise) + ksNoise
	b.Scale *= b.Scale
	b.Steps = append(b.Steps, "mul")
	b.rescale(q)
}

func (b *Budget) rescale(q float64) {
	b.Noise = b.Noise/q + b.Model.Rescale()
	b.Scale /= q
}

// AfterRotation adds key-switch noise for a rotation.
func (b *Budget) AfterRotation(ksNoise float64) {
	b.Noise += ksNoise
	b.Steps = append(b.Steps, "rotate")
}

// Check returns an error when fewer than minBits of precision remain.
func (b *Budget) Check(minBits float64) error {
	if got := b.BitsOfPrecision(); got < minBits {
		return fmt.Errorf("noise: %.1f bits of precision remain (< %.1f) after %v",
			got, minBits, b.Steps)
	}
	return nil
}
