GO ?= go

.PHONY: check vet build test race

## check: the full CI gate — vet, build, tests, and the race detector on
## the inference-runtime packages.
check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./internal/henn/ ./internal/guard/ ./internal/faults/
