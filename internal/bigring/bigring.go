// Package bigring implements the polynomial ring R_q = Z_q[X]/(X^N+1) with
// multiprecision (big.Int) coefficient arithmetic modulo the full composite
// modulus q, exactly as in the original (non-RNS) CKKS scheme of Cheon,
// Kim, Kim and Song. It is the substrate of the paper's CNN-HE baseline;
// its cost relative to internal/ring *is* the RNS speedup the paper
// measures.
//
// q must be a product of NTT-friendly primes (q_i ≡ 1 mod 2N) so that a
// primitive 2N-th root of unity exists modulo q (constructed by CRT from
// per-factor roots), allowing an O(N log N) negacyclic NTT even in the
// multiprecision setting.
package bigring

import (
	"fmt"
	"math/big"
	"math/rand"

	"cnnhe/internal/ring"
)

// Ring is the multiprecision negacyclic ring of degree N modulo the
// composite Q.
type Ring struct {
	NVal    int
	LogN    int
	Q       *big.Int
	Factors []*big.Int

	// Parallel enables coefficient-chunk parallelism for the pointwise
	// loops, sharing internal/ring's worker pool. Inherited from the
	// process default at construction. The NTT stays serial here: its
	// butterflies share scratch big.Ints and this backend is the parity
	// oracle, not the fast path.
	Parallel bool

	psiRev  []*big.Int // ψ^{bitrev(i)} tables, as in internal/ring
	ipsiRev []*big.Int
	nInv    *big.Int
	half    *big.Int // Q/2, for centered lifting
}

// bigGrain is the minimum coefficients per parallel chunk: big.Int
// arithmetic is ~20× a word op, so chunks amortize dispatch much sooner
// than the word rings' slabs.
const bigGrain = 256

// forRange runs f over coefficient sub-ranges of [0, n), chunked across the
// shared worker pool when Parallel is set. f must touch only indices in its
// range and must allocate any scratch per call (chunks run concurrently).
func (r *Ring) forRange(n int, f func(lo, hi int)) {
	ring.ParallelRangeGrain(r.Parallel, n, bigGrain, f)
}

// NewRing constructs the ring of degree n modulo ∏ factors. The factors
// must be pairwise co-prime NTT-friendly primes for degree n. The
// primitive-root search is seeded by seed.
func NewRing(n int, factors []*big.Int, seed int64) (*Ring, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("bigring: degree must be a power of two")
	}
	rng := rand.New(rand.NewSource(seed))
	twoN := new(big.Int).SetUint64(uint64(2 * n))
	q := big.NewInt(1)
	for _, f := range factors {
		rem := new(big.Int)
		rem.Sub(f, big.NewInt(1)).Mod(rem, twoN)
		if rem.Sign() != 0 {
			return nil, fmt.Errorf("bigring: factor %v is not NTT-friendly", f)
		}
		q.Mul(q, f)
	}
	// Primitive 2N-th root of Q by CRT of per-factor primitive roots.
	root := big.NewInt(0)
	for _, f := range factors {
		w := primitiveRoot(f, uint64(2*n), rng)
		qf := new(big.Int).Quo(q, f)
		inv := new(big.Int).ModInverse(qf, f)
		t := new(big.Int).Mul(w, inv)
		t.Mod(t, f)
		t.Mul(t, qf)
		root.Add(root, t)
	}
	root.Mod(root, q)

	logN := 0
	for 1<<logN < n {
		logN++
	}
	r := &Ring{
		NVal: n, LogN: logN, Q: q,
		Factors:  append([]*big.Int(nil), factors...),
		Parallel: ring.ParallelDefault(),
		psiRev:   make([]*big.Int, n),
		ipsiRev:  make([]*big.Int, n),
		half:     new(big.Int).Rsh(q, 1),
	}
	iroot := new(big.Int).ModInverse(root, q)
	if iroot == nil {
		return nil, fmt.Errorf("bigring: root not invertible")
	}
	pw := big.NewInt(1)
	ipw := big.NewInt(1)
	for i := 0; i < n; i++ {
		j := bitrev(i, logN)
		r.psiRev[j] = new(big.Int).Set(pw)
		r.ipsiRev[j] = new(big.Int).Set(ipw)
		pw.Mul(pw, root).Mod(pw, q)
		ipw.Mul(ipw, iroot).Mod(ipw, q)
	}
	r.nInv = new(big.Int).ModInverse(big.NewInt(int64(n)), q)
	// Sanity: ψ^N ≡ −1 (mod Q).
	chk := new(big.Int).Exp(root, big.NewInt(int64(n)), q)
	want := new(big.Int).Sub(q, big.NewInt(1))
	if chk.Cmp(want) != 0 {
		return nil, fmt.Errorf("bigring: CRT root is not a primitive 2N-th root")
	}
	return r, nil
}

func primitiveRoot(p *big.Int, n uint64, rng *rand.Rand) *big.Int {
	pm1 := new(big.Int).Sub(p, big.NewInt(1))
	exp := new(big.Int).Quo(pm1, new(big.Int).SetUint64(n))
	for {
		x := new(big.Int).Rand(rng, pm1)
		if x.Sign() == 0 {
			continue
		}
		w := new(big.Int).Exp(x, exp, p)
		chk := new(big.Int).Exp(w, new(big.Int).SetUint64(n/2), p)
		if chk.Cmp(pm1) == 0 {
			return w
		}
	}
}

func bitrev(i, logN int) int {
	r := 0
	for b := 0; b < logN; b++ {
		r = (r << 1) | (i & 1)
		i >>= 1
	}
	return r
}

// N returns the ring degree.
func (r *Ring) N() int { return r.NVal }

// Poly is a polynomial with big.Int coefficients in [0, Q).
type Poly struct {
	Coeffs []*big.Int
}

// NewPoly allocates a zero polynomial.
func (r *Ring) NewPoly() *Poly {
	p := &Poly{Coeffs: make([]*big.Int, r.NVal)}
	for i := range p.Coeffs {
		p.Coeffs[i] = new(big.Int)
	}
	return p
}

// Copy returns a deep copy of p.
func (r *Ring) Copy(p *Poly) *Poly {
	out := &Poly{Coeffs: make([]*big.Int, r.NVal)}
	for i := range out.Coeffs {
		out.Coeffs[i] = new(big.Int).Set(p.Coeffs[i])
	}
	return out
}

// Mod reduces every coefficient of p into [0, m) in place.
func (r *Ring) Mod(p *Poly, m *big.Int) {
	for i := range p.Coeffs {
		p.Coeffs[i].Mod(p.Coeffs[i], m)
	}
}

// NTT transforms a in place (natural order in, bit-reversed out), modulo Q.
func (r *Ring) NTT(a *Poly) { r.nttMod(a, r.Q, r.psiRev) }

// INTT inverts NTT modulo Q, including the 1/N scaling.
func (r *Ring) INTT(a *Poly) {
	r.inttMod(a, r.Q, r.ipsiRev, r.nInv)
}

func (r *Ring) nttMod(a *Poly, q *big.Int, psiRev []*big.Int) {
	t := r.NVal
	tmp := new(big.Int)
	for m := 1; m < r.NVal; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w := psiRev[m+i]
			j1 := 2 * i * t
			for j := j1; j < j1+t; j++ {
				u := a.Coeffs[j]
				v := tmp.Mul(a.Coeffs[j+t], w)
				v.Mod(v, q)
				a.Coeffs[j+t].Sub(u, v)
				if a.Coeffs[j+t].Sign() < 0 {
					a.Coeffs[j+t].Add(a.Coeffs[j+t], q)
				}
				u.Add(u, v)
				if u.Cmp(q) >= 0 {
					u.Sub(u, q)
				}
			}
		}
	}
}

func (r *Ring) inttMod(a *Poly, q *big.Int, ipsiRev []*big.Int, nInv *big.Int) {
	t := 1
	tmp := new(big.Int)
	for m := r.NVal >> 1; m >= 1; m >>= 1 {
		j1 := 0
		for i := 0; i < m; i++ {
			w := ipsiRev[m+i]
			for j := j1; j < j1+t; j++ {
				u := new(big.Int).Set(a.Coeffs[j])
				v := a.Coeffs[j+t]
				a.Coeffs[j].Add(u, v)
				if a.Coeffs[j].Cmp(q) >= 0 {
					a.Coeffs[j].Sub(a.Coeffs[j], q)
				}
				tmp.Sub(u, v)
				if tmp.Sign() < 0 {
					tmp.Add(tmp, q)
				}
				a.Coeffs[j+t].Mul(tmp, w)
				a.Coeffs[j+t].Mod(a.Coeffs[j+t], q)
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for i := range a.Coeffs {
		a.Coeffs[i].Mul(a.Coeffs[i], nInv)
		a.Coeffs[i].Mod(a.Coeffs[i], q)
	}
}

// Add sets out = a + b mod Q. Arguments may alias.
func (r *Ring) Add(a, b, out *Poly) {
	r.forRange(len(out.Coeffs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Coeffs[i].Add(a.Coeffs[i], b.Coeffs[i])
			if out.Coeffs[i].Cmp(r.Q) >= 0 {
				out.Coeffs[i].Sub(out.Coeffs[i], r.Q)
			}
		}
	})
}

// Sub sets out = a − b mod Q.
func (r *Ring) Sub(a, b, out *Poly) {
	r.forRange(len(out.Coeffs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Coeffs[i].Sub(a.Coeffs[i], b.Coeffs[i])
			if out.Coeffs[i].Sign() < 0 {
				out.Coeffs[i].Add(out.Coeffs[i], r.Q)
			}
		}
	})
}

// Neg sets out = −a mod Q.
func (r *Ring) Neg(a, out *Poly) {
	r.forRange(len(out.Coeffs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if a.Coeffs[i].Sign() == 0 {
				out.Coeffs[i].SetInt64(0)
			} else {
				out.Coeffs[i].Sub(r.Q, a.Coeffs[i])
			}
		}
	})
}

// MulCoeffs sets out = a ⊙ b mod Q (pointwise; NTT domain).
func (r *Ring) MulCoeffs(a, b, out *Poly) {
	r.forRange(len(out.Coeffs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Coeffs[i].Mul(a.Coeffs[i], b.Coeffs[i])
			out.Coeffs[i].Mod(out.Coeffs[i], r.Q)
		}
	})
}

// MulCoeffsThenAdd sets out += a ⊙ b mod Q.
func (r *Ring) MulCoeffsThenAdd(a, b, out *Poly) {
	r.forRange(len(out.Coeffs), func(lo, hi int) {
		t := new(big.Int)
		for i := lo; i < hi; i++ {
			t.Mul(a.Coeffs[i], b.Coeffs[i])
			out.Coeffs[i].Add(out.Coeffs[i], t)
			out.Coeffs[i].Mod(out.Coeffs[i], r.Q)
		}
	})
}

// MulScalar sets out = a · s mod Q.
func (r *Ring) MulScalar(a *Poly, s *big.Int, out *Poly) {
	sm := new(big.Int).Mod(s, r.Q)
	r.forRange(len(out.Coeffs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Coeffs[i].Mul(a.Coeffs[i], sm)
			out.Coeffs[i].Mod(out.Coeffs[i], r.Q)
		}
	})
}

// Automorphism applies X → X^galEl in the coefficient domain. a and out
// must not alias.
func (r *Ring) Automorphism(a *Poly, galEl uint64, out *Poly) {
	n := uint64(r.NVal)
	mask := 2*n - 1
	for i := uint64(0); i < n; i++ {
		j := (i * galEl) & mask
		if j < n {
			out.Coeffs[j].Set(a.Coeffs[i])
		} else if a.Coeffs[i].Sign() == 0 {
			out.Coeffs[j-n].SetInt64(0)
		} else {
			out.Coeffs[j-n].Sub(r.Q, a.Coeffs[i])
		}
	}
}

// SetCoeffsInt64 writes centered integer coefficients.
func (r *Ring) SetCoeffsInt64(vec []int64, p *Poly) {
	for i, v := range vec {
		p.Coeffs[i].SetInt64(v)
		if v < 0 {
			p.Coeffs[i].Add(p.Coeffs[i], r.Q)
		}
	}
}

// SetCoeffsBig writes (possibly negative) big.Int coefficients mod Q.
func (r *Ring) SetCoeffsBig(vec []*big.Int, p *Poly) {
	for i, v := range vec {
		p.Coeffs[i].Mod(v, r.Q)
	}
}

// CoeffsCentered returns the coefficients lifted to (−Q/2, Q/2].
func (r *Ring) CoeffsCentered(p *Poly) []*big.Int {
	out := make([]*big.Int, r.NVal)
	for i, c := range p.Coeffs {
		v := new(big.Int).Set(c)
		if v.Cmp(r.half) > 0 {
			v.Sub(v, r.Q)
		}
		out[i] = v
	}
	return out
}

// PermuteNTT applies out[i] = a[perm[i]] (NTT-domain automorphism). a and
// out must not alias.
func (r *Ring) PermuteNTT(a *Poly, perm []int, out *Poly) {
	r.forRange(len(perm), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Coeffs[i].Set(a.Coeffs[perm[i]])
		}
	})
}

// SampleUniform fills p with uniform residues mod Q.
func (r *Ring) SampleUniform(rng *rand.Rand, p *Poly) {
	for i := range p.Coeffs {
		p.Coeffs[i].Rand(rng, r.Q)
	}
}
