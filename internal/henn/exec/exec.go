// Package exec executes lowered op graphs (internal/henn/ir) against a
// CKKS engine.
//
// Prepare performs the ahead-of-time work a graph admits: structural
// validation and batch-encoding of every plaintext operand at its
// statically inferred (level, scale), deduplicated by cache key. The
// resulting Prepared value is immutable and safe to share across
// concurrent and batched inferences — the encoded plaintext set is paid
// for once per (plan, engine) pair instead of once per locked cache
// lookup on the hot path.
//
// Run replays the graph. The sequential mode visits ops in graph order,
// which is exactly the legacy interpreter's engine-call order, so its
// results are bit-identical to the eager path. The parallel mode
// schedules ops over a bounded worker pool as their data dependencies
// resolve; hoisted rotation groups always execute as one RotateMany
// call so the shared key-switch decomposition is preserved in both
// modes. Intermediate ciphertexts are reference-counted and released at
// last use, keeping the live set close to the interpreter's.
package exec

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"cnnhe/internal/henn/ir"
)

// Options configures one Run.
type Options struct {
	// Workers bounds the scheduling pool. Values ≤ 1 select the
	// sequential executor, whose engine-call order is bit-identical to
	// the legacy interpreter.
	Workers int
}

// StageStat is the per-stage execution record, mirroring the legacy
// interpreter's Report rows.
type StageStat struct {
	Name      string
	Duration  time.Duration
	Level     int
	Scale     float64
	NoiseBits float64
	Ops       int
}

// Result is the outcome of one Run.
type Result struct {
	// Out is the graph's output ciphertext.
	Out ir.Ct
	// Encrypt and Eval are the wall times of the two phases.
	Encrypt time.Duration
	Eval    time.Duration
	// Stages holds one record per completed reportable stage, in stage
	// order.
	Stages []StageStat
	// FailedStage names the stage a failed run died in ("" on success).
	FailedStage string
}

// stageAware and noiseAware mirror the optional engine interfaces of
// internal/henn (structural, so no import is needed).
type stageAware interface{ BeginStage(name string) }
type noiseAware interface{ NoiseBits(ct ir.Ct) float64 }

// task is one schedulable unit: a single op, or a whole hoist group
// (which must execute as one RotateMany call).
type task struct {
	ops      []int // op IDs, in graph order
	stage    int
	children []int // dependent task indices (deduplicated)
	indeg    int32 // static in-degree
}

// Prepared is a validated graph with its plaintext operands pre-encoded
// for one engine. Immutable after Prepare; share freely across Runs.
type Prepared struct {
	e  ir.Engine
	rc ir.Recombiner // non-nil when e supports fused recombination
	g  *ir.Graph

	pts        []ir.Pt // per-op pre-encoded operand (nil where none)
	use        []int32 // static consumer count per op (+1 for the output)
	encryptOps []int
	outStages  [][]int // op ID → stages it is the Out of (optimized graphs may point several stage rows at one op)
	stageOps   []int   // per-stage op count
	tasks      []task
	opTask     []int // op ID → task index (-1 for encrypt ops)
}

// Graph returns the prepared graph (for stats and diagnostics).
func (p *Prepared) Graph() *ir.Graph { return p.g }

// Prepare validates g and pre-encodes every plaintext operand on e at
// its exact (level, scale). Operands with bit-identical content at the
// same (level, scale) encode once — keyed by a content digest rather
// than PlainKey alone, so post-optimization specs (whose folded or
// merged operands carry no PlainKey) still deduplicate.
func Prepare(e ir.Engine, g *ir.Graph) (p *Prepared, err error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("exec: prepare: %w", e)
				return
			}
			err = fmt.Errorf("exec: prepare: %v", r)
		}
	}()
	p = &Prepared{
		e:         e,
		g:         g,
		pts:       make([]ir.Pt, len(g.Ops)),
		use:       make([]int32, len(g.Ops)),
		outStages: make([][]int, len(g.Ops)),
		stageOps:  make([]int, len(g.Stages)),
		opTask:    make([]int, len(g.Ops)),
	}
	p.rc, _ = e.(ir.Recombiner)
	// Batch-encode the plaintext operands, deduplicating by content: a
	// digest selects candidate specs, a full bit-compare confirms (so a
	// digest collision can never alias two different operands).
	type ptKey struct {
		digest uint64
		n      int
		level  int
		scale  float64
	}
	var specs []ir.PlainSpec
	slot := make([]int, 0, len(g.Ops)) // spec index per encoding op
	seen := map[ptKey][]int{}
	for i := range g.Ops {
		op := &g.Ops[i]
		if op.Plain == nil {
			continue
		}
		scale := op.Scale // OpAddPlain encodes at the result's (level, scale)
		if op.Kind == ir.OpMulPlain {
			scale = op.PtScale
		}
		k := ptKey{digest: plainDigest(op.Plain), n: len(op.Plain), level: op.Level, scale: scale}
		dup := -1
		for _, j := range seen[k] {
			if plainBitsEqual(specs[j].Values, op.Plain) {
				dup = j
				break
			}
		}
		if dup >= 0 {
			slot = append(slot, dup)
			continue
		}
		seen[k] = append(seen[k], len(specs))
		slot = append(slot, len(specs))
		specs = append(specs, ir.PlainSpec{Values: op.Plain, Level: op.Level, Scale: scale})
	}
	encoded := e.EncodeVecsAt(specs)
	if len(encoded) != len(specs) {
		return nil, fmt.Errorf("exec: engine encoded %d of %d plaintexts", len(encoded), len(specs))
	}
	j := 0
	for i := range g.Ops {
		if g.Ops[i].Plain == nil {
			continue
		}
		p.pts[i] = encoded[slot[j]]
		j++
	}
	// Consumer counts, stage bookkeeping, encrypt prologue.
	for i := range g.Ops {
		op := &g.Ops[i]
		for _, a := range op.Args {
			p.use[a]++
		}
		p.stageOps[op.Stage]++
		if op.Kind == ir.OpEncrypt {
			p.encryptOps = append(p.encryptOps, i)
		}
	}
	p.use[g.Output]++ // the caller consumes the output
	for s, st := range g.Stages {
		if st.Out >= 0 {
			p.outStages[st.Out] = append(p.outStages[st.Out], s)
		}
	}
	p.buildTasks()
	return p, nil
}

// plainDigest hashes a plaintext vector's float64 bits (FNV-1a).
func plainDigest(v []float64) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for _, x := range v {
		bits := math.Float64bits(x)
		for i := range buf {
			buf[i] = byte(bits >> (8 * i))
		}
		h.Write(buf[:])
	}
	return h.Sum64()
}

// plainBitsEqual confirms a digest match with an exact bit compare.
func plainBitsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// buildTasks groups ops into schedulable tasks and wires the static
// dependency edges for the parallel executor.
func (p *Prepared) buildTasks() {
	g := p.g
	hoistTask := make([]int, len(g.Hoists))
	for i := range hoistTask {
		hoistTask[i] = -1
	}
	for i := range g.Ops {
		op := &g.Ops[i]
		if op.Kind == ir.OpEncrypt {
			p.opTask[i] = -1
			continue
		}
		if op.Kind == ir.OpRotate && op.Hoist >= 0 {
			if t := hoistTask[op.Hoist]; t >= 0 {
				p.opTask[i] = t
				p.tasks[t].ops = append(p.tasks[t].ops, i)
				continue
			}
			hoistTask[op.Hoist] = len(p.tasks)
		}
		p.opTask[i] = len(p.tasks)
		p.tasks = append(p.tasks, task{ops: []int{i}, stage: op.Stage})
	}
	for t := range p.tasks {
		depSet := map[int]bool{}
		for _, id := range p.tasks[t].ops {
			for _, a := range p.g.Ops[id].Args {
				d := p.opTask[a]
				if d >= 0 && d != t && !depSet[d] {
					depSet[d] = true
					p.tasks[d].children = append(p.tasks[d].children, t)
					p.tasks[t].indeg++
				}
			}
		}
	}
}

// runState is the per-Run mutable state.
type runState struct {
	p     *Prepared
	sa    stageAware
	na    noiseAware
	tel   *runTel // nil when telemetry is fully off for this run
	slots []ir.Ct
	use   []int32

	mu       sync.Mutex
	curStage int
	started  []bool
	start    []time.Time
	end      []time.Time
	stats    []StageStat
	done     []bool // stage Out op completed
}

func (p *Prepared) newRunState() *runState {
	rs := &runState{
		p:        p,
		slots:    make([]ir.Ct, len(p.g.Ops)),
		use:      make([]int32, len(p.g.Ops)),
		curStage: -1,
		started:  make([]bool, len(p.g.Stages)),
		start:    make([]time.Time, len(p.g.Stages)),
		end:      make([]time.Time, len(p.g.Stages)),
		stats:    make([]StageStat, len(p.g.Stages)),
		done:     make([]bool, len(p.g.Stages)),
	}
	copy(rs.use, p.use)
	rs.sa, _ = p.e.(stageAware)
	rs.na, _ = p.e.(noiseAware)
	for s, st := range p.g.Stages {
		rs.stats[s] = StageStat{Name: st.Name, NoiseBits: math.NaN(), Ops: p.stageOps[s]}
	}
	return rs
}

// announce tells a StageAware engine the current stage, once per
// transition. In parallel runs stage attribution is best-effort (ops of
// different stages interleave), exactly like the legacy parallel path.
func (rs *runState) announce(stage int) {
	if rs.sa == nil {
		return
	}
	rs.mu.Lock()
	changed := stage != rs.curStage
	if changed {
		rs.curStage = stage
	}
	rs.mu.Unlock()
	if changed {
		rs.sa.BeginStage(rs.p.g.Stages[stage].Name)
	}
}

// opStarted/opDone maintain per-stage wall-clock spans and capture the
// stage output's (level, scale, noise) the moment it is produced,
// before reference counting can release it.
func (rs *runState) opStarted(stage int, now time.Time) {
	rs.mu.Lock()
	if !rs.started[stage] {
		rs.started[stage] = true
		rs.start[stage] = now
	}
	rs.mu.Unlock()
}

func (rs *runState) opDone(id int, ct ir.Ct, now time.Time) {
	stage := rs.p.g.Ops[id].Stage
	var level int
	var scale, noise float64
	outs := rs.p.outStages[id]
	if len(outs) > 0 {
		level = rs.p.e.Level(ct)
		scale = rs.p.e.ScaleOf(ct)
		noise = math.NaN()
		if rs.na != nil {
			noise = rs.na.NoiseBits(ct)
		}
	}
	rs.mu.Lock()
	if now.After(rs.end[stage]) {
		rs.end[stage] = now
	}
	for _, s := range outs {
		rs.stats[s].Level = level
		rs.stats[s].Scale = scale
		rs.stats[s].NoiseBits = noise
		rs.done[s] = true
	}
	rs.mu.Unlock()
}

// observeHE reads the output ciphertext's level, scale and noise budget
// for span attribution. Only called when tracing is on, so the
// metrics-only and telemetry-off paths never pay the engine calls.
func (rs *runState) observeHE(ct ir.Ct) heAttr {
	if ct == nil {
		return heAttr{}
	}
	he := heAttr{Level: rs.p.e.Level(ct), Scale: rs.p.e.ScaleOf(ct), Noise: math.NaN()}
	if rs.na != nil {
		he.Noise = rs.na.NoiseBits(ct)
	}
	return he
}

// release decrements an argument's reference count, freeing the slot at
// zero so peak live ciphertexts track the interpreter's.
func (rs *runState) release(id int) {
	if atomic.AddInt32(&rs.use[id], -1) == 0 {
		rs.slots[id] = nil
	}
}

// finish copies completed reportable stage records into res.
func (rs *runState) finish(res *Result) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	for s, st := range rs.p.g.Stages {
		if !st.Record || !rs.done[s] {
			continue
		}
		row := rs.stats[s]
		row.Duration = rs.end[s].Sub(rs.start[s])
		res.Stages = append(res.Stages, row)
	}
}

// execOp runs one non-encrypt op (or, for the first member of a hoist
// group, the whole group via a single RotateMany). Panics are converted
// to errors; error values (e.g. guard stage errors) pass through intact.
// worker and taskIdx attribute the work for telemetry (0/-1 on the
// sequential path, where there is no pool and no queue).
func (rs *runState) execOp(id, worker, taskIdx int) (err error) {
	p := rs.p
	op := &p.g.Ops[id]
	name := p.g.Stages[op.Stage].Name
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = e
				return
			}
			err = fmt.Errorf("henn: panic in %s: %v", name, r)
		}
	}()
	t0 := time.Now()
	rs.opStarted(op.Stage, t0)
	if op.Kind == ir.OpRotate && op.Hoist >= 0 {
		members := p.g.Hoists[op.Hoist]
		arg := rs.slots[op.Args[0]]
		ks := make([]int, len(members))
		for i, m := range members {
			ks[i] = p.g.Ops[m].K
		}
		outs := p.e.RotateMany(arg, ks)
		now := time.Now()
		var he heAttr
		if rs.tel.tracing() {
			// All group members share (level, scale); observe the first.
			he = rs.observeHE(outs[ks[0]])
		}
		rs.tel.opExecuted(op.Kind, name, worker, rs.tel.queuedAt(taskIdx),
			t0, now, len(members), len(members)-1, he)
		for _, m := range members {
			ct, ok := outs[p.g.Ops[m].K]
			if !ok {
				return fmt.Errorf("henn: %s: RotateMany dropped rotation %d", name, p.g.Ops[m].K)
			}
			rs.slots[m] = ct
			rs.opDone(m, ct, now)
		}
		for range members {
			rs.release(op.Args[0])
		}
		return nil
	}
	args := make([]ir.Ct, len(op.Args))
	for i, a := range op.Args {
		args[i] = rs.slots[a]
	}
	var ct ir.Ct
	switch op.Kind {
	case ir.OpRotate:
		ct = p.e.Rotate(args[0], op.K)
	case ir.OpMulPlain:
		ct = p.e.MulPlainPt(args[0], p.pts[id])
	case ir.OpAddPlain:
		ct = p.e.AddPlainPt(args[0], p.pts[id])
	case ir.OpAdd:
		ct = p.e.Add(args[0], args[1])
	case ir.OpMulRelin:
		ct = p.e.MulRelin(args[0], args[1])
	case ir.OpRescale:
		ct = p.e.Rescale(args[0])
	case ir.OpDropLevel:
		ct = p.e.DropLevel(args[0], op.Drop)
	case ir.OpRecombine:
		if p.rc != nil {
			// Fused path: one engine call for the whole linear combination.
			ct = p.rc.Recombine(args, op.Weights)
		} else {
			acc := args[0] // weight 1; carries the bias
			for i := 1; i < len(args); i++ {
				if op.Weights[i] == 1 {
					// MulInt by 1 is a residue identity; skip the copy.
					acc = p.e.Add(acc, args[i])
					continue
				}
				acc = p.e.Add(acc, p.e.MulInt(args[i], op.Weights[i]))
			}
			ct = acc
		}
	default:
		return fmt.Errorf("henn: %s: cannot execute %s op", name, op.Kind)
	}
	now := time.Now()
	var he heAttr
	if rs.tel.tracing() {
		he = rs.observeHE(ct)
	}
	rs.tel.opExecuted(op.Kind, name, worker, rs.tel.queuedAt(taskIdx), t0, now, 1, 0, he)
	rs.slots[id] = ct
	rs.opDone(id, ct, now)
	for _, a := range op.Args {
		rs.release(a)
	}
	return nil
}

// EncryptInputs runs the graph's encrypt prologue serially in op order
// (encryption draws from the engine's PRNG, whose call order must match
// the legacy path for bit-identical runs). The returned slice is
// indexed like the graph's encrypt ops.
func (p *Prepared) EncryptInputs(ctx context.Context, inputs [][]float64) (cts []ir.Ct, d time.Duration, failedStage string, err error) {
	if len(inputs) != p.g.Inputs {
		return nil, 0, "", fmt.Errorf("exec: %d inputs for a %d-input graph", len(inputs), p.g.Inputs)
	}
	sa, _ := p.e.(stageAware)
	na, _ := p.e.(noiseAware)
	tel := newRunTel(ctx, 0)
	t0 := time.Now()
	cts = make([]ir.Ct, len(p.encryptOps))
	for i, id := range p.encryptOps {
		op := &p.g.Ops[id]
		name := p.g.Stages[op.Stage].Name
		if cerr := ctx.Err(); cerr != nil {
			return nil, time.Since(t0), name, fmt.Errorf("henn: %s: %w", name, cerr)
		}
		if sa != nil {
			sa.BeginStage(name)
		}
		opT0 := time.Now()
		ct, eerr := func() (ct ir.Ct, err error) {
			defer func() {
				if r := recover(); r != nil {
					if e, ok := r.(error); ok {
						err = e
						return
					}
					err = fmt.Errorf("henn: panic in %s: %v", name, r)
				}
			}()
			return p.e.EncryptVec(inputs[op.InputIdx]), nil
		}()
		if eerr != nil {
			return nil, time.Since(t0), name, eerr
		}
		var he heAttr
		if tel.tracing() {
			he = heAttr{Level: p.e.Level(ct), Scale: p.e.ScaleOf(ct), Noise: math.NaN()}
			if na != nil {
				he.Noise = na.NoiseBits(ct)
			}
		}
		tel.opExecuted(ir.OpEncrypt, name, 0, time.Time{}, opT0, time.Now(), 1, 0, he)
		cts[i] = ct
	}
	tel.phase("encrypt", t0, time.Now())
	return cts, time.Since(t0), "", nil
}

// RunEncrypted evaluates the graph on already-encrypted inputs (in
// encrypt-op order, as returned by EncryptInputs). It is the batched
// hot path: many RunEncrypted calls may share one Prepared concurrently.
func (p *Prepared) RunEncrypted(ctx context.Context, cts []ir.Ct, opts Options) (*Result, error) {
	res := &Result{}
	if len(cts) != len(p.encryptOps) {
		return res, fmt.Errorf("exec: %d ciphertexts for %d encrypt ops", len(cts), len(p.encryptOps))
	}
	rs := p.newRunState()
	rs.tel = newRunTel(ctx, len(p.tasks)).runStarted()
	for i, id := range p.encryptOps {
		rs.slots[id] = cts[i]
	}
	t0 := time.Now()
	var err error
	if opts.Workers > 1 && len(p.tasks) > 1 {
		err = rs.runParallel(ctx, opts.Workers, res)
	} else {
		err = rs.runSequential(ctx, res)
	}
	res.Eval = time.Since(t0)
	rs.tel.phase("eval", t0, time.Now())
	rs.finish(res)
	if err != nil {
		return res, err
	}
	res.Out = rs.slots[p.g.Output]
	return res, nil
}

// Run encrypts inputs and evaluates the graph.
func (p *Prepared) Run(ctx context.Context, inputs [][]float64, opts Options) (*Result, error) {
	cts, encDur, failedStage, err := p.EncryptInputs(ctx, inputs)
	if err != nil {
		return &Result{Encrypt: encDur, FailedStage: failedStage}, err
	}
	res, err := p.RunEncrypted(ctx, cts, opts)
	res.Encrypt = encDur
	return res, err
}

// runSequential replays ops in graph order — the legacy interpreter's
// exact engine-call order.
func (rs *runState) runSequential(ctx context.Context, res *Result) error {
	p := rs.p
	for i := range p.g.Ops {
		op := &p.g.Ops[i]
		if op.Kind == ir.OpEncrypt || rs.slots[i] != nil {
			continue // encrypted in the prologue / produced by a hoist group
		}
		name := p.g.Stages[op.Stage].Name
		if err := ctx.Err(); err != nil {
			res.FailedStage = name
			return fmt.Errorf("henn: %s: %w", name, err)
		}
		rs.announce(op.Stage)
		if err := rs.execOp(i, 0, -1); err != nil {
			res.FailedStage = name
			return err
		}
	}
	return nil
}

// runParallel schedules tasks over a bounded worker pool as their
// dependencies resolve. The first error wins and stops the run.
func (rs *runState) runParallel(ctx context.Context, workers int, res *Result) error {
	p := rs.p
	if workers > len(p.tasks) {
		workers = len(p.tasks)
	}
	indeg := make([]int32, len(p.tasks))
	ready := make(chan int, len(p.tasks))
	for t := range p.tasks {
		indeg[t] = p.tasks[t].indeg
		if indeg[t] == 0 {
			if rs.tel != nil {
				rs.tel.taskReady(t, time.Now())
			}
			ready <- t
		}
	}
	var pending = int32(len(p.tasks))
	quit := make(chan struct{})
	var failOnce sync.Once
	var firstErr error
	fail := func(stage string, err error) {
		failOnce.Do(func() {
			res.FailedStage = stage
			firstErr = err
			close(quit)
		})
	}
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				select {
				case <-quit:
					return
				case t, ok := <-ready:
					if !ok {
						return
					}
					tk := &p.tasks[t]
					name := p.g.Stages[tk.stage].Name
					if err := ctx.Err(); err != nil {
						fail(name, fmt.Errorf("henn: %s: %w", name, err))
						return
					}
					rs.announce(tk.stage)
					if err := rs.execOp(tk.ops[0], worker, t); err != nil {
						fail(name, err)
						return
					}
					for _, c := range tk.children {
						if atomic.AddInt32(&indeg[c], -1) == 0 {
							if rs.tel != nil {
								rs.tel.taskReady(c, time.Now())
							}
							ready <- c
						}
					}
					if atomic.AddInt32(&pending, -1) == 0 {
						close(ready)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return firstErr
}
