package dataset

import (
	"math"
	"math/rand"
)

// SyntheticMNIST generates n deterministic synthetic handwritten-digit
// images. Each digit class is defined by stroke templates (polylines in
// the unit square) rendered with a soft round brush after a random
// affine perturbation (rotation, anisotropic scale, shear, translation)
// plus additive pixel noise — the offline MNIST substitution
// (DESIGN.md §3 S1).
func SyntheticMNIST(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := Dataset{C: 1, H: MNISTRows, W: MNISTCols, Pixels: make([][]byte, n), Labels: make([]int, n)}
	for i := 0; i < n; i++ {
		label := rng.Intn(10)
		d.Labels[i] = label
		d.Pixels[i] = renderDigit(label, rng)
	}
	return d
}

type pt struct{ x, y float64 }

// arc returns points approximating an elliptical arc centred at (cx, cy)
// with radii (rx, ry) between angles a0 and a1 (radians, y axis down).
func arc(cx, cy, rx, ry, a0, a1 float64, steps int) []pt {
	out := make([]pt, steps+1)
	for i := 0; i <= steps; i++ {
		t := a0 + (a1-a0)*float64(i)/float64(steps)
		out[i] = pt{cx + rx*math.Cos(t), cy + ry*math.Sin(t)}
	}
	return out
}

// strokes returns the polyline templates of each digit, in unit-square
// coordinates (x right, y down, ink occupies roughly [0.2, 0.8]).
func strokes(digit int) [][]pt {
	switch digit {
	case 0:
		return [][]pt{arc(0.5, 0.5, 0.21, 0.3, 0, 2*math.Pi, 24)}
	case 1:
		return [][]pt{
			{{0.38, 0.32}, {0.52, 0.2}},
			{{0.52, 0.2}, {0.52, 0.8}},
		}
	case 2:
		top := arc(0.5, 0.35, 0.2, 0.15, math.Pi, 2.25*math.Pi, 12)
		return [][]pt{
			top,
			{top[len(top)-1], {0.3, 0.8}},
			{{0.3, 0.8}, {0.72, 0.8}},
		}
	case 3:
		return [][]pt{
			arc(0.47, 0.35, 0.18, 0.15, 0.75*math.Pi, 2.4*math.Pi, 14),
			arc(0.47, 0.65, 0.2, 0.16, 1.6*math.Pi, 3.25*math.Pi, 14),
		}
	case 4:
		return [][]pt{
			{{0.58, 0.2}, {0.27, 0.6}},
			{{0.27, 0.6}, {0.75, 0.6}},
			{{0.6, 0.33}, {0.6, 0.82}},
		}
	case 5:
		return [][]pt{
			{{0.7, 0.22}, {0.33, 0.22}},
			{{0.33, 0.22}, {0.31, 0.48}},
			arc(0.48, 0.62, 0.2, 0.17, 1.4*math.Pi, 2.9*math.Pi, 14),
		}
	case 6:
		body := arc(0.48, 0.62, 0.19, 0.18, 0, 2*math.Pi, 18)
		return [][]pt{
			{{0.62, 0.2}, {0.42, 0.45}},
			body,
		}
	case 7:
		return [][]pt{
			{{0.28, 0.22}, {0.72, 0.22}},
			{{0.72, 0.22}, {0.42, 0.8}},
		}
	case 8:
		return [][]pt{
			arc(0.5, 0.36, 0.16, 0.14, 0, 2*math.Pi, 16),
			arc(0.5, 0.66, 0.19, 0.16, 0, 2*math.Pi, 16),
		}
	case 9:
		head := arc(0.52, 0.38, 0.18, 0.16, 0, 2*math.Pi, 16)
		return [][]pt{
			head,
			{{0.7, 0.4}, {0.62, 0.8}},
		}
	}
	panic("dataset: digit out of range")
}

// renderDigit rasterizes one randomly perturbed digit to 28×28 bytes.
func renderDigit(digit int, rng *rand.Rand) []byte {
	// Random affine around the image center.
	theta := (rng.Float64()*2 - 1) * 0.22
	sx := 0.85 + rng.Float64()*0.3
	sy := 0.85 + rng.Float64()*0.3
	shear := (rng.Float64()*2 - 1) * 0.15
	tx := (rng.Float64()*2 - 1) * 0.07
	ty := (rng.Float64()*2 - 1) * 0.07
	cosT, sinT := math.Cos(theta), math.Sin(theta)
	xf := func(p pt) pt {
		// center, shear, scale, rotate, translate
		x := (p.x - 0.5) * sx
		y := (p.y - 0.5) * sy
		x += shear * y
		rx := cosT*x - sinT*y
		ry := sinT*x + cosT*y
		return pt{rx + 0.5 + tx, ry + 0.5 + ty}
	}

	acc := make([]float64, MNISTRows*MNISTCols)
	brush := 1.0 + rng.Float64()*0.5 // brush radius in pixels
	for _, stroke := range strokes(digit) {
		for s := 0; s+1 < len(stroke); s++ {
			a, b := xf(stroke[s]), xf(stroke[s+1])
			ax, ay := a.x*float64(MNISTCols-1), a.y*float64(MNISTRows-1)
			bx, by := b.x*float64(MNISTCols-1), b.y*float64(MNISTRows-1)
			segLen := math.Hypot(bx-ax, by-ay)
			steps := int(segLen*3) + 1
			for i := 0; i <= steps; i++ {
				t := float64(i) / float64(steps)
				px := ax + (bx-ax)*t
				py := ay + (by-ay)*t
				splat(acc, px, py, brush)
			}
		}
	}
	out := make([]byte, MNISTRows*MNISTCols)
	for i, v := range acc {
		val := 255 * (1 - math.Exp(-2.2*v))
		val += rng.NormFloat64() * 6
		if val < 0 {
			val = 0
		}
		if val > 255 {
			val = 255
		}
		out[i] = byte(math.Round(val))
	}
	return out
}

// splat deposits a Gaussian brush stamp at (px, py).
func splat(acc []float64, px, py, radius float64) {
	r := int(math.Ceil(radius * 2))
	x0, y0 := int(px), int(py)
	inv := 1 / (radius * radius)
	for dy := -r; dy <= r; dy++ {
		y := y0 + dy
		if y < 0 || y >= MNISTRows {
			continue
		}
		for dx := -r; dx <= r; dx++ {
			x := x0 + dx
			if x < 0 || x >= MNISTCols {
				continue
			}
			d2 := (float64(x)-px)*(float64(x)-px) + (float64(y)-py)*(float64(y)-py)
			acc[y*MNISTCols+x] += 0.35 * math.Exp(-d2*inv)
		}
	}
}
