package ring

import (
	"math/big"
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"

	"cnnhe/internal/zq"
)

// wordRing is the fast single-word limb backend for primes ≤ 61 bits.
//
// The hot kernels below (NTT, INTT, pointwise arithmetic) are written with
// the modulus constants hoisted into locals, butterflies unrolled two-wide
// over bounds-check-eliminated subslices, and the Barrett/Shoup reductions
// inlined by hand: at logN 11–14 these loops are the bulk of every
// homomorphic operation, and a per-element method call or bounds check is
// measurable. Lazy-reduction invariants (values carried in [0, 4q) across
// NTT stages, one correction pass at the end) are documented per kernel —
// see DESIGN.md §14 and the MaxWordModulusBits headroom comment in zq.
type wordRing struct {
	n    int
	logN int
	mod  zq.Modulus

	// psiRev[m+i] is ψ^{bitrev(i, log m·?)} laid out for the iterative
	// Cooley-Tukey NTT (index m+i at stage with m blocks), ψ a primitive
	// 2N-th root of unity.
	psiRev       []uint64
	psiRevShoup  []uint64
	ipsiRev      []uint64 // inverse-root table for the Gentleman-Sande INTT
	ipsiRevShoup []uint64
	nInv         uint64
	nInvShoup    uint64
	mask         uint64 // rejection mask for uniform sampling

	// scalars memoizes the Shoup constant per reduced scalar word, so
	// Rescale's repeated MulScalar(invQ) calls skip the big.Int reduction
	// and the hardware division in ShoupPrecomp. Copy-on-write map; the
	// mutex serializes writers only.
	scalars   atomic.Value // map[uint64]uint64: reduced scalar → Shoup constant
	scalarsMu sync.Mutex
}

// maxScalarCache bounds the per-subring scalar-constant cache. The working
// set is the invQ entries plus a handful of encoder constants — tiny — but
// adversarial scalar streams must not grow the map without bound.
const maxScalarCache = 512

func newWordRing(n int, q uint64, rng *rand.Rand) *wordRing {
	mod := zq.NewModulus(q)
	twoN := uint64(2 * n)
	if (q-1)%twoN != 0 {
		panic("ring: modulus not NTT-friendly for this degree")
	}
	logN := log2(n)
	psi := mod.PrimitiveNthRoot(twoN, rng)
	ipsi := mod.Inv(psi)
	r := &wordRing{
		n:            n,
		logN:         logN,
		mod:          mod,
		psiRev:       make([]uint64, n),
		psiRevShoup:  make([]uint64, n),
		ipsiRev:      make([]uint64, n),
		ipsiRevShoup: make([]uint64, n),
		mask:         (uint64(1) << uint(mod.Bits)) - 1,
	}
	// Powers of ψ in bit-reversed order (Longa–Naehrig layout).
	pw, ipw := uint64(1), uint64(1)
	pows := make([]uint64, n)
	ipows := make([]uint64, n)
	for i := 0; i < n; i++ {
		pows[i], ipows[i] = pw, ipw
		pw = mod.Mul(pw, psi)
		ipw = mod.Mul(ipw, ipsi)
	}
	for i := 0; i < n; i++ {
		j := bitrev(i, logN)
		r.psiRev[j] = pows[i]
		r.psiRevShoup[j] = mod.ShoupPrecomp(pows[i])
		r.ipsiRev[j] = ipows[i]
		r.ipsiRevShoup[j] = mod.ShoupPrecomp(ipows[i])
	}
	r.nInv = mod.Inv(uint64(n))
	r.nInvShoup = mod.ShoupPrecomp(r.nInv)
	return r
}

func (r *wordRing) N() int              { return r.n }
func (r *wordRing) Width() int          { return 1 }
func (r *wordRing) Modulus() *big.Int   { return new(big.Int).SetUint64(r.mod.Q) }
func (r *wordRing) BitLen() int         { return r.mod.Bits }
func (r *wordRing) ModulusWord() uint64 { return r.mod.Q }

// NTT: iterative Cooley-Tukey with lazy Harvey butterflies. Input in natural
// order fully reduced; output bit-reversed, fully reduced.
//
// Invariant: coefficients stay in [0, 4q) between stages. Each butterfly
// corrects its top input once ([0,4q) → [0,2q)), the Shoup-lazy twiddle
// product is < 2q for any 64-bit input, and both outputs land back in
// [0, 4q). A single two-step correction pass at the end brings everything
// to [0, q) — this is the headroom MaxWordModulusBits = 61 reserves.
func (r *wordRing) NTT(a []uint64) {
	q, twoQ := r.mod.Q, r.mod.TwoQ
	n := len(a)
	psi, psiS := r.psiRev, r.psiRevShoup
	t := n
	for m := 1; m < n>>1; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w, ws := psi[m+i], psiS[m+i]
			j1 := 2 * i * t
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t : j1+2*t]
			for j := 0; j < t; j += 2 {
				u0 := x[j]
				if u0 >= twoQ {
					u0 -= twoQ
				}
				y0 := y[j]
				h0, _ := bits.Mul64(y0, ws)
				v0 := y0*w - h0*q
				x[j] = u0 + v0
				y[j] = u0 + twoQ - v0

				u1 := x[j+1]
				if u1 >= twoQ {
					u1 -= twoQ
				}
				y1 := y[j+1]
				h1, _ := bits.Mul64(y1, ws)
				v1 := y1*w - h1*q
				x[j+1] = u1 + v1
				y[j+1] = u1 + twoQ - v1
			}
		}
	}
	// Last stage (t = 1): adjacent pairs, one twiddle per butterfly, fused
	// with the final [0,4q) → [0,q) correction.
	if n >= 2 {
		half := n >> 1
		phi := psi[half:n]
		phiS := psiS[half:n]
		for i := 0; i < half; i++ {
			u := a[2*i]
			if u >= twoQ {
				u -= twoQ
			}
			yv := a[2*i+1]
			h, _ := bits.Mul64(yv, phiS[i])
			v := yv*phi[i] - h*q
			x0 := u + v
			if x0 >= twoQ {
				x0 -= twoQ
			}
			if x0 >= q {
				x0 -= q
			}
			y0 := u + twoQ - v
			if y0 >= twoQ {
				y0 -= twoQ
			}
			if y0 >= q {
				y0 -= q
			}
			a[2*i] = x0
			a[2*i+1] = y0
		}
	}
}

// INTT: Gentleman-Sande, bit-reversed input → natural order output, fully
// reduced, including the 1/N scaling.
//
// Invariant: inputs fully reduced, coefficients stay in [0, 2q) between
// stages (sums corrected once, Shoup-lazy differences < 2q); the final 1/N
// Shoup multiply reduces to [0, q) with one conditional subtraction.
func (r *wordRing) INTT(a []uint64) {
	q, twoQ := r.mod.Q, r.mod.TwoQ
	n := len(a)
	ipsi, ipsiS := r.ipsiRev, r.ipsiRevShoup
	// First stage (t = 1): adjacent pairs, one twiddle per butterfly.
	if n >= 2 {
		half := n >> 1
		phi := ipsi[half:n]
		phiS := ipsiS[half:n]
		for i := 0; i < half; i++ {
			u, v := a[2*i], a[2*i+1]
			s := u + v
			if s >= twoQ {
				s -= twoQ
			}
			a[2*i] = s
			d := u + twoQ - v
			h, _ := bits.Mul64(d, phiS[i])
			a[2*i+1] = d*phi[i] - h*q
		}
	}
	t := 2
	for m := n >> 2; m >= 1; m >>= 1 {
		j1 := 0
		for i := 0; i < m; i++ {
			w, ws := ipsi[m+i], ipsiS[m+i]
			x := a[j1 : j1+t : j1+t]
			y := a[j1+t : j1+2*t : j1+2*t]
			for j := 0; j < t; j += 2 {
				u0, v0 := x[j], y[j]
				s0 := u0 + v0
				if s0 >= twoQ {
					s0 -= twoQ
				}
				x[j] = s0
				d0 := u0 + twoQ - v0
				h0, _ := bits.Mul64(d0, ws)
				y[j] = d0*w - h0*q

				u1, v1 := x[j+1], y[j+1]
				s1 := u1 + v1
				if s1 >= twoQ {
					s1 -= twoQ
				}
				x[j+1] = s1
				d1 := u1 + twoQ - v1
				h1, _ := bits.Mul64(d1, ws)
				y[j+1] = d1*w - h1*q
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	nInv, nInvS := r.nInv, r.nInvShoup
	for j := range a {
		x := a[j]
		h, _ := bits.Mul64(x, nInvS)
		v := x*nInv - h*q
		if v >= q {
			v -= q
		}
		a[j] = v
	}
}

func (r *wordRing) Add(a, b, out []uint64) {
	q := r.mod.Q
	a = a[:len(out)]
	b = b[:len(out)]
	for i := range out {
		s := a[i] + b[i]
		if s >= q {
			s -= q
		}
		out[i] = s
	}
}

func (r *wordRing) Sub(a, b, out []uint64) {
	q := r.mod.Q
	a = a[:len(out)]
	b = b[:len(out)]
	for i := range out {
		s := a[i] - b[i]
		if s > a[i] { // borrow
			s += q
		}
		out[i] = s
	}
}

func (r *wordRing) Neg(a, out []uint64) {
	q := r.mod.Q
	a = a[:len(out)]
	for i := range out {
		if a[i] == 0 {
			out[i] = 0
		} else {
			out[i] = q - a[i]
		}
	}
}

// MulCoeffs runs the 128-bit Barrett reduction (zq.Modulus.reduce128)
// inlined over the whole slab: per-element it is two Mul64 for the product,
// three Mul64 + carries for the quotient estimate, and a conditional
// correction.
func (r *wordRing) MulCoeffs(a, b, out []uint64) {
	q := r.mod.Q
	b0, b1 := r.mod.BRC[0], r.mod.BRC[1]
	a = a[:len(out)]
	b = b[:len(out)]
	for i := range out {
		hi, lo := bits.Mul64(a[i], b[i])
		ahi, _ := bits.Mul64(lo, b1)
		bhi, blo := bits.Mul64(lo, b0)
		chi, clo := bits.Mul64(hi, b1)
		mid, c1 := bits.Add64(blo, clo, 0)
		_, c2 := bits.Add64(mid, ahi, 0)
		qhat := hi*b0 + bhi + chi + c1 + c2
		v := lo - qhat*q
		for v >= q {
			v -= q
		}
		out[i] = v
	}
}

// MulCoeffsThenAdd fuses the Barrett product with the accumulate over the
// whole slab, keeping out[i] resident in a register across both steps.
func (r *wordRing) MulCoeffsThenAdd(a, b, out []uint64) {
	q := r.mod.Q
	b0, b1 := r.mod.BRC[0], r.mod.BRC[1]
	a = a[:len(out)]
	b = b[:len(out)]
	for i := range out {
		hi, lo := bits.Mul64(a[i], b[i])
		ahi, _ := bits.Mul64(lo, b1)
		bhi, blo := bits.Mul64(lo, b0)
		chi, clo := bits.Mul64(hi, b1)
		mid, c1 := bits.Add64(blo, clo, 0)
		_, c2 := bits.Add64(mid, ahi, 0)
		qhat := hi*b0 + bhi + chi + c1 + c2
		v := lo - qhat*q
		for v >= q {
			v -= q
		}
		s := out[i] + v
		if s >= q {
			s -= q
		}
		out[i] = s
	}
}

// scalarWord reduces s to a word in [0, q) without allocating on the common
// paths: non-negative word-sized scalars (every invQ entry and encoder
// constant) never touch big.Int arithmetic.
func (r *wordRing) scalarWord(s *big.Int) uint64 {
	if s.Sign() >= 0 && s.IsUint64() {
		v := s.Uint64()
		if v < r.mod.Q {
			return v
		}
		return v % r.mod.Q
	}
	return new(big.Int).Mod(s, r.Modulus()).Uint64()
}

// shoupFor returns the memoized Shoup constant for the reduced scalar sv.
func (r *wordRing) shoupFor(sv uint64) uint64 {
	cache, _ := r.scalars.Load().(map[uint64]uint64)
	if ss, ok := cache[sv]; ok {
		return ss
	}
	ss := r.mod.ShoupPrecomp(sv)
	r.scalarsMu.Lock()
	cur, _ := r.scalars.Load().(map[uint64]uint64)
	if _, ok := cur[sv]; !ok && len(cur) < maxScalarCache {
		next := make(map[uint64]uint64, len(cur)+1)
		for k, v := range cur {
			next[k] = v
		}
		next[sv] = ss
		r.scalars.Store(next)
	}
	r.scalarsMu.Unlock()
	return ss
}

func (r *wordRing) MulScalar(a []uint64, s *big.Int, out []uint64) {
	q := r.mod.Q
	sv := r.scalarWord(s)
	ss := r.shoupFor(sv)
	a = a[:len(out)]
	for i := range out {
		h, _ := bits.Mul64(a[i], ss)
		v := a[i]*sv - h*q
		if v >= q {
			v -= q
		}
		out[i] = v
	}
}

func (r *wordRing) SubScalarThenMulScalar(a []uint64, c, s *big.Int, out []uint64) {
	q := r.mod.Q
	cv := r.scalarWord(c)
	sv := r.scalarWord(s)
	ss := r.shoupFor(sv)
	a = a[:len(out)]
	for i := range out {
		d := a[i] - cv
		if d > a[i] { // borrow
			d += q
		}
		h, _ := bits.Mul64(d, ss)
		v := d*sv - h*q
		if v >= q {
			v -= q
		}
		out[i] = v
	}
}

func (r *wordRing) Automorphism(a []uint64, galEl uint64, out []uint64) {
	n := uint64(r.n)
	twoN := 2 * n
	mask := twoN - 1
	for i := uint64(0); i < n; i++ {
		j := (i * galEl) & mask
		if j < n {
			out[j] = a[i]
		} else {
			out[j-n] = r.mod.Neg(a[i])
		}
	}
}

func (r *wordRing) ReduceFrom(src SubRing, a, out []uint64) {
	switch s := src.(type) {
	case *wordRing:
		if s.mod.Q == r.mod.Q {
			copy(out, a)
			return
		}
		q := r.mod.Q
		a = a[:len(out)]
		for i := range out {
			v := a[i]
			if v >= q {
				v %= q
			}
			out[i] = v
		}
	case *wideRing:
		a = a[:2*len(out)]
		for i := range out {
			out[i] = r.mod.Reduce128(a[2*i+1], a[2*i])
		}
	default:
		panic("ring: unknown source subring")
	}
}

func (r *wordRing) SetCoeffBig(a []uint64, j int, v *big.Int) {
	a[j] = v.Uint64()
}

func (r *wordRing) CoeffBig(a []uint64, j int, out *big.Int) {
	out.SetUint64(a[j])
}

func (r *wordRing) SetCoeffInt64(a []uint64, j int, v int64) {
	if v >= 0 {
		a[j] = r.mod.Reduce(uint64(v))
	} else {
		a[j] = r.mod.Neg(r.mod.Reduce(uint64(-v)))
	}
}

func (r *wordRing) SetCoeffsInt64(a []uint64, vec []int64) {
	q := r.mod.Q
	a = a[:len(vec)]
	for j, v := range vec {
		if v >= 0 {
			u := uint64(v)
			if u >= q {
				u %= q
			}
			a[j] = u
		} else {
			u := uint64(-v)
			if u >= q {
				u %= q
			}
			if u != 0 {
				u = q - u
			}
			a[j] = u
		}
	}
}

func (r *wordRing) SampleUniform(rng *rand.Rand, a []uint64) {
	for i := range a {
		for {
			v := rng.Uint64() & r.mask
			if v < r.mod.Q {
				a[i] = v
				break
			}
		}
	}
}
