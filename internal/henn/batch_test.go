package henn

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestBatchParityWithSingleInference: InferBatchCtx over B packed images
// must match B independent single-image InferCtx runs on the unbatched
// plan, for B ∈ {1, 2, max}. The tiled plan evaluates blockdiag(M, …, M)
// rather than M, so logits agree within CKKS approximation error, not
// bit-for-bit.
func TestBatchParityWithSingleInference(t *testing.T) {
	m := tinyModel(41)
	base, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	const maxBatch = 4
	for _, B := range []int{1, 2, maxBatch} {
		t.Run(string(rune('0'+B)), func(t *testing.T) {
			bp, err := CompileBatched(m, 512, B)
			if err != nil {
				t.Fatal(err)
			}
			e := rnsEngineFor(t, bp.Plan, 10, []int{40, 30, 30, 30, 30})
			rng := rand.New(rand.NewSource(int64(42 + B)))
			images := make([][]float64, B)
			for i := range images {
				images[i] = testImage(rng, 64)
			}
			got, rep, err := bp.InferBatchCtx(context.Background(), e, images)
			if err != nil {
				t.Fatal(err)
			}
			if rep == nil || rep.Eval <= 0 || len(rep.Stages) == 0 {
				t.Fatalf("batch report not filled: %+v", rep)
			}
			// Reference: one engine per run so PRNG state does not couple
			// the batched and single paths.
			ref := rnsEngineFor(t, base, 10, []int{40, 30, 30, 30, 30})
			for b, img := range images {
				want, _, err := base.InferCtx(context.Background(), ref, img)
				if err != nil {
					t.Fatalf("single inference %d: %v", b, err)
				}
				if len(got[b]) != len(want) {
					t.Fatalf("image %d: %d logits vs %d", b, len(got[b]), len(want))
				}
				for i := range want {
					if math.Abs(got[b][i]-want[i]) > 0.05 {
						t.Fatalf("B=%d image %d logit %d: batched %g single %g",
							B, b, i, got[b][i], want[i])
					}
				}
				if got[b].Argmax() != want.Argmax() {
					t.Fatalf("B=%d image %d prediction mismatch", B, b)
				}
			}
		})
	}
}

// TestBatchErrorCases: the batched entry points classify caller mistakes
// as ErrBadInput before any ciphertext work.
func TestBatchErrorCases(t *testing.T) {
	m := tinyModel(43)
	if _, err := CompileBatched(m, 512, 3); err == nil {
		t.Fatal("non-divisor batch must be rejected")
	}
	bp, err := CompileBatched(m, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, bp.Plan, 10, []int{40, 30, 30, 30, 30})
	rng := rand.New(rand.NewSource(44))

	// Image wider than the block.
	wide := testImage(rng, bp.BlockSize+1)
	if _, _, err := bp.InferBatchCtx(context.Background(), e, [][]float64{wide}); !errors.Is(err, ErrBadInput) {
		t.Fatalf("oversize image: want ErrBadInput, got %v", err)
	}
	// Too many images for the batch.
	over := make([][]float64, bp.Batch+1)
	for i := range over {
		over[i] = testImage(rng, 64)
	}
	if _, _, err := bp.InferBatchCtx(context.Background(), e, over); !errors.Is(err, ErrBadInput) {
		t.Fatalf("overfull batch: want ErrBadInput, got %v", err)
	}
	// Empty batch.
	if _, _, err := bp.InferBatchCtx(context.Background(), e, nil); !errors.Is(err, ErrBadInput) {
		t.Fatalf("empty batch: want ErrBadInput, got %v", err)
	}
	// The report names the failing stage even on validation errors.
	_, rep, _ := bp.InferBatchCtx(context.Background(), e, nil)
	if rep == nil || rep.FailedStage != "pack" {
		t.Fatalf("want FailedStage pack, got %+v", rep)
	}
}

// TestBatchContextCancellation: a cancelled context aborts the batched
// evaluation with the context's error and a named failed stage.
func TestBatchContextCancellation(t *testing.T) {
	m := tinyModel(45)
	bp, err := CompileBatched(m, 512, 2)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, bp.Plan, 10, []int{40, 30, 30, 30, 30})
	rng := rand.New(rand.NewSource(46))
	images := [][]float64{testImage(rng, 64), testImage(rng, 64)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, rep, err := bp.InferBatchCtx(ctx, e, images)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if rep == nil || rep.FailedStage == "" {
		t.Fatalf("report should name the failed stage, got %+v", rep)
	}
}

func TestCompileBatchedValidation(t *testing.T) {
	m := tinyModel(31)
	if _, err := CompileBatched(m, 512, 3); err == nil {
		t.Fatal("batch must divide slots")
	}
	// Block too small for the model's 64-dim input.
	if _, err := CompileBatched(m, 512, 16); err == nil {
		t.Fatal("expected block-size error for batch 16 (block 32 < dim 64)")
	}
	bp, err := CompileBatched(m, 512, 4) // block 128 ≥ 64
	if err != nil {
		t.Fatal(err)
	}
	if bp.BlockSize != 128 || bp.Batch != 4 {
		t.Fatalf("unexpected layout %+v", bp)
	}
	if bp.Plan.Depth != 4 {
		t.Fatalf("batching must not change depth: %d", bp.Plan.Depth)
	}
}

func TestBatchedInferenceMatchesPlaintext(t *testing.T) {
	m := tinyModel(33)
	bp, err := CompileBatched(m, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, bp.Plan, 10, []int{40, 30, 30, 30, 30})
	rng := rand.New(rand.NewSource(34))
	images := [][]float64{
		testImage(rng, 64), testImage(rng, 64), testImage(rng, 64), testImage(rng, 64),
	}
	logits, lat, err := bp.InferBatch(e, images)
	if err != nil {
		t.Fatal(err)
	}
	if lat <= 0 {
		t.Fatal("latency not measured")
	}
	for b, img := range images {
		want := plainForward(m, img, 1, 8, 8)
		for i := range want {
			if math.Abs(logits[b][i]-want[i]) > 0.05 {
				t.Fatalf("image %d logit %d: got %g want %g", b, i, logits[b][i], want[i])
			}
		}
	}
}

func TestBatchedPartialBatch(t *testing.T) {
	m := tinyModel(35)
	bp, err := CompileBatched(m, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, bp.Plan, 10, []int{40, 30, 30, 30, 30})
	rng := rand.New(rand.NewSource(36))
	images := [][]float64{testImage(rng, 64), testImage(rng, 64)}
	logits, _, err := bp.InferBatch(e, images)
	if err != nil {
		t.Fatal(err)
	}
	if len(logits) != 2 {
		t.Fatalf("want 2 results, got %d", len(logits))
	}
	for b, img := range images {
		want := plainForward(m, img, 1, 8, 8)
		if logits[b].Argmax() != Logits(want).Argmax() {
			t.Fatalf("image %d prediction mismatch", b)
		}
	}
	// Overfull batch rejected.
	six := append(images, images...)
	six = append(six, images...)
	if _, _, err := bp.InferBatch(e, six); err == nil {
		t.Fatal("expected error for overfull batch")
	}
}

func TestBatchOfOneMatchesPlain(t *testing.T) {
	m := tinyModel(37)
	bp, err := CompileBatched(m, 512, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	e := rnsEngineFor(t, plan, 10, []int{40, 30, 30, 30, 30})
	rng := rand.New(rand.NewSource(38))
	img := testImage(rng, 64)
	a, _ := plan.Infer(e, img)
	bs, _, err := bp.InferBatch(e, [][]float64{img})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if math.Abs(a[i]-bs[0][i]) > 0.02 {
			t.Fatalf("batch-of-one differs at logit %d", i)
		}
	}
}
