// Privacy-preserving medical image triage — the application domain the
// paper's conclusion motivates ("explore the applicability of proposed
// models for sensitive domains such as medical image classification").
//
// A synthetic 28×28 "lesion scan" dataset is generated (no real medical
// data exists offline; the substitution exercises the identical encrypted
// code path): class 0 = small regular lesion, class 1 = large irregular
// lesion. A compact CNN with SLAF activations is trained in the clear, and
// encrypted scans are classified under CKKS-RNS so that the "hospital's"
// images never leave encryption.
//
// Run: go run ./examples/medical
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"cnnhe/internal/ckks"
	"cnnhe/internal/henn"
	"cnnhe/internal/nn"
	"cnnhe/internal/tensor"
)

const size = 28

// synthScan renders a blob with the given radius and boundary irregularity.
func synthScan(rng *rand.Rand, malignant bool) []float64 {
	cx := 13.5 + rng.Float64()*3 - 1.5
	cy := 13.5 + rng.Float64()*3 - 1.5
	radius := 4.0 + rng.Float64()*1.5
	irreg := 0.4
	if malignant {
		radius = 7.0 + rng.Float64()*2.5
		irreg = 2.6
	}
	// Random boundary perturbation by a few harmonics.
	phase := [3]float64{rng.Float64() * 2 * math.Pi, rng.Float64() * 2 * math.Pi, rng.Float64() * 2 * math.Pi}
	img := make([]float64, size*size)
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			dx, dy := float64(x)-cx, float64(y)-cy
			r := math.Hypot(dx, dy)
			theta := math.Atan2(dy, dx)
			edge := radius +
				irreg*math.Sin(3*theta+phase[0]) +
				irreg*0.6*math.Sin(5*theta+phase[1]) +
				irreg*0.4*math.Sin(7*theta+phase[2])
			v := 220 / (1 + math.Exp((r-edge)*1.6)) // soft disc
			v += rng.NormFloat64() * 8              // scanner noise
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			img[y*size+x] = math.Round(v)
		}
	}
	return img
}

func dataset(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	images := make([][]float64, n)
	labels := make([]int, n)
	for i := range images {
		labels[i] = rng.Intn(2)
		images[i] = synthScan(rng, labels[i] == 1)
	}
	return images, labels
}

func toNN(images [][]float64, labels []int) nn.Dataset {
	ds := nn.Dataset{Labels: labels}
	for _, img := range images {
		t := tensor.New(1, size, size)
		for j, v := range img {
			t.Data[j] = v / 255
		}
		ds.Images = append(ds.Images, t)
	}
	return ds
}

func main() {
	trainImgs, trainLbls := dataset(1200, 1)
	testImgs, testLbls := dataset(200, 2)
	trainDS := toNN(trainImgs, trainLbls)
	testDS := toNN(testImgs, testLbls)

	// Compact CNN: Conv(1→4, 5×5, s2) → SLAF → FC(676→16) → SLAF → FC(16→2).
	rng := rand.New(rand.NewSource(3))
	conv := nn.NewConv2D(rng, 1, 4, 5, 2, 1, size, size)
	flat := conv.OutC * conv.OutH() * conv.OutW()
	model := &nn.Model{Layers: []nn.Layer{
		conv, nn.NewReLU(), nn.NewFlatten(),
		nn.NewDense(rng, flat, 16), nn.NewReLU(),
		nn.NewDense(rng, 16, 2),
	}}
	fmt.Println("training lesion classifier...")
	nn.Train(model, trainDS, nn.TrainConfig{Epochs: 6, BatchSize: 32, MaxLR: 0.05, Momentum: 0.9, Seed: 4})
	rc := nn.DefaultRetrofitConfig()
	rc.Epochs = 2
	slaf := nn.Retrofit(model, trainDS, rc)
	fmt.Printf("plaintext SLAF accuracy: %.1f%%\n", 100*nn.Evaluate(slaf, testDS))

	const logN = 11
	plan, err := henn.Compile(slaf, 1<<(logN-1))
	if err != nil {
		log.Fatal(err)
	}
	bits := []int{40}
	for i := 0; i < plan.Depth-1; i++ {
		bits = append(bits, 30)
	}
	bits = append(bits, 40)
	params, err := ckks.NewParameters(logN, bits, 60, 1, math.Exp2(30))
	if err != nil {
		log.Fatal(err)
	}
	engine, err := henn.NewRNSEngine(params, plan.Rotations(), 9)
	if err != nil {
		log.Fatal(err)
	}

	names := [2]string{"benign ", "suspect"}
	correct := 0
	n := 4
	fmt.Println("\nencrypted triage (the clinic's scans stay encrypted):")
	for i := 0; i < n; i++ {
		logits, lat := plan.Infer(engine, testImgs[i])
		pred := logits.Argmax()
		if pred == testLbls[i] {
			correct++
		}
		fmt.Printf("  scan %d: true %s  HE verdict %s  (%.2fs)\n",
			i, names[testLbls[i]], names[pred], lat.Seconds())
	}
	fmt.Printf("\nencrypted accuracy: %d/%d\n", correct, n)
}
