package henn

import (
	"sync"

	"cnnhe/internal/telemetry"
)

// inferTelSet bundles the inference-level instruments. Registered once,
// on the first inference that finds telemetry enabled.
type inferTelSet struct {
	inflight    *telemetry.Gauge
	infers      *telemetry.Counter
	cacheHits   *telemetry.Counter
	cacheMisses *telemetry.Counter
}

var (
	inferTelOnce sync.Once
	inferTelVal  *inferTelSet
)

// inferTel returns the instrument set, or nil when telemetry is
// disabled (the hot-path cost of the off state is this one flag load).
func inferTel() *inferTelSet {
	if !telemetry.Enabled() {
		return nil
	}
	inferTelOnce.Do(func() {
		r := telemetry.Default()
		inferTelVal = &inferTelSet{
			inflight: r.Gauge("cnnhe_infer_inflight",
				"encrypted inferences currently executing"),
			infers: r.Counter("cnnhe_infer_total",
				"encrypted inferences started"),
			cacheHits: r.Counter("cnnhe_prepare_cache_hits_total",
				"plan preparations served from the per-engine prepared-graph cache"),
			cacheMisses: r.Counter("cnnhe_prepare_cache_misses_total",
				"plan preparations that lowered and encoded a fresh graph"),
		}
	})
	return inferTelVal
}

// telInferStart counts one inference and raises the in-flight gauge;
// the returned func lowers it again (always non-nil).
func telInferStart() func() {
	t := inferTel()
	if t == nil {
		return func() {}
	}
	t.infers.Inc()
	t.inflight.Add(1)
	return func() { t.inflight.Add(-1) }
}

// telPrepare counts one prepared-graph cache lookup.
func telPrepare(hit bool) {
	t := inferTel()
	if t == nil {
		return
	}
	if hit {
		t.cacheHits.Inc()
	} else {
		t.cacheMisses.Inc()
	}
}
