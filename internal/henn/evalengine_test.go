package henn

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cnnhe/internal/ckks"
	"cnnhe/internal/henn/exec"
)

// evalKit builds client-side key material plus the matched full/eval
// engine pair the encrypted-inference protocol uses: the full engine is
// the client (holds sk), the eval engine is the server (holds only key
// material that crossed the wire).
type evalKit struct {
	plan *Plan
	full *RNSEngine
	eval *RNSEvalEngine
}

func newEvalKit(t testing.TB) *evalKit {
	t.Helper()
	m := tinyModel(3)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ckks.NewParameters(10, []int{40, 30, 30, 30, 30}, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.CheckDepth(p.MaxLevel()); err != nil {
		t.Fatal(err)
	}
	ctx, err := ckks.NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(ctx, 77)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	rtk := kg.GenRotationKeys(sk, plan.Rotations(), false)

	// Ship the evaluation keys through the wire format, as a real server
	// would receive them.
	var buf bytes.Buffer
	if err := ctx.WriteKeyBundle(&buf, &ckks.KeyBundle{
		ParamsDigest: p.ParamsDigest(),
		PK:           pk,
		RLK:          rlk,
		RTK:          rtk,
	}); err != nil {
		t.Fatal(err)
	}
	bundle, err := ctx.ReadKeyBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return &evalKit{
		plan: plan,
		full: NewRNSEngineFromKeys(ctx, sk, pk, rlk, rtk, 1234),
		eval: NewRNSEvalEngine(ctx, bundle.RLK, bundle.RTK),
	}
}

// TestEvalEngineGraphParity is the protocol's correctness core: a graph
// evaluated by the eval-only engine on wire-format keys produces output
// bit-identical to the full engine's.
func TestEvalEngineGraphParity(t *testing.T) {
	k := newEvalKit(t)
	g, err := k.plan.Lower(k.full)
	if err != nil {
		t.Fatal(err)
	}
	pFull, err := exec.Prepare(k.full, g)
	if err != nil {
		t.Fatal(err)
	}
	gEval, err := k.plan.Lower(k.eval)
	if err != nil {
		t.Fatal(err)
	}
	pEval, err := exec.Prepare(k.eval, gEval)
	if err != nil {
		t.Fatal(err)
	}

	img := testImage(rand.New(rand.NewSource(5)), 64)
	cts, _, _, err := pFull.EncryptInputs(context.Background(), [][]float64{img})
	if err != nil {
		t.Fatal(err)
	}
	rFull, err := pFull.RunEncrypted(context.Background(), cts, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rEval, err := pEval.RunEncrypted(context.Background(), cts, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := k.full.DecryptVec(rFull.Out)[:k.plan.OutputDim]
	b := k.full.DecryptVec(rEval.Out)[:k.plan.OutputDim]
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("logit %d differs: full %v eval %v", i, a[i], b[i])
		}
	}
}

// TestEvalEnginePanicsOnSecretOps pins the interface escape hatches shut.
func TestEvalEnginePanicsOnSecretOps(t *testing.T) {
	k := newEvalKit(t)
	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("EncryptVec", func() { k.eval.EncryptVec([]float64{1}) })
	ct := k.full.EncryptVec(make([]float64, k.eval.Slots()))
	expectPanic("DecryptVec", func() { k.eval.DecryptVec(ct) })
}

// TestEvalEngineHoldsNoSecretKey walks the entire reachable object graph
// of an RNSEvalEngine and asserts no ckks.SecretKey or ckks.Decryptor
// value is reachable from it — the "server cannot decrypt" property as a
// structural invariant rather than a code-review promise.
func TestEvalEngineHoldsNoSecretKey(t *testing.T) {
	k := newEvalKit(t)
	forbidden := map[string]bool{
		reflect.TypeOf(ckks.SecretKey{}).String(): true,
		reflect.TypeOf(ckks.Decryptor{}).String(): true,
		reflect.TypeOf(ckks.Encryptor{}).String(): true,
	}
	seen := map[uintptr]bool{}
	var walk func(v reflect.Value, path string)
	walk = func(v reflect.Value, path string) {
		if !v.IsValid() {
			return
		}
		switch v.Kind() {
		case reflect.Ptr, reflect.Interface:
			if v.IsNil() {
				return
			}
			if v.Kind() == reflect.Ptr {
				p := v.Pointer()
				if seen[p] {
					return
				}
				seen[p] = true
			}
			walk(v.Elem(), path)
		case reflect.Struct:
			if forbidden[v.Type().String()] {
				t.Fatalf("forbidden type %s reachable at %s", v.Type(), path)
			}
			for i := 0; i < v.NumField(); i++ {
				walk(v.Field(i), path+"."+v.Type().Field(i).Name)
			}
		case reflect.Map:
			iter := v.MapRange()
			for iter.Next() {
				walk(iter.Value(), path+"[map]")
			}
		case reflect.Slice, reflect.Array:
			// Key material bottoms out in numeric slices; only descend
			// into element kinds that can hold pointers.
			switch v.Type().Elem().Kind() {
			case reflect.Ptr, reflect.Interface, reflect.Struct, reflect.Map, reflect.Slice:
				for i := 0; i < v.Len(); i++ {
					walk(v.Index(i), path+"[i]")
				}
			}
		}
	}
	walk(reflect.ValueOf(k.eval), "RNSEvalEngine")

	// Sanity-check the walker itself: it must flag the full engine.
	flagged := func() (found bool) {
		defer func() { _ = recover() }()
		v := reflect.ValueOf(k.full).Elem()
		for i := 0; i < v.NumField(); i++ {
			f := v.Field(i)
			if f.Kind() == reflect.Ptr && !f.IsNil() && forbidden[f.Type().Elem().String()] {
				return true
			}
		}
		return false
	}()
	if !flagged {
		t.Fatal("walker sanity check failed: full engine's secret state not detected")
	}
}
