package telemetry

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// TraceContext is a W3C Trace Context (traceparent) identity: a 16-byte
// trace ID shared by every span of one distributed request, and an
// 8-byte span ID naming one hop. The server-side span ID doubles as the
// request ID surfaced in HTTP responses, slog lines and the flight
// recorder, so a client report line, a log line and a span tree can be
// joined on either identifier.
type TraceContext struct {
	TraceID [16]byte
	SpanID  [8]byte
	// Flags is the trace-flags octet (bit 0 = sampled). Requests carry
	// it through unchanged; this codebase always records.
	Flags byte
}

// traceparentVersion is the only version this parser emits. Per the W3C
// spec, higher-versioned headers are still parsed as version 00.
const traceparentVersion = "00"

// Valid reports whether the context carries usable identifiers (the
// all-zero trace ID and span ID are forbidden by the spec).
func (tc TraceContext) Valid() bool {
	return tc.TraceID != [16]byte{} && tc.SpanID != [8]byte{}
}

// TraceIDString returns the 32-hex-digit trace ID.
func (tc TraceContext) TraceIDString() string { return hex.EncodeToString(tc.TraceID[:]) }

// SpanIDString returns the 16-hex-digit span ID.
func (tc TraceContext) SpanIDString() string { return hex.EncodeToString(tc.SpanID[:]) }

// Traceparent renders the context as a W3C traceparent header value,
// e.g. "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01".
func (tc TraceContext) Traceparent() string {
	return fmt.Sprintf("%s-%s-%s-%02x",
		traceparentVersion, tc.TraceIDString(), tc.SpanIDString(), tc.Flags)
}

// Child returns a context with the same trace ID and a fresh span ID —
// the server-side hop of a client-initiated trace.
func (tc TraceContext) Child() TraceContext {
	out := tc
	out.SpanID = newSpanID()
	return out
}

// ParseTraceparent parses a traceparent header value. The version field
// is accepted as any two lowercase hex digits except "ff"; trailing
// vendor fields of future versions are ignored, per the spec.
func ParseTraceparent(s string) (TraceContext, error) {
	var tc TraceContext
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 {
		return tc, fmt.Errorf("telemetry: traceparent %q: want version-traceid-spanid-flags", s)
	}
	ver, traceID, spanID, flags := parts[0], parts[1], parts[2], parts[3]
	if len(ver) != 2 || !isLowerHex(ver) || ver == "ff" {
		return tc, fmt.Errorf("telemetry: traceparent %q: bad version %q", s, ver)
	}
	if ver == traceparentVersion && len(parts) != 4 {
		return tc, fmt.Errorf("telemetry: traceparent %q: version 00 has exactly 4 fields", s)
	}
	if len(traceID) != 32 || !isLowerHex(traceID) {
		return tc, fmt.Errorf("telemetry: traceparent %q: bad trace ID", s)
	}
	if len(spanID) != 16 || !isLowerHex(spanID) {
		return tc, fmt.Errorf("telemetry: traceparent %q: bad span ID", s)
	}
	if len(flags) != 2 || !isLowerHex(flags) {
		return tc, fmt.Errorf("telemetry: traceparent %q: bad flags", s)
	}
	hex.Decode(tc.TraceID[:], []byte(traceID))
	hex.Decode(tc.SpanID[:], []byte(spanID))
	var fb [1]byte
	hex.Decode(fb[:], []byte(flags))
	tc.Flags = fb[0]
	if !tc.Valid() {
		return TraceContext{}, fmt.Errorf("telemetry: traceparent %q: all-zero identifier", s)
	}
	return tc, nil
}

func isLowerHex(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// idState seeds span/trace ID generation once from crypto/rand and then
// derives IDs with a cheap atomic counter mix, so the per-request path
// never blocks on the system entropy pool.
var idState struct {
	once sync.Once
	base [24]byte
	ctr  atomic.Uint64
}

func initIDState() {
	idState.once.Do(func() {
		if _, err := crand.Read(idState.base[:]); err != nil {
			// Entropy failure: fall back to a fixed base; the counter mix
			// still keeps IDs unique within the process.
			copy(idState.base[:], []byte("cnnhe-trace-fallback-seed!!!"))
		}
	})
}

// splitmix64 scrambles a counter value into a well-distributed word.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func newSpanID() [8]byte {
	initIDState()
	var id [8]byte
	seed := binary.LittleEndian.Uint64(idState.base[16:])
	binary.LittleEndian.PutUint64(id[:], splitmix64(seed^idState.ctr.Add(1)))
	if id == [8]byte{} {
		id[7] = 1
	}
	return id
}

// NewTraceContext generates a fresh sampled trace context (server-side
// origin: no client supplied a traceparent).
func NewTraceContext() TraceContext {
	initIDState()
	var tc TraceContext
	n := idState.ctr.Add(1)
	a := binary.LittleEndian.Uint64(idState.base[0:])
	b := binary.LittleEndian.Uint64(idState.base[8:])
	binary.LittleEndian.PutUint64(tc.TraceID[0:], splitmix64(a^n))
	binary.LittleEndian.PutUint64(tc.TraceID[8:], splitmix64(b^n))
	tc.SpanID = newSpanID()
	tc.Flags = 1
	if tc.TraceID == [16]byte{} {
		tc.TraceID[15] = 1
	}
	return tc
}

// ----- context plumbing -----

type traceCtxKey struct{}

// WithTraceContext attaches tc to ctx; layers below (the executor, the
// guard, flight recording) read it back with TraceContextFrom.
func WithTraceContext(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceCtxKey{}, tc)
}

// TraceContextFrom extracts the trace context attached by
// WithTraceContext. ok is false when none is attached (or ctx is nil).
func TraceContextFrom(ctx context.Context) (TraceContext, bool) {
	if ctx == nil {
		return TraceContext{}, false
	}
	tc, ok := ctx.Value(traceCtxKey{}).(TraceContext)
	return tc, ok && tc.Valid()
}
