package client

import (
	"fmt"
	"math/big"

	"cnnhe/internal/ckks"
	"cnnhe/internal/primes"
)

// ParamsInfoOf describes p for the wire.
func ParamsInfoOf(p ckks.Parameters) ParamsInfo {
	moduli := make([]string, len(p.Chain.Moduli))
	for i, q := range p.Chain.Moduli {
		moduli[i] = q.String()
	}
	bits := make([]int, len(p.Chain.BitSizes))
	copy(bits, p.Chain.BitSizes)
	return ParamsInfo{
		LogN:         p.LogN,
		Scale:        p.Scale,
		H:            p.H,
		Sigma:        p.Sigma,
		RingSeed:     p.RingSeed,
		Moduli:       moduli,
		BitSizes:     bits,
		SpecialCount: p.Chain.SpecialCount,
		Fingerprint:  p.Fingerprint(),
	}
}

// ParamsFromInfo reconstructs the server's exact ckks.Parameters from a
// wire descriptor and verifies the reconstruction against the advertised
// fingerprint — a mismatch means client and server would disagree on the
// ring and every ciphertext would be garbage, so it fails here instead.
func ParamsFromInfo(pi ParamsInfo) (ckks.Parameters, error) {
	if len(pi.Moduli) == 0 {
		return ckks.Parameters{}, fmt.Errorf("client: params info carries no moduli")
	}
	if len(pi.BitSizes) != len(pi.Moduli) {
		return ckks.Parameters{}, fmt.Errorf("client: %d bit sizes for %d moduli", len(pi.BitSizes), len(pi.Moduli))
	}
	if pi.SpecialCount < 0 || pi.SpecialCount >= len(pi.Moduli) {
		return ckks.Parameters{}, fmt.Errorf("client: special count %d out of range", pi.SpecialCount)
	}
	moduli := make([]*big.Int, len(pi.Moduli))
	for i, s := range pi.Moduli {
		q, ok := new(big.Int).SetString(s, 10)
		if !ok {
			return ckks.Parameters{}, fmt.Errorf("client: modulus %d is not a decimal integer: %q", i, s)
		}
		moduli[i] = q
	}
	p := ckks.Parameters{
		LogN:     pi.LogN,
		Scale:    pi.Scale,
		H:        pi.H,
		Sigma:    pi.Sigma,
		RingSeed: pi.RingSeed,
		Chain: primes.Chain{
			Moduli:       moduli,
			BitSizes:     pi.BitSizes,
			SpecialCount: pi.SpecialCount,
		},
	}
	if pi.Fingerprint != "" && p.Fingerprint() != pi.Fingerprint {
		return ckks.Parameters{}, fmt.Errorf("client: reconstructed params fingerprint %s does not match advertised %s",
			p.Fingerprint(), pi.Fingerprint)
	}
	return p, nil
}
