package ring

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"cnnhe/internal/primes"
)

// Kernel micro-benchmarks (`make bench-kernels`): NTT, pointwise multiply
// and the rescale division per limb count, serial vs pool-parallel, with
// -benchmem so the zero-hot-path-allocation property stays visible. The
// parallel/serial pair at a given limb count is the limb-level speedup the
// revived pool delivers; it scales with GOMAXPROCS.

// benchRing builds a paper-shaped word chain (40, 26×(limbs−2), 40 + one
// 60-bit special) at the production degree.
func benchRing(b *testing.B, logN, limbs int, parallel bool) *Ring {
	b.Helper()
	bits := make([]int, limbs)
	bits[0] = 40
	for i := 1; i < limbs-1; i++ {
		bits[i] = 26
	}
	bits[limbs-1] = 40
	chain, err := primes.BuildChain(logN, bits, 60, 1)
	if err != nil {
		b.Fatal(err)
	}
	r, err := NewRing(1<<logN, chain.Moduli, 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	r.Parallel = parallel
	return r
}

func benchPoly(r *Ring, seed int64) *Poly {
	rng := rand.New(rand.NewSource(seed))
	p := r.NewPoly(r.MaxLevel())
	for _, i := range r.Limbs(r.MaxLevel(), true) {
		r.SubRings[i].SampleUniform(rng, p.Coeffs[i])
	}
	return p
}

// kernelCases sweeps the limb counts a CNN1/CNN2 evaluation actually passes
// through (fresh ciphertext down to the last rescale), serial and parallel.
func kernelCases() []struct {
	limbs    int
	parallel bool
} {
	var cases []struct {
		limbs    int
		parallel bool
	}
	for _, limbs := range []int{2, 4, 8, 13} {
		for _, par := range []bool{false, true} {
			cases = append(cases, struct {
				limbs    int
				parallel bool
			}{limbs, par})
		}
	}
	return cases
}

func BenchmarkKernelNTT(b *testing.B) {
	for _, tc := range kernelCases() {
		b.Run(fmt.Sprintf("limbs=%d/parallel=%v", tc.limbs, tc.parallel), func(b *testing.B) {
			r := benchRing(b, 12, tc.limbs, tc.parallel)
			p := benchPoly(r, 1)
			limbs := r.Limbs(r.MaxLevel(), true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.NTT(limbs, p)
				r.INTT(limbs, p)
			}
		})
	}
}

func BenchmarkKernelMulCoeffs(b *testing.B) {
	for _, tc := range kernelCases() {
		b.Run(fmt.Sprintf("limbs=%d/parallel=%v", tc.limbs, tc.parallel), func(b *testing.B) {
			r := benchRing(b, 12, tc.limbs, tc.parallel)
			x := benchPoly(r, 1)
			y := benchPoly(r, 2)
			out := r.NewPoly(r.MaxLevel())
			limbs := r.Limbs(r.MaxLevel(), true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.MulCoeffs(limbs, x, y, out)
			}
		})
	}
}

func BenchmarkKernelMulCoeffsThenAdd(b *testing.B) {
	for _, tc := range kernelCases() {
		b.Run(fmt.Sprintf("limbs=%d/parallel=%v", tc.limbs, tc.parallel), func(b *testing.B) {
			r := benchRing(b, 12, tc.limbs, tc.parallel)
			x := benchPoly(r, 1)
			y := benchPoly(r, 2)
			out := benchPoly(r, 3)
			limbs := r.Limbs(r.MaxLevel(), true)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.MulCoeffsThenAdd(limbs, x, y, out)
			}
		})
	}
}

// BenchmarkKernelRescale measures the pooled-scratch exact division that
// backs Rescale and ModDown.
func BenchmarkKernelRescale(b *testing.B) {
	for _, tc := range kernelCases() {
		b.Run(fmt.Sprintf("limbs=%d/parallel=%v", tc.limbs, tc.parallel), func(b *testing.B) {
			r := benchRing(b, 12, tc.limbs, tc.parallel)
			p := benchPoly(r, 1)
			src := r.MaxLevel()
			qLimbs := r.Limbs(src-1, false)
			out := r.NewPolyQ(src - 1)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.DivideExactByLimb(src, qLimbs, p, out)
			}
		})
	}
}

// BenchmarkKernelMulScalar shows the cached Shoup constants: after the
// first call the scalar path is allocation-free.
func BenchmarkKernelMulScalar(b *testing.B) {
	for _, tc := range kernelCases() {
		b.Run(fmt.Sprintf("limbs=%d/parallel=%v", tc.limbs, tc.parallel), func(b *testing.B) {
			r := benchRing(b, 12, tc.limbs, tc.parallel)
			p := benchPoly(r, 1)
			out := r.NewPoly(r.MaxLevel())
			limbs := r.Limbs(r.MaxLevel(), true)
			s := big.NewInt(1099511627689)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.MulScalar(limbs, p, s, out)
			}
		})
	}
}
