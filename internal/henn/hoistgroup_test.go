package henn

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
)

// TestRotateHoistedGroupingBitIdentical pins the empirical fact the
// graph optimizer's rotation replanning relies on: for a hoisted
// rotation, the GROUPING does not affect the bits — RotateMany(ct, ks)
// and RotateMany(ct, [k]) produce identical ciphertexts for every
// k ∈ ks, on both backends, because the key-switch decomposition
// depends only on the source ciphertext. This is what makes the replan
// pass (merging per-stage hoist groups into one per-source fan-out) and
// the canonical singleton-group lowering bit-exact.
//
// It also pins the converse: a standalone Rotate is NOT bit-identical
// to a hoisted rotation by the same k (different key-switch algorithm,
// different rounding) — which is why the optimizer must never merge
// standalone and hoisted rotations, and why CSE keys on hoisted-ness.
func TestRotateHoistedGroupingBitIdentical(t *testing.T) {
	logN := 10
	bits := []int{40, 30, 30, 30, 40}
	params, err := ckks.NewParameters(logN, bits, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	rots := []int{1, 3, 7, 100, -5}
	rng := rand.New(rand.NewSource(42))
	vec := make([]float64, 1<<(logN-1))
	for i := range vec {
		vec[i] = rng.Float64()*2 - 1
	}

	t.Run("rns", func(t *testing.T) {
		e, err := NewRNSEngine(params, rots, 7)
		if err != nil {
			t.Fatal(err)
		}
		ctBytes := func(c Ct) []byte {
			var b bytes.Buffer
			if err := e.Ctx.WriteCiphertext(&b, c.(*ckks.Ciphertext)); err != nil {
				t.Fatal(err)
			}
			return b.Bytes()
		}
		ct := e.EncryptVec(vec)
		grouped := e.RotateMany(ct, rots)
		standaloneDiffers := false
		for _, k := range rots {
			single := ctBytes(e.RotateMany(ct, []int{k})[k])
			if !bytes.Equal(ctBytes(grouped[k]), single) {
				t.Errorf("rns: grouped vs singleton hoisted rotation differ at k=%d", k)
			}
			if !bytes.Equal(ctBytes(e.Rotate(ct, k)), single) {
				standaloneDiffers = true
			}
		}
		if !standaloneDiffers {
			t.Error("rns: standalone Rotate became bit-identical to hoisted; revisit the CSE hoisted-ness key")
		}
	})

	t.Run("big", func(t *testing.T) {
		bp, err := ckksbig.FromRNSParameters(params)
		if err != nil {
			t.Fatal(err)
		}
		e, err := NewBigEngine(bp, rots, 7)
		if err != nil {
			t.Fatal(err)
		}
		ct := e.EncryptVec(vec)
		grouped := e.RotateMany(ct, rots)
		standaloneDiffers := false
		for _, k := range rots {
			single := e.RotateMany(ct, []int{k})[k].(*ckksbig.Ciphertext)
			if !reflect.DeepEqual(grouped[k].(*ckksbig.Ciphertext), single) {
				t.Errorf("big: grouped vs singleton hoisted rotation differ at k=%d", k)
			}
			if !reflect.DeepEqual(e.Rotate(ct, k).(*ckksbig.Ciphertext), single) {
				standaloneDiffers = true
			}
		}
		if !standaloneDiffers {
			t.Error("big: standalone Rotate became bit-identical to hoisted; revisit the CSE hoisted-ness key")
		}
	})
}
