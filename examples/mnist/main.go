// Encrypted MNIST classification end to end: train a CNN1 (Fig. 3) with
// SLAF activations, compile it to a homomorphic plan, and classify
// encrypted digits under CKKS-RNS — comparing against the plaintext model
// and against the multiprecision CNN-HE baseline on the same image.
//
// Run: go run ./examples/mnist           (≈2–4 minutes on one core)
//
//	go run ./examples/mnist -quick    (smaller model, <1 minute)
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"math/rand"
	"time"

	"cnnhe/internal/ckks"
	"cnnhe/internal/henn"
	"cnnhe/internal/mnist"
	"cnnhe/internal/nn"
	"cnnhe/internal/tensor"
)

func main() {
	quick := flag.Bool("quick", false, "train a smaller model for a faster demo")
	flag.Parse()

	trainN, epochs := 6000, 8
	if *quick {
		trainN, epochs = 2000, 4
	}
	train, test, src := mnist.Load(trainN, 200, 1)
	fmt.Printf("dataset: %s\n", src)

	// --- plaintext training (paper §V.D) ------------------------------------
	rng := rand.New(rand.NewSource(2))
	model := nn.NewCNN1(rng)
	fmt.Printf("training CNN1 (%d images, %d epochs)...\n", trainN, epochs)
	nn.Train(model, train.ToNN(), nn.TrainConfig{
		Epochs: epochs, BatchSize: 64, MaxLR: 0.08, Momentum: 0.9, Seed: 3,
	})
	rc := nn.DefaultRetrofitConfig()
	rc.Epochs = 2
	slaf := nn.Retrofit(model, train.ToNN(), rc)
	fmt.Printf("plaintext SLAF test accuracy: %.2f%%\n", 100*nn.Evaluate(slaf, test.ToNN()))

	// --- compile to a homomorphic plan --------------------------------------
	const logN = 11 // demo scale; use 14 with PaperParameters for λ=128
	plan, err := henn.Compile(slaf, 1<<(logN-1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Describe())
	bits := []int{40}
	for i := 0; i < plan.Depth-1; i++ {
		bits = append(bits, 30)
	}
	bits = append(bits, 40)
	params, err := ckks.NewParameters(logN, bits, 60, 1, math.Exp2(30))
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	engine, err := henn.NewRNSEngine(params, plan.Rotations(), 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key generation: %.1fs (%d rotation keys)\n\n", time.Since(start).Seconds(), len(plan.Rotations()))

	// --- encrypted classification -------------------------------------------
	correct := 0
	n := 5
	for i := 0; i < n; i++ {
		img := test.Image(i)
		logits, lat := plan.Infer(engine, img)

		x := tensor.New(1, 28, 28)
		for j := range img {
			x.Data[j] = img[j] / 255
		}
		plain := henn.Logits(slaf.Forward(x).Data)

		ok := logits.Argmax() == test.Labels[i]
		if ok {
			correct++
		}
		fmt.Printf("image %d: true %d, HE %d (%.2fs), plain %d, HE==plain: %v\n",
			i, test.Labels[i], logits.Argmax(), lat.Seconds(), plain.Argmax(),
			logits.Argmax() == plain.Argmax())
	}
	fmt.Printf("\nencrypted accuracy: %d/%d — the server never saw a pixel.\n", correct, n)
}
