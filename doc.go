// Package cnnhe is a from-scratch Go reproduction of "Efficient
// Privacy-Preserving Convolutional Neural Networks with CKKS-RNS for
// Encrypted Image Classification" (IPPS 2025): a full RNS-CKKS
// homomorphic-encryption scheme, its original multiprecision CKKS baseline,
// a CNN training stack with self-learning polynomial activations, and a
// compiler that evaluates the trained networks on encrypted images.
//
// See README.md for the tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-vs-measured results. The
// benchmarks in bench_test.go regenerate each of the paper's tables.
package cnnhe
