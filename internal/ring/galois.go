package ring

// GaloisGen is the generator of the order-N/2 subgroup of (Z/2NZ)^* used to
// index CKKS slot rotations: rotating the slot vector left by r positions
// corresponds to the automorphism X → X^{5^r}.
const GaloisGen uint64 = 5

// GaloisElementForRotation returns the Galois element 5^r mod 2N realizing
// a left rotation by r slots (r may be negative).
func GaloisElementForRotation(logN int, r int) uint64 {
	twoN := uint64(1) << uint(logN+1)
	mask := twoN - 1
	order := uint64(1) << uint(logN-1) // N/2 slots
	rr := uint64(((r % int(order)) + int(order))) % order
	g := uint64(1)
	base := GaloisGen & mask
	e := rr
	for e > 0 {
		if e&1 == 1 {
			g = (g * base) & mask
		}
		base = (base * base) & mask
		e >>= 1
	}
	return g
}

// GaloisElementConjugate returns the Galois element −1 mod 2N (complex
// conjugation of the slots).
func GaloisElementConjugate(logN int) uint64 {
	return (uint64(1) << uint(logN+1)) - 1
}
