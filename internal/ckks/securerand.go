package ckks

import (
	cryptorand "crypto/rand"
	"encoding/binary"
	"math/rand"
)

// cryptoSource adapts crypto/rand to math/rand's Source64 so the
// existing ring samplers — which draw from a *rand.Rand — can be backed
// by the operating system's CSPRNG. Reads are buffered one word at a
// time; a read failure panics, because silently degrading key material
// randomness is never acceptable.
type cryptoSource struct{}

func (cryptoSource) Uint64() uint64 {
	var b [8]byte
	if _, err := cryptorand.Read(b[:]); err != nil {
		panic("ckks: crypto/rand read failed: " + err.Error())
	}
	return binary.LittleEndian.Uint64(b[:])
}

func (s cryptoSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// Seed implements rand.Source; a CSPRNG has no seed to set.
func (cryptoSource) Seed(int64) {}

// NewSecureRand returns a *rand.Rand drawing from crypto/rand. Unlike
// the seeded generators it is not reproducible; use it for real key
// material and encryption randomness (client-held keys), and keep the
// seeded paths for benchmarks and parity tests.
func NewSecureRand() *rand.Rand {
	return rand.New(cryptoSource{})
}

// NewSecureKeyGenerator returns a key generator over ctx whose samples
// come from crypto/rand — the client-side generator for keys that must
// actually be secret. NewKeyGenerator (seeded, reproducible) remains for
// benchmarks and tests only.
func NewSecureKeyGenerator(ctx *Context) *KeyGenerator {
	return &KeyGenerator{ctx: ctx, rng: NewSecureRand()}
}

// NewSecureEncryptor returns a public-key encryptor whose encryption
// randomness comes from crypto/rand.
func NewSecureEncryptor(ctx *Context, pk *PublicKey) *Encryptor {
	return &Encryptor{ctx: ctx, pk: pk, rng: NewSecureRand()}
}
