package ckks

import (
	"fmt"
	"math"
	"math/big"
	"sync"
	"sync/atomic"

	"cnnhe/internal/ring"
)

// Plaintext is an encoded message: an RNS polynomial at a level, carrying
// its scale. Value is in the NTT domain when IsNTT is set.
type Plaintext struct {
	Value *ring.Poly
	Level int
	Scale float64
	IsNTT bool
}

// Ciphertext is a degree-1 RLWE ciphertext (c0, c1), always kept in the NTT
// domain on limbs 0..Level.
type Ciphertext struct {
	C0, C1 *ring.Poly
	Level  int
	Scale  float64
}

// CopyNew returns a deep copy of ct.
func (ct *Ciphertext) CopyNew(ctx *Context) *Ciphertext {
	r := ctx.R
	limbs := r.Limbs(ct.Level, false)
	out := &Ciphertext{
		C0:    r.NewPolyQ(ct.Level),
		C1:    r.NewPolyQ(ct.Level),
		Level: ct.Level,
		Scale: ct.Scale,
	}
	r.Copy(limbs, ct.C0, out.C0)
	r.Copy(limbs, ct.C1, out.C1)
	return out
}

// Encoder maps slot vectors to plaintext polynomials and back via the
// canonical embedding.
type Encoder struct {
	ctx *Context
}

// NewEncoder returns an Encoder over ctx.
func NewEncoder(ctx *Context) *Encoder { return &Encoder{ctx: ctx} }

// maxInt64Float is the largest float64 that safely rounds into an int64.
const maxInt64Float = 9.0e18

// Encode encodes values (≤ N/2 reals, zero-padded) at the given level and
// scale, returning an NTT-domain plaintext.
func (e *Encoder) Encode(values []float64, level int, scale float64) *Plaintext {
	coeffs := e.ctx.Emb.EncodeReal(values)
	return e.encodeCoeffs(coeffs, level, scale)
}

// EncodeComplex encodes complex slots.
func (e *Encoder) EncodeComplex(values []complex128, level int, scale float64) *Plaintext {
	coeffs := e.ctx.Emb.Encode(values)
	return e.encodeCoeffs(coeffs, level, scale)
}

func (e *Encoder) encodeCoeffs(coeffs []float64, level int, scale float64) *Plaintext {
	r := e.ctx.R
	limbs := r.Limbs(level, false)
	n := r.N()
	useBig := false
	iv := make([]int64, n)
	for i, c := range coeffs {
		v := c * scale
		if math.Abs(v) > maxInt64Float {
			useBig = true
			break
		}
		iv[i] = int64(math.RoundToEven(v))
	}
	p := r.NewPolyQ(level)
	if !useBig {
		r.SetCoeffsInt64(limbs, iv, p)
	} else {
		bv := make([]*big.Int, n)
		bf := new(big.Float).SetPrec(256)
		for i, c := range coeffs {
			bf.SetFloat64(c)
			bf.Mul(bf, new(big.Float).SetFloat64(scale))
			bi, _ := bf.Int(nil)
			bv[i] = bi
		}
		r.SetCoeffsBig(limbs, bv, p)
	}
	r.NTT(limbs, p)
	return &Plaintext{Value: p, Level: level, Scale: scale, IsNTT: true}
}

// EncodeSpec describes one vector for EncodeBatch: the slot values and
// the exact (level, scale) to encode at.
type EncodeSpec struct {
	Values []float64
	Level  int
	Scale  float64
}

// EncodeBatch encodes every spec, spreading the work over up to workers
// goroutines (the encoder holds no mutable state, so concurrent encoding
// is safe). Results are in spec order and bit-identical to individual
// Encode calls.
func (e *Encoder) EncodeBatch(specs []EncodeSpec, workers int) []*Plaintext {
	out := make([]*Plaintext, len(specs))
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers <= 1 {
		for i, s := range specs {
			out[i] = e.Encode(s.Values, s.Level, s.Scale)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(specs) {
					return
				}
				out[i] = e.Encode(specs[i].Values, specs[i].Level, specs[i].Scale)
			}
		}()
	}
	wg.Wait()
	return out
}

// Decode recovers the real slot values of a plaintext.
func (e *Encoder) Decode(pt *Plaintext) []float64 {
	return realParts(e.DecodeComplex(pt))
}

// DecodeComplex recovers the complex slot values of a plaintext.
func (e *Encoder) DecodeComplex(pt *Plaintext) []complex128 {
	r := e.ctx.R
	limbs := r.Limbs(pt.Level, false)
	tmp := r.NewPolyQ(pt.Level)
	r.Copy(limbs, pt.Value, tmp)
	if pt.IsNTT {
		r.INTT(limbs, tmp)
	}
	big := r.CoeffsBigCentered(pt.Level, tmp)
	coeffs := make([]float64, r.N())
	for i, b := range big {
		coeffs[i] = bigToFloat(b) / pt.Scale
	}
	return e.ctx.Emb.Decode(coeffs)
}

func bigToFloat(v *big.Int) float64 {
	f, _ := new(big.Float).SetInt(v).Float64()
	return f
}

func realParts(cv []complex128) []float64 {
	out := make([]float64, len(cv))
	for i, v := range cv {
		out[i] = real(v)
	}
	return out
}

// EncodeConstant returns the integer ⌊c·scale⌉ used for scalar
// multiplication of every slot by the constant c.
func EncodeConstant(c float64, scale float64) *big.Int {
	bf := new(big.Float).SetPrec(128).SetFloat64(c)
	bf.Mul(bf, new(big.Float).SetFloat64(scale))
	half := big.NewFloat(0.5)
	if bf.Sign() >= 0 {
		bf.Add(bf, half)
	} else {
		bf.Sub(bf, half)
	}
	bi, _ := bf.Int(nil)
	return bi
}

// String implements fmt.Stringer for quick ciphertext inspection.
func (ct *Ciphertext) String() string {
	return fmt.Sprintf("Ciphertext{level: %d, scale: 2^%.2f}", ct.Level, math.Log2(ct.Scale))
}
