package henn

import (
	"math"
	"testing"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/henn/ir"
	"cnnhe/internal/henn/ir/opt"
)

// The golden graph-size gate. Lowering and optimization are symbolic:
// the tracer only reads Slots/MaxLevel/Scale/QiFloat from the engine,
// so the paper models can be lowered at full CNN2 scale against a
// params-only stub — no key generation, milliseconds instead of
// minutes. The checked-in numbers below are the contract: a change that
// grows the optimized graph (a pass regressing, lowering emitting
// redundant ops the pipeline no longer catches) fails here before it
// shows up as a benchmark regression. Update the table deliberately,
// with the new numbers from the failure message, only when the growth
// is intended.

// goldenEngines builds rns and big param stubs from the same modulus
// chain the parity suite uses: [40, 30 × (depth+1)] at scale 2³⁰.
func goldenEngines(t *testing.T, logN, depth int) []Engine {
	t.Helper()
	bits := make([]int, depth+2)
	bits[0] = 40
	for i := 1; i < len(bits); i++ {
		bits[i] = 30
	}
	params, err := ckks.NewParameters(logN, bits, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	bp, err := ckksbig.FromRNSParameters(params)
	if err != nil {
		t.Fatal(err)
	}
	return []Engine{
		ParamsOnlyEngine("ckks-rns", params.Slots(), params.MaxLevel(), params.Scale, params.QiFloat),
		ParamsOnlyEngine("ckks-big", bp.Slots(), bp.MaxLevel(), bp.Scale, bp.QiFloat),
	}
}

// goldenSize is the checked-in shape of an optimized graph. Op order
// inside a lowered graph is not deterministic (diagonal maps iterate in
// map order) but these counts are.
type goldenSize struct {
	ops         int
	engineCalls int
	rotateCalls int
	hoists      int
}

func sizeOf(s ir.Stats) goldenSize {
	return goldenSize{ops: s.Ops, engineCalls: s.EngineCalls, rotateCalls: s.RotateCalls(), hoists: s.Hoists}
}

func TestOptimizedGraphGolden(t *testing.T) {
	cases := []struct {
		name  string
		arch  string
		slots int
		logN  int
		k     int // 0 = plain Plan, >0 = RNSPlan with k parts, -1 = sharded (auto grid)
		want  goldenSize
	}{
		{"cnn1/plan", "cnn1", 1024, 11, 0, goldenSize{ops: 2331, engineCalls: 2241, rotateCalls: 68, hoists: 3}},
		{"cnn1/rns3", "cnn1", 1024, 11, 3, goldenSize{ops: 4567, engineCalls: 4417, rotateCalls: 132, hoists: 5}},
		{"cnn2/plan", "cnn2", 2048, 12, 0, goldenSize{ops: 4700, engineCalls: 4475, rotateCalls: 71, hoists: 4}},
		{"cnn2/rns3", "cnn2", 2048, 12, 3, goldenSize{ops: 8514, engineCalls: 8165, rotateCalls: 129, hoists: 6}},
		// CIFAR-10 CNN3 over a 2×1 shard grid: the 3072-pixel input splits
		// across two 2048-slot ciphertexts, so the lowered graph carries
		// per-shard block products plus cross-shard recombines.
		{"cnn3/sharded2", "cnn3", 2048, 12, -1, goldenSize{ops: 7022, engineCalls: 6774, rotateCalls: 105, hoists: 4}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var depth int
			var lowerFor func(e Engine) *ir.Graph
			if tc.k < 0 {
				sp, err := CompileShardedAuto(paperShardModel(tc.arch), tc.slots)
				if err != nil {
					t.Fatal(err)
				}
				if sp.NumShards() != 2 {
					t.Fatalf("%s: %d shards, want 2", tc.name, sp.NumShards())
				}
				depth = sp.Depth
				lowerFor = func(e Engine) *ir.Graph {
					g, err := sp.Lower(e)
					if err != nil {
						t.Fatal(err)
					}
					return g
				}
			} else {
				plan := paperModel(t, tc.arch, tc.slots)
				depth = plan.Depth
				lowerFor = func(e Engine) *ir.Graph {
					var g *ir.Graph
					var err error
					if tc.k == 0 {
						g, err = plan.Lower(e)
					} else {
						var rp *RNSPlan
						rp, err = NewRNSPlan(plan, tc.k, false)
						if err == nil {
							g, err = rp.Lower(e)
						}
					}
					if err != nil {
						t.Fatal(err)
					}
					return g
				}
			}
			var ref goldenSize
			for i, e := range goldenEngines(t, tc.logN, depth) {
				g := lowerFor(e)
				before := g.Stats()
				res, err := opt.Optimize(e, g, nil)
				if err != nil {
					t.Fatal(err)
				}
				after := res.After
				got := sizeOf(after)
				t.Logf("%s %s: before=%+v after=%+v", tc.name, e.Name(), sizeOf(before), got)

				// Both backends lower and optimize to the same shape —
				// the graph depends on params, not on the arithmetic.
				if i == 0 {
					ref = got
				} else if got != ref {
					t.Fatalf("%s: graph shape differs across backends: rns=%+v big=%+v", e.Name(), ref, got)
				}

				if got != tc.want {
					t.Errorf("%s %s: optimized graph size %+v, want golden %+v\n"+
						"(intended change? update the golden table in opt_golden_test.go)",
						tc.name, e.Name(), got, tc.want)
				}

				// The acceptance floor: ≥15%% fewer engine calls than the
				// unoptimized lowering, and ≥15%% fewer rotation calls.
				if float64(after.EngineCalls) > 0.85*float64(before.EngineCalls) {
					t.Errorf("%s %s: engine calls %d → %d, reduction below 15%%",
						tc.name, e.Name(), before.EngineCalls, after.EngineCalls)
				}
				if float64(after.RotateCalls()) > 0.85*float64(before.RotateCalls()) {
					t.Errorf("%s %s: rotation calls %d → %d, reduction below 15%%",
						tc.name, e.Name(), before.RotateCalls(), after.RotateCalls())
				}
				// Optimization must never deepen the circuit.
				if after.MinLevel < before.MinLevel {
					t.Errorf("%s %s: min level dropped %d → %d", tc.name, e.Name(), before.MinLevel, after.MinLevel)
				}
			}
		})
	}
}

// TestOptimizeOffPreservesLowering pins the escape hatch: -opt=off
// executes the canonical lowering unchanged.
func TestOptimizeOffPreservesLowering(t *testing.T) {
	plan := paperModel(t, "cnn1", 1024)
	e := goldenEngines(t, 11, plan.Depth)[0]
	g, err := plan.Lower(e)
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Optimize(e, g, opt.Disabled())
	if err != nil {
		t.Fatal(err)
	}
	if res.Graph != g {
		t.Fatal("opt=off rebuilt the graph instead of passing it through")
	}
	if len(res.Passes) != 0 || res.Setting != "off" {
		t.Fatalf("opt=off ran passes: %+v (%s)", res.Passes, res.Setting)
	}
}
