// Package dataset provides the image-classification data substrate for
// both evaluation corpora: MNIST (28×28 grayscale IDX files) and
// CIFAR-10 (32×32 RGB binary batches), each with a deterministic
// synthetic offline substitution (DESIGN.md §3 S1, §15). Real data is
// resolved through environment-pointed directories or a checksummed
// download cache; when neither is available the synthetic generators
// keep every pipeline runnable offline.
package dataset

import (
	"errors"

	"cnnhe/internal/nn"
	"cnnhe/internal/tensor"
)

// Typed errors for the data cache. Callers distinguish "nothing there"
// (fall back to synthetic, or download) from "something there but
// broken" (refuse to trust it).
var (
	// ErrMissingData tags absent datasets: no directory, no cached
	// archive, and downloading not enabled.
	ErrMissingData = errors.New("dataset: data not available")
	// ErrCorrupt tags present-but-broken data: checksum mismatches,
	// truncated records, out-of-range labels.
	ErrCorrupt = errors.New("dataset: corrupt data")
)

// Dataset holds raw 8-bit images and labels. Pixels are planar
// channel-major ([C, H, W] flattened), values in [0, 255] — the layout
// both the trainer tensors and the homomorphic compiler use.
type Dataset struct {
	C, H, W int
	Pixels  [][]byte // each image is C·H·W bytes
	Labels  []int
}

// Dim returns the flattened image dimension C·H·W.
func (d Dataset) Dim() int { return d.C * d.H * d.W }

// Len returns the number of images.
func (d Dataset) Len() int { return len(d.Pixels) }

// Image returns image i as raw float64 pixels in [0, 255].
func (d Dataset) Image(i int) []float64 {
	out := make([]float64, len(d.Pixels[i]))
	for j, b := range d.Pixels[i] {
		out[j] = float64(b)
	}
	return out
}

// ToNN converts to the training representation: [C, H, W] tensors with
// pixels scaled to [0, 1].
func (d Dataset) ToNN() nn.Dataset {
	out := nn.Dataset{
		Images: make([]*tensor.Tensor, d.Len()),
		Labels: append([]int(nil), d.Labels...),
	}
	for i := range d.Pixels {
		img := tensor.New(d.C, d.H, d.W)
		for j, b := range d.Pixels[i] {
			img.Data[j] = float64(b) / 255
		}
		out.Images[i] = img
	}
	return out
}

// Subset returns the first n samples (or all when n ≤ 0 or past the end).
func (d Dataset) Subset(n int) Dataset {
	if n <= 0 || n > d.Len() {
		n = d.Len()
	}
	return Dataset{C: d.C, H: d.H, W: d.W, Pixels: d.Pixels[:n], Labels: d.Labels[:n]}
}
