// Command heinfer runs a single privacy-preserving classification: it
// plays both parties of Fig. 1 — the client encodes and encrypts an image
// under CKKS-RNS, the "server" side evaluates the compiled CNN plan
// blindly, and the client decrypts the logits.
//
// Inference runs through the guarded runtime (internal/guard): engine
// panics, scale drift, corrupted ciphertexts and an exhausted noise
// budget surface as classified errors instead of garbage logits, and the
// process exit code reports the failure class:
//
//	0  success
//	1  setup or unclassified failure
//	2  corrupted input (corrupt/malformed ciphertext, scale drift, bad image)
//	3  noise budget or level exhausted (parameters too small for the model)
//	4  deadline exceeded or cancelled
//
// Usage:
//
//	heinfer -model models/cnn1.gob -image 3 -logn 12 [-backend rns|big]
//	        [-rnsparts 3] [-timeout 90s] [-retries 2]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/guard"
	"cnnhe/internal/henn"
	"cnnhe/internal/henn/ir"
	"cnnhe/internal/mnist"
	"cnnhe/internal/nn"
	"cnnhe/internal/primes"
	"cnnhe/internal/tensor"
)

// Exit codes for the distinct failure classes.
const (
	exitOK        = 0
	exitSetup     = 1
	exitCorrupt   = 2
	exitExhausted = 3
	exitDeadline  = 4
)

// classifyExit maps an inference error to its exit code.
func classifyExit(err error) int {
	switch {
	case err == nil:
		return exitOK
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return exitDeadline
	case errors.Is(err, guard.ErrNoiseBudgetExhausted), errors.Is(err, guard.ErrLevelExhausted):
		return exitExhausted
	case errors.Is(err, guard.ErrCorruptCiphertext), errors.Is(err, guard.ErrResidueMissing),
		errors.Is(err, guard.ErrScaleDrift), errors.Is(err, guard.ErrInvalidPlaintext),
		errors.Is(err, ckks.ErrFormat), errors.Is(err, ckks.ErrChecksum),
		errors.Is(err, henn.ErrBadInput):
		return exitCorrupt
	default:
		return exitSetup
	}
}

func main() {
	var (
		modelPath = flag.String("model", "models/cnn1.gob", "trained SLAF model (.gob)")
		imageIdx  = flag.Int("image", 0, "test-set image index")
		logN      = flag.Int("logn", 12, "ring degree exponent (14 = paper scale)")
		backend   = flag.String("backend", "rns", "rns (CKKS-RNS) or big (multiprecision CKKS)")
		rnsParts  = flag.Int("rnsparts", 0, "enable the Fig. 5 input-decomposition pipeline with this many parts (0 = off)")
		seed      = flag.Int64("seed", 1, "random seed")
		timeout   = flag.Duration("timeout", 0, "per-attempt inference deadline (0 = none)")
		retries   = flag.Int("retries", 0, "additional attempts after a failed inference")
		verbose   = flag.Bool("report", false, "print the per-stage timing and noise-budget report")
	)
	flag.Parse()

	model, arch, err := nn.LoadModel(*modelPath)
	if err != nil {
		log.Fatalf("loading model: %v (run hetrain first)", err)
	}
	_, test, src := mnist.Load(16, *imageIdx+1, *seed)
	fmt.Printf("model: %s   data: %s\n", arch, src)
	img := test.Image(*imageIdx)
	label := test.Labels[*imageIdx]

	plan, err := henn.Compile(model, 1<<(*logN-1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.Describe())

	k := plan.Depth + 1
	if k < 13 {
		k = 13
	}
	bits := []int{40}
	for i := 0; i < k-2; i++ {
		bits = append(bits, 26)
	}
	bits = append(bits, 40)
	params, err := ckks.NewParameters(*logN, bits, 60, 1, math.Exp2(26))
	if err != nil {
		log.Fatal(err)
	}
	if err := plan.CheckDepth(params.MaxLevel()); err != nil {
		log.Fatal(err)
	}

	var engine henn.Engine
	switch *backend {
	case "rns":
		e, err := henn.NewRNSEngine(params, plan.Rotations(), *seed+7)
		if err != nil {
			log.Fatal(err)
		}
		engine = e
	case "big":
		bp, err := ckksbig.FromRNSParameters(params)
		if err != nil {
			log.Fatal(err)
		}
		e, err := henn.NewBigEngine(bp, plan.Rotations(), *seed+7)
		if err != nil {
			log.Fatal(err)
		}
		engine = e
	default:
		log.Fatalf("unknown backend %q", *backend)
	}
	fmt.Printf("backend: %s, N=2^%d, chain length %d (log q = %d)\n",
		engine.Name(), *logN, k, params.Chain.LogQ())

	var rp *henn.RNSPlan
	if *rnsParts > 0 {
		rp, err = henn.NewRNSPlan(plan, *rnsParts, true)
		if err != nil {
			log.Fatal(err)
		}
	}

	// Lower once up front to report the op-graph shape; errors here are
	// compile-time problems (depth exhaustion, scale mismatch), not HE
	// failures.
	{
		var g *ir.Graph
		if rp != nil {
			g, err = rp.Lower(engine)
		} else {
			g, err = plan.Lower(engine)
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("lowered graph: %s\n", g.Stats())
	}

	// Each attempt gets a fresh guard and a fresh deadline: a tripped
	// guard latches its first error and must not be reused. Lowering and
	// ahead-of-time plaintext encoding are paid via Warm before the
	// deadline clock starts — the timeout budgets ciphertext work only.
	attempt := func() (henn.Logits, *henn.Report, error) {
		g := guard.New(engine, guard.DefaultConfig())
		var warmErr error
		if rp != nil {
			warmErr = rp.Warm(g)
		} else {
			warmErr = plan.Warm(g)
		}
		if warmErr != nil {
			return nil, &henn.Report{FailedStage: "prepare"}, warmErr
		}
		ctx := context.Background()
		if *timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, *timeout)
			defer cancel()
		}
		if rp != nil {
			return rp.InferCtx(ctx, g, img)
		}
		return plan.InferCtx(ctx, g, img)
	}

	var (
		logits henn.Logits
		rep    *henn.Report
	)
	for try := 0; ; try++ {
		logits, rep, err = attempt()
		if err == nil {
			break
		}
		fmt.Fprintf(os.Stderr, "heinfer: attempt %d/%d failed: %v\n", try+1, *retries+1, err)
		if try >= *retries {
			os.Exit(classifyExit(err))
		}
	}

	// Plaintext reference.
	x := tensor.New(1, 28, 28)
	for i := range img {
		x.Data[i] = img[i] / 255
	}
	plain := model.Forward(x).Data

	fmt.Printf("\nencrypted classification latency: %v (encrypt %v, decrypt %v)\n",
		rep.Eval, rep.Encrypt, rep.Decrypt)
	if *verbose {
		fmt.Print(rep)
	}
	fmt.Printf("true label: %d\n", label)
	fmt.Printf("%-10s %12s %12s\n", "class", "HE logit", "plain logit")
	for i := range logits {
		fmt.Printf("%-10d %12.4f %12.4f\n", i, logits[i], plain[i])
	}
	fmt.Printf("\nHE prediction:    %d\n", logits.Argmax())
	fmt.Printf("plain prediction: %d\n", henn.Logits(plain).Argmax())
	_ = primes.PaperBitSizes
}
