package chaos

import (
	"net"
	"sync"
	"time"
)

// WrapListener returns l with the injector's faults applied to accepted
// connections. Fault decisions are made once per connection at accept
// time, so a single spec produces a mix of healthy and faulty
// connections under p < 1:
//
//	latency   the first read on the connection is delayed, stalling the
//	          request mid-parse the way a congested path would;
//	reset     the connection is closed with SO_LINGER=0 after its write
//	          budget (default 0 bytes), surfacing to the peer as a TCP
//	          RST ("connection reset by peer") mid-response;
//	truncate  the connection is closed normally after Bytes of writes,
//	          so the peer sees a short body / unexpected EOF.
//
// 5xx rules are ignored here: a listener has no HTTP framing to answer
// with (use Transport for synthetic statuses).
func (inj *Injector) WrapListener(l net.Listener) net.Listener {
	if inj == nil {
		return l
	}
	return &listener{Listener: l, inj: inj}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	fc := &conn{Conn: c, resetAfter: -1, truncateAfter: -1}
	if r, ok := l.inj.pick(Latency); ok {
		fc.delay = r.Latency
	}
	if r, ok := l.inj.pick(Reset); ok {
		fc.resetAfter = r.Bytes
	} else if r, ok := l.inj.pick(Truncate); ok {
		fc.truncateAfter = r.Bytes
	}
	return fc, nil
}

// conn applies per-connection faults decided at accept time.
type conn struct {
	net.Conn
	delay         time.Duration // injected before the first Read
	resetAfter    int64         // RST after this many written bytes; -1 off
	truncateAfter int64         // FIN after this many written bytes; -1 off
	written       int64
	delayOnce     sync.Once
}

func (c *conn) Read(p []byte) (int, error) {
	c.delayOnce.Do(func() {
		if c.delay > 0 {
			time.Sleep(c.delay)
		}
	})
	return c.Conn.Read(p)
}

func (c *conn) Write(p []byte) (int, error) {
	if c.resetAfter < 0 && c.truncateAfter < 0 {
		n, err := c.Conn.Write(p)
		c.written += int64(n)
		return n, err
	}
	budget := c.resetAfter
	if budget < 0 {
		budget = c.truncateAfter
	}
	remaining := budget - c.written
	if remaining > int64(len(p)) {
		n, err := c.Conn.Write(p)
		c.written += int64(n)
		return n, err
	}
	var n int
	if remaining > 0 {
		n, _ = c.Conn.Write(p[:remaining])
		c.written += int64(n)
	}
	if c.resetAfter >= 0 {
		// SO_LINGER=0 turns Close into an abortive RST instead of a FIN.
		if tc, ok := c.Conn.(interface{ SetLinger(int) error }); ok {
			_ = tc.SetLinger(0)
		}
	}
	_ = c.Conn.Close()
	return n, net.ErrClosed
}
