package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// OpTime is one row of a request's per-op-kind latency attribution:
// where the evaluation's wall time actually went.
type OpTime struct {
	Kind    string  `json:"kind"`
	Ops     int64   `json:"ops"`
	Calls   int64   `json:"calls"`
	TotalMS float64 `json:"total_ms"`
}

// RequestSummary is one completed (or rejected) request as the flight
// recorder remembers it: identity, outcome, and the latency split that
// answers "where did this request's time go".
type RequestSummary struct {
	TraceID   string `json:"trace_id"`
	RequestID string `json:"request_id"`
	// Route names the serving path ("classify", "classify_encrypted").
	Route   string    `json:"route"`
	Outcome string    `json:"outcome"`
	Start   time.Time `json:"start"`
	// QueueMS is time spent admitted but not evaluating (micro-batch
	// queue wait on the plain route, per-client lock wait on the keyed
	// route). EvalMS is the homomorphic evaluation. TotalMS is end to
	// end as the server observed it.
	QueueMS float64 `json:"queue_ms"`
	EvalMS  float64 `json:"eval_ms"`
	TotalMS float64 `json:"total_ms"`
	// BatchSize/BatchCapacity describe the micro-batch that served the
	// request (zero on the keyed route and on rejections).
	BatchSize     int `json:"batch_size,omitempty"`
	BatchCapacity int `json:"batch_capacity,omitempty"`
	// TopOps is the evaluation's per-op-kind latency attribution, top
	// kinds by total time (shared by every member of the batch).
	TopOps []OpTime `json:"top_ops,omitempty"`
	Error  string   `json:"error,omitempty"`
	// HasTrace reports whether the span-level trace of the evaluation is
	// still resident (GET /debug/requests?trace=<trace_id>).
	HasTrace bool `json:"has_trace,omitempty"`
}

// FlightRecorder is a fixed-size ring of recent request summaries plus
// a smaller ring of full span recordings, cheap enough to leave on in
// production: recording is one short critical section copying a small
// struct, and memory is bounded by the ring sizes. It is the server's
// black box — when a request is slow or shed, /debug/requests explains
// it after the fact without any pre-arranged debug session.
type FlightRecorder struct {
	mu     sync.Mutex
	buf    []RequestSummary
	next   int
	filled bool

	traces   map[string]*RunRecorder
	traceSeq []string // insertion order, oldest first
	traceCap int
}

// DefaultFlightSize is the summary-ring capacity of the default
// recorder; DefaultTraceCapacity bounds resident span recordings (each
// can hold thousands of spans for a CNN-scale graph, so this ring is
// deliberately small).
const (
	DefaultFlightSize    = 256
	DefaultTraceCapacity = 8
)

// NewFlightRecorder returns a recorder holding the last size summaries
// (≤0 selects DefaultFlightSize) and traceCap span recordings (≤0
// selects DefaultTraceCapacity).
func NewFlightRecorder(size, traceCap int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightSize
	}
	if traceCap <= 0 {
		traceCap = DefaultTraceCapacity
	}
	return &FlightRecorder{
		buf:      make([]RequestSummary, size),
		traces:   map[string]*RunRecorder{},
		traceCap: traceCap,
	}
}

var (
	flightOnce sync.Once
	flightVal  *FlightRecorder
)

// Flight returns the process-wide flight recorder (created on first
// use). The serving layer records into it and the telemetry handler
// serves it at /debug/requests.
func Flight() *FlightRecorder {
	flightOnce.Do(func() { flightVal = NewFlightRecorder(0, 0) })
	return flightVal
}

// flightEntries counts recorded summaries (cnnhe_trace_flight_entries_total).
var (
	flightTelOnce sync.Once
	flightTelVal  *Counter
)

func flightEntriesCounter() *Counter {
	if !Enabled() {
		return nil
	}
	flightTelOnce.Do(func() {
		flightTelVal = Default().Counter("cnnhe_trace_flight_entries_total",
			"request summaries recorded by the flight recorder")
	})
	return flightTelVal
}

// Record appends one request summary (nil-safe).
func (f *FlightRecorder) Record(s RequestSummary) {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.buf[f.next] = s
	f.next++
	if f.next == len(f.buf) {
		f.next = 0
		f.filled = true
	}
	f.mu.Unlock()
	if c := flightEntriesCounter(); c != nil {
		c.Inc()
	}
}

// RecordTrace retains the full span recording behind traceID so
// /debug/requests?trace= can export it as a Chrome trace. The trace
// ring evicts oldest-first; an existing entry for the same trace ID is
// replaced without consuming a slot.
func (f *FlightRecorder) RecordTrace(traceID string, rec *RunRecorder) {
	if f == nil || traceID == "" || rec == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, ok := f.traces[traceID]; !ok {
		for len(f.traceSeq) >= f.traceCap {
			delete(f.traces, f.traceSeq[0])
			f.traceSeq = f.traceSeq[1:]
		}
		f.traceSeq = append(f.traceSeq, traceID)
	}
	f.traces[traceID] = rec
}

// Trace returns the resident span recording for traceID (nil when it
// was never recorded or has been evicted).
func (f *FlightRecorder) Trace(traceID string) *RunRecorder {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.traces[traceID]
}

// Snapshot returns the recorded summaries, newest first, annotated with
// trace residency.
func (f *FlightRecorder) Snapshot() []RequestSummary {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := f.next
	if f.filled {
		n = len(f.buf)
	}
	out := make([]RequestSummary, 0, n)
	// Walk backwards from the most recent write.
	for i := 0; i < n; i++ {
		idx := f.next - 1 - i
		if idx < 0 {
			idx += len(f.buf)
		}
		s := f.buf[idx]
		_, s.HasTrace = f.traces[s.TraceID]
		out = append(out, s)
	}
	return out
}

// Len returns how many summaries are resident.
func (f *FlightRecorder) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.filled {
		return len(f.buf)
	}
	return f.next
}

// flightResponse is the /debug/requests envelope.
type flightResponse struct {
	Count    int              `json:"count"`
	Requests []RequestSummary `json:"requests"`
}

// Handler serves the recorder as JSON:
//
//	GET /debug/requests                 newest-first summaries
//	GET /debug/requests?slowest=N       top N by total_ms
//	GET /debug/requests?outcome=ok      filter by outcome
//	GET /debug/requests?trace=<id>      Chrome trace export of that
//	                                    request's evaluation (404 when
//	                                    evicted)
//
// Filters compose; trace= takes precedence over the listing.
func (f *FlightRecorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if traceID := r.URL.Query().Get("trace"); traceID != "" {
			rec := f.Trace(traceID)
			if rec == nil {
				http.Error(w, "trace not resident (evicted or never recorded)", http.StatusNotFound)
				return
			}
			data, err := rec.ChromeTrace()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_, _ = w.Write(data)
			return
		}
		list := f.Snapshot()
		if outcome := r.URL.Query().Get("outcome"); outcome != "" {
			kept := list[:0]
			for _, s := range list {
				if s.Outcome == outcome {
					kept = append(kept, s)
				}
			}
			list = kept
		}
		if v := r.URL.Query().Get("slowest"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, "slowest must be a non-negative integer", http.StatusBadRequest)
				return
			}
			sort.SliceStable(list, func(i, j int) bool { return list[i].TotalMS > list[j].TotalMS })
			if n < len(list) {
				list = list[:n]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", " ")
		_ = enc.Encode(flightResponse{Count: len(list), Requests: list})
	})
}

// TopOpsFromRecorder condenses a span recording into its top-n op kinds
// by total engine-call time — the flight-recorder attribution line.
func TopOpsFromRecorder(rec *RunRecorder, n int) []OpTime {
	if rec == nil {
		return nil
	}
	byKind := rec.ByKind()
	out := make([]OpTime, 0, len(byKind))
	for kind, st := range byKind {
		out = append(out, OpTime{
			Kind:    kind,
			Ops:     st.Count,
			Calls:   st.Calls,
			TotalMS: float64(st.Total) / float64(time.Millisecond),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalMS != out[j].TotalMS {
			return out[i].TotalMS > out[j].TotalMS
		}
		return out[i].Kind < out[j].Kind
	})
	if n > 0 && len(out) > n {
		out = out[:n]
	}
	return out
}
