package henn

import (
	"fmt"
	"math"

	"cnnhe/internal/ckks"
	"cnnhe/internal/noise"
)

// PrecisionEstimate predicts, before running anything, how many fractional
// bits of precision an encrypted evaluation of the plan will retain under
// the given parameters — the §III.C-style error analysis applied to a whole
// pipeline. It walks the stages with the internal/noise budget tracker
// using conservative per-stage bounds.
type PrecisionEstimate struct {
	// FinalBits is log2(scale/noise) at the output.
	FinalBits float64
	// PerStage records the bits remaining after each stage.
	PerStage []StagePrecision
}

// StagePrecision is one row of the precision report.
type StagePrecision struct {
	Stage string
	Bits  float64
}

// EstimatePrecision runs the noise model over the plan. valueBound is the
// expected magnitude of intermediate activations (from
// nn.ActivationRanges; use ~30 for CNN1-scale models).
func (p *Plan) EstimatePrecision(params ckks.Parameters, valueBound float64) (*PrecisionEstimate, error) {
	if err := p.CheckDepth(params.MaxLevel()); err != nil {
		return nil, err
	}
	m := noise.Model{N: params.N(), Sigma: params.Sigma, H: params.H}
	pf, _ := params.Chain.P().Float64()
	maxQi := 0.0
	for i := 0; i <= params.MaxLevel(); i++ {
		if q := params.QiFloat(i); q > maxQi {
			maxQi = q
		}
	}
	b := noise.NewBudget(m, params.Scale)
	level := params.MaxLevel()
	out := &PrecisionEstimate{}
	record := func(s Stage) {
		out.PerStage = append(out.PerStage, StagePrecision{Stage: s.Describe(), Bits: b.BitsOfPrecision()})
	}
	for _, s := range p.Stages {
		ks := m.KeySwitch(level+1, maxQi, pf)
		switch st := s.(type) {
		case *LinearStage:
			// Baby rotations add key-switch noise to the operand once
			// (hoisted); each diagonal product scales noise by the
			// plaintext; giant rotations add key-switch noise again.
			b.AfterRotation(ks)
			b.AfterMulPlain(params.QiFloat(level), maxAbsVec(st.Diags), params.QiFloat(level))
			b.AfterRotation(ks)
			level--
		case *ActStage:
			// x² (one mult+relin+rescale), then the coefficient layer
			// (plaintext mult + rescale).
			b.AfterMul(b.Noise, valueBound, valueBound, ks, params.QiFloat(level))
			level--
			b.AfterMulPlain(params.QiFloat(level), maxActCoeff(st), params.QiFloat(level))
			level--
		default:
			return nil, fmt.Errorf("henn: cannot estimate stage %T", s)
		}
		record(s)
	}
	out.FinalBits = b.BitsOfPrecision()
	return out, nil
}

func maxAbsVec(diags map[int][]float64) float64 {
	m := 0.0
	for _, d := range diags {
		for _, v := range d {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
	}
	if m == 0 {
		return 1
	}
	return m
}

func maxActCoeff(st *ActStage) float64 {
	m := 0.0
	for p := 0; p <= st.Degree; p++ {
		for _, v := range st.A[p] {
			if a := math.Abs(v); a > m {
				m = a
			}
		}
	}
	if m == 0 {
		return 1
	}
	return m
}

// String renders the report.
func (pe *PrecisionEstimate) String() string {
	s := fmt.Sprintf("estimated output precision: %.1f bits\n", pe.FinalBits)
	for _, r := range pe.PerStage {
		s += fmt.Sprintf("  %-48s %6.1f bits\n", r.Stage, r.Bits)
	}
	return s
}
