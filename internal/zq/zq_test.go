package zq

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"
)

// test moduli spanning the supported word range: small, medium, near the cap.
var testModuli = []uint64{
	0x3001,              // 12289, classic NTT prime
	1<<26 - 5,           // not prime, but reduction identities still hold
	2013265921,          // 15·2^27+1
	1152921504606584833, // 2^60-ish NTT prime (2^60 - 2^14 + 1)
	(1 << 61) - 1,       // Mersenne, 61-bit cap
}

func TestNewModulusPanicsOnWide(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 62-bit modulus")
		}
	}()
	NewModulus(1 << 62)
}

func TestNewModulusPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero modulus")
		}
	}()
	NewModulus(0)
}

func TestAddSubNeg(t *testing.T) {
	for _, q := range testModuli {
		m := NewModulus(q)
		bq := new(big.Int).SetUint64(q)
		f := func(a, b uint64) bool {
			x, y := a%q, b%q
			add := new(big.Int).Add(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
			add.Mod(add, bq)
			sub := new(big.Int).Sub(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
			sub.Mod(sub, bq)
			neg := new(big.Int).Neg(new(big.Int).SetUint64(x))
			neg.Mod(neg, bq)
			return m.Add(x, y) == add.Uint64() &&
				m.Sub(x, y) == sub.Uint64() &&
				m.Neg(x) == neg.Uint64()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
	}
}

func TestMulBarrett(t *testing.T) {
	for _, q := range testModuli {
		m := NewModulus(q)
		bq := new(big.Int).SetUint64(q)
		f := func(a, b uint64) bool {
			x, y := a%q, b%q
			want := new(big.Int).Mul(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
			want.Mod(want, bq)
			return m.Mul(x, y) == want.Uint64()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
	}
}

func TestMulLazyOperands(t *testing.T) {
	// Mul must also accept operands in [0, 2q).
	q := testModuli[3]
	m := NewModulus(q)
	bq := new(big.Int).SetUint64(q)
	f := func(a, b uint64) bool {
		x, y := a%(2*q), b%(2*q)
		want := new(big.Int).Mul(new(big.Int).SetUint64(x), new(big.Int).SetUint64(y))
		want.Mod(want, bq)
		return m.Mul(x, y) == want.Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduce128(t *testing.T) {
	for _, q := range testModuli {
		m := NewModulus(q)
		bq := new(big.Int).SetUint64(q)
		f := func(hi, lo uint64) bool {
			v := new(big.Int).SetUint64(hi)
			v.Lsh(v, 64)
			v.Or(v, new(big.Int).SetUint64(lo))
			v.Mod(v, bq)
			return m.Reduce128(hi, lo) == v.Uint64()
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
	}
}

func TestPowInv(t *testing.T) {
	q := uint64(2013265921) // prime
	m := NewModulus(q)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		x := rng.Uint64()%(q-1) + 1
		inv := m.Inv(x)
		if m.Mul(x, inv) != 1 {
			t.Fatalf("x·x^-1 != 1 for x=%d", x)
		}
	}
	if m.Pow(0, 0) != 1 {
		t.Error("0^0 should be 1")
	}
	if m.Pow(7, 1) != 7 {
		t.Error("7^1 should be 7")
	}
}

func TestPrimitiveNthRoot(t *testing.T) {
	q := uint64(2013265921) // 15·2^27 + 1: supports n up to 2^27
	m := NewModulus(q)
	rng := rand.New(rand.NewSource(7))
	for _, n := range []uint64{2, 8, 1 << 12, 1 << 15} {
		w := m.PrimitiveNthRoot(n, rng)
		if m.Pow(w, n) != 1 {
			t.Fatalf("w^n != 1 for n=%d", n)
		}
		if m.Pow(w, n/2) != q-1 {
			t.Fatalf("w^{n/2} != -1 for n=%d (not primitive)", n)
		}
	}
}

func TestShoupMul(t *testing.T) {
	for _, q := range testModuli {
		m := NewModulus(q)
		bq := new(big.Int).SetUint64(q)
		rng := rand.New(rand.NewSource(int64(q)))
		for i := 0; i < 500; i++ {
			w := rng.Uint64() % q
			ws := m.ShoupPrecomp(w)
			x := rng.Uint64() % q
			want := new(big.Int).Mul(new(big.Int).SetUint64(x), new(big.Int).SetUint64(w))
			want.Mod(want, bq)
			if got := m.ShoupMul(x, w, ws); got != want.Uint64() {
				t.Fatalf("q=%d ShoupMul(%d,%d)=%d want %d", q, x, w, got, want.Uint64())
			}
			lazy := m.ShoupMulLazy(x, w, ws)
			if lazy >= 2*q || lazy%q != want.Uint64()%q {
				t.Fatalf("q=%d ShoupMulLazy out of bounds or wrong: %d", q, lazy)
			}
		}
	}
}

func BenchmarkMulBarrett(b *testing.B) {
	m := NewModulus(testModuli[3])
	x, y := uint64(123456789123), uint64(987654321987)
	var r uint64
	for i := 0; i < b.N; i++ {
		r = m.Mul(x, r^y)
	}
	_ = r
}

func BenchmarkShoupMul(b *testing.B) {
	m := NewModulus(testModuli[3])
	w := uint64(987654321987) % m.Q
	ws := m.ShoupPrecomp(w)
	var r uint64 = 123
	for i := 0; i < b.N; i++ {
		r = m.ShoupMul(r, w, ws)
	}
	_ = r
}
