package guard

import (
	"fmt"
	"math/big"

	"cnnhe/internal/ckks"
	"cnnhe/internal/ckksbig"
	"cnnhe/internal/henn"
)

// validate runs the structural (always) and coefficient-range (deep)
// invariants on a raw backend ciphertext. Unknown backends pass through
// unchecked — the guard still provides panic conversion, scale tracking
// and the noise budget for them.
func (g *GuardedEngine) validate(op string, ct henn.Ct, deep bool) {
	switch c := ct.(type) {
	case *ckks.Ciphertext:
		if g.rnsCtx != nil {
			g.validateRNS(op, c, deep)
		}
	case *ckksbig.Ciphertext:
		if g.bigCtx != nil {
			g.validateBig(op, c, deep)
		}
	}
}

// validateRNS checks an RNS ciphertext: level in range, every limb up to
// the level present and correctly sized (structure), and — when deep —
// every residue word strictly below its modulus. A flipped or injected
// word ≥ q_i can never be produced by correct modular arithmetic, so the
// range scan catches corruption that would otherwise surface only as
// garbage slots after decryption.
func (g *GuardedEngine) validateRNS(op string, ct *ckks.Ciphertext, deep bool) {
	r := g.rnsCtx.R
	if ct.Level < 0 || ct.Level > r.MaxLevel() {
		g.fail(op, fmt.Errorf("%w: level %d outside [0, %d]", ErrLevelExhausted, ct.Level, r.MaxLevel()))
	}
	for name, poly := range map[string][][]uint64{"c0": ct.C0.Coeffs, "c1": ct.C1.Coeffs} {
		for i := 0; i <= ct.Level; i++ {
			sr := r.SubRings[i]
			want := r.NVal * sr.Width()
			if i >= len(poly) || poly[i] == nil {
				g.fail(op, fmt.Errorf("%w: %s limb %d absent at level %d", ErrResidueMissing, name, i, ct.Level))
			}
			if len(poly[i]) != want {
				g.fail(op, fmt.Errorf("%w: %s limb %d has %d words, want %d", ErrResidueMissing, name, i, len(poly[i]), want))
			}
			if !deep {
				continue
			}
			if sr.Width() == 1 {
				q := sr.Modulus().Uint64()
				for j, w := range poly[i] {
					if w >= q {
						g.fail(op, fmt.Errorf("%w: %s limb %d coeff %d = %d ≥ q_%d", ErrCorruptCiphertext, name, i, j, w, i))
					}
				}
			} else {
				q := sr.Modulus()
				c := new(big.Int)
				for j := 0; j < r.NVal; j++ {
					sr.CoeffBig(poly[i], j, c)
					if c.Cmp(q) >= 0 || c.Sign() < 0 {
						g.fail(op, fmt.Errorf("%w: %s limb %d coeff %d ≥ q_%d", ErrCorruptCiphertext, name, i, j, i))
					}
				}
			}
		}
	}
}

// validateBig checks a multiprecision ciphertext: level in range, every
// coefficient present (structure), and — when deep — every coefficient in
// [0, Q_ℓ).
func (g *GuardedEngine) validateBig(op string, ct *ckksbig.Ciphertext, deep bool) {
	params := g.bigCtx.Params
	maxLevel := len(params.Factors) - 1
	if ct.Level < 0 || ct.Level > maxLevel {
		g.fail(op, fmt.Errorf("%w: level %d outside [0, %d]", ErrLevelExhausted, ct.Level, maxLevel))
	}
	n := params.N()
	var q *big.Int
	if deep {
		g.mu.Lock()
		q = g.qAt[ct.Level]
		if q == nil {
			q = params.QAt(ct.Level)
			g.qAt[ct.Level] = q
		}
		g.mu.Unlock()
	}
	for name, poly := range map[string][]*big.Int{"c0": ct.C0.Coeffs, "c1": ct.C1.Coeffs} {
		if len(poly) != n {
			g.fail(op, fmt.Errorf("%w: %s has %d coefficients, want %d", ErrResidueMissing, name, len(poly), n))
		}
		for j, c := range poly {
			if c == nil {
				g.fail(op, fmt.Errorf("%w: %s coeff %d absent", ErrResidueMissing, name, j))
			}
			if c.Sign() < 0 || (deep && c.Cmp(q) >= 0) {
				g.fail(op, fmt.Errorf("%w: %s coeff %d outside [0, Q_%d)", ErrCorruptCiphertext, name, j, ct.Level))
			}
		}
	}
}
