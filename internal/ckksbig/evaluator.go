package ckksbig

import (
	"fmt"
	"math"
	"math/big"

	"cnnhe/internal/bigring"
	"cnnhe/internal/ring"
)

// Evaluator performs homomorphic operations on the multiprecision backend.
type Evaluator struct {
	ctx *Context
	rlk *SwitchingKey
	rtk *RotationKeySet
}

// NewEvaluator returns an evaluator with the given keys (either may be nil
// when the corresponding operations are unused).
func NewEvaluator(ctx *Context, rlk *SwitchingKey, rtk *RotationKeySet) *Evaluator {
	return &Evaluator{ctx: ctx, rlk: rlk, rtk: rtk}
}

func scaleClose(a, b float64) bool {
	return math.Abs(a-b) <= math.Max(a, b)*math.Exp2(-40)
}

func (ev *Evaluator) checkPair(a, b *Ciphertext) int {
	if a.Level != b.Level {
		panic(fmt.Sprintf("ckksbig: level mismatch %d vs %d", a.Level, b.Level))
	}
	if !scaleClose(a.Scale, b.Scale) {
		panic(fmt.Sprintf("ckksbig: scale mismatch 2^%.4f vs 2^%.4f", logScale(a.Scale), logScale(b.Scale)))
	}
	return a.Level
}

// Add returns a + b.
func (ev *Evaluator) Add(a, b *Ciphertext) *Ciphertext {
	level := ev.checkPair(a, b)
	r := ev.ctx.RingQ(level)
	out := &Ciphertext{C0: r.NewPoly(), C1: r.NewPoly(), Level: level, Scale: a.Scale}
	r.Add(a.C0, b.C0, out.C0)
	r.Add(a.C1, b.C1, out.C1)
	return out
}

// AddInPlace sets a += b.
func (ev *Evaluator) AddInPlace(a, b *Ciphertext) {
	level := ev.checkPair(a, b)
	r := ev.ctx.RingQ(level)
	r.Add(a.C0, b.C0, a.C0)
	r.Add(a.C1, b.C1, a.C1)
}

// Sub returns a − b.
func (ev *Evaluator) Sub(a, b *Ciphertext) *Ciphertext {
	level := ev.checkPair(a, b)
	r := ev.ctx.RingQ(level)
	out := &Ciphertext{C0: r.NewPoly(), C1: r.NewPoly(), Level: level, Scale: a.Scale}
	r.Sub(a.C0, b.C0, out.C0)
	r.Sub(a.C1, b.C1, out.C1)
	return out
}

// Neg returns −a.
func (ev *Evaluator) Neg(a *Ciphertext) *Ciphertext {
	r := ev.ctx.RingQ(a.Level)
	out := &Ciphertext{C0: r.NewPoly(), C1: r.NewPoly(), Level: a.Level, Scale: a.Scale}
	r.Neg(a.C0, out.C0)
	r.Neg(a.C1, out.C1)
	return out
}

// AddPlain returns ct + pt (matching level and scale).
func (ev *Evaluator) AddPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if ct.Level != pt.Level {
		panic("ckksbig: AddPlain level mismatch")
	}
	if !scaleClose(ct.Scale, pt.Scale) {
		panic(fmt.Sprintf("ckksbig: AddPlain scale mismatch 2^%.4f vs 2^%.4f", logScale(ct.Scale), logScale(pt.Scale)))
	}
	out := ct.CopyNew(ev.ctx)
	ev.ctx.RingQ(ct.Level).Add(out.C0, pt.Value, out.C0)
	return out
}

// MulPlain returns ct ⊙ pt; the scale multiplies.
func (ev *Evaluator) MulPlain(ct *Ciphertext, pt *Plaintext) *Ciphertext {
	if ct.Level != pt.Level {
		panic("ckksbig: MulPlain level mismatch")
	}
	r := ev.ctx.RingQ(ct.Level)
	out := &Ciphertext{C0: r.NewPoly(), C1: r.NewPoly(), Level: ct.Level, Scale: ct.Scale * pt.Scale}
	r.MulCoeffs(ct.C0, pt.Value, out.C0)
	r.MulCoeffs(ct.C1, pt.Value, out.C1)
	return out
}

// MulConst multiplies every slot by c encoded at constScale (0 for the
// default: the current level's prime, so one rescale restores the scale).
func (ev *Evaluator) MulConst(ct *Ciphertext, c float64, constScale float64) *Ciphertext {
	if constScale == 0 {
		constScale = ev.ctx.Params.QiFloat(ct.Level)
	}
	s := EncodeConstant(c, constScale)
	r := ev.ctx.RingQ(ct.Level)
	out := &Ciphertext{C0: r.NewPoly(), C1: r.NewPoly(), Level: ct.Level, Scale: ct.Scale * constScale}
	neg := s.Sign() < 0
	abs := new(big.Int).Abs(s)
	r.MulScalar(ct.C0, abs, out.C0)
	r.MulScalar(ct.C1, abs, out.C1)
	if neg {
		r.Neg(out.C0, out.C0)
		r.Neg(out.C1, out.C1)
	}
	return out
}

// MulInt multiplies every slot by the exact integer n (scale unchanged).
func (ev *Evaluator) MulInt(ct *Ciphertext, n int64) *Ciphertext {
	r := ev.ctx.RingQ(ct.Level)
	out := &Ciphertext{C0: r.NewPoly(), C1: r.NewPoly(), Level: ct.Level, Scale: ct.Scale}
	neg := n < 0
	if neg {
		n = -n
	}
	s := big.NewInt(n)
	r.MulScalar(ct.C0, s, out.C0)
	r.MulScalar(ct.C1, s, out.C1)
	if neg {
		r.Neg(out.C0, out.C0)
		r.Neg(out.C1, out.C1)
	}
	return out
}

// AddConst adds the constant c to every slot.
func (ev *Evaluator) AddConst(ct *Ciphertext, c float64) *Ciphertext {
	enc := NewEncoder(ev.ctx)
	vals := make([]float64, ev.ctx.Params.Slots())
	for i := range vals {
		vals[i] = c
	}
	return ev.AddPlain(ct, enc.Encode(vals, ct.Level, ct.Scale))
}

// Mul returns a·b relinearized; the scale multiplies.
func (ev *Evaluator) Mul(a, b *Ciphertext) *Ciphertext {
	if ev.rlk == nil {
		panic("ckksbig: Mul requires a relinearization key")
	}
	if a.Level != b.Level {
		panic("ckksbig: Mul level mismatch")
	}
	level := a.Level
	r := ev.ctx.RingQ(level)
	d0 := r.NewPoly()
	d1 := r.NewPoly()
	d2 := r.NewPoly()
	tmp := r.NewPoly()
	r.MulCoeffs(a.C0, b.C0, d0)
	r.MulCoeffs(a.C0, b.C1, d1)
	r.MulCoeffs(a.C1, b.C0, tmp)
	r.Add(d1, tmp, d1)
	r.MulCoeffs(a.C1, b.C1, d2)
	r.INTT(d2)
	ks0, ks1 := ev.keySwitch(level, d2, ev.rlk)
	out := &Ciphertext{C0: d0, C1: d1, Level: level, Scale: a.Scale * b.Scale}
	r.Add(out.C0, ks0, out.C0)
	r.Add(out.C1, ks1, out.C1)
	return out
}

// Square returns a·a.
func (ev *Evaluator) Square(a *Ciphertext) *Ciphertext { return ev.Mul(a, a) }

// Rescale divides the ciphertext by its top prime factor, dropping one
// level.
func (ev *Evaluator) Rescale(ct *Ciphertext) *Ciphertext {
	if ct.Level == 0 {
		panic("ckksbig: cannot rescale at level 0")
	}
	level := ct.Level
	rIn := ev.ctx.RingQ(level)
	rOut := ev.ctx.RingQ(level - 1)
	q := ev.ctx.Params.Factors[level]
	halfQ := new(big.Int).Rsh(q, 1)
	out := &Ciphertext{
		Level: level - 1,
		Scale: ct.Scale / ev.ctx.Params.QiFloat(level),
	}
	for _, pair := range [2]*bigring.Poly{ct.C0, ct.C1} {
		tmp := rIn.Copy(pair)
		rIn.INTT(tmp)
		res := rOut.NewPoly()
		rem := new(big.Int)
		for i, v := range tmp.Coeffs {
			// Centered remainder mod q, exact division, reduce mod Q_{ℓ−1}.
			rem.Mod(v, q)
			t := new(big.Int).Sub(v, rem)
			if rem.Cmp(halfQ) > 0 {
				t.Add(t, q)
			}
			t.Quo(t, q)
			res.Coeffs[i].Mod(t, rOut.Q)
		}
		rOut.NTT(res)
		if out.C0 == nil {
			out.C0 = res
		} else {
			out.C1 = res
		}
	}
	return out
}

// RescaleTo rescales until ct reaches the given level.
func (ev *Evaluator) RescaleTo(ct *Ciphertext, level int) *Ciphertext {
	out := ct
	for out.Level > level {
		out = ev.Rescale(out)
	}
	return out
}

// DropLevel reduces the level by n without dividing.
func (ev *Evaluator) DropLevel(ct *Ciphertext, n int) *Ciphertext {
	if n == 0 {
		return ct
	}
	if n < 0 || ct.Level-n < 0 {
		panic("ckksbig: invalid DropLevel")
	}
	level := ct.Level - n
	rIn := ev.ctx.RingQ(ct.Level)
	rOut := ev.ctx.RingQ(level)
	out := &Ciphertext{Level: level, Scale: ct.Scale}
	for _, pair := range [2]*bigring.Poly{ct.C0, ct.C1} {
		tmp := rIn.Copy(pair)
		rIn.INTT(tmp)
		res := rOut.NewPoly()
		for i, v := range tmp.Coeffs {
			res.Coeffs[i].Mod(v, rOut.Q)
		}
		rOut.NTT(res)
		if out.C0 == nil {
			out.C0 = res
		} else {
			out.C1 = res
		}
	}
	return out
}

// keySwitch takes a coefficient-domain polynomial c mod Q_ℓ and a switching
// key for s', returning NTT-domain (p0, p1) mod Q_ℓ with p0 + p1·s ≈ c·s'.
// Following the original scheme: lift c to mod Q_ℓ·P, multiply by the key,
// divide by P with rounding.
func (ev *Evaluator) keySwitch(level int, c *bigring.Poly, swk *SwitchingKey) (*bigring.Poly, *bigring.Poly) {
	rqp := ev.ctx.RingQP(level)
	rq := ev.ctx.RingQ(level)
	kb, ka := swk.atLevel(ev.ctx, level)
	lift := rqp.NewPoly()
	for i, v := range c.Coeffs {
		lift.Coeffs[i].Set(v)
	}
	rqp.NTT(lift)
	a0 := rqp.NewPoly()
	a1 := rqp.NewPoly()
	rqp.MulCoeffs(lift, kb, a0)
	rqp.MulCoeffs(lift, ka, a1)
	rqp.INTT(a0)
	rqp.INTT(a1)
	p0 := ev.modDownP(level, a0)
	p1 := ev.modDownP(level, a1)
	rq.NTT(p0)
	rq.NTT(p1)
	return p0, p1
}

// modDownP divides a coefficient-domain polynomial mod Q_ℓ·P by P with
// rounding, returning a polynomial mod Q_ℓ.
func (ev *Evaluator) modDownP(level int, x *bigring.Poly) *bigring.Poly {
	rq := ev.ctx.RingQ(level)
	out := rq.NewPoly()
	r := new(big.Int)
	for i, v := range x.Coeffs {
		r.Mod(v, ev.ctx.P)
		t := new(big.Int).Sub(v, r)
		if r.Cmp(ev.ctx.halfP) > 0 {
			t.Add(t, ev.ctx.P)
		}
		t.Quo(t, ev.ctx.P)
		out.Coeffs[i].Mod(t, rq.Q)
	}
	return out
}

// Rotate returns ct with slots rotated left by k.
func (ev *Evaluator) Rotate(ct *Ciphertext, k int) *Ciphertext {
	if k == 0 {
		return ct.CopyNew(ev.ctx)
	}
	galEl := ring.GaloisElementForRotation(ev.ctx.Params.LogN, k)
	return ev.automorphism(ct, galEl)
}

// Conjugate returns ct with conjugated slots.
func (ev *Evaluator) Conjugate(ct *Ciphertext) *Ciphertext {
	return ev.automorphism(ct, ring.GaloisElementConjugate(ev.ctx.Params.LogN))
}

// RotateHoisted returns rotations of ct by each k in ks, hoisting the
// expensive lift-and-NTT of c1 modulo Q·P across all rotations; each
// rotation then costs only an NTT-domain permutation, the key product and
// the mod-down.
func (ev *Evaluator) RotateHoisted(ct *Ciphertext, ks []int) map[int]*Ciphertext {
	out := make(map[int]*Ciphertext, len(ks))
	var rest []int
	for _, k := range ks {
		if k == 0 {
			out[0] = ct.CopyNew(ev.ctx)
		} else {
			rest = append(rest, k)
		}
	}
	if len(rest) == 0 {
		return out
	}
	if ev.rtk == nil {
		panic("ckksbig: rotation requires rotation keys")
	}
	level := ct.Level
	rq := ev.ctx.RingQ(level)
	rqp := ev.ctx.RingQP(level)
	logN := ev.ctx.Params.LogN

	// Hoist: lift c1 to mod Q·P and transform once.
	c1 := rq.Copy(ct.C1)
	rq.INTT(c1)
	lift := rqp.NewPoly()
	for i, v := range c1.Coeffs {
		lift.Coeffs[i].Set(v)
	}
	rqp.NTT(lift)

	for _, k := range rest {
		galEl := ring.GaloisElementForRotation(logN, k)
		swk, ok := ev.rtk.Keys[galEl]
		if !ok {
			panic(fmt.Sprintf("ckksbig: missing rotation key for galois element %d", galEl))
		}
		kb, ka := swk.atLevel(ev.ctx, level)
		perm := ring.AutomorphismNTTIndex(logN, galEl)
		pl := rqp.NewPoly()
		rqp.PermuteNTT(lift, perm, pl)
		a0 := rqp.NewPoly()
		a1 := rqp.NewPoly()
		rqp.MulCoeffs(pl, kb, a0)
		rqp.MulCoeffs(pl, ka, a1)
		rqp.INTT(a0)
		rqp.INTT(a1)
		p0 := ev.modDownP(level, a0)
		p1 := ev.modDownP(level, a1)
		rq.NTT(p0)
		rq.NTT(p1)
		rc0 := rq.NewPoly()
		rq.PermuteNTT(ct.C0, perm, rc0)
		rq.Add(rc0, p0, rc0)
		out[k] = &Ciphertext{C0: rc0, C1: p1, Level: level, Scale: ct.Scale}
	}
	return out
}

func (ev *Evaluator) automorphism(ct *Ciphertext, galEl uint64) *Ciphertext {
	if ev.rtk == nil {
		panic("ckksbig: rotation requires rotation keys")
	}
	swk, ok := ev.rtk.Keys[galEl]
	if !ok {
		panic(fmt.Sprintf("ckksbig: missing rotation key for galois element %d", galEl))
	}
	rq := ev.ctx.RingQ(ct.Level)
	c0 := rq.Copy(ct.C0)
	c1 := rq.Copy(ct.C1)
	rq.INTT(c0)
	rq.INTT(c1)
	a0 := rq.NewPoly()
	a1 := rq.NewPoly()
	rq.Automorphism(c0, galEl, a0)
	rq.Automorphism(c1, galEl, a1)
	ks0, ks1 := ev.keySwitch(ct.Level, a1, swk)
	rq.NTT(a0)
	out := &Ciphertext{C0: a0, C1: ks1, Level: ct.Level, Scale: ct.Scale}
	rq.Add(out.C0, ks0, out.C0)
	return out
}
