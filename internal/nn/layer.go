// Package nn implements the plaintext CNN training stack used to produce
// the models the homomorphic pipelines evaluate: layers with full
// backpropagation (Conv2D, Dense, BatchNorm2D, ReLU, polynomial SLAF),
// SGD with momentum, the 1-cycle learning-rate policy, Kaiming
// initialization and cross-entropy loss — the training recipe of the
// paper's Section V.D.
//
// Layers are batch-aware: Forward/Backward operate on slices of per-sample
// tensors so that batch normalization sees true batch statistics.
package nn

import (
	"math"
	"math/rand"

	"cnnhe/internal/tensor"
)

// Param is a trainable parameter tensor with its gradient accumulator and
// momentum buffer.
type Param struct {
	Name   string
	Data   []float64
	Grad   []float64
	Vel    []float64
	Frozen bool
}

func newParam(name string, n int) *Param {
	return &Param{Name: name, Data: make([]float64, n), Grad: make([]float64, n), Vel: make([]float64, n)}
}

// ZeroGrad clears the gradient accumulator.
func (p *Param) ZeroGrad() {
	for i := range p.Grad {
		p.Grad[i] = 0
	}
}

// Layer is a differentiable network stage.
type Layer interface {
	// Name identifies the layer kind.
	Name() string
	// Forward maps a batch of inputs to outputs. When train is set, the
	// layer caches whatever Backward needs and, for BatchNorm, uses batch
	// statistics.
	Forward(xs []*tensor.Tensor, train bool) []*tensor.Tensor
	// Backward consumes ∂L/∂output and returns ∂L/∂input, accumulating
	// parameter gradients. It must be called right after the matching
	// Forward(train=true).
	Backward(grads []*tensor.Tensor) []*tensor.Tensor
	// Params returns the trainable parameters (possibly empty).
	Params() []*Param
}

// kaiming fills w with N(0, √(2/fanIn)) samples.
func kaiming(rng *rand.Rand, w []float64, fanIn int) {
	std := math.Sqrt(2.0 / float64(fanIn))
	for i := range w {
		w[i] = rng.NormFloat64() * std
	}
}
