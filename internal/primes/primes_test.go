package primes

import (
	"math/big"
	"testing"
)

func TestGenNTTPrimesProperties(t *testing.T) {
	const logN = 12
	twoN := uint64(1) << (logN + 1)
	ps, err := GenNTTPrimes(40, logN, 5, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 5 {
		t.Fatalf("want 5 primes, got %d", len(ps))
	}
	seen := map[uint64]bool{}
	for _, p := range ps {
		if seen[p] {
			t.Fatalf("duplicate prime %d", p)
		}
		seen[p] = true
		if p%twoN != 1 {
			t.Errorf("prime %d not ≡ 1 mod 2N", p)
		}
		if !IsPrime(p) {
			t.Errorf("%d is not prime", p)
		}
		if bl := new(big.Int).SetUint64(p).BitLen(); bl != 40 {
			t.Errorf("prime %d has %d bits, want 40", p, bl)
		}
	}
}

func TestGenNTTPrimesAvoid(t *testing.T) {
	first, err := GenNTTPrimes(30, 10, 1, nil)
	if err != nil {
		t.Fatal(err)
	}
	avoid := map[uint64]bool{first[0]: true}
	second, err := GenNTTPrimes(30, 10, 1, avoid)
	if err != nil {
		t.Fatal(err)
	}
	if first[0] == second[0] {
		t.Fatal("avoid set ignored")
	}
}

func TestGenNTTPrimesErrors(t *testing.T) {
	if _, err := GenNTTPrimes(70, 12, 1, nil); err == nil {
		t.Error("expected error for 70-bit word prime")
	}
	if _, err := GenNTTPrimes(10, 12, 1, nil); err == nil {
		t.Error("expected error when 2^bits <= 2N")
	}
	// Tiny range that cannot hold many primes.
	if _, err := GenNTTPrimes(16, 12, 100, nil); err == nil {
		t.Error("expected exhaustion error")
	}
}

func TestGenWideNTTPrime(t *testing.T) {
	const logN = 12
	p, err := GenWideNTTPrime(92, logN, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.BitLen() != 92 {
		t.Fatalf("bitlen %d want 92", p.BitLen())
	}
	twoN := new(big.Int).Lsh(big.NewInt(1), logN+1)
	if new(big.Int).Mod(p, twoN).Cmp(big.NewInt(1)) != 0 {
		t.Error("wide prime not ≡ 1 mod 2N")
	}
	if !p.ProbablyPrime(24) {
		t.Error("wide candidate is not prime")
	}
	if _, err := GenWideNTTPrime(40, logN, nil); err == nil {
		t.Error("expected error for word-range request")
	}
	if _, err := GenWideNTTPrime(130, logN, nil); err == nil {
		t.Error("expected error above the wide cap")
	}
}

func TestBuildChainPaper(t *testing.T) {
	// The Table II chain in SEAL convention: ciphertext primes [40, 26×11]
	// plus the trailing 40-bit key-switching prime, 13 primes and 366 bits
	// in total.
	c, err := BuildChain(13, PaperBitSizes(), 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Len(); got != 12 {
		t.Fatalf("ciphertext prime count = %d, want 12", got)
	}
	if len(c.Moduli) != 13 {
		t.Fatalf("total prime count = %d, want 13", len(c.Moduli))
	}
	if c.SpecialCount != 1 {
		t.Fatalf("special count = %d", c.SpecialCount)
	}
	// Table II: log q = 366 counting every prime (SEAL coeff_modulus).
	total := new(big.Int).Mul(c.Q(), c.P())
	if lq := total.BitLen(); lq != 366 {
		t.Fatalf("log qP = %d, want 366", lq)
	}
	if lq := c.LogQ(); lq != 326 {
		t.Fatalf("log q = %d, want 326", lq)
	}
	// All pairwise distinct (co-prime since all prime).
	seen := map[string]bool{}
	for _, m := range c.Moduli {
		s := m.String()
		if seen[s] {
			t.Fatal("duplicate modulus in chain")
		}
		seen[s] = true
	}
	if c.P().BitLen() != 40 {
		t.Fatalf("special modulus bits = %d", c.P().BitLen())
	}
}

func TestBuildChainMixedWide(t *testing.T) {
	c, err := BuildChain(12, EqualSplit(366, 4), 60, 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 4 {
		t.Fatalf("len %d", c.Len())
	}
	for i := 0; i < c.Len(); i++ {
		if c.Moduli[i].BitLen() <= 61 {
			t.Errorf("prime %d unexpectedly word-sized for 366/4 split", i)
		}
	}
	if got := c.LogQ(); got != 366 {
		t.Fatalf("log q = %d want 366", got)
	}
}

func TestEqualSplit(t *testing.T) {
	cases := []struct {
		total, k int
		want     []int
	}{
		{366, 3, []int{122, 122, 122}},
		{366, 6, []int{61, 61, 61, 61, 61, 61}},
		{366, 7, []int{53, 53, 52, 52, 52, 52, 52}},
		{366, 10, []int{37, 37, 37, 37, 37, 37, 36, 36, 36, 36}},
	}
	for _, tc := range cases {
		got := EqualSplit(tc.total, tc.k)
		sum := 0
		for i, v := range got {
			sum += v
			if v != tc.want[i] {
				t.Errorf("EqualSplit(%d,%d)[%d] = %d want %d", tc.total, tc.k, i, v, tc.want[i])
			}
		}
		if sum != tc.total {
			t.Errorf("EqualSplit(%d,%d) sums to %d", tc.total, tc.k, sum)
		}
	}
}
