package embed

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func randomSlots(rng *rand.Rand, n int) []complex128 {
	out := make([]complex128, n)
	for i := range out {
		out[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	for _, n := range []int{8, 64, 1024, 4096} {
		e := New(n)
		rng := rand.New(rand.NewSource(int64(n)))
		vals := randomSlots(rng, e.Slots())
		coeffs := e.Encode(vals)
		back := e.Decode(coeffs)
		for i := range vals {
			if cmplx.Abs(back[i]-vals[i]) > 1e-9 {
				t.Fatalf("n=%d slot %d: %v vs %v", n, i, back[i], vals[i])
			}
		}
	}
}

func TestEncodeProducesRealCoefficients(t *testing.T) {
	// Encode must return real coefficients whose evaluation matches the
	// requested slots exactly at the orbit points (checked naively).
	n := 32
	e := New(n)
	rng := rand.New(rand.NewSource(2))
	vals := randomSlots(rng, e.Slots())
	coeffs := e.Encode(vals)
	// naive evaluation at ζ^{5^j}
	pow := 1
	for j := 0; j < e.Slots(); j++ {
		var acc complex128
		for k := n - 1; k >= 0; k-- {
			theta := math.Pi * float64(pow) / float64(n)
			root := cmplx.Exp(complex(0, theta))
			acc = acc*root + complex(coeffs[k], 0)
		}
		if cmplx.Abs(acc-vals[j]) > 1e-9 {
			t.Fatalf("naive evaluation mismatch at slot %d: %v vs %v", j, acc, vals[j])
		}
		pow = (pow * 5) % (2 * n)
	}
}

func TestEmbeddingIsMultiplicative(t *testing.T) {
	// τ(p·q mod X^N+1) = τ(p) ⊙ τ(q): the property underlying CKKS SIMD.
	n := 64
	e := New(n)
	rng := rand.New(rand.NewSource(3))
	a := randomSlots(rng, e.Slots())
	b := randomSlots(rng, e.Slots())
	pa := e.Encode(a)
	pb := e.Encode(b)
	// negacyclic product
	prod := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			k := i + j
			v := pa[i] * pb[j]
			if k < n {
				prod[k] += v
			} else {
				prod[k-n] -= v
			}
		}
	}
	got := e.Decode(prod)
	for i := range a {
		want := a[i] * b[i]
		if cmplx.Abs(got[i]-want) > 1e-8 {
			t.Fatalf("multiplicativity fails at slot %d: %v vs %v", i, got[i], want)
		}
	}
}

func TestEmbeddingIsAdditive(t *testing.T) {
	n := 128
	e := New(n)
	rng := rand.New(rand.NewSource(4))
	a := randomSlots(rng, e.Slots())
	b := randomSlots(rng, e.Slots())
	pa := e.Encode(a)
	pb := e.Encode(b)
	sum := make([]float64, n)
	for i := range sum {
		sum[i] = pa[i] + pb[i]
	}
	got := e.Decode(sum)
	for i := range a {
		if cmplx.Abs(got[i]-(a[i]+b[i])) > 1e-9 {
			t.Fatalf("additivity fails at slot %d", i)
		}
	}
}

func TestRotationViaGaloisOrbit(t *testing.T) {
	// Applying the automorphism X → X^5 to the coefficients rotates the
	// slot vector left by one position.
	n := 32
	e := New(n)
	rng := rand.New(rand.NewSource(5))
	vals := randomSlots(rng, e.Slots())
	coeffs := e.Encode(vals)
	// automorphism on real coefficients
	rot := make([]float64, n)
	for i := 0; i < n; i++ {
		j := (i * 5) % (2 * n)
		if j < n {
			rot[j] = coeffs[i]
		} else {
			rot[j-n] = -coeffs[i]
		}
	}
	got := e.Decode(rot)
	for i := range vals {
		want := vals[(i+1)%len(vals)]
		if cmplx.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("rotation mismatch at slot %d: %v vs %v", i, got[i], want)
		}
	}
}

func TestConjugationViaGaloisMinusOne(t *testing.T) {
	// X → X^{2N−1} conjugates the slots.
	n := 32
	e := New(n)
	rng := rand.New(rand.NewSource(6))
	vals := randomSlots(rng, e.Slots())
	coeffs := e.Encode(vals)
	g := 2*n - 1
	rot := make([]float64, n)
	for i := 0; i < n; i++ {
		j := (i * g) % (2 * n)
		if j < n {
			rot[j] = coeffs[i]
		} else {
			rot[j-n] = -coeffs[i]
		}
	}
	got := e.Decode(rot)
	for i := range vals {
		want := cmplx.Conj(vals[i])
		if cmplx.Abs(got[i]-want) > 1e-9 {
			t.Fatalf("conjugation mismatch at slot %d", i)
		}
	}
}

func TestEncodeRealHelpers(t *testing.T) {
	n := 64
	e := New(n)
	vals := []float64{0.5, -1.25, 3.75}
	coeffs := e.EncodeReal(vals)
	got := e.DecodeReal(coeffs)
	for i, v := range vals {
		if math.Abs(got[i]-v) > 1e-10 {
			t.Fatalf("real roundtrip mismatch at %d", i)
		}
	}
	for i := len(vals); i < e.Slots(); i++ {
		if math.Abs(got[i]) > 1e-10 {
			t.Fatalf("padding slot %d not zero", i)
		}
	}
}

func TestNewPanicsOnBadDegree(t *testing.T) {
	for _, n := range []int{0, 2, 3, 12} {
		func() {
			defer func() { recover() }()
			New(n)
			t.Errorf("expected panic for n=%d", n)
		}()
	}
}
