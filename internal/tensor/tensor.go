// Package tensor provides the dense float64 tensors and the convolution /
// matrix kernels used by the plaintext training stack (internal/nn) and by
// the homomorphic model compiler (internal/henn), which lowers every linear
// layer — convolutions included — to an explicit matrix acting on a packed
// vector.
package tensor

import (
	"fmt"
	"math"
)

// Tensor is a dense row-major float64 tensor.
type Tensor struct {
	Shape []int
	Data  []float64
}

// New allocates a zero tensor with the given shape.
func New(shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		if s <= 0 {
			panic(fmt.Sprintf("tensor: invalid dimension %d", s))
		}
		n *= s
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: make([]float64, n)}
}

// FromSlice wraps data (not copied) with the given shape.
func FromSlice(data []float64, shape ...int) *Tensor {
	n := 1
	for _, s := range shape {
		n *= s
	}
	if n != len(data) {
		panic(fmt.Sprintf("tensor: data length %d does not match shape %v", len(data), shape))
	}
	return &Tensor{Shape: append([]int(nil), shape...), Data: data}
}

// Len returns the number of elements.
func (t *Tensor) Len() int { return len(t.Data) }

// Clone returns a deep copy.
func (t *Tensor) Clone() *Tensor {
	out := New(t.Shape...)
	copy(out.Data, t.Data)
	return out
}

// At3 reads element (c, i, j) of a [C, H, W] tensor.
func (t *Tensor) At3(c, i, j int) float64 {
	return t.Data[(c*t.Shape[1]+i)*t.Shape[2]+j]
}

// Set3 writes element (c, i, j) of a [C, H, W] tensor.
func (t *Tensor) Set3(c, i, j int, v float64) {
	t.Data[(c*t.Shape[1]+i)*t.Shape[2]+j] = v
}

// ConvShape returns the output spatial size of a convolution.
func ConvShape(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// Conv2D computes a standard multi-channel 2-D convolution (actually
// cross-correlation, as in every DL framework).
//
//	input:   [C, H, W]
//	weights: [OC, C, KH, KW]
//	bias:    [OC]
//
// Returns [OC, OH, OW].
func Conv2D(input, weights *Tensor, bias []float64, stride, pad int) *Tensor {
	c, h, w := input.Shape[0], input.Shape[1], input.Shape[2]
	oc, ic, kh, kw := weights.Shape[0], weights.Shape[1], weights.Shape[2], weights.Shape[3]
	if ic != c {
		panic("tensor: channel mismatch")
	}
	oh := ConvShape(h, kh, stride, pad)
	ow := ConvShape(w, kw, stride, pad)
	out := New(oc, oh, ow)
	for o := 0; o < oc; o++ {
		b := 0.0
		if bias != nil {
			b = bias[o]
		}
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				acc := b
				for ci := 0; ci < c; ci++ {
					for ki := 0; ki < kh; ki++ {
						ii := oi*stride + ki - pad
						if ii < 0 || ii >= h {
							continue
						}
						for kj := 0; kj < kw; kj++ {
							jj := oj*stride + kj - pad
							if jj < 0 || jj >= w {
								continue
							}
							acc += input.At3(ci, ii, jj) *
								weights.Data[((o*c+ci)*kh+ki)*kw+kj]
						}
					}
				}
				out.Set3(o, oi, oj, acc)
			}
		}
	}
	return out
}

// Im2Col unrolls convolution patches into a matrix of shape
// [OH·OW, C·KH·KW] so that convolution becomes a matrix product with the
// reshaped kernel. Out-of-bounds (padding) entries are zero.
func Im2Col(input *Tensor, kh, kw, stride, pad int) *Tensor {
	c, h, w := input.Shape[0], input.Shape[1], input.Shape[2]
	oh := ConvShape(h, kh, stride, pad)
	ow := ConvShape(w, kw, stride, pad)
	cols := c * kh * kw
	out := New(oh*ow, cols)
	row := 0
	for oi := 0; oi < oh; oi++ {
		for oj := 0; oj < ow; oj++ {
			col := 0
			for ci := 0; ci < c; ci++ {
				for ki := 0; ki < kh; ki++ {
					ii := oi*stride + ki - pad
					for kj := 0; kj < kw; kj++ {
						jj := oj*stride + kj - pad
						if ii >= 0 && ii < h && jj >= 0 && jj < w {
							out.Data[row*cols+col] = input.At3(ci, ii, jj)
						}
						col++
					}
				}
			}
			row++
		}
	}
	return out
}

// MatMul returns a·b for a [m, k] and b [k, n].
func MatMul(a, b *Tensor) *Tensor {
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic("tensor: matmul shape mismatch")
	}
	out := New(m, n)
	for i := 0; i < m; i++ {
		for l := 0; l < k; l++ {
			av := a.Data[i*k+l]
			if av == 0 {
				continue
			}
			bo := l * n
			oo := i * n
			for j := 0; j < n; j++ {
				out.Data[oo+j] += av * b.Data[bo+j]
			}
		}
	}
	return out
}

// MatVec returns m·v for m [r, c] and v length c.
func MatVec(m *Tensor, v []float64) []float64 {
	r, c := m.Shape[0], m.Shape[1]
	if len(v) != c {
		panic("tensor: matvec shape mismatch")
	}
	out := make([]float64, r)
	for i := 0; i < r; i++ {
		acc := 0.0
		row := m.Data[i*c : (i+1)*c]
		for j, mv := range row {
			acc += mv * v[j]
		}
		out[i] = acc
	}
	return out
}

// ConvAsMatrix lowers a convolution to the explicit matrix M (and bias
// vector) such that flatten(Conv2D(x)) = M·flatten(x) + bias. The matrix
// has shape [OC·OH·OW, C·H·W]. This is how the homomorphic pipeline
// evaluates convolutions on packed ciphertexts.
func ConvAsMatrix(weights *Tensor, bias []float64, c, h, w, stride, pad int) (*Tensor, []float64) {
	oc, ic, kh, kw := weights.Shape[0], weights.Shape[1], weights.Shape[2], weights.Shape[3]
	if ic != c {
		panic("tensor: channel mismatch")
	}
	oh := ConvShape(h, kh, stride, pad)
	ow := ConvShape(w, kw, stride, pad)
	rows := oc * oh * ow
	cols := c * h * w
	m := New(rows, cols)
	bOut := make([]float64, rows)
	row := 0
	for o := 0; o < oc; o++ {
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				if bias != nil {
					bOut[row] = bias[o]
				}
				for ci := 0; ci < c; ci++ {
					for ki := 0; ki < kh; ki++ {
						ii := oi*stride + ki - pad
						if ii < 0 || ii >= h {
							continue
						}
						for kj := 0; kj < kw; kj++ {
							jj := oj*stride + kj - pad
							if jj < 0 || jj >= w {
								continue
							}
							m.Data[row*cols+(ci*h+ii)*w+jj] =
								weights.Data[((o*c+ci)*kh+ki)*kw+kj]
						}
					}
				}
				row++
			}
		}
	}
	return m, bOut
}

// MeanPool2D performs average pooling with the given window and stride on a
// [C, H, W] tensor.
func MeanPool2D(input *Tensor, window, stride int) *Tensor {
	c, h, w := input.Shape[0], input.Shape[1], input.Shape[2]
	oh := ConvShape(h, window, stride, 0)
	ow := ConvShape(w, window, stride, 0)
	out := New(c, oh, ow)
	inv := 1.0 / float64(window*window)
	for ci := 0; ci < c; ci++ {
		for oi := 0; oi < oh; oi++ {
			for oj := 0; oj < ow; oj++ {
				acc := 0.0
				for ki := 0; ki < window; ki++ {
					for kj := 0; kj < window; kj++ {
						acc += input.At3(ci, oi*stride+ki, oj*stride+kj)
					}
				}
				out.Set3(ci, oi, oj, acc*inv)
			}
		}
	}
	return out
}

// MaxAbs returns the largest absolute value in the tensor.
func (t *Tensor) MaxAbs() float64 {
	m := 0.0
	for _, v := range t.Data {
		if a := math.Abs(v); a > m {
			m = a
		}
	}
	return m
}
