package serve

import (
	"sync"
	"time"

	"cnnhe/internal/telemetry"
)

// telSet bundles the serving instruments, registered once on the first
// server that finds telemetry enabled. All methods are nil-safe: with
// telemetry off, serveTel returns nil and every publish is a no-op.
type telSet struct {
	queueDepth *telemetry.Gauge
	fillRatio  *telemetry.Gauge
	admLimit   *telemetry.Gauge
	evalEWMA   *telemetry.Gauge
	batches    *telemetry.Counter
	images     *telemetry.Counter
	reqLat     *telemetry.Histogram
	batchLat   *telemetry.Histogram
	queueLat   *telemetry.Histogram
	outcomes   map[string]*telemetry.Counter
}

var (
	serveTelOnce sync.Once
	serveTelVal  *telSet
)

// Request outcomes, one counter series each (pre-resolved so the hot
// path never takes the registry lock).
var outcomeNames = []string{"ok", "error", "rejected", "shed", "shutdown", "expired", "timeout"}

func serveTel() *telSet {
	if !telemetry.Enabled() {
		return nil
	}
	serveTelOnce.Do(func() {
		r := telemetry.Default()
		t := &telSet{
			queueDepth: r.Gauge("cnnhe_serve_queue_depth",
				"classification requests waiting in the micro-batch queue"),
			fillRatio: r.Gauge("cnnhe_serve_batch_fill_ratio",
				"images ÷ batch capacity of the most recently flushed batch"),
			admLimit: r.Gauge("cnnhe_serve_admission_limit",
				"current AIMD bound on admitted outstanding requests"),
			evalEWMA: r.Gauge("cnnhe_serve_batch_eval_ewma_seconds",
				"smoothed batch evaluation latency driving admission"),
			batches: r.Counter("cnnhe_serve_batches_total",
				"micro-batches evaluated"),
			images: r.Counter("cnnhe_serve_batch_images_total",
				"images evaluated inside micro-batches"),
			reqLat: r.Histogram("cnnhe_serve_request_seconds",
				"per-request latency, enqueue to response", nil),
			batchLat: r.Histogram("cnnhe_serve_batch_seconds",
				"per-batch evaluation wall time", nil),
			queueLat: r.Histogram("cnnhe_serve_queue_wait_seconds",
				"time requests spend queued before their batch starts", nil),
			outcomes: map[string]*telemetry.Counter{},
		}
		for _, o := range outcomeNames {
			t.outcomes[o] = r.Counter("cnnhe_serve_requests_total",
				"classification requests by outcome", telemetry.L("outcome", o))
		}
		serveTelVal = t
	})
	return serveTelVal
}

func (t *telSet) enqueued() {
	if t == nil {
		return
	}
	t.queueDepth.Add(1)
}

func (t *telSet) dequeued() {
	if t == nil {
		return
	}
	t.queueDepth.Add(-1)
}

// request records one finished request. d ≤ 0 (rejections that never
// entered the queue) skips the latency histogram.
func (t *telSet) request(outcome string, d time.Duration) {
	if t == nil {
		return
	}
	t.outcomes[outcome].Inc()
	if d > 0 {
		t.reqLat.ObserveDuration(d)
	}
}

func (t *telSet) queueWait(d time.Duration) {
	if t == nil {
		return
	}
	t.queueLat.ObserveDuration(d)
}

// admission publishes the overload controller's live state.
func (t *telSet) admission(a *admission) {
	if t == nil || a == nil {
		return
	}
	t.admLimit.Set(a.limitNow())
	t.evalEWMA.Set(a.ewmaNow().Seconds())
}

// batchDone records one evaluated micro-batch.
func (t *telSet) batchDone(n, capacity int, d time.Duration, ok bool) {
	if t == nil {
		return
	}
	t.batches.Inc()
	t.images.Add(int64(n))
	t.fillRatio.Set(float64(n) / float64(capacity))
	if ok {
		t.batchLat.ObserveDuration(d)
	}
}
