package henn

import (
	"fmt"
	"sync"
	"time"

	"cnnhe/internal/rnsdec"
)

// Logits is the decrypted output of an encrypted classification.
type Logits []float64

// Argmax returns the predicted class.
func (l Logits) Argmax() int {
	best := 0
	for i := 1; i < len(l); i++ {
		if l[i] > l[best] {
			best = i
		}
	}
	return best
}

// Infer classifies one raw image (pixels in [0, 255], length InputDim):
// encrypt → evaluate every stage → decrypt. It returns the logits and the
// server-side evaluation latency (excluding client encrypt/decrypt, as the
// paper measures classification latency of the homomorphic pipeline).
func (p *Plan) Infer(e Engine, image []float64) (Logits, time.Duration) {
	ct := e.EncryptVec(image)
	start := time.Now()
	for _, s := range p.Stages {
		ct = s.Eval(e, ct)
	}
	lat := time.Since(start)
	out := e.DecryptVec(ct)
	return Logits(out[:p.OutputDim]), lat
}

// LatencyStats aggregates per-inference latencies.
type LatencyStats struct {
	Min, Max, Avg time.Duration
	N             int
}

func newLatencyStats() LatencyStats {
	return LatencyStats{Min: time.Duration(1<<63 - 1)}
}

func (s *LatencyStats) add(d time.Duration) {
	if d < s.Min {
		s.Min = d
	}
	if d > s.Max {
		s.Max = d
	}
	s.Avg += d
	s.N++
}

func (s *LatencyStats) finish() {
	if s.N > 0 {
		s.Avg /= time.Duration(s.N)
	} else {
		s.Min = 0
	}
}

// String renders the stats like the paper's tables (seconds).
func (s LatencyStats) String() string {
	return fmt.Sprintf("min %.2fs max %.2fs avg %.2fs (n=%d)",
		s.Min.Seconds(), s.Max.Seconds(), s.Avg.Seconds(), s.N)
}

// EvaluateEncrypted classifies images[0:n] homomorphically and returns the
// accuracy against labels plus latency statistics.
func (p *Plan) EvaluateEncrypted(e Engine, images [][]float64, labels []int, n int) (float64, LatencyStats) {
	if n <= 0 || n > len(images) {
		n = len(images)
	}
	stats := newLatencyStats()
	correct := 0
	for i := 0; i < n; i++ {
		logits, lat := p.Infer(e, images[i])
		stats.add(lat)
		if logits.Argmax() == labels[i] {
			correct++
		}
	}
	stats.finish()
	return float64(correct) / float64(n), stats
}

// RNSPlan is the Fig. 5 CNN-RNS pipeline: the input image is decomposed
// into K digit tensors (rnsdec digit mode — the exact, fully homomorphic
// variant of the paper's residue decomposition, see DESIGN.md S4), the
// first convolutional stage is evaluated on every part independently (in
// parallel when Parallel is set), the parts are recombined linearly inside
// the ciphertext, and the remaining stages run once.
type RNSPlan struct {
	Base   *Plan
	Digits rnsdec.DigitBasis
	// Parallel evaluates the per-part convolutions on separate goroutines.
	Parallel bool
}

// NewRNSPlan wraps a compiled plan with a k-part digit decomposition
// covering 8-bit pixels.
func NewRNSPlan(base *Plan, k int, parallel bool) (*RNSPlan, error) {
	if len(base.Stages) == 0 {
		return nil, fmt.Errorf("henn: empty base plan")
	}
	if _, ok := base.Stages[0].(*LinearStage); !ok {
		return nil, fmt.Errorf("henn: RNS pipeline requires a linear first stage")
	}
	if k < 1 {
		return nil, fmt.Errorf("henn: need at least one part")
	}
	// Smallest base with base^k ≥ 256.
	base256 := int64(2)
	for pow(base256, k) < 256 {
		base256++
	}
	db, err := rnsdec.NewDigitBasis(base256, k)
	if err != nil {
		return nil, err
	}
	return &RNSPlan{Base: base, Digits: db, Parallel: parallel}, nil
}

func pow(b int64, k int) int64 {
	r := int64(1)
	for i := 0; i < k; i++ {
		r *= b
		if r >= 1<<32 {
			return r
		}
	}
	return r
}

// Infer classifies one raw image through the decomposed pipeline.
func (p *RNSPlan) Infer(e Engine, image []float64) (Logits, time.Duration) {
	parts := p.Digits.DecomposeTensor(image)
	cts := make([]Ct, len(parts))
	for i, part := range parts {
		cts[i] = e.EncryptVec(part)
	}
	first := p.Base.Stages[0].(*LinearStage)
	weights := p.Digits.Weights()

	start := time.Now()
	outs := make([]Ct, len(parts))
	if p.Parallel && len(parts) > 1 {
		var wg sync.WaitGroup
		wg.Add(len(parts))
		for i := range parts {
			go func(i int) {
				defer wg.Done()
				outs[i] = p.evalPart(e, first, cts[i], i)
			}(i)
		}
		wg.Wait()
	} else {
		for i := range parts {
			outs[i] = p.evalPart(e, first, cts[i], i)
		}
	}
	// Linear recomposition: y = Σ Bⁱ·L(dᵢ) (exact; weights are integers).
	acc := outs[0] // weight B⁰ = 1; carries the bias
	for i := 1; i < len(outs); i++ {
		acc = e.Add(acc, e.MulInt(outs[i], int64(weights[i])))
	}
	for _, s := range p.Base.Stages[1:] {
		acc = s.Eval(e, acc)
	}
	lat := time.Since(start)
	out := e.DecryptVec(acc)
	return Logits(out[:p.Base.OutputDim]), lat
}

func (p *RNSPlan) evalPart(e Engine, first *LinearStage, ct Ct, idx int) Ct {
	if idx == 0 {
		return first.Eval(e, ct)
	}
	return first.EvalNoBias(e, ct)
}

// EvaluateEncrypted mirrors Plan.EvaluateEncrypted for the RNS pipeline.
func (p *RNSPlan) EvaluateEncrypted(e Engine, images [][]float64, labels []int, n int) (float64, LatencyStats) {
	if n <= 0 || n > len(images) {
		n = len(images)
	}
	stats := newLatencyStats()
	correct := 0
	for i := 0; i < n; i++ {
		logits, lat := p.Infer(e, images[i])
		stats.add(lat)
		if logits.Argmax() == labels[i] {
			correct++
		}
	}
	stats.finish()
	return float64(correct) / float64(n), stats
}
