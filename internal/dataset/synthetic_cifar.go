package dataset

import (
	"math"
	"math/rand"
)

// SyntheticCIFAR10 generates n deterministic synthetic 32×32 RGB images,
// the offline CIFAR-10 substitution. Each class is a distinct colored
// geometric texture — filled disc, ring, bar, checker, gradient, and so
// on — rendered after a random affine perturbation with per-pixel noise,
// so a small CNN can genuinely separate the classes while nothing needs
// downloading.
func SyntheticCIFAR10(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := Dataset{C: CIFARChannels, H: CIFARRows, W: CIFARCols, Pixels: make([][]byte, n), Labels: make([]int, n)}
	for i := 0; i < n; i++ {
		label := rng.Intn(10)
		d.Labels[i] = label
		d.Pixels[i] = renderCIFAR(label, rng)
	}
	return d
}

// classPalette gives each class a base RGB color (loosely evoking the
// real class: airplane sky-blue, frog green, truck red, …).
var classPalette = [10][3]float64{
	{0.45, 0.65, 0.95}, // 0 airplane
	{0.75, 0.25, 0.25}, // 1 automobile
	{0.55, 0.80, 0.95}, // 2 bird
	{0.85, 0.60, 0.30}, // 3 cat
	{0.60, 0.45, 0.25}, // 4 deer
	{0.50, 0.35, 0.20}, // 5 dog
	{0.30, 0.75, 0.35}, // 6 frog
	{0.45, 0.30, 0.20}, // 7 horse
	{0.25, 0.45, 0.80}, // 8 ship
	{0.80, 0.20, 0.20}, // 9 truck
}

// classShape returns the ink intensity of the class texture at unit
// coordinates (u, v) ∈ [0, 1]².
func classShape(label int, u, v float64) float64 {
	du, dv := u-0.5, v-0.5
	r := math.Hypot(du, dv)
	switch label {
	case 0: // horizontal bar (fuselage)
		return gate(math.Abs(dv) < 0.12) * gate(math.Abs(du) < 0.42)
	case 1: // low wide box (car body)
		return gate(dv > -0.05 && dv < 0.25) * gate(math.Abs(du) < 0.38)
	case 2: // small disc high in frame (bird)
		return softDisc(u-0.5, v-0.35, 0.18)
	case 3: // two discs (cat face + ear hint)
		return math.Max(softDisc(du, dv, 0.26), softDisc(u-0.68, v-0.3, 0.1))
	case 4: // vertical bars (legs)
		return gate(math.Abs(math.Mod(u*4, 1)-0.5) < 0.22) * gate(dv > -0.2)
	case 5: // centered disc (dog face)
		return softDisc(du, dv, 0.3)
	case 6: // squat ellipse (frog)
		return softDisc(du/1.5, dv, 0.22)
	case 7: // diagonal bar (horse back/neck)
		return gate(math.Abs(dv-0.35*du) < 0.12)
	case 8: // bottom-heavy trapezoid (hull)
		return gate(dv > 0.05 && dv < 0.35) * gate(math.Abs(du) < 0.45-0.4*(0.35-dv))
	case 9: // checker (cargo)
		c := math.Mod(math.Floor(u*4)+math.Floor(v*4), 2)
		return c * gate(r < 0.45)
	}
	return 0
}

func gate(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func softDisc(du, dv, radius float64) float64 {
	r := math.Hypot(du, dv)
	return 1 / (1 + math.Exp((r-radius)*30))
}

// renderCIFAR rasterizes one randomly perturbed class texture to planar
// RGB bytes.
func renderCIFAR(label int, rng *rand.Rand) []byte {
	theta := (rng.Float64()*2 - 1) * 0.3
	scale := 0.8 + rng.Float64()*0.4
	tx := (rng.Float64()*2 - 1) * 0.08
	ty := (rng.Float64()*2 - 1) * 0.08
	cosT, sinT := math.Cos(theta), math.Sin(theta)
	base := classPalette[label]
	// Per-image color jitter keeps the palette from being a trivial
	// constant-pixel classifier.
	jitter := [3]float64{}
	for c := range jitter {
		jitter[c] = 1 + (rng.Float64()*2-1)*0.25
	}
	bg := 0.15 + rng.Float64()*0.25

	out := make([]byte, cifarPixels)
	for y := 0; y < CIFARRows; y++ {
		for x := 0; x < CIFARCols; x++ {
			// Inverse affine: sample the texture at the warped position.
			u := (float64(x)/float64(CIFARCols-1) - 0.5 - tx) / scale
			v := (float64(y)/float64(CIFARRows-1) - 0.5 - ty) / scale
			ru := cosT*u + sinT*v + 0.5
			rv := -sinT*u + cosT*v + 0.5
			ink := 0.0
			if ru >= 0 && ru <= 1 && rv >= 0 && rv <= 1 {
				ink = classShape(label, ru, rv)
			}
			for c := 0; c < CIFARChannels; c++ {
				val := bg + ink*(base[c]*jitter[c]-bg)
				val = val*255 + rng.NormFloat64()*8
				if val < 0 {
					val = 0
				}
				if val > 255 {
					val = 255
				}
				out[c*CIFARRows*CIFARCols+y*CIFARCols+x] = byte(math.Round(val))
			}
		}
	}
	return out
}
