package serve

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"cnnhe/internal/ckks"
	"cnnhe/internal/client"
	"cnnhe/internal/henn"
	"cnnhe/internal/henn/exec"
	"cnnhe/internal/nn"
	"cnnhe/internal/tensor"
)

// shardedFixture is a keyed server over a cross-shard dense model whose
// input (1200) exceeds the slot count (512), so every classify request
// carries three ciphertext frames.
type shardedFixture struct {
	keyed *Keyed
	srv   *httptest.Server
	cl    *client.Client
	sp    *henn.ShardedPlan
	ctx   *ckks.Context
}

func newShardedFixture(t testing.TB) *shardedFixture {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	m := &nn.Model{Layers: []nn.Layer{nn.NewDense(rng, 1200, 7)}}
	sp, err := henn.CompileShardedAuto(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	if sp.NumShards() != 3 {
		t.Fatalf("auto grid: %d shards, want 3", sp.NumShards())
	}
	p, err := ckks.NewParameters(10, []int{40, 30, 30}, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	if err := sp.CheckDepth(p.MaxLevel()); err != nil {
		t.Fatal(err)
	}
	ctx, err := ckks.NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	k, err := NewKeyed(KeyedConfig{
		Ctx:     ctx,
		Sharded: sp,
		Model:   "shardeddense",
		Backend: "ckks-rns",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(k.Close)
	srv := httptest.NewServer(k.Handler())
	t.Cleanup(srv.Close)
	return &shardedFixture{keyed: k, srv: srv, cl: client.New(srv.URL), sp: sp, ctx: ctx}
}

func (f *shardedFixture) clientKeys(t testing.TB, seed int64) (*client.KeySet, *client.InfoResponse) {
	t.Helper()
	info, err := f.cl.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ks, err := client.GenerateKeys(info, client.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.cl.Register(context.Background(), ks); err != nil {
		t.Fatal(err)
	}
	return ks, info
}

// TestKeyedShardedInfoAdvertisesManifest pins the /v1/info extension: a
// sharded plan advertises its shard count and a decodable input manifest
// that splits images into exactly the server's expected frame set.
func TestKeyedShardedInfoAdvertisesManifest(t *testing.T) {
	f := newShardedFixture(t)
	info, err := f.cl.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Shards != 3 {
		t.Fatalf("info.Shards = %d, want 3", info.Shards)
	}
	man, err := info.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	if man.NumShards() != 3 || man.Slots != f.ctx.Params.Slots() {
		t.Fatalf("manifest %v", man)
	}
	if man.Shape != f.sp.Input.Shape || man.Grid != f.sp.Input.Grid {
		t.Fatalf("manifest %v != plan input %v", man, f.sp.Input)
	}
	if info.InputDim != f.sp.InputDim || info.OutputDim != f.sp.OutputDim {
		t.Fatalf("dims %d/%d", info.InputDim, info.OutputDim)
	}
	if len(info.Rotations) == 0 {
		t.Fatal("no rotations advertised — cross-shard blocks need them")
	}
}

// TestKeyedShardedRoundTrip is the sharded protocol end to end: the
// client splits the image by the advertised manifest, ships one
// ciphertext frame per shard, and the decrypted logits are bit-identical
// to the same sharded plan evaluated locally under the same keys and
// encryption randomness.
func TestKeyedShardedRoundTrip(t *testing.T) {
	f := newShardedFixture(t)
	ks, info := f.clientKeys(t, 98)
	man, err := info.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	img := testImage(rand.New(rand.NewSource(13)), f.sp.InputDim)
	const encSeed = 881

	got, err := f.cl.ClassifyEncrypted(context.Background(), ks, img, f.sp.OutputDim,
		client.WithEncryptionSeed(encSeed), client.WithShardManifest(man))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Logits) != f.sp.OutputDim {
		t.Fatalf("got %d logits, want %d", len(got.Logits), f.sp.OutputDim)
	}

	// Reference: identical computation locally with the same key material
	// and encryption randomness.
	ref := henn.NewRNSEngineFromKeys(ks.Context(), ks.SK, ks.PK, ks.RLK, ks.RTK, encSeed)
	g, err := f.sp.Lower(ref)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := exec.Prepare(ref, g)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := f.sp.Input.Split(img)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep.Run(context.Background(), parts, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.DecryptVec(res.Out)[:f.sp.OutputDim]
	for i := range want {
		if got.Logits[i] != want[i] {
			t.Fatalf("logit %d: encrypted route %v, local reference %v", i, got.Logits[i], want[i])
		}
	}

	// Sanity beyond bit-identity: the encrypted logits track the
	// plaintext matrix product.
	plain := nnForwardDense(t, img)
	for i := range want {
		if math.Abs(got.Logits[i]-plain[i]) > 1e-3 {
			t.Fatalf("logit %d: encrypted %v vs plaintext %v", i, got.Logits[i], plain[i])
		}
	}
}

// nnForwardDense recomputes the fixture model's plaintext forward pass
// on normalized pixels, mirroring the encrypted pipeline's scaling.
func nnForwardDense(t testing.TB, img []float64) []float64 {
	t.Helper()
	rng := rand.New(rand.NewSource(41))
	m := &nn.Model{Layers: []nn.Layer{nn.NewDense(rng, 1200, 7)}}
	x := tensor.New(1, 1, len(img))
	for i := range img {
		x.Data[i] = img[i] / 255
	}
	return m.Forward(x).Data
}

// TestKeyedShardedRejectsWrongFrameCount pins the framing contract: a
// body with bytes past the expected frame set is a 400, not a silent
// truncation. (A whole extra frame trips the 413 size cap even earlier.)
func TestKeyedShardedRejectsWrongFrameCount(t *testing.T) {
	f := newShardedFixture(t)
	ks, info := f.clientKeys(t, 99)
	man, err := info.Manifest()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := ks.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	img := testImage(rand.New(rand.NewSource(17)), f.sp.InputDim)
	seed := int64(883)
	cts, err := ks.EncryptImageShards(man, img, &seed)
	if err != nil {
		t.Fatal(err)
	}
	var body bytes.Buffer
	for _, ct := range cts {
		if err := ks.Context().WriteCiphertext(&body, ct); err != nil {
			t.Fatal(err)
		}
	}
	body.Write([]byte("trailing junk after the last frame"))
	req, _ := http.NewRequest(http.MethodPost, f.srv.URL+client.PathClassifyEncrypted, &body)
	req.Header.Set(client.HeaderKeyFingerprint, fp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400 for trailing frames", resp.StatusCode)
	}
}
