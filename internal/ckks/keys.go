package ckks

import (
	"math/rand"

	"cnnhe/internal/ring"
)

// SecretKey is the CKKS secret key sk = (1, s) with s ← χ_key = HW(h).
type SecretKey struct {
	// S is s on all QP limbs, NTT domain.
	S *ring.Poly
	// Vec is the centered ternary coefficient vector of s.
	Vec []int64
}

// PublicKey is pk = (b, a) with b = −a·s + e, held on all QP limbs in the
// NTT domain (encryption only ever uses the Q limbs).
type PublicKey struct {
	B, A *ring.Poly
}

// SwitchingKey re-encrypts x·s' into a ciphertext under s: one (b_i, a_i)
// pair per RNS digit, on all QP limbs in the NTT domain, with
// b_i = −a_i·s + e_i + P·g_i·s' (g_i the CRT unit of limb i).
type SwitchingKey struct {
	B, A []*ring.Poly
}

// RelinearizationKey is the switching key for s².
type RelinearizationKey struct {
	SwitchingKey
}

// RotationKeySet holds switching keys per Galois element.
type RotationKeySet struct {
	Keys map[uint64]*SwitchingKey
}

// KeyGenerator produces all key material. Generation is deterministic for
// a given seed.
type KeyGenerator struct {
	ctx *Context
	rng *rand.Rand
}

// NewKeyGenerator returns a key generator over ctx seeded by seed.
func NewKeyGenerator(ctx *Context, seed int64) *KeyGenerator {
	return &KeyGenerator{ctx: ctx, rng: rand.New(rand.NewSource(seed))}
}

// GenSecretKey samples s ← HW(h).
func (kg *KeyGenerator) GenSecretKey() *SecretKey {
	r := kg.ctx.R
	limbs := r.Limbs(kg.ctx.Params.MaxLevel(), true)
	s := r.NewPoly(kg.ctx.Params.MaxLevel())
	vec := r.SamplePolyTernaryHW(kg.rng, limbs, kg.ctx.Params.H, s)
	r.NTT(limbs, s)
	return &SecretKey{S: s, Vec: vec}
}

// GenPublicKey derives pk = (−a·s + e, a).
func (kg *KeyGenerator) GenPublicKey(sk *SecretKey) *PublicKey {
	r := kg.ctx.R
	maxLevel := kg.ctx.Params.MaxLevel()
	limbs := r.Limbs(maxLevel, true)
	a := r.NewPoly(maxLevel)
	r.SampleUniform(kg.rng, limbs, a) // uniform in NTT domain is uniform
	e := r.NewPoly(maxLevel)
	r.SamplePolyGaussian(kg.rng, limbs, kg.ctx.Params.Sigma, e)
	r.NTT(limbs, e)
	b := r.NewPoly(maxLevel)
	r.MulCoeffs(limbs, a, sk.S, b)
	r.Neg(limbs, b, b)
	r.Add(limbs, b, e, b)
	return &PublicKey{B: b, A: a}
}

// genSwitchingKey builds the switching key whose message is P·g_i·target
// per digit, target given on all QP limbs in NTT domain.
func (kg *KeyGenerator) genSwitchingKey(sk *SecretKey, target *ring.Poly) *SwitchingKey {
	r := kg.ctx.R
	maxLevel := kg.ctx.Params.MaxLevel()
	limbs := r.Limbs(maxLevel, true)
	P := r.P()
	swk := &SwitchingKey{}
	for i := 0; i <= maxLevel; i++ {
		a := r.NewPoly(maxLevel)
		r.SampleUniform(kg.rng, limbs, a)
		e := r.NewPoly(maxLevel)
		r.SamplePolyGaussian(kg.rng, limbs, kg.ctx.Params.Sigma, e)
		r.NTT(limbs, e)
		b := r.NewPoly(maxLevel)
		r.MulCoeffs(limbs, a, sk.S, b)
		r.Neg(limbs, b, b)
		r.Add(limbs, b, e, b)
		// Message on limb i only: (P mod q_i) · target.
		sr := r.SubRings[i]
		msg := make([]uint64, len(target.Coeffs[i]))
		sr.MulScalar(target.Coeffs[i], P, msg)
		sr.Add(b.Coeffs[i], msg, b.Coeffs[i])
		swk.B = append(swk.B, b)
		swk.A = append(swk.A, a)
	}
	return swk
}

// GenRelinearizationKey builds the switching key for s².
func (kg *KeyGenerator) GenRelinearizationKey(sk *SecretKey) *RelinearizationKey {
	r := kg.ctx.R
	maxLevel := kg.ctx.Params.MaxLevel()
	limbs := r.Limbs(maxLevel, true)
	s2 := r.NewPoly(maxLevel)
	r.MulCoeffs(limbs, sk.S, sk.S, s2)
	return &RelinearizationKey{SwitchingKey: *kg.genSwitchingKey(sk, s2)}
}

// GenRotationKeys builds switching keys for the given slot rotations
// (left rotations; negatives allowed) and, when conjugate is set, for
// complex conjugation.
func (kg *KeyGenerator) GenRotationKeys(sk *SecretKey, rotations []int, conjugate bool) *RotationKeySet {
	set := &RotationKeySet{Keys: map[uint64]*SwitchingKey{}}
	logN := kg.ctx.Params.LogN
	for _, rot := range rotations {
		galEl := ring.GaloisElementForRotation(logN, rot)
		if _, ok := set.Keys[galEl]; ok || rot == 0 {
			continue
		}
		set.Keys[galEl] = kg.genRotationKey(sk, galEl)
	}
	if conjugate {
		galEl := ring.GaloisElementConjugate(logN)
		set.Keys[galEl] = kg.genRotationKey(sk, galEl)
	}
	return set
}

// genRotationKey builds the switching key for φ_galEl(s) → s.
func (kg *KeyGenerator) genRotationKey(sk *SecretKey, galEl uint64) *SwitchingKey {
	r := kg.ctx.R
	maxLevel := kg.ctx.Params.MaxLevel()
	limbs := r.Limbs(maxLevel, true)
	// Apply the automorphism to the centered coefficient vector of s.
	n := r.N()
	vec := make([]int64, n)
	mask := uint64(2*n - 1)
	for i := 0; i < n; i++ {
		j := (uint64(i) * galEl) & mask
		if j < uint64(n) {
			vec[j] = sk.Vec[i]
		} else {
			vec[j-uint64(n)] = -sk.Vec[i]
		}
	}
	target := r.NewPoly(maxLevel)
	r.SetCoeffsInt64(limbs, vec, target)
	r.NTT(limbs, target)
	return kg.genSwitchingKey(sk, target)
}

// Merge adds all keys from other into set (later keys win on collision).
// A nil receiver or nil other is a no-op.
func (set *RotationKeySet) Merge(other *RotationKeySet) {
	if set == nil || other == nil {
		return
	}
	if set.Keys == nil {
		set.Keys = make(map[uint64]*SwitchingKey, len(other.Keys))
	}
	for g, k := range other.Keys {
		set.Keys[g] = k
	}
}
