package ring

import (
	"fmt"
	"math/big"
	"math/rand"
	"sync"
)

// Ring is the RNS ring R_q with q = ∏ q_i. Limbs 0..L are ciphertext
// primes; the trailing Special limbs are key-switching primes.
type Ring struct {
	NVal     int
	LogN     int
	SubRings []SubRing
	Special  int // number of trailing special limbs

	// Parallel enables the limb worker pool for limb-wise loops. Rings
	// inherit the process default (on when GOMAXPROCS > 1, overridable via
	// SetParallelDefault) at construction.
	Parallel bool

	// invQ[src][dst] = q_src^{-1} mod q_dst for src ≠ dst, used by the
	// exact RNS division in Rescale and ModDown.
	invQ [][]*big.Int

	// maxWidth is the widest limb's words-per-coefficient, sizing pooled
	// scratch slabs.
	maxWidth int

	// scratch recycles full-size coefficient slabs ([]uint64 of
	// N·maxWidth words) for DivideExactByLimb and friends.
	scratch sync.Pool

	// polyPool recycles max-shape polynomials (every limb allocated) for
	// hot-path scratch in the evaluator and key-switch.
	polyPool sync.Pool
}

// NewRing builds an RNS ring of degree n over the given prime moduli
// (ciphertext primes followed by `special` key-switching primes). The
// primitive-root searches are seeded from seed, making ring construction
// deterministic.
func NewRing(n int, moduli []*big.Int, special int, seed int64) (*Ring, error) {
	if len(moduli) == 0 {
		return nil, fmt.Errorf("ring: no moduli")
	}
	if special < 0 || special >= len(moduli) {
		return nil, fmt.Errorf("ring: invalid special count %d of %d moduli", special, len(moduli))
	}
	rng := rand.New(rand.NewSource(seed))
	r := &Ring{NVal: n, LogN: log2(n), Special: special, Parallel: ParallelDefault()}
	for _, q := range moduli {
		sr := NewSubRing(n, q, rng)
		r.SubRings = append(r.SubRings, sr)
		if w := sr.Width(); w > r.maxWidth {
			r.maxWidth = w
		}
	}
	r.scratch.New = func() any {
		s := make([]uint64, n*r.maxWidth)
		return &s
	}
	k := len(moduli)
	r.invQ = make([][]*big.Int, k)
	for s := 0; s < k; s++ {
		r.invQ[s] = make([]*big.Int, k)
		for d := 0; d < k; d++ {
			if s == d {
				continue
			}
			inv := new(big.Int).ModInverse(moduli[s], moduli[d])
			if inv == nil {
				return nil, fmt.Errorf("ring: moduli %d and %d are not co-prime", s, d)
			}
			r.invQ[s][d] = inv
		}
	}
	return r, nil
}

// N returns the ring degree.
func (r *Ring) N() int { return r.NVal }

// MaxLevel returns the highest ciphertext level (limb count − special − 1).
func (r *Ring) MaxLevel() int { return len(r.SubRings) - r.Special - 1 }

// Q returns the product of ciphertext primes up to the given level.
func (r *Ring) Q(level int) *big.Int {
	q := big.NewInt(1)
	for i := 0; i <= level; i++ {
		q.Mul(q, r.SubRings[i].Modulus())
	}
	return q
}

// P returns the product of the special primes (1 when none).
func (r *Ring) P() *big.Int {
	p := big.NewInt(1)
	for i := len(r.SubRings) - r.Special; i < len(r.SubRings); i++ {
		p.Mul(p, r.SubRings[i].Modulus())
	}
	return p
}

// Poly is an RNS polynomial: one coefficient vector per limb. Unused limbs
// (above the owner's level) may be nil.
type Poly struct {
	Coeffs [][]uint64
}

// NewPoly allocates a polynomial with limbs 0..level plus all special limbs.
func (r *Ring) NewPoly(level int) *Poly {
	p := &Poly{Coeffs: make([][]uint64, len(r.SubRings))}
	for _, i := range r.Limbs(level, true) {
		p.Coeffs[i] = make([]uint64, r.NVal*r.SubRings[i].Width())
	}
	return p
}

// NewPolyQ allocates a polynomial with ciphertext limbs only (no special).
func (r *Ring) NewPolyQ(level int) *Poly {
	p := &Poly{Coeffs: make([][]uint64, len(r.SubRings))}
	for i := 0; i <= level; i++ {
		p.Coeffs[i] = make([]uint64, r.NVal*r.SubRings[i].Width())
	}
	return p
}

// Limbs returns the limb indices for the given level, optionally including
// the special limbs.
func (r *Ring) Limbs(level int, special bool) []int {
	n := level + 1
	if special {
		n += r.Special
	}
	out := make([]int, 0, n)
	for i := 0; i <= level; i++ {
		out = append(out, i)
	}
	if special {
		for i := len(r.SubRings) - r.Special; i < len(r.SubRings); i++ {
			out = append(out, i)
		}
	}
	return out
}

// forLimbs runs f(limb) for every limb index, across the shared worker
// pool when the ring is parallel.
func (r *Ring) forLimbs(limbs []int, f func(i int)) {
	if !r.Parallel || len(limbs) == 1 {
		for _, i := range limbs {
			f(i)
		}
		return
	}
	pool().Run(len(limbs), func(k int) { f(limbs[k]) })
}

// forLimbSlabs runs f(limb, c0, c1) over coefficient sub-ranges [c0, c1) of
// every limb, splitting each limb into cache-sized slabs when parallel so a
// single large limb (logN ≥ 13) also spreads across workers. f must be
// element-wise: task (i, c0, c1) may only read/write coefficients c0..c1 of
// limb i. Serial fallback invokes f once per limb with the full range.
func (r *Ring) forLimbSlabs(limbs []int, f func(i, c0, c1 int)) {
	if !r.Parallel {
		for _, i := range limbs {
			f(i, 0, r.NVal)
		}
		return
	}
	// Uniform chunk count per limb keeps task→(limb, range) mapping
	// allocation-free: every limb has N coefficients regardless of width.
	chunks := (r.NVal*r.maxWidth + minSlabWords - 1) / minSlabWords
	if w := poolWorkers(); chunks > w {
		chunks = w
	}
	if chunks < 1 {
		chunks = 1
	}
	if chunks == 1 && len(limbs) == 1 {
		f(limbs[0], 0, r.NVal)
		return
	}
	per := (r.NVal + chunks - 1) / chunks
	pool().Run(len(limbs)*chunks, func(t int) {
		i := limbs[t/chunks]
		c0 := (t % chunks) * per
		c1 := c0 + per
		if c1 > r.NVal {
			c1 = r.NVal
		}
		if c0 < c1 {
			f(i, c0, c1)
		}
	})
}

// slab checks out a pooled full-size coefficient slab (N·maxWidth words).
// Contents are unspecified; return it with putSlab.
func (r *Ring) slab() *[]uint64 { return r.scratch.Get().(*[]uint64) }

func (r *Ring) putSlab(s *[]uint64) { r.scratch.Put(s) }

// GetPoly checks out a pooled polynomial with every limb allocated
// (ciphertext and special). Contents are UNSPECIFIED — callers that
// accumulate into it must Zero the limbs they use first. Return it with
// PutPoly when provably dead; never pool a poly that escaped as a result.
func (r *Ring) GetPoly() *Poly {
	if p, ok := r.polyPool.Get().(*Poly); ok {
		return p
	}
	return r.NewPoly(r.MaxLevel())
}

// PutPoly returns a GetPoly-shaped polynomial to the pool. Polys with
// missing limbs (NewPolyQ or lower-level NewPoly shapes) are dropped rather
// than poisoning the pool.
func (r *Ring) PutPoly(p *Poly) {
	if p == nil {
		return
	}
	for i := range p.Coeffs {
		if p.Coeffs[i] == nil {
			return
		}
	}
	r.polyPool.Put(p)
}

// NTT transforms the given limbs of p in place.
func (r *Ring) NTT(limbs []int, p *Poly) {
	r.forLimbs(limbs, func(i int) { r.SubRings[i].NTT(p.Coeffs[i]) })
}

// INTT inverse-transforms the given limbs of p in place.
func (r *Ring) INTT(limbs []int, p *Poly) {
	r.forLimbs(limbs, func(i int) { r.SubRings[i].INTT(p.Coeffs[i]) })
}

// Add sets out = a + b on the given limbs.
func (r *Ring) Add(limbs []int, a, b, out *Poly) {
	r.forLimbSlabs(limbs, func(i, c0, c1 int) {
		sr := r.SubRings[i]
		w := sr.Width()
		sr.Add(a.Coeffs[i][c0*w:c1*w], b.Coeffs[i][c0*w:c1*w], out.Coeffs[i][c0*w:c1*w])
	})
}

// Sub sets out = a - b on the given limbs.
func (r *Ring) Sub(limbs []int, a, b, out *Poly) {
	r.forLimbSlabs(limbs, func(i, c0, c1 int) {
		sr := r.SubRings[i]
		w := sr.Width()
		sr.Sub(a.Coeffs[i][c0*w:c1*w], b.Coeffs[i][c0*w:c1*w], out.Coeffs[i][c0*w:c1*w])
	})
}

// Neg sets out = -a on the given limbs.
func (r *Ring) Neg(limbs []int, a, out *Poly) {
	r.forLimbSlabs(limbs, func(i, c0, c1 int) {
		sr := r.SubRings[i]
		w := sr.Width()
		sr.Neg(a.Coeffs[i][c0*w:c1*w], out.Coeffs[i][c0*w:c1*w])
	})
}

// MulCoeffs sets out = a ⊙ b on the given limbs (NTT-domain product).
func (r *Ring) MulCoeffs(limbs []int, a, b, out *Poly) {
	r.forLimbSlabs(limbs, func(i, c0, c1 int) {
		sr := r.SubRings[i]
		w := sr.Width()
		sr.MulCoeffs(a.Coeffs[i][c0*w:c1*w], b.Coeffs[i][c0*w:c1*w], out.Coeffs[i][c0*w:c1*w])
	})
}

// MulCoeffsThenAdd sets out += a ⊙ b on the given limbs.
func (r *Ring) MulCoeffsThenAdd(limbs []int, a, b, out *Poly) {
	r.forLimbSlabs(limbs, func(i, c0, c1 int) {
		sr := r.SubRings[i]
		w := sr.Width()
		sr.MulCoeffsThenAdd(a.Coeffs[i][c0*w:c1*w], b.Coeffs[i][c0*w:c1*w], out.Coeffs[i][c0*w:c1*w])
	})
}

// MulScalar sets out = a · s on the given limbs.
func (r *Ring) MulScalar(limbs []int, a *Poly, s *big.Int, out *Poly) {
	r.forLimbSlabs(limbs, func(i, c0, c1 int) {
		sr := r.SubRings[i]
		w := sr.Width()
		sr.MulScalar(a.Coeffs[i][c0*w:c1*w], s, out.Coeffs[i][c0*w:c1*w])
	})
}

// Automorphism applies X → X^galEl on the given limbs (coefficient domain).
func (r *Ring) Automorphism(limbs []int, a *Poly, galEl uint64, out *Poly) {
	r.forLimbs(limbs, func(i int) { r.SubRings[i].Automorphism(a.Coeffs[i], galEl, out.Coeffs[i]) })
}

// Copy copies the given limbs of src into dst.
func (r *Ring) Copy(limbs []int, src, dst *Poly) {
	for _, i := range limbs {
		copy(dst.Coeffs[i], src.Coeffs[i])
	}
}

// Zero clears the given limbs of p.
func (r *Ring) Zero(limbs []int, p *Poly) {
	for _, i := range limbs {
		for j := range p.Coeffs[i] {
			p.Coeffs[i][j] = 0
		}
	}
}

// Equal reports whether a and b agree on the given limbs.
func (r *Ring) Equal(limbs []int, a, b *Poly) bool {
	for _, i := range limbs {
		ac, bc := a.Coeffs[i], b.Coeffs[i]
		for j := range ac {
			if ac[j] != bc[j] {
				return false
			}
		}
	}
	return true
}

// DivideExactByLimb performs the exact RNS division of p (given on limbs
// `limbs` plus the source limb src) by q_src, writing the rounded quotient
// to out on `limbs`: out_i = (p_i − p_src) · q_src^{-1} mod q_i. This is
// the core of both Rescale (src = top ciphertext limb) and ModDown
// (src = special limb). p and out may alias.
func (r *Ring) DivideExactByLimb(src int, limbs []int, p, out *Poly) {
	qsrc := r.SubRings[src]
	sw := qsrc.Width()
	srcCoeffs := p.Coeffs[src]
	r.forLimbSlabs(limbs, func(i, c0, c1 int) {
		if i == src {
			return
		}
		sr := r.SubRings[i]
		w := sr.Width()
		buf := r.slab()
		tmp := (*buf)[:(c1-c0)*w]
		sr.ReduceFrom(qsrc, srcCoeffs[c0*sw:c1*sw], tmp)
		sr.Sub(p.Coeffs[i][c0*w:c1*w], tmp, tmp)
		sr.MulScalar(tmp, r.invQ[src][i], out.Coeffs[i][c0*w:c1*w])
		r.putSlab(buf)
	})
}

// ExtendLimb lifts the src-limb coefficients of p onto the given target
// limbs of out by plain modular reduction (the digit-raise step of RNS
// key-switch decomposition).
func (r *Ring) ExtendLimb(src int, limbs []int, p, out *Poly) {
	qsrc := r.SubRings[src]
	sw := qsrc.Width()
	srcCoeffs := p.Coeffs[src]
	r.forLimbSlabs(limbs, func(i, c0, c1 int) {
		sr := r.SubRings[i]
		w := sr.Width()
		sr.ReduceFrom(qsrc, srcCoeffs[c0*sw:c1*sw], out.Coeffs[i][c0*w:c1*w])
	})
}

// SetCoeffsInt64 writes the centered integer coefficients vec into the given
// limbs of p (coefficient domain).
func (r *Ring) SetCoeffsInt64(limbs []int, vec []int64, p *Poly) {
	r.forLimbs(limbs, func(i int) {
		r.SubRings[i].SetCoeffsInt64(p.Coeffs[i], vec)
	})
}

// SetCoeffsBig writes (possibly negative) big.Int coefficients into the
// given limbs of p.
func (r *Ring) SetCoeffsBig(limbs []int, vec []*big.Int, p *Poly) {
	for _, i := range limbs {
		sr := r.SubRings[i]
		mod := sr.Modulus()
		t := new(big.Int)
		for j, v := range vec {
			t.Mod(v, mod)
			sr.SetCoeffBig(p.Coeffs[i], j, t)
		}
	}
}

// CoeffsBigCentered reconstructs the centered big.Int coefficients of p
// from limbs 0..level by CRT: the result lies in (−Q/2, Q/2].
func (r *Ring) CoeffsBigCentered(level int, p *Poly) []*big.Int {
	k := level + 1
	Q := r.Q(level)
	half := new(big.Int).Rsh(Q, 1)
	// Garner-style: x = Σ_i [x_i · (Q/q_i)^{-1}]_{q_i} · (Q/q_i) mod Q.
	type crtTerm struct {
		hat    *big.Int // Q/q_i
		hatInv *big.Int // (Q/q_i)^{-1} mod q_i
		mod    *big.Int
	}
	terms := make([]crtTerm, k)
	for i := 0; i < k; i++ {
		mod := r.SubRings[i].Modulus()
		hat := new(big.Int).Quo(Q, mod)
		hatInv := new(big.Int).ModInverse(hat, mod)
		terms[i] = crtTerm{hat: hat, hatInv: hatInv, mod: mod}
	}
	out := make([]*big.Int, r.NVal)
	c := new(big.Int)
	t := new(big.Int)
	for j := 0; j < r.NVal; j++ {
		acc := new(big.Int)
		for i := 0; i < k; i++ {
			r.SubRings[i].CoeffBig(p.Coeffs[i], j, c)
			t.Mul(c, terms[i].hatInv)
			t.Mod(t, terms[i].mod)
			t.Mul(t, terms[i].hat)
			acc.Add(acc, t)
		}
		acc.Mod(acc, Q)
		if acc.Cmp(half) > 0 {
			acc.Sub(acc, Q)
		}
		out[j] = acc
	}
	return out
}
