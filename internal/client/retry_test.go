package client

import (
	"context"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// retryFixture wires a client with a deterministic policy to a handler,
// recording every sleep the retrier requests instead of waiting.
func retryFixture(h http.HandlerFunc, attempts int) (*Client, *httptest.Server, *[]time.Duration) {
	ts := httptest.NewServer(h)
	sleeps := &[]time.Duration{}
	c := New(ts.URL)
	c.Retry = &RetryPolicy{
		MaxAttempts: attempts,
		Rand:        rand.New(rand.NewSource(7)),
		Sleep: func(ctx context.Context, d time.Duration) error {
			*sleeps = append(*sleeps, d)
			return nil
		},
	}
	return c, ts, sleeps
}

// TestRetryHonorsRetryAfter: 429s with a Retry-After larger than the
// computed backoff push the wait out to the server's hint; the call
// succeeds once the server recovers, within the attempt budget.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	c, ts, sleeps := retryFixture(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "2")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte("{}"))
	}, 4)
	defer ts.Close()
	if _, err := c.Info(context.Background()); err != nil {
		t.Fatalf("call should succeed after two 429s: %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d requests, want 3", hits.Load())
	}
	if len(*sleeps) != 2 {
		t.Fatalf("recorded %d sleeps, want 2", len(*sleeps))
	}
	for i, d := range *sleeps {
		if d < 2*time.Second {
			t.Errorf("sleep %d was %v, want ≥ the 2s Retry-After hint", i, d)
		}
	}
}

// TestRetryBudgetExhausted: a persistently overloaded server consumes
// exactly MaxAttempts requests, then the server's own error surfaces.
func TestRetryBudgetExhausted(t *testing.T) {
	var hits atomic.Int64
	c, ts, sleeps := retryFixture(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"queue full"}`, http.StatusServiceUnavailable)
	}, 3)
	defer ts.Close()
	_, err := c.Info(context.Background())
	if err == nil || !strings.Contains(err.Error(), "queue full") {
		t.Fatalf("want the server's final error, got %v", err)
	}
	if hits.Load() != 3 {
		t.Fatalf("server saw %d requests, want the full budget of 3", hits.Load())
	}
	if len(*sleeps) != 2 {
		t.Fatalf("recorded %d sleeps, want 2 (no sleep after the last attempt)", len(*sleeps))
	}
}

// TestRetryTransportErrors: connection-level failures are retried like
// overload statuses and reported once the budget runs out.
func TestRetryTransportErrors(t *testing.T) {
	c, ts, sleeps := retryFixture(func(w http.ResponseWriter, r *http.Request) {}, 3)
	ts.Close() // every attempt now fails at the dial
	_, err := c.Info(context.Background())
	if err == nil || !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("want exhaustion error, got %v", err)
	}
	if len(*sleeps) != 2 {
		t.Fatalf("recorded %d sleeps, want 2", len(*sleeps))
	}
}

// TestRetryNonRetryableStatus: client errors are terminal — no retries,
// no sleeps.
func TestRetryNonRetryableStatus(t *testing.T) {
	var hits atomic.Int64
	c, ts, sleeps := retryFixture(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"bad image"}`, http.StatusBadRequest)
	}, 4)
	defer ts.Close()
	if _, err := c.Info(context.Background()); err == nil {
		t.Fatal("400 must fail the call")
	}
	if hits.Load() != 1 || len(*sleeps) != 0 {
		t.Fatalf("400 retried: %d hits, %d sleeps", hits.Load(), len(*sleeps))
	}
}

// TestRetryNilPolicySingleAttempt: the zero-value client keeps the old
// one-shot behavior.
func TestRetryNilPolicySingleAttempt(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()
	c := &Client{BaseURL: ts.URL}
	if _, err := c.Info(context.Background()); err == nil {
		t.Fatal("single attempt must surface the 503")
	}
	if hits.Load() != 1 {
		t.Fatalf("nil policy made %d attempts, want 1", hits.Load())
	}
}

// TestBackoffShape pins the exponential-with-full-jitter curve: attempt
// n draws from [base·2ⁿ⁻¹/2, base·2ⁿ⁻¹], capped, floored by Retry-After.
func TestBackoffShape(t *testing.T) {
	p := &RetryPolicy{
		BaseBackoff: 100 * time.Millisecond,
		MaxBackoff:  5 * time.Second,
		Rand:        rand.New(rand.NewSource(7)),
	}
	for _, tc := range []struct {
		attempt  int
		min, max time.Duration
	}{
		{1, 50 * time.Millisecond, 100 * time.Millisecond},
		{2, 100 * time.Millisecond, 200 * time.Millisecond},
		{4, 400 * time.Millisecond, 800 * time.Millisecond},
		{10, 2500 * time.Millisecond, 5 * time.Second}, // capped
	} {
		for i := 0; i < 32; i++ {
			d := p.backoff(tc.attempt, 0)
			if d < tc.min || d > tc.max {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v]", tc.attempt, d, tc.min, tc.max)
			}
		}
	}
	if d := p.backoff(1, 3*time.Second); d != 3*time.Second {
		t.Fatalf("Retry-After floor: got %v, want 3s", d)
	}
}
