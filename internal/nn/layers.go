package nn

import (
	"fmt"
	"math"
	"math/rand"

	"cnnhe/internal/tensor"
)

// Conv2D is a strided, padded multi-channel convolution layer.
type Conv2D struct {
	InC, OutC, K, Stride, Pad int
	InH, InW                  int
	W, B                      *Param

	xs []*tensor.Tensor // cached inputs
}

// NewConv2D builds a convolution layer with Kaiming-initialized weights.
func NewConv2D(rng *rand.Rand, inC, outC, k, stride, pad, inH, inW int) *Conv2D {
	c := &Conv2D{
		InC: inC, OutC: outC, K: k, Stride: stride, Pad: pad, InH: inH, InW: inW,
		W: newParam("conv.w", outC*inC*k*k),
		B: newParam("conv.b", outC),
	}
	kaiming(rng, c.W.Data, inC*k*k)
	return c
}

// Name implements Layer.
func (c *Conv2D) Name() string { return "conv2d" }

// OutH returns the output height.
func (c *Conv2D) OutH() int { return tensor.ConvShape(c.InH, c.K, c.Stride, c.Pad) }

// OutW returns the output width.
func (c *Conv2D) OutW() int { return tensor.ConvShape(c.InW, c.K, c.Stride, c.Pad) }

// Forward implements Layer.
func (c *Conv2D) Forward(xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	if train {
		c.xs = xs
	}
	wt := tensor.FromSlice(c.W.Data, c.OutC, c.InC, c.K, c.K)
	out := make([]*tensor.Tensor, len(xs))
	for b, x := range xs {
		out[b] = tensor.Conv2D(x, wt, c.B.Data, c.Stride, c.Pad)
	}
	return out
}

// Backward implements Layer.
func (c *Conv2D) Backward(grads []*tensor.Tensor) []*tensor.Tensor {
	oh, ow := c.OutH(), c.OutW()
	dxs := make([]*tensor.Tensor, len(grads))
	for b, g := range grads {
		x := c.xs[b]
		dx := tensor.New(c.InC, c.InH, c.InW)
		for o := 0; o < c.OutC; o++ {
			for oi := 0; oi < oh; oi++ {
				for oj := 0; oj < ow; oj++ {
					gv := g.At3(o, oi, oj)
					if gv == 0 {
						continue
					}
					c.B.Grad[o] += gv
					for ci := 0; ci < c.InC; ci++ {
						for ki := 0; ki < c.K; ki++ {
							ii := oi*c.Stride + ki - c.Pad
							if ii < 0 || ii >= c.InH {
								continue
							}
							for kj := 0; kj < c.K; kj++ {
								jj := oj*c.Stride + kj - c.Pad
								if jj < 0 || jj >= c.InW {
									continue
								}
								wIdx := ((o*c.InC+ci)*c.K+ki)*c.K + kj
								c.W.Grad[wIdx] += gv * x.At3(ci, ii, jj)
								dx.Set3(ci, ii, jj, dx.At3(ci, ii, jj)+gv*c.W.Data[wIdx])
							}
						}
					}
				}
			}
		}
		dxs[b] = dx
	}
	return dxs
}

// Params implements Layer.
func (c *Conv2D) Params() []*Param { return []*Param{c.W, c.B} }

// Dense is a fully connected layer y = W·x + b on flat inputs.
type Dense struct {
	In, Out int
	W, B    *Param

	xs []*tensor.Tensor
}

// NewDense builds a dense layer with Kaiming initialization.
func NewDense(rng *rand.Rand, in, out int) *Dense {
	d := &Dense{In: in, Out: out, W: newParam("dense.w", out*in), B: newParam("dense.b", out)}
	kaiming(rng, d.W.Data, in)
	return d
}

// Name implements Layer.
func (d *Dense) Name() string { return "dense" }

// Forward implements Layer.
func (d *Dense) Forward(xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	if train {
		d.xs = xs
	}
	out := make([]*tensor.Tensor, len(xs))
	for b, x := range xs {
		if x.Len() != d.In {
			panic(fmt.Sprintf("nn: dense expects %d inputs, got %d", d.In, x.Len()))
		}
		y := tensor.New(d.Out)
		for o := 0; o < d.Out; o++ {
			acc := d.B.Data[o]
			row := d.W.Data[o*d.In : (o+1)*d.In]
			for j, w := range row {
				acc += w * x.Data[j]
			}
			y.Data[o] = acc
		}
		out[b] = y
	}
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grads []*tensor.Tensor) []*tensor.Tensor {
	dxs := make([]*tensor.Tensor, len(grads))
	for b, g := range grads {
		x := d.xs[b]
		dx := tensor.New(d.In)
		for o := 0; o < d.Out; o++ {
			gv := g.Data[o]
			if gv == 0 {
				continue
			}
			d.B.Grad[o] += gv
			row := d.W.Data[o*d.In : (o+1)*d.In]
			grow := d.W.Grad[o*d.In : (o+1)*d.In]
			for j := range row {
				grow[j] += gv * x.Data[j]
				dx.Data[j] += gv * row[j]
			}
		}
		dxs[b] = dx
	}
	return dxs
}

// Params implements Layer.
func (d *Dense) Params() []*Param { return []*Param{d.W, d.B} }

// Flatten reshapes [C, H, W] tensors to flat vectors.
type Flatten struct {
	shape []int
}

// NewFlatten returns a Flatten layer.
func NewFlatten() *Flatten { return &Flatten{} }

// Name implements Layer.
func (f *Flatten) Name() string { return "flatten" }

// Forward implements Layer.
func (f *Flatten) Forward(xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	if len(xs) > 0 {
		f.shape = append([]int(nil), xs[0].Shape...)
	}
	out := make([]*tensor.Tensor, len(xs))
	for b, x := range xs {
		out[b] = tensor.FromSlice(x.Data, x.Len())
	}
	return out
}

// Backward implements Layer.
func (f *Flatten) Backward(grads []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(grads))
	for b, g := range grads {
		out[b] = tensor.FromSlice(g.Data, f.shape...)
	}
	return out
}

// Params implements Layer.
func (f *Flatten) Params() []*Param { return nil }

// ReLU is the rectified linear activation (training-time only; the
// homomorphic pipeline replaces it with SLAF).
type ReLU struct {
	xs []*tensor.Tensor
}

// NewReLU returns a ReLU layer.
func NewReLU() *ReLU { return &ReLU{} }

// Name implements Layer.
func (r *ReLU) Name() string { return "relu" }

// Forward implements Layer.
func (r *ReLU) Forward(xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	if train {
		r.xs = xs
	}
	out := make([]*tensor.Tensor, len(xs))
	for b, x := range xs {
		y := x.Clone()
		for i, v := range y.Data {
			if v < 0 {
				y.Data[i] = 0
			}
		}
		out[b] = y
	}
	return out
}

// Backward implements Layer.
func (r *ReLU) Backward(grads []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(grads))
	for b, g := range grads {
		x := r.xs[b]
		dx := g.Clone()
		for i := range dx.Data {
			if x.Data[i] <= 0 {
				dx.Data[i] = 0
			}
		}
		out[b] = dx
	}
	return out
}

// Params implements Layer.
func (r *ReLU) Params() []*Param { return nil }

// SLAF is a self-learning polynomial activation
// f(x) = a_0 + a_1 x + … + a_n x^n with trainable coefficients (paper
// eq. (2)). Coefficients are grouped per unit: Units == C gives
// per-channel polynomials on [C, H, W] inputs; Units == 1 shares one
// polynomial across the layer.
type SLAF struct {
	Degree int
	Units  int
	Coeffs *Param

	xs []*tensor.Tensor
}

// NewSLAF builds an SLAF layer with all-zero coefficients (the paper's
// initialization); see FitReLU for the least-squares warm start used by
// the retrofit pipeline.
func NewSLAF(degree, units int) *SLAF {
	return &SLAF{Degree: degree, Units: units, Coeffs: newParam("slaf.coeffs", units*(degree+1))}
}

// FitReLU initializes every unit's coefficients to the least-squares
// degree-n fit of ReLU over [−r, r], a warm start that makes the short
// retrofit re-training converge quickly.
func (s *SLAF) FitReLU(r float64) {
	coeffs := PolyFitReLU(s.Degree, r)
	for u := 0; u < s.Units; u++ {
		copy(s.Coeffs.Data[u*(s.Degree+1):(u+1)*(s.Degree+1)], coeffs)
	}
}

// unitOf maps a flat element index to its coefficient group.
func (s *SLAF) unitOf(x *tensor.Tensor, i int) int {
	if s.Units == 1 {
		return 0
	}
	if len(x.Shape) == 3 {
		hw := x.Shape[1] * x.Shape[2]
		return i / hw
	}
	return i % s.Units
}

// Name implements Layer.
func (s *SLAF) Name() string { return "slaf" }

// Forward implements Layer.
func (s *SLAF) Forward(xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	if train {
		s.xs = xs
	}
	out := make([]*tensor.Tensor, len(xs))
	for b, x := range xs {
		y := tensor.New(x.Shape...)
		for i, v := range x.Data {
			u := s.unitOf(x, i)
			a := s.Coeffs.Data[u*(s.Degree+1) : (u+1)*(s.Degree+1)]
			// Horner evaluation.
			acc := a[s.Degree]
			for p := s.Degree - 1; p >= 0; p-- {
				acc = acc*v + a[p]
			}
			y.Data[i] = acc
		}
		out[b] = y
	}
	return out
}

// Backward implements Layer.
func (s *SLAF) Backward(grads []*tensor.Tensor) []*tensor.Tensor {
	out := make([]*tensor.Tensor, len(grads))
	for b, g := range grads {
		x := s.xs[b]
		dx := tensor.New(x.Shape...)
		for i, v := range x.Data {
			u := s.unitOf(x, i)
			base := u * (s.Degree + 1)
			a := s.Coeffs.Data[base : base+s.Degree+1]
			gv := g.Data[i]
			// ∂y/∂a_p = x^p.
			xp := 1.0
			for p := 0; p <= s.Degree; p++ {
				s.Coeffs.Grad[base+p] += gv * xp
				xp *= v
			}
			// ∂y/∂x = Σ p·a_p·x^{p-1}.
			dydx := 0.0
			vp := 1.0
			for p := 1; p <= s.Degree; p++ {
				dydx += float64(p) * a[p] * vp
				vp *= v
			}
			dx.Data[i] = gv * dydx
		}
		out[b] = dx
	}
	return out
}

// Params implements Layer.
func (s *SLAF) Params() []*Param { return []*Param{s.Coeffs} }

// PolyFitReLU returns the degree-n least-squares fit of ReLU over a uniform
// grid on [−r, r], coefficients in ascending power order.
func PolyFitReLU(degree int, r float64) []float64 {
	const samples = 513
	xs := make([]float64, samples)
	ys := make([]float64, samples)
	for i := range xs {
		x := -r + 2*r*float64(i)/float64(samples-1)
		xs[i] = x
		if x > 0 {
			ys[i] = x
		}
	}
	return polyFit(xs, ys, degree)
}

// polyFit solves the normal equations for a least-squares polynomial fit.
func polyFit(xs, ys []float64, degree int) []float64 {
	n := degree + 1
	// Normal matrix A[i][j] = Σ x^{i+j}, rhs[i] = Σ y·x^i.
	a := make([][]float64, n)
	rhs := make([]float64, n)
	pow := make([]float64, 2*n-1)
	for _, x := range xs {
		xp := 1.0
		for p := 0; p < 2*n-1; p++ {
			pow[p] += xp
			xp *= x
		}
	}
	for i := 0; i < n; i++ {
		a[i] = make([]float64, n)
		for j := 0; j < n; j++ {
			a[i][j] = pow[i+j]
		}
	}
	for k, x := range xs {
		xp := 1.0
		for i := 0; i < n; i++ {
			rhs[i] += ys[k] * xp
			xp *= x
		}
	}
	return solveGauss(a, rhs)
}

// solveGauss solves a linear system by Gaussian elimination with partial
// pivoting.
func solveGauss(a [][]float64, b []float64) []float64 {
	n := len(b)
	for col := 0; col < n; col++ {
		// pivot
		p := col
		for r := col + 1; r < n; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[p][col]) {
				p = r
			}
		}
		a[col], a[p] = a[p], a[col]
		b[col], b[p] = b[p], b[col]
		piv := a[col][col]
		if piv == 0 {
			panic("nn: singular normal matrix in polyFit")
		}
		for r := col + 1; r < n; r++ {
			f := a[r][col] / piv
			for c := col; c < n; c++ {
				a[r][c] -= f * a[col][c]
			}
			b[r] -= f * b[col]
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		acc := b[r]
		for c := r + 1; c < n; c++ {
			acc -= a[r][c] * x[c]
		}
		x[r] = acc / a[r][r]
	}
	return x
}
