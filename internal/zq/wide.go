package zq

import (
	"math/big"
	"math/bits"
	"math/rand"
)

// MaxWideModulusBits is the largest supported bit size for a wide (two-word)
// modulus. The bound leaves headroom for the lazy reductions inside the wide
// NTT butterflies.
const MaxWideModulusBits = 122

// Wide is a 128-bit value stored as two little-endian words.
type Wide struct {
	Lo, Hi uint64
}

// WideFromBig converts a non-negative big.Int (< 2^128) to a Wide.
func WideFromBig(v *big.Int) Wide {
	var w Wide
	w.Lo = new(big.Int).And(v, mask64).Uint64()
	w.Hi = new(big.Int).Rsh(v, 64).Uint64()
	return w
}

// Big converts w to a big.Int.
func (w Wide) Big() *big.Int {
	v := new(big.Int).SetUint64(w.Hi)
	v.Lsh(v, 64)
	return v.Or(v, new(big.Int).SetUint64(w.Lo))
}

// IsZero reports whether w == 0.
func (w Wide) IsZero() bool { return w.Lo == 0 && w.Hi == 0 }

// Less reports whether w < v.
func (w Wide) Less(v Wide) bool {
	if w.Hi != v.Hi {
		return w.Hi < v.Hi
	}
	return w.Lo < v.Lo
}

var mask64 = new(big.Int).SetUint64(^uint64(0))

// WideModulus bundles a wide prime q (62–122 bits) with its Barrett and
// bookkeeping constants.
type WideModulus struct {
	Q    Wide      // the modulus
	MU   [4]uint64 // Barrett constant: floor(2^256 / q), little-endian words
	Bits int
	bigQ *big.Int
}

// NewWideModulus precomputes the reduction constants for q, given as a
// big.Int. It panics if q is out of the supported [2^61, 2^122] range.
func NewWideModulus(q *big.Int) WideModulus {
	bl := q.BitLen()
	if bl <= MaxWordModulusBits || bl > MaxWideModulusBits {
		panic("zq: wide modulus out of range")
	}
	mu := new(big.Int).Lsh(big.NewInt(1), 256)
	mu.Quo(mu, q)
	var m WideModulus
	m.Q = WideFromBig(q)
	m.Bits = bl
	m.bigQ = new(big.Int).Set(q)
	t := new(big.Int).Set(mu)
	for i := 0; i < 4; i++ {
		m.MU[i] = new(big.Int).And(t, mask64).Uint64()
		t.Rsh(t, 64)
	}
	return m
}

// Modulus returns q as a big.Int (a fresh copy).
func (m WideModulus) Modulus() *big.Int { return new(big.Int).Set(m.bigQ) }

// Add returns x + y mod q for x, y in [0, q).
func (m WideModulus) Add(x, y Wide) Wide {
	lo, c := bits.Add64(x.Lo, y.Lo, 0)
	hi, c2 := bits.Add64(x.Hi, y.Hi, c)
	s := Wide{lo, hi}
	if c2 == 1 || !s.Less(m.Q) {
		s = rawSub(s, m.Q)
	}
	return s
}

// Sub returns x - y mod q for x, y in [0, q).
func (m WideModulus) Sub(x, y Wide) Wide {
	lo, b := bits.Sub64(x.Lo, y.Lo, 0)
	hi, b2 := bits.Sub64(x.Hi, y.Hi, b)
	s := Wide{lo, hi}
	if b2 == 1 {
		s = rawAdd(s, m.Q)
	}
	return s
}

// Neg returns -x mod q for x in [0, q).
func (m WideModulus) Neg(x Wide) Wide {
	if x.IsZero() {
		return x
	}
	return rawSub(m.Q, x)
}

func rawAdd(x, y Wide) Wide {
	lo, c := bits.Add64(x.Lo, y.Lo, 0)
	hi, _ := bits.Add64(x.Hi, y.Hi, c)
	return Wide{lo, hi}
}

func rawSub(x, y Wide) Wide {
	lo, b := bits.Sub64(x.Lo, y.Lo, 0)
	hi, _ := bits.Sub64(x.Hi, y.Hi, b)
	return Wide{lo, hi}
}

// mul256 returns the full 256-bit product of two 128-bit values as four
// little-endian words.
func mul256(x, y Wide) [4]uint64 {
	var p [4]uint64
	h0, l0 := bits.Mul64(x.Lo, y.Lo)
	h1, l1 := bits.Mul64(x.Lo, y.Hi)
	h2, l2 := bits.Mul64(x.Hi, y.Lo)
	h3, l3 := bits.Mul64(x.Hi, y.Hi)
	p[0] = l0
	// column 1: h0 + l1 + l2
	s1, c1 := bits.Add64(h0, l1, 0)
	s1, c1b := bits.Add64(s1, l2, 0)
	p[1] = s1
	carry1 := c1 + c1b
	// column 2: h1 + h2 + l3 + carry1
	s2, d1 := bits.Add64(h1, h2, 0)
	s2, d2 := bits.Add64(s2, l3, 0)
	s2, d3 := bits.Add64(s2, carry1, 0)
	p[2] = s2
	carry2 := d1 + d2 + d3
	// column 3: h3 + carry2
	p[3] = h3 + carry2
	return p
}

// Mul returns x · y mod q for x, y in [0, q), using 256-bit Barrett
// reduction.
func (m WideModulus) Mul(x, y Wide) Wide {
	p := mul256(x, y)
	return m.Reduce256(p)
}

// Reduce256 reduces a 256-bit value a (< q·2^128) modulo q.
func (m WideModulus) Reduce256(a [4]uint64) Wide {
	// qhat = floor(a·MU / 2^256): we need words 4 and 5 of the 8-word
	// product a·MU. Compute the full product columns 3..5 (column 3 only
	// for its carry into column 4).
	var prod [8]uint64
	for i := 0; i < 4; i++ {
		if a[i] == 0 {
			continue
		}
		var carry uint64
		for j := 0; j < 4; j++ {
			hi, lo := bits.Mul64(a[i], m.MU[j])
			s, c1 := bits.Add64(prod[i+j], lo, 0)
			s, c2 := bits.Add64(s, carry, 0)
			prod[i+j] = s
			carry = hi + c1 + c2 // hi ≤ 2^64-2, so no overflow
		}
		k := i + 4
		for carry != 0 && k < 8 {
			var c uint64
			prod[k], c = bits.Add64(prod[k], carry, 0)
			carry = c
			k++
		}
	}
	qhat := Wide{prod[4], prod[5]}
	// r = a - qhat·q, computed modulo 2^128 (the true remainder fits).
	qq := mul256(qhat, m.Q)
	lo, b := bits.Sub64(a[0], qq[0], 0)
	hi, _ := bits.Sub64(a[1], qq[1], b)
	r := Wide{lo, hi}
	for !r.Less(m.Q) {
		r = rawSub(r, m.Q)
	}
	return r
}

// Reduce reduces an arbitrary 128-bit value modulo q.
func (m WideModulus) Reduce(x Wide) Wide {
	if x.Less(m.Q) {
		return x
	}
	return m.Reduce256([4]uint64{x.Lo, x.Hi, 0, 0})
}

// ReduceUint64 reduces a word-sized value modulo q (no-op for wide q > any
// word, kept for interface symmetry).
func (m WideModulus) ReduceUint64(x uint64) Wide {
	w := Wide{Lo: x}
	if w.Less(m.Q) {
		return w
	}
	return m.Reduce(w)
}

// Pow returns x^e mod q.
func (m WideModulus) Pow(x Wide, e uint64) Wide {
	r := Wide{Lo: 1}
	b := m.Reduce(x)
	for e > 0 {
		if e&1 == 1 {
			r = m.Mul(r, b)
		}
		b = m.Mul(b, b)
		e >>= 1
	}
	return r
}

// Inv returns x^{-1} mod q. q must be prime.
func (m WideModulus) Inv(x Wide) Wide {
	v := new(big.Int).ModInverse(x.Big(), m.bigQ)
	if v == nil {
		panic("zq: wide inverse does not exist")
	}
	return WideFromBig(v)
}

// PrimitiveNthRoot returns a primitive n-th root of unity mod q, n a power
// of two dividing q-1.
func (m WideModulus) PrimitiveNthRoot(n uint64, rng *rand.Rand) Wide {
	if n == 0 || n&(n-1) != 0 {
		panic("zq: n must be a power of two")
	}
	qm1 := new(big.Int).Sub(m.bigQ, big.NewInt(1))
	if new(big.Int).Mod(qm1, new(big.Int).SetUint64(n)).Sign() != 0 {
		panic("zq: n does not divide q-1")
	}
	exp := new(big.Int).Quo(qm1, new(big.Int).SetUint64(n))
	for {
		x := new(big.Int).Rand(rng, qm1)
		if x.Sign() == 0 {
			continue
		}
		w := new(big.Int).Exp(x, exp, m.bigQ)
		chk := new(big.Int).Exp(w, new(big.Int).SetUint64(n/2), m.bigQ)
		if chk.Cmp(qm1) == 0 {
			return WideFromBig(w)
		}
	}
}

// ShoupPrecomp returns floor(w·2^256 / q) >> 128 — i.e. floor(w·2^128/q) —
// for a fixed multiplicand w in [0, q), as a Wide.
func (m WideModulus) ShoupPrecomp(w Wide) Wide {
	v := w.Big()
	v.Lsh(v, 128)
	v.Quo(v, m.bigQ)
	return WideFromBig(v)
}

// ShoupMul returns x·w mod q for x in [0, 2^128), w in [0, q), with
// wShoup = ShoupPrecomp(w). The result is fully reduced.
func (m WideModulus) ShoupMul(x, w, wShoup Wide) Wide {
	r := m.ShoupMulLazy(x, w, wShoup)
	if !r.Less(m.Q) {
		r = rawSub(r, m.Q)
	}
	return r
}

// ShoupMulLazy returns x·w mod q in [0, 2q).
func (m WideModulus) ShoupMulLazy(x, w, wShoup Wide) Wide {
	p := mul256(x, wShoup)
	qhat := Wide{p[2], p[3]}
	xw := mul256(x, w)
	qq := mul256(qhat, m.Q)
	lo, b := bits.Sub64(xw[0], qq[0], 0)
	hi, _ := bits.Sub64(xw[1], qq[1], b)
	return Wide{lo, hi}
}
