package guard

import (
	"fmt"
	"math"

	"cnnhe/internal/henn"
)

// Adopt validates a ciphertext that did not originate from this guarded
// engine — typically one deserialized off the wire — and wraps it in the
// guard's tracked handle so it can enter guarded ops. The full structural
// and coefficient-range validation always runs (untrusted input), the
// scale mirror is initialized from the engine-reported scale, and the
// noise mirror from the fresh-encryption bound (the strongest assumption
// available for a ciphertext whose history the server cannot see).
//
// Unlike in-op validation, a rejected adoption does NOT latch the guard:
// one malformed client payload must not poison the engine for subsequent
// requests. The error is returned instead of panicking.
func (g *GuardedEngine) Adopt(ct henn.Ct) (out henn.Ct, err error) {
	const op = "Adopt"
	if _, ok := ct.(*trackedCt); ok {
		return ct, nil
	}
	if prior := g.Err(); prior != nil {
		return nil, prior
	}
	defer func() {
		if r := recover(); r != nil {
			se, ok := r.(*StageError)
			if !ok {
				panic(r)
			}
			// The failure was raised by this adoption (the guard was
			// healthy on entry); clear the latch it set.
			g.mu.Lock()
			if g.err == error(se) {
				g.err = nil
			}
			g.mu.Unlock()
			out, err = nil, se
		}
	}()
	g.validate(op, ct, true)
	scale := g.scaleOf(op, ct)
	if lvl := g.inner.Level(ct); lvl < 0 || lvl > g.inner.MaxLevel() {
		return nil, &StageError{Op: op, Cause: fmt.Errorf("%w: level %d outside [0, %d]",
			ErrCorruptCiphertext, lvl, g.inner.MaxLevel())}
	}
	return &trackedCt{ct: ct, noise: g.model.Fresh(), scale: scale}, nil
}

// Underlying unwraps a guard-tracked ciphertext handle back to the
// engine's own ciphertext (for serialization); a handle the guard does
// not recognize is returned unchanged.
func Underlying(ct henn.Ct) henn.Ct { return peek(ct) }

// NoiseBitsOf reports the tracked precision of a guarded handle, or NaN
// for untracked handles — a convenience for response metadata.
func (g *GuardedEngine) NoiseBitsOf(ct henn.Ct) float64 {
	if t, ok := ct.(*trackedCt); ok {
		return math.Log2(t.scale / t.noise)
	}
	return math.NaN()
}
