#!/usr/bin/env bash
# End-to-end exercise of the client-held-key protocol: build heserve and
# hectl, start the daemon on CNN1, run the full key ceremony and one
# encrypted classification, and check the encrypted route agrees with
# the plaintext route on the same image.
#
# -levels 7 pins the modulus chain to CNN1's exact depth so the rotation
# key bundle stays CI-sized; -logn 11 is the smallest ring whose slot
# count (1024) holds a 784-pixel MNIST image.
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR=${ADDR:-localhost:8377}
WORK=$(mktemp -d)
SERVE_PID=""
cleanup() {
    [ -n "$SERVE_PID" ] && kill "$SERVE_PID" 2>/dev/null || true
    [ -n "$SERVE_PID" ] && wait "$SERVE_PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT

go build -o "$WORK/heserve" ./cmd/heserve
go build -o "$WORK/hectl" ./cmd/hectl

if [ ! -f models/cnn1.gob ]; then
    echo "== training a small CNN1 model =="
    go run ./cmd/hetrain -model cnn1 -train 512 -test 128 -epochs 1 -retrofit 1 -q
fi

echo "== starting heserve on $ADDR =="
"$WORK/heserve" -model models/cnn1.gob -addr "$ADDR" \
    -logn 11 -levels 7 -batch 1 &
SERVE_PID=$!

for _ in $(seq 1 120); do
    curl -fsS "http://$ADDR/healthz" >/dev/null 2>&1 && break
    kill -0 "$SERVE_PID" 2>/dev/null || { echo "heserve exited during startup" >&2; exit 1; }
    sleep 1
done
curl -fsS "http://$ADDR/healthz" >/dev/null || { echo "heserve never became healthy" >&2; exit 1; }

echo "== server manifest =="
"$WORK/hectl" info -server "http://$ADDR"

echo "== client key ceremony =="
"$WORK/hectl" keygen -server "http://$ADDR" -keys "$WORK/keys" -seed 42
"$WORK/hectl" register -server "http://$ADDR" -keys "$WORK/keys"

echo "== encrypted classification (with plaintext-route comparison) =="
"$WORK/hectl" classify -server "http://$ADDR" -keys "$WORK/keys" -image 3 -compare-plain

echo "e2e-encrypted: OK"
