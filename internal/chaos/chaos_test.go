package chaos

import (
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"
	"time"
)

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("latency:ms=200:p=0.5, 5xx:status=502:start=2s:dur=1s:period=10s,reset,truncate:bytes=128")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("parsed %d rules, want 4", len(rules))
	}
	if rules[0].Kind != Latency || rules[0].Latency != 200*time.Millisecond || rules[0].P != 0.5 {
		t.Fatalf("latency rule: %+v", rules[0])
	}
	if rules[1].Kind != Err5xx || rules[1].Status != 502 || rules[1].Start != 2*time.Second ||
		rules[1].Dur != time.Second || rules[1].Period != 10*time.Second {
		t.Fatalf("5xx rule: %+v", rules[1])
	}
	if rules[2].Kind != Reset || rules[2].Bytes != 0 {
		t.Fatalf("reset rule: %+v", rules[2])
	}
	if rules[3].Kind != Truncate || rules[3].Bytes != 128 {
		t.Fatalf("truncate rule: %+v", rules[3])
	}
	if got, _ := ParseRules(""); got != nil {
		t.Fatalf("empty spec should parse to no rules, got %v", got)
	}
	for _, bad := range []string{
		"jitter",             // unknown kind
		"latency:ms",         // option without value
		"latency:warp=9",     // unknown option
		"reset:p=1.5",        // probability out of range
		"5xx:status=200",     // not a server error
		"latency:ms=abc",     // unparsable value
		"truncate:bytes=x:p", // malformed tail
	} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("spec %q: want parse error", bad)
		}
	}
}

func TestRuleSchedule(t *testing.T) {
	always := Rule{}
	if !always.active(0) || !always.active(time.Hour) {
		t.Fatal("zero schedule must always be active")
	}
	window := Rule{Start: 2 * time.Second, Dur: time.Second}
	for _, tc := range []struct {
		at   time.Duration
		want bool
	}{
		{0, false}, {2 * time.Second, true}, {2500 * time.Millisecond, true},
		{3 * time.Second, false}, {time.Hour, false},
	} {
		if got := window.active(tc.at); got != tc.want {
			t.Errorf("window at %v: active=%v, want %v", tc.at, got, tc.want)
		}
	}
	burst := Rule{Start: 2 * time.Second, Dur: time.Second, Period: 10 * time.Second}
	for _, tc := range []struct {
		at   time.Duration
		want bool
	}{
		{2500 * time.Millisecond, true}, {5 * time.Second, false},
		{12500 * time.Millisecond, true}, {15 * time.Second, false},
		{22 * time.Second, true},
	} {
		if got := burst.active(tc.at); got != tc.want {
			t.Errorf("burst at %v: active=%v, want %v", tc.at, got, tc.want)
		}
	}
}

// TestSeedDeterminism: two injectors with the same seed and rule set make
// identical probabilistic decisions in the same event order.
func TestSeedDeterminism(t *testing.T) {
	rules := []Rule{{Kind: Reset, P: 0.5}}
	a, b := New(42, rules), New(42, rules)
	for i := 0; i < 64; i++ {
		_, hitA := a.pick(Reset)
		_, hitB := b.pick(Reset)
		if hitA != hitB {
			t.Fatalf("event %d: seeds diverged (%v vs %v)", i, hitA, hitB)
		}
	}
	if a.Fired()["reset"] == 0 || a.Fired()["reset"] == 64 {
		t.Fatalf("p=0.5 over 64 events fired %d times — not probabilistic", a.Fired()["reset"])
	}
}

func TestTransportReset(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("reset fault must not forward the request")
	}))
	defer ts.Close()
	inj := New(1, []Rule{{Kind: Reset}})
	client := &http.Client{Transport: inj.Transport(nil)}
	_, err := client.Get(ts.URL)
	if err == nil || !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("want ECONNRESET, got %v", err)
	}
	if inj.Fired()["reset"] != 1 {
		t.Fatalf("fired counts: %v", inj.Fired())
	}
}

func TestTransport5xx(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("5xx fault must not forward the request")
	}))
	defer ts.Close()
	inj := New(1, []Rule{{Kind: Err5xx, Status: 503}})
	client := &http.Client{Transport: inj.Transport(nil)}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("want synthetic 503, got %d", resp.StatusCode)
	}
	if body, _ := io.ReadAll(resp.Body); !strings.Contains(string(body), "injected") {
		t.Fatalf("synthetic body: %q", body)
	}
}

func TestTransportTruncate(t *testing.T) {
	const payload = "a perfectly healthy response body"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, payload)
	}))
	defer ts.Close()
	inj := New(1, []Rule{{Kind: Truncate, Bytes: 8}})
	client := &http.Client{Transport: inj.Transport(nil)}
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("want ErrUnexpectedEOF reading a truncated body, got %v (body %q)", err, body)
	}
	if len(body) > 8 {
		t.Fatalf("read %d bytes past the 8-byte budget", len(body))
	}
}

func TestTransportLatency(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	defer ts.Close()
	inj := New(1, []Rule{{Kind: Latency, Latency: 60 * time.Millisecond}})
	client := &http.Client{Transport: inj.Transport(nil)}
	start := time.Now()
	resp, err := client.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("round trip took %v, want ≥ 60ms of injected latency", elapsed)
	}
}

// chaosServer serves payload over an injector-wrapped listener.
func chaosServer(t *testing.T, inj *Injector, payload string) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, payload)
	})}
	go func() { _ = srv.Serve(inj.WrapListener(l)) }()
	t.Cleanup(func() { _ = srv.Close() })
	return "http://" + l.Addr().String()
}

func TestListenerReset(t *testing.T) {
	inj := New(1, []Rule{{Kind: Reset}})
	url := chaosServer(t, inj, "unreachable")
	resp, err := http.Get(url)
	if err == nil {
		resp.Body.Close()
		t.Fatal("want a transport error from a reset connection")
	}
	if inj.Fired()["reset"] != 1 {
		t.Fatalf("fired counts: %v", inj.Fired())
	}
}

func TestListenerTruncate(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	inj := New(1, []Rule{{Kind: Truncate, Bytes: 256}})
	url := chaosServer(t, inj, payload)
	resp, err := http.Get(url)
	if err != nil {
		// The cut can land inside the response header, failing the
		// round trip itself — also a legitimate truncation outcome.
		return
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); err == nil {
		t.Fatal("full body readable despite a 256-byte connection budget")
	}
}

func TestListenerLatency(t *testing.T) {
	inj := New(1, []Rule{{Kind: Latency, Latency: 60 * time.Millisecond}})
	url := chaosServer(t, inj, "ok")
	start := time.Now()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 60*time.Millisecond {
		t.Fatalf("request took %v, want ≥ 60ms first-read delay", elapsed)
	}
}

// TestListenerInertWithoutRules: an empty rule set passes traffic through
// untouched (the soak harness runs healthy phases this way).
func TestListenerInertWithoutRules(t *testing.T) {
	inj := New(1, nil)
	url := chaosServer(t, inj, "healthy")
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || string(body) != "healthy" {
		t.Fatalf("pass-through read: %q, %v", body, err)
	}
	if len(inj.Fired()) != 0 {
		t.Fatalf("inert injector fired: %v", inj.Fired())
	}
}
