package serve

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cnnhe/internal/ckks"
	"cnnhe/internal/client"
	"cnnhe/internal/henn"
	"cnnhe/internal/henn/exec"
)

// keyedFixture is a running keyed server over the tiny model plus the
// pieces tests need to talk to it.
type keyedFixture struct {
	keyed *Keyed
	srv   *httptest.Server
	cl    *client.Client
	plan  *henn.Plan
	ctx   *ckks.Context
}

func newKeyedFixture(t testing.TB) *keyedFixture {
	return newKeyedFixtureCfg(t, nil)
}

// newKeyedFixtureCfg lets a test adjust the server config (store bounds,
// durable dir) before startup.
func newKeyedFixtureCfg(t testing.TB, mutate func(*KeyedConfig)) *keyedFixture {
	t.Helper()
	m := tinyModel(61)
	plan, err := henn.Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ckks.NewParameters(10, []int{40, 30, 30, 30, 30}, 60, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.CheckDepth(p.MaxLevel()); err != nil {
		t.Fatal(err)
	}
	ctx, err := ckks.NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	cfg := KeyedConfig{
		Ctx:     ctx,
		Plan:    plan,
		Model:   "tiny",
		Backend: "ckks-rns",
	}
	if mutate != nil {
		mutate(&cfg)
	}
	k, err := NewKeyed(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(k.Close)
	srv := httptest.NewServer(k.Handler())
	t.Cleanup(srv.Close)
	return &keyedFixture{
		keyed: k,
		srv:   srv,
		cl:    client.New(srv.URL),
		plan:  plan,
		ctx:   ctx,
	}
}

// clientKeys runs the client-side key ceremony against the fixture's
// /v1/info: reconstruct params, generate a seeded key set, register it.
func (f *keyedFixture) clientKeys(t testing.TB, seed int64) *client.KeySet {
	t.Helper()
	info, err := f.cl.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	ks, err := client.GenerateKeys(info, client.WithSeed(seed))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.cl.Register(context.Background(), ks); err != nil {
		t.Fatal(err)
	}
	return ks
}

// TestKeyedEncryptedRoundTrip is the protocol's end-to-end core: keygen
// → register → encrypt → server-side eval under client keys → local
// decrypt, with logits bit-identical to the same keys evaluated through
// the full (secret-holding) engine locally.
func TestKeyedEncryptedRoundTrip(t *testing.T) {
	f := newKeyedFixture(t)
	ks := f.clientKeys(t, 91)
	img := testImage(rand.New(rand.NewSource(7)), f.plan.InputDim)
	const encSeed = 777

	got, err := f.cl.ClassifyEncrypted(context.Background(), ks, img, f.plan.OutputDim,
		client.WithEncryptionSeed(encSeed))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Logits) != f.plan.OutputDim {
		t.Fatalf("got %d logits, want %d", len(got.Logits), f.plan.OutputDim)
	}

	// Reference: the identical computation run locally with the same key
	// material and the same encryption randomness.
	ref := henn.NewRNSEngineFromKeys(ks.Context(), ks.SK, ks.PK, ks.RLK, ks.RTK, encSeed)
	g, err := f.plan.Lower(ref)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := exec.Prepare(ref, g)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep.Run(context.Background(), [][]float64{img}, exec.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := ref.DecryptVec(res.Out)[:f.plan.OutputDim]
	for i := range want {
		if got.Logits[i] != want[i] {
			t.Fatalf("logit %d: encrypted route %v, local reference %v", i, got.Logits[i], want[i])
		}
	}

	// A second round trip under the cached per-client engine must agree
	// too (exercises the Entry.Eval reuse path).
	again, err := f.cl.ClassifyEncrypted(context.Background(), ks, img, f.plan.OutputDim,
		client.WithEncryptionSeed(encSeed))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if again.Logits[i] != want[i] {
			t.Fatalf("cached-engine logit %d: %v, want %v", i, again.Logits[i], want[i])
		}
	}
}

func TestKeyedInfo(t *testing.T) {
	f := newKeyedFixture(t)
	info, err := f.cl.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Model != "tiny" || info.Backend != "ckks-rns" {
		t.Fatalf("model/backend = %q/%q", info.Model, info.Backend)
	}
	if info.InputDim != f.plan.InputDim || info.OutputDim != f.plan.OutputDim {
		t.Fatalf("dims %d/%d, want %d/%d", info.InputDim, info.OutputDim, f.plan.InputDim, f.plan.OutputDim)
	}
	if info.Slots != f.ctx.Params.Slots() || info.Levels != f.ctx.Params.MaxLevel() {
		t.Fatalf("slots/levels %d/%d", info.Slots, info.Levels)
	}
	want := f.plan.Rotations()
	if len(info.Rotations) != len(want) || len(want) == 0 {
		t.Fatalf("advertised %d rotations, plan needs %d", len(info.Rotations), len(want))
	}
	for i := range want {
		if info.Rotations[i] != want[i] {
			t.Fatalf("rotation %d: %d != %d", i, info.Rotations[i], want[i])
		}
	}
	if !info.EncryptedRoute {
		t.Fatal("encrypted route not advertised")
	}
	if info.Params.Fingerprint != f.ctx.Params.Fingerprint() {
		t.Fatal("params fingerprint mismatch")
	}
	// The manifest must be sufficient to rebuild the exact parameters.
	if _, err := client.ParamsFromInfo(info.Params); err != nil {
		t.Fatal(err)
	}
}

func TestKeyedUnknownFingerprint(t *testing.T) {
	f := newKeyedFixture(t)
	req, _ := http.NewRequest(http.MethodPost, f.srv.URL+client.PathClassifyEncrypted,
		strings.NewReader("x"))
	req.Header.Set(client.HeaderKeyFingerprint, "deadbeef")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
}

func TestKeyedRejectsIncompatibleBundle(t *testing.T) {
	f := newKeyedFixture(t)

	kg := ckks.NewKeyGenerator(f.ctx, 55)
	sk := kg.GenSecretKey()

	post := func(body []byte) int {
		resp, err := http.Post(f.srv.URL+client.PathKeys, client.ContentTypeCKKS,
			bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	// Wrong params digest → 409.
	digest := f.ctx.Params.ParamsDigest()
	digest[0] ^= 0xFF
	var buf bytes.Buffer
	if err := f.ctx.WriteKeyBundle(&buf, &ckks.KeyBundle{
		ParamsDigest: digest,
		PK:           kg.GenPublicKey(sk),
		RLK:          kg.GenRelinearizationKey(sk),
		RTK:          kg.GenRotationKeys(sk, f.plan.Rotations(), false),
	}); err != nil {
		t.Fatal(err)
	}
	if code := post(buf.Bytes()); code != http.StatusConflict {
		t.Fatalf("params mismatch: status %d, want 409", code)
	}

	// Rotation keys missing the plan's requirement → 409.
	buf.Reset()
	if err := f.ctx.WriteKeyBundle(&buf, &ckks.KeyBundle{
		ParamsDigest: f.ctx.Params.ParamsDigest(),
		PK:           kg.GenPublicKey(sk),
		RLK:          kg.GenRelinearizationKey(sk),
		RTK:          kg.GenRotationKeys(sk, f.plan.Rotations()[:1], false),
	}); err != nil {
		t.Fatal(err)
	}
	if code := post(buf.Bytes()); code != http.StatusConflict {
		t.Fatalf("missing rotations: status %d, want 409", code)
	}

	// Truncated frame → 400.
	if code := post(buf.Bytes()[:buf.Len()/2]); code != http.StatusBadRequest {
		t.Fatalf("truncated bundle: status %d, want 400", code)
	}
}

func TestKeyedOversizeBodies(t *testing.T) {
	f := newKeyedFixture(t)
	ks := f.clientKeys(t, 92)
	fp, err := ks.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}

	big := make([]byte, int(f.keyed.bundleLimit)+1)
	resp, err := http.Post(f.srv.URL+client.PathKeys, client.ContentTypeCKKS,
		bytes.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize bundle: status %d, want 413", resp.StatusCode)
	}

	big = make([]byte, int(f.keyed.ctLimit)+1)
	req, _ := http.NewRequest(http.MethodPost, f.srv.URL+client.PathClassifyEncrypted,
		bytes.NewReader(big))
	req.Header.Set(client.HeaderKeyFingerprint, fp)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversize ciphertext: status %d, want 413", resp.StatusCode)
	}
}

func TestKeyedRejectsGarbageCiphertext(t *testing.T) {
	f := newKeyedFixture(t)
	ks := f.clientKeys(t, 93)
	fp, err := ks.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	garbage := testImageBytes(94, 4096)
	req, _ := http.NewRequest(http.MethodPost, f.srv.URL+client.PathClassifyEncrypted,
		bytes.NewReader(garbage))
	req.Header.Set(client.HeaderKeyFingerprint, fp)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage ciphertext: status %d, want 400", resp.StatusCode)
	}
}

// TestKeyedClientSelfHealsEviction: when the server forgets a client's
// bundle (LRU eviction here; a restart without the durable store in
// production), the SDK re-registers the bundle it already holds and
// replays the classification — no error surfaces and no keygen reruns.
func TestKeyedClientSelfHealsEviction(t *testing.T) {
	f := newKeyedFixtureCfg(t, func(cfg *KeyedConfig) { cfg.MaxClients = 1 })
	ksA := f.clientKeys(t, 96)
	img := testImage(rand.New(rand.NewSource(11)), f.plan.InputDim)
	const encSeed = 779
	first, err := f.cl.ClassifyEncrypted(context.Background(), ksA, img, f.plan.OutputDim,
		client.WithEncryptionSeed(encSeed))
	if err != nil {
		t.Fatal(err)
	}

	// A second client's registration evicts A from the 1-entry store.
	f.clientKeys(t, 97)
	fpA, err := ksA.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.keyed.Store().Get(fpA); err == nil {
		t.Fatal("bundle A still resident — eviction fixture broken")
	}

	// The same call transparently re-registers and succeeds, with the
	// same logits (same keys, same encryption randomness).
	healed, err := f.cl.ClassifyEncrypted(context.Background(), ksA, img, f.plan.OutputDim,
		client.WithEncryptionSeed(encSeed))
	if err != nil {
		t.Fatalf("self-heal round trip: %v", err)
	}
	for i := range first.Logits {
		if healed.Logits[i] != first.Logits[i] {
			t.Fatalf("logit %d drifted across self-heal: %v != %v", i, healed.Logits[i], first.Logits[i])
		}
	}
	if _, err := f.keyed.Store().Get(fpA); err != nil {
		t.Fatalf("bundle A not re-registered: %v", err)
	}
}

// testImageBytes is deterministic junk for framing-rejection tests.
func testImageBytes(seed int64, n int) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// TestKeyedPathHoldsNoSecretKey pins the privacy invariant: the engine
// the encrypted route evaluates on is the eval-only type, whose secret
// operations are unreachable (they panic), and it is built exclusively
// from wire-registered key material.
func TestKeyedPathHoldsNoSecretKey(t *testing.T) {
	f := newKeyedFixture(t)
	ks := f.clientKeys(t, 95)
	img := testImage(rand.New(rand.NewSource(9)), f.plan.InputDim)
	if _, err := f.cl.ClassifyEncrypted(context.Background(), ks, img, f.plan.OutputDim); err != nil {
		t.Fatal(err)
	}
	fp, err := ks.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	entry, err := f.keyed.Store().Get(fp)
	if err != nil {
		t.Fatal(err)
	}
	entry.Mu.Lock()
	defer entry.Mu.Unlock()
	ev, ok := entry.Eval.(*keyedEval)
	if !ok {
		t.Fatalf("entry eval state is %T", entry.Eval)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("DecryptVec on the keyed path did not panic")
		}
	}()
	ev.g.DecryptVec(nil)
}

// TestClassifyBodyLimit413 pins the plaintext route's plan-sized body
// cap: an oversize JSON body gets a 413, not a generic decode error.
func TestClassifyBodyLimit413(t *testing.T) {
	f := newFixture(t, 2)
	s, err := New(Config{Batch: f.bp, Engine: f.eng})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Shutdown(context.Background()) }()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := make([]byte, int(s.classifyBodyLimit())+1)
	for i := range body {
		body[i] = ' '
	}
	body[0] = '{'
	resp, err := http.Post(ts.URL+"/classify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
}
