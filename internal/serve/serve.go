// Package serve turns concurrent single-image classification requests
// into packed batched encrypted evaluations.
//
// The paper's SIMD packing (Table I) amortizes one homomorphic
// evaluation over B images, but only if B images are actually packed
// together. An online service receives requests one at a time, so the
// server aggregates them: requests enter a bounded queue, a batcher
// drains the queue into micro-batches, and each batch runs through the
// shared prepared op graph (BatchPlan.InferBatchCtx) as a single
// ciphertext evaluation. A batch is flushed as soon as it is full
// (BatchPlan.Batch images) or the oldest member has waited Config.MaxWait
// — latency is bounded by MaxWait plus one batch evaluation, while
// throughput approaches B images per evaluation under load.
//
// Overload is handled by backpressure, not buffering: when the queue is
// full, Submit fails immediately (the HTTP layer maps this to
// 429 + Retry-After) instead of letting latency grow without bound.
// Shutdown stops intake, drains every queued request through final
// batches, and returns when the last response has been delivered.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cnnhe/internal/henn"
	"cnnhe/internal/telemetry"
)

// Submission failure classes, matched with errors.Is.
var (
	// ErrQueueFull: the adaptive admission limit (or the hard queue
	// bound behind it) is at capacity — the caller should back off and
	// retry after the hinted interval.
	ErrQueueFull = errors.New("serve: request queue full")
	// ErrShuttingDown: the server no longer accepts requests.
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrDeadlineUnmeetable: the live latency model says the request
	// cannot complete before its deadline, so it is shed at admission
	// instead of burning an evaluation whose result nobody will read.
	ErrDeadlineUnmeetable = errors.New("serve: deadline unmeetable at current load")
)

// Config assembles a Server.
type Config struct {
	// Batch is the compiled batched plan; its Batch field is the
	// micro-batch capacity.
	Batch *henn.BatchPlan
	// Engine evaluates batches. Wrap it with guard.New for classified
	// failures; a guard's latched error is cleared between batches via
	// its Reset method, so one failed batch does not poison the next.
	Engine henn.Engine
	// MaxWait bounds how long the oldest queued request waits for the
	// batch to fill before a partial batch is flushed. Default 10ms.
	MaxWait time.Duration
	// QueueSize is the hard ceiling on outstanding requests and the
	// upper bound of the adaptive admission limit. Default 4× the batch
	// capacity.
	QueueSize int
	// RequestTimeout caps each request's end-to-end time (queue wait +
	// evaluation) via its context. 0 disables the per-request deadline
	// (the client's own context still applies).
	RequestTimeout time.Duration
	// RetryAfter is the backoff hint returned with rejections before
	// any batch latency has been observed; once batches flow, the hint
	// is computed from live queue depth instead. Default 1s.
	RetryAfter time.Duration
	// TargetLatency is the batch-latency SLO driving adaptive
	// admission: batches slower than this halve the admitted
	// concurrency, faster ones grow it by one. Default RequestTimeout/2
	// when a request timeout is set, else 2s.
	TargetLatency time.Duration
}

// result is the fan-out payload delivered to one waiting request.
type result struct {
	logits    henn.Logits
	batchSize int
	eval      time.Duration
	top       []telemetry.OpTime // batch per-op-kind attribution (traced batches)
	err       error
}

// request is one queued classification.
type request struct {
	image []float64
	ctx   context.Context
	resp  chan result // buffered(1): the batcher never blocks on delivery
	enq   time.Time
	// tc is the request's trace context (zero for direct Submit callers
	// that never passed through HTTP); qwait is stamped by the batcher
	// when the request is packed into a batch.
	tc    telemetry.TraceContext
	qwait time.Duration
}

// resetter is implemented by guard.GuardedEngine: a tripped guard
// latches its first error, and the latch must be cleared at the batch
// boundary before the engine is reused.
type resetter interface{ Reset() error }

// runContextSetter is implemented by guard.GuardedEngine: binding the
// batch context lets a guard abort log the trace ID of the batch that
// tripped it.
type runContextSetter interface{ SetRunContext(context.Context) }

// Server is the micro-batching inference engine front end. Create with
// New, submit via Submit (or the HTTP Handler), stop with Shutdown.
type Server struct {
	cfg    Config
	queue  chan *request
	done   chan struct{} // closed when the batcher has drained and exited
	tel    *telSet
	adm    *admission
	flight *telemetry.FlightRecorder

	mu     sync.Mutex
	closed bool
}

// New validates cfg, applies defaults, pre-lowers the plan for the
// engine (so the first request does not pay graph encoding inside its
// deadline), and starts the batcher.
func New(cfg Config) (*Server, error) {
	s, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	go s.run()
	return s, nil
}

// newServer builds the Server without starting the batcher (tests use
// this to exercise queue behaviour deterministically).
func newServer(cfg Config) (*Server, error) {
	if cfg.Batch == nil || cfg.Batch.Plan == nil {
		return nil, fmt.Errorf("serve: nil batch plan")
	}
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: nil engine")
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 10 * time.Millisecond
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 4 * cfg.Batch.Batch
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = time.Second
	}
	if cfg.TargetLatency <= 0 {
		if cfg.RequestTimeout > 0 {
			cfg.TargetLatency = cfg.RequestTimeout / 2
		} else {
			cfg.TargetLatency = 2 * time.Second
		}
	}
	if err := cfg.Batch.Plan.Warm(cfg.Engine); err != nil {
		return nil, fmt.Errorf("serve: warming plan: %w", err)
	}
	return &Server{
		cfg:    cfg,
		queue:  make(chan *request, cfg.QueueSize),
		done:   make(chan struct{}),
		tel:    serveTel(),
		adm:    newAdmission(cfg.QueueSize, cfg.Batch.Batch, cfg.TargetLatency),
		flight: telemetry.Flight(),
	}, nil
}

// BatchCapacity returns the micro-batch size limit.
func (s *Server) BatchCapacity() int { return s.cfg.Batch.Batch }

// InputDim returns the expected image length.
func (s *Server) InputDim() int { return s.cfg.Batch.Plan.InputDim }

// BatchInfo describes the micro-batch that served a request.
type BatchInfo struct {
	// Size is how many requests shared the encrypted evaluation.
	Size int
	// Eval is the server-side homomorphic evaluation time of the whole
	// batch, amortized across Size requests.
	Eval time.Duration
}

// Submit enqueues one image for classification and blocks until its
// batch has been evaluated, ctx is done, or the queue rejects it. The
// image must have length InputDim; ctx governs the request end to end
// (queue wait and evaluation both count against it).
func (s *Server) Submit(ctx context.Context, image []float64) (henn.Logits, BatchInfo, error) {
	r, err := s.enqueue(ctx, image)
	if err != nil {
		return nil, BatchInfo{}, err
	}
	select {
	case res := <-r.resp:
		return res.logits, BatchInfo{Size: res.batchSize, Eval: res.eval}, res.err
	case <-ctx.Done():
		// The batcher may still evaluate the request; resp is buffered,
		// so the late result is dropped without blocking anyone.
		s.tel.request("timeout", time.Since(r.enq))
		return nil, BatchInfo{}, fmt.Errorf("serve: request abandoned: %w", ctx.Err())
	}
}

// enqueue validates, admits, and queues a request without waiting for a
// result. Admission happens before the queue: the AIMD limit and the
// deadline-feasibility check both reject here, so overload never costs
// a queue slot.
func (s *Server) enqueue(ctx context.Context, image []float64) (*request, error) {
	if len(image) != s.InputDim() {
		return nil, fmt.Errorf("%w: image length %d, plan input dim %d",
			henn.ErrBadInput, len(image), s.InputDim())
	}
	now := time.Now()
	tc, _ := telemetry.TraceContextFrom(ctx)
	deadline, hasDeadline := ctx.Deadline()
	if err := s.adm.admit(now, deadline, hasDeadline); err != nil {
		var outcome string
		switch {
		case errors.Is(err, ErrDeadlineUnmeetable):
			outcome = "shed"
		default:
			outcome = "rejected"
		}
		s.tel.request(outcome, 0)
		s.tel.admission(s.adm)
		s.flightReject(tc, outcome, err)
		return nil, err
	}
	r := &request{image: image, ctx: ctx, resp: make(chan result, 1), enq: now, tc: tc}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.adm.release()
		s.tel.request("shutdown", 0)
		s.flightReject(tc, "shutdown", ErrShuttingDown)
		return nil, ErrShuttingDown
	}
	select {
	case s.queue <- r:
		s.tel.enqueued()
		return r, nil
	default:
		// The admission limit never exceeds the channel capacity, so
		// this is a backstop, not a steady-state path.
		s.adm.release()
		s.tel.request("rejected", 0)
		s.flightReject(tc, "rejected", ErrQueueFull)
		return nil, ErrQueueFull
	}
}

// finish delivers one admitted request's terminal result and returns
// its admission slot. Every admitted request reaches exactly one finish
// call — that is the no-silent-drop invariant the soak suite asserts.
func (s *Server) finish(r *request, res result, outcome string) {
	r.resp <- res
	s.adm.release()
	total := time.Since(r.enq)
	s.tel.request(outcome, total)
	s.flightRecord(r, res, outcome, total)
}

// run is the batcher: it blocks for the first request, then fills the
// batch from the queue until it is full, MaxWait elapses, or intake is
// closed, and evaluates. On a closed queue it keeps forming batches from
// the buffered remainder — that is the drain — and exits when empty.
func (s *Server) run() {
	defer close(s.done)
	for {
		r, ok := <-s.queue
		if !ok {
			return
		}
		s.tel.dequeued()
		batch := append(make([]*request, 0, s.cfg.Batch.Batch), r)
		timer := time.NewTimer(s.cfg.MaxWait)
	fill:
		for len(batch) < s.cfg.Batch.Batch {
			select {
			case r2, ok := <-s.queue:
				if !ok {
					break fill
				}
				s.tel.dequeued()
				batch = append(batch, r2)
			case <-timer.C:
				break fill
			}
		}
		timer.Stop()
		s.evalBatch(batch)
	}
}

// evalBatch packs the live members of batch into one encrypted
// evaluation and fans the per-block logits back out.
func (s *Server) evalBatch(batch []*request) {
	// Prune members whose context expired while queued: evaluating them
	// would waste a block, and their callers have already gone.
	live := batch[:0]
	for _, r := range batch {
		if err := r.ctx.Err(); err != nil {
			s.finish(r, result{err: fmt.Errorf("serve: expired in queue: %w", err)}, "expired")
			continue
		}
		live = append(live, r)
	}
	if len(live) == 0 {
		return
	}
	images := make([][]float64, len(live))
	traced := false
	for i, r := range live {
		images[i] = r.image
		r.qwait = time.Since(r.enq)
		s.tel.queueWait(r.qwait)
		if r.tc.Valid() {
			traced = true
		}
	}
	// The batch deadline is the latest member deadline: one short-fused
	// member must not kill the whole batch early (it simply times out on
	// its own context at fan-out), but the batch stops once nobody is
	// left to care.
	bctx, cancel := batchContext(live)
	defer cancel()

	// When any member arrived with a trace context, record the shared
	// evaluation's spans once for the whole batch: every member's trace
	// ID resolves to the same recording (the batch IS their evaluation).
	var rec *telemetry.RunRecorder
	if traced {
		rec = telemetry.NewRunRecorder()
		for _, r := range live {
			if r.tc.Valid() {
				rec.SetTrace(r.tc.TraceIDString(), r.tc.SpanIDString())
				bctx = telemetry.WithTraceContext(bctx, r.tc)
				break
			}
		}
		bctx = telemetry.WithRecorder(bctx, rec)
		// The batcher is a single goroutine, so binding the shared guard
		// to the batch context for the duration of the run is sound.
		if g, ok := s.cfg.Engine.(runContextSetter); ok {
			g.SetRunContext(bctx)
			defer g.SetRunContext(nil)
		}
	}

	t0 := time.Now()
	logits, rep, err := s.cfg.Batch.InferBatchCtx(bctx, s.cfg.Engine, images)
	elapsed := time.Since(t0)
	var top []telemetry.OpTime
	if rec != nil {
		top = telemetry.TopOpsFromRecorder(rec, 3)
		for _, r := range live {
			if r.tc.Valid() {
				s.flight.RecordTrace(r.tc.TraceIDString(), rec)
			}
		}
	}
	s.adm.observe(elapsed, err == nil)
	s.tel.batchDone(len(live), s.cfg.Batch.Batch, elapsed, err == nil)
	s.tel.admission(s.adm)
	if err != nil {
		// A guarded engine latches its first failure; clear it so the
		// next batch starts clean (no ciphertexts cross the boundary —
		// every batch re-encrypts from raw pixels).
		if g, ok := s.cfg.Engine.(resetter); ok {
			_ = g.Reset()
		}
		for _, r := range live {
			// Members whose own deadline passed report their context
			// error; the rest carry the batch failure.
			if cerr := r.ctx.Err(); cerr != nil {
				s.finish(r, result{err: fmt.Errorf("serve: %w", cerr)}, "timeout")
				continue
			}
			s.finish(r, result{err: err, batchSize: len(live), top: top}, "error")
		}
		return
	}
	for i, r := range live {
		s.finish(r, result{logits: logits[i], batchSize: len(live), eval: rep.Eval, top: top}, "ok")
	}
}

// batchContext derives the evaluation context for a batch: the latest
// member deadline when every member has one, otherwise no deadline.
func batchContext(live []*request) (context.Context, context.CancelFunc) {
	var latest time.Time
	for _, r := range live {
		d, ok := r.ctx.Deadline()
		if !ok {
			return context.Background(), func() {}
		}
		if d.After(latest) {
			latest = d
		}
	}
	return context.WithDeadline(context.Background(), latest)
}

// Shutdown stops intake, drains queued requests through final batches,
// and waits (bounded by ctx) for the batcher to deliver every response.
// Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.queue)
	}
	s.mu.Unlock()
	select {
	case <-s.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain incomplete: %w", ctx.Err())
	}
}
