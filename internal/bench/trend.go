package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"
)

// This file is the perf-trend gate behind cmd/hetrend: it loads every
// BENCH_*.json report a directory holds (any schema version — reports
// predating schema_version are read as version 1), builds a
// per-(model, backend, logn) latency series in timestamp order, and
// flags the newest run when it regresses against the best prior run of
// the same key. Runs at different ring degrees are never compared:
// latency scales superlinearly in N, so a logn bump is a config change,
// not a regression.

// DefaultRegressionThreshold is the fractional mean-latency increase
// over the best prior run that fails the gate (0.15 = +15%).
const DefaultRegressionThreshold = 0.15

// TrendKey identifies one comparable measurement series. Chain is part
// of the key because the chain-length sweep (Table IV) measures the
// same model/backend several times per report at different depths.
// RingParallel (the schema-v5 envelope field) is part of the key because
// serial and limb-parallel kernel runs are different series — comparing
// them would flag the serial run as a false regression against the
// parallel one. Pre-v5 reports carry no field and read as serial.
type TrendKey struct {
	Model        string
	Backend      string
	LogN         int
	Chain        int
	RingParallel bool
}

func (k TrendKey) String() string {
	s := fmt.Sprintf("%s/%s logN=%d chain=%d", k.Model, k.Backend, k.LogN, k.Chain)
	if k.RingParallel {
		s += " ring=parallel"
	}
	return s
}

// TrendPoint is one run's measurement of a key.
type TrendPoint struct {
	// Path and Timestamp identify the report the point came from.
	Path      string
	Timestamp time.Time
	// SchemaVersion is the report's layout version (1 when the file
	// predates the schema_version field).
	SchemaVersion int
	MeanMS        float64
	P95MS         float64
	N             int
	// EngineCalls is the optimized graph's engine-call count for the
	// point's model/backend (schema ≥ 3 reports with graph sections;
	// 0 when absent). Latency per engine call is the honest unit when
	// the optimizer changes the graph between runs.
	EngineCalls int
}

// MSPerCall returns mean latency per engine call, or 0 when the report
// carried no graph section.
func (p TrendPoint) MSPerCall() float64 {
	if p.EngineCalls <= 0 {
		return 0
	}
	return p.MeanMS / float64(p.EngineCalls)
}

// trendFile is the subset of JSONReport the gate reads — kept separate
// so old reports (no schema_version, no per-row logn, no graph
// sections) unmarshal cleanly.
type trendFile struct {
	SchemaVersion int    `json:"schema_version"`
	Timestamp     string `json:"timestamp"`
	LogN          int    `json:"logn"`
	RingParallel  bool   `json:"ring_parallel"`
	Rows          []struct {
		Model   string  `json:"model"`
		Backend string  `json:"backend"`
		LogN    int     `json:"logn"`
		Chain   int     `json:"chain"`
		N       int     `json:"n"`
		MeanMS  float64 `json:"mean_ms"`
		P95MS   float64 `json:"p95_ms"`
	} `json:"rows"`
	GraphAfter map[string]struct {
		EngineCalls int `json:"engine_calls"`
	} `json:"graph_after"`
}

// Trend is a set of measurement series extracted from benchmark
// reports, each sorted oldest-first by report timestamp.
type Trend struct {
	Series map[TrendKey][]TrendPoint
	// Files is how many reports were loaded.
	Files int
}

// Regression is one key whose newest measurement exceeds its best prior
// run by more than the threshold.
type Regression struct {
	Key      TrendKey
	Newest   TrendPoint
	BestPrev TrendPoint
	// Delta is the fractional increase of Newest.MeanMS over
	// BestPrev.MeanMS (0.20 = +20%).
	Delta float64
}

// LoadTrend reads every BENCH_*.json under dir into a Trend. Files that
// fail to parse are an error — a corrupt report silently dropped would
// make the gate pass vacuously.
func LoadTrend(dir string) (*Trend, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	tr := &Trend{Series: map[TrendKey][]TrendPoint{}}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		var f trendFile
		if err := json.Unmarshal(data, &f); err != nil {
			return nil, fmt.Errorf("bench: parsing %s: %w", path, err)
		}
		ts, err := time.Parse(time.RFC3339, f.Timestamp)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: bad timestamp %q: %w", path, f.Timestamp, err)
		}
		version := f.SchemaVersion
		if version == 0 {
			version = 1
		}
		for _, r := range f.Rows {
			logN := r.LogN
			if logN == 0 {
				logN = f.LogN // pre-v4 rows: envelope value applies
			}
			key := TrendKey{Model: r.Model, Backend: r.Backend, LogN: logN, Chain: r.Chain,
				RingParallel: f.RingParallel}
			p := TrendPoint{
				Path:          filepath.Base(path),
				Timestamp:     ts,
				SchemaVersion: version,
				MeanMS:        r.MeanMS,
				P95MS:         r.P95MS,
				N:             r.N,
			}
			// graph_after keys are "MODEL/backend" with the bare model
			// name; measurement rows suffix the variant (CNN1-HE-RNS).
			for gk, g := range f.GraphAfter {
				if gk == graphKeyFor(r.Model, r.Backend) {
					p.EngineCalls = g.EngineCalls
				}
			}
			tr.Series[key] = append(tr.Series[key], p)
		}
		tr.Files++
	}
	for _, pts := range tr.Series {
		sort.SliceStable(pts, func(i, j int) bool { return pts[i].Timestamp.Before(pts[j].Timestamp) })
	}
	return tr, nil
}

// graphKeyFor maps a measurement row's model/backend to the graph
// section's "MODEL/backend" key: "CNN1-HE-RNS" measured on "ckks-rns"
// was lowered as "CNN1/ckks-rns".
func graphKeyFor(model, backend string) string {
	base := model
	for _, suffix := range []string{"-HE-RNS", "-HE"} {
		if len(base) > len(suffix) && base[len(base)-len(suffix):] == suffix {
			base = base[:len(base)-len(suffix)]
			break
		}
	}
	return base + "/" + backend
}

// Regressions compares each key's newest point against the best (lowest
// mean) prior point and returns those that regressed by more than
// threshold. Keys measured only once have no prior run and cannot
// regress. Only keys present in the globally newest report are gated —
// the gate asks "did the latest benchmark run get slower", not "was
// some historical run slow".
func (t *Trend) Regressions(threshold float64) []Regression {
	newest := t.newestTimestamp()
	var out []Regression
	for key, pts := range t.Series {
		last := pts[len(pts)-1]
		if len(pts) < 2 || !last.Timestamp.Equal(newest) {
			continue
		}
		best := pts[0]
		for _, p := range pts[:len(pts)-1] {
			if p.MeanMS < best.MeanMS {
				best = p
			}
		}
		if best.MeanMS <= 0 {
			continue
		}
		delta := last.MeanMS/best.MeanMS - 1
		if delta > threshold {
			out = append(out, Regression{Key: key, Newest: last, BestPrev: best, Delta: delta})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Delta > out[j].Delta })
	return out
}

func (t *Trend) newestTimestamp() time.Time {
	var newest time.Time
	for _, pts := range t.Series {
		if last := pts[len(pts)-1]; last.Timestamp.After(newest) {
			newest = last.Timestamp
		}
	}
	return newest
}

// Write renders the trend as a markdown table, one row per (key, run),
// oldest run first within each key.
func (t *Trend) Write(w io.Writer) error {
	keys := make([]TrendKey, 0, len(t.Series))
	for k := range t.Series {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Model != b.Model {
			return a.Model < b.Model
		}
		if a.Backend != b.Backend {
			return a.Backend < b.Backend
		}
		if a.LogN != b.LogN {
			return a.LogN < b.LogN
		}
		if a.Chain != b.Chain {
			return a.Chain < b.Chain
		}
		return !a.RingParallel && b.RingParallel
	})
	fmt.Fprintf(w, "# Benchmark trend (%d report files)\n\n", t.Files)
	fmt.Fprintf(w, "| model | backend | logN | chain | ring | run | n | mean (ms) | p95 (ms) | engine calls | ms/call | vs prev |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|---|---|---|---|---|---|---|\n")
	for _, k := range keys {
		pts := t.Series[k]
		for i, p := range pts {
			calls, msPerCall, vsPrev := "-", "-", "-"
			if p.EngineCalls > 0 {
				calls = fmt.Sprintf("%d", p.EngineCalls)
				msPerCall = fmt.Sprintf("%.2f", p.MSPerCall())
			}
			if i > 0 && pts[i-1].MeanMS > 0 {
				vsPrev = fmt.Sprintf("%+.1f%%", 100*(p.MeanMS/pts[i-1].MeanMS-1))
			}
			ringMode := "serial"
			if k.RingParallel {
				ringMode = "parallel"
			}
			if _, err := fmt.Fprintf(w, "| %s | %s | %d | %d | %s | %s | %d | %.1f | %.1f | %s | %s | %s |\n",
				k.Model, k.Backend, k.LogN, k.Chain, ringMode, p.Path, p.N, p.MeanMS, p.P95MS, calls, msPerCall, vsPrev); err != nil {
				return err
			}
		}
	}
	return nil
}
