package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderRing(t *testing.T) {
	f := NewFlightRecorder(4, 2)
	for i := 0; i < 6; i++ {
		f.Record(RequestSummary{RequestID: fmt.Sprintf("r%d", i), TotalMS: float64(i)})
	}
	if got := f.Len(); got != 4 {
		t.Fatalf("Len = %d, want 4 (ring capacity)", got)
	}
	snap := f.Snapshot()
	// Newest first: r5, r4, r3, r2 — r0/r1 evicted.
	want := []string{"r5", "r4", "r3", "r2"}
	for i, w := range want {
		if snap[i].RequestID != w {
			t.Fatalf("snapshot[%d] = %q, want %q", i, snap[i].RequestID, w)
		}
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(RequestSummary{})
	f.RecordTrace("x", NewRunRecorder())
	if f.Snapshot() != nil || f.Len() != 0 || f.Trace("x") != nil {
		t.Fatal("nil recorder not inert")
	}
}

func TestFlightRecorderTraceRingEviction(t *testing.T) {
	f := NewFlightRecorder(8, 2)
	r1, r2, r3 := NewRunRecorder(), NewRunRecorder(), NewRunRecorder()
	f.RecordTrace("t1", r1)
	f.RecordTrace("t2", r2)
	f.RecordTrace("t3", r3) // evicts t1
	if f.Trace("t1") != nil {
		t.Fatal("t1 not evicted")
	}
	if f.Trace("t2") != r2 || f.Trace("t3") != r3 {
		t.Fatal("resident traces wrong")
	}
	// Re-recording an existing ID must not consume a slot.
	f.RecordTrace("t3", r1)
	if f.Trace("t2") != r2 {
		t.Fatal("re-record evicted an unrelated trace")
	}
	if f.Trace("t3") != r1 {
		t.Fatal("re-record did not replace")
	}
}

func TestFlightHandlerFilters(t *testing.T) {
	f := NewFlightRecorder(16, 2)
	f.Record(RequestSummary{RequestID: "a", Outcome: "ok", TotalMS: 10})
	f.Record(RequestSummary{RequestID: "b", Outcome: "shed", TotalMS: 30})
	f.Record(RequestSummary{RequestID: "c", Outcome: "ok", TotalMS: 20})
	h := f.Handler()

	get := func(url string) flightResponse {
		t.Helper()
		rr := httptest.NewRecorder()
		h.ServeHTTP(rr, httptest.NewRequest("GET", url, nil))
		if rr.Code != 200 {
			t.Fatalf("GET %s = %d: %s", url, rr.Code, rr.Body.String())
		}
		var resp flightResponse
		if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
		return resp
	}

	if resp := get("/debug/requests"); resp.Count != 3 || resp.Requests[0].RequestID != "c" {
		t.Fatalf("unfiltered = %+v", resp)
	}
	if resp := get("/debug/requests?outcome=ok"); resp.Count != 2 {
		t.Fatalf("outcome filter = %+v", resp)
	}
	resp := get("/debug/requests?slowest=2")
	if resp.Count != 2 || resp.Requests[0].RequestID != "b" || resp.Requests[1].RequestID != "c" {
		t.Fatalf("slowest = %+v", resp)
	}
	if resp := get("/debug/requests?outcome=ok&slowest=1"); resp.Count != 1 || resp.Requests[0].RequestID != "c" {
		t.Fatalf("composed filters = %+v", resp)
	}

	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests?slowest=x", nil))
	if rr.Code != 400 {
		t.Fatalf("bad slowest = %d, want 400", rr.Code)
	}
}

func TestFlightHandlerTraceExport(t *testing.T) {
	f := NewFlightRecorder(16, 2)
	rec := NewRunRecorder()
	rec.SetTrace("deadbeef", "req1")
	now := time.Now()
	rec.Record(OpSpan{Kind: "Rotate", Stage: "conv1", Start: now, End: now.Add(time.Millisecond),
		Level: 3, Scale: 1 << 30, NoiseBits: 17.5})
	f.RecordTrace("deadbeef", rec)
	f.Record(RequestSummary{TraceID: "deadbeef", RequestID: "req1", Outcome: "ok"})

	// The listing marks the trace resident.
	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests", nil))
	var resp flightResponse
	if err := json.Unmarshal(rr.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Requests[0].HasTrace {
		t.Fatal("summary not marked has_trace")
	}

	// ?trace= exports a Chrome trace carrying HE attributes + identity.
	rr = httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests?trace=deadbeef", nil))
	if rr.Code != 200 {
		t.Fatalf("trace export = %d: %s", rr.Code, rr.Body.String())
	}
	body := rr.Body.String()
	for _, want := range []string{`"trace_id": "deadbeef"`, `"request_id": "req1"`, `"level": 3`, `"noise_bits": 17.5`} {
		if !strings.Contains(body, want) {
			t.Errorf("trace export missing %s", want)
		}
	}

	rr = httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests?trace=absent", nil))
	if rr.Code != 404 {
		t.Fatalf("absent trace = %d, want 404", rr.Code)
	}
}

// TestFlightRecorderConcurrent exercises concurrent record + scrape under
// -race: writers on both rings while readers snapshot and serve HTTP.
func TestFlightRecorderConcurrent(t *testing.T) {
	f := NewFlightRecorder(32, 4)
	h := f.Handler()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("t%d-%d", w, i)
				rec := NewRunRecorder()
				rec.SetTrace(id, id)
				rec.Record(OpSpan{Kind: "Mul", Start: time.Now(), End: time.Now()})
				f.RecordTrace(id, rec)
				f.Record(RequestSummary{TraceID: id, RequestID: id, Outcome: "ok", TotalMS: float64(i)})
			}
		}(w)
	}
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				rr := httptest.NewRecorder()
				h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/requests?slowest=5", nil))
				if rr.Code != 200 {
					t.Errorf("scrape = %d", rr.Code)
					return
				}
				f.Snapshot()
			}
		}()
	}
	wg.Wait()
	if f.Len() != 32 {
		t.Fatalf("Len = %d, want full ring", f.Len())
	}
}

func TestTopOpsFromRecorder(t *testing.T) {
	rec := NewRunRecorder()
	now := time.Now()
	add := func(kind string, d time.Duration, n int) {
		rec.Record(OpSpan{Kind: kind, Start: now, End: now.Add(d), Ops: n})
	}
	add("Rotate", 30*time.Millisecond, 4)
	add("Rotate", 10*time.Millisecond, 1)
	add("MulPlain", 25*time.Millisecond, 1)
	add("Rescale", 5*time.Millisecond, 1)
	add("Add", 1*time.Millisecond, 1)

	top := TopOpsFromRecorder(rec, 3)
	if len(top) != 3 {
		t.Fatalf("len = %d, want 3", len(top))
	}
	if top[0].Kind != "Rotate" || top[0].Ops != 5 || top[0].Calls != 2 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].Kind != "MulPlain" || top[2].Kind != "Rescale" {
		t.Fatalf("order = %v, %v", top[1].Kind, top[2].Kind)
	}
	if top[0].TotalMS < 39 || top[0].TotalMS > 41 {
		t.Fatalf("Rotate total = %v", top[0].TotalMS)
	}
	if TopOpsFromRecorder(nil, 3) != nil {
		t.Fatal("nil recorder")
	}
}
