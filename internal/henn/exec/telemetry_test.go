package exec

import (
	"context"
	"testing"

	"cnnhe/internal/henn/ir"
	"cnnhe/internal/telemetry"
)

// expected per-kind logical-op counts for one run of testGraph.
var testGraphKinds = map[string]int64{
	"Encrypt":  1,
	"Rotate":   2, // hoisted pair, one RotateMany call
	"Add":      1,
	"MulPlain": 1,
	"AddPlain": 1,
	"MulRelin": 1,
	"Rescale":  1,
}

func runTraced(t *testing.T, opts Options) *telemetry.RunRecorder {
	t.Helper()
	p, err := Prepare(&fakeEngine{}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	rec := telemetry.NewRunRecorder()
	ctx := telemetry.WithRecorder(context.Background(), rec)
	if _, err := p.Run(ctx, [][]float64{{1, 2, 3, 4}}, opts); err != nil {
		t.Fatal(err)
	}
	return rec
}

// TestTraceCoversEveryOp asserts the recorder sees one logical op per
// graph op, on both executor paths, with the hoist group collapsed into
// a single RotateMany span.
func TestTraceCoversEveryOp(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts Options
	}{
		{"sequential", Options{}},
		{"parallel", Options{Workers: 4}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			rec := runTraced(t, tc.opts)
			g := testGraph()
			if got := rec.OpCount(); got != len(g.Ops) {
				t.Fatalf("recorded %d logical ops, graph has %d", got, len(g.Ops))
			}
			byKind := rec.ByKind()
			for kind, want := range testGraphKinds {
				if got := byKind[kind].Count; got != want {
					t.Errorf("kind %s: %d ops recorded, want %d", kind, got, want)
				}
			}
			rot := byKind["Rotate"]
			if rot.Calls != 1 {
				t.Errorf("hoisted rotations took %d engine calls, want 1", rot.Calls)
			}
			var hoistSpan bool
			for _, sp := range rec.Spans() {
				if sp.Kind == "Rotate" && sp.Ops == 2 {
					hoistSpan = true
					if sp.SavedKeySwitch != 1 {
						t.Errorf("hoist span saved %d key-switches, want 1", sp.SavedKeySwitch)
					}
				}
				if sp.Stage == "" {
					t.Errorf("span %s has no stage", sp.Kind)
				}
				if sp.End.Before(sp.Start) {
					t.Errorf("span %s ends before it starts", sp.Kind)
				}
			}
			if !hoistSpan {
				t.Error("no hoist-group span recorded")
			}
			phases := rec.Phases()
			if len(phases) != 2 || phases[0].Name != "encrypt" || phases[1].Name != "eval" {
				t.Fatalf("phases %+v, want encrypt + eval", phases)
			}
			if tc.opts.Workers > 1 {
				// Parallel runs must stamp queue instants on eval spans.
				for _, sp := range rec.Spans() {
					if sp.Kind != "Encrypt" && sp.Queued.IsZero() {
						t.Errorf("parallel %s span has no queued instant", sp.Kind)
					}
				}
			}
		})
	}
}

// TestGlobalMetricsWhenEnabled runs the graph with the registry enabled
// and checks the per-kind counters and hoist counters via snapshot diff.
func TestGlobalMetricsWhenEnabled(t *testing.T) {
	telemetry.SetEnabled(true)
	defer telemetry.SetEnabled(false)
	before := telemetry.Default().Snapshot()

	p, err := Prepare(&fakeEngine{}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background(), [][]float64{{1, 2, 3, 4}}, Options{}); err != nil {
		t.Fatal(err)
	}

	diff := telemetry.Default().Snapshot().Sub(before)
	ops, ok := diff.Family("cnnhe_exec_ops_total")
	if !ok {
		t.Fatal("cnnhe_exec_ops_total not registered")
	}
	got := map[string]int64{}
	for _, s := range ops.Series {
		got[s.Label("kind")] = int64(s.Value)
	}
	for kind, want := range testGraphKinds {
		if got[kind] != want {
			t.Errorf("ops_total{kind=%q} = %d, want %d", kind, got[kind], want)
		}
	}
	check := func(name string, want float64) {
		t.Helper()
		f, ok := diff.Family(name)
		if !ok || len(f.Series) != 1 {
			t.Fatalf("%s missing from snapshot", name)
		}
		if f.Series[0].Value != want {
			t.Errorf("%s = %v, want %v", name, f.Series[0].Value, want)
		}
	}
	check("cnnhe_exec_runs_total", 1)
	check("cnnhe_exec_hoist_groups_total", 1)
	check("cnnhe_exec_hoist_rotations_total", 2)
	check("cnnhe_exec_hoist_saved_keyswitch_total", 1)

	dur, ok := diff.Family("cnnhe_exec_op_seconds")
	if !ok {
		t.Fatal("cnnhe_exec_op_seconds not registered")
	}
	var calls int64
	for _, s := range dur.Series {
		calls += s.Count
	}
	// 7 engine calls with the hoist pair collapsed, plus the encrypt.
	if calls != 7 {
		t.Errorf("op_seconds observed %d engine calls, want 7", calls)
	}
}

// TestDisabledRunRecordsNothing pins the off state: no recorder in ctx
// and the global flag off must leave the registry untouched.
func TestDisabledRunRecordsNothing(t *testing.T) {
	if telemetry.Enabled() {
		t.Skip("telemetry enabled by another test")
	}
	before := telemetry.Default().Snapshot()
	p, err := Prepare(&fakeEngine{}, testGraph())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(context.Background(), [][]float64{{1, 2, 3, 4}}, Options{}); err != nil {
		t.Fatal(err)
	}
	diff := telemetry.Default().Snapshot().Sub(before)
	if f, ok := diff.Family("cnnhe_exec_runs_total"); ok && len(f.Series) > 0 && f.Series[0].Value != 0 {
		t.Fatal("disabled run incremented the runs counter")
	}
}

func benchGraph(b *testing.B) *Prepared {
	b.Helper()
	p, err := Prepare(&fakeEngine{quiet: true}, testGraph())
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkRunEncrypted quantifies executor telemetry overhead. The
// "disabled" case is the production default (no recorder, flag off): its
// per-op cost over an uninstrumented build is one nil pointer check.
// Compare against "metrics" / "traced" to see the enabled cost.
func BenchmarkRunEncrypted(b *testing.B) {
	in := [][]float64{{1, 2, 3, 4}}
	run := func(b *testing.B, mkCtx func() context.Context) {
		p := benchGraph(b)
		cts, _, _, err := p.EncryptInputs(context.Background(), in)
		if err != nil {
			b.Fatal(err)
		}
		var out ir.Ct
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := p.RunEncrypted(mkCtx(), cts, Options{})
			if err != nil {
				b.Fatal(err)
			}
			out = res.Out
		}
		_ = out
	}
	b.Run("disabled", func(b *testing.B) {
		telemetry.SetEnabled(false)
		run(b, context.Background)
	})
	b.Run("metrics", func(b *testing.B) {
		telemetry.SetEnabled(true)
		defer telemetry.SetEnabled(false)
		run(b, context.Background)
	})
	b.Run("traced", func(b *testing.B) {
		telemetry.SetEnabled(false)
		run(b, func() context.Context {
			return telemetry.WithRecorder(context.Background(), telemetry.NewRunRecorder())
		})
	})
}
