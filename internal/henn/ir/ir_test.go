package ir

import (
	"strings"
	"testing"
)

// smallGraph builds a valid two-stage graph: encrypt → hoisted rotations →
// mulplain → add → rescale.
func smallGraph() *Graph {
	g := &Graph{
		Slots:  8,
		Inputs: 1,
		Stages: []StageInfo{
			{Name: "encrypt", Out: 0, Record: false},
			{Name: "stage 0 (linear)", Out: 5, Record: true},
		},
		Hoists: [][]int{{1, 2}},
	}
	g.Ops = []Op{
		{ID: 0, Kind: OpEncrypt, InputIdx: 0, Stage: 0, Level: 3, Scale: 1 << 20},
		{ID: 1, Kind: OpRotate, Args: []int{0}, K: 1, Hoist: 0, Stage: 1, Level: 3, Scale: 1 << 20},
		{ID: 2, Kind: OpRotate, Args: []int{0}, K: 2, Hoist: 0, Stage: 1, Level: 3, Scale: 1 << 20},
		{ID: 3, Kind: OpMulPlain, Args: []int{1}, Plain: []float64{1, 2}, PtScale: 1 << 20, Stage: 1, Level: 3, Scale: 1 << 40},
		{ID: 4, Kind: OpMulPlain, Args: []int{2}, Plain: []float64{3, 4}, PtScale: 1 << 20, Stage: 1, Level: 3, Scale: 1 << 40},
		{ID: 5, Kind: OpAdd, Args: []int{3, 4}, Stage: 1, Level: 3, Scale: 1 << 40},
	}
	g.Output = 5
	return g
}

func TestValidateAccepts(t *testing.T) {
	if err := smallGraph().Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Graph)
		want   string
	}{
		{"forward-arg", func(g *Graph) { g.Ops[3].Args = []int{5} }, "topological"},
		{"bad-output", func(g *Graph) { g.Output = 99 }, "output"},
		{"zero-rotation", func(g *Graph) { g.Ops[1].K = 0 }, "rotates by 0"},
		{"bad-scale", func(g *Graph) { g.Ops[5].Scale = 0 }, "scale"},
		{"negative-level", func(g *Graph) { g.Ops[5].Level = -1 }, "level"},
		{"bad-stage", func(g *Graph) { g.Ops[5].Stage = 7 }, "stage"},
		{"mixed-hoist", func(g *Graph) { g.Ops[2].Args = []int{1} }, "hoist"},
		{"add-arity", func(g *Graph) { g.Ops[5].Args = []int{3} }, "args"},
		{"mulplain-no-operand", func(g *Graph) { g.Ops[3].Plain = nil }, "operand"},
		{"bad-input-idx", func(g *Graph) { g.Ops[0].InputIdx = 2 }, "input"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := smallGraph()
			tc.mutate(g)
			err := g.Validate()
			if err == nil {
				t.Fatalf("mutation %s not rejected", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("mutation %s rejected with %q, want substring %q", tc.name, err, tc.want)
			}
		})
	}
}

func TestValidateRecombineWeights(t *testing.T) {
	g := smallGraph()
	g.Ops = append(g.Ops, Op{
		ID: 6, Kind: OpRecombine, Args: []int{5, 4}, Weights: []int64{1, 3},
		Stage: 1, Level: 3, Scale: 1 << 40,
	})
	g.Output = 6
	if err := g.Validate(); err != nil {
		t.Fatalf("recombine rejected: %v", err)
	}
	g.Ops[6].Weights = []int64{2, 3}
	if err := g.Validate(); err == nil {
		t.Fatal("recombine with weight[0] != 1 accepted")
	}
	g.Ops[6].Weights = []int64{1}
	if err := g.Validate(); err == nil {
		t.Fatal("recombine weight/arg mismatch accepted")
	}
}

func TestStats(t *testing.T) {
	s := smallGraph().Stats()
	if s.Ops != 6 || s.ByKind[OpRotate] != 2 || s.ByKind[OpMulPlain] != 2 || s.Hoists != 1 || s.Plains != 2 {
		t.Fatalf("unexpected stats: %+v", s)
	}
	if s.MinLevel != 3 {
		t.Fatalf("min level %d, want 3", s.MinLevel)
	}
	// 6 ops, but the 2-member hoist group is one RotateMany call.
	if s.EngineCalls != 5 {
		t.Fatalf("engine calls %d, want 5", s.EngineCalls)
	}
	if s.RotateCalls() != 1 {
		t.Fatalf("rotate calls %d, want 1", s.RotateCalls())
	}
	if str := s.String(); !strings.Contains(str, "6 ops") || !strings.Contains(str, "1 hoist") {
		t.Fatalf("stats string %q", str)
	}
}

// TestStatsEmptyGraph pins the empty-graph MinLevel behavior: 0, not the
// 1<<30 sentinel the minimum scan starts from.
func TestStatsEmptyGraph(t *testing.T) {
	s := (&Graph{}).Stats()
	if s.MinLevel != 0 {
		t.Fatalf("empty graph min level %d, want 0", s.MinLevel)
	}
	if s.Ops != 0 || s.EngineCalls != 0 {
		t.Fatalf("empty graph stats: %+v", s)
	}
	if strings.Contains(s.String(), "1073741824") {
		t.Fatalf("sentinel leaked into stats string: %q", s)
	}
}

// TestValidateHoistGroupEdgeCases covers the shapes optimizer rewrites
// can produce: a group emptied by DCE must be rejected (the builder
// compacts groups away instead of leaving empty ones), a group whose
// member list disagrees with the op's Hoist tag after a CSE merge must
// be rejected, and out-of-order group IDs (relative to op order) are
// structurally fine.
func TestValidateHoistGroupEdgeCases(t *testing.T) {
	t.Run("empty-group-after-dce", func(t *testing.T) {
		g := smallGraph()
		g.Hoists = append(g.Hoists, nil)
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), "empty hoist group") {
			t.Fatalf("empty hoist group accepted (err=%v)", err)
		}
	})
	t.Run("cse-merged-member", func(t *testing.T) {
		// A CSE merge that drops op 2 but leaves it listed in the group:
		// the member no longer tags the group.
		g := smallGraph()
		g.Ops[2].Hoist = -1
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), "not its rotation") {
			t.Fatalf("stale hoist member accepted (err=%v)", err)
		}
	})
	t.Run("member-out-of-range", func(t *testing.T) {
		g := smallGraph()
		g.Hoists[0] = []int{1, 99}
		err := g.Validate()
		if err == nil || !strings.Contains(err.Error(), "out of range") {
			t.Fatalf("out-of-range member accepted (err=%v)", err)
		}
	})
	t.Run("out-of-order-group-ids", func(t *testing.T) {
		// Group 1's rotations precede group 0's in op order — legal: group
		// IDs are labels, not a schedule.
		g := &Graph{
			Slots:  8,
			Inputs: 1,
			Stages: []StageInfo{{Name: "s", Out: 5, Record: true}},
			Hoists: [][]int{{3, 4}, {1, 2}},
		}
		g.Ops = []Op{
			{ID: 0, Kind: OpEncrypt, InputIdx: 0, Hoist: -1, Level: 3, Scale: 1 << 20},
			{ID: 1, Kind: OpRotate, Args: []int{0}, K: 1, Hoist: 1, Level: 3, Scale: 1 << 20},
			{ID: 2, Kind: OpRotate, Args: []int{0}, K: 2, Hoist: 1, Level: 3, Scale: 1 << 20},
			{ID: 3, Kind: OpRotate, Args: []int{0}, K: 3, Hoist: 0, Level: 3, Scale: 1 << 20},
			{ID: 4, Kind: OpRotate, Args: []int{0}, K: 4, Hoist: 0, Level: 3, Scale: 1 << 20},
			{ID: 5, Kind: OpAdd, Args: []int{1, 3}, Hoist: -1, Level: 3, Scale: 1 << 20},
		}
		g.Output = 5
		if err := g.Validate(); err != nil {
			t.Fatalf("out-of-order hoist IDs rejected: %v", err)
		}
	})
}

func TestKindString(t *testing.T) {
	for k := OpEncrypt; k <= OpRecombine; k++ {
		if strings.HasPrefix(k.String(), "ir.Kind(") {
			t.Fatalf("kind %d has no name", int(k))
		}
	}
	if Kind(99).String() != "ir.Kind(99)" {
		t.Fatalf("unknown kind string: %s", Kind(99))
	}
}
