package ring

import (
	"math/big"
	"math/rand"

	"cnnhe/internal/zq"
)

// wideRing is the two-word limb backend for primes of 62–122 bits. It
// exists so that a fixed total ciphertext modulus can be split into fewer,
// larger limbs (the paper's Table IV/VI moduli-chain sweeps); its heavier
// multiprecision-style arithmetic is exactly the cost RNS amortizes away,
// so no lazy-reduction tricks are applied here.
type wideRing struct {
	n    int
	logN int
	mod  zq.WideModulus

	psiRev       []zq.Wide
	psiRevShoup  []zq.Wide
	ipsiRev      []zq.Wide
	ipsiRevShoup []zq.Wide
	nInv         zq.Wide
	nInvShoup    zq.Wide
	maskHi       uint64 // rejection mask for the high word when sampling
}

func newWideRing(n int, q *big.Int, rng *rand.Rand) *wideRing {
	mod := zq.NewWideModulus(q)
	twoN := uint64(2 * n)
	qm1 := new(big.Int).Sub(q, big.NewInt(1))
	if new(big.Int).Mod(qm1, new(big.Int).SetUint64(twoN)).Sign() != 0 {
		panic("ring: wide modulus not NTT-friendly for this degree")
	}
	logN := log2(n)
	psi := mod.PrimitiveNthRoot(twoN, rng)
	ipsi := mod.Inv(psi)
	r := &wideRing{
		n:            n,
		logN:         logN,
		mod:          mod,
		psiRev:       make([]zq.Wide, n),
		psiRevShoup:  make([]zq.Wide, n),
		ipsiRev:      make([]zq.Wide, n),
		ipsiRevShoup: make([]zq.Wide, n),
	}
	hiBits := mod.Bits - 64
	if hiBits >= 64 {
		r.maskHi = ^uint64(0)
	} else {
		r.maskHi = (uint64(1) << uint(hiBits)) - 1
	}
	pw, ipw := zq.Wide{Lo: 1}, zq.Wide{Lo: 1}
	for i := 0; i < n; i++ {
		j := bitrev(i, logN)
		r.psiRev[j] = pw
		r.psiRevShoup[j] = mod.ShoupPrecomp(pw)
		r.ipsiRev[j] = ipw
		r.ipsiRevShoup[j] = mod.ShoupPrecomp(ipw)
		pw = mod.Mul(pw, psi)
		ipw = mod.Mul(ipw, ipsi)
	}
	r.nInv = mod.Inv(zq.Wide{Lo: uint64(n)})
	r.nInvShoup = mod.ShoupPrecomp(r.nInv)
	return r
}

func (r *wideRing) N() int            { return r.n }
func (r *wideRing) Width() int        { return 2 }
func (r *wideRing) Modulus() *big.Int { return r.mod.Modulus() }
func (r *wideRing) BitLen() int       { return r.mod.Bits }

func (r *wideRing) get(a []uint64, i int) zq.Wide    { return zq.Wide{Lo: a[2*i], Hi: a[2*i+1]} }
func (r *wideRing) put(a []uint64, i int, v zq.Wide) { a[2*i], a[2*i+1] = v.Lo, v.Hi }

func (r *wideRing) NTT(a []uint64) {
	t := r.n
	for m := 1; m < r.n; m <<= 1 {
		t >>= 1
		for i := 0; i < m; i++ {
			w := r.psiRev[m+i]
			ws := r.psiRevShoup[m+i]
			j1 := 2 * i * t
			for j := j1; j < j1+t; j++ {
				u := r.get(a, j)
				v := r.mod.ShoupMul(r.get(a, j+t), w, ws)
				r.put(a, j, r.mod.Add(u, v))
				r.put(a, j+t, r.mod.Sub(u, v))
			}
		}
	}
}

func (r *wideRing) INTT(a []uint64) {
	t := 1
	for m := r.n >> 1; m >= 1; m >>= 1 {
		j1 := 0
		for i := 0; i < m; i++ {
			w := r.ipsiRev[m+i]
			ws := r.ipsiRevShoup[m+i]
			for j := j1; j < j1+t; j++ {
				u := r.get(a, j)
				v := r.get(a, j+t)
				r.put(a, j, r.mod.Add(u, v))
				r.put(a, j+t, r.mod.ShoupMul(r.mod.Sub(u, v), w, ws))
			}
			j1 += 2 * t
		}
		t <<= 1
	}
	for i := 0; i < r.n; i++ {
		r.put(a, i, r.mod.ShoupMul(r.get(a, i), r.nInv, r.nInvShoup))
	}
}

func (r *wideRing) Add(a, b, out []uint64) {
	for i := 0; i < r.n; i++ {
		r.put(out, i, r.mod.Add(r.get(a, i), r.get(b, i)))
	}
}

func (r *wideRing) Sub(a, b, out []uint64) {
	for i := 0; i < r.n; i++ {
		r.put(out, i, r.mod.Sub(r.get(a, i), r.get(b, i)))
	}
}

func (r *wideRing) Neg(a, out []uint64) {
	for i := 0; i < r.n; i++ {
		r.put(out, i, r.mod.Neg(r.get(a, i)))
	}
}

func (r *wideRing) MulCoeffs(a, b, out []uint64) {
	for i := 0; i < r.n; i++ {
		r.put(out, i, r.mod.Mul(r.get(a, i), r.get(b, i)))
	}
}

func (r *wideRing) MulCoeffsThenAdd(a, b, out []uint64) {
	for i := 0; i < r.n; i++ {
		p := r.mod.Mul(r.get(a, i), r.get(b, i))
		r.put(out, i, r.mod.Add(r.get(out, i), p))
	}
}

func (r *wideRing) MulScalar(a []uint64, s *big.Int, out []uint64) {
	sv := zq.WideFromBig(new(big.Int).Mod(s, r.mod.Modulus()))
	ss := r.mod.ShoupPrecomp(sv)
	for i := 0; i < r.n; i++ {
		r.put(out, i, r.mod.ShoupMul(r.get(a, i), sv, ss))
	}
}

func (r *wideRing) SubScalarThenMulScalar(a []uint64, c, s *big.Int, out []uint64) {
	cv := zq.WideFromBig(new(big.Int).Mod(c, r.mod.Modulus()))
	sv := zq.WideFromBig(new(big.Int).Mod(s, r.mod.Modulus()))
	ss := r.mod.ShoupPrecomp(sv)
	for i := 0; i < r.n; i++ {
		r.put(out, i, r.mod.ShoupMul(r.mod.Sub(r.get(a, i), cv), sv, ss))
	}
}

func (r *wideRing) Automorphism(a []uint64, galEl uint64, out []uint64) {
	n := uint64(r.n)
	mask := 2*n - 1
	for i := uint64(0); i < n; i++ {
		j := (i * galEl) & mask
		v := r.get(a, int(i))
		if j < n {
			r.put(out, int(j), v)
		} else {
			r.put(out, int(j-n), r.mod.Neg(v))
		}
	}
}

func (r *wideRing) ReduceFrom(src SubRing, a, out []uint64) {
	switch s := src.(type) {
	case *wordRing:
		// Any word value is below a wide modulus (> 2^61).
		for i := 0; i < r.n; i++ {
			out[2*i], out[2*i+1] = a[i], 0
		}
	case *wideRing:
		if s.mod.Q == r.mod.Q {
			copy(out, a)
			return
		}
		for i := 0; i < r.n; i++ {
			r.put(out, i, r.mod.Reduce(s.get(a, i)))
		}
	default:
		panic("ring: unknown source subring")
	}
}

func (r *wideRing) SetCoeffBig(a []uint64, j int, v *big.Int) {
	r.put(a, j, zq.WideFromBig(v))
}

func (r *wideRing) CoeffBig(a []uint64, j int, out *big.Int) {
	out.Set(r.get(a, j).Big())
}

func (r *wideRing) SetCoeffInt64(a []uint64, j int, v int64) {
	if v >= 0 {
		r.put(a, j, zq.Wide{Lo: uint64(v)})
	} else {
		r.put(a, j, r.mod.Neg(zq.Wide{Lo: uint64(-v)}))
	}
}

func (r *wideRing) SampleUniform(rng *rand.Rand, a []uint64) {
	for i := 0; i < r.n; i++ {
		for {
			v := zq.Wide{Lo: rng.Uint64(), Hi: rng.Uint64() & r.maskHi}
			if v.Less(r.mod.Q) {
				r.put(a, i, v)
				break
			}
		}
	}
}
