// Package ring implements the RNS (residue number system) polynomial ring
// R_q = Z_q[X]/(X^N+1) with q = ∏ q_i held in residue form: a polynomial is
// a stack of "limbs", one coefficient vector per prime q_i. Limbs are
// independent — the essence of the RNS-CKKS design — and every limb-wise
// operation can run in parallel across limbs.
//
// Two limb backends are provided: a fast single-word backend for primes of
// at most 61 bits (Shoup-multiplied lazy Harvey NTT butterflies) and a wide
// two-word backend for primes up to 122 bits (Barrett-256 arithmetic). The
// wide backend exists to support the paper's moduli-chain-length sweeps,
// where a fixed ~366-bit ciphertext modulus is split into as few as three
// limbs.
package ring

import (
	"math/big"
	"math/rand"
)

// SubRing is the per-prime residue ring Z_{q_i}[X]/(X^N+1). Coefficient
// vectors are []uint64 of length N·Width(): one word per coefficient for the
// word backend, two little-endian words for the wide backend.
type SubRing interface {
	// N returns the ring degree.
	N() int
	// Width returns the number of 64-bit words per coefficient (1 or 2).
	Width() int
	// Modulus returns q_i as a fresh big.Int.
	Modulus() *big.Int
	// BitLen returns the bit length of q_i.
	BitLen() int

	// NTT transforms a in place from coefficient to evaluation domain
	// (negacyclic, bit-reversed output order).
	NTT(a []uint64)
	// INTT is the inverse of NTT (bit-reversed input, natural output).
	INTT(a []uint64)

	// Add sets out = a + b element-wise. Aliasing of any arguments is allowed.
	Add(a, b, out []uint64)
	// Sub sets out = a - b element-wise.
	Sub(a, b, out []uint64)
	// Neg sets out = -a element-wise.
	Neg(a, out []uint64)
	// MulCoeffs sets out = a ⊙ b element-wise (pointwise product).
	MulCoeffs(a, b, out []uint64)
	// MulCoeffsThenAdd sets out += a ⊙ b element-wise.
	MulCoeffsThenAdd(a, b, out []uint64)
	// MulScalar sets out = a · s for a scalar s given as a big.Int in [0, q).
	MulScalar(a []uint64, s *big.Int, out []uint64)
	// SubScalarThenMulScalar sets out = (a - c) · s for scalars c, s in [0,q).
	// It is the inner step of RNS rescaling. a and out may alias.
	SubScalarThenMulScalar(a []uint64, c, s *big.Int, out []uint64)

	// Automorphism applies X → X^galEl (galEl odd) in the coefficient
	// domain: out[i·galEl mod 2N adjusted] = ±a[i]. a and out must not alias.
	Automorphism(a []uint64, galEl uint64, out []uint64)

	// ReduceFrom sets out = src-limb coefficients reduced mod q_i, where
	// the source limb belongs to subring src (possibly different width).
	ReduceFrom(src SubRing, a, out []uint64)

	// SetCoeffBig stores v (in [0, q)) at coefficient index j.
	SetCoeffBig(a []uint64, j int, v *big.Int)
	// CoeffBig loads coefficient j into out.
	CoeffBig(a []uint64, j int, out *big.Int)
	// SetCoeffInt64 stores the centered value v at coefficient index j
	// (negative values wrap to q - |v|).
	SetCoeffInt64(a []uint64, j int, v int64)
	// SetCoeffsInt64 stores centered values vec[0..] at coefficient
	// indices 0.. — the bulk form of SetCoeffInt64, avoiding a dynamic
	// dispatch per coefficient on the encode hot path.
	SetCoeffsInt64(a []uint64, vec []int64)

	// SampleUniform fills a with independent uniform residues from rng.
	SampleUniform(rng *rand.Rand, a []uint64)
}

// NewSubRing builds a SubRing for the prime modulus q (as big.Int) and ring
// degree n (a power of two). The prime must satisfy q ≡ 1 (mod 2n). rng
// seeds the (deterministic given rng) primitive-root search.
func NewSubRing(n int, q *big.Int, rng *rand.Rand) SubRing {
	if n < 2 || n&(n-1) != 0 {
		panic("ring: degree must be a power of two ≥ 2")
	}
	if q.BitLen() <= 61 {
		return newWordRing(n, q.Uint64(), rng)
	}
	return newWideRing(n, q, rng)
}

// bitrev returns i bit-reversed over logN bits.
func bitrev(i, logN int) int {
	r := 0
	for b := 0; b < logN; b++ {
		r = (r << 1) | (i & 1)
		i >>= 1
	}
	return r
}

func log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}
