package henn

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"cnnhe/internal/ckks"
)

func TestEstimatePrecision(t *testing.T) {
	m := tinyModel(51)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ckks.NewParameters(10, []int{40, 30, 30, 30, 30}, 50, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	pe, err := plan.EstimatePrecision(p, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(pe.PerStage) != len(plan.Stages) {
		t.Fatalf("per-stage rows %d want %d", len(pe.PerStage), len(plan.Stages))
	}
	// Precision must be finite everywhere. (The sequence is not monotone:
	// a plaintext multiplication by small weights followed by a rescale
	// genuinely contracts noise relative to the scale.)
	for _, r := range pe.PerStage {
		if math.IsNaN(r.Bits) || math.IsInf(r.Bits, 0) {
			t.Fatalf("non-finite precision: %+v", pe.PerStage)
		}
	}
	if pe.FinalBits <= 0 {
		t.Fatalf("expected positive precision, got %.2f bits", pe.FinalBits)
	}
	if !strings.Contains(pe.String(), "bits") {
		t.Fatal("report should render")
	}

	// The estimate is a lower bound: measured logit error must be within
	// the predicted precision (checked loosely — the bound is
	// conservative by an order of magnitude or more).
	e, err := NewRNSEngine(p, plan.Rotations(), 901)
	if err != nil {
		t.Fatal(err)
	}
	img := testImage(rand.New(rand.NewSource(52)), 64)
	logits, _ := plan.Infer(e, img)
	want := plainForward(m, img, 1, 8, 8)
	maxe := 0.0
	for i := range want {
		if d := math.Abs(logits[i] - want[i]); d > maxe {
			maxe = d
		}
	}
	allowed := math.Exp2(-pe.FinalBits) * 32 // slack: bound is per-slot, logits sum terms
	if maxe > math.Max(allowed, 0.5) {
		t.Fatalf("measured error %.4g exceeds even the conservative bound (%.1f bits)", maxe, pe.FinalBits)
	}
}

func TestEstimatePrecisionRejectsShallowParams(t *testing.T) {
	m := tinyModel(53)
	plan, err := Compile(m, 512)
	if err != nil {
		t.Fatal(err)
	}
	p, err := ckks.NewParameters(10, []int{40, 30}, 50, 1, math.Exp2(30))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.EstimatePrecision(p, 10); err == nil {
		t.Fatal("expected depth error")
	}
}
