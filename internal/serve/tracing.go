package serve

import (
	"log/slog"
	"net/http"
	"sync"
	"time"

	"cnnhe/internal/telemetry"
)

// HeaderTraceparent is the W3C Trace Context request/response header.
// A client that stamps it gets the same trace ID back in the response,
// in the server's slog lines, and in the /debug/requests flight entry;
// without it the server originates a trace.
const HeaderTraceparent = "traceparent"

// HeaderRequestID carries the server-side span ID — the short handle
// joining one HTTP exchange to logs and the flight recorder.
const HeaderRequestID = "X-Request-Id"

// traceTel counts traced requests by trace-ID origin
// (cnnhe_trace_requests_total{source="client"|"server"}).
type traceTel struct {
	client *telemetry.Counter
	server *telemetry.Counter
}

var (
	traceTelOnce sync.Once
	traceTelVal  *traceTel
)

func traceRequests() *traceTel {
	if !telemetry.Enabled() {
		return nil
	}
	traceTelOnce.Do(func() {
		r := telemetry.Default()
		traceTelVal = &traceTel{
			client: r.Counter("cnnhe_trace_requests_total",
				"traced requests by trace-ID origin", telemetry.L("source", "client")),
			server: r.Counter("cnnhe_trace_requests_total",
				"traced requests by trace-ID origin", telemetry.L("source", "server")),
		}
	})
	return traceTelVal
}

// beginTrace resolves the request's trace context: a valid client
// traceparent is continued with a fresh server span; anything else
// starts a server-originated trace. The context is echoed on the
// response (traceparent + X-Request-Id) before the body is written.
func beginTrace(w http.ResponseWriter, r *http.Request) (tc telemetry.TraceContext, fromClient bool) {
	if hdr := r.Header.Get(HeaderTraceparent); hdr != "" {
		if parent, err := telemetry.ParseTraceparent(hdr); err == nil {
			tc, fromClient = parent.Child(), true
		}
	}
	if !fromClient {
		tc = telemetry.NewTraceContext()
	}
	if t := traceRequests(); t != nil {
		if fromClient {
			t.client.Inc()
		} else {
			t.server.Inc()
		}
	}
	w.Header().Set(HeaderTraceparent, tc.Traceparent())
	w.Header().Set(HeaderRequestID, tc.SpanIDString())
	return tc, fromClient
}

// logRequest emits the per-request slog line carrying the join keys.
func logRequest(route string, tc telemetry.TraceContext, outcome string, d time.Duration, err error) {
	args := []any{
		"route", route,
		"trace_id", tc.TraceIDString(),
		"request_id", tc.SpanIDString(),
		"outcome", outcome,
		"ms", float64(d) / float64(time.Millisecond),
	}
	if err != nil {
		slog.Warn("request", append(args, "err", err.Error())...)
		return
	}
	slog.Info("request", args...)
}

// flightRecord files one finished plain-route request with the flight
// recorder. Zero-valued trace contexts (direct Submit callers that
// never passed through HTTP) are skipped — there is no ID to join on.
func (s *Server) flightRecord(r *request, res result, outcome string, total time.Duration) {
	if s.flight == nil || !r.tc.Valid() {
		return
	}
	sum := telemetry.RequestSummary{
		TraceID:       r.tc.TraceIDString(),
		RequestID:     r.tc.SpanIDString(),
		Route:         "classify",
		Outcome:       outcome,
		Start:         r.enq,
		QueueMS:       float64(r.qwait) / float64(time.Millisecond),
		EvalMS:        float64(res.eval) / float64(time.Millisecond),
		TotalMS:       float64(total) / float64(time.Millisecond),
		BatchSize:     res.batchSize,
		BatchCapacity: s.cfg.Batch.Batch,
		TopOps:        res.top,
	}
	if res.err != nil {
		sum.Error = res.err.Error()
	}
	s.flight.Record(sum)
}

// flightReject files an admission-time rejection (never queued, so the
// whole latency is zero and there is no batch to describe).
func (s *Server) flightReject(tc telemetry.TraceContext, outcome string, err error) {
	if s.flight == nil || !tc.Valid() {
		return
	}
	sum := telemetry.RequestSummary{
		TraceID:   tc.TraceIDString(),
		RequestID: tc.SpanIDString(),
		Route:     "classify",
		Outcome:   outcome,
		Start:     time.Now(),
	}
	if err != nil {
		sum.Error = err.Error()
	}
	s.flight.Record(sum)
}
