package ckks

import (
	"math"
	"math/rand"
	"testing"
)

type testKit struct {
	ctx *Context
	enc *Encoder
	kg  *KeyGenerator
	sk  *SecretKey
	pk  *PublicKey
	rlk *RelinearizationKey
	ept *Encryptor
	dec *Decryptor
	ev  *Evaluator
}

func newTestKit(t testing.TB, p Parameters, rotations []int, conjugate bool) *testKit {
	t.Helper()
	ctx, err := NewContext(p)
	if err != nil {
		t.Fatal(err)
	}
	kg := NewKeyGenerator(ctx, 1001)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	rlk := kg.GenRelinearizationKey(sk)
	var rtk *RotationKeySet
	if len(rotations) > 0 || conjugate {
		rtk = kg.GenRotationKeys(sk, rotations, conjugate)
	}
	return &testKit{
		ctx: ctx,
		enc: NewEncoder(ctx),
		kg:  kg,
		sk:  sk,
		pk:  pk,
		rlk: rlk,
		ept: NewEncryptor(ctx, pk, 2002),
		dec: NewDecryptor(ctx, sk),
		ev:  NewEvaluator(ctx, rlk, rtk),
	}
}

func tiny(t testing.TB) *testKit {
	p, err := TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	return newTestKit(t, p, nil, false)
}

func randVec(rng *rand.Rand, n int, amp float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = (rng.Float64()*2 - 1) * amp
	}
	return out
}

func maxErr(a, b []float64) float64 {
	m := 0.0
	for i := range a {
		if e := math.Abs(a[i] - b[i]); e > m {
			m = e
		}
	}
	return m
}

func TestEncodeDecode(t *testing.T) {
	k := tiny(t)
	rng := rand.New(rand.NewSource(1))
	vals := randVec(rng, k.ctx.Params.Slots(), 10)
	pt := k.enc.Encode(vals, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale)
	got := k.enc.Decode(pt)
	if e := maxErr(vals, got[:len(vals)]); e > 1e-6 {
		t.Fatalf("encode/decode error %g", e)
	}
}

func TestEncryptDecryptPK(t *testing.T) {
	k := tiny(t)
	rng := rand.New(rand.NewSource(2))
	vals := randVec(rng, k.ctx.Params.Slots(), 5)
	pt := k.enc.Encode(vals, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale)
	ct := k.ept.Encrypt(pt)
	got := k.enc.Decode(k.dec.DecryptNew(ct))
	if e := maxErr(vals, got[:len(vals)]); e > 1e-4 {
		t.Fatalf("pk encrypt/decrypt error %g", e)
	}
}

func TestEncryptDecryptSK(t *testing.T) {
	k := tiny(t)
	skEnc := NewSecretKeyEncryptor(k.ctx, k.sk, 77)
	rng := rand.New(rand.NewSource(3))
	vals := randVec(rng, k.ctx.Params.Slots(), 5)
	pt := k.enc.Encode(vals, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale)
	ct := skEnc.Encrypt(pt)
	got := k.enc.Decode(k.dec.DecryptNew(ct))
	if e := maxErr(vals, got[:len(vals)]); e > 1e-4 {
		t.Fatalf("sk encrypt/decrypt error %g", e)
	}
}

func TestAddSubNeg(t *testing.T) {
	k := tiny(t)
	rng := rand.New(rand.NewSource(4))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 3)
	b := randVec(rng, n, 3)
	L := k.ctx.Params.MaxLevel()
	cta := k.ept.Encrypt(k.enc.Encode(a, L, k.ctx.Params.Scale))
	ctb := k.ept.Encrypt(k.enc.Encode(b, L, k.ctx.Params.Scale))

	sum := k.enc.Decode(k.dec.DecryptNew(k.ev.Add(cta, ctb)))
	diff := k.enc.Decode(k.dec.DecryptNew(k.ev.Sub(cta, ctb)))
	neg := k.enc.Decode(k.dec.DecryptNew(k.ev.Neg(cta)))
	for i := 0; i < n; i++ {
		if math.Abs(sum[i]-(a[i]+b[i])) > 1e-4 {
			t.Fatalf("add error at %d", i)
		}
		if math.Abs(diff[i]-(a[i]-b[i])) > 1e-4 {
			t.Fatalf("sub error at %d", i)
		}
		if math.Abs(neg[i]+a[i]) > 1e-4 {
			t.Fatalf("neg error at %d", i)
		}
	}
}

func TestAddPlainMulPlain(t *testing.T) {
	k := tiny(t)
	rng := rand.New(rand.NewSource(5))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 3)
	b := randVec(rng, n, 3)
	L := k.ctx.Params.MaxLevel()
	scale := k.ctx.Params.Scale
	ct := k.ept.Encrypt(k.enc.Encode(a, L, scale))
	ptAdd := k.enc.Encode(b, L, scale)
	got := k.enc.Decode(k.dec.DecryptNew(k.ev.AddPlain(ct, ptAdd)))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-(a[i]+b[i])) > 1e-4 {
			t.Fatalf("addplain error at %d", i)
		}
	}

	ptMul := k.enc.Encode(b, L, scale)
	prod := k.ev.MulPlain(ct, ptMul)
	prod = k.ev.Rescale(prod)
	got = k.enc.Decode(k.dec.DecryptNew(prod))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-a[i]*b[i]) > 1e-3 {
			t.Fatalf("mulplain error at %d: %g vs %g", i, got[i], a[i]*b[i])
		}
	}
	if prod.Level != L-1 {
		t.Fatalf("rescale did not drop level")
	}
}

func TestMulRelinRescale(t *testing.T) {
	k := tiny(t)
	rng := rand.New(rand.NewSource(6))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	b := randVec(rng, n, 2)
	L := k.ctx.Params.MaxLevel()
	scale := k.ctx.Params.Scale
	cta := k.ept.Encrypt(k.enc.Encode(a, L, scale))
	ctb := k.ept.Encrypt(k.enc.Encode(b, L, scale))
	prod := k.ev.Rescale(k.ev.Mul(cta, ctb))
	got := k.enc.Decode(k.dec.DecryptNew(prod))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-a[i]*b[i]) > 1e-3 {
			t.Fatalf("mul error at %d: %g vs %g", i, got[i], a[i]*b[i])
		}
	}
}

func TestDepthChain(t *testing.T) {
	// Repeated squaring down to level 0: x^(2^d).
	k := tiny(t)
	L := k.ctx.Params.MaxLevel()
	scale := k.ctx.Params.Scale
	n := k.ctx.Params.Slots()
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = 1.1
	}
	ct := k.ept.Encrypt(k.enc.Encode(vals, L, scale))
	want := 1.1
	for d := 0; d < L; d++ {
		ct = k.ev.Rescale(k.ev.Square(ct))
		want *= want
	}
	got := k.enc.Decode(k.dec.DecryptNew(ct))
	if math.Abs(got[0]-want)/want > 1e-2 {
		t.Fatalf("depth-%d chain: got %g want %g", L, got[0], want)
	}
	if ct.Level != 0 {
		t.Fatalf("expected level 0, got %d", ct.Level)
	}
}

func TestMulConstAddConst(t *testing.T) {
	k := tiny(t)
	rng := rand.New(rand.NewSource(7))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	L := k.ctx.Params.MaxLevel()
	ct := k.ept.Encrypt(k.enc.Encode(a, L, k.ctx.Params.Scale))

	scaled := k.ev.Rescale(k.ev.MulConst(ct, -2.5, 0))
	got := k.enc.Decode(k.dec.DecryptNew(scaled))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-(-2.5*a[i])) > 1e-3 {
			t.Fatalf("mulconst error at %d", i)
		}
	}
	if !scaleClose(scaled.Scale, ct.Scale) {
		t.Fatalf("mulconst+rescale should restore scale: %g vs %g", scaled.Scale, ct.Scale)
	}

	shifted := k.ev.AddConst(ct, 3.25)
	got = k.enc.Decode(k.dec.DecryptNew(shifted))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-(a[i]+3.25)) > 1e-3 {
			t.Fatalf("addconst error at %d", i)
		}
	}
}

func TestRotateAndConjugate(t *testing.T) {
	p, err := TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	k := newTestKit(t, p, []int{1, 2, -3, 100}, true)
	rng := rand.New(rand.NewSource(8))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 3)
	L := k.ctx.Params.MaxLevel()
	ct := k.ept.Encrypt(k.enc.Encode(a, L, k.ctx.Params.Scale))

	for _, rot := range []int{1, 2, -3, 100} {
		got := k.enc.Decode(k.dec.DecryptNew(k.ev.Rotate(ct, rot)))
		for i := 0; i < n; i++ {
			want := a[((i+rot)%n+n)%n]
			if math.Abs(got[i]-want) > 1e-3 {
				t.Fatalf("rotate %d: slot %d got %g want %g", rot, i, got[i], want)
			}
		}
	}
	got := k.enc.Decode(k.dec.DecryptNew(k.ev.Conjugate(ct)))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-a[i]) > 1e-3 {
			t.Fatalf("conjugate of real vector should be identity at %d", i)
		}
	}
}

func TestRotateZeroAndHoisted(t *testing.T) {
	p, err := TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	k := newTestKit(t, p, []int{1, 5}, false)
	rng := rand.New(rand.NewSource(9))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 1)
	ct := k.ept.Encrypt(k.enc.Encode(a, k.ctx.Params.MaxLevel(), k.ctx.Params.Scale))
	z := k.ev.Rotate(ct, 0)
	got := k.enc.Decode(k.dec.DecryptNew(z))
	if e := maxErr(a, got[:n]); e > 1e-4 {
		t.Fatalf("rotate 0 should be identity, err %g", e)
	}
	rs := k.ev.RotateHoisted(ct, []int{1, 5})
	for _, rot := range []int{1, 5} {
		got := k.enc.Decode(k.dec.DecryptNew(rs[rot]))
		for i := 0; i < n; i++ {
			want := a[(i+rot)%n]
			if math.Abs(got[i]-want) > 1e-3 {
				t.Fatalf("hoisted rotate %d mismatch", rot)
			}
		}
	}
}

func TestScaleMismatchPanics(t *testing.T) {
	k := tiny(t)
	L := k.ctx.Params.MaxLevel()
	a := k.ept.Encrypt(k.enc.Encode([]float64{1}, L, k.ctx.Params.Scale))
	b := k.ept.Encrypt(k.enc.Encode([]float64{1}, L, k.ctx.Params.Scale*2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on scale mismatch")
		}
	}()
	k.ev.Add(a, b)
}

func TestLevelMismatchPanics(t *testing.T) {
	k := tiny(t)
	L := k.ctx.Params.MaxLevel()
	a := k.ept.Encrypt(k.enc.Encode([]float64{1}, L, k.ctx.Params.Scale))
	b := k.ev.DropLevel(a, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on level mismatch")
		}
	}()
	k.ev.Add(a, b)
}

func TestDropLevel(t *testing.T) {
	k := tiny(t)
	rng := rand.New(rand.NewSource(10))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	L := k.ctx.Params.MaxLevel()
	ct := k.ept.Encrypt(k.enc.Encode(a, L, k.ctx.Params.Scale))
	dropped := k.ev.DropLevel(ct, 2)
	if dropped.Level != L-2 {
		t.Fatalf("level %d want %d", dropped.Level, L-2)
	}
	got := k.enc.Decode(k.dec.DecryptNew(dropped))
	if e := maxErr(a, got[:n]); e > 1e-4 {
		t.Fatalf("droplevel changed values, err %g", e)
	}
}

func TestWideLimbChainMul(t *testing.T) {
	// Moduli-sweep configuration with wide (80-bit) limbs: the mult and
	// keyswitch paths must be correct on the wide backend too. Evaluation
	// is rescale-free (scale-growth mode), as in the paper's sweep where
	// chains as short as k=1..3 evaluate deep networks: with Δ=2^40 and
	// 80-bit primes a rescale would collapse the scale below 1.
	p, err := SweepParameters(9, 240, 3, math.Exp2(40))
	if err != nil {
		t.Fatal(err)
	}
	k := newTestKit(t, p, nil, false)
	rng := rand.New(rand.NewSource(11))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	b := randVec(rng, n, 2)
	L := k.ctx.Params.MaxLevel()
	cta := k.ept.Encrypt(k.enc.Encode(a, L, k.ctx.Params.Scale))
	ctb := k.ept.Encrypt(k.enc.Encode(b, L, k.ctx.Params.Scale))
	prod := k.ev.Mul(cta, ctb) // no rescale: scale is now Δ² = 2^80
	if math.Abs(math.Log2(prod.Scale)-80) > 1e-9 {
		t.Fatalf("scale should be 2^80, got 2^%f", math.Log2(prod.Scale))
	}
	got := k.enc.Decode(k.dec.DecryptNew(prod))
	for i := 0; i < n; i++ {
		if math.Abs(got[i]-a[i]*b[i]) > 1e-3 {
			t.Fatalf("wide-chain mul error at %d: %g vs %g", i, got[i], a[i]*b[i])
		}
	}
}

func TestWideLimbRotation(t *testing.T) {
	p, err := SweepParameters(9, 240, 3, math.Exp2(40))
	if err != nil {
		t.Fatal(err)
	}
	k := newTestKit(t, p, []int{1, 7}, false)
	rng := rand.New(rand.NewSource(13))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	L := k.ctx.Params.MaxLevel()
	ct := k.ept.Encrypt(k.enc.Encode(a, L, k.ctx.Params.Scale))
	for _, rot := range []int{1, 7} {
		got := k.enc.Decode(k.dec.DecryptNew(k.ev.Rotate(ct, rot)))
		for i := 0; i < n; i++ {
			want := a[(i+rot)%n]
			if math.Abs(got[i]-want) > 1e-3 {
				t.Fatalf("wide rotate %d mismatch at slot %d", rot, i)
			}
		}
	}
}

func TestParallelEvaluationMatches(t *testing.T) {
	p, err := TinyParameters()
	if err != nil {
		t.Fatal(err)
	}
	k := newTestKit(t, p, nil, false)
	rng := rand.New(rand.NewSource(12))
	n := k.ctx.Params.Slots()
	a := randVec(rng, n, 2)
	b := randVec(rng, n, 2)
	L := k.ctx.Params.MaxLevel()
	cta := k.ept.Encrypt(k.enc.Encode(a, L, k.ctx.Params.Scale))
	ctb := k.ept.Encrypt(k.enc.Encode(b, L, k.ctx.Params.Scale))

	seq := k.ev.Rescale(k.ev.Mul(cta, ctb))
	k.ctx.SetParallel(true)
	par := k.ev.Rescale(k.ev.Mul(cta, ctb))
	k.ctx.SetParallel(false)

	r := k.ctx.R
	limbs := r.Limbs(seq.Level, false)
	if !r.Equal(limbs, seq.C0, par.C0) || !r.Equal(limbs, seq.C1, par.C1) {
		t.Fatal("parallel evaluation differs from sequential")
	}
}

func TestPaperParametersShape(t *testing.T) {
	p, err := PaperParameters()
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 1<<14 {
		t.Fatalf("N = %d", p.N())
	}
	// 12 ciphertext primes [40, 26×11] plus the 40-bit key-switching prime:
	// 13 primes, 366 bits — the paper's q list in SEAL convention.
	if p.MaxLevel() != 11 {
		t.Fatalf("max level %d want 11 (12 ciphertext primes)", p.MaxLevel())
	}
	if got := len(p.Chain.Moduli); got != 13 {
		t.Fatalf("total primes = %d want 13", got)
	}
	if got := p.LogQP(); got != 366 {
		t.Fatalf("log qP = %d want 366 (Table II)", got)
	}
	if p.Scale != math.Exp2(26) {
		t.Fatalf("scale %g", p.Scale)
	}
}
