package keys

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"cnnhe/internal/ckks"
)

// durableStore builds a store over dir with background compaction
// disabled (tests drive Compact explicitly).
func durableStore(t *testing.T, ctx *ckks.Context, dir string, mutate func(*Config)) *Store {
	t.Helper()
	cfg := Config{Ctx: ctx, Dir: dir, CompactInterval: -1}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewStore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

func bundleFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), bundleSuffix) {
			out = append(out, de.Name())
		}
	}
	return out
}

// TestDurableRegisterSurvivesRestart is the crash-recovery core: bundles
// registered with one store are fully usable from a fresh store over the
// same directory, with the reload re-verifying every file.
func TestDurableRegisterSurvivesRestart(t *testing.T) {
	ctx := testCtx(t)
	dir := t.TempDir()
	s1 := durableStore(t, ctx, dir, nil)
	a := bundleFixture(t, ctx, 40, []int{1, 2})
	b := bundleFixture(t, ctx, 41, []int{1, 2})
	ea, err := s1.Register(a)
	if err != nil {
		t.Fatal(err)
	}
	eb, err := s1.Register(b)
	if err != nil {
		t.Fatal(err)
	}
	if got := bundleFiles(t, dir); len(got) != 2 {
		t.Fatalf("expected 2 bundle files, found %v", got)
	}
	// No leftover temp files: every snapshot either renamed or vanished.
	ents, _ := os.ReadDir(dir)
	for _, de := range ents {
		if strings.HasPrefix(de.Name(), tempPrefix) {
			t.Fatalf("stale temp file %s after registration", de.Name())
		}
	}

	// "Crash": abandon s1 without any shutdown, reload the directory.
	s2 := durableStore(t, ctx, dir, nil)
	if s2.Len() != 2 {
		t.Fatalf("reload recovered %d entries, want 2", s2.Len())
	}
	for _, fp := range []string{ea.Fingerprint, eb.Fingerprint} {
		e, err := s2.Get(fp)
		if err != nil {
			t.Fatalf("recovered entry %s: %v", fp[:8], err)
		}
		if e.Bundle == nil || e.Bundle.RTK == nil {
			t.Fatalf("recovered entry %s has no key material", fp[:8])
		}
	}
	// Re-registering recovered bytes is still idempotent.
	again, err := s2.Register(a)
	if err != nil {
		t.Fatal(err)
	}
	if again.Fingerprint != ea.Fingerprint || s2.Len() != 2 {
		t.Fatal("re-registration after reload duplicated the entry")
	}
}

// TestDurableReloadQuarantinesCorrupt: garbage, bit-rotted, and
// misnamed files are renamed aside (not deleted, not served) while the
// valid file still loads.
func TestDurableReloadQuarantinesCorrupt(t *testing.T) {
	ctx := testCtx(t)
	dir := t.TempDir()
	s1 := durableStore(t, ctx, dir, nil)
	good := bundleFixture(t, ctx, 42, []int{1})
	eg, err := s1.Register(good)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-rot an otherwise valid file in place.
	rotted := append([]byte(nil), good...)
	rotted[len(rotted)/2] ^= 0x10
	rotName := ckks.BundleFingerprint(good)[:32] + "0000" + bundleSuffix
	if err := os.WriteFile(filepath.Join(dir, rotName), rotted, 0o600); err != nil {
		t.Fatal(err)
	}
	// Valid bytes under the wrong fingerprint name.
	other := bundleFixture(t, ctx, 43, []int{1})
	if err := os.WriteFile(filepath.Join(dir, "feedface"+bundleSuffix), other, 0o600); err != nil {
		t.Fatal(err)
	}
	// Outright garbage.
	if err := os.WriteFile(filepath.Join(dir, "00ff00ff"+bundleSuffix), []byte("junk"), 0o600); err != nil {
		t.Fatal(err)
	}

	s2 := durableStore(t, ctx, dir, nil)
	if s2.Len() != 1 {
		t.Fatalf("reload kept %d entries, want only the valid one", s2.Len())
	}
	if _, err := s2.Get(eg.Fingerprint); err != nil {
		t.Fatalf("valid entry lost in reload: %v", err)
	}
	quarantined := 0
	ents, _ := os.ReadDir(dir)
	for _, de := range ents {
		if strings.HasSuffix(de.Name(), quarantineSuffix) {
			quarantined++
		}
	}
	if quarantined != 3 {
		t.Fatalf("quarantined %d files, want 3", quarantined)
	}
}

// TestDurableCompactionRemovesEvicted: LRU and TTL evictions leave
// orphan files that Compact removes, while live files survive.
func TestDurableCompactionRemovesEvicted(t *testing.T) {
	ctx := testCtx(t)
	dir := t.TempDir()
	now := time.Unix(5000, 0)
	s := durableStore(t, ctx, dir, func(c *Config) {
		c.MaxEntries = 1
		c.TTL = time.Minute
		c.Clock = func() time.Time { return now }
	})
	a, err := s.Register(bundleFixture(t, ctx, 44, nil))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Register(bundleFixture(t, ctx, 45, nil)) // evicts a (LRU)
	if err != nil {
		t.Fatal(err)
	}
	if got := bundleFiles(t, dir); len(got) != 2 {
		t.Fatalf("want 2 files before compaction, got %v", got)
	}
	if n := s.Compact(); n != 1 {
		t.Fatalf("compaction removed %d files, want 1 (the LRU victim)", n)
	}
	files := bundleFiles(t, dir)
	if len(files) != 1 || files[0] != b.Fingerprint+bundleSuffix {
		t.Fatalf("survivor files %v, want only %s", files, b.Fingerprint[:8])
	}
	_ = a

	// TTL expiry: compaction collects the expired entry and its file.
	now = now.Add(2 * time.Minute)
	if n := s.Compact(); n != 1 {
		t.Fatalf("compaction removed %d files after TTL, want 1", n)
	}
	if s.Len() != 0 {
		t.Fatalf("expired entry still live: Len=%d", s.Len())
	}
	if got := bundleFiles(t, dir); len(got) != 0 {
		t.Fatalf("files remain after TTL compaction: %v", got)
	}
}

// TestDurableReloadHonorsMaxEntries: a directory larger than the
// configured bound reloads only the newest MaxEntries bundles, and
// compaction then drops the excess files.
func TestDurableReloadHonorsMaxEntries(t *testing.T) {
	ctx := testCtx(t)
	dir := t.TempDir()
	s1 := durableStore(t, ctx, dir, nil)
	var fps []string
	for i := int64(0); i < 3; i++ {
		data := bundleFixture(t, ctx, 50+i, nil)
		e, err := s1.Register(data)
		if err != nil {
			t.Fatal(err)
		}
		fps = append(fps, e.Fingerprint)
		// Distinct mtimes so reload order (oldest first) is deterministic.
		mt := time.Now().Add(time.Duration(i-3) * time.Hour)
		if err := os.Chtimes(filepath.Join(dir, e.Fingerprint+bundleSuffix), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	s2 := durableStore(t, ctx, dir, func(c *Config) { c.MaxEntries = 2 })
	if s2.Len() != 2 {
		t.Fatalf("reload kept %d entries, want 2", s2.Len())
	}
	if _, err := s2.Get(fps[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest bundle should be the reload-eviction victim, got %v", err)
	}
	for _, fp := range fps[1:] {
		if _, err := s2.Get(fp); err != nil {
			t.Fatalf("newest bundles must survive the bounded reload: %v", err)
		}
	}
	if n := s2.Compact(); n != 1 {
		t.Fatalf("compaction removed %d files, want the 1 evicted at reload", n)
	}
}

// TestDurablePersistFailureRollsBack: when the snapshot cannot be
// written the registration fails and leaves no entry behind, so the
// client's retry is consistent with server state.
func TestDurablePersistFailureRollsBack(t *testing.T) {
	ctx := testCtx(t)
	dir := t.TempDir()
	s := durableStore(t, ctx, dir, nil)
	data := bundleFixture(t, ctx, 60, nil)
	// Make the directory unwritable so CreateTemp fails.
	if err := os.Chmod(dir, 0o500); err != nil {
		t.Fatal(err)
	}
	defer os.Chmod(dir, 0o700)
	if os.Geteuid() == 0 {
		t.Skip("directory permissions do not bind as root")
	}
	if _, err := s.Register(data); err == nil {
		t.Fatal("registration should fail when the snapshot cannot be written")
	}
	if s.Len() != 0 {
		t.Fatalf("failed registration left %d entries", s.Len())
	}
}
