package dataset

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// CIFAR-10 image dimensions and record layout. Each record in the
// binary batches is one label byte followed by 3072 planar RGB pixel
// bytes (1024 red, 1024 green, 1024 blue, row-major within each plane).
const (
	CIFARChannels = 3
	CIFARRows     = 32
	CIFARCols     = 32
	cifarPixels   = CIFARChannels * CIFARRows * CIFARCols
	cifarRecord   = 1 + cifarPixels
)

// cifarTrainBatches and cifarTestBatch are the file names inside the
// cifar-10-batches-bin directory of the canonical binary distribution.
var cifarTrainBatches = []string{
	"data_batch_1.bin", "data_batch_2.bin", "data_batch_3.bin",
	"data_batch_4.bin", "data_batch_5.bin",
}

const cifarTestBatch = "test_batch.bin"

// readCIFARBatch appends one binary batch file's records to d.
func readCIFARBatch(d *Dataset, path string) error {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: cifar10: %s", ErrMissingData, path)
		}
		return err
	}
	defer f.Close()
	for {
		rec := make([]byte, cifarRecord)
		if _, err := io.ReadFull(f, rec); err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("%w: cifar10: %s truncated: %v", ErrCorrupt, path, err)
		}
		if rec[0] > 9 {
			return fmt.Errorf("%w: cifar10: %s: label %d out of range", ErrCorrupt, path, rec[0])
		}
		d.Labels = append(d.Labels, int(rec[0]))
		d.Pixels = append(d.Pixels, rec[1:])
	}
}

// LoadCIFAR10Dir reads the binary CIFAR-10 batches from dir. dir may be
// the distribution root (containing cifar-10-batches-bin/) or the batch
// directory itself.
func LoadCIFAR10Dir(dir string) (train, test Dataset, err error) {
	if _, serr := os.Stat(filepath.Join(dir, "cifar-10-batches-bin")); serr == nil {
		dir = filepath.Join(dir, "cifar-10-batches-bin")
	}
	train = Dataset{C: CIFARChannels, H: CIFARRows, W: CIFARCols}
	test = Dataset{C: CIFARChannels, H: CIFARRows, W: CIFARCols}
	for _, name := range cifarTrainBatches {
		if err := readCIFARBatch(&train, filepath.Join(dir, name)); err != nil {
			return Dataset{}, Dataset{}, err
		}
	}
	if err := readCIFARBatch(&test, filepath.Join(dir, cifarTestBatch)); err != nil {
		return Dataset{}, Dataset{}, err
	}
	return train, test, nil
}

// LoadCIFAR10 resolves CIFAR-10 data with the same contract as
// LoadMNIST: the CIFAR10_DIR environment variable when set and readable,
// then the checksummed download cache (see EnsureCIFAR10), then the
// deterministic synthetic fallback. The returned string describes the
// source.
func LoadCIFAR10(trainN, testN int, seed int64) (train, test Dataset, source string) {
	if dir := os.Getenv("CIFAR10_DIR"); dir != "" {
		tr, te, err := LoadCIFAR10Dir(dir)
		if err == nil {
			return tr.Subset(trainN), te.Subset(testN), "cifar10:" + dir
		}
	}
	if dir, err := EnsureCIFAR10(); err == nil {
		tr, te, err := LoadCIFAR10Dir(dir)
		if err == nil {
			return tr.Subset(trainN), te.Subset(testN), "cifar10-cache:" + dir
		}
	}
	tr := SyntheticCIFAR10(trainN, seed)
	te := SyntheticCIFAR10(testN, seed+1)
	return tr, te, "synthetic"
}
