package henn

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"cnnhe/internal/ckks"
	"cnnhe/internal/nn"
)

// Benchmarks comparing the legacy eager interpreter against the
// op-graph executor with ahead-of-time encoded plaintexts. Run with
//
//	go test -bench InferCNN1 -benchtime 3x ./internal/henn/
//
// The executor benchmark warms the prepared graph outside the timed
// loop: the AOT encoding cost is a one-time, per-(plan, engine) expense
// amortized across inferences, which is the design point. The legacy
// path re-encodes through its plaintext cache on first touch, so its
// first iteration is included via a warm-up call too, keeping the
// comparison steady-state vs steady-state.

func compileCNN1ForBench(rng *rand.Rand) (*Plan, error) {
	hm := nn.NewCNN1(rng).ReplaceReLUWithSLAF(3, 1)
	for _, l := range hm.Layers {
		if s, ok := l.(*nn.SLAF); ok {
			s.FitReLU(3)
		}
	}
	return Compile(hm, 1024)
}

func benchRNSEngine(plan *Plan, logN int, bits []int, seed int64) (Engine, error) {
	params, err := ckks.NewParameters(logN, bits, 60, 1, math.Exp2(30))
	if err != nil {
		return nil, err
	}
	if err := plan.CheckDepth(params.MaxLevel()); err != nil {
		return nil, err
	}
	return NewRNSEngine(params, plan.Rotations(), seed)
}

func benchCNN1(b *testing.B) (*Plan, Engine, []float64) {
	rng := rand.New(rand.NewSource(7))
	plan, err := compileCNN1ForBench(rng)
	if err != nil {
		b.Fatal(err)
	}
	bits := make([]int, plan.Depth+2)
	bits[0] = 40
	for i := 1; i < len(bits); i++ {
		bits[i] = 30
	}
	e, err := benchRNSEngine(plan, 11, bits, 701)
	if err != nil {
		b.Fatal(err)
	}
	return plan, e, testImage(rng, plan.InputDim)
}

func BenchmarkInferLegacyCNN1(b *testing.B) {
	plan, e, img := benchCNN1(b)
	ctx := context.Background()
	if _, _, err := plan.InferCtxLegacy(ctx, e, img); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := plan.InferCtxLegacy(ctx, e, img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferExecutorCNN1(b *testing.B) {
	plan, e, img := benchCNN1(b)
	if err := plan.Warm(e); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := plan.InferCtx(ctx, e, img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferExecutorTiny(b *testing.B) {
	plan, err := Compile(tinyModel(1), 512)
	if err != nil {
		b.Fatal(err)
	}
	e, err := benchRNSEngine(plan, 10, []int{40, 30, 30, 30, 30}, 702)
	if err != nil {
		b.Fatal(err)
	}
	if err := plan.Warm(e); err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	img := testImage(rng, plan.InputDim)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := plan.InferCtx(ctx, e, img); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInferLegacyTiny(b *testing.B) {
	plan, err := Compile(tinyModel(1), 512)
	if err != nil {
		b.Fatal(err)
	}
	e, err := benchRNSEngine(plan, 10, []int{40, 30, 30, 30, 30}, 703)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	img := testImage(rng, plan.InputDim)
	ctx := context.Background()
	if _, _, err := plan.InferCtxLegacy(ctx, e, img); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := plan.InferCtxLegacy(ctx, e, img); err != nil {
			b.Fatal(err)
		}
	}
}
