package nn

import (
	"encoding/gob"
	"fmt"
	"math/rand"
	"os"

	"cnnhe/internal/tensor"
)

// Model is a feed-forward stack of layers.
type Model struct {
	Layers []Layer
}

// ForwardBatch runs the batch through every layer.
func (m *Model) ForwardBatch(xs []*tensor.Tensor, train bool) []*tensor.Tensor {
	for _, l := range m.Layers {
		xs = l.Forward(xs, train)
	}
	return xs
}

// BackwardBatch propagates output gradients back through every layer.
func (m *Model) BackwardBatch(grads []*tensor.Tensor) {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		grads = m.Layers[i].Backward(grads)
	}
}

// Forward runs a single sample in inference mode.
func (m *Model) Forward(x *tensor.Tensor) *tensor.Tensor {
	return m.ForwardBatch([]*tensor.Tensor{x}, false)[0]
}

// Predict returns the argmax class for one sample.
func (m *Model) Predict(x *tensor.Tensor) int {
	return argmax(m.Forward(x).Data)
}

// Params collects every trainable parameter.
func (m *Model) Params() []*Param {
	var out []*Param
	for _, l := range m.Layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Freeze sets the Frozen flag on all parameters except those of SLAF
// layers — the paper's retrofit step: "weights are fixed, SLAFs substitute
// activations, and the CNN is shortly re-trained to learn the polynomial
// coefficients".
func (m *Model) Freeze(exceptSLAF bool) {
	for _, l := range m.Layers {
		_, isSLAF := l.(*SLAF)
		for _, p := range l.Params() {
			p.Frozen = !(exceptSLAF && isSLAF)
		}
	}
}

// ReplaceReLUWithSLAF returns a copy of the model where every ReLU layer
// is replaced by a degree-`degree` SLAF (per-channel coefficients after
// convolutions, shared coefficients after dense layers), warm-started with
// the least-squares ReLU fit over [−fitRange, fitRange]. All other layers
// are shared with the original model (weights "fixed").
func (m *Model) ReplaceReLUWithSLAF(degree int, fitRange float64) *Model {
	out := &Model{}
	var prevChannels int
	for _, l := range m.Layers {
		switch v := l.(type) {
		case *Conv2D:
			prevChannels = v.OutC
			out.Layers = append(out.Layers, v)
		case *Dense:
			prevChannels = 0 // dense outputs: shared coefficients
			out.Layers = append(out.Layers, v)
		case *ReLU:
			units := 1
			if prevChannels > 0 {
				units = prevChannels
			}
			s := NewSLAF(degree, units)
			s.FitReLU(fitRange)
			out.Layers = append(out.Layers, s)
		default:
			out.Layers = append(out.Layers, l)
		}
	}
	return out
}

// NewCNN1 builds the paper's Fig. 3 architecture: one convolution
// (5 maps, 5×5, stride 2, pad 1 → 5×13×13), an activation, a 100-unit
// dense layer, an activation, and the 10-class output layer. A LoLa
// variant with activations after the convolution and the first dense
// layer.
func NewCNN1(rng *rand.Rand) *Model {
	conv := NewConv2D(rng, 1, 5, 5, 2, 1, 28, 28)
	flat := conv.OutC * conv.OutH() * conv.OutW() // 5·13·13 = 845
	return &Model{Layers: []Layer{
		conv,
		NewReLU(),
		NewFlatten(),
		NewDense(rng, flat, 100),
		NewReLU(),
		NewDense(rng, 100, 10),
	}}
}

// NewCNN2 builds the paper's Fig. 4 architecture: a CryptoNets-style
// network with two convolutions, batch normalization before each
// activation, and two dense layers.
func NewCNN2(rng *rand.Rand) *Model {
	conv1 := NewConv2D(rng, 1, 8, 5, 2, 1, 28, 28) // 8×13×13
	conv2 := NewConv2D(rng, 8, 16, 5, 2, 1, conv1.OutH(), conv1.OutW())
	flat := conv2.OutC * conv2.OutH() * conv2.OutW() // 16·6·6 = 576
	return &Model{Layers: []Layer{
		conv1,
		NewBatchNorm2D(8),
		NewReLU(),
		conv2,
		NewBatchNorm2D(16),
		NewReLU(),
		NewFlatten(),
		NewDense(rng, flat, 32),
		NewReLU(),
		NewDense(rng, 32, 10),
	}}
}

// modelState is the gob-serializable snapshot of a model: architecture tag
// plus parameter and batch-norm statistics data.
type modelState struct {
	Arch      string
	Degree    int // SLAF degree (0 = ReLU model)
	Params    [][]float64
	BNMeans   [][]float64
	BNVars    [][]float64
	SLAFUnits []int
}

// Save writes the model parameters to path. Arch must be "cnn1", "cnn2",
// or "cnn3"; SLAF-activated variants are detected automatically.
func (m *Model) Save(path, arch string) error {
	st := modelState{Arch: arch}
	for _, l := range m.Layers {
		for _, p := range l.Params() {
			st.Params = append(st.Params, append([]float64(nil), p.Data...))
		}
		if bn, ok := l.(*BatchNorm2D); ok {
			st.BNMeans = append(st.BNMeans, append([]float64(nil), bn.RunMean...))
			st.BNVars = append(st.BNVars, append([]float64(nil), bn.RunVar...))
		}
		if s, ok := l.(*SLAF); ok {
			st.Degree = s.Degree
			st.SLAFUnits = append(st.SLAFUnits, s.Units)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return gob.NewEncoder(f).Encode(st)
}

// LoadModel reconstructs a model saved with Save.
func LoadModel(path string) (*Model, string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, "", err
	}
	defer f.Close()
	var st modelState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return nil, "", err
	}
	rng := rand.New(rand.NewSource(0))
	var m *Model
	switch st.Arch {
	case "cnn1":
		m = NewCNN1(rng)
	case "cnn2":
		m = NewCNN2(rng)
	case "cnn3":
		m = NewCNN3(rng)
	default:
		return nil, "", fmt.Errorf("nn: unknown architecture %q", st.Arch)
	}
	if st.Degree > 0 {
		m = m.ReplaceReLUWithSLAF(st.Degree, 3)
	}
	pi, bi := 0, 0
	for _, l := range m.Layers {
		for _, p := range l.Params() {
			if pi >= len(st.Params) || len(st.Params[pi]) != len(p.Data) {
				return nil, "", fmt.Errorf("nn: parameter shape mismatch loading %q", path)
			}
			copy(p.Data, st.Params[pi])
			pi++
		}
		if bn, ok := l.(*BatchNorm2D); ok {
			copy(bn.RunMean, st.BNMeans[bi])
			copy(bn.RunVar, st.BNVars[bi])
			bi++
		}
	}
	if pi != len(st.Params) {
		return nil, "", fmt.Errorf("nn: trailing parameters loading %q", path)
	}
	return m, st.Arch, nil
}
